// relock-trace storage: a fixed-size single-producer single-consumer ring
// of 16-byte binary event records, one ring per registered thread.
//
// The producer is the traced thread itself (emitting from inside lock
// paths), the consumer is a drain-side collector; neither ever blocks the
// other. Overflow policy is drop-newest: a full ring rejects the incoming
// record and counts it, so the records already buffered - the prefix of the
// burst - stay intact and the dropped-record counter is EXACT (the producer
// is the only writer of both the head and the counter, so no increment can
// be lost). Capacity is fixed at construction: after that, recording is
// allocation-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "relock/platform/cacheline.hpp"
#include "relock/platform/lock_event.hpp"
#include "relock/platform/types.hpp"

namespace relock::trace {

/// One traced lock event. 16 bytes so a 4096-entry ring is one 64 KiB
/// allocation and a record write is two stores on one or two cache lines.
struct TraceRecord {
  std::uint64_t ts;    ///< global logical timestamp (total order, unique)
  std::uint32_t arg;   ///< event payload (e.g. grantee tid, threshold)
  std::uint16_t lock;  ///< registry-assigned lock id (0 = unattributed)
  std::uint8_t kind;   ///< LockEvent
  std::uint8_t flags;  ///< reserved

  [[nodiscard]] LockEvent event() const noexcept {
    return static_cast<LockEvent>(kind);
  }
};
static_assert(sizeof(TraceRecord) == 16, "records are 16-byte binary");

/// SPSC ring of TraceRecords. Producer calls push(); the consumer drains
/// with consume(). head_ (producer-owned) and tail_ (consumer-owned) are
/// monotone positions; the difference is the fill level.
class TraceRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit TraceRing(std::uint32_t capacity) {
    std::uint32_t cap = 2;
    while (cap < capacity && cap < (1u << 30)) cap <<= 1;
    mask_ = cap - 1;
    buf_ = std::make_unique<TraceRecord[]>(cap);
  }

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  [[nodiscard]] std::uint32_t capacity() const noexcept { return mask_ + 1; }

  /// Producer only. Returns false (and counts the drop) when full.
  bool push(const TraceRecord& r) noexcept {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    if (h - tail_.load(std::memory_order_acquire) > mask_) {
      // Drop-newest. Plain increment: the producer is the only writer.
      dropped_.store(dropped_.load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
      return false;
    }
    buf_[h & mask_] = r;
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Consumer only. Invokes `fn(const TraceRecord&)` on every buffered
  /// record in push order and retires them. Returns the count consumed.
  template <typename Fn>
  std::size_t consume(Fn&& fn) {
    std::uint64_t t = tail_.load(std::memory_order_relaxed);
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    const std::uint64_t start = t;
    for (; t != h; ++t) fn(static_cast<const TraceRecord&>(buf_[t & mask_]));
    tail_.store(t, std::memory_order_release);
    return static_cast<std::size_t>(t - start);
  }

  /// Records currently buffered (racy by nature; exact when quiescent).
  [[nodiscard]] std::size_t size() const noexcept {
    return static_cast<std::size_t>(head_.load(std::memory_order_acquire) -
                                    tail_.load(std::memory_order_acquire));
  }

  /// Exact count of records rejected by push() since construction (or the
  /// last reset_dropped). Written only by the producer.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Testing/collector hook: caller must guarantee the producer is
  /// quiescent (no concurrent push).
  void reset_dropped() noexcept {
    dropped_.store(0, std::memory_order_relaxed);
  }

 private:
  std::unique_ptr<TraceRecord[]> buf_;
  std::uint32_t mask_ = 0;
  /// Producer and consumer positions on separate lines: the producer's
  /// steady-state push must not bounce the consumer's tail line.
  alignas(kCacheLineSize) std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> dropped_{0};
  alignas(kCacheLineSize) std::atomic<std::uint64_t> tail_{0};
};

}  // namespace relock::trace
