// relock-trace runtime: the process-wide registry that owns one TraceRing
// per traced thread, the global logical clock that totally orders records
// across rings, and the lock-id counter that attributes records to lock
// instances.
//
// Emission contract (the hot path, entered from platform/trace_hooks.hpp):
//   - disabled: one relaxed load + branch, nothing else;
//   - enabled, ring attached: one relaxed fetch_add (the logical clock) and
//     one SPSC ring push - no locks, no allocation;
//   - enabled, first event of a thread: one ring allocation (or none, if
//     preattach() reserved it). Steady state is allocation-free.
//
// Rings are keyed by platform ThreadId (dense Domain indices), NOT by host
// thread, so the tracer also works under the relock-check platform where
// every model thread runs on one host thread - which is exactly what lets
// tests compare a trace against the checker's event log.
//
// This header compiles regardless of RELOCK_TRACE: only the emission call
// sites (trace_hooks.hpp) are gated. Drain-side consumers (reporter,
// benches, tests) can therefore link unconditionally; without the macro the
// rings simply stay empty.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "relock/platform/lock_event.hpp"
#include "relock/platform/types.hpp"
#include "relock/trace/ring.hpp"

namespace relock::trace {

class Registry {
 public:
  /// Upper bound on traceable ThreadIds. Records from threads at or above
  /// it are counted in unattributed_dropped() instead of recorded.
  static constexpr ThreadId kMaxThreads = 1024;
  static constexpr std::uint32_t kDefaultRingCapacity = 8192;

  static Registry& instance() {
    static Registry r;
    return r;
  }

  /// Master switch consulted by every emission site. Enabling does not
  /// allocate; rings appear on each thread's first event (or preattach()).
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Capacity used for rings attached AFTER this call (existing rings keep
  /// theirs). Call before set_enabled(true) for a uniform fleet.
  void set_ring_capacity(std::uint32_t capacity) noexcept {
    ring_capacity_.store(capacity == 0 ? kDefaultRingCapacity : capacity,
                         std::memory_order_relaxed);
  }

  /// Pre-allocates rings for ThreadIds [0, n) so enabling is allocation-
  /// free from the first record.
  void preattach(ThreadId n) {
    for (ThreadId tid = 0; tid < n && tid < kMaxThreads; ++tid) {
      (void)attach(tid);
    }
  }

  /// Registry-assigned per-lock id (nonzero). Wraps at 16 bits; ids only
  /// disambiguate concurrent locks in one capture, not lock lifetimes.
  [[nodiscard]] std::uint16_t register_lock() noexcept {
    const std::uint32_t id =
        next_lock_id_.fetch_add(1, std::memory_order_relaxed);
    return static_cast<std::uint16_t>(id % 0xffffu + 1u);
  }

  /// The hot path. `tid` must be the calling thread's platform id: the
  /// ring is SPSC and this call is its producer side.
  void emit(ThreadId tid, std::uint16_t lock_id, LockEvent e,
            std::uint64_t arg) noexcept {
    if (!enabled()) return;
    if (tid >= kMaxThreads) {
      unattributed_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    TraceRing* ring = rings_[tid].load(std::memory_order_acquire);
    if (ring == nullptr) {
      ring = attach(tid);
      if (ring == nullptr) return;
    }
    TraceRecord rec;
    rec.ts = clock_.fetch_add(1, std::memory_order_relaxed);
    rec.arg = static_cast<std::uint32_t>(arg);
    rec.lock = lock_id;
    rec.kind = static_cast<std::uint8_t>(e);
    rec.flags = 0;
    (void)ring->push(rec);
  }

  /// Drain-side: the attached ring of `tid`, or null. The caller owns the
  /// consumer side of each ring it touches (one drainer at a time).
  [[nodiscard]] TraceRing* ring(ThreadId tid) const noexcept {
    return tid < kMaxThreads ? rings_[tid].load(std::memory_order_acquire)
                             : nullptr;
  }

  /// Drain-side: invokes `fn(ThreadId, TraceRing&)` for every attached ring.
  template <typename Fn>
  void for_each_ring(Fn&& fn) const {
    const ThreadId n = high_water_.load(std::memory_order_acquire);
    for (ThreadId tid = 0; tid < n; ++tid) {
      if (TraceRing* r = rings_[tid].load(std::memory_order_acquire)) {
        fn(tid, *r);
      }
    }
  }

  /// Records dropped because the emitting ThreadId exceeded kMaxThreads.
  [[nodiscard]] std::uint64_t unattributed_dropped() const noexcept {
    return unattributed_dropped_.load(std::memory_order_relaxed);
  }

  /// Testing hook: discards all buffered records and zeroes drop counters.
  /// Caller must guarantee no thread is emitting (disable first).
  void clear() {
    for_each_ring([](ThreadId, TraceRing& r) {
      r.consume([](const TraceRecord&) {});
      r.reset_dropped();
    });
    unattributed_dropped_.store(0, std::memory_order_relaxed);
  }

 private:
  Registry() = default;

  TraceRing* attach(ThreadId tid) {
    if (tid >= kMaxThreads) return nullptr;
    std::lock_guard<std::mutex> g(attach_mu_);
    TraceRing* existing = rings_[tid].load(std::memory_order_relaxed);
    if (existing != nullptr) return existing;
    auto fresh = std::make_unique<TraceRing>(
        ring_capacity_.load(std::memory_order_relaxed));
    TraceRing* raw = fresh.get();
    owned_.push_back(std::move(fresh));
    rings_[tid].store(raw, std::memory_order_release);
    ThreadId hw = high_water_.load(std::memory_order_relaxed);
    while (hw < tid + 1 && !high_water_.compare_exchange_weak(
                               hw, tid + 1, std::memory_order_release)) {
    }
    return raw;
  }

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint32_t> ring_capacity_{kDefaultRingCapacity};
  std::atomic<std::uint32_t> next_lock_id_{1};
  std::atomic<std::uint64_t> unattributed_dropped_{0};
  /// Global logical clock: one relaxed fetch_add per record gives every
  /// record a unique timestamp and the merge a total order that matches
  /// the emission order (fetch_add linearizes). Under the single-host-
  /// thread checker the order is additionally deterministic.
  alignas(kCacheLineSize) std::atomic<std::uint64_t> clock_{0};

  std::atomic<TraceRing*> rings_[kMaxThreads] = {};
  std::atomic<ThreadId> high_water_{0};
  std::mutex attach_mu_;                          ///< attach only (cold)
  std::vector<std::unique_ptr<TraceRing>> owned_;  ///< under attach_mu_
};

}  // namespace relock::trace
