// relock-trace drain side: TraceCollector merges every thread's ring into
// one globally ordered event list (the logical timestamps are unique, so
// the merge is a sort with no ties), and chrome_trace_json() renders the
// merged list in the Chrome Trace Event format - load the file in
// chrome://tracing or https://ui.perfetto.dev.
//
// Rendering model:
//   - one track per thread (tid metadata events name them);
//   - every record is an instant event named after its LockEvent kind;
//   - exclusive holds are duration events ("X" would need the end upfront,
//     so "B"/"E" pairs): opened by kAcquireFast/kAcquireSlow on the owner's
//     track, closed by its kRelease;
//   - grant handoffs are flow events: a "s" (start) on the releaser's
//     kGranted record connects to a "f" (finish) on the grantee's next
//     kAcquireSlow, drawing the ownership-transfer arrow between tracks.
//
// Timestamps are the logical clock rendered as microseconds: Chrome needs
// monotone numbers, not wall time, and logical ticks keep the view dense
// and deterministic (the checker produces byte-identical exports).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "relock/platform/lock_event.hpp"
#include "relock/platform/types.hpp"
#include "relock/trace/trace.hpp"

namespace relock::trace {

/// One merged, decoded trace event.
struct Event {
  std::uint64_t ts;
  ThreadId tid;
  std::uint16_t lock;
  LockEvent kind;
  std::uint32_t arg;
};

/// Drains rings into globally ordered event lists. Owns the consumer side
/// of every ring it drains: use one collector at a time.
class TraceCollector {
 public:
  explicit TraceCollector(Registry& registry = Registry::instance())
      : registry_(&registry) {}

  /// Drains every attached ring and returns the merged, timestamp-ordered
  /// event list. Also refreshes dropped().
  [[nodiscard]] std::vector<Event> collect() {
    std::vector<Event> out;
    dropped_ = registry_->unattributed_dropped();
    registry_->for_each_ring([&](ThreadId tid, TraceRing& ring) {
      dropped_ += ring.dropped();
      ring.consume([&](const TraceRecord& r) {
        out.push_back(Event{r.ts, tid, r.lock, r.event(), r.arg});
      });
    });
    // Each ring is drained in push order and timestamps are globally
    // unique, so a plain sort restores the total emission order.
    std::sort(out.begin(), out.end(),
              [](const Event& a, const Event& b) { return a.ts < b.ts; });
    return out;
  }

  /// Ring-overflow drops summed across rings at the last collect(),
  /// including unattributed (ThreadId >= kMaxThreads) records.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  Registry* registry_;
  std::uint64_t dropped_ = 0;
};

/// Renders `events` as Chrome Trace Event JSON (object form, traceEvents
/// array). `process_name` labels the single pid the tracks live under.
inline std::string chrome_trace_json(const std::vector<Event>& events,
                                     const char* process_name = "relock") {
  std::string out;
  out.reserve(events.size() * 96 + 256);
  char buf[256];
  auto emit = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out += buf;
  };

  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
       "\"args\":{\"name\":\"%s\"}}",
       process_name);

  // Track metadata: name every thread that appears.
  std::vector<ThreadId> tids;
  for (const Event& e : events) {
    bool seen = false;
    for (ThreadId t : tids) seen = seen || t == e.tid;
    if (!seen) tids.push_back(e.tid);
  }
  for (ThreadId t : tids) {
    emit(",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
         "\"args\":{\"name\":\"thread %u\"}}",
         t, t);
  }

  // kGranted(arg=grantee) opens a pending flow per grantee; the grantee's
  // next contended acquisition closes it. Exclusive holds open a "B" per
  // owner track that the owner's kRelease closes. Flow ids are the grant
  // record's unique timestamp, stored +1 so 0 can mean "none".
  std::vector<std::uint64_t> pending_flow;   // grantee tid -> flow id+1
  std::vector<std::uint64_t> open_hold;      // owner tid -> open B count
  auto slot = [](std::vector<std::uint64_t>& v, ThreadId tid)
      -> std::uint64_t& {
    if (v.size() <= tid) v.resize(tid + 1, 0);
    return v[tid];
  };

  for (const Event& e : events) {
    const char* name = lock_event_name(e.kind);
    const auto ts = static_cast<unsigned long long>(e.ts);
    switch (e.kind) {
      case LockEvent::kAcquireFast:
      case LockEvent::kAcquireSlow: {
        emit(",\n{\"name\":\"hold\",\"cat\":\"lock%u\",\"ph\":\"B\","
             "\"pid\":1,\"tid\":%u,\"ts\":%llu,"
             "\"args\":{\"via\":\"%s\"}}",
             e.lock, e.tid, ts, name);
        ++slot(open_hold, e.tid);
        if (e.kind == LockEvent::kAcquireSlow) {
          std::uint64_t& flow = slot(pending_flow, e.tid);
          if (flow != 0) {
            emit(",\n{\"name\":\"grant\",\"cat\":\"handoff\",\"ph\":\"f\","
                 "\"bp\":\"e\",\"id\":%llu,\"pid\":1,\"tid\":%u,"
                 "\"ts\":%llu}",
                 static_cast<unsigned long long>(flow - 1), e.tid, ts);
            flow = 0;
          }
        }
        break;
      }
      case LockEvent::kRelease: {
        std::uint64_t& open = slot(open_hold, e.tid);
        if (open > 0) {
          emit(",\n{\"name\":\"hold\",\"cat\":\"lock%u\",\"ph\":\"E\","
               "\"pid\":1,\"tid\":%u,\"ts\":%llu}",
               e.lock, e.tid, ts);
          --open;
        }
        break;
      }
      case LockEvent::kGranted: {
        // Flow start on the releaser's track; id = this record's unique
        // timestamp. The grantee's matching acquisition closes it.
        emit(",\n{\"name\":\"grant\",\"cat\":\"handoff\",\"ph\":\"s\","
             "\"id\":%llu,\"pid\":1,\"tid\":%u,\"ts\":%llu,"
             "\"args\":{\"to\":%u}}",
             ts, e.tid, ts, e.arg);
        slot(pending_flow, static_cast<ThreadId>(e.arg)) = e.ts + 1;
        emit(",\n{\"name\":\"%s\",\"cat\":\"lock%u\",\"ph\":\"i\","
             "\"s\":\"t\",\"pid\":1,\"tid\":%u,\"ts\":%llu,"
             "\"args\":{\"arg\":%u}}",
             name, e.lock, e.tid, ts, e.arg);
        break;
      }
      default:
        emit(",\n{\"name\":\"%s\",\"cat\":\"lock%u\",\"ph\":\"i\","
             "\"s\":\"t\",\"pid\":1,\"tid\":%u,\"ts\":%llu,"
             "\"args\":{\"arg\":%u}}",
             name, e.lock, e.tid, ts, e.arg);
        break;
    }
  }

  // Close any hold left open at capture end so every B is matched.
  const std::uint64_t end_ts =
      events.empty() ? 0 : events.back().ts + 1;
  for (ThreadId t = 0; t < open_hold.size(); ++t) {
    for (; open_hold[t] > 0; --open_hold[t]) {
      emit(",\n{\"name\":\"hold\",\"ph\":\"E\",\"pid\":1,\"tid\":%u,"
           "\"ts\":%llu}",
           t, static_cast<unsigned long long>(end_ts));
    }
  }

  out += "\n]}\n";
  return out;
}

/// Writes chrome_trace_json(events) to `path`. Returns false on I/O error.
inline bool chrome_export(const std::vector<Event>& events,
                          const std::string& path,
                          const char* process_name = "relock") {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string json = chrome_trace_json(events, process_name);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace relock::trace
