// Two-phase-locking transaction driver over LockTable: a TxnLockSet
// tracks one transaction's growing/shrinking phases and applies a
// pluggable deadlock policy at each acquisition. Policies follow the
// classical taxonomy (avoidance by ordering, no-wait, wait-die, plain
// timeout) - all built on the table's try/timed acquisition paths, no
// waits-for graph. The policy decides who ABORTS; safety (mutual
// exclusion, misuse detection) is entirely the table's.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "relock/table/lock_table.hpp"

namespace relock::table {

enum class AccessMode : std::uint8_t { kRead, kWrite };

struct TxnOp {
  std::uint64_t key = 0;
  AccessMode mode = AccessMode::kRead;
};

enum class DeadlockPolicy : std::uint8_t {
  /// Deadlock avoidance by discipline: keys must be acquired in ascending
  /// order (enforced - out-of-order acquisition throws LockUsageError).
  /// Acquisitions block unboundedly; with a global order no cycle exists.
  kOrdered,
  /// Never wait: a failed try_lock aborts the transaction immediately.
  kNoWait,
  /// Wait-die (Rosenkrantz et al.): an older transaction (smaller
  /// timestamp) may wait for a younger one; a younger transaction
  /// requesting a lock a known-older transaction holds dies at once.
  /// Needs a WaitDieStamps board to learn holder ages.
  kWaitDie,
  /// Bounded waiting: lock_for(wait_timeout); expiry aborts. Resolves
  /// cycles probabilistically without any holder bookkeeping.
  kTimeout,
};

[[nodiscard]] constexpr const char* to_string(DeadlockPolicy p) noexcept {
  switch (p) {
    case DeadlockPolicy::kOrdered: return "ordered";
    case DeadlockPolicy::kNoWait: return "nowait";
    case DeadlockPolicy::kWaitDie: return "waitdie";
    case DeadlockPolicy::kTimeout: return "timeout";
  }
  return "?";
}

/// Advisory who-holds-what board for wait-die: write holders publish their
/// timestamp per key so a requester can compare ages. Keys hash into a
/// fixed stamp array; a collision can only make the policy conservative
/// (a requester may die against the wrong key's holder), never unsafe -
/// the table still serializes everything. Stamp 0 = no known holder.
class WaitDieStamps {
 public:
  explicit WaitDieStamps(std::size_t size = 4096)
      : mask_(std::bit_ceil(std::max<std::size_t>(size, 2)) - 1),
        stamps_(mask_ + 1) {}

  void publish(std::uint64_t key, std::uint64_t ts) noexcept {
    stamps_[slot(key)].store(ts, std::memory_order_release);
  }
  void retract(std::uint64_t key, std::uint64_t ts) noexcept {
    std::uint64_t expect = ts;  // only clear our own publication
    stamps_[slot(key)].compare_exchange_strong(expect, 0,
                                               std::memory_order_acq_rel,
                                               std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t holder(std::uint64_t key) const noexcept {
    return stamps_[slot(key)].load(std::memory_order_acquire);
  }

 private:
  [[nodiscard]] std::size_t slot(std::uint64_t key) const noexcept {
    key *= 0x9e3779b97f4a7c15ull;
    return static_cast<std::size_t>(key >> 32) & mask_;
  }
  std::size_t mask_;
  std::vector<std::atomic<std::uint64_t>> stamps_;
};

/// One transaction's lock set under strict 2PL. Reusable: begin() opens a
/// new growing phase, release_all() shrinks and closes it. acquire()
/// returning false means the POLICY chose this transaction as a victim -
/// the caller must release_all() and (typically) retry with the same
/// timestamp after a backoff.
template <Platform P>
class TxnLockSet {
 public:
  using Table = LockTable<P>;
  using Ctx = typename P::Context;
  using Key = typename Table::Key;

  struct Config {
    DeadlockPolicy policy = DeadlockPolicy::kOrdered;
    /// Waiting bound for kTimeout and for the older side of kWaitDie.
    Nanos wait_timeout = 2'000'000;  // 2 ms
    /// Required for kWaitDie; unused otherwise.
    WaitDieStamps* stamps = nullptr;
  };

  TxnLockSet(Table& table, Config cfg) : table_(table), cfg_(cfg) {
    if (cfg_.policy == DeadlockPolicy::kWaitDie && cfg_.stamps == nullptr) {
      throw LockUsageError("TxnLockSet: kWaitDie needs a WaitDieStamps");
    }
    held_.reserve(16);
  }

  /// Opens the growing phase. `ts` orders transactions for wait-die
  /// (smaller = older); a retrying victim keeps its original ts so it
  /// ages into a survivor.
  void begin(std::uint64_t ts) {
    if (!held_.empty()) {
      throw LockUsageError("TxnLockSet: begin with locks still held");
    }
    ts_ = ts;
    shrinking_ = false;
  }

  /// Acquires `key` for `mode`. Idempotent for a mode already covered
  /// (re-read of anything, re-write of a write). Returns false when the
  /// deadlock policy aborts this transaction. Throws LockUsageError on
  /// 2PL violations: acquiring after release_all (until the next begin),
  /// upgrading a held read to a write, or - under kOrdered - acquiring
  /// out of key order.
  bool acquire(Ctx& ctx, Key key, AccessMode mode) {
    if (shrinking_) {
      throw LockUsageError(
          "TxnLockSet: acquire after release_all violates 2PL");
    }
    // A table without a reader-writer configuration serializes everything;
    // treat reads as writes so upgrade rules stay trivially consistent.
    if (!table_.rw_capable()) mode = AccessMode::kWrite;
    for (const Held& h : held_) {
      if (h.key != key) continue;
      if (h.mode == AccessMode::kWrite || mode == AccessMode::kRead) {
        return true;
      }
      throw LockUsageError(
          "TxnLockSet: read->write upgrade of a held key; declare kWrite "
          "up front");
    }
    if (cfg_.policy == DeadlockPolicy::kOrdered && !held_.empty() &&
        key < held_.back().key) {
      throw LockUsageError(
          "TxnLockSet: kOrdered requires ascending key order");
    }
    if (!acquire_with_policy(ctx, key, mode)) return false;
    held_.push_back({key, mode});
    if (mode == AccessMode::kWrite && cfg_.stamps != nullptr) {
      cfg_.stamps->publish(key, ts_);
    }
    return true;
  }

  /// Shrinking phase: releases everything in reverse acquisition order
  /// and closes the transaction (strict 2PL - no early releases).
  void release_all(Ctx& ctx) {
    shrinking_ = true;
    for (auto it = held_.rbegin(); it != held_.rend(); ++it) {
      if (it->mode == AccessMode::kWrite && cfg_.stamps != nullptr) {
        cfg_.stamps->retract(it->key, ts_);
      }
      if (it->mode == AccessMode::kRead) {
        table_.unlock_shared(ctx, it->key);
      } else {
        table_.unlock(ctx, it->key);
      }
    }
    held_.clear();
  }

  [[nodiscard]] std::size_t held_count() const noexcept {
    return held_.size();
  }
  [[nodiscard]] std::uint64_t timestamp() const noexcept { return ts_; }

 private:
  struct Held {
    Key key;
    AccessMode mode;
  };

  bool acquire_with_policy(Ctx& ctx, Key key, AccessMode mode) {
    const bool shared = mode == AccessMode::kRead;
    switch (cfg_.policy) {
      case DeadlockPolicy::kOrdered:
        return shared ? table_.lock_shared(ctx, key) : table_.lock(ctx, key);
      case DeadlockPolicy::kNoWait:
        return shared ? table_.try_lock_shared(ctx, key)
                      : table_.try_lock(ctx, key);
      case DeadlockPolicy::kTimeout:
        return shared ? table_.lock_shared_for(ctx, key, cfg_.wait_timeout)
                      : table_.lock_for(ctx, key, cfg_.wait_timeout);
      case DeadlockPolicy::kWaitDie: {
        // The stamp board is approximate (hashed slots, last publisher
        // wins, only reads go unpublished): a real holder can be invisible
        // behind a 0 or a stale older stamp, so unbounded waiting on
        // "holder unknown" can cycle two older-looking transactions into a
        // livelock. Waiting is therefore bounded: after kWaitSlices timed
        // slices without the lock, the waiter dies conservatively - the
        // caller retries with its ORIGINAL timestamp, so seniority (and
        // wait-die's starvation freedom) is preserved across the abort.
        constexpr int kWaitSlices = 16;
        for (int slice = 0; slice < kWaitSlices; ++slice) {
          const bool got = shared ? table_.try_lock_shared(ctx, key)
                                  : table_.try_lock(ctx, key);
          if (got) return true;
          const std::uint64_t holder = cfg_.stamps->holder(key);
          if (holder != 0 && holder < ts_) return false;  // younger: die
          // Older than any known holder (or holder unknown): wait a
          // bounded slice, then re-evaluate - the holder board may have
          // learned a younger holder we must not keep waiting on.
          if (shared ? table_.lock_shared_for(ctx, key, cfg_.wait_timeout)
                     : table_.lock_for(ctx, key, cfg_.wait_timeout)) {
            return true;
          }
        }
        return false;
      }
    }
    return false;
  }

  Table& table_;
  Config cfg_;
  std::vector<Held> held_;
  std::uint64_t ts_ = 0;
  bool shrinking_ = false;
};

}  // namespace relock::table
