// LockTable: a striped, partitioned record-id -> lock map for OLTP-style
// workloads where millions of locks coexist and only the contended few
// deserve machinery.
//
// Layout: one contiguous array of 16-byte slots (an open-addressing hash
// table, linear probing confined to the key's power-of-two partition, no
// resize in v1 - a full partition throws). A slot is two table words:
//
//   key word    0 = empty, else record-id + 1 (slots are never vacated, so
//               a key -> slot binding is stable for the table's lifetime)
//   lock word   0                     free
//               kSlotHeld (1)        inline exclusive hold - the entire
//                                    uncontended lock is this one bit
//               ptr|kSlotInflated    inflated: the upper bits point at an
//                [|kSlotHeld]        Entry owning a full ConfigurableLock
//                                    (kSlotHeld still set = the pre-existing
//                                    inline owner has not released yet)
//               kSlotDeflating (3)   transient: a releaser is tearing the
//                                    inflation down; contenders spin-retry
//
// Lazy inflation: the first acquire CASes free -> kSlotHeld and pays one
// RMW total. The first *contender* (or the first non-default configuration,
// or any shared acquisition) inflates: it takes an Entry from the
// partition pool, pre-pins it (users = 1), and CASes the pointer in while
// preserving the inline owner's kSlotHeld bit. Delegated acquirers then go
// through the Entry's ConfigurableLock and finally wait out the inline
// owner (who releases by clearing kSlotHeld).
//
// Pin protocol: every thread touching an Entry's lock first increments
// entry->users and re-validates that the slot still points at that entry
// (Entries are type-stable - pooled per partition, freed only at table
// destruction - so a stale increment is harmless and the validation
// catches it). Deflation is performed by a releasing delegated holder
// BEFORE its full unlock: if users == 1 (nobody else engaged), CAS the
// slot to kSlotDeflating, re-check users (the Dekker partner of the
// pinners' increment-then-validate), and only then unlock, unpin, recycle
// the Entry, and publish the slot free. A pinner that slipped in between
// makes the re-check fail and the slot is simply re-published. Entries
// carrying a non-default configuration are sticky: they never deflate, so
// per-key configuration survives idle periods.
//
// The table is a template over Platform like the lock itself: on the
// native platform the table words are unpadded std::atomic (so a slot is
// exactly 16 bytes and an idle table costs 16 bytes/lock); on the check
// platform they are engine-instrumented words, which makes the whole
// inflate/deflate lifecycle explorable by exhaustive DFS
// (tests/check/check_table_scenarios.hpp).
#pragma once

#include <atomic>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <stdexcept>
#include <vector>

#include "relock/core/configurable_lock.hpp"
#include "relock/platform/chk_hooks.hpp"
#include "relock/platform/native.hpp"
#include "relock/platform/platform.hpp"
#include "relock/platform/types.hpp"

namespace relock::table {

inline constexpr std::uint64_t kSlotFree = 0;
inline constexpr std::uint64_t kSlotHeld = 1;
inline constexpr std::uint64_t kSlotInflated = 2;
inline constexpr std::uint64_t kSlotDeflating = kSlotHeld | kSlotInflated;
inline constexpr std::uint64_t kSlotPtrMask = ~std::uint64_t{3};

/// Table-word operations. The generic form uses the platform's own Word -
/// on the check platform every operation is a scheduling point, which is
/// what lets the model checker drive the inflate/deflate races. Platforms
/// whose Word is cache-line padded (native) specialize this with an
/// unpadded atomic so a slot stays 16 bytes.
template <Platform P>
struct TableOps {
  using Word = typename P::Word;
  using Ctx = typename P::Context;

  static std::uint64_t load(Ctx& ctx, const Word& w) { return P::load(ctx, w); }
  static void store(Ctx& ctx, Word& w, std::uint64_t v) { P::store(ctx, w, v); }
  static std::uint64_t fetch_and(Ctx& ctx, Word& w, std::uint64_t v) {
    return P::fetch_and(ctx, w, v);
  }
  static bool cas(Ctx& ctx, Word& w, std::uint64_t expected,
                  std::uint64_t desired) {
    return P::cas(ctx, w, expected, desired);
  }
  /// Quiescent (no-Context) read for destructors and host-side test
  /// introspection; only valid while no thread is operating on the table.
  static std::uint64_t raw(const Word& w) { return w.v; }
};

template <>
struct TableOps<native::NativePlatform> {
  /// native::Word is alignas(cache line) - right for one hot lock word,
  /// ruinous at 1M slots. Same constructor shape, no padding.
  struct Word {
    explicit Word(native::Domain& /*domain*/, std::uint64_t initial = 0,
                  Placement /*placement*/ = Placement::any()) noexcept
        : v(initial) {}
    Word(const Word&) = delete;
    Word& operator=(const Word&) = delete;

    std::atomic<std::uint64_t> v;
  };
  using Ctx = native::Context;

  static std::uint64_t load(Ctx&, const Word& w) noexcept {
    return w.v.load(std::memory_order_acquire);
  }
  static void store(Ctx&, Word& w, std::uint64_t v) noexcept {
    w.v.store(v, std::memory_order_release);
  }
  static std::uint64_t fetch_and(Ctx&, Word& w, std::uint64_t v) noexcept {
    return w.v.fetch_and(v, std::memory_order_acq_rel);
  }
  static bool cas(Ctx&, Word& w, std::uint64_t expected,
                  std::uint64_t desired) noexcept {
    return w.v.compare_exchange_strong(expected, desired,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire);
  }
  static std::uint64_t raw(const Word& w) noexcept {
    return w.v.load(std::memory_order_relaxed);
  }
};

template <Platform P>
class LockTable {
  static_assert(kRealConcurrency<P>,
                "LockTable targets real-concurrency platforms (native, "
                "check); the simulator's calibrated cost model has no "
                "table workloads");

 public:
  using Ctx = typename P::Context;
  using Domain = typename P::Domain;
  using Lock = ConfigurableLock<P>;
  using Key = std::uint64_t;
  using Ops = TableOps<P>;

  struct Options {
    /// Slot count; rounded up to a power of two. Fixed for the table's
    /// lifetime (v1 has no resize): size for the record population.
    std::uint32_t capacity = 1u << 16;
    /// Stripe count; rounded to a power of two and clamped to
    /// [1, min(capacity, 256)]. Each partition owns capacity/partitions
    /// slots and its own Entry pool.
    std::uint32_t partitions = 16;
    /// Configuration applied to inflated locks. A kReaderWriter scheduler
    /// here makes the table shared-capable (lock_shared et al.).
    typename Lock::Options lock_options{};
    /// Inflation lifecycle hooks - the adaptation engine's registration
    /// point for hot locks (PolicyEngine::inflation_hook/deflation_hook).
    /// on_inflate fires right after a slot publishes a freshly installed
    /// Entry; on_deflate fires inside the closed deflation window,
    /// strictly BEFORE the Entry returns to the partition pool, so a hook
    /// can never observe the same Lock re-inflated under another key
    /// while its deregistration is still in flight. Hooks run on the
    /// inflating/deflating thread's lock path: keep them cheap and do not
    /// throw. Entries recycled through the pool keep whatever
    /// configuration a governor last gave them; the next inflation
    /// re-registers the lock and the governor re-derives it.
    std::function<void(Lock&)> on_inflate;
    std::function<void(Lock&)> on_deflate;
  };

  LockTable(Domain& domain, Options opts = Options{})
      : domain_(domain), opts_(opts) {
    capacity_ = std::bit_ceil(std::max(opts.capacity, 2u));
    const std::uint32_t max_parts = std::min(capacity_, 256u);
    partition_count_ =
        std::min(std::bit_ceil(std::max(opts.partitions, 1u)), max_parts);
    slots_per_part_ = capacity_ / partition_count_;
    parts_ = std::make_unique<Partition[]>(partition_count_);
    // One contiguous allocation for every slot: the footprint accounting
    // below is exact, and an idle table is pure slot array.
    slots_ = static_cast<Slot*>(::operator new(
        sizeof(Slot) * capacity_, std::align_val_t{alignof(Slot)}));
    std::uint32_t built = 0;
    try {
      for (; built < capacity_; ++built) new (&slots_[built]) Slot(domain_);
    } catch (...) {
      destroy_slots(built);
      throw;
    }
  }

  ~LockTable() { destroy_slots(capacity_); }

  LockTable(const LockTable&) = delete;
  LockTable& operator=(const LockTable&) = delete;

  // =================================================================
  // Acquisition / release by record id.
  // =================================================================

  /// Exclusive acquire. Returns false only if the inflated lock's
  /// configured waiting policy is conditional and expired (mirrors
  /// ConfigurableLock::lock).
  bool lock(Ctx& ctx, Key k) {
    return acquire(ctx, k, /*shared=*/false, 0, /*try_only=*/false);
  }
  /// Conditional exclusive acquire bounded by `timeout`.
  bool lock_for(Ctx& ctx, Key k, Nanos timeout) {
    return acquire(ctx, k, /*shared=*/false, timeout, /*try_only=*/false);
  }
  /// Polling exclusive acquire: single attempt, never waits and - against
  /// an inline holder - never inflates.
  bool try_lock(Ctx& ctx, Key k) {
    return acquire(ctx, k, /*shared=*/false, 0, /*try_only=*/true);
  }

  /// Shared acquire; requires a reader-writer `lock_options` configuration.
  /// Inline words are exclusive-only, so shared acquisition inflates.
  bool lock_shared(Ctx& ctx, Key k) {
    return acquire(ctx, k, /*shared=*/true, 0, /*try_only=*/false);
  }
  bool lock_shared_for(Ctx& ctx, Key k, Nanos timeout) {
    return acquire(ctx, k, /*shared=*/true, timeout, /*try_only=*/false);
  }
  bool try_lock_shared(Ctx& ctx, Key k) {
    return acquire(ctx, k, /*shared=*/true, 0, /*try_only=*/true);
  }

  void unlock(Ctx& ctx, Key k) { release(ctx, k, /*shared=*/false); }
  void unlock_shared(Ctx& ctx, Key k) { release(ctx, k, /*shared=*/true); }

  // =================================================================
  // Per-key configuration (forces inflation; the configured Entry is
  // sticky: it never deflates, so the configuration persists).
  // =================================================================

  void configure_waiting(Ctx& ctx, Key k, LockAttributes attrs) {
    Slot& s = *find_or_insert(ctx, k);
    Entry* e = pin_or_install(ctx, s);
    e->sticky.store(true, std::memory_order_release);
    e->lock.configure_waiting(ctx, attrs);
    unpin(ctx, e);
  }

  /// Pre-inflates a key (pool warm-up for locks known to become hot).
  /// Non-sticky: the entry deflates on last release like any
  /// contention-inflated one.
  void inflate(Ctx& ctx, Key k) {
    Slot& s = *find_or_insert(ctx, k);
    unpin(ctx, pin_or_install(ctx, s));
  }

  /// Whether `k`'s slot currently carries an inflated entry (advisory).
  bool inflated(Ctx& ctx, Key k) {
    Slot* s = find_existing(ctx, k);
    return s != nullptr && (Ops::load(ctx, s->word) & kSlotInflated) != 0;
  }

  // =================================================================
  // Introspection.
  // =================================================================

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint32_t partition_count() const noexcept {
    return partition_count_;
  }
  [[nodiscard]] std::uint32_t slots_per_partition() const noexcept {
    return slots_per_part_;
  }
  [[nodiscard]] std::uint32_t partition_of(Key k) const noexcept {
    return partition_index(mix(k));
  }
  [[nodiscard]] bool rw_capable() const noexcept {
    return opts_.lock_options.scheduler == SchedulerKind::kReaderWriter;
  }
  /// Distinct keys ever inserted.
  [[nodiscard]] std::uint64_t size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }
  /// Slots currently inflated (live entries attached to a slot).
  [[nodiscard]] std::uint64_t inflated_count() const noexcept {
    return inflated_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t entries_allocated() const noexcept {
    return entries_allocated_.load(std::memory_order_relaxed);
  }

  /// Per-lock heap cost: the slot array plus every Entry ever inflated.
  /// An idle, never-inflated table is exactly 16 bytes per lock.
  [[nodiscard]] std::uint64_t footprint_bytes() const noexcept {
    return std::uint64_t{capacity_} * sizeof(Slot) +
           entries_allocated_.load(std::memory_order_relaxed) * sizeof(Entry);
  }
  /// O(partitions) fixed bookkeeping (pool heads, stripe headers) - not
  /// per-lock, reported separately from footprint_bytes().
  [[nodiscard]] std::uint64_t overhead_bytes() const noexcept {
    return std::uint64_t{partition_count_} * sizeof(Partition);
  }

  /// Host-side (quiescent) slot-word read for test oracles: no Context,
  /// plain loads; only meaningful while no thread is operating. Returns
  /// kSlotFree for a key never inserted.
  [[nodiscard]] std::uint64_t quiescent_word(Key k) const {
    const Slot* s = probe_raw(k);
    return s == nullptr ? kSlotFree : Ops::raw(s->word);
  }

 private:
  /// An inflated lock record. Type-stable: once allocated it lives until
  /// table destruction (deflation returns it to the partition pool), so a
  /// stale pinner's users increment can never touch freed memory.
  struct Entry {
    Entry(Domain& d, const typename Lock::Options& o) : lock(d, o) {}
    Lock lock;
    /// Engaged-thread count: pre-publication pin by the installer plus one
    /// per pin_or_install / pin. seq_cst: the increment-then-validate /
    /// CAS-then-recheck pair with deflation is a Dekker handshake.
    std::atomic<std::uint32_t> users{0};
    /// Set by configure_waiting: a configured entry never deflates.
    std::atomic<bool> sticky{false};
    /// Committed shared holds. The full lock's own misuse guards cannot
    /// tell an exclusive release of a shared hold apart from a real one
    /// (holders_ is one either way), so the table keeps the mode tally
    /// and rejects wrong-mode delegated releases before touching the lock.
    std::atomic<std::uint32_t> shared_holds{0};
    Entry* next = nullptr;  ///< partition free-list link (under pool guard)
  };

  struct Slot {
    explicit Slot(Domain& d) : key(d, 0), word(d, 0) {}
    typename Ops::Word key;
    typename Ops::Word word;
  };

  /// Stripe header: the Entry pool. The guard is a plain test-and-set spin
  /// held only across pointer swings (no scheduling point inside, so under
  /// the checker the critical section is one atomic step and can never be
  /// observed held).
  struct alignas(64) Partition {
    std::atomic_flag guard = ATOMIC_FLAG_INIT;
    Entry* pool = nullptr;
    std::vector<std::unique_ptr<Entry>> all;  ///< owner, freed at table dtor
  };

  [[noreturn]] static void misuse(const char* what) {
    throw LockUsageError(what);
  }

  static constexpr std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  [[nodiscard]] std::uint32_t partition_index(std::uint64_t h) const noexcept {
    // High hash bits pick the stripe; low bits (used for the probe start)
    // stay independent of it.
    const unsigned bits =
        static_cast<unsigned>(std::bit_width(partition_count_ - 1u));
    return bits == 0 ? 0u : static_cast<std::uint32_t>(h >> (64 - bits));
  }

  static Entry* decode(std::uint64_t w) noexcept {
    return reinterpret_cast<Entry*>(w & kSlotPtrMask);
  }
  static std::uint64_t encode(Entry* e) noexcept {
    const auto bits = reinterpret_cast<std::uint64_t>(e);
    assert((bits & ~kSlotPtrMask) == 0);
    return bits;
  }

  Partition& part_of(const Slot& s) noexcept {
    const auto idx = static_cast<std::uint32_t>(&s - slots_);
    return parts_[idx / slots_per_part_];
  }

  // ---------------------------------------------------- hashing ---------

  /// Find-or-insert: linear probing within the key's partition. Keys are
  /// stored +1 so 0 means empty; slots are never vacated. Throws
  /// std::length_error when the partition is full (v1: no resize).
  Slot* find_or_insert(Ctx& ctx, Key k) {
    const std::uint64_t tagged = k + 1;
    if (tagged == 0) misuse("LockTable: key ~0 is reserved");
    const std::uint64_t h = mix(k);
    const std::uint32_t base = partition_index(h) * slots_per_part_;
    const std::uint32_t mask = slots_per_part_ - 1;
    for (std::uint32_t i = 0; i < slots_per_part_; ++i) {
      Slot& s = slots_[base + ((static_cast<std::uint32_t>(h) + i) & mask)];
      const std::uint64_t cur = Ops::load(ctx, s.key);
      if (cur == tagged) return &s;
      if (cur == 0) {
        if (Ops::cas(ctx, s.key, 0, tagged)) {
          size_.fetch_add(1, std::memory_order_relaxed);
          return &s;
        }
        // Lost the claim - maybe to our own key on another thread.
        if (Ops::load(ctx, s.key) == tagged) return &s;
      }
    }
    throw std::length_error("relock: LockTable partition full");
  }

  Slot* find_existing(Ctx& ctx, Key k) {
    const std::uint64_t tagged = k + 1;
    if (tagged == 0) misuse("LockTable: key ~0 is reserved");
    const std::uint64_t h = mix(k);
    const std::uint32_t base = partition_index(h) * slots_per_part_;
    const std::uint32_t mask = slots_per_part_ - 1;
    for (std::uint32_t i = 0; i < slots_per_part_; ++i) {
      Slot& s = slots_[base + ((static_cast<std::uint32_t>(h) + i) & mask)];
      const std::uint64_t cur = Ops::load(ctx, s.key);
      if (cur == tagged) return &s;
      if (cur == 0) return nullptr;
    }
    return nullptr;
  }

  /// Quiescent probe (no Context; destructor / host-side oracles).
  const Slot* probe_raw(Key k) const {
    const std::uint64_t tagged = k + 1;
    const std::uint64_t h = mix(k);
    const std::uint32_t base = partition_index(h) * slots_per_part_;
    const std::uint32_t mask = slots_per_part_ - 1;
    for (std::uint32_t i = 0; i < slots_per_part_; ++i) {
      const Slot& s =
          slots_[base + ((static_cast<std::uint32_t>(h) + i) & mask)];
      const std::uint64_t cur = Ops::raw(s.key);
      if (cur == tagged) return &s;
      if (cur == 0) return nullptr;
    }
    return nullptr;
  }

  // ---------------------------------------------------- entry pool ------

  // The pool guard is never held across a scheduling point, so the raw
  // spin below is bounded by one pointer swing (and under the cooperative
  // checker the holder cannot be descheduled at all - the loop never
  // actually iterates there).
  Entry* obtain_entry(Partition& p) {
    while (p.guard.test_and_set(std::memory_order_acquire)) {}
    Entry* e = p.pool;
    if (e != nullptr) p.pool = e->next;
    p.guard.clear(std::memory_order_release);
    if (e != nullptr) {
      e->next = nullptr;
      return e;
    }
    auto owned = std::make_unique<Entry>(domain_, opts_.lock_options);
    Entry* raw = owned.get();
    entries_allocated_.fetch_add(1, std::memory_order_relaxed);
    while (p.guard.test_and_set(std::memory_order_acquire)) {}
    try {
      p.all.push_back(std::move(owned));
    } catch (...) {
      p.guard.clear(std::memory_order_release);
      throw;
    }
    p.guard.clear(std::memory_order_release);
    return raw;
  }

  void recycle_entry(Partition& p, Entry* e) noexcept {
    while (p.guard.test_and_set(std::memory_order_acquire)) {}
    e->next = p.pool;
    p.pool = e;
    p.guard.clear(std::memory_order_release);
  }

  // ---------------------------------------------------- pinning ---------

  /// Registers the caller as an engaged user of `w`'s entry, or returns
  /// null when the slot moved on (retry from a fresh load). Increment
  /// BEFORE validate: the deflater CASes the word away before re-checking
  /// users, so at least one side observes the other.
  Entry* pin(Ctx& ctx, Slot& s, std::uint64_t w) {
    Entry* e = decode(w);
    chk_point<P>(ctx, "tb.pin");
    e->users.fetch_add(1, std::memory_order_seq_cst);
    const std::uint64_t w2 = Ops::load(ctx, s.word);
    if ((w2 & kSlotInflated) != 0 && decode(w2) == e) return e;
    unpin(ctx, e);
    return nullptr;
  }

  /// Returns the PREVIOUS count: a caller seeing 1 just dropped the last
  /// engagement and owns the lights-out deflation attempt (see
  /// try_deflate_idle) - without this, two releasers can each observe the
  /// other's transient pin, both skip deflation, and the entry idles
  /// attached forever.
  std::uint32_t unpin(Ctx& ctx, Entry* e) {
    chk_point<P>(ctx, "tb.unpin");
    return e->users.fetch_sub(1, std::memory_order_seq_cst);
  }

  /// Deflation attempt by a thread holding NEITHER a pin nor the full
  /// lock, after observing users hit 0 with the entry still attached
  /// (last-unpin handoff, or an inline owner's release over an idle
  /// entry). Safe without the lock: every thread that touches e->lock
  /// holds a pin across the operation, so rechecking users == 0 after the
  /// CAS closes the window proves the full lock is free and at rest.
  void try_deflate_idle(Ctx& ctx, Slot& s, Entry* e) {
    const std::uint64_t pub = encode(e) | kSlotInflated;
    if (!Ops::cas(ctx, s.word, pub, kSlotDeflating)) return;
    chk_point<P>(ctx, "tb.defl.recheck");
    if (e->users.load(std::memory_order_seq_cst) == 0 &&
        !e->sticky.load(std::memory_order_acquire)) {
      if (opts_.on_deflate) opts_.on_deflate(e->lock);
      recycle_entry(part_of(s), e);
      inflated_.fetch_sub(1, std::memory_order_relaxed);
      Ops::store(ctx, s.word, kSlotFree);
      return;
    }
    Ops::store(ctx, s.word, pub);
  }

  /// Installs a fresh entry over `expected` (kSlotFree or kSlotHeld),
  /// preserving the inline owner's bit. The installer pre-pins (users = 1)
  /// BEFORE publication, so a concurrent acquire-release on the new entry
  /// cannot deflate it out from under the installer.
  Entry* try_install(Ctx& ctx, Slot& s, std::uint64_t expected) {
    Partition& p = part_of(s);
    Entry* e = obtain_entry(p);
    chk_point<P>(ctx, "tb.pin");
    e->users.fetch_add(1, std::memory_order_seq_cst);
    const std::uint64_t target =
        encode(e) | kSlotInflated | (expected & kSlotHeld);
    if (Ops::cas(ctx, s.word, expected, target)) {
      inflated_.fetch_add(1, std::memory_order_relaxed);
      if (opts_.on_inflate) opts_.on_inflate(e->lock);
      return e;
    }
    unpin(ctx, e);
    recycle_entry(p, e);
    return nullptr;
  }

  /// Pin the slot's entry, inflating first if need be (configure / warm-up
  /// path: works whether the slot is free, inline-held, or inflated).
  Entry* pin_or_install(Ctx& ctx, Slot& s) {
    for (;;) {
      const std::uint64_t w = Ops::load(ctx, s.word);
      if (w == kSlotDeflating) {
        P::pause(ctx);
        continue;
      }
      if ((w & kSlotInflated) != 0) {
        if (Entry* e = pin(ctx, s, w)) return e;
        continue;
      }
      // kSlotFree or kSlotHeld: install, carrying the inline bit.
      if (Entry* e = try_install(ctx, s, w)) return e;
    }
  }

  // ---------------------------------------------------- acquire ---------

  bool acquire(Ctx& ctx, Key k, bool shared, Nanos timeout, bool try_only) {
    if (shared && !rw_capable()) {
      misuse("LockTable: shared acquisition needs a kReaderWriter "
             "lock_options configuration");
    }
    Slot& s = *find_or_insert(ctx, k);
    const Nanos deadline = timeout > 0 ? P::now(ctx) + timeout : 0;
    for (;;) {
      const std::uint64_t w = Ops::load(ctx, s.word);
      if (w == kSlotDeflating) {
        P::pause(ctx);
        continue;
      }
      if ((w & kSlotInflated) != 0) {
        Entry* e = pin(ctx, s, w);
        if (e == nullptr) continue;
        return delegated_acquire(ctx, s, e, shared, timeout, deadline,
                                 try_only);
      }
      if (w == kSlotFree && !shared) {
        // The uncontended path: the entire acquire is this CAS.
        if (Ops::cas(ctx, s.word, kSlotFree, kSlotHeld)) return true;
        continue;
      }
      if (w == kSlotHeld && try_only && !shared) {
        // Polling against an inline holder: plain failure, no inflation.
        return false;
      }
      // First contention (w == kSlotHeld) or a shared acquire of a free
      // slot (inline words are exclusive-only): inflate.
      if (Entry* e = try_install(ctx, s, w)) {
        return delegated_acquire(ctx, s, e, shared, timeout, deadline,
                                 try_only);
      }
    }
  }

  /// Caller holds a pin on `e`. Acquires through the full lock, then waits
  /// out the pre-inflation inline owner (who releases by clearing
  /// kSlotHeld; the bit can never be re-set while the slot is inflated).
  bool delegated_acquire(Ctx& ctx, Slot& s, Entry* e, bool shared,
                         Nanos timeout, Nanos deadline, bool try_only) {
    bool got;
    try {
      if (try_only) {
        got = shared ? e->lock.try_lock_shared(ctx) : e->lock.try_lock(ctx);
      } else if (timeout > 0) {
        got = shared ? e->lock.lock_shared_for(ctx, timeout)
                     : e->lock.lock_for(ctx, timeout);
      } else {
        got = shared ? e->lock.lock_shared(ctx) : e->lock.lock(ctx);
      }
    } catch (...) {
      // Misuse from the full lock (e.g. recursion rules): drop the pin so
      // the entry's lifecycle is not wedged by the exception.
      unpin(ctx, e);
      throw;
    }
    if (!got) {
      if (unpin(ctx, e) == 1) try_deflate_idle(ctx, s, e);
      return false;
    }
    std::uint32_t spins = 0;
    while ((Ops::load(ctx, s.word) & kSlotHeld) != 0) {
      if (try_only || (deadline != 0 && P::now(ctx) >= deadline)) {
        // Back out: we own the full lock but table-level ownership never
        // happened. If ours was the last engagement, turn the lights out
        // (the CAS inside fails while the inline owner's bit is up - its
        // release then inherits the attempt).
        if (shared) {
          e->lock.unlock_shared(ctx);
        } else {
          e->lock.unlock(ctx);
        }
        if (unpin(ctx, e) == 1) try_deflate_idle(ctx, s, e);
        return false;
      }
      // The inline owner's critical section is uncontended-short by
      // construction; spin, escalating to yield for oversubscribed hosts.
      if (++spins % 64 == 0) {
        P::yield(ctx);
      } else {
        P::pause(ctx);
      }
    }
    if (shared) e->shared_holds.fetch_add(1, std::memory_order_acq_rel);
    return true;
  }

  // ---------------------------------------------------- release ---------

  void release(Ctx& ctx, Key k, bool shared) {
    Slot* sp = find_existing(ctx, k);
    if (sp == nullptr) misuse("LockTable: unlock of a key never locked");
    Slot& s = *sp;
    for (;;) {
      const std::uint64_t w = Ops::load(ctx, s.word);
      if ((w & kSlotInflated) != 0 && decode(w) != nullptr) {
        if ((w & kSlotHeld) != 0) {
          // Only the pre-inflation inline owner can be releasing while the
          // bit is set: delegated acquirers wait it out before returning.
          if (shared) misuse("LockTable: unlock_shared of an exclusive hold");
          (void)Ops::fetch_and(ctx, s.word, ~kSlotHeld);
          // The entry may already be idle (a try/timed acquirer inflated,
          // then backed out while our bit blocked its deflation attempt):
          // with the bit down, an idle entry is now ours to retire.
          Entry* e = decode(w);
          if (e->users.load(std::memory_order_seq_cst) == 0) {
            try_deflate_idle(ctx, s, e);
          }
          return;
        }
        delegated_release(ctx, s, decode(w), shared);
        return;
      }
      if (w == kSlotHeld) {
        if (shared) misuse("LockTable: unlock_shared of an exclusive hold");
        if (Ops::cas(ctx, s.word, kSlotHeld, kSlotFree)) return;
        continue;  // inflated under us: retake the kSlotHeld-clear path
      }
      if (w == kSlotDeflating) {
        P::pause(ctx);
        continue;
      }
      misuse("LockTable: unlock of an unheld key");
    }
  }

  /// Caller is a delegated holder (pinned, owns the full lock). Deflation
  /// happens HERE, before the full unlock: while we hold the lock nobody
  /// else can be mid-critical-section, and users == 1 says nobody else is
  /// even engaged with the entry.
  void delegated_release(Ctx& ctx, Slot& s, Entry* e, bool shared) {
    // Wrong-mode guards, checked before any state moves so misuse()
    // unwinds with the hold fully intact.
    if (shared) {
      if (e->shared_holds.load(std::memory_order_acquire) == 0) {
        misuse("LockTable: unlock_shared without a shared hold");
      }
    } else if (e->shared_holds.load(std::memory_order_acquire) != 0) {
      misuse("LockTable: unlock of a shared hold");
    }
    chk_point<P>(ctx, "tb.defl.users");
    if (!e->sticky.load(std::memory_order_relaxed) &&
        e->users.load(std::memory_order_seq_cst) == 1) {
      const std::uint64_t pub = encode(e) | kSlotInflated;
      if (Ops::cas(ctx, s.word, pub, kSlotDeflating)) {
        chk_point<P>(ctx, "tb.defl.recheck");
        // The Dekker re-check: a pinner increments users BEFORE validating
        // the slot word, and we removed the word BEFORE re-reading users,
        // so a racing pinner either bumps this count or fails validation.
        // Sticky is re-read under the closed window: observing users == 1
        // synchronizes with the configurer's unpin, making its sticky
        // store visible.
        if (e->users.load(std::memory_order_seq_cst) == 1 &&
            !e->sticky.load(std::memory_order_acquire)) {
          try {
            if (shared) {
              e->lock.unlock_shared(ctx);
            } else {
              e->lock.unlock(ctx);
            }
          } catch (...) {
            // Wrong-mode release (the full lock's misuse guard): the
            // caller STILL HOLDS the lock, so restore the pre-call state
            // exactly - reopen the slot, keep the hold's pin - or the
            // slot would be wedged at kSlotDeflating forever.
            Ops::store(ctx, s.word, pub);
            throw;
          }
          if (shared) e->shared_holds.fetch_sub(1, std::memory_order_acq_rel);
          unpin(ctx, e);
          if (opts_.on_deflate) opts_.on_deflate(e->lock);
          recycle_entry(part_of(s), e);
          inflated_.fetch_sub(1, std::memory_order_relaxed);
          Ops::store(ctx, s.word, kSlotFree);
          return;
        }
        // Somebody slipped in: re-publish and release normally.
        Ops::store(ctx, s.word, pub);
      }
    }
    // A wrong-mode throw from the full lock leaves the hold (and its pin)
    // in place - the caller still owns the lock, so no state needs
    // restoring. The shared tally drops BEFORE the full release: once the
    // lock is free a writer may acquire and release it, and a stale
    // nonzero tally would make that legitimate release read as
    // wrong-mode.
    if (shared) {
      e->shared_holds.fetch_sub(1, std::memory_order_acq_rel);
      try {
        e->lock.unlock_shared(ctx);
      } catch (...) {
        e->shared_holds.fetch_add(1, std::memory_order_acq_rel);
        throw;
      }
    } else {
      e->lock.unlock(ctx);
    }
    if (unpin(ctx, e) == 1) try_deflate_idle(ctx, s, e);
  }

  // ---------------------------------------------------- teardown --------

  void destroy_slots(std::uint32_t n) noexcept {
    for (std::uint32_t i = 0; i < n; ++i) slots_[i].~Slot();
    ::operator delete(static_cast<void*>(slots_),
                      std::align_val_t{alignof(Slot)});
    slots_ = nullptr;
  }

  Domain& domain_;
  Options opts_;
  std::uint32_t capacity_ = 0;
  std::uint32_t partition_count_ = 0;
  std::uint32_t slots_per_part_ = 0;
  Slot* slots_ = nullptr;
  std::unique_ptr<Partition[]> parts_;
  std::atomic<std::uint64_t> size_{0};
  std::atomic<std::uint64_t> inflated_{0};
  std::atomic<std::uint64_t> entries_allocated_{0};
};

}  // namespace relock::table
