// Counting semaphore with a configurable waiting policy: like the
// configurable lock, waiters follow Table 1 attributes (spin / backoff /
// sleep / mixed / conditional) - the paper's attribute model applied to
// another synchronization primitive.
#pragma once

#include <atomic>

#include "relock/core/attributes.hpp"
#include "relock/core/usage_error.hpp"
#include "relock/platform/backoff.hpp"
#include "relock/platform/platform.hpp"

namespace relock {

template <Platform P>
class Semaphore {
 public:
  using Ctx = typename P::Context;
  using Domain = typename P::Domain;

  explicit Semaphore(Domain& domain, std::uint32_t initial = 0,
                     Placement placement = Placement::any(),
                     LockAttributes waiting = LockAttributes::combined(100))
      : meta_(domain, 0, placement), count_(initial), waiting_(waiting) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  /// Decrements the count, waiting per the configured policy if it is zero.
  /// Returns false only when the policy carries a timeout that expired.
  bool acquire(Ctx& ctx) { return acquire_impl(ctx, 0); }

  /// Timed acquisition (overrides the timeout attribute for this call).
  bool acquire_for(Ctx& ctx, Nanos timeout) {
    if (timeout == 0) {
      throw LockUsageError("Semaphore::acquire_for: timeout must be > 0");
    }
    return acquire_impl(ctx, timeout);
  }

  /// Single attempt; never waits.
  bool try_acquire(Ctx& ctx) {
    meta_lock(ctx);
    const std::uint32_t c = count_.load(std::memory_order_relaxed);
    if (c > 0) count_.store(c - 1, std::memory_order_relaxed);
    meta_unlock(ctx);
    return c > 0;
  }

  /// Increments the count by `n`, granting queued waiters directly.
  void release(Ctx& ctx, std::uint32_t n = 1) {
    ThreadId wake[kMaxBatch];
    while (n > 0) {
      std::size_t to_wake = 0;
      meta_lock(ctx);
      while (n > 0) {
        WaitNode* node = head_;
        if (node == nullptr) {
          count_.store(count_.load(std::memory_order_relaxed) + n,
                       std::memory_order_relaxed);
          n = 0;
          break;
        }
        remove_locked(*node);
        const ThreadId tid = node->tid;
        const bool sleeper = node->may_sleep;
        node->granted.store(1, std::memory_order_release);
        // The node may vanish now; only the captured tid is used below.
        --n;
        if (sleeper) {
          wake[to_wake++] = tid;
          if (to_wake == kMaxBatch) break;  // wake outside meta, re-enter
        }
      }
      meta_unlock(ctx);
      for (std::size_t i = 0; i < to_wake; ++i) P::unblock(ctx, wake[i]);
    }
  }

  /// Approximate current count (diagnostics).
  [[nodiscard]] std::uint32_t count_hint() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  struct WaitNode {
    explicit WaitNode(ThreadId t, bool sleeps) : tid(t), may_sleep(sleeps) {}
    ThreadId tid;
    bool may_sleep;
    std::atomic<std::uint32_t> granted{0};
    WaitNode* prev = nullptr;
    WaitNode* next = nullptr;
    bool queued = false;
  };

  static constexpr std::size_t kMaxBatch = 16;

  bool acquire_impl(Ctx& ctx, Nanos timeout_override) {
    LockAttributes attrs = waiting_;
    if (timeout_override != 0) attrs.timeout_ns = timeout_override;
    const Nanos deadline =
        attrs.timeout_ns != 0 ? P::now(ctx) + attrs.timeout_ns : kForever;

    meta_lock(ctx);
    const std::uint32_t available = count_.load(std::memory_order_relaxed);
    if (available > 0) {
      count_.store(available - 1, std::memory_order_relaxed);
      meta_unlock(ctx);
      return true;
    }
    WaitNode node(ctx.self(), attrs.sleep_ns > 0);
    enqueue_locked(node);
    meta_unlock(ctx);

    if (wait_granted(ctx, node, attrs, deadline)) return true;

    // Timeout: withdraw unless a release granted us concurrently.
    meta_lock(ctx);
    if (node.granted.load(std::memory_order_relaxed) != 0) {
      meta_unlock(ctx);
      return true;
    }
    remove_locked(node);
    meta_unlock(ctx);
    return false;
  }

  /// The Table 1 waiting engine, probing the grant flag.
  bool wait_granted(Ctx& ctx, WaitNode& node, const LockAttributes& attrs,
                    Nanos deadline) {
    BackoffSchedule backoff(BackoffSchedule::Params{
        attrs.delay_ns != 0 ? attrs.delay_ns : 1,
        attrs.sleep_ns > 0 ? attrs.delay_ns : attrs.delay_ns * 16, 2});
    for (;;) {
      for (std::uint32_t i = 0; i < attrs.spin_count;) {
        if (node.granted.load(std::memory_order_acquire) != 0) return true;
        if (deadline != kForever && P::now(ctx) >= deadline) return false;
        if (attrs.delay_ns != 0) {
          P::delay(ctx, backoff.next());
        } else {
          P::pause(ctx);
        }
        if (attrs.spin_count != kInfiniteSpins) ++i;
      }
      if (attrs.sleep_ns == 0) {
        if (attrs.spin_count == 0) P::pause(ctx);
        continue;
      }
      if (node.granted.load(std::memory_order_acquire) != 0) return true;
      if (attrs.sleep_ns == kForever && deadline == kForever) {
        P::block(ctx);
      } else {
        Nanos bound = attrs.sleep_ns;
        if (deadline != kForever) {
          const Nanos now = P::now(ctx);
          if (now >= deadline) return false;
          bound = std::min(bound, deadline - now);
        }
        (void)P::block_for(ctx, bound);
      }
      if (node.granted.load(std::memory_order_acquire) != 0) return true;
      if (deadline != kForever && P::now(ctx) >= deadline) return false;
    }
  }

  void meta_lock(Ctx& ctx) {
    for (;;) {
      if (P::load_relaxed(ctx, meta_) == 0 &&
          P::fetch_or(ctx, meta_, 1) == 0) {
        return;
      }
      P::pause(ctx);
    }
  }
  void meta_unlock(Ctx& ctx) { P::store(ctx, meta_, 0); }

  void enqueue_locked(WaitNode& node) {
    node.prev = tail_;
    node.next = nullptr;
    node.queued = true;
    if (tail_ != nullptr) {
      tail_->next = &node;
    } else {
      head_ = &node;
    }
    tail_ = &node;
  }

  void remove_locked(WaitNode& node) {
    if (!node.queued) return;
    if (node.prev != nullptr) node.prev->next = node.next; else head_ = node.next;
    if (node.next != nullptr) node.next->prev = node.prev; else tail_ = node.prev;
    node.prev = node.next = nullptr;
    node.queued = false;
  }

  typename P::Word meta_;
  std::atomic<std::uint32_t> count_;  ///< mutated under meta; hint reads race
  const LockAttributes waiting_;
  WaitNode* head_ = nullptr;        ///< guarded by meta
  WaitNode* tail_ = nullptr;        ///< guarded by meta
};

}  // namespace relock
