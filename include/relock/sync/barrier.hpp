// Sense-reversing centralized barrier with a configurable waiting policy:
// arrivals count up on a shared word; the last arriver flips the sense and
// (for sleeping policies) wakes everyone. Per-thread sense state makes the
// barrier safely reusable across generations.
#pragma once

#include <atomic>
#include <vector>

#include "relock/core/attributes.hpp"
#include "relock/core/usage_error.hpp"
#include "relock/platform/platform.hpp"

namespace relock {

template <Platform P>
class Barrier {
 public:
  using Ctx = typename P::Context;
  using Domain = typename P::Domain;

  /// `parties` threads must arrive to release a generation. `waiting`
  /// selects how non-last arrivers wait for the sense flip.
  explicit Barrier(Domain& domain, std::uint32_t parties,
                   Placement placement = Placement::any(),
                   LockAttributes waiting = LockAttributes::spin(),
                   std::uint32_t max_threads = 1024)
      : parties_(parties),
        count_(domain, 0, placement),
        sense_(domain, 0, placement),
        meta_(domain, 0, placement),
        waiting_(waiting),
        local_sense_(max_threads, 0) {
    if (parties_ == 0) {
      throw LockUsageError("Barrier: parties must be > 0");
    }
  }
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Arrives at the barrier and waits for the rest of the generation.
  void arrive_and_wait(Ctx& ctx) {
    const ThreadId tid = ctx.self();
    if (tid >= local_sense_.size()) {
      // Guard before any state moves: with NDEBUG the old assert compiled
      // away and the sense write below became an out-of-bounds store.
      throw LockUsageError("Barrier: thread id exceeds max_threads");
    }
    const std::uint64_t my_sense = local_sense_[tid] ^ 1u;
    local_sense_[tid] = static_cast<std::uint8_t>(my_sense);

    const std::uint64_t arrived = P::fetch_add(ctx, count_, 1) + 1;
    if (arrived == parties_) {
      // Last arriver: reset the counter, flip the sense, wake sleepers.
      P::store(ctx, count_, 0);
      P::store(ctx, sense_, my_sense);
      wake_sleepers(ctx);
      return;
    }
    wait_for_sense(ctx, my_sense);
  }

  [[nodiscard]] std::uint32_t parties() const noexcept { return parties_; }

 private:
  struct Sleeper {
    explicit Sleeper(ThreadId t) : tid(t) {}
    ThreadId tid;
    Sleeper* prev = nullptr;
    Sleeper* next = nullptr;
    bool queued = false;
  };

  void wait_for_sense(Ctx& ctx, std::uint64_t my_sense) {
    const LockAttributes attrs = waiting_;
    for (;;) {
      // Spin phase.
      for (std::uint32_t i = 0; i < attrs.spin_count;) {
        if (P::load(ctx, sense_) == my_sense) return;
        P::pause(ctx);
        if (attrs.spin_count != kInfiniteSpins) ++i;
      }
      if (attrs.sleep_ns == 0) {
        if (attrs.spin_count == 0) P::pause(ctx);
        continue;
      }
      // Sleep phase. The node lives on our stack: it is enqueued and - on
      // every wake path, including timer expiry - dequeued under meta, so
      // the releaser can never observe a dangling node.
      Sleeper node(ctx.self());
      meta_lock(ctx);
      if (P::load(ctx, sense_) == my_sense) {
        meta_unlock(ctx);
        return;
      }
      enqueue_locked(node);
      meta_unlock(ctx);
      if (attrs.sleep_ns == kForever) {
        P::block(ctx);
      } else {
        (void)P::block_for(ctx, attrs.sleep_ns);
      }
      meta_lock(ctx);
      remove_locked(node);  // no-op if the releaser already unlinked us
      meta_unlock(ctx);
      if (P::load(ctx, sense_) == my_sense) return;
    }
  }

  void wake_sleepers(Ctx& ctx) {
    if (waiting_.sleep_ns == 0) return;  // pure-spin barrier: nobody sleeps
    ThreadId tids[kMaxBatch];
    for (;;) {
      std::size_t n = 0;
      meta_lock(ctx);
      while (head_ != nullptr && n < kMaxBatch) {
        Sleeper* s = head_;
        remove_locked(*s);
        tids[n++] = s->tid;
      }
      meta_unlock(ctx);
      for (std::size_t i = 0; i < n; ++i) P::unblock(ctx, tids[i]);
      if (n < kMaxBatch) return;
    }
  }

  void meta_lock(Ctx& ctx) {
    for (;;) {
      if (P::load_relaxed(ctx, meta_) == 0 &&
          P::fetch_or(ctx, meta_, 1) == 0) {
        return;
      }
      P::pause(ctx);
    }
  }
  void meta_unlock(Ctx& ctx) { P::store(ctx, meta_, 0); }

  void enqueue_locked(Sleeper& node) {
    node.prev = tail_;
    node.next = nullptr;
    node.queued = true;
    if (tail_ != nullptr) {
      tail_->next = &node;
    } else {
      head_ = &node;
    }
    tail_ = &node;
  }

  void remove_locked(Sleeper& node) {
    if (!node.queued) return;
    if (node.prev != nullptr) node.prev->next = node.next; else head_ = node.next;
    if (node.next != nullptr) node.next->prev = node.prev; else tail_ = node.prev;
    node.prev = node.next = nullptr;
    node.queued = false;
  }

  static constexpr std::size_t kMaxBatch = 32;

  const std::uint32_t parties_;
  typename P::Word count_;
  typename P::Word sense_;
  typename P::Word meta_;
  const LockAttributes waiting_;
  Sleeper* head_ = nullptr;  ///< guarded by meta
  Sleeper* tail_ = nullptr;  ///< guarded by meta
  std::vector<std::uint8_t> local_sense_;  ///< slot i owned by thread i
};

}  // namespace relock
