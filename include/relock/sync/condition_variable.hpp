// Condition variable over any platform lock (Mesa semantics). Works with
// every lock in this library that exposes lock(ctx)/unlock(ctx), on every
// Platform - native threads, the simulator, and vthreads.
//
// This is the kind of higher-level primitive the paper expects applications
// to assemble from the configurable kernel mechanisms ("the construction of
// new primitives on top of the existing ones").
#pragma once

#include <atomic>

#include "relock/core/usage_error.hpp"
#include "relock/platform/platform.hpp"

namespace relock {

template <Platform P>
class ConditionVariable {
 public:
  using Ctx = typename P::Context;
  using Domain = typename P::Domain;

  explicit ConditionVariable(Domain& domain,
                             Placement placement = Placement::any())
      : meta_(domain, 0, placement) {}
  ConditionVariable(const ConditionVariable&) = delete;
  ConditionVariable& operator=(const ConditionVariable&) = delete;

  /// Atomically releases `lock` and waits for a notification, then
  /// re-acquires `lock`. Mesa semantics: re-check your predicate.
  template <typename L>
  void wait(Ctx& ctx, L& lock) {
    WaitNode node(ctx.self());
    enqueue(ctx, node);
    lock.unlock(ctx);
    while (node.signaled.load(std::memory_order_acquire) == 0) {
      P::block(ctx);
    }
    lock.lock(ctx);
  }

  /// Waits until `pred()` holds (predicate checked under the lock).
  template <typename L, typename Pred>
  void wait(Ctx& ctx, L& lock, Pred pred) {
    while (!pred()) {
      wait(ctx, lock);
    }
  }

  /// Timed wait; returns false if `timeout` elapsed without a notification.
  /// The lock is re-acquired either way.
  template <typename L>
  bool wait_for(Ctx& ctx, L& lock, Nanos timeout) {
    if (timeout == 0) {
      throw LockUsageError("ConditionVariable::wait_for: timeout must be > 0");
    }
    // Anchor the deadline at entry: the unlock below can run a full release
    // module (direct handoff, sleeper wakes), and anchoring after it would
    // silently extend the caller's timeout by that much.
    const Nanos deadline = P::now(ctx) + timeout;
    WaitNode node(ctx.self());
    enqueue(ctx, node);
    lock.unlock(ctx);
    bool signaled = false;
    for (;;) {
      if (node.signaled.load(std::memory_order_acquire) != 0) {
        signaled = true;
        break;
      }
      const Nanos now = P::now(ctx);
      if (now >= deadline) break;
      (void)P::block_for(ctx, deadline - now);
    }
    if (!signaled) {
      // Timeout: withdraw - unless a notifier picked us in the meantime
      // (it marks `signaled` under meta before waking).
      meta_lock(ctx);
      if (node.signaled.load(std::memory_order_relaxed) != 0) {
        signaled = true;
      } else {
        remove_locked(node);
      }
      meta_unlock(ctx);
    }
    lock.lock(ctx);
    return signaled;
  }

  /// Wakes one waiter (FIFO).
  void notify_one(Ctx& ctx) {
    meta_lock(ctx);
    WaitNode* node = head_;
    ThreadId tid = kInvalidThread;
    if (node != nullptr) {
      remove_locked(*node);
      tid = node->tid;
      node->signaled.store(1, std::memory_order_release);
      // After this store the node (on the waiter's stack) may vanish.
    }
    meta_unlock(ctx);
    if (tid != kInvalidThread) P::unblock(ctx, tid);
  }

  /// Wakes every waiter.
  void notify_all(Ctx& ctx) {
    // Capture tids under meta; wake outside it.
    ThreadId tids[kMaxBatch];
    for (;;) {
      std::size_t n = 0;
      meta_lock(ctx);
      while (head_ != nullptr && n < kMaxBatch) {
        WaitNode* node = head_;
        remove_locked(*node);
        tids[n++] = node->tid;
        node->signaled.store(1, std::memory_order_release);
      }
      meta_unlock(ctx);
      for (std::size_t i = 0; i < n; ++i) P::unblock(ctx, tids[i]);
      if (n < kMaxBatch) return;
    }
  }

 private:
  struct WaitNode {
    explicit WaitNode(ThreadId t) : tid(t) {}
    ThreadId tid;
    std::atomic<std::uint32_t> signaled{0};
    WaitNode* prev = nullptr;
    WaitNode* next = nullptr;
    bool queued = false;
  };

  static constexpr std::size_t kMaxBatch = 16;

  void meta_lock(Ctx& ctx) {
    for (;;) {
      if (P::load_relaxed(ctx, meta_) == 0 &&
          P::fetch_or(ctx, meta_, 1) == 0) {
        return;
      }
      P::pause(ctx);
    }
  }
  void meta_unlock(Ctx& ctx) { P::store(ctx, meta_, 0); }

  void enqueue(Ctx& ctx, WaitNode& node) {
    meta_lock(ctx);
    node.prev = tail_;
    node.next = nullptr;
    node.queued = true;
    if (tail_ != nullptr) {
      tail_->next = &node;
    } else {
      head_ = &node;
    }
    tail_ = &node;
    meta_unlock(ctx);
  }

  void remove_locked(WaitNode& node) {
    if (!node.queued) return;
    if (node.prev != nullptr) node.prev->next = node.next; else head_ = node.next;
    if (node.next != nullptr) node.next->prev = node.prev; else tail_ = node.prev;
    node.prev = node.next = nullptr;
    node.queued = false;
  }

  typename P::Word meta_;
  WaitNode* head_ = nullptr;  ///< guarded by meta
  WaitNode* tail_ = nullptr;  ///< guarded by meta
};

}  // namespace relock
