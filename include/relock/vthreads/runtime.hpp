// vthreads: a Cthreads-like user-level threads package (the paper's native
// substrate [Muk91, SFG+91]). M user-level threads (coroutines) are
// multiplexed onto N "virtual processors" (host threads). Blocking a
// vthread is a user-level reschedule: the virtual processor immediately
// runs another vthread - which is exactly the behaviour the paper's
// blocking locks exploit ("threads accessing critical sections protected by
// locks should be blocked to enable the execution of other threads
// performing useful work").
#pragma once

#include <condition_variable>
#include <exception>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <vector>

#include "relock/platform/types.hpp"
#include "relock/sim/coroutine.hpp"

namespace relock::vthreads {

class Runtime;

/// A user-level thread. Also serves as VthreadPlatform::Context.
class VThread {
 public:
  [[nodiscard]] ThreadId self() const noexcept { return id_; }
  [[nodiscard]] Priority priority() const noexcept { return priority_; }
  void set_priority(Priority p) noexcept { priority_ = p; }
  [[nodiscard]] Runtime& runtime() noexcept { return *runtime_; }

  /// Spin-then-yield accounting for VthreadPlatform::pause (see there).
  std::uint32_t pause_streak = 0;

 private:
  friend class Runtime;

  enum class State : std::uint8_t {
    kRunnable, kRunning, kParked, kFinished
  };
  /// What the vthread asked for when it suspended; acted upon by the
  /// worker under the runtime lock (this is what makes park/unpark
  /// race-free: the state transition happens after the stack switch).
  enum class Pending : std::uint8_t { kNone, kYield, kPark, kParkTimed };

  Runtime* runtime_ = nullptr;
  ThreadId id_ = kInvalidThread;
  Priority priority_ = kDefaultPriority;
  State state_ = State::kRunnable;
  Pending pending_ = Pending::kNone;
  Nanos pending_deadline_ = 0;
  bool token_ = false;           ///< unpark arrived while not parked
  bool woke_by_unpark_ = false;  ///< outcome of the last timed park
  std::uint64_t park_gen_ = 0;   ///< invalidates stale timers
  std::vector<ThreadId> joiners_;
  std::unique_ptr<sim::Coroutine> coro_;
};

class Runtime {
 public:
  /// Starts `vprocs` virtual processors.
  explicit Runtime(unsigned vprocs = 2);
  /// Precondition: all vthreads have finished (call wait_all() first).
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Creates a vthread; it becomes runnable immediately. Callable from the
  /// host or from inside a vthread.
  ThreadId spawn(std::function<void(VThread&)> body,
                 Priority priority = kDefaultPriority);

  /// Host-side: blocks until every spawned vthread has finished. Rethrows
  /// the first exception that escaped a vthread body, if any.
  void wait_all();

  // --- Called from inside vthreads. ---
  void yield(VThread& t);
  void park(VThread& t);
  /// Timed park; returns true iff woken by unpark (vs. timeout).
  bool park_for(VThread& t, Nanos ns);
  /// Blocks until vthread `target` finishes.
  void join(VThread& t, ThreadId target);

  /// Wakes vthread `tid`. Callable from vthreads, workers, or the host.
  void unpark(ThreadId tid);

  [[nodiscard]] unsigned vproc_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }
  [[nodiscard]] std::size_t live_threads() const;

 private:
  struct Timer {
    Nanos deadline;
    ThreadId tid;
    std::uint64_t gen;
    bool operator>(const Timer& o) const noexcept {
      return deadline > o.deadline;
    }
  };

  void worker_loop();
  /// Runtime lock held. Makes `t` runnable and pokes an idle worker.
  void make_runnable_locked(VThread& t);
  /// Runtime lock held. Fires due timers.
  void expire_timers_locked(Nanos now);
  /// Runtime lock held. Post-suspension bookkeeping for `t`.
  void handle_suspension_locked(VThread& t);

  mutable std::mutex mu_;
  std::exception_ptr pending_error_;  ///< first escaped vthread exception
  std::condition_variable work_cv_;   ///< workers wait here
  std::condition_variable idle_cv_;   ///< wait_all() waits here
  std::deque<VThread*> runnable_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  std::vector<std::unique_ptr<VThread>> threads_;
  std::size_t live_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace relock::vthreads
