// VthreadPlatform: the Platform implementation over the vthreads runtime.
// Lock algorithms instantiated with it run as user-level threads; their
// blocking operations deschedule the vthread (not the host thread), so a
// virtual processor always keeps running other vthreads - the regime of the
// paper's Figure 3/7 experiments.
#pragma once

#include <atomic>

#include "relock/platform/cacheline.hpp"
#include "relock/platform/clock.hpp"
#include "relock/platform/types.hpp"
#include "relock/vthreads/runtime.hpp"

namespace relock::vthreads {

/// One atomic word. Signature-compatible with the other platforms' words.
struct Word {
  explicit Word(Runtime& /*runtime*/, std::uint64_t initial = 0,
                Placement /*placement*/ = Placement::any())
      : v(initial) {}
  Word(const Word&) = delete;
  Word& operator=(const Word&) = delete;

  alignas(kCacheLineSize) std::atomic<std::uint64_t> v;
};

struct VthreadPlatform {
  using Context = VThread;
  using Word = vthreads::Word;
  using Domain = Runtime;

  static std::uint64_t load(Context&, const Word& w) noexcept {
    return w.v.load(std::memory_order_acquire);
  }
  static std::uint64_t load_relaxed(Context&, const Word& w) noexcept {
    return w.v.load(std::memory_order_relaxed);
  }
  static void store(Context&, Word& w, std::uint64_t v) noexcept {
    w.v.store(v, std::memory_order_release);
  }
  static std::uint64_t fetch_or(Context&, Word& w, std::uint64_t v) noexcept {
    return w.v.fetch_or(v, std::memory_order_acq_rel);
  }
  static std::uint64_t fetch_and(Context&, Word& w, std::uint64_t v) noexcept {
    return w.v.fetch_and(v, std::memory_order_acq_rel);
  }
  static std::uint64_t fetch_add(Context&, Word& w, std::uint64_t v) noexcept {
    return w.v.fetch_add(v, std::memory_order_acq_rel);
  }
  static std::uint64_t exchange(Context&, Word& w, std::uint64_t v) noexcept {
    return w.v.exchange(v, std::memory_order_acq_rel);
  }
  static bool cas(Context&, Word& w, std::uint64_t expected,
                  std::uint64_t desired) noexcept {
    return w.v.compare_exchange_strong(expected, desired,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire);
  }

  /// Spin hint. Unlike kernel threads, a spinning vthread could occupy its
  /// virtual processor forever and livelock an oversubscribed runtime, so
  /// after a streak of pauses we yield the vproc - the spirit of spinning
  /// is kept (tight probing) while guaranteeing progress.
  static void pause(Context& ctx) {
    if (++ctx.pause_streak >= kPausesBeforeYield) {
      ctx.pause_streak = 0;
      ctx.runtime().yield(ctx);
      return;
    }
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  }

  static void delay(Context& ctx, Nanos ns) {
    // Long backoff delays cede the vproc; short ones busy-wait.
    if (ns >= kYieldDelayThreshold) {
      ctx.runtime().park_for(ctx, ns);
    } else {
      spin_for(ns);
    }
  }

  static void compute(Context&, Nanos ns) { spin_for(ns); }

  static void yield(Context& ctx) { ctx.runtime().yield(ctx); }

  static void block(Context& ctx) { ctx.runtime().park(ctx); }
  static bool block_for(Context& ctx, Nanos ns) {
    return ctx.runtime().park_for(ctx, ns);
  }
  static void unblock(Context& ctx, ThreadId tid) {
    ctx.runtime().unpark(tid);
  }

  static Nanos now(Context&) noexcept { return monotonic_now(); }
  static int home_node(Context&) noexcept { return Placement::kAnyNode; }

  static constexpr std::uint32_t kPausesBeforeYield = 64;
  static constexpr Nanos kYieldDelayThreshold = 100'000;
};

}  // namespace relock::vthreads
