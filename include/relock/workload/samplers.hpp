// Value-semantic duration samplers for workload generation. Deterministic
// given the caller's RNG; reproducible across platforms (we do not rely on
// std::<random> distributions, whose outputs are implementation-defined).
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>

#include "relock/platform/rng.hpp"
#include "relock/platform/types.hpp"

namespace relock::workload {

class Sampler {
 public:
  enum class Kind : std::uint8_t {
    kConstant,
    kUniform,      ///< uniform in [a, b]
    kExponential,  ///< mean a
    kBimodal,      ///< a with probability p, else b (short/long CS mix)
  };

  static Sampler constant(Nanos v) { return Sampler(Kind::kConstant, v, v, 0); }
  static Sampler uniform(Nanos lo, Nanos hi) {
    assert(lo <= hi);
    return Sampler(Kind::kUniform, lo, hi, 0);
  }
  static Sampler exponential(Nanos mean) {
    return Sampler(Kind::kExponential, mean, 0, 0);
  }
  static Sampler bimodal(Nanos short_v, Nanos long_v, double p_short) {
    return Sampler(Kind::kBimodal, short_v, long_v, p_short);
  }

  [[nodiscard]] Nanos sample(Xoshiro256& rng) const {
    switch (kind_) {
      case Kind::kConstant:
        return a_;
      case Kind::kUniform:
        return rng.next_in(a_, b_);
      case Kind::kExponential: {
        // Inverse-CDF; clamp the tail to 20x the mean to keep simulated
        // runs bounded.
        const double u = rng.next_double();
        const double v = -static_cast<double>(a_) * std::log1p(-u);
        const double cap = 20.0 * static_cast<double>(a_);
        return static_cast<Nanos>(v < cap ? v : cap);
      }
      case Kind::kBimodal:
        return rng.next_double() < p_ ? a_ : b_;
    }
    return a_;
  }

  [[nodiscard]] double mean() const {
    switch (kind_) {
      case Kind::kConstant:
      case Kind::kExponential:
        return static_cast<double>(a_);
      case Kind::kUniform:
        return (static_cast<double>(a_) + static_cast<double>(b_)) / 2.0;
      case Kind::kBimodal:
        return p_ * static_cast<double>(a_) +
               (1.0 - p_) * static_cast<double>(b_);
    }
    return 0.0;
  }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Sampler(Kind k, Nanos a, Nanos b, double p) : kind_(k), a_(a), b_(b), p_(p) {}

  Kind kind_;
  Nanos a_;
  Nanos b_;
  double p_;
};

/// Stateful arrival process: yields the think time preceding each lock
/// request. Uniformly distributed arrivals and the paper's "bursty" pattern
/// (Figures 1 and 2).
class ArrivalProcess {
 public:
  enum class Kind : std::uint8_t {
    kSmooth,  ///< i.i.d. think times from a sampler
    kBursty,  ///< bursts of back-to-back requests separated by long gaps
  };

  static ArrivalProcess smooth(Sampler think) {
    return ArrivalProcess(Kind::kSmooth, think, 0, 0, 0);
  }
  /// `burst_size` requests separated by `intra_gap`, then one `inter_gap`.
  static ArrivalProcess bursty(std::uint32_t burst_size, Nanos intra_gap,
                               Nanos inter_gap) {
    assert(burst_size > 0);
    return ArrivalProcess(Kind::kBursty, Sampler::constant(0), burst_size,
                          intra_gap, inter_gap);
  }

  [[nodiscard]] Nanos next(Xoshiro256& rng) {
    if (kind_ == Kind::kSmooth) return think_.sample(rng);
    if (++position_ % burst_size_ == 0) return inter_gap_;
    return intra_gap_;
  }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  ArrivalProcess(Kind k, Sampler think, std::uint32_t burst, Nanos intra,
                 Nanos inter)
      : kind_(k), think_(think), burst_size_(burst), intra_gap_(intra),
        inter_gap_(inter) {}

  Kind kind_;
  Sampler think_;
  std::uint32_t burst_size_ = 1;
  Nanos intra_gap_ = 0;
  Nanos inter_gap_ = 0;
  std::uint64_t position_ = 0;
};

}  // namespace relock::workload
