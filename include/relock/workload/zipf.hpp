// Zipfian key sampler for skewed workload generation (Gray et al.,
// "Quickly Generating Billion-Record Synthetic Databases", as popularized
// by YCSB). theta in [0, 1): 0 degenerates to uniform, ~0.99 is the
// classic YCSB hotspot. The scrambled variant decorrelates rank from key
// so the hot set scatters across the table instead of clustering at the
// low keys.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>

#include "relock/platform/rng.hpp"

namespace relock::workload {

class ZipfianSampler {
 public:
  ZipfianSampler(std::uint64_t n, double theta) : n_(n), theta_(theta) {
    assert(n > 0);
    assert(theta < 1.0);
    if (theta_ <= 0.0) return;  // uniform fallback
    zetan_ = zeta(n_, theta_);
    const double zeta2 = zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
  }

  /// Rank sample in [0, n): rank 0 is the hottest key.
  [[nodiscard]] std::uint64_t sample(Xoshiro256& rng) const {
    if (theta_ <= 0.0) return rng.next() % n_;
    const double u = rng.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto rank = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
  }

  /// Rank sample with the hot set scattered over the key space.
  [[nodiscard]] std::uint64_t sample_scrambled(Xoshiro256& rng) const {
    return mix(sample(rng)) % n_;
  }

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] double theta() const noexcept { return theta_; }

 private:
  static double zeta(std::uint64_t n, double theta) {
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  static constexpr std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  std::uint64_t n_;
  double theta_;
  double zetan_ = 0.0;
  double alpha_ = 0.0;
  double eta_ = 0.0;
};

}  // namespace relock::workload
