// Client-server workload (paper section 4.3.1, Table 7): one server thread
// on a dedicated processor serves many clients through a shared message
// buffer protected by the lock under test. Clients enqueue requests into
// the buffer and then poll the buffer for their replies - so while a client
// waits, it repeatedly acquires the buffer lock, flooding it. That polling
// herd is exactly why the paper's FCFS lock hurts the server: every server
// acquisition queues behind the whole herd.
//
// Scheduler effects reproduced here:
//  - FCFS: the server waits its turn behind every polling client.
//  - Priority threshold: the server (high priority) dynamically raises the
//    lock's threshold when flooded, making clients ineligible until the
//    backlog drains (the paper's "second implementation" of priority locks).
//  - Handoff: clients hand the buffer lock directly to the server.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "relock/core/configurable_lock.hpp"
#include "relock/sim/machine.hpp"

namespace relock::workload {

struct ClientServerConfig {
  std::uint32_t clients = 8;
  std::uint32_t requests_per_client = 20;
  Nanos service_time = 30'000;   ///< server-side processing per request
  Nanos client_think = 10'000;   ///< client delay between requests
  Nanos buffer_op = 5'000;       ///< queue manipulation inside the CS
  Nanos reply_check = 2'000;     ///< reply-slot inspection inside the CS
  Nanos poll_gap = 3'000;        ///< client delay between reply polls
  Priority server_priority = 10;
  Priority client_priority = 0;
  /// Threshold raised to this value when the server is flooded.
  Priority flood_threshold = 5;
  /// Backlog at which the server considers itself flooded.
  std::uint32_t flood_backlog = 3;
};

struct ClientServerResult {
  Nanos elapsed = 0;
  std::uint64_t served = 0;
  std::uint64_t threshold_raises = 0;
};

/// Runs the client-server experiment with the given lock configuration.
/// `use_handoff_hints`: clients release the buffer lock directly to the
/// server. `use_dynamic_threshold`: the server adapts the priority
/// threshold to the backlog (requires kPriorityThreshold).
inline ClientServerResult run_client_server(
    sim::Machine& m, ConfigurableLock<sim::SimPlatform>& lock,
    const ClientServerConfig& cfg, bool use_handoff_hints,
    bool use_dynamic_threshold) {
  using sim::Thread;

  const Nanos start = m.now();
  const std::uint64_t total_requests =
      static_cast<std::uint64_t>(cfg.clients) * cfg.requests_per_client;

  struct Shared {
    std::deque<std::uint32_t> requests;   ///< client ids; guarded by `lock`
    std::vector<std::uint8_t> replies;    ///< per-client; guarded by `lock`
    ThreadId server_tid = kInvalidThread;
    std::uint64_t served = 0;
    std::uint64_t raises = 0;
  };
  auto shared = std::make_shared<Shared>();
  shared->replies.assign(cfg.clients, 0);

  const std::uint32_t procs = m.node_count();
  const auto server_proc = static_cast<sim::ProcId>(procs - 1);

  // Server.
  m.spawn(server_proc, [&m, &lock, cfg, shared, total_requests,
                        use_dynamic_threshold](Thread& t) {
    shared->server_tid = t.self();
    bool raised = false;
    while (shared->served < total_requests) {
      lock.lock(t);
      m.compute(t, cfg.buffer_op);
      bool have = !shared->requests.empty();
      std::uint32_t client = 0;
      const std::size_t backlog = shared->requests.size();
      if (have) {
        client = shared->requests.front();
        shared->requests.pop_front();
      }
      lock.unlock(t);

      if (use_dynamic_threshold) {
        if (!raised && backlog >= cfg.flood_backlog) {
          lock.set_priority_threshold(t, cfg.flood_threshold);
          raised = true;
          ++shared->raises;
        } else if (raised && backlog <= 1) {
          lock.set_priority_threshold(t, kDefaultPriority);
          raised = false;
        }
      }

      if (have) {
        m.compute(t, cfg.service_time);
        lock.lock(t);
        m.compute(t, cfg.reply_check);
        shared->replies[client] = 1;  // post the reply into the buffer
        lock.unlock(t);
        ++shared->served;
      } else {
        sim::SimPlatform::pause(t);
      }
    }
    if (use_dynamic_threshold && raised) {
      lock.set_priority_threshold(t, kDefaultPriority);
    }
  }, cfg.server_priority);

  // Clients.
  for (std::uint32_t c = 0; c < cfg.clients; ++c) {
    const auto client_proc = static_cast<sim::ProcId>(c % (procs - 1));
    m.spawn(client_proc,
            [&m, &lock, cfg, shared, c, use_handoff_hints](Thread& t) {
      auto release = [&](Thread& th) {
        if (use_handoff_hints && shared->server_tid != kInvalidThread) {
          lock.unlock_to(th, shared->server_tid);
        } else {
          lock.unlock(th);
        }
      };
      for (std::uint32_t r = 0; r < cfg.requests_per_client; ++r) {
        m.compute(t, cfg.client_think);
        lock.lock(t);
        m.compute(t, cfg.buffer_op);
        shared->requests.push_back(c);
        release(t);

        // Poll the shared buffer for the reply (each poll takes the lock).
        for (;;) {
          lock.lock(t);
          m.compute(t, cfg.reply_check);
          const bool got = shared->replies[c] != 0;
          if (got) shared->replies[c] = 0;
          release(t);
          if (got) break;
          m.compute(t, cfg.poll_gap);
        }
      }
    }, cfg.client_priority);
  }

  m.run();
  ClientServerResult res;
  res.elapsed = m.now() - start;
  res.served = shared->served;
  res.threshold_raises = shared->raises;
  return res;
}

}  // namespace relock::workload
