// The paper's workload simulator (section 2): "binds one or more thread to
// each processor which generate locking requests following a user defined
// pattern". Closed-loop critical-section workload on the simulated machine,
// optionally with additional "useful" compute threads per processor
// (Figure 3), generic over the lock type under test.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "relock/platform/rng.hpp"
#include "relock/sim/machine.hpp"
#include "relock/workload/samplers.hpp"

namespace relock::workload {

struct CsWorkloadConfig {
  /// Locking threads; thread i is bound to processor i % processors.
  std::uint32_t locking_threads = 8;
  /// Lock/unlock cycles per locking thread.
  std::uint32_t iterations = 100;
  /// Think time preceding each request (arrival pattern).
  ArrivalProcess arrival = ArrivalProcess::smooth(Sampler::constant(10'000));
  /// Critical-section length distribution.
  Sampler cs_length = Sampler::constant(50'000);
  /// Extra compute-only threads bound to each locking thread's processor.
  std::uint32_t useful_threads_per_proc = 0;
  /// Total compute performed by each useful thread, in chunks.
  Nanos useful_work_total = 0;
  Nanos useful_work_chunk = 100'000;
  std::uint64_t seed = 0x9E3779B97F4A7C15ULL;
};

struct CsWorkloadResult {
  Nanos elapsed = 0;             ///< virtual time from start to last finish
  std::uint64_t acquisitions = 0;
  sim::MachineStats machine;     ///< access/scheduling statistics
};

/// Runs the workload to completion. The lock is driven through lock()/
/// unlock(); per-acquisition hooks allow advisory/handoff experiments to
/// inject owner behaviour (default: plain compute of the CS length).
///
/// `L` must provide lock(Thread&)/unlock(Thread&) (bool or void returns).
template <typename L>
CsWorkloadResult run_cs_workload(sim::Machine& m, L& lock,
                                 const CsWorkloadConfig& cfg) {
  const Nanos start = m.now();
  m.reset_stats();
  std::uint64_t acquisitions = 0;

  const std::uint32_t procs = m.node_count();
  for (std::uint32_t i = 0; i < cfg.locking_threads; ++i) {
    const auto proc = static_cast<sim::ProcId>(i % procs);
    m.spawn(proc, [&m, &lock, &cfg, &acquisitions, i](sim::Thread& t) {
      Xoshiro256 rng(cfg.seed + i);
      ArrivalProcess arrival = cfg.arrival;  // per-thread copy (stateful)
      for (std::uint32_t j = 0; j < cfg.iterations; ++j) {
        m.compute(t, arrival.next(rng));
        lock.lock(t);
        m.compute(t, cfg.cs_length.sample(rng));
        ++acquisitions;
        lock.unlock(t);
      }
    });
    for (std::uint32_t u = 0; u < cfg.useful_threads_per_proc; ++u) {
      m.spawn(proc, [&m, &cfg](sim::Thread& t) {
        Nanos remaining = cfg.useful_work_total;
        while (remaining > 0) {
          const Nanos chunk = std::min(remaining, cfg.useful_work_chunk);
          m.compute(t, chunk);
          remaining -= chunk;
        }
      });
    }
  }
  m.run();

  CsWorkloadResult r;
  r.elapsed = m.now() - start;
  r.acquisitions = acquisitions;
  r.machine = m.stats();
  return r;
}

/// Variant where the critical section body is supplied by the caller:
/// body(thread, rng, iteration) runs while holding the lock. Used by the
/// advisory-lock experiment, where the owner publishes advice based on the
/// length it is about to hold the lock for.
template <typename L, typename Body>
CsWorkloadResult run_cs_workload_with_body(sim::Machine& m, L& lock,
                                           const CsWorkloadConfig& cfg,
                                           Body body) {
  const Nanos start = m.now();
  m.reset_stats();
  std::uint64_t acquisitions = 0;

  const std::uint32_t procs = m.node_count();
  for (std::uint32_t i = 0; i < cfg.locking_threads; ++i) {
    const auto proc = static_cast<sim::ProcId>(i % procs);
    m.spawn(proc, [&m, &lock, &cfg, &acquisitions, body, i](sim::Thread& t) {
      Xoshiro256 rng(cfg.seed + i);
      ArrivalProcess arrival = cfg.arrival;
      for (std::uint32_t j = 0; j < cfg.iterations; ++j) {
        m.compute(t, arrival.next(rng));
        lock.lock(t);
        body(t, rng, j);
        ++acquisitions;
        lock.unlock(t);
      }
    });
    for (std::uint32_t u = 0; u < cfg.useful_threads_per_proc; ++u) {
      m.spawn(proc, [&m, &cfg](sim::Thread& t) {
        Nanos remaining = cfg.useful_work_total;
        while (remaining > 0) {
          const Nanos chunk = std::min(remaining, cfg.useful_work_chunk);
          m.compute(t, chunk);
          remaining -= chunk;
        }
      });
    }
  }
  m.run();

  CsWorkloadResult r;
  r.elapsed = m.now() - start;
  r.acquisitions = acquisitions;
  r.machine = m.stats();
  return r;
}

}  // namespace relock::workload
