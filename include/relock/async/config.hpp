// Feature gate for the awaitable front-end. Mirrors the RELOCK_TRACE
// pattern: when the build does not define RELOCK_ASYNC (CMake option off,
// or the toolchain probe found no usable coroutine support) every header
// under relock/async/ compiles to nothing, so including them is always
// safe. __cpp_impl_coroutine is re-checked here because RELOCK_ASYNC can
// be set by hand on a compiler line that lacks -std=c++20.
#pragma once

#if defined(RELOCK_ASYNC) && defined(__cpp_impl_coroutine)
#define RELOCK_ASYNC_ENABLED 1
#else
#define RELOCK_ASYNC_ENABLED 0
#endif
