// AsyncGate: the awaitable front-end's bridge into ConfigurableLock's
// private arrival, withdrawal, and quiescence machinery. A suspended
// coroutine cannot run the lock's waiting engine (there is no thread to
// spin or park), so the gate replays exactly the registration half of the
// sync protocols - the lock-free arrival push, the breaker arm, the
// timeout-vs-grant resolution - on behalf of a WaiterRecord whose grant is
// delivered through WaiterRecord::grant_hook instead of a polled flag.
//
// Contains no coroutine code itself (it is pure lock-protocol glue), but
// lives under relock/async/ and behind its gate because nothing else
// needs it.
#pragma once

#include "relock/async/config.hpp"

#if RELOCK_ASYNC_ENABLED

#include <atomic>
#include <cstdint>

#include "relock/core/configurable_lock.hpp"
#include "relock/core/waiter.hpp"
#include "relock/platform/chk_hooks.hpp"

namespace relock {

template <Platform P>
struct AsyncGate {
  static_assert(kRealConcurrency<P>,
                "the async front-end requires the lock-free arrival paths "
                "(kRealConcurrency platforms only)");

  using Lock = ConfigurableLock<P>;
  using Ctx = typename P::Context;
  using Rec = WaiterRecord<P>;

  /// Where an enqueued record lives, so a later timeout withdrawal knows
  /// which drain to run first. kCell also covers reader-writer records:
  /// they are module-enqueued under meta and never sit on the arrival
  /// stack, so the stack drain must be skipped for them too.
  enum class EnqueueMode : std::uint8_t { kStack, kCell };

  [[nodiscard]] static typename P::Domain& domain(Lock& lk) noexcept {
    return lk.domain_;
  }
  [[nodiscard]] static Placement flag_placement(Lock& lk, Ctx& ctx) {
    return lk.grant_flag_placement(ctx);
  }
  [[nodiscard]] static bool is_rw(const Lock& lk) noexcept {
    return lk.rw_capable();
  }

  /// Arms the conditional-waiter breaker for a timed async wait: a record
  /// that may be withdrawn off-queue must never be fast-granted or
  /// pre-selected behind the meta guard's back (same contract as the sync
  /// paths' BreakerToken). Armed BEFORE the record becomes reachable; the
  /// timeout resolution waits out releases already in flight.
  static void arm_breaker(Ctx& ctx, Lock& lk) {
    chk_point<P>(ctx, "bt.arm");
    lk.quiesce_breakers_.fetch_add(1, std::memory_order_seq_cst);
    lk.note(ctx, LockEvent::kBreakerArm);
  }
  static void disarm_breaker(Ctx& ctx, Lock& lk) {
    lk.quiesce_breakers_.fetch_sub(1, std::memory_order_seq_cst);
    lk.note(ctx, LockEvent::kBreakerDisarm);
  }

  /// Contended arrival for an exclusive coroutine waiter: the sync
  /// acquire_scheduled_lockfree / acquire_queue_lockfree push protocols,
  /// minus the waiting engine. After the record is published a concurrent
  /// release may grant it - and its hook may resume the frame - at any
  /// moment, including from inside the lost-release guard below; callers
  /// must not touch the op after this returns unless they are the only
  /// party that ever resumes it (the manager executor is).
  static EnqueueMode enqueue(Ctx& ctx, Lock& lk, Rec& rec) {
    // Registration + acquisition bookkeeping, as acquire_slow does it.
    P::store(ctx, lk.registry_, static_cast<std::uint64_t>(ctx.self()) + 1);
    (void)P::load(ctx, lk.config_word_);

    const SchedulerKind kind = lk.arrival_target_kind();
    EnqueueMode mode;
    if (kind == SchedulerKind::kQueue) {
      // MCS enqueue into the lock-resident cell (acquire_queue_lockfree).
      rec.qnext.store(nullptr, std::memory_order_relaxed);
      chk_point<P>(ctx, "qa.swap");
      Rec* const qprev =
          lk.queue_cell_.tail.exchange(&rec, std::memory_order_seq_cst);
      lk.note(ctx, LockEvent::kRegistered, ctx.self());
      if (qprev != nullptr) {
        chk_point<P>(ctx, "qa.link");
        qprev->qnext.store(&rec, std::memory_order_release);
      } else {
        chk_point<P>(ctx, "qa.first");
        lk.queue_cell_.first.store(&rec, std::memory_order_release);
      }
      lk.queue_cell_.count.fetch_add(1, std::memory_order_relaxed);
      mode = EnqueueMode::kCell;
    } else {
      // Arrival-stack push (acquire_scheduled_lockfree). kNone also lands
      // here: a coroutine cannot barge in the TTAS engine, so it rides the
      // stack and the release module's orphan FIFO hands off directly -
      // the same machinery that absorbs reconfigure-to-kNone races.
      rec.arrival_next.store(kArrivalLinkPending, std::memory_order_relaxed);
      const std::uint64_t prev = P::exchange(
          ctx, lk.arrivals_,
          static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(&rec)));
      lk.note(ctx, LockEvent::kRegistered, ctx.self());
      chk_point<P>(ctx, "arr.link");
      rec.arrival_next.store(static_cast<std::uintptr_t>(prev),
                             std::memory_order_release);
      mode = EnqueueMode::kStack;
    }
    lk.waiter_count_.fetch_add(1, std::memory_order_relaxed);

    // Full-mode mark + lost-release Dekker re-check, exactly as the sync
    // pushes (see acquire_scheduled_lockfree for the two jobs this does).
    chk_point<P>(ctx, "arr.mark");
    if (Lock::claimed(P::fetch_or(ctx, lk.state_, Lock::kStateContended)) &&
        Lock::claimed(P::fetch_or(ctx, lk.state_, Lock::kStateHeld))) {
      lk.meta_lock(ctx);
      lk.grant_or_free(ctx, kInvalidThread);  // may grant rec and run its hook
    }
    return mode;
  }

  /// Reader-writer arrival (mirrors acquire_rw). Returns true when entry
  /// was immediate - the record was never enqueued and the caller resumes
  /// the frame itself. RW waiters arm no breaker: RW locks never take the
  /// fast-release path, so there is no epoch to break.
  static bool enqueue_rw(Ctx& ctx, Lock& lk, Rec& rec, bool shared) {
    P::store(ctx, lk.registry_, static_cast<std::uint64_t>(ctx.self()) + 1);
    (void)P::load(ctx, lk.config_word_);

    lk.meta_lock(ctx);
    if (lk.rw_can_enter(shared)) {
      lk.rw_enter(ctx, shared);
      lk.meta_unlock(ctx);
      if (shared) {
        lk.monitor_.on_shared_acquire();
      } else {
        lk.on_acquired_exclusive(ctx, /*contended=*/false, P::now(ctx));
      }
      return true;
    }
    Scheduler<P>* target = lk.has_pending_.load(std::memory_order_relaxed)
                               ? lk.pending_scheduler_.get()
                               : lk.scheduler_.get();
    rec.registered_with = target;
    target->enqueue(rec);
    lk.waiter_count_.fetch_add(1, std::memory_order_relaxed);
    lk.meta_unlock(ctx);
    return false;
  }

  /// Resolves a timed async wait whose timer fired: the MCS-with-timeout
  /// self-removal protocol of the sync timed paths. Returns true when the
  /// record was withdrawn (the timeout wins). Returns false when a grant
  /// beat the withdrawal - the granted flag is published before a fast
  /// release retires from the in-flight epoch, so after wait_fast_releases
  /// the re-check below observes every such grant; the hook delivery may
  /// still be in flight on the granter (it fires after the retire, outside
  /// the epoch, so an inline-resumed frame's unlock cannot deadlock against
  /// this meta-held drain) and arrives as an ordinary grant message for the
  /// caller to consume normally.
  static bool resolve_timeout(Ctx& ctx, Lock& lk, Rec& rec, EnqueueMode mode) {
    lk.meta_lock(ctx);
    lk.wait_fast_releases(ctx);
    if (mode == EnqueueMode::kStack) lk.drain_arrivals(ctx);
    if (rec.granted_flag_host || P::load(ctx, rec.granted) != 0) {
      lk.meta_unlock(ctx);
      return false;
    }
    chk_point<P>(ctx, "to.cache");
    if (lk.next_grant_.load(std::memory_order_relaxed) == &rec) {
      // A pre-breaker fast release pre-selected us as the next grantee;
      // the record is on no queue, just empty the cache.
      lk.next_grant_.store(nullptr, std::memory_order_relaxed);
    } else {
      lk.withdraw(ctx, rec);
    }
    lk.note(ctx, LockEvent::kTimeoutReturn, rec.tid);
    lk.meta_unlock(ctx);
    lk.waiter_count_.fetch_sub(1, std::memory_order_relaxed);
    lk.monitor_.on_timeout();
    return true;
  }

  /// Post-grant bookkeeping, run on the resumed frame's context: the tail
  /// of the sync granted path. t0 is 0 - async waits carry no wait-time
  /// sample (the frame was not running to take one).
  static void complete(Ctx& ctx, Lock& lk, bool shared) {
    lk.waiter_count_.fetch_sub(1, std::memory_order_relaxed);
    lk.on_granted(ctx, shared, /*t0=*/0);
  }
};

}  // namespace relock

#endif  // RELOCK_ASYNC_ENABLED
