// AsyncSemaphore: an awaitable counting semaphore - the async counterpart
// of relock/sync/semaphore.hpp. acquire_async suspends the coroutine when
// the count is zero; release grants queued frames FIFO and resumes them
// inline on the releasing thread (or through an Executor when one is
// bound), mirroring the sync semaphore's direct-grant release.
#pragma once

#include "relock/async/config.hpp"

#if RELOCK_ASYNC_ENABLED

#include <coroutine>
#include <cstdint>

#include "relock/core/attributes.hpp"
#include "relock/core/usage_error.hpp"
#include "relock/platform/chk_hooks.hpp"
#include "relock/platform/platform.hpp"

namespace relock::async {

template <Platform P>
class AsyncSemaphore {
 public:
  using Ctx = typename P::Context;
  using Domain = typename P::Domain;

  explicit AsyncSemaphore(Domain& domain, std::uint32_t initial = 0,
                          Placement placement = Placement::any())
      : meta_(domain, 0, placement), count_(initial) {}
  AsyncSemaphore(const AsyncSemaphore&) = delete;
  AsyncSemaphore& operator=(const AsyncSemaphore&) = delete;

  class [[nodiscard]] Awaiter {
   public:
    Awaiter(AsyncSemaphore& sem, Ctx& launch) : sem_(sem), launch_(launch) {}
    Awaiter(const Awaiter&) = delete;
    Awaiter& operator=(const Awaiter&) = delete;

    bool await_ready() {
      if (!sem_.try_acquire(launch_)) return false;
      // Permit in hand with no suspension: the frame stays on the
      // launching context, and await_resume reads it from the node.
      node_.resume_ctx = &launch_;
      return true;
    }
    bool await_suspend(std::coroutine_handle<> h) {
      node_.handle = h;
      chk_point<P>(launch_, "co.suspend");
      sem_.meta_lock(launch_);
      // Re-check under meta: a release may have landed since await_ready.
      const std::uint32_t c = sem_.count_;
      if (c > 0) {
        sem_.count_ = c - 1;
        sem_.meta_unlock(launch_);
        node_.resume_ctx = &launch_;
        return false;  // resume immediately, permit in hand
      }
      sem_.enqueue_locked(node_);
      sem_.meta_unlock(launch_);
      // The frame may resume - and this awaiter die - on the releasing
      // thread the instant meta is dropped; touch nothing after this.
      return true;
    }
    /// Returns the context the frame resumed on.
    Ctx& await_resume() { return *node_.resume_ctx; }

   private:
    friend class AsyncSemaphore;
    struct Node {
      std::coroutine_handle<> handle{};
      Ctx* resume_ctx = nullptr;
      Node* prev = nullptr;
      Node* next = nullptr;
      bool queued = false;
    };
    AsyncSemaphore& sem_;
    Ctx& launch_;
    Node node_;
  };

  /// `Ctx& rctx = co_await sem.acquire_async(ctx);` - rctx is where the
  /// frame runs afterwards (the releaser's context when the wait was real).
  [[nodiscard]] Awaiter acquire_async(Ctx& ctx) { return Awaiter(*this, ctx); }

  bool try_acquire(Ctx& ctx) {
    meta_lock(ctx);
    const std::uint32_t c = count_;
    if (c > 0) count_ = c - 1;
    meta_unlock(ctx);
    return c > 0;
  }

  /// Releases `n` permits, resuming queued frames FIFO on this thread.
  void release(Ctx& ctx, std::uint32_t n = 1) {
    if (n == 0) {
      throw LockUsageError("AsyncSemaphore::release: n must be > 0");
    }
    while (n > 0) {
      meta_lock(ctx);
      typename Awaiter::Node* node = head_;
      if (node == nullptr) {
        count_ += n;
        meta_unlock(ctx);
        return;
      }
      remove_locked(*node);
      meta_unlock(ctx);
      --n;
      // Grant by resumption: the frame owns its node, so this is the last
      // touch. The resumed frame may release in turn - bounded recursion
      // is the cost of the inline handoff, as with InlineExecutor.
      node->resume_ctx = &ctx;
      chk_point<P>(ctx, "co.resume");
      node->handle.resume();
    }
  }

  [[nodiscard]] std::uint32_t count_hint(Ctx& ctx) {
    meta_lock(ctx);
    const std::uint32_t c = count_;
    meta_unlock(ctx);
    return c;
  }

 private:
  friend class Awaiter;

  void meta_lock(Ctx& ctx) {
    for (;;) {
      if (P::load_relaxed(ctx, meta_) == 0 &&
          P::fetch_or(ctx, meta_, 1) == 0) {
        return;
      }
      P::pause(ctx);
    }
  }
  void meta_unlock(Ctx& ctx) { P::store(ctx, meta_, 0); }

  void enqueue_locked(typename Awaiter::Node& node) {
    node.prev = tail_;
    node.next = nullptr;
    node.queued = true;
    if (tail_ != nullptr) {
      tail_->next = &node;
    } else {
      head_ = &node;
    }
    tail_ = &node;
  }

  void remove_locked(typename Awaiter::Node& node) {
    if (!node.queued) return;
    if (node.prev != nullptr) node.prev->next = node.next; else head_ = node.next;
    if (node.next != nullptr) node.next->prev = node.prev; else tail_ = node.prev;
    node.prev = node.next = nullptr;
    node.queued = false;
  }

  typename P::Word meta_;
  std::uint32_t count_;  ///< guarded by meta
  typename Awaiter::Node* head_ = nullptr;  ///< guarded by meta
  typename Awaiter::Node* tail_ = nullptr;  ///< guarded by meta
};

}  // namespace relock::async

#endif  // RELOCK_ASYNC_ENABLED
