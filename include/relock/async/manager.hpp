// ManagerExecutor: an active-lock style manager thread for coroutine
// waiters (paper Fig. 10 applied to the async front-end). One thread owns
// every suspended frame's lifecycle: enqueue requests and grant deliveries
// arrive as messages on a lock-free MPSC inbox and are drained in arrival
// order; timed waits arm a manager-local timer and, on expiry, run the
// lock's withdrawal protocol from the manager - so a timed async wait that
// loses the race to a grant resolves exactly like the sync MCS-with-
// timeout self-removal path does.
//
// The single-consumer discipline is what makes timed ops safe: the manager
// is the only party that ever resumes a frame it manages, so enqueue,
// timer expiry, and grant consumption can never race on the op.
#pragma once

#include "relock/async/config.hpp"

#if RELOCK_ASYNC_ENABLED

#include <atomic>

#include "relock/async/executor.hpp"
#include "relock/async/gate.hpp"
#include "relock/platform/chk_hooks.hpp"

namespace relock::async {

template <Platform P>
class ManagerExecutor final : public Executor<P> {
 public:
  using Ctx = typename P::Context;
  using Op = AsyncOp<P>;
  using Gate = AsyncGate<P>;

  void post_grant(Ctx& granter_ctx, Op& op) override {
    op.msg = Op::Msg::kGrant;
    post(granter_ctx, op);
  }

  bool submit_timed(Ctx& launch_ctx, Op& op) override {
    op.msg = Op::Msg::kEnqueue;
    post(launch_ctx, op);
    return true;
  }

  /// Untimed ops may also be routed through the manager (instead of the
  /// launcher enqueueing directly): serializes all registrations on the
  /// manager, which is the Fig. 10 shape.
  void submit(Ctx& launch_ctx, Op& op) {
    op.msg = Op::Msg::kEnqueue;
    post(launch_ctx, op);
  }

  /// The manager loop. Runs on the calling thread until `pred()` holds,
  /// draining messages in arrival order, firing expired timers, and
  /// parking between batches. Re-entrant frames are fine: a resumed frame
  /// that co_awaits again simply posts a new message.
  template <typename Pred>
  void run_until(Ctx& ctx, Pred&& pred) {
    manager_tid_.store(static_cast<std::uint64_t>(ctx.self()) + 1,
                       std::memory_order_seq_cst);
    for (;;) {
      drain(ctx);
      fire_timers(ctx);
      if (pred()) break;
      chk_point<P>(ctx, "mgr.park");
      // Re-check the inbox after the park-intent point: a post that read
      // our tid has deposited a wake token, so the park below returns
      // immediately; a post that missed the tid is seen by this seq_cst
      // load (its push was a seq_cst RMW).
      if (inbox_.load(std::memory_order_seq_cst) != nullptr) continue;
      if (timer_head_ != nullptr) {
        const Nanos now = P::now(ctx);
        const Nanos nearest = nearest_deadline();
        if (nearest > now) (void)P::block_for(ctx, nearest - now);
      } else {
        P::block(ctx);
      }
    }
    manager_tid_.store(0, std::memory_order_seq_cst);
  }

  void run(Ctx& ctx) {
    run_until(ctx, [this] { return stop_.load(std::memory_order_acquire); });
  }

  void stop(Ctx& ctx) {
    stop_.store(true, std::memory_order_release);
    const std::uint64_t mgr = manager_tid_.load(std::memory_order_seq_cst);
    if (mgr != 0) P::unblock(ctx, static_cast<ThreadId>(mgr - 1));
  }

 private:
  void post(Ctx& ctx, Op& op) {
    chk_point<P>(ctx, "mgr.post");
    Op* head = inbox_.load(std::memory_order_relaxed);
    do {
      op.post_next = head;
    } while (!inbox_.compare_exchange_weak(head, &op,
                                           std::memory_order_seq_cst,
                                           std::memory_order_relaxed));
    // Dekker with the manager's park: our seq_cst push either precedes the
    // manager's pre-park inbox re-check (it sees the op) or follows the
    // manager's tid publication (we see the tid and deposit a token).
    const std::uint64_t mgr = manager_tid_.load(std::memory_order_seq_cst);
    if (mgr != 0) P::unblock(ctx, static_cast<ThreadId>(mgr - 1));
  }

  void drain(Ctx& ctx) {
    Op* head = inbox_.exchange(nullptr, std::memory_order_seq_cst);
    if (head == nullptr) return;
    // The push chain is LIFO; reverse so messages run in arrival order.
    Op* fifo = nullptr;
    while (head != nullptr) {
      Op* const next = head->post_next;
      head->post_next = fifo;
      fifo = head;
      head = next;
    }
    while (fifo != nullptr) {
      Op* const op = fifo;
      fifo = op->post_next;
      if (op->msg == Op::Msg::kEnqueue) {
        handle_enqueue(ctx, *op);
      } else {
        timer_unlink(*op);
        resume(ctx, *op);
      }
    }
  }

  void handle_enqueue(Ctx& ctx, Op& op) {
    // Re-home the record: the manager registers, withdraws, and is named
    // in the grant, so the oracle-visible identity must be the manager's.
    op.rec.tid = ctx.self();
    op.rec.priority = ctx.priority();
    auto& lk = *op.lock;
    if (Gate::is_rw(lk)) {
      op.mode = Gate::EnqueueMode::kCell;  // never on the arrival stack
      if (Gate::enqueue_rw(ctx, lk, op.rec, op.shared)) {
        op.immediate = true;
        resume(ctx, op);
        return;
      }
    } else {
      if (op.timeout != 0) {
        Gate::arm_breaker(ctx, lk);
        op.breaker_armed = true;
      }
      op.mode = Gate::enqueue(ctx, lk, op.rec);
      // A grant can already have fired inside enqueue's lost-release
      // guard; its kGrant message is in our inbox and runs next round.
    }
    if (op.timeout != 0) {
      op.deadline = P::now(ctx) + op.timeout;
      timer_link(op);
    }
  }

  void resume(Ctx& ctx, Op& op) {
    if (op.breaker_armed) {
      Gate::disarm_breaker(ctx, *op.lock);
      op.breaker_armed = false;
    }
    op.resume_ctx = &ctx;
    chk_point<P>(ctx, "co.resume");
    op.handle.resume();
  }

  void fire_timers(Ctx& ctx) {
    if (timer_head_ == nullptr) return;
    const Nanos now = P::now(ctx);
    for (Op* t = timer_head_; t != nullptr;) {
      Op* const next = t->timer_next;
      if (t->deadline <= now) {
        timer_unlink(*t);
        if (Gate::resolve_timeout(ctx, *t->lock, t->rec, t->mode)) {
          t->timed_out = true;
          resume(ctx, *t);
        }
        // else: a grant won the race; its kGrant message resumes the
        // frame, so only the timer entry is dropped here.
      }
      t = next;
    }
  }

  [[nodiscard]] Nanos nearest_deadline() const noexcept {
    Nanos nearest = kForever;
    for (Op* t = timer_head_; t != nullptr; t = t->timer_next) {
      if (t->deadline < nearest) nearest = t->deadline;
    }
    return nearest;
  }

  void timer_link(Op& op) noexcept {
    op.timer_prev = nullptr;
    op.timer_next = timer_head_;
    if (timer_head_ != nullptr) timer_head_->timer_prev = &op;
    timer_head_ = &op;
    op.timer_linked = true;
  }

  void timer_unlink(Op& op) noexcept {
    if (!op.timer_linked) return;
    if (op.timer_prev != nullptr) {
      op.timer_prev->timer_next = op.timer_next;
    } else {
      timer_head_ = op.timer_next;
    }
    if (op.timer_next != nullptr) op.timer_next->timer_prev = op.timer_prev;
    op.timer_prev = op.timer_next = nullptr;
    op.timer_linked = false;
  }

  std::atomic<Op*> inbox_{nullptr};
  /// Manager tid + 1 while the loop runs, 0 otherwise (0 cannot collide
  /// with a real tid).
  std::atomic<std::uint64_t> manager_tid_{0};
  std::atomic<bool> stop_{false};
  Op* timer_head_ = nullptr;  ///< manager-owned; unsorted, walked on fire
};

}  // namespace relock::async

#endif  // RELOCK_ASYNC_ENABLED
