// Task: the minimal eager coroutine the async front-end's tests, checker
// scenarios, and benches drive waiters with. Eager (no initial suspend) so
// launching a task runs it to its first co_await synchronously on the
// launching thread - which is where the arrival-order guarantees of the
// lock come from. Owning: the destructor destroys the frame, even one
// still suspended mid-body, so an aborted checker schedule (ScheduleAborted
// unwinding the scenario) reclaims every frame it launched.
#pragma once

#include "relock/async/config.hpp"

#if RELOCK_ASYNC_ENABLED

#include <atomic>
#include <coroutine>
#include <exception>
#include <utility>

namespace relock::async {

class Task {
 public:
  struct promise_type {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_never initial_suspend() noexcept { return {}; }
    // Suspend at the end: the frame (and promise) stay alive for done() /
    // error() queries until the owning Task destroys them. The done flag
    // is published from await_suspend - the coroutine is formally
    // suspended BEFORE await_suspend runs, so a thread that observes the
    // flag may destroy the frame even while the completing thread is
    // still unwinding out of its resume() call. (h_.done() itself is a
    // plain frame read and would race with a cross-thread completion.)
    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        h.promise().done.store(true, std::memory_order_release);
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { error = std::current_exception(); }
    std::exception_ptr error;
    std::atomic<bool> done{false};
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  /// True once the body ran to completion (or threw). Safe to poll from a
  /// thread other than the one completing the frame.
  [[nodiscard]] bool done() const {
    return h_ == nullptr ||
           h_.promise().done.load(std::memory_order_acquire);
  }

  /// Rethrows the body's escaped exception, if any. (The acquire load in
  /// done() orders the error write, which precedes the final suspend.)
  void rethrow() const {
    if (h_ != nullptr && done() && h_.promise().error) {
      std::rethrow_exception(h_.promise().error);
    }
  }

 private:
  void destroy() {
    if (h_ != nullptr) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> h_{};
};

}  // namespace relock::async

#endif  // RELOCK_ASYNC_ENABLED
