// Executors: where a granted coroutine waiter resumes. The releasing
// thread publishes the grant exactly as it does for a thread waiter (one
// store to the record's grant flag); the record's grant hook then hands
// the suspended frame to an Executor, which decides the resumption site -
// inline on the granter, on a worker pool, or on an active-lock style
// manager thread (relock/async/manager.hpp).
#pragma once

#include "relock/async/config.hpp"

#if RELOCK_ASYNC_ENABLED

#include <condition_variable>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "relock/async/gate.hpp"
#include "relock/core/waiter.hpp"
#include "relock/platform/chk_hooks.hpp"

namespace relock::async {

template <Platform P>
class Executor;

/// One awaitable acquisition in flight. Lives inside the awaiter object,
/// which the coroutine frame keeps alive for the whole co_await - so the
/// WaiterRecord's storage outlives its registration exactly like a sync
/// waiter's stack frame does. Ownership rule: once the record is published
/// to the lock, the op belongs to whoever resumes the frame (the executor);
/// nobody else may touch it.
template <Platform P>
struct AsyncOp {
  using Ctx = typename P::Context;
  using Lock = ConfigurableLock<P>;

  AsyncOp(Lock& lk, Executor<P>& ex, Ctx& launch, bool shared_, Nanos timeout_)
      : lock(&lk),
        exec(&ex),
        launch_ctx(&launch),
        shared(shared_),
        timeout(timeout_),
        rec(AsyncGate<P>::domain(lk), launch.self(), launch.priority(),
            AsyncGate<P>::flag_placement(lk, launch), shared_,
            // Never sleepable: no thread parks on the grant flag, so a
            // granter wake would have nobody to hit. Delivery is the hook.
            /*may_sleep=*/false) {
    rec.grant_hook = &AsyncOp::deliver;
    rec.grant_hook_arg = this;
  }
  AsyncOp(const AsyncOp&) = delete;
  AsyncOp& operator=(const AsyncOp&) = delete;

  /// The WaiterRecord grant hook: the granter's last touch of the record.
  static void deliver(void* arg, Ctx& granter_ctx) {
    auto* op = static_cast<AsyncOp*>(arg);
    op->exec->post_grant(granter_ctx, *op);
  }

  Lock* lock;
  Executor<P>* exec;
  Ctx* launch_ctx;
  /// The context the frame runs on after resumption; set by the resuming
  /// executor immediately before handle.resume(). Op-embedded rather than
  /// thread-local so checker fibers and pool workers both work.
  Ctx* resume_ctx = nullptr;
  std::coroutine_handle<> handle{};
  bool shared;
  bool immediate = false;  ///< acquired without suspending (barge / RW entry)
  bool timed_out = false;  ///< timed wait lost; record already withdrawn
  Nanos timeout;           ///< 0 = untimed
  Nanos deadline = 0;
  typename AsyncGate<P>::EnqueueMode mode = AsyncGate<P>::EnqueueMode::kStack;
  bool breaker_armed = false;
  WaiterRecord<P> rec;

  /// Manager-executor plumbing (unused by other executors): the MPSC
  /// inbox link, the message tag it carries, and the timer-list links.
  enum class Msg : std::uint8_t { kEnqueue, kGrant };
  Msg msg = Msg::kEnqueue;
  AsyncOp* post_next = nullptr;
  AsyncOp* timer_next = nullptr;
  AsyncOp* timer_prev = nullptr;
  bool timer_linked = false;
};

/// Resumption-site policy.
template <Platform P>
class Executor {
 public:
  using Ctx = typename P::Context;
  virtual ~Executor() = default;

  /// Grant delivery, called by the releasing thread with no lock guards
  /// held. Must resume op.handle exactly once (possibly on another
  /// thread); op and its record die with the resumed frame.
  virtual void post_grant(Ctx& granter_ctx, AsyncOp<P>& op) = 0;

  /// Timed submission: take over both the enqueue and the timer for a
  /// timeout-carrying op. Executors without a timer thread return false
  /// and the awaiter reports the misuse (only the manager executor can
  /// run the withdrawal protocol on a timer's behalf).
  virtual bool submit_timed(Ctx& launch_ctx, AsyncOp<P>& op) {
    (void)launch_ctx;
    (void)op;
    return false;
  }
};

/// Resumes the granted frame on the releasing thread, inside its unlock
/// call. Zero-hop handoff latency; the critical section the frame then
/// runs extends the releaser's own schedule - the async analogue of
/// direct handoff.
template <Platform P>
class InlineExecutor final : public Executor<P> {
 public:
  using Ctx = typename P::Context;
  void post_grant(Ctx& granter_ctx, AsyncOp<P>& op) override {
    op.resume_ctx = &granter_ctx;
    chk_point<P>(granter_ctx, "co.resume");
    op.handle.resume();
  }
};

/// Resumes granted frames on a fixed pool of worker threads, each with its
/// own registered platform context. Host mutex/condvar are deliberate: the
/// pool is native-platform infrastructure (never instantiated under the
/// checker), and the handoff here is not part of the lock protocol under
/// test.
template <Platform P>
class ThreadPoolExecutor final : public Executor<P> {
 public:
  using Ctx = typename P::Context;

  ThreadPoolExecutor(typename P::Domain& domain, std::size_t threads) {
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this, &domain] { worker(domain); });
    }
  }
  ~ThreadPoolExecutor() override {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }
  ThreadPoolExecutor(const ThreadPoolExecutor&) = delete;
  ThreadPoolExecutor& operator=(const ThreadPoolExecutor&) = delete;

  void post_grant(Ctx& /*granter_ctx*/, AsyncOp<P>& op) override {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ready_.push_back(&op);
    }
    cv_.notify_one();
  }

 private:
  void worker(typename P::Domain& domain) {
    Ctx ctx(domain);
    for (;;) {
      AsyncOp<P>* op;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [this] { return stop_ || !ready_.empty(); });
        if (ready_.empty()) return;  // stop_ and drained
        op = ready_.front();
        ready_.pop_front();
      }
      op->resume_ctx = &ctx;
      op->handle.resume();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<AsyncOp<P>*> ready_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace relock::async

#endif  // RELOCK_ASYNC_ENABLED
