// The awaitable front-end: `co_await alk.lock_async(ctx)` suspends the
// calling coroutine instead of parking a thread. The suspended frame's
// awaiter embeds a WaiterRecord that rides the lock's ordinary arrival
// path; the single-store grant handoff (fast release or release module)
// then runs the record's grant hook, which hands the frame to the
// configured Executor for resumption. Timeouts compose: try_lock_for_async
// routes through a manager executor whose timer runs the same
// timeout-vs-grant resolution the sync timed paths use.
#pragma once

#include "relock/async/config.hpp"

#if RELOCK_ASYNC_ENABLED

#include <coroutine>
#include <exception>
#include <utility>

#include "relock/async/executor.hpp"
#include "relock/async/gate.hpp"
#include "relock/core/usage_error.hpp"
#include "relock/platform/chk_hooks.hpp"

namespace relock::async {

/// Movable ownership of one acquisition, carrying the context the frame
/// resumed on (which is generally NOT the context it launched from - an
/// inline executor resumes on the granter's thread). A timed wait that
/// lost yields an empty grant: acquired() is false and release is a no-op.
template <Platform P>
class AsyncGrant {
 public:
  using Ctx = typename P::Context;
  using Lock = ConfigurableLock<P>;

  AsyncGrant() = default;
  AsyncGrant(Lock* lock, Ctx* ctx, bool shared)
      : lock_(lock), ctx_(ctx), shared_(shared) {}
  AsyncGrant(AsyncGrant&& o) noexcept
      : lock_(std::exchange(o.lock_, nullptr)),
        ctx_(o.ctx_),
        shared_(o.shared_) {}
  AsyncGrant& operator=(AsyncGrant&& o) noexcept {
    if (this != &o) {
      unlock();
      lock_ = std::exchange(o.lock_, nullptr);
      ctx_ = o.ctx_;
      shared_ = o.shared_;
    }
    return *this;
  }
  AsyncGrant(const AsyncGrant&) = delete;
  AsyncGrant& operator=(const AsyncGrant&) = delete;

  ~AsyncGrant() {
    if (lock_ == nullptr) return;
    if constexpr (kCheckedPlatform<P>) {
      // During the checker's schedule-abort unwind the release protocol
      // must not run: its scheduling points throw, and a throw during
      // unwind terminates. The schedule being discarded, the held lock is
      // abandoned exactly like a sync scenario's would be. Only an unwind
      // that began after this grant existed qualifies - a grant destroyed
      // by ordinary code while an unrelated exception happens to be in
      // flight still releases. Native builds never take this branch:
      // there RAII means RAII, and an exception thrown through a held
      // grant unlocks on the way out.
      if (std::uncaught_exceptions() > unwind_base_) return;
    }
    unlock();
  }

  [[nodiscard]] bool acquired() const noexcept { return lock_ != nullptr; }
  explicit operator bool() const noexcept { return acquired(); }
  /// The context the frame currently runs on; use for everything after
  /// the co_await (nested lock calls, platform ops).
  [[nodiscard]] Ctx& ctx() const noexcept { return *ctx_; }

  void unlock() {
    if (lock_ == nullptr) return;
    Lock* const lk = std::exchange(lock_, nullptr);
    if (shared_) {
      lk->unlock_shared(*ctx_);
    } else {
      lk->unlock(*ctx_);
    }
  }

 private:
  Lock* lock_ = nullptr;
  Ctx* ctx_ = nullptr;
  bool shared_ = false;
  /// std::uncaught_exceptions() when this grant came to exist (move
  /// construction re-baselines: the new object's scope is the one that
  /// matters). The checker's abandon test compares against it so only a
  /// scope actually being unwound skips the release.
  int unwind_base_ = std::uncaught_exceptions();
};

/// The awaiter. Lives in the coroutine frame for the whole co_await, so
/// the embedded WaiterRecord outlives its registration the same way a
/// sync waiter's stack frame does.
template <Platform P>
class [[nodiscard]] LockAwaiter {
 public:
  using Ctx = typename P::Context;
  using Lock = ConfigurableLock<P>;

  LockAwaiter(Lock& lk, Executor<P>& ex, Ctx& launch, bool shared,
              Nanos timeout)
      : op_(lk, ex, launch, shared, timeout) {}
  LockAwaiter(const LockAwaiter&) = delete;
  LockAwaiter& operator=(const LockAwaiter&) = delete;

  /// Barge attempt before suspending - the async analogue of the sync
  /// paths' uncontended fast acquire.
  bool await_ready() {
    Ctx& ctx = *op_.launch_ctx;
    const bool got = op_.shared ? op_.lock->try_lock_shared(ctx)
                                : op_.lock->try_lock(ctx);
    if (got) {
      // try_lock ran the full acquire bookkeeping; nothing more to do.
      op_.immediate = true;
      op_.resume_ctx = &ctx;
    }
    return got;
  }

  /// Publishes the waiter. After the record is reachable the frame may be
  /// resumed - and this awaiter destroyed - by another thread at any
  /// moment, so nothing here touches `op_` after the publishing call.
  bool await_suspend(std::coroutine_handle<> h) {
    op_.handle = h;
    Ctx& ctx = *op_.launch_ctx;
    chk_point<P>(ctx, "co.suspend");
    if (op_.timeout != 0) {
      if (!op_.exec->submit_timed(ctx, op_)) {
        throw LockUsageError(
            "try_lock_for_async: this executor cannot run timers "
            "(route timed waits through a ManagerExecutor)");
      }
      return true;
    }
    Lock& lk = *op_.lock;
    if (AsyncGate<P>::is_rw(lk)) {
      if (AsyncGate<P>::enqueue_rw(ctx, lk, op_.rec, op_.shared)) {
        // Entry raced open between await_ready and here: resume at once.
        op_.immediate = true;
        op_.resume_ctx = &ctx;
        return false;
      }
      return true;
    }
    (void)AsyncGate<P>::enqueue(ctx, lk, op_.rec);
    return true;
  }

  AsyncGrant<P> await_resume() {
    Ctx& ctx = *op_.resume_ctx;
    if (op_.timed_out) {
      // The manager already withdrew the record and ran the timeout
      // bookkeeping; hand back an empty grant.
      return AsyncGrant<P>(nullptr, &ctx, op_.shared);
    }
    if (!op_.immediate) {
      AsyncGate<P>::complete(ctx, *op_.lock, op_.shared);
    }
    return AsyncGrant<P>(op_.lock, &ctx, op_.shared);
  }

 private:
  AsyncOp<P> op_;
};

/// Awaitable view over a ConfigurableLock bound to an executor. The lock
/// keeps serving thread waiters through its normal API concurrently -
/// coroutine and thread waiters share one arrival order.
template <Platform P>
class AsyncLock {
 public:
  using Ctx = typename P::Context;
  using Lock = ConfigurableLock<P>;

  AsyncLock(Lock& lock, Executor<P>& exec) : lock_(&lock), exec_(&exec) {}

  [[nodiscard]] LockAwaiter<P> lock_async(Ctx& ctx) {
    return LockAwaiter<P>(*lock_, *exec_, ctx, /*shared=*/false,
                          /*timeout=*/0);
  }
  [[nodiscard]] LockAwaiter<P> lock_shared_async(Ctx& ctx) {
    return LockAwaiter<P>(*lock_, *exec_, ctx, /*shared=*/true,
                          /*timeout=*/0);
  }
  [[nodiscard]] LockAwaiter<P> try_lock_for_async(Ctx& ctx, Nanos timeout) {
    if (timeout == 0) {
      throw LockUsageError("try_lock_for_async: timeout must be > 0");
    }
    return LockAwaiter<P>(*lock_, *exec_, ctx, /*shared=*/false, timeout);
  }

  [[nodiscard]] Lock& lock() noexcept { return *lock_; }
  [[nodiscard]] Executor<P>& executor() noexcept { return *exec_; }

 private:
  Lock* lock_;
  Executor<P>* exec_;
};

}  // namespace relock::async

#endif  // RELOCK_ASYNC_ENABLED
