// The lock scheduling component Gamma = (registration, acquisition,
// release) (paper section 3.1). A Scheduler owns the queue of registered
// waiters (registration), decides their eligibility (acquisition), and
// selects who is granted the lock on release (release).
//
// All methods are called under the owning lock's meta guard; schedulers are
// therefore plain single-threaded data structures.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "relock/core/attributes.hpp"
#include "relock/core/waiter.hpp"
#include "relock/platform/chk_hooks.hpp"
#include "relock/platform/platform.hpp"

namespace relock {

/// The set of waiters granted by one release. A single writer, or - for the
/// reader-writer scheduler - a batch of readers.
///
/// Small-inline container: the first kInline grants live in embedded
/// storage; only an oversized reader batch touches the spill vector, whose
/// capacity is retained across clear(). Reused instances therefore make the
/// steady-state release path allocation-free (ISSUE 1 tentpole; asserted by
/// tests/release_alloc_test.cpp).
template <Platform P>
class GrantBatch {
 public:
  using value_type = WaiterRecord<P>*;
  static constexpr std::size_t kInline = 8;

  // Both mutators are checker scheduling points (relock-check's shared-
  // scratch oracle: clear opens a session, pushes must come from its
  // owner); clear is therefore not annotated noexcept, though it never
  // throws outside the checker.

  void push_back(value_type w) {
    chk_scratch<P>(/*begin=*/false);
    if (size_ < kInline) {
      inline_[size_] = w;
    } else {
      spill_.push_back(w);
    }
    ++size_;
  }

  void clear() {
    chk_scratch<P>(/*begin=*/true);
    size_ = 0;
    spill_.clear();  // capacity retained
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] value_type front() const noexcept { return (*this)[0]; }
  [[nodiscard]] value_type operator[](std::size_t i) const noexcept {
    return i < kInline ? inline_[i] : spill_[i - kInline];
  }

  class const_iterator {
   public:
    const_iterator(const GrantBatch* b, std::size_t i) noexcept
        : b_(b), i_(i) {}
    value_type operator*() const noexcept { return (*b_)[i_]; }
    const_iterator& operator++() noexcept {
      ++i_;
      return *this;
    }
    friend bool operator!=(const const_iterator& a,
                           const const_iterator& b) noexcept {
      return a.i_ != b.i_;
    }

   private:
    const GrantBatch* b_;
    std::size_t i_;
  };

  [[nodiscard]] const_iterator begin() const noexcept {
    return const_iterator(this, 0);
  }
  [[nodiscard]] const_iterator end() const noexcept {
    return const_iterator(this, size_);
  }

 private:
  value_type inline_[kInline] = {};
  std::vector<value_type> spill_;
  std::size_t size_ = 0;
};

template <Platform P>
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual SchedulerKind kind() const noexcept = 0;

  /// Registration: logs a waiter that must wait.
  virtual void enqueue(WaiterRecord<P>& w) = 0;

  /// Re-registers a waiter at the *head* of the grant order. Used by the
  /// lock to return a pre-dequeued successor (the fast-release cache) to
  /// the module without losing its position: the cached record was the
  /// oldest selection candidate at the time it was cached. Modules without
  /// a positional queue may fall back to a plain enqueue.
  virtual void enqueue_front(WaiterRecord<P>& w) { enqueue(w); }

  /// Withdraws a waiter (timeout / abandoned conditional acquisition).
  virtual void remove(WaiterRecord<P>& w) = 0;

  /// Release: selects (and unlinks) the next grant recipients. `hint` is
  /// the handoff target (kInvalidThread = none). May select nobody even
  /// when waiters exist (e.g. all below a priority threshold).
  virtual void select(GrantBatch<P>& out, ThreadId hint) = 0;

  /// Non-mutating preview of select(): the record a subsequent select with
  /// the same hint would grant first, or nullptr when it would grant
  /// nobody. Modules that cannot preview may return nullptr; the lock then
  /// simply skips successor pre-computation for them.
  [[nodiscard]] virtual const WaiterRecord<P>* peek_next(
      ThreadId /*hint*/) const noexcept {
    return nullptr;
  }

  [[nodiscard]] virtual bool empty() const noexcept = 0;
  [[nodiscard]] virtual std::size_t size() const noexcept = 0;

  /// Unlinks and returns any one registered waiter (nullptr when empty).
  /// The lock uses this to migrate still-queued waiters when a pending
  /// scheduler module is replaced before it was installed (stacked
  /// reconfiguration); records left on the replaced module would dangle.
  [[nodiscard]] virtual WaiterRecord<P>* pop_any() noexcept = 0;

  /// Structural version: incremented on every mutation that can change the
  /// outcome of a future select() — enqueues, removals, selections, and
  /// parameter changes. The lock's fast-release path snapshots it when it
  /// pre-computes a successor and re-validates before publishing ownership
  /// (stale cache => fall back to the guarded release module). Relaxed
  /// atomic: cross-thread ordering is provided by the lock's quiescence
  /// protocol, not by this counter.
  [[nodiscard]] std::uint64_t version() const noexcept {
    return version_.load(std::memory_order_relaxed);
  }

  // Priority-threshold parameters (no-ops for other kinds).
  virtual void set_threshold(Priority) {}
  [[nodiscard]] virtual Priority threshold() const noexcept {
    return kDefaultPriority;
  }

  // Reader-writer parameters (no-ops for other kinds).
  virtual void set_rw_preference(RwPreference) {}

 protected:
  void bump_version() noexcept {
    version_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> version_{0};
};

/// Common base of the queue-backed scheduler modules: owns the intrusive
/// waiter queue and implements the registration-side operations (with
/// version bumps) once. Concrete modules supply kind(), select() and
/// peek_next().
template <Platform P>
class QueuedScheduler : public Scheduler<P> {
 public:
  void enqueue(WaiterRecord<P>& w) override {
    queue_.push_back(w);
    this->bump_version();
  }
  void enqueue_front(WaiterRecord<P>& w) override {
    queue_.push_front(w);
    this->bump_version();
  }
  void remove(WaiterRecord<P>& w) override {
    queue_.remove(w);
    this->bump_version();
  }
  [[nodiscard]] bool empty() const noexcept override { return queue_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept override {
    return queue_.size();
  }
  [[nodiscard]] WaiterRecord<P>* pop_any() noexcept override {
    WaiterRecord<P>* w = queue_.front();
    if (w != nullptr) {
      queue_.remove(*w);
      this->bump_version();
    }
    return w;
  }

 protected:
  /// Unlinks `w` and appends it to the grant batch (selection helper).
  void take(WaiterRecord<P>& w, GrantBatch<P>& out) {
    queue_.remove(w);
    out.push_back(&w);
    this->bump_version();
  }

  WaiterQueue<P> queue_;
};

/// FCFS: strict FIFO grant order. The most common multiprocessor lock
/// scheduler; fair but oblivious to application structure.
template <Platform P>
class FcfsScheduler final : public QueuedScheduler<P> {
 public:
  [[nodiscard]] SchedulerKind kind() const noexcept override {
    return SchedulerKind::kFcfs;
  }
  void select(GrantBatch<P>& out, ThreadId /*hint*/) override {
    if (WaiterRecord<P>* w = this->queue_.front()) this->take(*w, out);
  }
  [[nodiscard]] const WaiterRecord<P>* peek_next(
      ThreadId /*hint*/) const noexcept override {
    return this->queue_.front();
  }
};

/// Priority queue: grants the waiter with the highest priority (FIFO among
/// equals). Inherently unfair; useful when some threads' progress matters
/// more (paper section 4.3.1). Selection is a linear scan - queue lengths
/// are bounded by thread counts and the scan runs under the meta guard.
template <Platform P>
class PriorityQueueScheduler final : public QueuedScheduler<P> {
 public:
  [[nodiscard]] SchedulerKind kind() const noexcept override {
    return SchedulerKind::kPriorityQueue;
  }
  void select(GrantBatch<P>& out, ThreadId /*hint*/) override {
    if (WaiterRecord<P>* best = best_waiter()) this->take(*best, out);
  }
  [[nodiscard]] const WaiterRecord<P>* peek_next(
      ThreadId /*hint*/) const noexcept override {
    return best_waiter();
  }

 private:
  [[nodiscard]] WaiterRecord<P>* best_waiter() const noexcept {
    WaiterRecord<P>* best = nullptr;
    this->queue_.for_each([&](WaiterRecord<P>& w) {
      if (best == nullptr || w.priority > best->priority) best = &w;
      return true;
    });
    return best;
  }
};

/// Priority threshold: the implementation the paper's client-server
/// experiment uses (section 4.3.1, "second implementation"): the lock
/// carries a threshold priority; only waiters with priority >= threshold
/// are eligible, FCFS among the eligible. Raising the threshold dynamically
/// makes low-priority clients ineligible so the server is served first.
template <Platform P>
class PriorityThresholdScheduler final : public QueuedScheduler<P> {
 public:
  [[nodiscard]] SchedulerKind kind() const noexcept override {
    return SchedulerKind::kPriorityThreshold;
  }
  void select(GrantBatch<P>& out, ThreadId /*hint*/) override {
    if (WaiterRecord<P>* chosen = first_eligible()) this->take(*chosen, out);
    // No eligible waiter: grant nobody; the lock is released as free and
    // ineligible waiters keep waiting for the threshold to drop.
  }
  [[nodiscard]] const WaiterRecord<P>* peek_next(
      ThreadId /*hint*/) const noexcept override {
    return first_eligible();
  }
  void set_threshold(Priority p) override {
    threshold_ = p;
    this->bump_version();
  }
  [[nodiscard]] Priority threshold() const noexcept override {
    return threshold_;
  }

 private:
  [[nodiscard]] WaiterRecord<P>* first_eligible() const noexcept {
    WaiterRecord<P>* chosen = nullptr;
    this->queue_.for_each([&](WaiterRecord<P>& w) {
      if (w.priority >= threshold_) {
        chosen = &w;
        return false;  // FCFS among eligible: first hit wins
      }
      return true;
    });
    return chosen;
  }

  Priority threshold_ = kDefaultPriority;
};

/// Handoff: the releaser names the next owner (paper section 4.3.1). The
/// critical section is handed directly to the hinted thread if it is
/// waiting; otherwise falls back to FCFS. Unfair and application-specific
/// by design.
template <Platform P>
class HandoffScheduler final : public QueuedScheduler<P> {
 public:
  [[nodiscard]] SchedulerKind kind() const noexcept override {
    return SchedulerKind::kHandoff;
  }
  void select(GrantBatch<P>& out, ThreadId hint) override {
    if (WaiterRecord<P>* chosen = choose(hint)) this->take(*chosen, out);
  }
  [[nodiscard]] const WaiterRecord<P>* peek_next(
      ThreadId hint) const noexcept override {
    return choose(hint);
  }

 private:
  [[nodiscard]] WaiterRecord<P>* choose(ThreadId hint) const noexcept {
    WaiterRecord<P>* chosen = nullptr;
    if (hint != kInvalidThread) {
      this->queue_.for_each([&](WaiterRecord<P>& w) {
        if (w.tid == hint) {
          chosen = &w;
          return false;
        }
        return true;
      });
    }
    if (chosen == nullptr) chosen = this->queue_.front();  // fallback: FCFS
    return chosen;
  }
};

/// Reader-writer: allows multiple readers inside the critical section
/// (paper section 4.3.3). Grant batches: a single writer, or a batch of
/// readers chosen according to the configured preference.
template <Platform P>
class ReaderWriterScheduler final : public QueuedScheduler<P> {
 public:
  explicit ReaderWriterScheduler(RwPreference pref = RwPreference::kFifo)
      : pref_(pref) {}

  [[nodiscard]] SchedulerKind kind() const noexcept override {
    return SchedulerKind::kReaderWriter;
  }

  void select(GrantBatch<P>& out, ThreadId /*hint*/) override {
    if (this->queue_.empty()) return;
    switch (pref_) {
      case RwPreference::kFifo: {
        // Head decides: a writer goes alone; a reader takes every reader up
        // to the first writer.
        if (!this->queue_.front()->shared) {
          this->take(*this->queue_.front(), out);
          return;
        }
        this->queue_.for_each([&](WaiterRecord<P>& w) {
          if (!w.shared) return false;
          this->take(w, out);
          return true;
        });
        return;
      }
      case RwPreference::kReaderPref: {
        bool any_reader = false;
        this->queue_.for_each([&](WaiterRecord<P>& w) {
          if (w.shared) {
            this->take(w, out);
            any_reader = true;
          }
          return true;
        });
        if (!any_reader && !this->queue_.empty()) {
          this->take(*this->queue_.front(), out);
        }
        return;
      }
      case RwPreference::kWriterPref: {
        WaiterRecord<P>* writer = nullptr;
        this->queue_.for_each([&](WaiterRecord<P>& w) {
          if (!w.shared) {
            writer = &w;
            return false;
          }
          return true;
        });
        if (writer != nullptr) {
          this->take(*writer, out);
        } else {
          this->queue_.for_each([&](WaiterRecord<P>& w) {
            this->take(w, out);
            return true;
          });
        }
        return;
      }
    }
  }

  // No peek_next: RW grants are batches, not single successors; the fast
  // single-store release path does not apply (base returns nullptr).

  void set_rw_preference(RwPreference p) override {
    pref_ = p;
    this->bump_version();
  }

 private:
  RwPreference pref_;
};

/// Factory for dynamic scheduler reconfiguration.
template <Platform P>
std::unique_ptr<Scheduler<P>> make_scheduler(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFcfs:
      return std::make_unique<FcfsScheduler<P>>();
    case SchedulerKind::kPriorityQueue:
      return std::make_unique<PriorityQueueScheduler<P>>();
    case SchedulerKind::kPriorityThreshold:
      return std::make_unique<PriorityThresholdScheduler<P>>();
    case SchedulerKind::kHandoff:
      return std::make_unique<HandoffScheduler<P>>();
    case SchedulerKind::kReaderWriter:
      return std::make_unique<ReaderWriterScheduler<P>>();
    case SchedulerKind::kNone:
      break;
    case SchedulerKind::kCustom:
      assert(false && "custom schedulers are installed by instance, "
                      "not by kind");
      break;
  }
  return nullptr;  // centralized barging: no queue at all
}

}  // namespace relock
