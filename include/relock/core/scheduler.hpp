// The lock scheduling component Gamma = (registration, acquisition,
// release) (paper section 3.1). A Scheduler owns the queue of registered
// waiters (registration), decides their eligibility (acquisition), and
// selects who is granted the lock on release (release).
//
// All methods are called under the owning lock's meta guard; schedulers are
// therefore plain single-threaded data structures.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "relock/core/attributes.hpp"
#include "relock/core/waiter.hpp"
#include "relock/platform/chk_hooks.hpp"
#include "relock/platform/platform.hpp"

namespace relock {

/// The set of waiters granted by one release. A single writer, or - for the
/// reader-writer scheduler - a batch of readers.
///
/// Small-inline container: the first kInline grants live in embedded
/// storage; only an oversized reader batch touches the spill vector, whose
/// capacity is retained across clear(). Reused instances therefore make the
/// steady-state release path allocation-free (ISSUE 1 tentpole; asserted by
/// tests/release_alloc_test.cpp).
template <Platform P>
class GrantBatch {
 public:
  using value_type = WaiterRecord<P>*;
  static constexpr std::size_t kInline = 8;

  // Both mutators are checker scheduling points (relock-check's shared-
  // scratch oracle: clear opens a session, pushes must come from its
  // owner); clear is therefore not annotated noexcept, though it never
  // throws outside the checker.

  void push_back(value_type w) {
    chk_scratch<P>(/*begin=*/false);
    if (size_ < kInline) {
      inline_[size_] = w;
    } else {
      spill_.push_back(w);
    }
    ++size_;
  }

  void clear() {
    chk_scratch<P>(/*begin=*/true);
    size_ = 0;
    spill_.clear();  // capacity retained
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] value_type front() const noexcept { return (*this)[0]; }
  [[nodiscard]] value_type operator[](std::size_t i) const noexcept {
    return i < kInline ? inline_[i] : spill_[i - kInline];
  }

  class const_iterator {
   public:
    const_iterator(const GrantBatch* b, std::size_t i) noexcept
        : b_(b), i_(i) {}
    value_type operator*() const noexcept { return (*b_)[i_]; }
    const_iterator& operator++() noexcept {
      ++i_;
      return *this;
    }
    friend bool operator!=(const const_iterator& a,
                           const const_iterator& b) noexcept {
      return a.i_ != b.i_;
    }

   private:
    const GrantBatch* b_;
    std::size_t i_;
  };

  [[nodiscard]] const_iterator begin() const noexcept {
    return const_iterator(this, 0);
  }
  [[nodiscard]] const_iterator end() const noexcept {
    return const_iterator(this, size_);
  }

 private:
  value_type inline_[kInline] = {};
  std::vector<value_type> spill_;
  std::size_t size_ = 0;
};

/// How a module's pre-selected successor — the lock's single-store
/// fast-release cache — can go stale. The lock's release path keys every
/// cache decision off this trait instead of enumerating scheduler kinds,
/// so centralized and distributed modules share one release path.
enum class SuccessorPolicy : std::uint8_t {
  /// No single-successor pre-selection: grants are batches (reader-writer)
  /// or the module makes no validity promises (custom). The single-store
  /// fast release is disabled.
  kNone,
  /// The head of line cannot be displaced by later mutations: arrivals go
  /// behind it and a withdrawal of the cached record itself is resolved by
  /// the timeout path clearing the cache. The cache is always valid
  /// (FCFS, distributed queue).
  kStableHead,
  /// Any structural mutation may displace the cached successor (a new
  /// arrival may outrank it, a threshold change may disqualify it):
  /// revalidate against the module's version counter.
  kVersioned,
  /// Valid for hintless releases, or when the cache already matches the
  /// hint; a differently-hinted release must consult the module (handoff).
  kHinted,
};

template <Platform P>
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual SchedulerKind kind() const noexcept = 0;

  /// Staleness contract for the lock's grant pre-selection cache. kNone
  /// (the default) opts the module out of the single-store fast release.
  [[nodiscard]] virtual SuccessorPolicy successor_policy() const noexcept {
    return SuccessorPolicy::kNone;
  }

  /// Registration: logs a waiter that must wait.
  virtual void enqueue(WaiterRecord<P>& w) = 0;

  /// Re-registers a waiter at the *head* of the grant order. Used by the
  /// lock to return a pre-dequeued successor (the fast-release cache) to
  /// the module without losing its position: the cached record was the
  /// oldest selection candidate at the time it was cached. Modules without
  /// a positional queue may fall back to a plain enqueue.
  virtual void enqueue_front(WaiterRecord<P>& w) { enqueue(w); }

  /// Withdraws a waiter (timeout / abandoned conditional acquisition).
  virtual void remove(WaiterRecord<P>& w) = 0;

  /// Release: selects (and unlinks) the next grant recipients. `hint` is
  /// the handoff target (kInvalidThread = none). May select nobody even
  /// when waiters exist (e.g. all below a priority threshold).
  virtual void select(GrantBatch<P>& out, ThreadId hint) = 0;

  /// Non-mutating preview of select(): the record a subsequent select with
  /// the same hint would grant first, or nullptr when it would grant
  /// nobody. Modules that cannot preview may return nullptr; the lock then
  /// simply skips successor pre-computation for them.
  [[nodiscard]] virtual const WaiterRecord<P>* peek_next(
      ThreadId /*hint*/) const noexcept {
    return nullptr;
  }

  [[nodiscard]] virtual bool empty() const noexcept = 0;
  [[nodiscard]] virtual std::size_t size() const noexcept = 0;

  /// Unlinks and returns any one registered waiter (nullptr when empty).
  /// The lock uses this to migrate still-queued waiters when a pending
  /// scheduler module is replaced before it was installed (stacked
  /// reconfiguration); records left on the replaced module would dangle.
  [[nodiscard]] virtual WaiterRecord<P>* pop_any() noexcept = 0;

  /// Structural version: incremented on every mutation that can change the
  /// outcome of a future select() — enqueues, removals, selections, and
  /// parameter changes. The lock's fast-release path snapshots it when it
  /// pre-computes a successor and re-validates before publishing ownership
  /// (stale cache => fall back to the guarded release module). Relaxed
  /// atomic: cross-thread ordering is provided by the lock's quiescence
  /// protocol, not by this counter.
  [[nodiscard]] std::uint64_t version() const noexcept {
    return version_.load(std::memory_order_relaxed);
  }

  // Priority-threshold parameters (no-ops for other kinds).
  virtual void set_threshold(Priority) {}
  [[nodiscard]] virtual Priority threshold() const noexcept {
    return kDefaultPriority;
  }

  // Reader-writer parameters (no-ops for other kinds).
  virtual void set_rw_preference(RwPreference) {}

 protected:
  void bump_version() noexcept {
    version_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> version_{0};
};

/// Common base of the queue-backed scheduler modules: owns the intrusive
/// waiter queue and implements the registration-side operations (with
/// version bumps) once. Concrete modules supply kind(), select() and
/// peek_next().
template <Platform P>
class QueuedScheduler : public Scheduler<P> {
 public:
  void enqueue(WaiterRecord<P>& w) override {
    queue_.push_back(w);
    this->bump_version();
  }
  void enqueue_front(WaiterRecord<P>& w) override {
    queue_.push_front(w);
    this->bump_version();
  }
  void remove(WaiterRecord<P>& w) override {
    queue_.remove(w);
    this->bump_version();
  }
  [[nodiscard]] bool empty() const noexcept override { return queue_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept override {
    return queue_.size();
  }
  [[nodiscard]] WaiterRecord<P>* pop_any() noexcept override {
    WaiterRecord<P>* w = queue_.front();
    if (w != nullptr) {
      queue_.remove(*w);
      this->bump_version();
    }
    return w;
  }

 protected:
  /// Unlinks `w` and appends it to the grant batch (selection helper).
  void take(WaiterRecord<P>& w, GrantBatch<P>& out) {
    queue_.remove(w);
    out.push_back(&w);
    this->bump_version();
  }

  WaiterQueue<P> queue_;
};

/// FCFS: strict FIFO grant order. The most common multiprocessor lock
/// scheduler; fair but oblivious to application structure.
template <Platform P>
class FcfsScheduler final : public QueuedScheduler<P> {
 public:
  [[nodiscard]] SchedulerKind kind() const noexcept override {
    return SchedulerKind::kFcfs;
  }
  [[nodiscard]] SuccessorPolicy successor_policy() const noexcept override {
    return SuccessorPolicy::kStableHead;  // the FIFO head stays the head
  }
  void select(GrantBatch<P>& out, ThreadId /*hint*/) override {
    if (WaiterRecord<P>* w = this->queue_.front()) this->take(*w, out);
  }
  [[nodiscard]] const WaiterRecord<P>* peek_next(
      ThreadId /*hint*/) const noexcept override {
    return this->queue_.front();
  }
};

/// Priority queue: grants the waiter with the highest priority (FIFO among
/// equals). Inherently unfair; useful when some threads' progress matters
/// more (paper section 4.3.1). Selection is a linear scan - queue lengths
/// are bounded by thread counts and the scan runs under the meta guard.
template <Platform P>
class PriorityQueueScheduler final : public QueuedScheduler<P> {
 public:
  [[nodiscard]] SchedulerKind kind() const noexcept override {
    return SchedulerKind::kPriorityQueue;
  }
  [[nodiscard]] SuccessorPolicy successor_policy() const noexcept override {
    return SuccessorPolicy::kVersioned;  // a new arrival may outrank the cache
  }
  void select(GrantBatch<P>& out, ThreadId /*hint*/) override {
    if (WaiterRecord<P>* best = best_waiter()) this->take(*best, out);
  }
  [[nodiscard]] const WaiterRecord<P>* peek_next(
      ThreadId /*hint*/) const noexcept override {
    return best_waiter();
  }

 private:
  [[nodiscard]] WaiterRecord<P>* best_waiter() const noexcept {
    WaiterRecord<P>* best = nullptr;
    this->queue_.for_each([&](WaiterRecord<P>& w) {
      if (best == nullptr || w.priority > best->priority) best = &w;
      return true;
    });
    return best;
  }
};

/// Priority threshold: the implementation the paper's client-server
/// experiment uses (section 4.3.1, "second implementation"): the lock
/// carries a threshold priority; only waiters with priority >= threshold
/// are eligible, FCFS among the eligible. Raising the threshold dynamically
/// makes low-priority clients ineligible so the server is served first.
template <Platform P>
class PriorityThresholdScheduler final : public QueuedScheduler<P> {
 public:
  [[nodiscard]] SchedulerKind kind() const noexcept override {
    return SchedulerKind::kPriorityThreshold;
  }
  [[nodiscard]] SuccessorPolicy successor_policy() const noexcept override {
    return SuccessorPolicy::kVersioned;  // a threshold change may disqualify
  }
  void select(GrantBatch<P>& out, ThreadId /*hint*/) override {
    if (WaiterRecord<P>* chosen = first_eligible()) this->take(*chosen, out);
    // No eligible waiter: grant nobody; the lock is released as free and
    // ineligible waiters keep waiting for the threshold to drop.
  }
  [[nodiscard]] const WaiterRecord<P>* peek_next(
      ThreadId /*hint*/) const noexcept override {
    return first_eligible();
  }
  void set_threshold(Priority p) override {
    threshold_ = p;
    this->bump_version();
  }
  [[nodiscard]] Priority threshold() const noexcept override {
    return threshold_;
  }

 private:
  [[nodiscard]] WaiterRecord<P>* first_eligible() const noexcept {
    WaiterRecord<P>* chosen = nullptr;
    this->queue_.for_each([&](WaiterRecord<P>& w) {
      if (w.priority >= threshold_) {
        chosen = &w;
        return false;  // FCFS among eligible: first hit wins
      }
      return true;
    });
    return chosen;
  }

  Priority threshold_ = kDefaultPriority;
};

/// Handoff: the releaser names the next owner (paper section 4.3.1). The
/// critical section is handed directly to the hinted thread if it is
/// waiting; otherwise falls back to FCFS. Unfair and application-specific
/// by design.
template <Platform P>
class HandoffScheduler final : public QueuedScheduler<P> {
 public:
  [[nodiscard]] SchedulerKind kind() const noexcept override {
    return SchedulerKind::kHandoff;
  }
  [[nodiscard]] SuccessorPolicy successor_policy() const noexcept override {
    return SuccessorPolicy::kHinted;
  }
  void select(GrantBatch<P>& out, ThreadId hint) override {
    if (WaiterRecord<P>* chosen = choose(hint)) this->take(*chosen, out);
  }
  [[nodiscard]] const WaiterRecord<P>* peek_next(
      ThreadId hint) const noexcept override {
    return choose(hint);
  }

 private:
  [[nodiscard]] WaiterRecord<P>* choose(ThreadId hint) const noexcept {
    WaiterRecord<P>* chosen = nullptr;
    if (hint != kInvalidThread) {
      this->queue_.for_each([&](WaiterRecord<P>& w) {
        if (w.tid == hint) {
          chosen = &w;
          return false;
        }
        return true;
      });
    }
    if (chosen == nullptr) chosen = this->queue_.front();  // fallback: FCFS
    return chosen;
  }
};

/// Reader-writer: allows multiple readers inside the critical section
/// (paper section 4.3.3). Grant batches: a single writer, or a batch of
/// readers chosen according to the configured preference.
template <Platform P>
class ReaderWriterScheduler final : public QueuedScheduler<P> {
 public:
  explicit ReaderWriterScheduler(RwPreference pref = RwPreference::kFifo)
      : pref_(pref) {}

  [[nodiscard]] SchedulerKind kind() const noexcept override {
    return SchedulerKind::kReaderWriter;
  }

  void select(GrantBatch<P>& out, ThreadId /*hint*/) override {
    if (this->queue_.empty()) return;
    switch (pref_) {
      case RwPreference::kFifo: {
        // Head decides: a writer goes alone; a reader takes every reader up
        // to the first writer.
        if (!this->queue_.front()->shared) {
          this->take(*this->queue_.front(), out);
          return;
        }
        this->queue_.for_each([&](WaiterRecord<P>& w) {
          if (!w.shared) return false;
          this->take(w, out);
          return true;
        });
        return;
      }
      case RwPreference::kReaderPref: {
        bool any_reader = false;
        this->queue_.for_each([&](WaiterRecord<P>& w) {
          if (w.shared) {
            this->take(w, out);
            any_reader = true;
          }
          return true;
        });
        if (!any_reader && !this->queue_.empty()) {
          this->take(*this->queue_.front(), out);
        }
        return;
      }
      case RwPreference::kWriterPref: {
        WaiterRecord<P>* writer = nullptr;
        this->queue_.for_each([&](WaiterRecord<P>& w) {
          if (!w.shared) {
            writer = &w;
            return false;
          }
          return true;
        });
        if (writer != nullptr) {
          this->take(*writer, out);
        } else {
          this->queue_.for_each([&](WaiterRecord<P>& w) {
            this->take(w, out);
            return true;
          });
        }
        return;
      }
    }
  }

  // No peek_next: RW grants are batches, not single successors; the fast
  // single-store release path does not apply (base returns nullptr).

  void set_rw_preference(RwPreference p) override {
    pref_ = p;
    this->bump_version();
  }

 private:
  RwPreference pref_;
};

/// Distributed FIFO (SchedulerKind::kQueue): the MCS-family queue-node
/// scheduler. Registration is a lock-free tail-swap into a WaitQueueCell —
/// each waiter's queue node is inline in its own WaiterRecord (qnext), so
/// a waiting thread spins on its record-local grant flag and the only
/// shared-word traffic per acquisition is the one tail exchange; release
/// hands off with a single store to the successor's node.
///
/// This module is a *façade* over the cell: on kRealConcurrency platforms
/// the lock's arrival path performs the producer protocol itself (without
/// dereferencing the module — the cell outlives reconfigurations inside
/// the lock), and the lock's release path consumes the cell with
/// platform-paced spins where a producer's link store may be in flight.
/// The Scheduler-interface consumers here are the *non-waiting* variants:
/// select()/pop_any() return nobody when they encounter an in-flight link
/// window (the lock retries or sweeps strays), which keeps every method
/// safe to call under the meta guard on any platform — and exact on the
/// simulator, where registration is meta-serialized and no window exists.
///
/// By default the module owns its cell (standalone/simulator use); the
/// lock constructs it over the lock-resident cell instead so the cell's
/// identity survives configure_scheduler round trips.
template <Platform P>
class DistributedQueueScheduler final : public Scheduler<P> {
 public:
  using Rec = WaiterRecord<P>;
  using Cell = WaitQueueCell<P>;

  DistributedQueueScheduler() : cell_(&owned_) {}
  explicit DistributedQueueScheduler(Cell* cell) : cell_(cell) {}

  [[nodiscard]] SchedulerKind kind() const noexcept override {
    return SchedulerKind::kQueue;
  }
  [[nodiscard]] SuccessorPolicy successor_policy() const noexcept override {
    return SuccessorPolicy::kStableHead;  // FIFO: the queue head stays put
  }

  /// Producer protocol: tail-swap, then publish the link (predecessor's
  /// qnext, or the cell's first-arrival slot when the queue was empty).
  /// Safe against concurrent producers; never waits.
  void enqueue(Rec& w) override {
    w.qnext.store(nullptr, std::memory_order_relaxed);
    Rec* prev = cell_->tail.exchange(&w, std::memory_order_seq_cst);
    if (prev != nullptr) {
      prev->qnext.store(&w, std::memory_order_release);
    } else {
      cell_->first.store(&w, std::memory_order_release);
    }
    cell_->count.fetch_add(1, std::memory_order_relaxed);
    this->bump_version();
  }

  /// Consumer-side head insertion (fast-release cache reclaim). Requires
  /// the consumer role; races only the producer protocol.
  void enqueue_front(Rec& w) override {
    Cell& c = *cell_;
    w.qnext.store(nullptr, std::memory_order_relaxed);
    if (c.head == nullptr) {
      Rec* expected = nullptr;
      if (c.tail.compare_exchange_strong(expected, &w,
                                         std::memory_order_seq_cst)) {
        // Empty cell: we are the new generation's first and last. Later
        // producers see a non-null tail and link behind us.
        c.head = &w;
        c.count.fetch_add(1, std::memory_order_relaxed);
        this->bump_version();
        return;
      }
      if (!normalize()) {
        // A producer holds the publication window open. Unreachable where
        // this is called (meta-serialized platforms / quiesced consumers);
        // fall back to waiting for the publication.
        spin_normalize();
      }
    }
    w.qnext.store(c.head, std::memory_order_release);
    c.head = &w;
    c.count.fetch_add(1, std::memory_order_relaxed);
    this->bump_version();
  }

  /// Consumer-side withdrawal. Exact on meta-serialized platforms; on
  /// kRealConcurrency platforms the lock routes withdrawals through its
  /// own paced remover instead (an in-flight producer link can force a
  /// wait this non-waiting interface cannot perform).
  void remove(Rec& w) override {
    Cell& c = *cell_;
    if (c.head == nullptr && !normalize()) return;
    Rec* prev = nullptr;
    Rec* cur = c.head;
    while (cur != nullptr && cur != &w) {
      Rec* nxt = cur->qnext.load(std::memory_order_acquire);
      if (nxt == nullptr &&
          c.tail.load(std::memory_order_seq_cst) != cur) {
        spin_link(*cur, nxt);
      }
      prev = cur;
      cur = nxt;
    }
    if (cur == nullptr) return;
    unlink(prev, w);
    this->bump_version();
  }

  void select(GrantBatch<P>& out, ThreadId /*hint*/) override {
    if (Rec* w = try_pop()) out.push_back(w);
  }

  [[nodiscard]] const Rec* peek_next(
      ThreadId /*hint*/) const noexcept override {
    if (cell_->head != nullptr) return cell_->head;
    return cell_->first.load(std::memory_order_acquire);
  }

  [[nodiscard]] bool empty() const noexcept override {
    return cell_->empty();
  }
  [[nodiscard]] std::size_t size() const noexcept override {
    return cell_->count.load(std::memory_order_relaxed);
  }

  [[nodiscard]] Rec* pop_any() noexcept override { return try_pop(); }

  [[nodiscard]] Cell& cell() noexcept { return *cell_; }

 private:
  /// Pops the queue head, or returns nullptr when the queue is empty OR a
  /// producer's link publication is still in flight (callers retry or let
  /// the lock's paced consumer finish the job).
  [[nodiscard]] Rec* try_pop() noexcept {
    Cell& c = *cell_;
    if (c.head == nullptr && !normalize()) return nullptr;
    Rec* h = c.head;
    Rec* nxt = h->qnext.load(std::memory_order_acquire);
    if (nxt == nullptr) {
      Rec* expected = h;
      if (c.tail.compare_exchange_strong(expected, nullptr,
                                         std::memory_order_seq_cst)) {
        c.head = nullptr;
      } else {
        // A successor is mid-link behind h: without waiting for the link
        // we cannot pop h and keep its successor reachable.
        nxt = h->qnext.load(std::memory_order_acquire);
        if (nxt == nullptr) return nullptr;
        c.head = nxt;
      }
    } else {
      c.head = nxt;
    }
    h->qnext.store(nullptr, std::memory_order_relaxed);
    c.count.fetch_sub(1, std::memory_order_relaxed);
    this->bump_version();
    return h;
  }

  /// Adopts a published first arrival into the consumer cursor. Returns
  /// false when the queue is empty or the publication is still in flight.
  [[nodiscard]] bool normalize() noexcept {
    Cell& c = *cell_;
    if (c.tail.load(std::memory_order_seq_cst) == nullptr) return false;
    Rec* f = c.first.load(std::memory_order_acquire);
    if (f == nullptr) return false;
    c.head = f;
    c.first.store(nullptr, std::memory_order_relaxed);
    return true;
  }

  void spin_normalize() noexcept {
    while (!normalize()) {
    }
  }

  static void spin_link(Rec& r, Rec*& out) noexcept {
    while ((out = r.qnext.load(std::memory_order_acquire)) == nullptr) {
    }
  }

  /// Unlinks `w` (== prev->qnext, or the head when prev is null), waiting
  /// out a mid-link successor if the tail CAS loses the race.
  void unlink(Rec* prev, Rec& w) noexcept {
    Cell& c = *cell_;
    Rec* nxt = w.qnext.load(std::memory_order_acquire);
    if (nxt == nullptr) {
      // Possibly the tail. Pre-clear the predecessor's link *before* the
      // tail swing: once the CAS lands, a new producer may store through
      // prev->qnext, and that store must not be overwritten.
      if (prev != nullptr) prev->qnext.store(nullptr, std::memory_order_release);
      Rec* expected = &w;
      if (c.tail.compare_exchange_strong(expected, prev,
                                         std::memory_order_seq_cst)) {
        if (prev == nullptr) c.head = nullptr;
        w.qnext.store(nullptr, std::memory_order_relaxed);
        c.count.fetch_sub(1, std::memory_order_relaxed);
        return;
      }
      spin_link(w, nxt);  // a successor linked behind w: route it to prev
    }
    if (prev != nullptr) {
      prev->qnext.store(nxt, std::memory_order_release);
    } else {
      c.head = nxt;
    }
    w.qnext.store(nullptr, std::memory_order_relaxed);
    c.count.fetch_sub(1, std::memory_order_relaxed);
  }

  Cell owned_;
  Cell* cell_;
};

/// Factory for dynamic scheduler reconfiguration.
template <Platform P>
std::unique_ptr<Scheduler<P>> make_scheduler(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFcfs:
      return std::make_unique<FcfsScheduler<P>>();
    case SchedulerKind::kPriorityQueue:
      return std::make_unique<PriorityQueueScheduler<P>>();
    case SchedulerKind::kPriorityThreshold:
      return std::make_unique<PriorityThresholdScheduler<P>>();
    case SchedulerKind::kHandoff:
      return std::make_unique<HandoffScheduler<P>>();
    case SchedulerKind::kReaderWriter:
      return std::make_unique<ReaderWriterScheduler<P>>();
    case SchedulerKind::kQueue:
      return std::make_unique<DistributedQueueScheduler<P>>();
    case SchedulerKind::kNone:
      break;
    case SchedulerKind::kCustom:
      assert(false && "custom schedulers are installed by instance, "
                      "not by kind");
      break;
  }
  return nullptr;  // centralized barging: no queue at all
}

}  // namespace relock
