// LockUsageError: the misuse-guard exception shared by every relock
// primitive. Split out of configurable_lock.hpp so the sync primitives
// (condition_variable, semaphore, barrier) and the async front-end can
// throw it without pulling in the whole lock.
#pragma once

#include <stdexcept>

namespace relock {

/// Thrown on lock API misuse that must not slip through release builds:
/// the silent fallback would corrupt lock semantics (e.g. granting
/// exclusive ownership to a caller that asked for shared access), so these
/// checks are hard errors in every build type - unlike the defensive
/// asserts on internal invariants, which NDEBUG still compiles away.
class LockUsageError : public std::logic_error {
 public:
  explicit LockUsageError(const char* what) : std::logic_error(what) {}
};

}  // namespace relock
