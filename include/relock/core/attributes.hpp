// Configurable attributes of the lock object (paper section 3 / Table 1).
//
// The waiting component of a lock is driven by four mutable attributes:
//   spin-time  -> spin_count  : probes per waiting round (kInfiniteSpins =
//                               spin forever)
//   delay-time -> delay_ns    : initial backoff delay between probes
//                               (0 = tight spinning; >0 = Anderson backoff)
//   sleep-time -> sleep_ns    : how long a round sleeps after its spin phase
//                               (0 = never sleep; kForever = until woken)
//   timeout    -> timeout_ns  : total bound on the acquisition (0 = none)
//
// Table 1 of the paper maps value patterns to resulting lock kinds; that
// mapping is `classify()` below and is property-tested in
// tests/core_attributes_test.cpp.
#pragma once

#include <cstdint>
#include <limits>

#include "relock/platform/types.hpp"

namespace relock {

/// "spin forever" sentinel for spin_count.
inline constexpr std::uint32_t kInfiniteSpins =
    std::numeric_limits<std::uint32_t>::max();

struct LockAttributes {
  std::uint32_t spin_count = kInfiniteSpins;
  Nanos delay_ns = 0;
  Nanos sleep_ns = 0;
  Nanos timeout_ns = 0;

  // --- Named configurations (the rows of Table 1). ---

  /// Pure spin: (n, 0, 0, 0).
  static constexpr LockAttributes spin() noexcept {
    return {kInfiniteSpins, 0, 0, 0};
  }
  /// Backoff spin: (n, n, 0, 0).
  static constexpr LockAttributes backoff_spin(Nanos initial_delay = 50'000) noexcept {
    return {kInfiniteSpins, initial_delay, 0, 0};
  }
  /// Pure sleep / blocking: (0, 0, n, 0).
  static constexpr LockAttributes blocking() noexcept {
    return {0, 0, kForever, 0};
  }
  /// Combined / mixed: spin `spins` probes, then sleep, in turn (n, n, n, x).
  static constexpr LockAttributes combined(std::uint32_t spins,
                                           Nanos sleep = kForever) noexcept {
    return {spins, 0, sleep, 0};
  }
  /// Conditional: any waiting mode bounded by `timeout` (x, x, x, n).
  static constexpr LockAttributes conditional(Nanos timeout,
                                              LockAttributes base = spin()) noexcept {
    base.timeout_ns = timeout;
    return base;
  }

  friend constexpr bool operator==(const LockAttributes&,
                                   const LockAttributes&) noexcept = default;
};

/// The resulting lock kind for a given attribute configuration (Table 1).
enum class WaitingKind : std::uint8_t {
  kPureSpin,         ///< (n, 0, 0, 0)
  kBackoffSpin,      ///< (n, n, 0, 0)
  kPureSleep,        ///< (0, x, n, 0)
  kConditional,      ///< (x, x, x, n)
  kMixed,            ///< (n, x, n, 0)
  kDegenerate,       ///< (0, x, 0, 0): no spin, no sleep - polls politely
};

[[nodiscard]] constexpr WaitingKind classify(const LockAttributes& a) noexcept {
  if (a.timeout_ns > 0) return WaitingKind::kConditional;
  const bool spins = a.spin_count > 0;
  const bool sleeps = a.sleep_ns > 0;
  if (spins && sleeps) return WaitingKind::kMixed;
  if (spins) {
    return a.delay_ns > 0 ? WaitingKind::kBackoffSpin : WaitingKind::kPureSpin;
  }
  if (sleeps) return WaitingKind::kPureSleep;
  return WaitingKind::kDegenerate;
}

[[nodiscard]] constexpr const char* to_string(WaitingKind k) noexcept {
  switch (k) {
    case WaitingKind::kPureSpin: return "pure spin";
    case WaitingKind::kBackoffSpin: return "spin (backoff)";
    case WaitingKind::kPureSleep: return "pure sleep";
    case WaitingKind::kConditional: return "conditional sleep/spin";
    case WaitingKind::kMixed: return "mixed sleep/spin";
    case WaitingKind::kDegenerate: return "degenerate (poll)";
  }
  return "?";
}

/// Advice published by the current lock owner for advisory/speculative locks
/// (paper section 4.3.2): waiters poll this and override their configured
/// waiting policy with the owner's hint.
enum class Advice : std::uint64_t {
  kNone = 0,   ///< follow the configured attributes
  kSpin = 1,   ///< owner expects to release soon
  kSleep = 2,  ///< owner expects a long tenure
};

/// The lock scheduler kinds Gamma (paper sections 3.1 / 4.3.1).
enum class SchedulerKind : std::uint8_t {
  kNone,               ///< centralized barging: no queue, hardware ordering
  kFcfs,               ///< FIFO grant order
  kPriorityQueue,      ///< grant the highest-priority waiter
  kPriorityThreshold,  ///< FCFS among waiters with priority >= threshold
  kHandoff,            ///< releaser hints the next owner
  kReaderWriter,       ///< multiple readers / exclusive writers
  kQueue,              ///< distributed FIFO: MCS-family queue-node waiting
  kCustom,             ///< user-supplied Scheduler module
};

[[nodiscard]] constexpr const char* to_string(SchedulerKind k) noexcept {
  switch (k) {
    case SchedulerKind::kNone: return "none (centralized)";
    case SchedulerKind::kFcfs: return "fcfs";
    case SchedulerKind::kPriorityQueue: return "priority-queue";
    case SchedulerKind::kPriorityThreshold: return "priority-threshold";
    case SchedulerKind::kHandoff: return "handoff";
    case SchedulerKind::kReaderWriter: return "reader-writer";
    case SchedulerKind::kQueue: return "queue (distributed)";
    case SchedulerKind::kCustom: return "custom";
  }
  return "?";
}

/// Reader/writer preference for the kReaderWriter scheduler.
enum class RwPreference : std::uint8_t {
  kFifo,        ///< strict arrival order (leading readers batch together)
  kReaderPref,  ///< grant all queued readers before any writer
  kWriterPref,  ///< grant queued writers before any reader
};

/// Attribute classes for possession (paper's `possess` operation acquires
/// exclusive ownership of one attribute before reconfiguring it).
enum class AttributeClass : std::uint32_t {
  kWaitingPolicy = 1u << 0,
  kScheduler = 1u << 1,
  kAdvice = 1u << 2,
};

/// The lock states of the paper's Figure 4. A lock is *idle* when it is
/// free but threads are still waiting on it (e.g. during an expensive
/// locking cycle or while waiters are ineligible under a raised priority
/// threshold) - the state dynamic reconfiguration aims to minimize.
enum class LockState : std::uint8_t { kUnlocked, kLocked, kIdle };

[[nodiscard]] constexpr const char* to_string(LockState s) noexcept {
  switch (s) {
    case LockState::kUnlocked: return "unlocked";
    case LockState::kLocked: return "locked";
    case LockState::kIdle: return "idle";
  }
  return "?";
}

/// Passive locks execute the release module on the releasing processor;
/// active locks delegate it to a dedicated manager thread bound to the lock
/// (paper section 4.3.3).
enum class Execution : std::uint8_t { kPassive, kActive };

/// Where waiters wait (paper section 4.3.3, centralized vs. distributed):
/// centralized waiters poll the lock's home word; distributed waiters poll a
/// per-waiter flag placed in their own node's memory.
enum class WaitPlacement : std::uint8_t { kLockHome, kWaiterLocal };

}  // namespace relock
