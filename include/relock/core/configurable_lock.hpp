// ConfigurableLock: the paper's reconfigurable lock object (sections 3-4).
//
// Structure (Figure 5 of the paper):
//   - object state:      lock word, owner, registration queue, sleeper list
//   - configuration:     waiting attributes (Table 1), scheduler modules
//                        (registration / acquisition / release), placement,
//                        execution mode (passive/active)
//   - monitor module:    LockMonitor statistics
//   - reconfiguration:   possess / configure operations; scheduler changes
//                        obey the configuration delay (the new scheduler
//                        takes effect only once pre-registered waiters are
//                        all served)
//
// Concurrency design. A TAS meta word guards the lock's internal structures
// (the paper: "a primitive low-level lock is often used to enforce mutual
// exclusion of a high-level lock data structure"). The uncontended fast path
// is a single fetch_or on the state word, so a configurable lock configured
// as a spin lock costs about the same as a primitive spin lock (paper Table
// 2). With a scheduler configured, release performs a *direct handoff*: the
// state word never becomes free, the selected waiter's grant flag is set and
// the waiter woken if sleeping - so scheduler decisions cannot be barged.
// With SchedulerKind::kNone the lock is a centralized barging lock: release
// frees the state word and wakes all sleepers (paper section 4.3.2: "wakes
// up a specific thread or all the sleeping threads depending on the release
// policy").
//
// Contended-arrival design on real-concurrency platforms (kRealConcurrency):
// arriving waiters do NOT take the meta guard. Each pushes its stack-resident
// WaiterRecord onto a lock-free MPSC arrival stack with a single exchange on
// the arrivals word; the release module - already serialized by meta - drains
// the stack into the scheduler queue before selecting a grant. Registration
// therefore stays "the cost of one write operation" even under contention,
// and the meta guard degenerates to a release-side-only lock. On simulated
// platforms every word access has a calibrated cost and the meta-guarded
// arrival path is kept verbatim so the reproduction tables stay byte-stable.
//
// Contended-release design (kRealConcurrency, the configuration-quiescence
// epoch): the steady-state contended release does not take the meta guard
// either. Two observations make that safe. First, the release module is
// only ever executed by a thread that owns the state word - the previous
// holder, or a thread that won it from free - and the direct-handoff path
// never publishes the word free, so module ownership passes hand to hand
// along the grant chain. Second, every *configuration* operation
// (reconfiguration, possession, threshold change, scheduler swap, timeout
// withdrawal) announces itself on a host-side breaker count and waits for
// in-flight fast releases to drain (a Dekker handshake with the releaser's
// in-flight count) before mutating anything under meta; a releaser that
// observes a breaker falls back to the guarded slow path - exactly the
// paper's configuration-delay semantics. While quiescent, the releaser
// consults a pre-computed successor cached in `next_grant_` (selected at
// the previous release; re-validated against the scheduler's version
// counter for priority-sensitive kinds) and publishes ownership with a
// single store to the successor's waiter-local grant flag. See
// DESIGN.md "The configuration-quiescence epoch".
//
// The fissile fast path (kRealConcurrency): on top of all of the above the
// state word carries a second bit - kStateContended, "full mode". While it
// is clear the lock is in *fast mode*: no waiter is registered anywhere the
// release module would have to look, so for a fast-eligible configuration
// (exclusive, passive, non-recursive, non-advisory) acquire is one
// test-and-set and release is one CAS of held->free that bypasses the
// release module entirely. Any waiter that registers state the release
// module must observe sets the contended bit first (arrival stack:
// mark-after-push; centralized sleepers: mark under meta), which makes the
// release CAS fail and routes the owner through the full path. The bit is
// sticky across handoff chains and cleared only by the guarded path's
// free-publish, which is exactly the point where no waiter remains - so
// the lock re-enters fast mode by itself once contention drains. See
// DESIGN.md "The fissile fast path".
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstdint>
#include <deque>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "relock/core/attributes.hpp"
#include "relock/core/scheduler.hpp"
#include "relock/core/usage_error.hpp"
#include "relock/core/waiter.hpp"
#include "relock/monitor/lock_monitor.hpp"
#include "relock/platform/backoff.hpp"
#include "relock/platform/chk_hooks.hpp"
#include "relock/platform/platform.hpp"
#include "relock/platform/trace_hooks.hpp"

namespace relock {

/// The awaitable front-end's bridge into the lock's private arrival /
/// withdrawal machinery (relock/async/awaiter.hpp). Declared here so
/// ConfigurableLock can befriend it without including any coroutine
/// headers in core.
template <Platform P>
struct AsyncGate;

template <Platform P>
class ConfigurableLock {
  /// The async front-end replays the arrival, withdrawal, and breaker
  /// protocols on behalf of suspended coroutines; it needs the same access
  /// a member acquire path has.
  friend struct AsyncGate<P>;

  /// Stand-in for the arrivals word on platforms that keep the meta-guarded
  /// arrival path: allocating a real platform word there would shift the
  /// simulator's round-robin cell placement for every later allocation and
  /// perturb the calibrated tables.
  struct NoArrivalsWord {
    explicit NoArrivalsWord(typename P::Domain&, std::uint64_t = 0,
                            Placement = Placement::any()) {}
  };
  using ArrivalsWord = std::conditional_t<kRealConcurrency<P>,
                                          typename P::Word, NoArrivalsWord>;

  /// One per-thread waiting-policy override slot (kRealConcurrency only):
  /// written under meta, read lock-free by registering threads with a
  /// per-slot seqlock. Fields are relaxed atomics so concurrent torn-read
  /// candidates are data-race-free; the seq word makes them consistent.
  struct AttrSlot {
    std::atomic<std::uint32_t> seq{0};
    std::atomic<std::uint32_t> spin{0};
    std::atomic<Nanos> delay{0};
    std::atomic<Nanos> sleep{0};
    std::atomic<Nanos> timeout{0};
    std::atomic<bool> valid{false};
  };

  /// Slot storage published to lock-free readers: the size rides along so a
  /// reader bounds-checks against the array it actually holds, which lets
  /// the array be sized by the highest overridden ThreadId (grown on
  /// demand) instead of the full domain capacity. Sizing by capacity made
  /// every lock's first override cost O(domain capacity) - a real
  /// multiplier once thousands of table locks share one big domain.
  struct AttrSlotArray {
    explicit AttrSlotArray(std::uint32_t n)
        : size(n), slots(std::make_unique<AttrSlot[]>(n)) {}
    const std::uint32_t size;
    std::unique_ptr<AttrSlot[]> slots;
  };

 public:
  using Ctx = typename P::Context;
  using Domain = typename P::Domain;

  struct Options {
    SchedulerKind scheduler = SchedulerKind::kNone;
    LockAttributes attributes = LockAttributes::spin();
    /// Home node of the lock's words.
    Placement placement = Placement::any();
    /// Where waiters' grant flags live: kWaiterLocal = distributed lock
    /// (each waiter polls its own node's memory), kLockHome = centralized.
    WaitPlacement wait_placement = WaitPlacement::kWaiterLocal;
    RwPreference rw_preference = RwPreference::kFifo;
    bool recursive = false;
    bool advisory = false;        ///< waiters poll the owner's advice
    bool monitor_enabled = false;
    Execution execution = Execution::kPassive;
    /// Active locks only: the manager thread polls its mailbox (it owns a
    /// dedicated processor, so releasing threads never pay a wakeup cost).
    /// When false the manager blocks and unlock() must wake it.
    bool active_polling = true;
    /// Delay between the polling manager's mailbox probes.
    Nanos active_poll_interval = 20'000;
    /// Advisory mode: length of one bounded sleep round under kSleep
    /// advice. Waiters "spin and sleep in turn", re-polling the owner's
    /// advice each round, so they notice the end-of-tenure switch to spin.
    Nanos advice_sleep_slice = 500'000;
  };

  ConfigurableLock(Domain& domain, Options opts = Options{})
      : domain_(domain),
        opts_(opts),
        fast_eligible_(kRealConcurrency<P> && !opts.recursive &&
                       !opts.advisory &&
                       opts.execution == Execution::kPassive &&
                       opts.scheduler != SchedulerKind::kReaderWriter),
        meta_(domain, 0, opts.placement),
        state_(domain, 0, opts.placement),
        owner_(domain, 0, opts.placement),
        advice_(domain, 0, opts.placement),
        config_word_(domain, 0, opts.placement),
        sched_reg_(domain, 0, opts.placement),
        sched_acq_(domain, 0, opts.placement),
        sched_rel_(domain, 0, opts.placement),
        sched_flag_(domain, 0, opts.placement),
        registry_(domain, 0, opts.placement),
        possess_word_(domain, 0, opts.placement),
        mailbox_(domain, 0, opts.placement),
        arrivals_(domain, 0, opts.placement),
        scheduler_kind_(opts.scheduler) {
    // Assigned in the body, not the init list: the kQueue module is a
    // façade over queue_cell_, a member declared further down.
    scheduler_ = make_module(opts.scheduler);
    store_attrs(opts.attributes);
    if (scheduler_ != nullptr) {
      scheduler_->set_rw_preference(opts.rw_preference);
    }
    monitor_.set_enabled(opts.monitor_enabled);
  }

  ConfigurableLock(const ConfigurableLock&) = delete;
  ConfigurableLock& operator=(const ConfigurableLock&) = delete;

  // =================================================================
  // Acquisition.
  // =================================================================

  /// Acquires the lock. Returns false only if the configured waiting policy
  /// has a timeout (a *conditional lock*, Table 1) and it expired.
  bool lock(Ctx& ctx) { return acquire(ctx, /*shared=*/false, 0); }

  /// Conditional acquisition bounded by `timeout` (overrides the timeout
  /// attribute for this call).
  bool lock_for(Ctx& ctx, Nanos timeout) {
    return acquire(ctx, /*shared=*/false, timeout);
  }

  /// Polling acquisition: single attempt, never waits.
  bool try_lock(Ctx& ctx) {
    if (rw_capable()) return try_acquire_rw(ctx, /*shared=*/false);
    if (opts_.recursive && is_owner(ctx)) {
      ++recursion_depth_;
      return true;
    }
    if (claimed(P::fetch_or(ctx, state_, kStateHeld))) {
      if constexpr (kRealConcurrency<P>) {
        const Nanos t0 =
            monitor_.enabled() && monitor_.timing_sample() ? P::now(ctx) : 0;
        if (fast_eligible_) {
          on_acquired_fast(ctx, t0);
        } else {
          on_acquired_exclusive(ctx, /*contended=*/false, t0);
        }
      } else {
        on_acquired_exclusive(ctx, /*contended=*/false, P::now(ctx));
      }
      return true;
    }
    return false;
  }

  /// Shared (reader) acquisition; requires a reader-writer configuration.
  bool lock_shared(Ctx& ctx) { return acquire(ctx, /*shared=*/true, 0); }
  bool lock_shared_for(Ctx& ctx, Nanos timeout) {
    return acquire(ctx, /*shared=*/true, timeout);
  }
  bool try_lock_shared(Ctx& ctx) {
    if (!rw_capable()) {
      misuse("try_lock_shared on a lock without a reader-writer scheduler");
    }
    return try_acquire_rw(ctx, /*shared=*/true);
  }

  // =================================================================
  // Release.
  // =================================================================

  void unlock(Ctx& ctx) { unlock_to(ctx, kInvalidThread); }

  /// Release with a handoff hint: with SchedulerKind::kHandoff the lock is
  /// granted directly to `hint` if that thread is waiting.
  void unlock_to(Ctx& ctx, ThreadId hint) {
    if (opts_.recursive && recursion_depth_ > 0) {
      --recursion_depth_;
      return;
    }
    note_trace(ctx, LockEvent::kRelease, ctx.self());
    if constexpr (kRealConcurrency<P>) {
      // Clock elision: the hold-time pair feeds only the monitor, so with
      // the monitor off the release path makes no clock read at all. With
      // it on, only acquisitions that drew a timing sample (acquire_time_
      // nonzero) pay the read here; the rest just count the release.
      if (monitor_.enabled()) {
        if (acquire_time_ != 0) {
          monitor_.on_release(P::now(ctx) - acquire_time_);
        } else {
          monitor_.on_release();
        }
      }
      if (fast_eligible_) {
        // Fissile fast unlock: in fast mode (contended bit clear) no
        // waiter state exists for the release module to serve, so one CAS
        // of held->free is the whole release. The CAS (not a plain store)
        // is what makes this sound: a waiter's mark landing first makes it
        // fail, and we fall through to the full paths below. A
        // fast-eligible lock is passive by definition, so the serving_
        // probe below is skipped knowingly.
        chk_point<P>(ctx, "fu.cas");
        if (P::cas(ctx, state_, kStateHeld, 0)) {
          note(ctx, LockEvent::kReleaseFree);
          return;
        }
      }
      if (opts_.execution == Execution::kActive && serving_.load()) {
        post_release(ctx, hint, /*shared=*/false);
        return;
      }
      if (release_fast(ctx, hint)) return;
    } else {
      monitor_.on_release(P::now(ctx) - acquire_time_);
      if (opts_.execution == Execution::kActive && serving_.load()) {
        post_release(ctx, hint, /*shared=*/false);
        return;
      }
    }
    release(ctx, hint, /*shared=*/false);
  }

  void unlock_shared(Ctx& ctx) {
    if (!rw_capable()) {
      misuse("unlock_shared on a lock without a reader-writer scheduler");
    }
    note_trace(ctx, LockEvent::kRelease, ctx.self());
    if (opts_.execution == Execution::kActive && serving_.load()) {
      post_release(ctx, kInvalidThread, /*shared=*/true);
      return;
    }
    release(ctx, kInvalidThread, /*shared=*/true);
  }

  // =================================================================
  // Advisory / speculative locks (paper section 4.3.2).
  // =================================================================

  /// Publishes the owner's advice to current and future waiters. Usually
  /// called by the lock owner from inside the critical section; the advice
  /// may be changed at different stages of the critical section.
  ///
  /// `expected_remaining` (kSleep only) is the owner's estimate of its
  /// remaining tenure: "the current lock owner is the best source of
  /// information for the length of lock ownership". Waiters sleep until
  /// just before that deadline and then spin, so a long tenure costs them
  /// one block instead of continuous spinning, yet the handoff at the end
  /// is spin-fast.
  void advise(Ctx& ctx, Advice a, Nanos expected_remaining = 0) {
    std::uint64_t v = static_cast<std::uint64_t>(a);
    if (a == Advice::kSleep && expected_remaining > 0) {
      v |= (P::now(ctx) + expected_remaining) << 2;
    }
    P::store(ctx, advice_, v);
  }

  /// Reads the current advice (costed platform read).
  Advice current_advice(Ctx& ctx) {
    return static_cast<Advice>(P::load(ctx, advice_) & 3);
  }

  // =================================================================
  // Reconfiguration (paper sections 3.2 / 4.2).
  // =================================================================

  /// Acquires exclusive ownership of an attribute class so an external
  /// agent can reconfigure it. Cost: one test-and-set (paper Table 6).
  bool try_possess(Ctx& ctx, AttributeClass c) {
    const auto bit = static_cast<std::uint64_t>(c);
    const bool won = (P::fetch_or(ctx, possess_word_, bit) & bit) == 0;
    if constexpr (kRealConcurrency<P>) {
      // Possession opens a reconfiguration window: breaks the quiescence
      // epoch so releasers stay on the guarded path until it is released.
      if (won) {
        chk_point<P>(ctx, "possess.arm");
        quiesce_breakers_.fetch_add(1, std::memory_order_seq_cst);
        note(ctx, LockEvent::kBreakerArm);
      }
    }
    if (won) note_trace(ctx, LockEvent::kPossess, bit);
    return won;
  }
  void possess(Ctx& ctx, AttributeClass c) {
    while (!try_possess(ctx, c)) {
      P::pause(ctx);
    }
  }
  void release_possession(Ctx& ctx, AttributeClass c) {
    const auto bit = static_cast<std::uint64_t>(c);
    const std::uint64_t prev = P::fetch_and(ctx, possess_word_, ~bit);
    if constexpr (kRealConcurrency<P>) {
      if ((prev & bit) != 0) {
        chk_point<P>(ctx, "possess.disarm");
        quiesce_breakers_.fetch_sub(1, std::memory_order_seq_cst);
        note(ctx, LockEvent::kBreakerDisarm);
      }
    }
    if ((prev & bit) != 0) note_trace(ctx, LockEvent::kUnpossess, bit);
  }

  /// Changes the waiting policy attributes. Cost: one read + one write of
  /// the configuration word (paper: "a simple dynamic alteration of waiting
  /// mechanism needs only one memory read and one memory write", 1R1W).
  /// Takes effect for subsequent acquisitions; in-flight waiters keep the
  /// policy they registered with.
  void configure_waiting(Ctx& ctx, LockAttributes attrs) {
    QuiesceGuard quiesce(ctx, *this);
    note(ctx, LockEvent::kConfigMutateBegin);
    (void)P::load(ctx, config_word_);
    store_attrs(attrs);
    P::store(ctx, config_word_, config_version_.fetch_add(1) + 1);
    note(ctx, LockEvent::kConfigMutateEnd);
    monitor_.on_reconfiguration(/*scheduler_change=*/false);
  }

  /// Changes the lock scheduler. Cost: 1R5W (paper section 4.1): three
  /// writes for the scheduler submodules, one to set the configuration-
  /// delay flag, and one - deferred - to reset it once all pre-registered
  /// threads have been served. Until then the old scheduler keeps serving
  /// its queue while new arrivals register with the incoming scheduler.
  /// Reader-writer capability is fixed at construction: switching between
  /// RW and non-RW kinds is not supported.
  void configure_scheduler(Ctx& ctx, SchedulerKind kind) {
    if (kind == SchedulerKind::kCustom) {
      misuse("install custom schedulers by instance (unique_ptr overload)");
    }
    install_scheduler(ctx, kind, make_module(kind));
  }

  /// Installs a user-supplied scheduler module - the extension point the
  /// paper's kernel-configurability argument calls for (e.g. the
  /// deadline-based EdfScheduler). Same cost model and configuration-delay
  /// semantics as the built-in kinds.
  void configure_scheduler(Ctx& ctx, std::unique_ptr<Scheduler<P>> custom) {
    if (custom == nullptr) misuse("configure_scheduler with a null scheduler");
    const SchedulerKind kind = custom->kind();
    if (kind == SchedulerKind::kQueue) {
      // A user-built distributed-queue module carries its own cell, but
      // lock-free arrivals tail-swap into the lock-resident one. The
      // module is stateless apart from the cell, so install a lock-bound
      // façade instead; the caller's instance is simply discarded.
      install_scheduler(ctx, kind, make_module(kind));
      return;
    }
    install_scheduler(ctx, kind, std::move(custom));
  }

  /// Priority-threshold scheduler parameter. If the lock is currently free,
  /// lowering the threshold re-runs grant selection so newly eligible
  /// waiters are served.
  void set_priority_threshold(Ctx& ctx, Priority threshold) {
    QuiesceGuard quiesce(ctx, *this);
    meta_lock(ctx);
    note(ctx, LockEvent::kConfigMutateBegin);
    // A fast release may have pre-dequeued the next grantee; return it so
    // the threshold applies to it too and the empty() probe below is real.
    reclaim_next_grant(ctx);
    if (scheduler_ != nullptr) scheduler_->set_threshold(threshold);
    if (pending_scheduler_ != nullptr) {
      pending_scheduler_->set_threshold(threshold);
    }
    threshold_mirror_.store(threshold, std::memory_order_relaxed);
    note(ctx, LockEvent::kThresholdSet,
                 static_cast<std::uint64_t>(
                     static_cast<std::int64_t>(threshold)));
    note(ctx, LockEvent::kConfigMutateEnd);
    monitor_.on_reconfiguration(/*scheduler_change=*/false);
    if (!held_locked() && scheduler_ != nullptr && !scheduler_->empty()) {
      // Lock is free with waiters that may have just become eligible. The
      // claim carries the contended bit (kClaimMark): a direct handoff may
      // follow, and the grantee's release must see full mode while the
      // remaining waiters stay queued.
      if (claimed(P::fetch_or(ctx, state_, kClaimMark))) {
        grant_or_free(ctx, kInvalidThread);  // releases meta
        return;
      }
    }
    meta_unlock(ctx);
  }

  void set_rw_preference(Ctx& ctx, RwPreference pref) {
    QuiesceGuard quiesce(ctx, *this);
    meta_lock(ctx);
    note(ctx, LockEvent::kConfigMutateBegin);
    opts_.rw_preference = pref;
    if (scheduler_ != nullptr) scheduler_->set_rw_preference(pref);
    if (pending_scheduler_ != nullptr) {
      pending_scheduler_->set_rw_preference(pref);
    }
    note(ctx, LockEvent::kConfigMutateEnd);
    monitor_.on_reconfiguration(/*scheduler_change=*/false);
    meta_unlock(ctx);
  }

  /// Per-thread waiting-policy override: the acquisition module "implements
  /// a mapping of thread-id to the appropriate methods for waiting" (paper
  /// section 3.2). Threads with an override use it instead of the lock-wide
  /// attributes.
  void set_thread_attributes(Ctx& ctx, ThreadId tid, LockAttributes attrs) {
    // Checked before the quiescence epoch is broken or meta is taken:
    // misuse() unwinds, and it must leave no lock state to restore.
    if constexpr (kRealConcurrency<P>) {
      if (tid >= domain_.capacity()) {
        misuse("set_thread_attributes: tid outside the lock's thread domain");
      }
    }
    QuiesceGuard quiesce(ctx, *this);
    meta_lock(ctx);
    note(ctx, LockEvent::kConfigMutateBegin);
    if constexpr (kRealConcurrency<P>) {
      // Flat slot array indexed by ThreadId, published via an atomic
      // pointer. Registering threads read it without the meta guard (the
      // seed's map lookup forced every arrival through meta); writers here
      // still serialize on meta and version each slot seqlock-style. The
      // array covers [0, size) and is regrown (power of two, floor 8) when
      // an override lands beyond it; superseded arrays are retired, not
      // freed, because a lock-free reader may still hold one - total
      // retained memory stays under 2x the final array.
      AttrSlotArray* arr = attr_slots_.load(std::memory_order_relaxed);
      if (arr == nullptr || tid >= arr->size) {
        const std::uint32_t want = std::max<std::uint32_t>(
            8u, std::bit_ceil(static_cast<std::uint32_t>(tid) + 1u));
        auto grown = std::make_unique<AttrSlotArray>(
            arr == nullptr ? want : std::max(want, arr->size));
        if (arr != nullptr) {
          for (std::uint32_t i = 0; i < arr->size; ++i) {
            const AttrSlot& o = arr->slots[i];
            const LockAttributes a{o.spin.load(std::memory_order_relaxed),
                                   o.delay.load(std::memory_order_relaxed),
                                   o.sleep.load(std::memory_order_relaxed),
                                   o.timeout.load(std::memory_order_relaxed)};
            slot_write(grown->slots[i], a,
                       o.valid.load(std::memory_order_relaxed));
          }
        }
        attr_slots_.store(grown.get(), std::memory_order_release);
        attr_slot_storage_.push_back(std::move(grown));
        arr = attr_slots_.load(std::memory_order_relaxed);
      }
      AttrSlot& s = arr->slots[tid];
      if (!s.valid.load(std::memory_order_relaxed)) ++attr_override_count_;
      slot_write(s, attrs, /*valid=*/true);
      has_thread_attrs_.store(attr_override_count_ != 0,
                              std::memory_order_relaxed);
    } else {
      thread_attrs_[tid] = attrs;
      has_thread_attrs_.store(true, std::memory_order_relaxed);
    }
    note(ctx, LockEvent::kConfigMutateEnd);
    meta_unlock(ctx);
  }
  void clear_thread_attributes(Ctx& ctx, ThreadId tid) {
    QuiesceGuard quiesce(ctx, *this);
    meta_lock(ctx);
    note(ctx, LockEvent::kConfigMutateBegin);
    if constexpr (kRealConcurrency<P>) {
      AttrSlotArray* arr = attr_slots_.load(std::memory_order_relaxed);
      if (arr != nullptr && tid < arr->size &&
          arr->slots[tid].valid.load(std::memory_order_relaxed)) {
        --attr_override_count_;
        slot_write(arr->slots[tid], LockAttributes{}, /*valid=*/false);
      }
      has_thread_attrs_.store(attr_override_count_ != 0,
                              std::memory_order_relaxed);
    } else {
      thread_attrs_.erase(tid);
      has_thread_attrs_.store(!thread_attrs_.empty(),
                              std::memory_order_relaxed);
    }
    note(ctx, LockEvent::kConfigMutateEnd);
    meta_unlock(ctx);
  }

  // =================================================================
  // Active locks (paper section 4.3.3): a dedicated manager thread
  // executes the release module on behalf of releasing threads.
  // =================================================================

  /// Manager loop. Spawn a thread bound to the lock and call serve() from
  /// it; returns after stop_serving(). While serving, unlock() merely posts
  /// a release request and wakes the manager.
  void serve(Ctx& ctx) {
    manager_tid_.store(ctx.self(), std::memory_order_relaxed);
    stop_.store(false, std::memory_order_relaxed);
    serving_.store(true);
    for (;;) {
      if (stop_.load()) {
        // Stop accepting new posts first, then serve the stragglers:
        // releases arriving after this point run inline (passive path).
        serving_.store(false);
        const std::uint64_t last = P::load(ctx, mailbox_);
        P::store(ctx, mailbox_, 0);
        if (last != 0 && last != kMailboxShared) {
          release(ctx, decode_mailbox_hint(last), /*shared=*/false);
        }
        drain_releases(ctx);
        break;
      }
      // Only touch the (atomically guarded) request queue when the doorbell
      // rang: an idle manager re-acquiring meta in a loop would saturate the
      // lock's home memory module and starve releasing threads.
      const std::uint64_t box = P::load(ctx, mailbox_);
      if (box != 0) {
        P::store(ctx, mailbox_, 0);
        if (box == kMailboxShared) {
          drain_releases(ctx);
        } else {
          // Exclusive release posted inline in the mailbox word.
          release(ctx, decode_mailbox_hint(box), /*shared=*/false);
        }
        continue;
      }
      if (opts_.active_polling) {
        // Dedicated processor: poll the mailbox at the configured interval.
        P::delay(ctx, opts_.active_poll_interval);
      } else {
        P::block(ctx);
      }
    }
    serving_.store(false);
  }

  void stop_serving(Ctx& ctx) {
    stop_.store(true);
    const ThreadId mgr = manager_tid_.load(std::memory_order_relaxed);
    if (mgr != kInvalidThread) P::unblock(ctx, mgr);
  }

  // =================================================================
  // Introspection (host-side; approximate under concurrency).
  // =================================================================

  [[nodiscard]] LockAttributes attributes() const { return load_attrs(); }
  [[nodiscard]] SchedulerKind scheduler_kind() const {
    return scheduler_kind_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool reconfiguration_pending() const {
    return has_pending_.load(std::memory_order_relaxed);
  }
  /// Scheduler kind the next arrival will register under: the incoming
  /// module's kind while a configuration delay is in effect, else the
  /// installed one. Lock-free advisory read; external governors compare it
  /// against an intended kind to suppress no-op reconfigurations without
  /// taking possession.
  [[nodiscard]] SchedulerKind target_scheduler_kind() const noexcept {
    return arrival_target_kind();
  }
  /// Last threshold installed via set_priority_threshold (kDefaultPriority
  /// until one is). Host-side mirror: the live scheduler-module pointer may
  /// be mid-swap during a reconfiguration, so governors read this instead
  /// of chasing the module.
  [[nodiscard]] Priority priority_threshold() const noexcept {
    return threshold_mirror_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] LockMonitor& monitor() noexcept { return monitor_; }
  [[nodiscard]] const LockMonitor& monitor() const noexcept {
    return monitor_;
  }
  [[nodiscard]] std::uint32_t waiter_count() const {
    return waiter_count_.load(std::memory_order_relaxed);
  }

  /// The lock's state per the paper's Figure 4, using a costed read of the
  /// state word: locked, unlocked, or *idle* (free with waiting threads).
  [[nodiscard]] LockState state(Ctx& ctx) {
    const bool held = (P::load(ctx, state_) & kStateHeld) != 0;
    if (held) return LockState::kLocked;
    return waiter_count() > 0 ? LockState::kIdle : LockState::kUnlocked;
  }
  [[nodiscard]] const Options& options() const noexcept { return opts_; }

  /// True when this configuration can take the fissile fast paths at all
  /// (exclusive, passive, non-recursive, non-advisory on a real platform).
  [[nodiscard]] bool fast_path_eligible() const noexcept {
    return fast_eligible_;
  }
  /// True when the lock is currently in fast mode: eligible AND the
  /// contended bit is clear, so the next uncontended acquire/release pair
  /// is one RMW each. Costed read; advisory under concurrency like the
  /// other introspection calls.
  [[nodiscard]] bool in_fast_mode(Ctx& ctx) {
    return fast_eligible_ && (P::load(ctx, state_) & kStateContended) == 0;
  }

 private:
  enum class WaitResult : std::uint8_t { kGranted, kTimedOut };

  struct ReleaseRequest {
    ThreadId hint;
    bool shared;
    Nanos hold_started;
  };

  [[nodiscard]] bool rw_capable() const noexcept {
    return opts_.scheduler == SchedulerKind::kReaderWriter;
  }

  [[nodiscard]] bool is_owner(Ctx& ctx) {
    return P::load(ctx, owner_) ==
           static_cast<std::uint64_t>(ctx.self()) + 1;
  }

  /// True while some thread/batch holds the lock. Meta must be held (used
  /// only on meta-guarded slow paths); reads host mirrors.
  [[nodiscard]] bool held_locked() const noexcept {
    return holders_ != 0;
  }

  // ------------------------------------------------------------- meta ----

  // TTAS: probe with cheap reads, RMW only when the guard looks free -
  // spinning with RMWs would serialize on the (expensive) atomic path of
  // the lock's home memory module.
  //
  // On real-concurrency platforms failed probes escalate: a few PAUSEs,
  // then bounded exponential busy-delays (so colliding threads de-phase
  // instead of hammering the guard line), then yields (so an oversubscribed
  // processor reaches the guard holder at all). The simulator keeps the
  // seed's pure TTAS loop: its pauses are costed events and the calibrated
  // tables depend on the exact access sequence.
  void meta_lock(Ctx& ctx) {
    if constexpr (kRealConcurrency<P>) {
      BackoffSchedule backoff(BackoffSchedule::Params{
          kMetaBackoffInitialNs, kMetaBackoffCapNs, 2});
      std::uint32_t failed = 0;
      for (;;) {
        if (P::load_relaxed(ctx, meta_) == 0 &&
            P::fetch_or(ctx, meta_, 1) == 0) {
          return;
        }
        ++failed;
        if (failed <= kMetaPureSpins) {
          P::pause(ctx);
        } else if (failed <= kMetaPureSpins + kMetaBackoffRounds) {
          P::delay(ctx, backoff.next());
        } else {
          P::yield(ctx);
        }
      }
    } else {
      for (;;) {
        if (P::load_relaxed(ctx, meta_) == 0 &&
            P::fetch_or(ctx, meta_, 1) == 0) {
          return;
        }
        P::pause(ctx);
      }
    }
  }
  void meta_unlock(Ctx& ctx) { P::store(ctx, meta_, 0); }

  // ------------------------------------------------------- attributes ----

  void store_attrs(const LockAttributes& a) {
    attr_spin_.store(a.spin_count, std::memory_order_relaxed);
    attr_delay_.store(a.delay_ns, std::memory_order_relaxed);
    attr_sleep_.store(a.sleep_ns, std::memory_order_relaxed);
    attr_timeout_.store(a.timeout_ns, std::memory_order_relaxed);
  }
  [[nodiscard]] LockAttributes load_attrs() const {
    return LockAttributes{attr_spin_.load(std::memory_order_relaxed),
                          attr_delay_.load(std::memory_order_relaxed),
                          attr_sleep_.load(std::memory_order_relaxed),
                          attr_timeout_.load(std::memory_order_relaxed)};
  }

  /// Effective attributes for a registering thread: the per-thread override
  /// if one exists, else the lock-wide attributes. On real-concurrency
  /// platforms this reads the flat slot array and is safe without the meta
  /// guard (seqlock-validated); on simulated platforms the caller holds
  /// meta and the map is consulted directly.
  [[nodiscard]] LockAttributes effective_attrs_for(ThreadId tid) {
    if (!has_thread_attrs_.load(std::memory_order_relaxed)) {
      return load_attrs();
    }
    if constexpr (kRealConcurrency<P>) {
      AttrSlotArray* arr = attr_slots_.load(std::memory_order_acquire);
      // A thread past the array's end has no override by construction:
      // setting one grows the array to cover its ThreadId first.
      if (arr == nullptr || tid >= arr->size) return load_attrs();
      AttrSlot& s = arr->slots[tid];
      for (;;) {
        const std::uint32_t v1 = s.seq.load(std::memory_order_acquire);
        if ((v1 & 1u) != 0) continue;  // write in flight
        const bool valid = s.valid.load(std::memory_order_relaxed);
        const LockAttributes a{s.spin.load(std::memory_order_relaxed),
                               s.delay.load(std::memory_order_relaxed),
                               s.sleep.load(std::memory_order_relaxed),
                               s.timeout.load(std::memory_order_relaxed)};
        // Fence-free validation: the RMW's release half keeps the field
        // loads above from sinking past it. Uncontended - each thread reads
        // only its own slot; only a rare configuration write collides.
        if (s.seq.fetch_add(0, std::memory_order_acq_rel) == v1) {
          return valid ? a : load_attrs();
        }
      }
    } else {
      auto it = thread_attrs_.find(tid);  // caller holds meta
      if (it != thread_attrs_.end()) return it->second;
      return load_attrs();
    }
  }

  /// Seqlock slot write. Caller holds meta (single writer per slot). The
  /// opening exchange's acquire half keeps the field stores after the odd
  /// sequence value becomes visible (fence-free for TSan builds).
  static void slot_write(AttrSlot& s, const LockAttributes& a, bool valid) {
    const std::uint32_t v0 = s.seq.load(std::memory_order_relaxed);
    (void)s.seq.exchange(v0 + 1, std::memory_order_acq_rel);
    s.spin.store(a.spin_count, std::memory_order_relaxed);
    s.delay.store(a.delay_ns, std::memory_order_relaxed);
    s.sleep.store(a.sleep_ns, std::memory_order_relaxed);
    s.timeout.store(a.timeout_ns, std::memory_order_relaxed);
    s.valid.store(valid, std::memory_order_relaxed);
    s.seq.store(v0 + 2, std::memory_order_release);
  }

  [[nodiscard]] static bool policy_may_sleep(const LockAttributes& a,
                                             bool advisory) noexcept {
    return a.sleep_ns > 0 || advisory;
  }

  // ------------------------------------------------------ observers ------

  /// Reports one semantic transition to both observers that may be
  /// compiled in: the relock-check oracles (chk_event) and the calling
  /// thread's relock-trace ring (trc_event). Emitting from one call site
  /// makes the two event streams share vocabulary AND order by
  /// construction - check_trace_test asserts a trace equals the checker's
  /// event log record for record.
  void note(Ctx& ctx, LockEvent e, std::uint64_t arg = 0) {
    chk_event<P>(ctx, e, arg);
    trc_event<P>(ctx, trace_tag_, e, arg);
  }

  /// Trace-only transitions (acquire flavor, release entry, park/unpark,
  /// possession): thread-local progress markers outside the checker's
  /// oracle vocabulary. Deliberately NOT routed through chk_event - every
  /// checker event opens spin gates (note_write), so adding kinds there
  /// would perturb the schedule spaces of existing scenarios.
  void note_trace(Ctx& ctx, LockEvent e, std::uint64_t arg = 0) {
    trc_event<P>(ctx, trace_tag_, e, arg);
  }

  /// Hard API-misuse error; see LockUsageError.
  [[noreturn]] static void misuse(const char* what) {
    throw LockUsageError(what);
  }

  // ------------------------------------------------ state-word layout ----
  // bit 0: the busy indicator, exactly as the paper has it.
  // bit 1 (kRealConcurrency only): "full mode". Set by any waiter that
  // registers state only the release module can serve (an arrival-stack
  // record, a centralized sleeper) and by guarded re-grabs of a free word
  // with such state outstanding; cleared only by the guarded free-publish
  // in grant_or_free, which runs exactly when no such state remains. While
  // clear, a fast-eligible owner's release is a single held->free CAS.
  // Simulated platforms never set the bit (their state word stays 0/1 and
  // the calibrated tables stay byte-identical), so every comparison of a
  // state-word RMW result goes through claimed() instead of == 0: the
  // contended bit may ride along in the previous value with the claim
  // still having succeeded.

  static constexpr std::uint64_t kStateHeld = 1;
  static constexpr std::uint64_t kStateContended = 2;
  /// Or-mask for claims that must leave the word in full mode on real
  /// platforms (claims that may be followed by a direct handoff, or that
  /// must disable the fast unlock of whoever wins the word instead).
  static constexpr std::uint64_t kClaimMark =
      kRealConcurrency<P> ? (kStateHeld | kStateContended) : kStateHeld;

  /// True iff a state-word claim RMW took the lock: bit 0 was clear.
  [[nodiscard]] static constexpr bool claimed(std::uint64_t prev) noexcept {
    return (prev & kStateHeld) == 0;
  }

  // -------------------------------------------------------- acquire ------

  bool acquire(Ctx& ctx, bool shared, Nanos timeout_override) {
    if (rw_capable()) return acquire_rw(ctx, shared, timeout_override);
    if (shared) {
      misuse("lock_shared on a lock without a reader-writer scheduler");
    }

    if (opts_.recursive && is_owner(ctx)) {
      ++recursion_depth_;
      return true;
    }
    Nanos t0;
    Nanos arrival = 0;
    if constexpr (kRealConcurrency<P>) {
      // Clock elision: the timestamp feeds only monitor statistics and
      // timeout deadlines. With the monitor off - or for operations outside
      // the 1-in-N timing sample - skip the read; a timeout waiter re-reads
      // the clock lazily (0 marks "not taken").
      t0 = monitor_.enabled() && monitor_.timing_sample() ? P::now(ctx) : 0;
      // An explicit lock_for() deadline is anchored HERE, at arrival. With
      // the monitor off, t0 is elided and the lazy re-read used to happen
      // only inside the slow path - after the failed fast-path RMW and the
      // registration stores - silently extending the timeout by the time
      // spent getting there.
      if (timeout_override != 0) arrival = t0 != 0 ? t0 : P::now(ctx);
    } else {
      t0 = P::now(ctx);
      arrival = t0;
    }
    // Fast path: one RMW, like a primitive spin lock (paper Table 2). For
    // fast-eligible locks the claim is the whole acquisition: no owner
    // registration, and one monitor-enabled load gates the bookkeeping.
    if (claimed(P::fetch_or(ctx, state_, kStateHeld))) {
      if constexpr (kRealConcurrency<P>) {
        if (fast_eligible_) {
          on_acquired_fast(ctx, t0);
          return true;
        }
      }
      on_acquired_exclusive(ctx, /*contended=*/false, t0);
      return true;
    }
    return acquire_slow(ctx, /*shared=*/false, timeout_override, t0, arrival);
  }

  bool acquire_slow(Ctx& ctx, bool shared, Nanos timeout_override, Nanos t0,
                    Nanos arrival) {
    // Registration: log the requesting thread's identity - "the cost of one
    // write operation" (paper section 3.2).
    P::store(ctx, registry_, static_cast<std::uint64_t>(ctx.self()) + 1);
    // Acquisition: read the waiting-policy configuration (the 1R the
    // configure operation pairs with).
    (void)P::load(ctx, config_word_);

    if constexpr (kRealConcurrency<P>) {
      // Contended arrival without the meta guard: scheduled waiters publish
      // themselves on the lock-free arrival stack; centralized waiters go
      // straight to the TTAS waiting engine. The kind read is advisory - a
      // racing reconfiguration is absorbed by the release module (drained
      // records whose scheduler vanished park on the orphan queue).
      const SchedulerKind target_kind = arrival_target_kind();
      if (target_kind == SchedulerKind::kQueue) {
        return acquire_queue_lockfree(ctx, timeout_override, t0, arrival);
      }
      if (target_kind != SchedulerKind::kNone) {
        return acquire_scheduled_lockfree(ctx, timeout_override, t0, arrival);
      }
      return acquire_centralized_lockfree(ctx, timeout_override, t0, arrival);
    } else {
      meta_lock(ctx);
      LockAttributes attrs = effective_attrs_for(ctx.self());
      if (timeout_override != 0) attrs.timeout_ns = timeout_override;
      const Nanos deadline =
          attrs.timeout_ns != 0 ? t0 + attrs.timeout_ns : kForever;

      // Re-check under meta: the lock may have been freed meanwhile. The
      // RMW keeps us correct against fast-path acquirers who do not take
      // meta.
      if (!shared && claimed(P::fetch_or(ctx, state_, kStateHeld))) {
        holders_ = 1;
        meta_unlock(ctx);
        on_acquired_exclusive(ctx, /*contended=*/true, t0);
        return true;
      }

      Scheduler<P>* target = has_pending_.load(std::memory_order_relaxed)
                                 ? pending_scheduler_.get()
                                 : scheduler_.get();
      if (target != nullptr) {
        WaiterRecord<P> rec(domain_, ctx.self(), ctx.priority(),
                            grant_flag_placement(ctx), shared,
                            policy_may_sleep(attrs, opts_.advisory));
        rec.enqueue_time = t0;
        rec.registered_with = target;
        target->enqueue(rec);
        waiter_count_.fetch_add(1, std::memory_order_relaxed);
        meta_unlock(ctx);

        const WaitResult r = wait_queued(ctx, rec, attrs, deadline);
        if (r == WaitResult::kGranted) {
          waiter_count_.fetch_sub(1, std::memory_order_relaxed);
          on_granted(ctx, shared, t0);
          return true;
        }
        // Timeout: resolve the race with a concurrent grant under meta.
        meta_lock(ctx);
        if (rec.granted_flag_host) {
          meta_unlock(ctx);
          waiter_count_.fetch_sub(1, std::memory_order_relaxed);
          on_granted(ctx, shared, t0);
          return true;
        }
        withdraw(ctx, rec);
        meta_unlock(ctx);
        waiter_count_.fetch_sub(1, std::memory_order_relaxed);
        monitor_.on_timeout();
        return false;
      }

      // Centralized barging mode (SchedulerKind::kNone).
      meta_unlock(ctx);
      const WaitResult r = wait_centralized(ctx, attrs, deadline);
      if (r == WaitResult::kGranted) {
        on_acquired_exclusive(ctx, /*contended=*/true, t0);
        return true;
      }
      monitor_.on_timeout();
      return false;
    }
  }

  /// Kind the next arrival will register under (advisory, lock-free read).
  [[nodiscard]] SchedulerKind arrival_target_kind() const noexcept {
    return has_pending_.load(std::memory_order_relaxed)
               ? pending_kind_.load(std::memory_order_relaxed)
               : scheduler_kind_.load(std::memory_order_relaxed);
  }

  /// Scheduled contended arrival, kRealConcurrency only. The record is
  /// published with one exchange on the arrivals word; the release module
  /// (serialized under meta) later drains it into the scheduler queue.
  bool acquire_scheduled_lockfree(Ctx& ctx, Nanos timeout_override, Nanos t0,
                                  Nanos arrival) {
    LockAttributes attrs = effective_attrs_for(ctx.self());
    if (timeout_override != 0) attrs.timeout_ns = timeout_override;
    Nanos deadline = kForever;
    if (attrs.timeout_ns != 0) {
      // Deadlines run from arrival when acquire() anchored one (explicit
      // lock_for); attribute-configured timeouts anchor here, at
      // registration, which is where the policy is first known.
      deadline =
          (arrival != 0 ? arrival : (t0 != 0 ? t0 : P::now(ctx))) +
          attrs.timeout_ns;
    }

    // Oversubscription escalation: with more live threads than processors a
    // spinning waiter mostly burns the quantum of the very thread that must
    // hand it the lock, so even spin-policy waiters register as sleepable
    // (grants will signal them) and the waiting engine may park them after a
    // yield streak. The flag is latched at registration: a waiter that
    // registered non-sleepable never parks, even if the domain becomes
    // oversubscribed mid-wait, because its grant would not wake it.
    WaiterRecord<P> rec(domain_, ctx.self(), ctx.priority(),
                        grant_flag_placement(ctx), /*shared=*/false,
                        policy_may_sleep(attrs, opts_.advisory) ||
                            P::oversubscribed(ctx));
    rec.enqueue_time = t0;
    // A record that may be withdrawn off-queue must never be granted (or
    // pre-selected) by a fast release racing the withdrawal: conditional
    // waiters break the quiescence epoch for their entire wait. Armed
    // BEFORE the arrival push, so any fast release that could select this
    // record either sees the breaker and stands down, or is already in
    // flight and is waited out by the timeout resolution below.
    BreakerToken breaker;
    if (deadline != kForever) breaker.arm(ctx, *this);
    // Push: mark the link in flight, swing the head, then publish the old
    // head as our link. A drain observing kArrivalLinkPending spins the
    // two-instruction gap.
    rec.arrival_next.store(kArrivalLinkPending, std::memory_order_relaxed);
    const std::uint64_t prev = P::exchange(
        ctx, arrivals_,
        static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(&rec)));
    // Registration order is fixed by the exchange: report it to the checker
    // in the same atomic step, before the link-pending window opens.
    note(ctx, LockEvent::kRegistered, ctx.self());
    chk_point<P>(ctx, "arr.link");
    rec.arrival_next.store(static_cast<std::uintptr_t>(prev),
                           std::memory_order_release);
    waiter_count_.fetch_add(1, std::memory_order_relaxed);

    // Full-mode mark + lost-release guard. The contended-bit fetch_or does
    // two jobs. (a) It disables the owner's single-CAS fast unlock while
    // our record sits on the arrival stack or a scheduler queue - a fast
    // unlock neither drains arrivals nor runs the release module, so
    // without the mark a fast unlock/lock pair could strand us. Ordering
    // matters: mark AFTER push, or a racing guarded free-publish (which
    // stores 0) could erase a mark made before our record was visible.
    // (b) It doubles as the lost-release Dekker re-check: a releaser that
    // drained before our push may have published the lock free and left,
    // but our push was an RMW on the arrivals word and the releaser
    // re-checks that word with an RMW after publishing free, so at least
    // one side observes the other - if we see the free state, we close the
    // gate and run the release module ourselves.
    chk_point<P>(ctx, "arr.mark");
    if (claimed(P::fetch_or(ctx, state_, kStateContended)) &&
        claimed(P::fetch_or(ctx, state_, kStateHeld))) {
      meta_lock(ctx);
      grant_or_free(ctx, kInvalidThread);  // drains arrivals, may grant us
    }

    const WaitResult r = wait_queued(ctx, rec, attrs, deadline);
    if (r == WaitResult::kGranted) {
      waiter_count_.fetch_sub(1, std::memory_order_relaxed);
      on_granted(ctx, /*shared=*/false, t0);
      return true;
    }
    // Timeout. The record may still be chained on the arrival stack (its
    // memory is this frame): wait out any fast release that started before
    // our breaker was armed (it may have drained, granted, or cached the
    // record), then drain under meta so the record is registered, then
    // resolve the grant race and withdraw. The fast path never sets the
    // host-side flag, so the waiter-local grant flag is re-checked too.
    meta_lock(ctx);
    wait_fast_releases(ctx);
    drain_arrivals(ctx);
    if (rec.granted_flag_host || P::load(ctx, rec.granted) != 0) {
      meta_unlock(ctx);
      waiter_count_.fetch_sub(1, std::memory_order_relaxed);
      on_granted(ctx, /*shared=*/false, t0);
      return true;
    }
    chk_point<P>(ctx, "to.cache");
    if (next_grant_.load(std::memory_order_relaxed) == &rec) {
      // A pre-breaker fast release pre-selected us as the next grantee;
      // the record is on no queue, just empty the cache.
      next_grant_.store(nullptr, std::memory_order_relaxed);
    } else {
      withdraw(ctx, rec);
    }
    note(ctx, LockEvent::kTimeoutReturn, ctx.self());
    meta_unlock(ctx);
    waiter_count_.fetch_sub(1, std::memory_order_relaxed);
    monitor_.on_timeout();
    return false;
  }

  /// Distributed (SchedulerKind::kQueue) contended arrival, kRealConcurrency
  /// only: the MCS enqueue. The record tail-swaps into the lock-resident
  /// queue cell and links itself behind its predecessor's inline node; no
  /// drain into a module queue ever happens. No shared-word spinning
  /// follows either - wait_queued polls the record-local grant flag under
  /// the configured waiting component Phi, so the waiting is "distributed"
  /// in the paper's Fig. 9 sense whatever Phi is.
  bool acquire_queue_lockfree(Ctx& ctx, Nanos timeout_override, Nanos t0,
                              Nanos arrival) {
    LockAttributes attrs = effective_attrs_for(ctx.self());
    if (timeout_override != 0) attrs.timeout_ns = timeout_override;
    Nanos deadline = kForever;
    if (attrs.timeout_ns != 0) {
      deadline =
          (arrival != 0 ? arrival : (t0 != 0 ? t0 : P::now(ctx))) +
          attrs.timeout_ns;
    }
    // Oversubscription escalation as in acquire_scheduled_lockfree.
    WaiterRecord<P> rec(domain_, ctx.self(), ctx.priority(),
                        grant_flag_placement(ctx), /*shared=*/false,
                        policy_may_sleep(attrs, opts_.advisory) ||
                            P::oversubscribed(ctx));
    rec.enqueue_time = t0;
    // Same contract as the arrival-stack push: a record that may be
    // withdrawn off-queue must never be granted or pre-selected by a fast
    // release racing the withdrawal - armed BEFORE the record becomes
    // reachable (see acquire_scheduled_lockfree).
    BreakerToken breaker;
    if (deadline != kForever) breaker.arm(ctx, *this);
    // MCS enqueue: swap ourselves in as the tail, then publish the link -
    // through the predecessor's inline node, or through the cell's
    // first-arrival slot when the queue was empty. A consumer that sees
    // the tail but not yet the link waits out this two-store gap.
    rec.qnext.store(nullptr, std::memory_order_relaxed);
    chk_point<P>(ctx, "qa.swap");
    WaiterRecord<P>* const qprev =
        queue_cell_.tail.exchange(&rec, std::memory_order_seq_cst);
    note(ctx, LockEvent::kRegistered, ctx.self());
    if (qprev != nullptr) {
      chk_point<P>(ctx, "qa.link");
      qprev->qnext.store(&rec, std::memory_order_release);
    } else {
      chk_point<P>(ctx, "qa.first");
      queue_cell_.first.store(&rec, std::memory_order_release);
    }
    queue_cell_.count.fetch_add(1, std::memory_order_relaxed);
    waiter_count_.fetch_add(1, std::memory_order_relaxed);

    // Full-mode mark + lost-release guard, exactly as the stack push: the
    // contended bit disables the owner's single-CAS fast unlock while our
    // node is linked (demoting a fissile lock out of fast mode), and the
    // fetch_or doubles as the lost-release Dekker re-check - the guarded
    // free-publish re-examines the cell's tail alongside the arrival
    // stack, behind a full-fence RMW, so at least one side observes the
    // other.
    chk_point<P>(ctx, "arr.mark");
    if (claimed(P::fetch_or(ctx, state_, kStateContended)) &&
        claimed(P::fetch_or(ctx, state_, kStateHeld))) {
      meta_lock(ctx);
      grant_or_free(ctx, kInvalidThread);  // serves the cell, may grant us
    }

    const WaitResult r = wait_queued(ctx, rec, attrs, deadline);
    if (r == WaitResult::kGranted) {
      waiter_count_.fetch_sub(1, std::memory_order_relaxed);
      on_granted(ctx, /*shared=*/false, t0);
      return true;
    }
    // Timeout: MCS-with-timeout node self-removal. Wait out any fast
    // release that began before our breaker armed (it may have popped,
    // granted, or cached this record), then resolve the grant race and
    // unlink the node from wherever it lives now - the cell, a module a
    // reconfiguration migrated it to, or the orphan queue.
    meta_lock(ctx);
    wait_fast_releases(ctx);
    if (rec.granted_flag_host || P::load(ctx, rec.granted) != 0) {
      meta_unlock(ctx);
      waiter_count_.fetch_sub(1, std::memory_order_relaxed);
      on_granted(ctx, /*shared=*/false, t0);
      return true;
    }
    chk_point<P>(ctx, "to.cache");
    if (next_grant_.load(std::memory_order_relaxed) == &rec) {
      next_grant_.store(nullptr, std::memory_order_relaxed);
    } else {
      withdraw(ctx, rec);
    }
    note(ctx, LockEvent::kTimeoutReturn, ctx.self());
    meta_unlock(ctx);
    waiter_count_.fetch_sub(1, std::memory_order_relaxed);
    monitor_.on_timeout();
    return false;
  }

  /// Centralized (SchedulerKind::kNone) contended arrival, kRealConcurrency
  /// only: no registration structure to protect, so no meta at all on the
  /// way in - one barging retry, then the TTAS waiting engine.
  bool acquire_centralized_lockfree(Ctx& ctx, Nanos timeout_override, Nanos t0,
                                    Nanos arrival) {
    LockAttributes attrs = effective_attrs_for(ctx.self());
    if (timeout_override != 0) attrs.timeout_ns = timeout_override;
    Nanos deadline = kForever;
    if (attrs.timeout_ns != 0) {
      deadline =
          (arrival != 0 ? arrival : (t0 != 0 ? t0 : P::now(ctx))) +
          attrs.timeout_ns;
    }

    if (claimed(P::fetch_or(ctx, state_, kStateHeld))) {
      on_acquired_exclusive(ctx, /*contended=*/true, t0);
      return true;
    }
    const WaitResult r = wait_centralized(ctx, attrs, deadline);
    if (r == WaitResult::kGranted) {
      on_acquired_exclusive(ctx, /*contended=*/true, t0);
      return true;
    }
    monitor_.on_timeout();
    return false;
  }

  /// Meta held. Moves every record on the lock-free arrival stack into the
  /// module new arrivals register under (pending during a configuration
  /// delay, else current), preserving arrival order; with no module
  /// (reconfigured to kNone after the push) records park on the orphan
  /// queue, which the release module serves FIFO before consulting any
  /// scheduler.
  void drain_arrivals(Ctx& ctx) {
    std::uintptr_t head =
        static_cast<std::uintptr_t>(P::exchange(ctx, arrivals_, 0));
    if (head == 0) return;
    // The stack is LIFO; reverse in place (reusing arrival_next) so
    // registration happens in arrival order.
    WaiterRecord<P>* reversed = nullptr;
    auto* rec = reinterpret_cast<WaiterRecord<P>*>(head);
    while (rec != nullptr) {
      std::uintptr_t next =
          rec->arrival_next.load(std::memory_order_acquire);
      std::uint32_t spins = 0;
      while (next == kArrivalLinkPending) {
        // Producer is between its exchange and its link store; on an
        // oversubscribed processor it may even be preempted there.
        if (++spins > kSpinsBeforeYield) P::yield(ctx); else P::pause(ctx);
        next = rec->arrival_next.load(std::memory_order_acquire);
      }
      rec->arrival_next.store(reinterpret_cast<std::uintptr_t>(reversed),
                              std::memory_order_relaxed);
      reversed = rec;
      rec = reinterpret_cast<WaiterRecord<P>*>(next);
    }
    Scheduler<P>* target = has_pending_.load(std::memory_order_relaxed)
                               ? pending_scheduler_.get()
                               : scheduler_.get();
    for (WaiterRecord<P>* w = reversed; w != nullptr;) {
      auto* next = reinterpret_cast<WaiterRecord<P>*>(
          w->arrival_next.load(std::memory_order_relaxed));
      w->arrival_next.store(0, std::memory_order_relaxed);
      if (target != nullptr) {
        w->registered_with = target;
        target->enqueue(*w);
      } else {
        w->registered_with = nullptr;
        orphans_.push_back(*w);
      }
      w = next;
    }
  }

  // ------------------- distributed queue (kQueue) consumer side ----------
  // kRealConcurrency only. Producers are acquire_queue_lockfree arrivals
  // (lock-free tail-swap) plus meta-holders enqueuing through the façade
  // (drains, migrations) - the latter run on the consumer's own thread and
  // open no windows. The consumer role itself is exclusive: it belongs to
  // the state-word owner (fast releases, grant_or_free behind a claim) or
  // to meta-holders with no fast release in flight (configuration under a
  // quiesced epoch, timeout resolution after wait_fast_releases), and those
  // two regimes exclude each other exactly as module ops always have.
  // Unlike the façade's non-waiting operations, these wait out producers'
  // two-store publication windows with gated spins: the producer's very
  // next platform access after linking (the arr.mark fetch_or) re-enables
  // a gated spinner under the checker, so the waits are finite there too.

  /// Adopts the current generation's published first arrival into the
  /// consumer cursor. Caller observed tail != nullptr with head == nullptr,
  /// so a producer is committed to publishing the slot.
  void queue_adopt_first(Ctx& ctx) {
    chk_point<P>(ctx, "qc.first");
    WaiterRecord<P>* f;
    std::uint32_t streak = 0;
    while ((f = queue_cell_.first.load(std::memory_order_acquire)) ==
           nullptr) {
      spin_step(ctx, streak);
    }
    queue_cell_.head = f;
    queue_cell_.first.store(nullptr, std::memory_order_relaxed);
  }

  /// Pops the queue head; returns nullptr only when the cell is empty.
  [[nodiscard]] WaiterRecord<P>* queue_pop(Ctx& ctx) {
    WaitQueueCell<P>& c = queue_cell_;
    if (c.head == nullptr) {
      if (c.tail.load(std::memory_order_seq_cst) == nullptr) return nullptr;
      queue_adopt_first(ctx);
    }
    WaiterRecord<P>* const h = c.head;
    WaiterRecord<P>* nxt = h->qnext.load(std::memory_order_acquire);
    if (nxt == nullptr) {
      // No visible successor: h may be the last node. Swing the tail back
      // to empty; losing the CAS means a producer swapped in behind h, so
      // adopt its link once it lands.
      WaiterRecord<P>* expected = h;
      if (c.tail.compare_exchange_strong(expected, nullptr,
                                         std::memory_order_seq_cst)) {
        c.head = nullptr;
        c.count.fetch_sub(1, std::memory_order_relaxed);
        return h;
      }
      chk_point<P>(ctx, "qc.chase");
      std::uint32_t streak = 0;
      while ((nxt = h->qnext.load(std::memory_order_acquire)) == nullptr) {
        spin_step(ctx, streak);
      }
    }
    c.head = nxt;
    h->qnext.store(nullptr, std::memory_order_relaxed);
    c.count.fetch_sub(1, std::memory_order_relaxed);
    return h;
  }

  /// Unlinks `rec` from the cell wherever it sits - MCS-with-timeout node
  /// self-removal, run by the timed-out thread itself under meta. Returns
  /// false when the record is not in the cell.
  [[nodiscard]] bool queue_remove(Ctx& ctx, WaiterRecord<P>& rec) {
    WaitQueueCell<P>& c = queue_cell_;
    if (c.head == nullptr) {
      if (c.tail.load(std::memory_order_seq_cst) == nullptr) return false;
      queue_adopt_first(ctx);
    }
    WaiterRecord<P>* prev = nullptr;
    WaiterRecord<P>* cur = c.head;
    while (cur != &rec) {
      WaiterRecord<P>* nxt = cur->qnext.load(std::memory_order_acquire);
      if (nxt == nullptr) {
        if (c.tail.load(std::memory_order_seq_cst) == cur) return false;
        // A successor (possibly rec) is mid-link behind cur: wait it out.
        chk_point<P>(ctx, "qc.chase");
        std::uint32_t streak = 0;
        while ((nxt = cur->qnext.load(std::memory_order_acquire)) ==
               nullptr) {
          spin_step(ctx, streak);
        }
      }
      prev = cur;
      cur = nxt;
    }
    WaiterRecord<P>* nxt = rec.qnext.load(std::memory_order_acquire);
    if (nxt == nullptr) {
      // No visible successor: rec may be the tail. Pre-clear the
      // predecessor's link BEFORE swinging the tail to it - the instant
      // the CAS lands, a new producer may store through prev->qnext, and
      // a late clear would erase that link.
      if (prev != nullptr) {
        prev->qnext.store(nullptr, std::memory_order_release);
      }
      WaiterRecord<P>* expected = &rec;
      if (c.tail.compare_exchange_strong(expected, prev,
                                         std::memory_order_seq_cst)) {
        if (prev == nullptr) c.head = nullptr;
        rec.qnext.store(nullptr, std::memory_order_relaxed);
        c.count.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
      // Lost to a producer that swapped in behind rec: adopt its link.
      chk_point<P>(ctx, "qc.chase");
      std::uint32_t streak = 0;
      while ((nxt = rec.qnext.load(std::memory_order_acquire)) == nullptr) {
        spin_step(ctx, streak);
      }
    }
    if (prev != nullptr) {
      prev->qnext.store(nxt, std::memory_order_release);
    } else {
      c.head = nxt;
    }
    rec.qnext.store(nullptr, std::memory_order_relaxed);
    c.count.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  /// Consumer-side head re-insertion (reclaim of a fast-release
  /// pre-selection): the record was the oldest candidate and goes back in
  /// front.
  void queue_push_front(Ctx& ctx, WaiterRecord<P>& rec) {
    WaitQueueCell<P>& c = queue_cell_;
    rec.qnext.store(nullptr, std::memory_order_relaxed);
    if (c.head == nullptr) {
      WaiterRecord<P>* expected = nullptr;
      if (c.tail.load(std::memory_order_seq_cst) == nullptr &&
          c.tail.compare_exchange_strong(expected, &rec,
                                         std::memory_order_seq_cst)) {
        // Empty cell: rec is first and last; producers link behind it.
        c.head = &rec;
        c.count.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      // A producer won the empty slot. rec is the reclaimed oldest waiter
      // and still goes first: adopt the producer's publication as the
      // queue behind rec.
      queue_adopt_first(ctx);
    }
    rec.qnext.store(c.head, std::memory_order_release);
    c.head = &rec;
    c.count.fetch_add(1, std::memory_order_relaxed);
  }

  /// Meta held, kRealConcurrency only. A thread that read kQueue as its
  /// arrival target races configure_scheduler: its tail-swap can land
  /// after the configuration moved on, leaving records in the cell with no
  /// distributed-queue module current or pending to serve them. Mirror of
  /// the orphan-absorption rule for the arrival stack: migrate such strays
  /// into the module new arrivals register under (or the orphan queue).
  /// Must be - and is - a no-op while either module is a distributed
  /// queue; popping then would steal linked waiters out of FIFO order.
  void drain_queue_strays(Ctx& ctx) {
    if constexpr (kRealConcurrency<P>) {
      if (queue_cell_.empty()) return;
      if (scheduler_kind_.load(std::memory_order_relaxed) ==
          SchedulerKind::kQueue) {
        return;
      }
      if (has_pending_.load(std::memory_order_relaxed) &&
          pending_kind_.load(std::memory_order_relaxed) ==
              SchedulerKind::kQueue) {
        return;
      }
      Scheduler<P>* target = has_pending_.load(std::memory_order_relaxed)
                                 ? pending_scheduler_.get()
                                 : scheduler_.get();
      while (WaiterRecord<P>* w = queue_pop(ctx)) {
        if (target != nullptr) {
          w->registered_with = target;
          target->enqueue(*w);
        } else {
          w->registered_with = nullptr;
          orphans_.push_back(*w);
        }
      }
    } else {
      (void)ctx;
    }
  }

  /// Meta held, fast releases waited out. Removes a timed-out record from
  /// wherever it is registered: the scheduler module that actually enqueued
  /// it (which may no longer be the current one after a reconfiguration),
  /// the distributed queue cell, or the orphan queue.
  void withdraw(Ctx& ctx, WaiterRecord<P>& rec) {
    if (rec.registered_with != nullptr) {
      if constexpr (kRealConcurrency<P>) {
        if (rec.registered_with->kind() == SchedulerKind::kQueue) {
          // The record is linked in the lock-resident cell. The façade's
          // non-waiting remove cannot wait out an in-flight producer link;
          // the lock-side remover can, and must find the record.
          rec.registered_with = nullptr;
          const bool unlinked = queue_remove(ctx, rec);
          assert(unlinked);
          (void)unlinked;
          return;
        }
      }
      rec.registered_with->remove(rec);
      rec.registered_with = nullptr;
      return;
    }
    if constexpr (kRealConcurrency<P>) {
      // kQueue self-enqueued records carry no module registration; they
      // live in the cell. Not found there means the orphan queue.
      if (queue_remove(ctx, rec)) return;
    }
    orphans_.remove(rec);
    (void)ctx;
  }

  [[nodiscard]] Placement grant_flag_placement(Ctx& ctx) const {
    return opts_.wait_placement == WaitPlacement::kWaiterLocal
               ? Placement::on(P::home_node(ctx))
               : opts_.placement;
  }

  // --------------------------------------------- the waiting engine ------

  /// One polite failed-probe step. On real-concurrency platforms a long
  /// streak escalates from PAUSE to yielding the processor: with more
  /// waiters than processors, burning the quantum on PAUSE delays the very
  /// thread that must release or hand off the lock (the all-spin FCFS cells
  /// of bench/native_throughput.cpp collapse by ~100x without this). The
  /// simulator's pause is a costed event and keeps the seed behaviour.
  static void spin_step(Ctx& ctx, std::uint32_t& streak) {
    if constexpr (kRealConcurrency<P>) {
      // With more live threads than processors, a PAUSE streak mostly burns
      // the quantum the grant-holder needs: give way much sooner.
      const std::uint32_t limit = P::oversubscribed(ctx)
                                      ? kSpinsBeforeYieldOversubscribed
                                      : kSpinsBeforeYield;
      if (++streak >= limit) {
        P::yield(ctx);
        return;
      }
    }
    P::pause(ctx);
  }

  /// Waits for this waiter's grant flag according to the waiting policy:
  /// rounds of a spin phase followed by a sleep phase ("a thread spins and
  /// sleeps in turn until it acquires the lock"). The owner's advice, when
  /// advisory mode is on, overrides the configured policy round by round.
  WaitResult wait_queued(Ctx& ctx, WaiterRecord<P>& rec,
                         const LockAttributes& attrs, Nanos deadline) {
    // Pure backoff spinning grows the delay geometrically (Anderson);
    // mixed spin/sleep policies use a constant probe gap so "spin N times"
    // spans a predictable window before the sleep phase.
    BackoffSchedule backoff(BackoffSchedule::Params{
        attrs.delay_ns != 0 ? attrs.delay_ns : 1,
        attrs.sleep_ns > 0 ? attrs.delay_ns : attrs.delay_ns * 16, 2});
    std::uint32_t streak = 0;
    for (;;) {
      std::uint32_t probes = attrs.spin_count;
      Nanos sleep_ns = attrs.sleep_ns;
      if (opts_.advisory) apply_advice(ctx, probes, sleep_ns);

      // Spin phase.
      for (std::uint32_t i = 0; i < probes;) {
        if (P::load(ctx, rec.granted) != 0) return WaitResult::kGranted;
        monitor_.on_spin_probe();
        if (deadline != kForever && P::now(ctx) >= deadline) {
          return WaitResult::kTimedOut;
        }
        if (attrs.delay_ns != 0) {
          P::delay(ctx, backoff.next());
        } else {
          bool parked = false;
          if constexpr (kRealConcurrency<P>) {
            // Oversubscription escalation: once the streak shows the
            // grant-holder is not being scheduled, stop probing - every
            // yield a doomed spinner takes steals a quantum from the
            // thread that must produce the grant. A policy with a sleep
            // phase of its own breaks to it early (without this, a
            // combined policy burns its whole spin budget as yields every
            // round and lands far below both pure spin and pure blocking -
            // the fcfs/combined_100 collapse in BENCH_native_throughput);
            // a policy without one parks right here. The streak is not
            // reset on wakeup, so the budget does not re-arm: a still-
            // oversubscribed waiter goes straight back to sleeping. Only
            // records registered sleepable escalate (their grant signals
            // the parker; the token protocol absorbs a grant landing
            // between the check and the park).
            if (rec.may_sleep && streak >= kStreakBeforeParkOversubscribed &&
                P::oversubscribed(ctx)) {
              if (sleep_ns != 0) {
                // One spin step before the early sleep: a timed park alone
                // carries no progress guarantee in the relock-check model
                // (its timeout re-arms without a gated point, so a maximal
                // adversary can starve the releaser forever), and the
                // gated pause/yield inside spin_step is what hands the
                // schedule back. On hardware it costs one PAUSE.
                spin_step(ctx, streak);
                break;  // to this policy's own sleep phase
              }
              parked = true;
              monitor_.on_block();
              if (deadline == kForever) {
                note_trace(ctx, LockEvent::kPark, ctx.self());
                P::block(ctx);
              } else {
                const Nanos now = P::now(ctx);
                if (now >= deadline) return WaitResult::kTimedOut;
                note_trace(ctx, LockEvent::kPark, ctx.self());
                (void)P::block_for(ctx, deadline - now);
              }
              note_trace(ctx, LockEvent::kUnpark, ctx.self());
            }
          }
          if (!parked) spin_step(ctx, streak);
        }
        if (probes != kInfiniteSpins) ++i;
      }

      // Sleep phase.
      if (sleep_ns == 0) {
        if (probes == 0) spin_step(ctx, streak);  // degenerate (0,_,0,_)
        continue;
      }
      if (P::load(ctx, rec.granted) != 0) return WaitResult::kGranted;
      monitor_.on_block();
      if (sleep_ns == kForever && deadline == kForever) {
        note_trace(ctx, LockEvent::kPark, ctx.self());
        P::block(ctx);
      } else {
        Nanos bound = sleep_ns;
        if (deadline != kForever) {
          const Nanos now = P::now(ctx);
          if (now >= deadline) return WaitResult::kTimedOut;
          bound = std::min(bound, deadline - now);
        }
        note_trace(ctx, LockEvent::kPark, ctx.self());
        (void)P::block_for(ctx, bound);
      }
      note_trace(ctx, LockEvent::kUnpark, ctx.self());
      if (P::load(ctx, rec.granted) != 0) return WaitResult::kGranted;
      if (deadline != kForever && P::now(ctx) >= deadline) {
        return WaitResult::kTimedOut;
      }
    }
  }

  /// Centralized waiting: TTAS probes of the state word; sleepers register
  /// on the sleeper list and are woken en masse by release.
  WaitResult wait_centralized(Ctx& ctx, const LockAttributes& attrs,
                              Nanos deadline) {
    // Pure backoff spinning grows the delay geometrically (Anderson);
    // mixed spin/sleep policies use a constant probe gap so "spin N times"
    // spans a predictable window before the sleep phase.
    BackoffSchedule backoff(BackoffSchedule::Params{
        attrs.delay_ns != 0 ? attrs.delay_ns : 1,
        attrs.sleep_ns > 0 ? attrs.delay_ns : attrs.delay_ns * 16, 2});
    WaiterRecord<P> rec(domain_, ctx.self(), ctx.priority(),
                        grant_flag_placement(ctx), /*shared=*/false,
                        policy_may_sleep(attrs, opts_.advisory));
    // A barging waiter is a waiter even while it spins: count it for the
    // whole wait so state() can report kIdle (free with waiting threads,
    // Figure 4). The seed counted only the sleep phase, so an all-spin
    // centralized lock under-reported and state() returned kUnlocked.
    struct CountGuard {
      std::atomic<std::uint32_t>& count;
      explicit CountGuard(std::atomic<std::uint32_t>& c) : count(c) {
        count.fetch_add(1, std::memory_order_relaxed);
      }
      ~CountGuard() { count.fetch_sub(1, std::memory_order_relaxed); }
    } count_guard{waiter_count_};
    std::uint32_t streak = 0;
    for (;;) {
      std::uint32_t probes = attrs.spin_count;
      Nanos sleep_ns = attrs.sleep_ns;
      if (opts_.advisory) apply_advice(ctx, probes, sleep_ns);

      // Spin phase: test-and-test-and-set probes.
      for (std::uint32_t i = 0; i < probes;) {
        if (claimed(P::load(ctx, state_)) &&
            claimed(P::fetch_or(ctx, state_, kStateHeld))) {
          return WaitResult::kGranted;
        }
        monitor_.on_spin_probe();
        if (deadline != kForever && P::now(ctx) >= deadline) {
          return WaitResult::kTimedOut;
        }
        if (attrs.delay_ns != 0) {
          P::delay(ctx, backoff.next());
        } else {
          spin_step(ctx, streak);
        }
        if (probes != kInfiniteSpins) ++i;
      }

      if (sleep_ns == 0) {
        if (probes == 0) spin_step(ctx, streak);
        continue;
      }

      // Sleep phase: register on the sleeper list; release wakes everyone.
      // The claim carries the contended bit (kClaimMark): if the word is
      // held, the mark disables the holder's single-CAS fast unlock BEFORE
      // we register as a sleeper - a fast unlock wakes nobody. (A
      // successful claim sets the bit spuriously on ourselves; our own
      // release then takes the guarded path once and free-publish clears
      // it.)
      meta_lock(ctx);
      if (claimed(P::fetch_or(ctx, state_, kClaimMark))) {
        holders_ = 1;  // freed while we took meta
        meta_unlock(ctx);
        return WaitResult::kGranted;
      }
      sleepers_.push_back(rec);
      meta_unlock(ctx);
      monitor_.on_block();
      if (sleep_ns == kForever && deadline == kForever) {
        note_trace(ctx, LockEvent::kPark, ctx.self());
        P::block(ctx);
        note_trace(ctx, LockEvent::kUnpark, ctx.self());
      } else {
        Nanos bound = sleep_ns;
        bool expired = false;
        if (deadline != kForever) {
          const Nanos now = P::now(ctx);
          if (now >= deadline) {
            expired = true;
          } else {
            bound = std::min(bound, deadline - now);
          }
        }
        if (!expired) {
          note_trace(ctx, LockEvent::kPark, ctx.self());
          (void)P::block_for(ctx, bound);
          note_trace(ctx, LockEvent::kUnpark, ctx.self());
        }
      }
      meta_lock(ctx);
      sleepers_.remove(rec);  // no-op if the releaser already popped us
      meta_unlock(ctx);
      if (deadline != kForever && P::now(ctx) >= deadline) {
        return WaitResult::kTimedOut;
      }
    }
  }

  /// Overrides one waiting round's plan with the owner's advice. Sleep
  /// advice carrying a tenure deadline translates into a single bounded
  /// sleep ending kAdviceSpinMargin before the expected release, followed
  /// by spinning (the paper's speculative lock).
  void apply_advice(Ctx& ctx, std::uint32_t& probes, Nanos& sleep_ns) {
    const std::uint64_t word = P::load(ctx, advice_);
    switch (static_cast<Advice>(word & 3)) {
      case Advice::kSpin:
        probes = probes != 0 ? probes : kAdviceChunk;
        sleep_ns = 0;
        break;
      case Advice::kSleep: {
        probes = 0;
        const Nanos wake_at = word >> 2;
        if (wake_at == 0) {
          sleep_ns = opts_.advice_sleep_slice;  // no deadline: sleep a slice
          break;
        }
        const Nanos now = P::now(ctx);
        if (wake_at > now + kAdviceSpinMargin) {
          sleep_ns = wake_at - now - kAdviceSpinMargin;
        } else {
          probes = kAdviceChunk;  // inside the margin: spin for the grant
          sleep_ns = 0;
        }
        break;
      }
      case Advice::kNone:
        break;
    }
    if (probes == kInfiniteSpins) probes = kAdviceChunk;
  }

  // -------------------------------- configuration-quiescence epoch -------
  // kRealConcurrency only (the simulator has no fast release; all of this
  // is discarded or a no-op there). Protocol: a fast releaser increments
  // its in-flight count then checks the breaker count; a configuration
  // operation increments the breaker count then waits for in-flight
  // releases to drain. Both sides use sequentially consistent RMWs/loads
  // (Dekker), so at least one observes the other: either the releaser
  // stands down onto the guarded path, or the breaker waits it out and
  // then sees all its module mutations.

  /// Spins until every in-flight fast release has retired. Meaningful only
  /// while the breaker count is nonzero (else new fast releases start).
  void wait_fast_releases(Ctx& ctx) {
    if constexpr (kRealConcurrency<P>) {
      std::uint32_t streak = 0;
      for (;;) {
        chk_point<P>(ctx, "epoch.check");
        if (fast_releases_inflight_.load(std::memory_order_acquire) == 0) {
          break;
        }
        spin_step(ctx, streak);
      }
    } else {
      (void)ctx;
    }
  }

  /// RAII configuration breaker: holds the fast path off (and waits out
  /// in-flight fast releases) so the caller may mutate scheduler modules,
  /// thresholds or attribute slots under meta.
  class QuiesceGuard {
   public:
    QuiesceGuard(Ctx& ctx, ConfigurableLock& lock) : ctx_(&ctx), lock_(lock) {
      if constexpr (kRealConcurrency<P>) {
        chk_point<P>(ctx, "qg.arm");
        lock_.quiesce_breakers_.fetch_add(1, std::memory_order_seq_cst);
        lock_.note(ctx, LockEvent::kBreakerArm);
        lock_.wait_fast_releases(ctx);
      } else {
        (void)ctx;
      }
    }
    ~QuiesceGuard() {
      if constexpr (kRealConcurrency<P>) {
        // Event only, no scheduling point: destructors must not throw the
        // checker's unwind exception.
        lock_.quiesce_breakers_.fetch_sub(1, std::memory_order_seq_cst);
        lock_.note(*ctx_, LockEvent::kBreakerDisarm);
      }
    }
    QuiesceGuard(const QuiesceGuard&) = delete;
    QuiesceGuard& operator=(const QuiesceGuard&) = delete;

   private:
    [[maybe_unused]] Ctx* ctx_;
    ConfigurableLock& lock_;
  };

  /// Non-waiting breaker, armed by conditional (timeout-capable) waiters
  /// for the duration of their wait: a record that may be withdrawn
  /// off-queue must not be fast-granted or pre-selected behind the meta
  /// guard's back. Unlike QuiesceGuard it does not wait out in-flight
  /// releases at arm time - the timeout resolution does, under meta.
  class BreakerToken {
   public:
    BreakerToken() = default;
    void arm(Ctx& ctx, ConfigurableLock& lock) {
      if constexpr (kRealConcurrency<P>) {
        lock_ = &lock;
        ctx_ = &ctx;
        chk_point<P>(ctx, "bt.arm");
        lock.quiesce_breakers_.fetch_add(1, std::memory_order_seq_cst);
        lock.note(ctx, LockEvent::kBreakerArm);
      } else {
        (void)ctx;
        (void)lock;
      }
    }
    ~BreakerToken() {
      if constexpr (kRealConcurrency<P>) {
        if (lock_ != nullptr) {
          // Event only, no scheduling point: destructors must not throw
          // the checker's unwind exception.
          lock_->quiesce_breakers_.fetch_sub(1, std::memory_order_seq_cst);
          lock_->note(*ctx_, LockEvent::kBreakerDisarm);
        }
      }
    }
    BreakerToken(const BreakerToken&) = delete;
    BreakerToken& operator=(const BreakerToken&) = delete;

   private:
    ConfigurableLock* lock_ = nullptr;
    [[maybe_unused]] Ctx* ctx_ = nullptr;
  };

  /// Is the cached pre-selection still the right grantee under the
  /// module's successor-selection policy (Scheduler::successor_policy)?
  /// kNone modules never reach here - the fast release stands down before
  /// consulting the cache.
  [[nodiscard]] bool next_grant_valid(const WaiterRecord<P>& cached,
                                      SuccessorPolicy policy,
                                      const Scheduler<P>& sched,
                                      ThreadId hint) const noexcept {
    switch (policy) {
      case SuccessorPolicy::kStableHead:
        return true;  // the FIFO head stays the head; arrivals go behind
      case SuccessorPolicy::kHinted:
        return hint == kInvalidThread || cached.tid == hint;
      case SuccessorPolicy::kVersioned:
        // Any queue mutation (a new arrival may outrank the cache, a
        // threshold change may disqualify it) bumps the module version.
        return sched.version() ==
               next_grant_version_.load(std::memory_order_relaxed);
      case SuccessorPolicy::kNone:
        break;
    }
    return false;
  }

  /// Pre-selects the grantee for the NEXT release while this releaser
  /// still owns the module - the MCS-style cache the next fast release
  /// publishes with a single store. Version snapshot taken after the
  /// select, so any later mutation invalidates the cache.
  void refill_next_grant(Ctx& ctx, Scheduler<P>& sched) {
    WaiterRecord<P>* nxt;
    if (sched.kind() == SchedulerKind::kQueue) {
      // Distributed queue: O(1) head pop from the cell, no GrantBatch scan.
      nxt = queue_pop(ctx);
    } else {
      grant_scratch_.clear();
      sched.select(grant_scratch_, kInvalidThread);
      nxt = grant_scratch_.empty() ? nullptr : grant_scratch_.front();
      grant_scratch_.clear();
    }
    if (nxt == nullptr) {
      next_grant_.store(nullptr, std::memory_order_relaxed);
      return;
    }
    nxt->registered_with = nullptr;
    next_grant_version_.store(sched.version(), std::memory_order_relaxed);
    next_grant_.store(nxt, std::memory_order_relaxed);
  }

  /// Returns the pre-selected successor, if any, to its queue. Caller must
  /// own the release module with no fast release in flight (a guarded
  /// release path, or a quiesced configuration operation holding meta).
  void reclaim_next_grant(Ctx& ctx) {
    if constexpr (kRealConcurrency<P>) {
      WaiterRecord<P>* cached =
          next_grant_.exchange(nullptr, std::memory_order_relaxed);
      if (cached == nullptr) return;
      if (scheduler_ != nullptr) {
        cached->registered_with = scheduler_.get();
        if (scheduler_->kind() == SchedulerKind::kQueue) {
          queue_push_front(ctx, *cached);
        } else {
          scheduler_->enqueue_front(*cached);
        }
      } else {
        cached->registered_with = nullptr;
        orphans_.push_back(*cached);
      }
    } else {
      (void)ctx;
    }
  }

  /// `began`: the Dekker gate was passed (the checker's fast-release window
  /// opened), so the matching end-of-window event must be reported.
  bool release_fast_abort(Ctx& ctx, bool began) {
    chk_point<P>(ctx, "fr.retire");
    fast_releases_inflight_.fetch_sub(1, std::memory_order_seq_cst);
    if (began) note(ctx, LockEvent::kFastReleaseEnd);
    return false;
  }

  /// The single-store contended release. Returns false (having touched
  /// nothing but the in-flight count) to route the release through the
  /// guarded path. Exclusivity argument: only the state-word owner runs a
  /// release module, and this path never publishes the word free, so fast
  /// releases are serialized by ownership handoff itself; the Dekker gate
  /// below excludes them from configuration operations.
  [[nodiscard]] bool release_fast(Ctx& ctx, ThreadId hint) {
    if (opts_.execution != Execution::kPassive || rw_capable()) return false;
    chk_point<P>(ctx, "fr.enter");
    fast_releases_inflight_.fetch_add(1, std::memory_order_seq_cst);
    chk_point<P>(ctx, "fr.gate");
    if (quiesce_breakers_.load(std::memory_order_seq_cst) != 0) {
      return release_fast_abort(ctx, /*began=*/false);
    }
    // Quiescent: configuration is locked out until our in-flight count
    // drops; we own the modules by holding the state word.
    note(ctx, LockEvent::kFastReleaseBegin);
    chk_point<P>(ctx, "fr.mod");
    const SchedulerKind kind = scheduler_kind_.load(std::memory_order_relaxed);
    Scheduler<P>* const sched_ptr = scheduler_.get();
    // kNone-policy modules abort to the guarded path: kNone kind frees the
    // word (guarded path handles sleeper wakeup), RW grants batches, custom
    // modules make no validity promises for the pre-selection cache.
    const SuccessorPolicy policy = sched_ptr == nullptr
                                       ? SuccessorPolicy::kNone
                                       : sched_ptr->successor_policy();
    if (policy == SuccessorPolicy::kNone ||
        has_pending_.load(std::memory_order_relaxed) || !orphans_.empty()) {
      return release_fast_abort(ctx, /*began=*/true);
    }
    const bool queued_kind = kind == SchedulerKind::kQueue;
    if (queued_kind) {
      // Distributed queue: the cell is the registration structure, and the
      // arrival stack is only a reconfiguration straggler channel. A
      // nonzero stack means a record was pushed against a prior
      // configuration and not yet drained - the guarded path's job.
      if (P::load(ctx, arrivals_) != 0) {
        return release_fast_abort(ctx, /*began=*/true);
      }
    } else {
      drain_arrivals(ctx);
    }
    Scheduler<P>& sched = *sched_ptr;
    chk_point<P>(ctx, "fr.cache");
    WaiterRecord<P>* succ = next_grant_.load(std::memory_order_relaxed);
    if (succ != nullptr && !next_grant_valid(*succ, policy, sched, hint)) {
      // Stale pre-selection (priority landscape or hint changed): put it
      // back at the head of its queue - it was the oldest candidate - and
      // select afresh. (Unreachable for kStableHead policies.)
      next_grant_.store(nullptr, std::memory_order_relaxed);
      succ->registered_with = &sched;
      sched.enqueue_front(*succ);
      succ = nullptr;
    }
    if (succ == nullptr) {
      chk_point<P>(ctx, "fr.select");
      if (queued_kind) {
        succ = queue_pop(ctx);
        if (succ == nullptr) {
          // Queue gone empty: publishing the word free is the guarded
          // path's job.
          return release_fast_abort(ctx, /*began=*/true);
        }
      } else {
        grant_scratch_.clear();
        sched.select(grant_scratch_, hint);
        if (grant_scratch_.empty()) {
          // Nobody eligible: publishing the word free (and waking barging
          // sleepers) is the guarded path's job.
          grant_scratch_.clear();
          return release_fast_abort(ctx, /*began=*/true);
        }
        succ = grant_scratch_.front();
        grant_scratch_.clear();
      }
      succ->registered_with = nullptr;
    } else {
      next_grant_.store(nullptr, std::memory_order_relaxed);
    }
    // Pre-select the next grantee while we still own the module.
    chk_point<P>(ctx, "fr.refill");
    refill_next_grant(ctx, sched);
    // Every module mutation is complete. Publish ownership: mirrors first,
    // the grant-flag store last - the one store the new owner's critical
    // section is ordered after. The epilogue below the store touches only
    // the in-flight count (hence a counter, not a flag: it may overlap the
    // new owner's own fast release) and, after retiring it, the coroutine
    // grant-hook delivery.
    chk_point<P>(ctx, "fr.publish");
    holders_ = 1;
    const ThreadId tid = succ->tid;
    const bool may_sleep = succ->may_sleep;
    const typename WaiterRecord<P>::GrantHook hook = succ->grant_hook;
    void* const hook_arg = succ->grant_hook_arg;
    P::store(ctx, owner_, static_cast<std::uint64_t>(tid) + 1);
    monitor_.on_handoff();
    P::store(ctx, succ->granted, 1);
    note(ctx, LockEvent::kGranted, tid);
    if (may_sleep) {
      monitor_.on_wakeup();
      P::unblock(ctx, tid);
    }
    chk_point<P>(ctx, "fr.retire");
    fast_releases_inflight_.fetch_sub(1, std::memory_order_seq_cst);
    note(ctx, LockEvent::kFastReleaseEnd);
    // Coroutine waiter: deliver the grant to its executor, AFTER the
    // in-flight count retires. The granted flag is published above, so a
    // timeout resolution that drains this release (wait_fast_releases with
    // meta held) re-checks the flag, observes the grant, and stands down to
    // consume the - possibly still in-flight - delivery. Firing the hook
    // inside the in-flight window would deadlock an inline executor: the
    // resumed frame's unlock (forced onto the guarded path by the contended
    // bit) blocks on meta while the meta holder spins on the in-flight
    // count. The hook is the last touch of the record - the resumed frame
    // owns it.
    if (hook != nullptr) hook(hook_arg, ctx);
    // Oversubscribed processor: give the grantee a chance to run now
    // rather than after our quantum expires re-contending the lock.
    if (P::oversubscribed(ctx)) P::yield(ctx);
    return true;
  }

  // -------------------------------------------------------- release ------

  void release(Ctx& ctx, ThreadId hint, bool shared) {
    meta_lock(ctx);
    if (shared) {
      if (holders_ == 0) {
        // Release meta before unwinding so the misuse cannot wedge the lock.
        meta_unlock(ctx);
        misuse("unlock_shared without a matching shared hold");
      }
      --holders_;
      if (holders_ != 0) {
        meta_unlock(ctx);
        return;
      }
    } else {
      holders_ = 0;
      writer_held_ = false;
      P::store(ctx, owner_, 0);
    }
    grant_or_free(ctx, hint);  // releases meta
  }

  /// Runs the release module: drains lock-free arrivals, installs a pending
  /// scheduler if the old one has drained, selects the next grant batch,
  /// and either hands the lock off or publishes it as free. Expects meta
  /// held; releases it.
  ///
  /// Allocation-free in steady state (asserted by release_alloc_test): the
  /// wake list lives in a fixed stack array and the grant batch reuses the
  /// lock's scratch instance. The wake list must be local - once meta is
  /// released another thread may release again concurrently - so overflow
  /// wakes (giant reader batches) are issued while meta is still held:
  /// correct, just a longer guard hold on a path that is rare by
  /// construction.
  void grant_or_free(Ctx& ctx, ThreadId hint) {
    ThreadId wake_buf[kWakeInline];
    std::size_t wake_count = 0;
    // Coroutine waiters granted in this release: their delivery hooks must
    // run after meta_unlock (a hook may resume a frame that re-enters the
    // lock), so they are chained here through the granter-owned hook_next
    // link. Safe to chain before the granted store: a hooked record's
    // lifetime is owned by the suspended frame, which cannot resume - and
    // so cannot free the record - until its hook fires below.
    WaiterRecord<P>* hooked_head = nullptr;
    WaiterRecord<P>** hooked_tail = &hooked_head;
    const auto chain_hook = [&](WaiterRecord<P>* w) {
      if (w->grant_hook == nullptr) return;
      w->hook_next = nullptr;
      *hooked_tail = w;
      hooked_tail = &w->hook_next;
    };
    const auto queue_wake = [&](ThreadId tid) {
      monitor_.on_wakeup();
      if (wake_count < kWakeInline) {
        wake_buf[wake_count++] = tid;
      } else {
        P::unblock(ctx, tid);
      }
    };

    // The guarded path must see every waiter: fold a fast-release
    // pre-selection back into its queue before selecting.
    chk_point<P>(ctx, "gf.reclaim");
    reclaim_next_grant(ctx);
    for (;;) {
      if constexpr (kRealConcurrency<P>) {
        drain_arrivals(ctx);
        drain_queue_strays(ctx);
      }
      if (scheduler_ != nullptr && scheduler_->empty() &&
          has_pending_.load(std::memory_order_relaxed)) {
        install_pending(ctx);
      }
      grant_scratch_.clear();
      // Orphans first, FIFO: waiters drained while no scheduler module was
      // current (reconfigured to kNone mid-arrival) precede any module's
      // choice so they cannot be stranded behind it.
      if (WaiterRecord<P>* orphan = orphans_.front()) {
        orphans_.remove(*orphan);
        grant_scratch_.push_back(orphan);
      } else if (scheduler_ != nullptr) {
        if constexpr (kRealConcurrency<P>) {
          if (scheduler_->kind() == SchedulerKind::kQueue) {
            // Paced pop: waits out producer link windows, so a linked
            // waiter is never skipped (the façade's non-waiting select
            // would report nobody and this loop would publish free).
            if (WaiterRecord<P>* w = queue_pop(ctx)) {
              grant_scratch_.push_back(w);
            }
          } else {
            scheduler_->select(grant_scratch_, hint);
          }
        } else {
          scheduler_->select(grant_scratch_, hint);
        }
      }

      if (grant_scratch_.empty()) {
        // Nobody eligible: publish free and wake sleeping barging waiters.
        P::store(ctx, state_, 0);
        note(ctx, LockEvent::kReleaseFree);
        sleepers_.for_each([&](WaiterRecord<P>& w) {
          sleepers_.remove(w);
          queue_wake(w.tid);
          return true;
        });
        if constexpr (kRealConcurrency<P>) {
          // Mirror of the arrival path's lost-release guard: re-examine the
          // arrival stack with an RMW after publishing free. A waiter whose
          // push raced our drain either sees the free state itself or is
          // seen here; if seen, re-close the gate and serve it. The re-grab
          // carries the contended bit (kClaimMark): the free-publish above
          // erased the raced waiter's mark, so if a fast-path acquirer
          // steals the word between our store and this RMW, the bit we set
          // here is what routes the thief's release through the full path
          // to drain that waiter - without it a single-CAS fast unlock
          // would strand the record on the stack. The distributed queue
          // cell is re-examined the same way; its load is ordered after
          // the free-publish by the arrivals RMW's full fence, which is
          // why it sits second in the short-circuit.
          if ((P::fetch_add(ctx, arrivals_, 0) != 0 ||
               queue_cell_.tail.load(std::memory_order_seq_cst) != nullptr) &&
              claimed(P::fetch_or(ctx, state_, kClaimMark))) {
            hint = kInvalidThread;
            continue;
          }
        }
        meta_unlock(ctx);
        break;
      }

      // Direct handoff: the state word stays held.
      const bool shared_grant = grant_scratch_.front()->shared;
      holders_ = static_cast<std::uint32_t>(grant_scratch_.size());
      writer_held_ = !shared_grant;
      assert(shared_grant || holders_ == 1);
      if (!shared_grant) {
        // Exclusive handoff: the granted store transfers the state word,
        // and the new owner may run a fast release - which uses
        // grant_scratch_ without taking meta - the instant it lands. Empty
        // the batch BEFORE publishing so the scratch is never shared.
        WaiterRecord<P>* w = grant_scratch_.front();
#ifndef RELOCK_CHECK_SEEDED_BUG_1
        grant_scratch_.clear();
#endif
        P::store(ctx, owner_, static_cast<std::uint64_t>(w->tid) + 1);
        w->registered_with = nullptr;
        w->granted_flag_host = true;
        monitor_.on_handoff();
        const ThreadId tid = w->tid;
        const bool may_sleep = w->may_sleep;
        chain_hook(w);
        P::store(ctx, w->granted, 1);
        note(ctx, LockEvent::kGranted, tid);
#ifdef RELOCK_CHECK_SEEDED_BUG_1
        // Seeded PR 2 bug (TSan-caught): the shared grant scratch is
        // cleared only after the grant flag is published, so the new owner
        // may already be inside its own fast release - using the scratch
        // without meta - when this late clear lands.
        chk_point<P>(ctx, "bug1.window");
        grant_scratch_.clear();
#endif
        // After this store the record (on the waiter's stack) may
        // disappear; only the captured tid is used below.
        if (may_sleep) queue_wake(tid);
        meta_unlock(ctx);
        break;
      }
      // Shared batch: only reader-writer locks produce these, and RW locks
      // never take the fast-release path, so nobody races the scratch.
      for (WaiterRecord<P>* w : grant_scratch_) {
        w->registered_with = nullptr;
        w->granted_flag_host = true;
        monitor_.on_handoff();
        if (w->may_sleep) queue_wake(w->tid);
        const ThreadId shared_tid = w->tid;
        chain_hook(w);
        P::store(ctx, w->granted, 1);
        note(ctx, LockEvent::kGranted, shared_tid);
        // After this store the record (on the waiter's stack) may disappear
        // once meta is released; only the captured tids are used below.
      }
      grant_scratch_.clear();  // drop dangling pointers before leaving meta
      meta_unlock(ctx);
      break;
    }
    for (std::size_t i = 0; i < wake_count; ++i) {
      P::unblock(ctx, wake_buf[i]);
    }
    // Deliver coroutine grants. Each hook is the granter's last touch of
    // its record: the resumed frame owns it and may free it immediately.
    for (WaiterRecord<P>* w = hooked_head; w != nullptr;) {
      WaiterRecord<P>* const next = w->hook_next;
      w->grant_hook(w->grant_hook_arg, ctx);
      w = next;
    }
  }

  /// Builds a scheduler module for `kind`. The distributed queue module is
  /// special: it is a façade over the lock-resident queue_cell_, because
  /// arrivals tail-swap into the cell without ever dereferencing the
  /// module pointer (which a racing reconfiguration may be retiring).
  [[nodiscard]] std::unique_ptr<Scheduler<P>> make_module(SchedulerKind kind) {
    if (kind == SchedulerKind::kQueue) {
      return std::make_unique<DistributedQueueScheduler<P>>(&queue_cell_);
    }
    return make_scheduler<P>(kind);
  }

  /// Common body of the configure_scheduler overloads: charges the 1R5W
  /// cost, stages the new module, and installs it immediately when no
  /// pre-registered waiters exist.
  void install_scheduler(Ctx& ctx, SchedulerKind kind,
                         std::unique_ptr<Scheduler<P>> fresh) {
    // Checked before the quiescence epoch is broken: misuse() unwinds and
    // must leave nothing armed.
    if ((kind == SchedulerKind::kReaderWriter) != rw_capable()) {
      misuse("RW capability is fixed at construction; cannot switch a lock "
             "between reader-writer and exclusive scheduler kinds");
    }
    // Scheduler swaps retire the outgoing module: quiesce the fast path
    // and reclaim its pre-selection (below, under meta) or the cached
    // record would dangle on a destroyed queue.
    QuiesceGuard quiesce(ctx, *this);
    note(ctx, LockEvent::kConfigMutateBegin);
    monitor_.on_reconfiguration(/*scheduler_change=*/true);
    (void)P::load(ctx, sched_flag_);                    // 1R
    const auto code = static_cast<std::uint64_t>(kind);
    P::store(ctx, sched_reg_, code);                    // W1: registration
    P::store(ctx, sched_acq_, code);                    // W2: acquisition
    P::store(ctx, sched_rel_, code);                    // W3: release
    P::store(ctx, sched_flag_, 1);                      // W4: delay flag on
    meta_lock(ctx);
    reclaim_next_grant(ctx);
    if constexpr (kRealConcurrency<P>) {
      // In-flight lock-free arrivals registered before this configuration:
      // drain them now so they land in the outgoing module and are served
      // under the configuration-delay rule, like the seed's meta-guarded
      // arrivals.
      drain_arrivals(ctx);
    }
    if (pending_scheduler_ != nullptr) {
      // Stacked reconfiguration: a previous pending module was never
      // installed. Migrate its registered waiters (to the incoming module,
      // or the orphan queue when switching to kNone) instead of destroying
      // them with it. Exception: when both the replaced pending module and
      // the incoming one are distributed queues, they drain the same
      // lock-resident cell - the waiters are already where the incoming
      // module serves them, and "migrating" would chase a cycle.
      const bool both_queued =
          pending_scheduler_->kind() == SchedulerKind::kQueue &&
          kind == SchedulerKind::kQueue;
      if (!both_queued) {
        while (WaiterRecord<P>* w = pending_scheduler_->pop_any()) {
          if (fresh != nullptr) {
            w->registered_with = fresh.get();
            fresh->enqueue(*w);
          } else {
            w->registered_with = nullptr;
            orphans_.push_back(*w);
          }
        }
      }
    }
    pending_scheduler_ = std::move(fresh);
    if (pending_scheduler_ != nullptr) {
      pending_scheduler_->set_rw_preference(opts_.rw_preference);
    }
    pending_kind_.store(kind, std::memory_order_relaxed);
    has_pending_.store(true, std::memory_order_relaxed);
    if constexpr (kRealConcurrency<P>) {
      // A replaced pending kQueue module can leave records in the cell
      // that its pop_any could not see (a producer's link was still in
      // flight). Now that the pending kinds are final, sweep such strays
      // into whatever module new arrivals register under. No-op while a
      // distributed queue is still current or incoming.
      drain_queue_strays(ctx);
    }
    // New registrations target the incoming module from here on: a new
    // configuration generation for the fairness oracles.
    note(ctx, LockEvent::kSchedulerInstalled);
    const bool immediate = scheduler_ == nullptr || scheduler_->empty();
    if (immediate) install_pending(ctx);                // W5: flag reset
    note(ctx, LockEvent::kConfigMutateEnd);
    meta_unlock(ctx);
  }

  /// Installs the pending scheduler (configuration-delay completion) and
  /// performs the deferred flag-reset write (the 5th W of 1R5W).
  void install_pending(Ctx& ctx) {
    scheduler_ = std::move(pending_scheduler_);
    scheduler_kind_.store(pending_kind_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    has_pending_.store(false, std::memory_order_relaxed);
    P::store(ctx, sched_flag_, 0);
  }

  // ----------------------------------------------------- bookkeeping -----

  /// Bookkeeping for a fast-mode claim (fast_eligible_ locks on real
  /// platforms only). The owner word is not written: nothing reads it
  /// unless the lock is recursive, and recursive locks are never
  /// fast-eligible. One monitor-enabled load gates everything else;
  /// acquire_time_ is still cleared when the monitor is off so a later
  /// monitored release cannot pair with a stale stamp.
  void on_acquired_fast(Ctx& ctx, Nanos t0) {
    note_trace(ctx, LockEvent::kAcquireFast, ctx.self());
    if (monitor_.enabled()) {
      monitor_.on_acquire(/*contended=*/false);
      acquire_time_ = t0 != 0 ? P::now(ctx) : 0;
    } else {
      acquire_time_ = 0;
    }
  }

  void on_acquired_exclusive(Ctx& ctx, bool contended, Nanos t0) {
    note_trace(ctx,
               contended ? LockEvent::kAcquireSlow : LockEvent::kAcquireFast,
               ctx.self());
    P::store(ctx, owner_, static_cast<std::uint64_t>(ctx.self()) + 1);
    recursion_depth_ = 0;
    if constexpr (kRealConcurrency<P>) {
      // Clock elision: with the monitor off the timestamps feed nothing;
      // with it on, only the 1-in-N sampled acquisitions (t0 nonzero) pay
      // clock reads. acquire_time_ == 0 tells the release side this hold
      // carries no time sample.
      if (!monitor_.enabled()) {
        acquire_time_ = 0;
        return;
      }
      monitor_.on_acquire(contended);
      if (t0 != 0) {
        acquire_time_ = P::now(ctx);
        if (contended) monitor_.on_wait_complete(acquire_time_ - t0);
      } else {
        acquire_time_ = 0;
      }
    } else {
      acquire_time_ = P::now(ctx);
      monitor_.on_acquire(contended);
      if (contended) monitor_.on_wait_complete(acquire_time_ - t0);
    }
  }

  void on_granted(Ctx& ctx, bool shared, Nanos t0) {
    note_trace(ctx,
               shared ? LockEvent::kAcquireShared : LockEvent::kAcquireSlow,
               ctx.self());
    if constexpr (kRealConcurrency<P>) {
      if (!shared) recursion_depth_ = 0;
      if (!monitor_.enabled()) {
        if (!shared) acquire_time_ = 0;
        return;
      }
      if (shared) {
        monitor_.on_shared_acquire();
      } else {
        monitor_.on_acquire(/*contended=*/true);
      }
      if (t0 != 0) {
        const Nanos now = P::now(ctx);
        if (!shared) acquire_time_ = now;
        monitor_.on_wait_complete(now - t0);
      } else if (!shared) {
        acquire_time_ = 0;
      }
    } else {
      const Nanos now = P::now(ctx);
      if (shared) {
        monitor_.on_shared_acquire();
      } else {
        recursion_depth_ = 0;
        acquire_time_ = now;
        monitor_.on_acquire(/*contended=*/true);
      }
      monitor_.on_wait_complete(now - t0);
    }
  }

  // ------------------------------------------------- reader-writer -------

  bool try_acquire_rw(Ctx& ctx, bool shared) {
    meta_lock(ctx);
    const bool ok = rw_can_enter(shared);
    if (ok) rw_enter(ctx, shared);
    meta_unlock(ctx);
    if (ok) {
      if (shared) {
        monitor_.on_shared_acquire();
      } else {
        on_acquired_exclusive(ctx, /*contended=*/false, P::now(ctx));
      }
    }
    return ok;
  }

  bool acquire_rw(Ctx& ctx, bool shared, Nanos timeout_override) {
    const Nanos t0 = P::now(ctx);
    P::store(ctx, registry_, static_cast<std::uint64_t>(ctx.self()) + 1);
    (void)P::load(ctx, config_word_);

    meta_lock(ctx);
    LockAttributes attrs = effective_attrs_for(ctx.self());
    if (timeout_override != 0) attrs.timeout_ns = timeout_override;
    const Nanos deadline =
        attrs.timeout_ns != 0 ? t0 + attrs.timeout_ns : kForever;

    if (rw_can_enter(shared)) {
      rw_enter(ctx, shared);
      meta_unlock(ctx);
      if (shared) {
        monitor_.on_shared_acquire();
      } else {
        on_acquired_exclusive(ctx, /*contended=*/false, t0);
      }
      return true;
    }

    Scheduler<P>* target = has_pending_.load(std::memory_order_relaxed)
                               ? pending_scheduler_.get()
                               : scheduler_.get();
    assert(target != nullptr && "RW locks always have a scheduler");
    WaiterRecord<P> rec(domain_, ctx.self(), ctx.priority(),
                        grant_flag_placement(ctx), shared,
                        policy_may_sleep(attrs, opts_.advisory));
    rec.enqueue_time = t0;
    rec.registered_with = target;
    target->enqueue(rec);
    waiter_count_.fetch_add(1, std::memory_order_relaxed);
    meta_unlock(ctx);

    const WaitResult r = wait_queued(ctx, rec, attrs, deadline);
    if (r == WaitResult::kGranted) {
      waiter_count_.fetch_sub(1, std::memory_order_relaxed);
      on_granted(ctx, shared, t0);
      return true;
    }
    meta_lock(ctx);
    if (rec.granted_flag_host) {
      meta_unlock(ctx);
      waiter_count_.fetch_sub(1, std::memory_order_relaxed);
      on_granted(ctx, shared, t0);
      return true;
    }
    withdraw(ctx, rec);
    meta_unlock(ctx);
    waiter_count_.fetch_sub(1, std::memory_order_relaxed);
    monitor_.on_timeout();
    return false;
  }

  /// Meta held. Immediate-entry rule: the lock must be compatible *and*
  /// nobody is queued (so waiting writers are not starved by arriving
  /// readers), except under reader preference where readers may join.
  [[nodiscard]] bool rw_can_enter(bool shared) const {
    const bool queue_empty =
        (scheduler_ == nullptr || scheduler_->empty()) &&
        (pending_scheduler_ == nullptr || pending_scheduler_->empty());
    if (shared) {
      const bool compatible = !writer_held_;
      if (opts_.rw_preference == RwPreference::kReaderPref) {
        return compatible;  // readers barge past queued writers
      }
      return compatible && queue_empty;  // do not starve queued writers
    }
    return holders_ == 0 && queue_empty;
  }

  /// Meta held.
  void rw_enter(Ctx& ctx, bool shared) {
    if (shared) {
      ++holders_;
      writer_held_ = false;
    } else {
      holders_ = 1;
      writer_held_ = true;
    }
    if (holders_ == 1) P::store(ctx, state_, 1);
  }

  // -------------------------------------------------- active locks -------

  // Mailbox protocol: 0 = empty; kMailboxShared = shared releases queued
  // under meta; >= kMailboxExclusive = one exclusive release, hint inline.
  // An exclusive lock has at most one release in flight (the next release
  // cannot happen before the manager grants this one), so the whole request
  // fits in a single mailbox write - this is what makes active unlocks
  // cheaper for the releasing processor than running the release module.
  static constexpr std::uint64_t kMailboxShared = 1;
  static constexpr std::uint64_t kMailboxExclusive = 2;

  static constexpr std::uint64_t encode_mailbox_hint(ThreadId hint) noexcept {
    return hint == kInvalidThread
               ? kMailboxExclusive
               : kMailboxExclusive + 1 + static_cast<std::uint64_t>(hint);
  }
  static constexpr ThreadId decode_mailbox_hint(std::uint64_t v) noexcept {
    return v == kMailboxExclusive
               ? kInvalidThread
               : static_cast<ThreadId>(v - kMailboxExclusive - 1);
  }

  void post_release(Ctx& ctx, ThreadId hint, bool shared) {
    if (!shared) {
      P::store(ctx, mailbox_, encode_mailbox_hint(hint));
    } else {
      // Readers may release concurrently: queue under meta.
      meta_lock(ctx);
      pending_releases_.push_back(ReleaseRequest{hint, shared, acquire_time_});
      pending_release_count_.fetch_add(1, std::memory_order_relaxed);
      meta_unlock(ctx);
      P::store(ctx, mailbox_, kMailboxShared);
    }
    if (!opts_.active_polling) {
      const ThreadId mgr = manager_tid_.load(std::memory_order_relaxed);
      if (mgr != kInvalidThread) P::unblock(ctx, mgr);
    }
  }

  void drain_releases(Ctx& ctx) {
    for (;;) {
      // Host-side gate: never acquire meta when nothing is pending.
      if (pending_release_count_.load(std::memory_order_acquire) == 0) {
        return;
      }
      meta_lock(ctx);
      if (pending_releases_.empty()) {
        meta_unlock(ctx);
        return;
      }
      const ReleaseRequest req = pending_releases_.front();
      pending_releases_.pop_front();
      pending_release_count_.fetch_sub(1, std::memory_order_release);
      meta_unlock(ctx);
      release(ctx, req.hint, req.shared);
    }
  }

  // ------------------------------------------------------- members -------

  /// Probes per advisory round before re-polling the owner's advice.
  static constexpr std::uint32_t kAdviceChunk = 16;
  /// How long before the owner's announced release waiters resume spinning.
  static constexpr Nanos kAdviceSpinMargin = 60'000;

  // Real-concurrency tuning (used only when kRealConcurrency<P>).
  /// Failed probes tolerated (grant-flag spins, pending-arrival-link waits)
  /// before escalating from PAUSE to yielding the processor.
  static constexpr std::uint32_t kSpinsBeforeYield = 64;
  /// Same, when live threads exceed processors (spinning mostly steals the
  /// quantum the releaser needs).
  static constexpr std::uint32_t kSpinsBeforeYieldOversubscribed = 4;
  /// Failed probes an oversubscribed spin-policy waiter tolerates before it
  /// parks outright (it registered sleepable, so its grant signals the
  /// parker). Zero: park on the first failed probe. Handoffs faster than the
  /// park entry deposit a token the park consumes without sleeping, so the
  /// fast-handoff case stays cheap, while every avoided yield/pause keeps a
  /// doomed spinner off the run queue the grant-producing thread needs.
  static constexpr std::uint32_t kStreakBeforeParkOversubscribed = 0;
  /// meta_lock escalation: PAUSE probes, then bounded-exponential busy
  /// delays, then yields.
  static constexpr std::uint32_t kMetaPureSpins = 4;
  static constexpr std::uint32_t kMetaBackoffRounds = 8;
  static constexpr Nanos kMetaBackoffInitialNs = 64;
  static constexpr Nanos kMetaBackoffCapNs = 4096;
  /// Release-path wake list capacity; overflow wakes are issued under meta.
  static constexpr std::size_t kWakeInline = 16;

  Domain& domain_;
  Options opts_;
  /// Static half of the fast-mode gate, fixed at construction: true for
  /// configurations whose uncontended acquire/release touch nothing the
  /// bypassed machinery maintains (exclusive + passive + non-recursive +
  /// non-advisory). The dynamic half is the kStateContended bit.
  const bool fast_eligible_;

  // Simulated/atomic words (object + configuration state, Figure 5).
  typename P::Word meta_;         ///< TAS guard for internal structures
  typename P::Word state_;        ///< bit 0 held; bit 1 full mode (kReal)
  typename P::Word owner_;        ///< exclusive owner tid+1, 0 = none
  typename P::Word advice_;       ///< Advice published by the owner
  typename P::Word config_word_;  ///< waiting-policy version (1R1W proxy)
  typename P::Word sched_reg_;    ///< scheduler submodule: registration
  typename P::Word sched_acq_;    ///< scheduler submodule: acquisition
  typename P::Word sched_rel_;    ///< scheduler submodule: release
  typename P::Word sched_flag_;   ///< configuration-delay flag
  typename P::Word registry_;     ///< last registrant tid+1
  typename P::Word possess_word_; ///< attribute possession bits
  typename P::Word mailbox_;      ///< active-lock doorbell
  /// Head of the lock-free MPSC arrival stack (WaiterRecord*, 0 = empty).
  /// A real platform word only on kRealConcurrency platforms; elsewhere an
  /// empty stand-in (see NoArrivalsWord).
  ArrivalsWord arrivals_;

  // Waiting-policy attributes (semantic values, host side).
  std::atomic<std::uint32_t> attr_spin_{kInfiniteSpins};
  std::atomic<Nanos> attr_delay_{0};
  std::atomic<Nanos> attr_sleep_{0};
  std::atomic<Nanos> attr_timeout_{0};
  std::atomic<std::uint64_t> config_version_{0};

  // Scheduler modules (guarded by meta except the atomic flags).
  std::unique_ptr<Scheduler<P>> scheduler_;
  std::unique_ptr<Scheduler<P>> pending_scheduler_;
  std::atomic<SchedulerKind> scheduler_kind_;
  std::atomic<SchedulerKind> pending_kind_{SchedulerKind::kNone};
  std::atomic<bool> has_pending_{false};
  /// Advisory mirror of the last set_priority_threshold value (see
  /// priority_threshold()).
  std::atomic<Priority> threshold_mirror_{kDefaultPriority};
  /// Shared half of the distributed (kQueue) waiter queue. Lock-resident -
  /// not module-resident - so lock-free arrivals can tail-swap into stable
  /// storage no matter how many times configuration flips kQueue on and
  /// off; every kQueue façade installed on this lock serves this one cell.
  /// Host atomics, so the simulator's word placement is untouched.
  WaitQueueCell<P> queue_cell_;

  // Holder state (guarded by meta on slow paths; fast path uses state_).
  std::uint32_t holders_ = 0;   ///< 0 free, 1 exclusive, n readers
  bool writer_held_ = false;    ///< RW mode only

  WaiterQueue<P> sleepers_;     ///< centralized-mode sleeping waiters (meta)
  WaiterQueue<P> orphans_;      ///< drained arrivals with no module (meta)
  GrantBatch<P> grant_scratch_; ///< reused by the module owner only

  // Configuration-quiescence epoch (kRealConcurrency fast release). Host-
  // side atomics so the simulator's word placement is untouched.
  std::atomic<std::uint32_t> quiesce_breakers_{0};
  std::atomic<std::uint32_t> fast_releases_inflight_{0};
  /// Pre-selected grantee for the next release (owned by the module owner;
  /// off every queue, registered_with == nullptr while cached).
  std::atomic<WaiterRecord<P>*> next_grant_{nullptr};
  /// Scheduler version at pre-selection time (priority-kind validation).
  std::atomic<std::uint64_t> next_grant_version_{0};

  // Owner-only bookkeeping.
  std::uint32_t recursion_depth_ = 0;
  Nanos acquire_time_ = 0;

  // Per-thread waiting-policy overrides. Simulated platforms: map, guarded
  // by meta. kRealConcurrency platforms: lazily allocated flat slot array
  // indexed by ThreadId, written under meta, read lock-free.
  std::unordered_map<ThreadId, LockAttributes> thread_attrs_;
  /// Current + retired slot arrays (meta). Retired arrays stay alive for
  /// the lock's lifetime: a reader may still hold their pointer.
  std::vector<std::unique_ptr<AttrSlotArray>> attr_slot_storage_;
  std::atomic<AttrSlotArray*> attr_slots_{nullptr};  ///< lock-free view
  std::uint32_t attr_override_count_ = 0;            ///< valid slots (meta)
  std::atomic<bool> has_thread_attrs_{false};

  // Active-lock machinery.
  std::deque<ReleaseRequest> pending_releases_;  ///< meta
  std::atomic<std::uint32_t> pending_release_count_{0};
  std::atomic<ThreadId> manager_tid_{kInvalidThread};
  std::atomic<bool> serving_{false};
  std::atomic<bool> stop_{false};

  std::atomic<std::uint32_t> waiter_count_{0};
  LockMonitor monitor_;
  /// relock-trace identity; empty (and size-free) without RELOCK_TRACE.
  [[no_unique_address]] TraceTag trace_tag_;
};

}  // namespace relock
