// WaiterRecord: the per-acquisition registration record (paper section 3.2:
// "a requesting thread registers itself with the lock object"). Lives on the
// waiting thread's stack; linked into the lock scheduler's queue under the
// lock's meta guard.
#pragma once

#include <atomic>
#include <cstdint>

#include "relock/core/attributes.hpp"
#include "relock/platform/platform.hpp"

namespace relock {

template <Platform P>
class Scheduler;

/// Sentinel for WaiterRecord::arrival_next: the push's link store is still
/// in flight (the drain spins the microscopic gap between the producer's
/// exchange and its link write). 0 terminates the chain.
inline constexpr std::uintptr_t kArrivalLinkPending = 1;

template <Platform P>
struct WaiterRecord {
  WaiterRecord(typename P::Domain& domain, ThreadId tid_, Priority priority_,
               Placement flag_placement, bool shared_, bool may_sleep_)
      : granted(domain, 0, flag_placement),
        tid(tid_),
        priority(priority_),
        shared(shared_),
        may_sleep(may_sleep_) {}
  WaiterRecord(const WaiterRecord&) = delete;
  WaiterRecord& operator=(const WaiterRecord&) = delete;

  /// Grant flag the waiter polls / sleeps on. With WaitPlacement::
  /// kWaiterLocal this sits in the waiter's node memory (the "distributed"
  /// configuration); otherwise on the lock's home node.
  typename P::Word granted;

  ThreadId tid;
  Priority priority;
  bool shared;     ///< reader (lock_shared) vs. writer acquisition
  bool may_sleep;  ///< waiting policy can sleep: granter must send a wakeup

  /// Set under the lock's meta guard when the waiter has been dequeued and
  /// granted; used to resolve the timeout-vs-grant race.
  bool granted_flag_host = false;

  Nanos enqueue_time = 0;

  /// The scheduler module this record was registered with (set under the
  /// lock's meta guard). Timeout withdrawal must remove the record from the
  /// module that actually holds it — the lock may have been reconfigured
  /// (and a different module made current) while the thread waited.
  /// nullptr while unregistered, or when parked on the lock's orphan queue.
  Scheduler<P>* registered_with = nullptr;

  /// Lock-free arrival chain link (kRealConcurrency platforms): holds the
  /// previous arrival-stack head as a uintptr, kArrivalLinkPending until
  /// the producer's post-exchange store lands, 0 at the end of the chain.
  std::atomic<std::uintptr_t> arrival_next{0};

  // Intrusive doubly-linked queue node, guarded by the lock's meta word.
  WaiterRecord* prev = nullptr;
  WaiterRecord* next = nullptr;
  bool queued = false;
};

/// Intrusive FIFO of waiter records. All operations require the owning
/// lock's meta guard.
template <Platform P>
class WaiterQueue {
 public:
  using Rec = WaiterRecord<P>;

  void push_back(Rec& r) noexcept {
    r.prev = tail_;
    r.next = nullptr;
    r.queued = true;
    if (tail_ != nullptr) {
      tail_->next = &r;
    } else {
      head_ = &r;
    }
    tail_ = &r;
    ++size_;
  }

  /// Re-inserts a record at the head. Used to return a pre-dequeued
  /// successor (the fast-release cache) to the queue without losing its
  /// FIFO position: the cached record was the oldest selection candidate.
  void push_front(Rec& r) noexcept {
    r.prev = nullptr;
    r.next = head_;
    r.queued = true;
    if (head_ != nullptr) {
      head_->prev = &r;
    } else {
      tail_ = &r;
    }
    head_ = &r;
    ++size_;
  }

  void remove(Rec& r) noexcept {
    if (!r.queued) return;
    if (r.prev != nullptr) r.prev->next = r.next; else head_ = r.next;
    if (r.next != nullptr) r.next->prev = r.prev; else tail_ = r.prev;
    r.prev = r.next = nullptr;
    r.queued = false;
    --size_;
  }

  [[nodiscard]] Rec* front() const noexcept { return head_; }
  [[nodiscard]] bool empty() const noexcept { return head_ == nullptr; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Iterates in FIFO order; `fn` returning false stops the walk.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (Rec* r = head_; r != nullptr;) {
      Rec* next = r->next;  // fn may unlink r
      if (!fn(*r)) return;
      r = next;
    }
  }

 private:
  Rec* head_ = nullptr;
  Rec* tail_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace relock
