// WaiterRecord: the per-acquisition registration record (paper section 3.2:
// "a requesting thread registers itself with the lock object"). Lives on the
// waiting thread's stack; linked into the lock scheduler's queue under the
// lock's meta guard.
#pragma once

#include <atomic>
#include <cstdint>

#include "relock/core/attributes.hpp"
#include "relock/platform/platform.hpp"

namespace relock {

template <Platform P>
class Scheduler;

/// Sentinel for WaiterRecord::arrival_next: the push's link store is still
/// in flight (the drain spins the microscopic gap between the producer's
/// exchange and its link write). 0 terminates the chain.
inline constexpr std::uintptr_t kArrivalLinkPending = 1;

template <Platform P>
struct WaiterRecord {
  WaiterRecord(typename P::Domain& domain, ThreadId tid_, Priority priority_,
               Placement flag_placement, bool shared_, bool may_sleep_)
      : granted(domain, 0, flag_placement),
        tid(tid_),
        priority(priority_),
        shared(shared_),
        may_sleep(may_sleep_) {}
  WaiterRecord(const WaiterRecord&) = delete;
  WaiterRecord& operator=(const WaiterRecord&) = delete;

  /// Grant flag the waiter polls / sleeps on. With WaitPlacement::
  /// kWaiterLocal this sits in the waiter's node memory (the "distributed"
  /// configuration); otherwise on the lock's home node.
  typename P::Word granted;

  ThreadId tid;
  Priority priority;
  bool shared;     ///< reader (lock_shared) vs. writer acquisition
  bool may_sleep;  ///< waiting policy can sleep: granter must send a wakeup

  /// Set under the lock's meta guard when the waiter has been dequeued and
  /// granted; used to resolve the timeout-vs-grant race.
  bool granted_flag_host = false;

  Nanos enqueue_time = 0;

  /// Grant-delivery hook: the parker abstraction for waiters that are not
  /// threads. A thread waiter (hook == nullptr) polls/sleeps on `granted`;
  /// a coroutine waiter (relock/async/) instead registers a hook that the
  /// granter invokes AFTER publishing the grant flag and releasing the meta
  /// guard - the hook posts the suspended frame to its executor. Core stays
  /// coroutine-free: the hook is a plain function pointer + context arg.
  using GrantHook = void (*)(void* arg, typename P::Context& granter_ctx);
  GrantHook grant_hook = nullptr;
  void* grant_hook_arg = nullptr;
  /// Granter-owned scratch link: hooked records selected inside one release
  /// are chained here so their hooks can run after meta_unlock.
  WaiterRecord* hook_next = nullptr;

  /// The scheduler module this record was registered with (set under the
  /// lock's meta guard). Timeout withdrawal must remove the record from the
  /// module that actually holds it — the lock may have been reconfigured
  /// (and a different module made current) while the thread waited.
  /// nullptr while unregistered, or when parked on the lock's orphan queue.
  Scheduler<P>* registered_with = nullptr;

  /// Lock-free arrival chain link (kRealConcurrency platforms): holds the
  /// previous arrival-stack head as a uintptr, kArrivalLinkPending until
  /// the producer's post-exchange store lands, 0 at the end of the chain.
  std::atomic<std::uintptr_t> arrival_next{0};

  /// Inline queue node for the distributed (SchedulerKind::kQueue) FIFO:
  /// the MCS-style successor link, written once by the *next* arrival after
  /// its tail-swap. nullptr means "no successor visible yet" — whether the
  /// record is last is decided by comparing against the cell's tail, so no
  /// pending sentinel is needed.
  std::atomic<WaiterRecord*> qnext{nullptr};

  // Intrusive doubly-linked queue node, guarded by the lock's meta word.
  WaiterRecord* prev = nullptr;
  WaiterRecord* next = nullptr;
  bool queued = false;
};

/// The shared half of the distributed queue (SchedulerKind::kQueue): one
/// tail word that arrivals swap themselves into and one publication slot
/// for the first-in-line record. Everything else about the queue lives in
/// the waiters' own records (WaiterRecord::qnext), which is what makes the
/// scheduler "distributed" in the paper's Fig. 9 sense — a waiting thread
/// spins only on its record-local grant flag, never on these words.
///
/// The cell deliberately uses host std::atomics, not platform Words: queue
/// maintenance is consumer-side bookkeeping serialized by the lock's grant
/// protocol (meta guard or quiescence epoch), and keeping it off the
/// platform word set leaves the simulator's timing/placement model — and
/// its calibrated tables — untouched. seq_cst on tail mirrors the arrival
/// stack's Dekker: the producer's tail-swap and the releaser's emptiness
/// re-check must not both miss each other.
///
/// Concurrency contract: any thread may enqueue (exchange tail, then link
/// via the predecessor's qnext or `first` when the queue was empty); at
/// most ONE thread at a time consumes (pop/remove/walk), serialized
/// externally. `head` is therefore a plain pointer owned by the consumer
/// side; visibility between successive consumers rides the same
/// happens-before edges that already order the lock's release protocol.
template <Platform P>
struct WaitQueueCell {
  using Rec = WaiterRecord<P>;

  std::atomic<Rec*> tail{nullptr};   ///< last arrival; nullptr = empty
  std::atomic<Rec*> first{nullptr};  ///< first arrival's publication slot
  Rec* head = nullptr;               ///< consumer-owned dequeue cursor
  /// Advisory population count (producers increment after linking, so it
  /// briefly lags the queue itself). Exact whenever the queue is quiet.
  std::atomic<std::size_t> count{0};

  /// Consumer-side emptiness. Exact for consumers: a record is reachable
  /// from head or (transitively) from the published tail, and the last
  /// consumer pop swings tail back to nullptr before clearing head.
  [[nodiscard]] bool empty() const noexcept {
    return head == nullptr && tail.load(std::memory_order_seq_cst) == nullptr;
  }
};

/// Intrusive FIFO of waiter records. All operations require the owning
/// lock's meta guard.
template <Platform P>
class WaiterQueue {
 public:
  using Rec = WaiterRecord<P>;

  void push_back(Rec& r) noexcept {
    r.prev = tail_;
    r.next = nullptr;
    r.queued = true;
    if (tail_ != nullptr) {
      tail_->next = &r;
    } else {
      head_ = &r;
    }
    tail_ = &r;
    ++size_;
  }

  /// Re-inserts a record at the head. Used to return a pre-dequeued
  /// successor (the fast-release cache) to the queue without losing its
  /// FIFO position: the cached record was the oldest selection candidate.
  void push_front(Rec& r) noexcept {
    r.prev = nullptr;
    r.next = head_;
    r.queued = true;
    if (head_ != nullptr) {
      head_->prev = &r;
    } else {
      tail_ = &r;
    }
    head_ = &r;
    ++size_;
  }

  void remove(Rec& r) noexcept {
    if (!r.queued) return;
    if (r.prev != nullptr) r.prev->next = r.next; else head_ = r.next;
    if (r.next != nullptr) r.next->prev = r.prev; else tail_ = r.prev;
    r.prev = r.next = nullptr;
    r.queued = false;
    --size_;
  }

  [[nodiscard]] Rec* front() const noexcept { return head_; }
  [[nodiscard]] bool empty() const noexcept { return head_ == nullptr; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Iterates in FIFO order; `fn` returning false stops the walk.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (Rec* r = head_; r != nullptr;) {
      Rec* next = r->next;  // fn may unlink r
      if (!fn(*r)) return;
      r = next;
    }
  }

 private:
  Rec* head_ = nullptr;
  Rec* tail_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace relock
