// Earliest-deadline-first lock scheduling: a user-supplied scheduler module
// demonstrating the extensibility the paper argues for ("the construction
// of new primitives on top of the existing ones or the extension with
// additional primitives"). Deadline-based dynamic lock scheduling for
// multiprocessor real-time threads is the [ZSG92] direction the paper
// cites.
//
// Each waiter's Priority value is interpreted as its deadline (smaller =
// earlier = more urgent); release grants the earliest deadline, FIFO among
// equals. Install it dynamically:
//
//   lock.configure_scheduler(ctx, std::make_unique<EdfScheduler<P>>());
#pragma once

#include "relock/core/scheduler.hpp"

namespace relock {

template <Platform P>
class EdfScheduler final : public Scheduler<P> {
 public:
  [[nodiscard]] SchedulerKind kind() const noexcept override {
    return SchedulerKind::kCustom;
  }
  void enqueue(WaiterRecord<P>& w) override { queue_.push_back(w); }
  void remove(WaiterRecord<P>& w) override { queue_.remove(w); }

  void select(GrantBatch<P>& out, ThreadId /*hint*/) override {
    WaiterRecord<P>* best = nullptr;
    queue_.for_each([&](WaiterRecord<P>& w) {
      // Priority encodes the deadline: smaller value = earlier deadline.
      if (best == nullptr || w.priority < best->priority) best = &w;
      return true;
    });
    if (best != nullptr) {
      queue_.remove(*best);
      out.push_back(best);
    }
  }

  [[nodiscard]] bool empty() const noexcept override { return queue_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept override {
    return queue_.size();
  }
  [[nodiscard]] WaiterRecord<P>* pop_any() noexcept override {
    WaiterRecord<P>* w = queue_.front();
    if (w != nullptr) queue_.remove(*w);
    return w;
  }

 private:
  WaiterQueue<P> queue_;
};

}  // namespace relock
