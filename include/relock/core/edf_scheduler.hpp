// Earliest-deadline-first lock scheduling: a user-supplied scheduler module
// demonstrating the extensibility the paper argues for ("the construction
// of new primitives on top of the existing ones or the extension with
// additional primitives"). Deadline-based dynamic lock scheduling for
// multiprocessor real-time threads is the [ZSG92] direction the paper
// cites.
//
// Each waiter's Priority value is interpreted as its deadline (smaller =
// earlier = more urgent); release grants the earliest deadline, FIFO among
// equals. Install it dynamically:
//
//   lock.configure_scheduler(ctx, std::make_unique<EdfScheduler<P>>());
#pragma once

#include "relock/core/scheduler.hpp"

namespace relock {

template <Platform P>
class EdfScheduler final : public QueuedScheduler<P> {
 public:
  [[nodiscard]] SchedulerKind kind() const noexcept override {
    return SchedulerKind::kCustom;
  }

  void select(GrantBatch<P>& out, ThreadId /*hint*/) override {
    if (WaiterRecord<P>* best = earliest_deadline()) this->take(*best, out);
  }
  [[nodiscard]] const WaiterRecord<P>* peek_next(
      ThreadId /*hint*/) const noexcept override {
    return earliest_deadline();
  }

 private:
  [[nodiscard]] WaiterRecord<P>* earliest_deadline() const noexcept {
    WaiterRecord<P>* best = nullptr;
    this->queue_.for_each([&](WaiterRecord<P>& w) {
      // Priority encodes the deadline: smaller value = earlier deadline.
      if (best == nullptr || w.priority < best->priority) best = &w;
      return true;
    });
    return best;
  }
};

}  // namespace relock
