// Umbrella header: the whole public API.
//
//   #include "relock/relock.hpp"
//
// For finer-grained inclusion, pick the specific headers:
//   relock/native/mutex.hpp          - std-interoperable native mutexes
//   relock/core/configurable_lock.hpp- the configurable lock object
//   relock/locks/*.hpp               - baseline lock algorithms
//   relock/sim/machine.hpp           - the Butterfly NUMA simulator
//   relock/table/lock_table.hpp      - striped record-id -> lock table
//   relock/vthreads/runtime.hpp      - user-level M:N threads
//   relock/workload/*.hpp            - workload generators
//   relock/adapt/*.hpp               - adaptation policies
#pragma once

#include "relock/adapt/adaptor.hpp"
#include "relock/adapt/policies.hpp"
#include "relock/adapt/policy_engine.hpp"
#include "relock/core/attributes.hpp"
#include "relock/core/configurable_lock.hpp"
#include "relock/core/edf_scheduler.hpp"
#include "relock/core/scheduler.hpp"
#include "relock/core/waiter.hpp"
#include "relock/locks/anderson_lock.hpp"
#include "relock/locks/blocking_lock.hpp"
#include "relock/locks/clh_lock.hpp"
#include "relock/locks/lock_concepts.hpp"
#include "relock/locks/mcs_lock.hpp"
#include "relock/locks/rw_spin_lock.hpp"
#include "relock/locks/spin_locks.hpp"
#include "relock/locks/ticket_lock.hpp"
#include "relock/monitor/lock_monitor.hpp"
#include "relock/monitor/reporter.hpp"
#include "relock/native/mutex.hpp"
#include "relock/platform/backoff.hpp"
#include "relock/platform/cacheline.hpp"
#include "relock/platform/clock.hpp"
#include "relock/platform/native.hpp"
#include "relock/platform/parker.hpp"
#include "relock/platform/platform.hpp"
#include "relock/platform/rng.hpp"
#include "relock/platform/types.hpp"
#include "relock/sim/machine.hpp"
#include "relock/sync/barrier.hpp"
#include "relock/table/lock_table.hpp"
#include "relock/table/twopl.hpp"
#include "relock/sync/condition_variable.hpp"
#include "relock/sync/semaphore.hpp"
#include "relock/vthreads/platform.hpp"
#include "relock/vthreads/runtime.hpp"
#include "relock/workload/client_server.hpp"
#include "relock/workload/cs_workload.hpp"
#include "relock/workload/samplers.hpp"
#include "relock/workload/zipf.hpp"
