// Timing model of the simulated NUMA multiprocessor.
//
// The preset `butterfly()` is calibrated against the paper's measurements on
// the 32-node BBN Butterfly GP1000 (16 MHz MC68020 nodes, log4 switch):
//   - plain remote references cost ~6x local ones (switch traversal);
//   - the `atomior` read-modify-write is a firmware-assisted operation that
//     locks the memory module and costs ~30 us (Table 2 of the paper) -
//     roughly 50x a local read, which is why spinning with RMWs is so
//     punishing on this machine;
//   - thread block / wakeup / context-switch costs are sized so that the
//     blocking locking cycle lands near the paper's 510 us (Table 4).
#pragma once

#include <cstdint>

#include "relock/platform/types.hpp"

namespace relock::sim {

struct MachineParams {
  /// Number of processor nodes; one memory module per node.
  std::uint32_t processors = 32;

  // --- Memory reference latency perceived by the issuing thread (ns). ---
  Nanos read_local = 600;
  Nanos read_remote = 4000;
  Nanos write_local = 3000;
  Nanos write_remote = 5200;
  Nanos rmw_local = 28'500;   ///< atomior & friends: firmware-assisted
  Nanos rmw_remote = 31'600;

  // --- Memory module occupancy per access (ns): the module serializes  ---
  // --- accesses, so these create hot-spot contention under load.       ---
  Nanos occupancy_read = 600;
  Nanos occupancy_write = 1000;
  Nanos occupancy_rmw = 26'000;

  /// Instruction-stream overhead charged per word operation (the software
  /// surrounding each reference on a 16 MHz 68020).
  Nanos op_overhead = 2000;

  /// Cost of one spin-loop body (test + branch) excluding the reference.
  Nanos pause_cost = 2200;

  // --- Thread management (user-level Cthreads-like package). ---
  Nanos context_switch = 200'000;  ///< dispatching another thread
  Nanos block_overhead = 100'000;  ///< descheduling self (enqueue + save)
  Nanos wakeup_cost = 50'000;      ///< charged to the waking thread
  Nanos wakeup_latency = 220'000;  ///< unblock -> wakee ready
  Nanos yield_cost = 200'000;      ///< voluntary yield (== context switch)
  Nanos quantum = 10'000'000;      ///< preemption slice; kForever = coop-only

  /// The paper's machine.
  static MachineParams butterfly() { return MachineParams{}; }

  /// A small, fast machine for unit tests: latencies of a few ns so tests
  /// simulate quickly, still NUMA (remote > local).
  static MachineParams test_machine(std::uint32_t procs = 4) {
    MachineParams p;
    p.processors = procs;
    p.read_local = 1;
    p.read_remote = 4;
    p.write_local = 1;
    p.write_remote = 4;
    p.rmw_local = 10;
    p.rmw_remote = 14;
    p.occupancy_read = 1;
    p.occupancy_write = 1;
    p.occupancy_rmw = 10;
    p.op_overhead = 1;
    p.pause_cost = 2;
    p.context_switch = 50;
    p.block_overhead = 30;
    p.wakeup_cost = 20;
    p.wakeup_latency = 40;
    p.yield_cost = 50;
    p.quantum = 100'000;
    return p;
  }
};

}  // namespace relock::sim
