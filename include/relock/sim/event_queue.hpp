// Discrete-event queue: min-heap ordered by (time, insertion sequence).
// The sequence tie-break makes simulation runs fully deterministic.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "relock/platform/types.hpp"

namespace relock::sim {

enum class EventKind : std::uint8_t {
  kResume,       ///< continue the (still-current) thread on its processor
  kDispatch,     ///< pick the next ready thread on processor `subject`
  kReady,        ///< thread `subject` becomes ready (wakeup arrival)
  kSleepExpire,  ///< timed block of thread `subject` expires (aux = gen)
};

struct Event {
  Nanos time = 0;
  std::uint64_t seq = 0;  ///< insertion order; total-order tie-break
  EventKind kind = EventKind::kResume;
  std::uint32_t subject = 0;  ///< thread id or processor id
  std::uint64_t aux = 0;
};

class EventQueue {
 public:
  void push(Nanos time, EventKind kind, std::uint32_t subject,
            std::uint64_t aux = 0) {
    heap_.push(Event{time, next_seq_++, kind, subject, aux});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  Event pop() {
    Event e = heap_.top();
    heap_.pop();
    return e;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace relock::sim
