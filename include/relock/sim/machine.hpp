// The simulated NUMA multiprocessor (the paper's BBN Butterfly GP1000
// substitute): P processor nodes, one memory module per node, a user-level
// threads package with preemptive time-slicing, and a virtual-time
// discrete-event core. Entirely deterministic: identical inputs produce
// identical event traces regardless of host scheduling (the whole machine
// runs on one host thread; simulated threads are coroutines).
#pragma once

#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "relock/platform/types.hpp"
#include "relock/sim/coroutine.hpp"
#include "relock/sim/event_queue.hpp"
#include "relock/sim/machine_params.hpp"

namespace relock::sim {

class Machine;

/// Processor index. Threads are bound to a processor for life (the paper's
/// workload simulator "binds one or more thread to each processor").
using ProcId = std::uint32_t;
inline constexpr ProcId kAnyProc = 0xFFFFFFFFu;

/// Handle to one simulated memory word. 0xFFFFFFFF = invalid.
using CellId = std::uint32_t;
inline constexpr CellId kInvalidCell = 0xFFFFFFFFu;

/// Classes of memory reference for the timing model.
enum class MemOp : std::uint8_t { kRead, kWrite, kRmw };

/// A simulated thread. Also serves as SimPlatform::Context.
class Thread {
 public:
  enum class State : std::uint8_t {
    kEmbryo,    ///< spawned, first dispatch pending
    kReady,     ///< runnable, waiting for its processor
    kRunning,   ///< current on its processor (possibly op-in-flight)
    kBlocked,   ///< descheduled until unblock()
    kSleeping,  ///< descheduled until unblock() or timer
    kFinished,
  };

  [[nodiscard]] ThreadId self() const noexcept { return id_; }
  [[nodiscard]] Priority priority() const noexcept { return priority_; }
  void set_priority(Priority p) noexcept { priority_ = p; }
  [[nodiscard]] ProcId processor() const noexcept { return proc_; }
  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] Machine& machine() noexcept { return *machine_; }

 private:
  friend class Machine;

  Machine* machine_ = nullptr;
  ThreadId id_ = kInvalidThread;
  ProcId proc_ = 0;
  Priority priority_ = kDefaultPriority;
  State state_ = State::kEmbryo;

  bool wake_token_ = false;      ///< unblock arrived while not descheduled
  bool woke_by_unblock_ = false; ///< outcome of the last timed block
  std::uint64_t sleep_gen_ = 0;  ///< cancels stale sleep-expire events
  Nanos slice_start_ = 0;        ///< for quantum accounting
  std::vector<ThreadId> joiners_;
  std::unique_ptr<Coroutine> coro_;
};

/// Aggregate machine statistics (virtual-time behaviour of the workload).
struct MachineStats {
  std::uint64_t reads_local = 0;
  std::uint64_t reads_remote = 0;
  std::uint64_t writes_local = 0;
  std::uint64_t writes_remote = 0;
  std::uint64_t rmws_local = 0;
  std::uint64_t rmws_remote = 0;
  std::uint64_t context_switches = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t blocks = 0;
  std::uint64_t wakeups = 0;
  std::uint64_t yields = 0;

  [[nodiscard]] std::uint64_t remote_references() const noexcept {
    return reads_remote + writes_remote + rmws_remote;
  }
  [[nodiscard]] std::uint64_t total_references() const noexcept {
    return remote_references() + reads_local + writes_local + rmws_local;
  }
};

/// One record of the machine's event trace (see Machine::enable_trace).
struct TraceRecord {
  Nanos time;
  EventKind kind;
  std::uint32_t subject;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// Thrown by run() when the event queue drains while threads are still
/// blocked (a genuine deadlock in the simulated program).
class SimDeadlockError : public std::runtime_error {
 public:
  explicit SimDeadlockError(const std::string& what)
      : std::runtime_error(what) {}
};

class Machine {
 public:
  explicit Machine(MachineParams params = MachineParams::butterfly());
  ~Machine();
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // ------------------------------------------------------------------
  // Host-side API (driver).
  // ------------------------------------------------------------------

  /// Creates a thread bound to `proc` (kAnyProc = round-robin). The body
  /// receives the thread as its platform Context. Callable from the host or
  /// from inside a simulated thread.
  ThreadId spawn(ProcId proc, std::function<void(Thread&)> body,
                 Priority priority = kDefaultPriority);

  /// Runs the simulation until the event queue drains or virtual time would
  /// pass `until`. Throws SimDeadlockError if non-finished threads remain
  /// with nothing scheduled.
  void run(Nanos until = kForever);

  [[nodiscard]] Nanos now() const noexcept { return now_; }
  [[nodiscard]] const MachineParams& params() const noexcept { return params_; }
  [[nodiscard]] const MachineStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = MachineStats{}; }
  [[nodiscard]] std::uint32_t node_count() const noexcept {
    return params_.processors;
  }
  [[nodiscard]] Thread& thread(ThreadId id) { return *threads_.at(id); }
  [[nodiscard]] std::size_t thread_count() const noexcept {
    return threads_.size();
  }

  /// Records every handled event (up to `cap` records) for debugging and
  /// determinism checks. Identical programs must produce identical traces.
  void enable_trace(std::size_t cap = 1 << 20) {
    trace_enabled_ = true;
    trace_cap_ = cap;
    trace_.clear();
  }
  [[nodiscard]] const std::vector<TraceRecord>& trace() const noexcept {
    return trace_;
  }
  /// FNV-1a digest of the full trace (cheap equality check across runs).
  [[nodiscard]] std::uint64_t trace_digest() const noexcept {
    std::uint64_t h = 0xCBF29CE484222325ULL;
    auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xFF;
        h *= 0x100000001B3ULL;
      }
    };
    for (const TraceRecord& r : trace_) {
      mix(r.time);
      mix(static_cast<std::uint64_t>(r.kind) << 32 | r.subject);
    }
    return h;
  }

  // ------------------------------------------------------------------
  // Memory cells (simulated words).
  // ------------------------------------------------------------------

  /// Allocates one word on `placement.node` (kAnyNode = round-robin
  /// interleave across modules), initialized to `initial`.
  CellId alloc_cell(std::uint64_t initial, Placement placement);
  void free_cell(CellId cell) noexcept;
  [[nodiscard]] std::uint32_t cell_node(CellId cell) const;

  /// Total accesses served by `node`'s memory module (hot-spot analysis).
  [[nodiscard]] std::uint64_t module_accesses(std::uint32_t node) const {
    return modules_.at(node).accesses;
  }

  /// Peeks at a cell without advancing time (host-side inspection only).
  [[nodiscard]] std::uint64_t peek_cell(CellId cell) const;

  // ------------------------------------------------------------------
  // Thread-side API (called from inside simulated threads; all of these
  // advance virtual time and may context-switch).
  // ------------------------------------------------------------------

  std::uint64_t mem_read(Thread& t, CellId cell);
  void mem_write(Thread& t, CellId cell, std::uint64_t value);
  /// Generic atomic read-modify-write: applies `f(old) -> new`, returns old.
  std::uint64_t mem_rmw(Thread& t, CellId cell,
                        const std::function<std::uint64_t(std::uint64_t)>& f);
  /// CAS needs its own entry point: a failed CAS must not write.
  bool mem_cas(Thread& t, CellId cell, std::uint64_t expected,
               std::uint64_t desired);

  void pause(Thread& t);               ///< one spin-loop body
  void compute(Thread& t, Nanos ns);   ///< busy "useful work"
  void delay(Thread& t, Nanos ns);     ///< busy backoff delay
  void yield(Thread& t);               ///< voluntary reschedule

  void block(Thread& t);               ///< deschedule until unblock
  bool block_for(Thread& t, Nanos ns); ///< ... or timeout; true = woken
  void unblock(Thread& t, ThreadId target);

  /// Blocks until thread `target` finishes.
  void join(Thread& t, ThreadId target);

 private:
  struct Processor {
    std::deque<ThreadId> ready;
    ThreadId current = kInvalidThread;
    bool dispatch_pending = false;
  };

  struct Cell {
    std::uint64_t value = 0;
    std::uint32_t node = 0;
    bool in_use = false;
  };

  struct Module {
    Nanos free_at = 0;
    std::uint64_t accesses = 0;
  };

  // Core machinery (definitions in machine.cpp).
  void switch_to(Thread& t);
  void handle_event(const Event& e);
  void dispatch(ProcId proc);
  void make_ready(Thread& t);
  void schedule_dispatch(ProcId proc, Nanos at);
  void finish_thread(Thread& t);
  /// Charges `dt` of CPU to `t`, slicing at quantum boundaries.
  void advance(Thread& t, Nanos dt);
  /// Suspends `t` until `when` (processor stays held by `t`).
  void suspend_until(Thread& t, Nanos when);
  /// Preempts `t` (requeues it and dispatches a peer).
  void preempt(Thread& t);
  /// Preempts `t` iff its quantum expired and a peer is ready.
  void maybe_preempt(Thread& t);
  /// Deschedules `t` (state must already be kBlocked/kSleeping).
  void deschedule(Thread& t);
  /// Wakes `target`: transitions it to ready or leaves a wake token.
  void deliver_wake(Thread& target, bool by_unblock);
  /// Timing for one memory access; advances t to completion.
  void access(Thread& t, CellId cell, MemOp op);

  MachineParams params_;
  EventQueue events_;
  Nanos now_ = 0;
  std::vector<Processor> procs_;
  std::vector<Module> modules_;
  std::vector<std::unique_ptr<Thread>> threads_;
  std::deque<Cell> cells_;
  std::vector<CellId> free_cells_;
  std::uint32_t next_node_rr_ = 0;  ///< round-robin interleave counter
  std::uint32_t next_proc_rr_ = 0;
  MachineStats stats_;
  bool running_ = false;
  std::exception_ptr pending_error_;

  bool trace_enabled_ = false;
  std::size_t trace_cap_ = 0;
  std::vector<TraceRecord> trace_;
};

// ---------------------------------------------------------------------
// SimPlatform: the Platform implementation backed by a Machine.
// ---------------------------------------------------------------------

/// One simulated word; satisfies the Word shape of the Platform concept.
class SimWord {
 public:
  explicit SimWord(Machine& machine, std::uint64_t initial = 0,
                   Placement placement = Placement::any())
      : machine_(&machine), cell_(machine.alloc_cell(initial, placement)) {}
  ~SimWord() {
    if (cell_ != kInvalidCell) machine_->free_cell(cell_);
  }
  SimWord(const SimWord&) = delete;
  SimWord& operator=(const SimWord&) = delete;

  [[nodiscard]] CellId cell() const noexcept { return cell_; }
  /// Host-side peek (no time advance); for assertions and tests.
  [[nodiscard]] std::uint64_t peek() const { return machine_->peek_cell(cell_); }

 private:
  Machine* machine_;
  CellId cell_;
};

struct SimPlatform {
  using Context = Thread;
  using Word = SimWord;
  using Domain = Machine;

  static std::uint64_t load(Context& ctx, const Word& w) {
    return ctx.machine().mem_read(ctx, w.cell());
  }
  static std::uint64_t load_relaxed(Context& ctx, const Word& w) {
    return ctx.machine().mem_read(ctx, w.cell());
  }
  static void store(Context& ctx, Word& w, std::uint64_t v) {
    ctx.machine().mem_write(ctx, w.cell(), v);
  }
  static std::uint64_t fetch_or(Context& ctx, Word& w, std::uint64_t v) {
    return ctx.machine().mem_rmw(ctx, w.cell(),
                                 [v](std::uint64_t old) { return old | v; });
  }
  static std::uint64_t fetch_and(Context& ctx, Word& w, std::uint64_t v) {
    return ctx.machine().mem_rmw(ctx, w.cell(),
                                 [v](std::uint64_t old) { return old & v; });
  }
  static std::uint64_t fetch_add(Context& ctx, Word& w, std::uint64_t v) {
    return ctx.machine().mem_rmw(ctx, w.cell(),
                                 [v](std::uint64_t old) { return old + v; });
  }
  static std::uint64_t exchange(Context& ctx, Word& w, std::uint64_t v) {
    return ctx.machine().mem_rmw(ctx, w.cell(),
                                 [v](std::uint64_t) { return v; });
  }
  static bool cas(Context& ctx, Word& w, std::uint64_t expected,
                  std::uint64_t desired) {
    return ctx.machine().mem_cas(ctx, w.cell(), expected, desired);
  }

  static void pause(Context& ctx) { ctx.machine().pause(ctx); }
  static void delay(Context& ctx, Nanos ns) { ctx.machine().delay(ctx, ns); }
  static void compute(Context& ctx, Nanos ns) {
    ctx.machine().compute(ctx, ns);
  }
  static void yield(Context& ctx) { ctx.machine().yield(ctx); }

  static void block(Context& ctx) { ctx.machine().block(ctx); }
  static bool block_for(Context& ctx, Nanos ns) {
    return ctx.machine().block_for(ctx, ns);
  }
  static void unblock(Context& ctx, ThreadId tid) {
    ctx.machine().unblock(ctx, tid);
  }

  static Nanos now(Context& ctx) { return ctx.machine().now(); }

  static int home_node(Context& ctx) {
    return static_cast<int>(ctx.processor());
  }
};

}  // namespace relock::sim
