// Coroutine stacks: mmap-backed with a PROT_NONE guard page so that a stack
// overflow in simulated-thread code faults immediately instead of silently
// corrupting a neighbouring stack.
#pragma once

#include <cstddef>

namespace relock::sim {

class Stack {
 public:
  /// Allocates a stack of at least `size` usable bytes (rounded up to whole
  /// pages) plus one guard page below the stack.
  explicit Stack(std::size_t size = kDefaultSize);
  ~Stack();
  Stack(Stack&& other) noexcept;
  Stack& operator=(Stack&& other) noexcept;
  Stack(const Stack&) = delete;
  Stack& operator=(const Stack&) = delete;

  /// Highest usable address (stacks grow down). 16-byte aligned.
  [[nodiscard]] void* top() const noexcept;
  [[nodiscard]] std::size_t usable_size() const noexcept { return usable_; }

  static constexpr std::size_t kDefaultSize = 256 * 1024;

 private:
  void release() noexcept;

  void* base_ = nullptr;     ///< mmap base (guard page)
  std::size_t mapped_ = 0;   ///< total mapped bytes incl. guard
  std::size_t usable_ = 0;   ///< usable bytes above the guard page
};

}  // namespace relock::sim
