// Symmetric coroutines for the simulator: the driver (host) context swaps
// into simulated-thread contexts and back. On x86-64 the switch is a
// hand-rolled callee-saved-register swap (src/sim/context_switch_x86_64.S);
// other architectures fall back to <ucontext.h>.
#pragma once

#include <cstdint>
#include <functional>

#include "relock/sim/stack.hpp"

#if !defined(__x86_64__)
#include <ucontext.h>
#endif

namespace relock::sim {

/// A one-shot coroutine. `resume()` transfers control into the coroutine
/// until it calls `suspend()` or its entry function returns; both transfer
/// control back to the resumer.
class Coroutine {
 public:
  /// `entry` runs on the coroutine's own stack on first resume. When it
  /// returns, the coroutine is `finished()` and control returns to the
  /// resumer.
  explicit Coroutine(std::function<void()> entry,
                     std::size_t stack_size = Stack::kDefaultSize);
  ~Coroutine();
  Coroutine(const Coroutine&) = delete;
  Coroutine& operator=(const Coroutine&) = delete;

  /// Transfers control into the coroutine. Must be called from outside it.
  /// Precondition: !finished().
  void resume();

  /// Transfers control back to the last resumer. Must be called from inside
  /// the coroutine.
  void suspend();

  [[nodiscard]] bool finished() const noexcept { return finished_; }

 private:
  static void entry_thunk(void* self);
  [[noreturn]] void run_entry();

  std::function<void()> entry_;
  Stack stack_;
  bool finished_ = false;
  bool started_ = false;

#if defined(__x86_64__)
  void* coro_sp_ = nullptr;    ///< coroutine's saved stack pointer
  void* caller_sp_ = nullptr;  ///< resumer's saved stack pointer
#else
  ucontext_t coro_ctx_{};
  ucontext_t caller_ctx_{};
#endif
};

}  // namespace relock::sim
