// relock-trace emission hooks, mirroring chk_hooks.hpp: lock algorithms
// call trc_event at every semantic transition, and the whole mechanism
// compiles to nothing unless RELOCK_TRACE is defined - an empty inline
// function with an empty tag struct, so an OFF build carries zero code and
// zero data, not even the enabled check.
//
// With RELOCK_TRACE defined, each call forwards to the process-wide
// trace::Registry, which appends a 16-byte record to the calling thread's
// SPSC ring (see trace/trace.hpp for the cost contract). Recording is still
// off by default at runtime: the registry's master switch gates emission,
// so a tracing-capable build pays one relaxed load + branch per site until
// tracing is enabled.
//
// Unlike the chk hooks - which only the check platform defines - trace
// hooks are platform-independent: records are keyed by the platform
// ThreadId (ctx.self()), so native, check, and simulated platforms all
// trace through the same rings.
#pragma once

#include <cstdint>

#include "relock/platform/lock_event.hpp"

#ifdef RELOCK_TRACE
#include "relock/trace/trace.hpp"
#endif

namespace relock {

#ifdef RELOCK_TRACE

/// Per-lock trace identity, embedded in every ConfigurableLock. Registers
/// the lock with the trace registry at construction.
struct TraceTag {
  std::uint16_t id = trace::Registry::instance().register_lock();
};

/// Appends one record to the calling thread's trace ring.
template <typename P>
inline void trc_event(typename P::Context& ctx, const TraceTag& tag,
                      LockEvent e, std::uint64_t arg = 0) {
  trace::Registry::instance().emit(ctx.self(), tag.id, e, arg);
}

#else  // !RELOCK_TRACE

/// Empty stand-in: [[no_unique_address]] members of this type occupy no
/// storage, and the hook below inlines to nothing.
struct TraceTag {};

template <typename P>
inline void trc_event(typename P::Context&, const TraceTag&, LockEvent,
                      std::uint64_t = 0) {}

#endif  // RELOCK_TRACE

}  // namespace relock
