// Exponential backoff in the style of Anderson et al. [ALL89]: the delay
// between successive probes of a busy lock grows geometrically (like the
// Ethernet collision backoff the paper cites) up to a cap.
#pragma once

#include <cstdint>

#include "relock/platform/types.hpp"

namespace relock {

/// Pure backoff schedule: computes the next delay; the caller decides how to
/// realize the delay (native busy-wait, simulator virtual delay, ...).
/// Keeping the schedule separate from the delay mechanism lets the same
/// schedule drive every Platform.
class BackoffSchedule {
 public:
  struct Params {
    Nanos initial = 128;      ///< first delay
    Nanos cap = 64 * 1024;    ///< maximum delay
    std::uint32_t factor = 2; ///< geometric growth factor
  };

  BackoffSchedule() = default;
  explicit constexpr BackoffSchedule(Params p) noexcept
      : params_(p), current_(p.initial) {}

  /// Returns the delay to apply now and advances the schedule.
  constexpr Nanos next() noexcept {
    const Nanos d = current_;
    const Nanos grown = current_ * params_.factor;
    current_ = grown > params_.cap ? params_.cap : grown;
    return d;
  }

  constexpr void reset() noexcept { current_ = params_.initial; }

  [[nodiscard]] constexpr Nanos current() const noexcept { return current_; }

 private:
  Params params_{};
  Nanos current_ = Params{}.initial;
};

}  // namespace relock
