// Fundamental identifiers and time units shared by every relock module.
#pragma once

#include <cstdint>
#include <limits>

namespace relock {

/// Identifies a thread within a Domain (native registry, simulator machine,
/// or vthread runtime). Ids are dense indices assigned at registration time.
using ThreadId = std::uint32_t;

/// Sentinel: "no thread".
inline constexpr ThreadId kInvalidThread = std::numeric_limits<ThreadId>::max();

/// All platform time quantities are nanoseconds held in a uint64. The
/// simulator interprets them as virtual nanoseconds; the native platform as
/// wall-clock nanoseconds on the monotonic clock.
using Nanos = std::uint64_t;

/// Sentinel for "unbounded" durations (e.g. spin forever, sleep until woken).
inline constexpr Nanos kForever = std::numeric_limits<Nanos>::max();

/// Thread priority. Higher value = more urgent. The default priority is 0;
/// negative priorities are permitted (background work).
using Priority = int;

inline constexpr Priority kDefaultPriority = 0;

/// Memory-placement hint for platform words. On NUMA platforms (the
/// simulator) this selects the home memory module; the native platform
/// currently ignores it.
struct Placement {
  /// Home node index, or kAnyNode for "wherever is convenient".
  int node = -1;

  static constexpr int kAnyNode = -1;

  static constexpr Placement any() noexcept { return Placement{}; }
  static constexpr Placement on(int node_index) noexcept {
    return Placement{node_index};
  }
};

}  // namespace relock
