// Cache-line geometry and false-sharing avoidance helpers.
#pragma once

#include <cstddef>
#include <new>

namespace relock {

/// Destructive interference size. std::hardware_destructive_interference_size
/// is 64 on x86-64 but gcc warns it is ABI-unstable; we pin the common value.
inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps T so that each instance occupies its own cache line. Use for
/// per-thread slots in arrays that are written concurrently.
template <typename T>
struct alignas(kCacheLineSize) CachePadded {
  T value{};

  CachePadded() = default;
  explicit CachePadded(const T& v) : value(v) {}

  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
};

}  // namespace relock
