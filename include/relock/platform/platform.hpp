// The Platform concept: the contract every execution substrate (native
// threads, the Butterfly simulator, vthreads) satisfies. Lock algorithms in
// locks/ and core/ are templates over a Platform, so the identical algorithm
// code runs on real hardware and inside the deterministic NUMA simulator.
#pragma once

#include <concepts>
#include <cstdint>

#include "relock/platform/types.hpp"

namespace relock {

// clang-format off
template <typename P>
concept Platform = requires(typename P::Context& ctx,
                            typename P::Word& w,
                            const typename P::Word& cw,
                            std::uint64_t v,
                            ThreadId tid,
                            Nanos ns) {
  typename P::Context;
  typename P::Word;
  typename P::Domain;

  // Word construction: Word(Domain&, initial, Placement). Checked where the
  // word is built (constructors differ in default-argument shape).

  // Atomic memory operations on platform words.
  { P::load(ctx, cw) }          -> std::same_as<std::uint64_t>;
  { P::load_relaxed(ctx, cw) }  -> std::same_as<std::uint64_t>;
  { P::store(ctx, w, v) };
  { P::fetch_or(ctx, w, v) }    -> std::same_as<std::uint64_t>;
  { P::fetch_and(ctx, w, v) }   -> std::same_as<std::uint64_t>;
  { P::fetch_add(ctx, w, v) }   -> std::same_as<std::uint64_t>;
  { P::exchange(ctx, w, v) }    -> std::same_as<std::uint64_t>;
  { P::cas(ctx, w, v, v) }      -> std::same_as<bool>;

  // Delay / progress primitives.
  { P::pause(ctx) };
  { P::delay(ctx, ns) };
  { P::compute(ctx, ns) };
  { P::yield(ctx) };

  // Blocking: park the caller / wake a registered thread by id.
  { P::block(ctx) };
  { P::block_for(ctx, ns) }     -> std::same_as<bool>;
  { P::unblock(ctx, tid) };

  // Time.
  { P::now(ctx) }               -> std::same_as<Nanos>;

  // NUMA placement of the calling thread (kAnyNode when not modelled).
  { P::home_node(ctx) }         -> std::same_as<int>;

  // Identity.
  { ctx.self() }                -> std::same_as<ThreadId>;
  { ctx.priority() }            -> std::same_as<Priority>;
};
// clang-format on

/// True for platforms whose threads run with real hardware concurrency and
/// whose word operations are *not* part of a calibrated cost model (today:
/// the native platform). Lock algorithms use this to enable contention
/// optimisations — the lock-free arrival stack, meta-guard backoff, and
/// yield-escalating spin waits — that would otherwise perturb the
/// simulator's calibrated access counts (EXPERIMENTS.md Tables 2-5 must
/// stay byte-identical) or fight a cooperative scheduler.
template <typename P>
inline constexpr bool kRealConcurrency = [] {
  if constexpr (requires { P::kRealConcurrency; }) {
    return static_cast<bool>(P::kRealConcurrency);
  } else {
    return false;
  }
}();

}  // namespace relock
