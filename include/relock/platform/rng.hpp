// Deterministic pseudo-random number generation for workloads and tests.
//
// We deliberately avoid <random>'s engines for the hot paths: xoshiro256**
// is faster, has a tiny state, and its output is reproducible across
// standard-library implementations (std::mt19937 is reproducible too, but
// the *distributions* are not; we implement our own in workload/).
#pragma once

#include <array>
#include <cstdint>

namespace relock {

/// SplitMix64: used to seed xoshiro from a single 64-bit value.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** by Blackman & Vigna. Public-domain algorithm.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853C49E6748FEA9BULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// UniformRandomBitGenerator interface so <algorithm> shuffles work.
  constexpr std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  /// Uniform double in [0, 1). 53 mantissa bits.
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). Lemire's unbiased multiply-shift would be
  /// overkill here; modulo bias is negligible for bound << 2^64 but we use
  /// the widening-multiply reduction anyway since it is also faster.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    const auto wide = static_cast<unsigned __int128>(next()) * bound;
    return static_cast<std::uint64_t>(wide >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + next_below(hi - lo + 1);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace relock
