// The shared lock-event vocabulary: one enum naming every semantic
// transition a ConfigurableLock can report, consumed by two observers that
// are compiled in independently:
//
//   - the relock-check engine's oracles (platform/chk_hooks.hpp routes the
//     checker subset to Engine::on_event), and
//   - the relock-trace per-thread ring tracer (platform/trace_hooks.hpp
//     routes every kind to the calling thread's ring when RELOCK_TRACE is
//     compiled in).
//
// Keeping one vocabulary is what makes a native trace comparable, event for
// event, with the checker's replayed event log (asserted by
// tests/check/check_trace_test.cpp): the lock emits both streams from the
// same call sites, in the same order.
//
// The first block of enumerators is the checker's oracle vocabulary and its
// values are load-bearing: they appear in serialized event logs. New kinds
// go at the end. The second block is trace-only - the engine accepts and
// ignores them (they describe thread-local progress, not shared-state
// transitions the oracles track).
#pragma once

#include <cstdint>

namespace relock {

/// Semantic lock transitions. Events are bookkeeping, not scheduling
/// points: each is emitted in the same atomic step as the transition it
/// describes, so observer state can never be stale relative to the
/// interleaving being explored (checker) or recorded (tracer).
enum class LockEvent : std::uint8_t {
  // ---- checker oracle vocabulary (relock-check engine state machine) ----
  kRegistered,         ///< waiter published on the arrival stack / a queue
  kGranted,            ///< grant flag set for thread `arg`
  kReleaseFree,        ///< release published the state word free
  kFastReleaseBegin,   ///< fast release passed the Dekker gate
  kFastReleaseEnd,     ///< fast release retired its in-flight count
  kConfigMutateBegin,  ///< configuration operation starts mutating modules
  kConfigMutateEnd,    ///< configuration operation done mutating
  kSchedulerInstalled, ///< new registrations now target a new module
  kThresholdSet,       ///< priority threshold changed to (Priority)arg
  kTimeoutReturn,      ///< conditional acquisition returns false for `arg`
  kBreakerArm,         ///< quiesce breaker count incremented
  kBreakerDisarm,      ///< quiesce breaker count decremented

  // ---- trace-only vocabulary (thread-local progress markers) ----
  kAcquireFast,        ///< uncontended exclusive acquisition (fast path)
  kAcquireSlow,        ///< contended exclusive acquisition completed
  kAcquireShared,      ///< shared (reader) acquisition completed
  kRelease,            ///< unlock entered by the owner / a reader
  kPark,               ///< waiter is about to block on the parker
  kUnpark,             ///< waiter resumed from a block
  kPossess,            ///< attribute class `arg` possessed
  kUnpossess,          ///< attribute class `arg` possession released
};

/// Human-readable event-kind name (failure traces, trace exports).
[[nodiscard]] constexpr const char* lock_event_name(LockEvent e) noexcept {
  switch (e) {
    case LockEvent::kRegistered: return "Registered";
    case LockEvent::kGranted: return "Granted";
    case LockEvent::kReleaseFree: return "ReleaseFree";
    case LockEvent::kFastReleaseBegin: return "FastReleaseBegin";
    case LockEvent::kFastReleaseEnd: return "FastReleaseEnd";
    case LockEvent::kConfigMutateBegin: return "ConfigMutateBegin";
    case LockEvent::kConfigMutateEnd: return "ConfigMutateEnd";
    case LockEvent::kSchedulerInstalled: return "SchedulerInstalled";
    case LockEvent::kThresholdSet: return "ThresholdSet";
    case LockEvent::kTimeoutReturn: return "TimeoutReturn";
    case LockEvent::kBreakerArm: return "BreakerArm";
    case LockEvent::kBreakerDisarm: return "BreakerDisarm";
    case LockEvent::kAcquireFast: return "AcquireFast";
    case LockEvent::kAcquireSlow: return "AcquireSlow";
    case LockEvent::kAcquireShared: return "AcquireShared";
    case LockEvent::kRelease: return "Release";
    case LockEvent::kPark: return "Park";
    case LockEvent::kUnpark: return "Unpark";
    case LockEvent::kPossess: return "Possess";
    case LockEvent::kUnpossess: return "Unpossess";
  }
  return "?";
}

/// True for kinds the relock-check engine's oracles consume; the trace-only
/// kinds after them are ignored by the engine and filtered out when a trace
/// is compared against a checker event log.
[[nodiscard]] constexpr bool is_checker_event(LockEvent e) noexcept {
  return e <= LockEvent::kBreakerDisarm;
}

}  // namespace relock
