// The native platform: lock algorithms instantiated with NativePlatform run
// on real host threads using std::atomic words and Parker-based blocking.
//
// A Domain is the unit of thread registration: every thread that touches a
// lock first registers itself (obtaining a Context). This mirrors the paper's
// Cthreads substrate where threads carry identifiers ("thread-id") that the
// lock's registration module logs. Registration also gives the release path
// a way to wake a specific thread (Parker lookup by ThreadId).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "relock/platform/cacheline.hpp"
#include "relock/platform/clock.hpp"
#include "relock/platform/parker.hpp"
#include "relock/platform/types.hpp"

namespace relock::native {

class Domain;

/// Per-thread execution context. Construct one on each thread that will use
/// locks belonging to `domain`; destruction unregisters the thread.
class Context {
 public:
  Context(Domain& domain, Priority priority = kDefaultPriority);
  ~Context();
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  [[nodiscard]] ThreadId self() const noexcept { return id_; }
  [[nodiscard]] Priority priority() const noexcept { return priority_; }
  void set_priority(Priority p) noexcept { priority_ = p; }
  [[nodiscard]] Domain& domain() noexcept { return *domain_; }
  [[nodiscard]] Parker& parker() noexcept { return parker_; }

 private:
  Domain* domain_;
  ThreadId id_;
  Priority priority_;
  Parker parker_;
};

/// Thread registry. Fixed capacity so that ThreadId -> Parker lookup is a
/// lock-free indexed load (the release path of a blocking lock must not take
/// an allocator or registry mutex).
class Domain {
 public:
  explicit Domain(std::uint32_t max_threads = 1024)
      : slots_(max_threads) {
    free_.reserve(max_threads);
  }
  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  /// Wakes the thread registered as `tid` (no-op token deposit if it is not
  /// currently parked). Mutex-free: the direct-handoff release path signals
  /// its grantee on this edge and must not serialize releasers on a slot
  /// lock. Safe against the target unregistering concurrently: the slot's
  /// in-flight count pins the Parker for the duration of the signal (a
  /// store-then-load Dekker handshake with unregister_thread), and a slot
  /// that already emptied makes this a no-op. That matters because a
  /// releaser publishes the grant word first and signals after - the grantee
  /// can consume the grant without ever parking, return, and tear down its
  /// Context before the (now redundant) wake lands.
  void unpark(ThreadId tid) {
    assert(tid < slots_.size());
    Slot& slot = *slots_[tid];
    slot.inflight.fetch_add(1, std::memory_order_seq_cst);
    if (Parker* p = slot.parker.load(std::memory_order_seq_cst)) {
      p->unpark();
    }
    slot.inflight.fetch_sub(1, std::memory_order_release);
  }

  [[nodiscard]] std::uint32_t capacity() const noexcept {
    return static_cast<std::uint32_t>(slots_.size());
  }

  [[nodiscard]] std::uint32_t registered_count() const noexcept {
    return live_.load(std::memory_order_relaxed);
  }

  /// True when more threads are registered than the host has processors.
  /// Spin policies consult this to give way sooner; approximate by nature
  /// (registration is the best live-thread census the library has).
  [[nodiscard]] bool oversubscribed() const noexcept {
    return live_.load(std::memory_order_relaxed) > hardware_threads();
  }

 private:
  friend class Context;

  [[nodiscard]] static std::uint32_t hardware_threads() noexcept {
    static const std::uint32_t n = [] {
      const unsigned hc = std::thread::hardware_concurrency();
      return hc == 0 ? 1u : static_cast<std::uint32_t>(hc);
    }();
    return n;
  }

  // O(1) id assignment: recycled ids first (keeps ids dense), then the
  // high-water counter for never-used slots. Replaces a linear scan that
  // was O(capacity) per registration under the mutex — quadratic when
  // spawning a large team.
  ThreadId register_thread(Parker& parker) {
    std::lock_guard<std::mutex> lk(mu_);
    ThreadId id;
    if (!free_.empty()) {
      id = free_.back();
      free_.pop_back();
    } else if (next_fresh_ < slots_.size()) {
      id = next_fresh_++;
    } else {
      throw std::length_error("relock: Domain thread capacity exhausted");
    }
    slots_[id]->parker.store(&parker, std::memory_order_release);
    live_.fetch_add(1, std::memory_order_relaxed);
    return id;
  }

  // Publish the empty slot, then wait out in-flight signals: an unpark that
  // read the Parker pointer before the store lands holds the slot pinned
  // via the in-flight count (seq_cst on both sides makes the store/load
  // pairs a Dekker handshake - at least one side sees the other). Once the
  // spin falls through, no signal can reach the Parker and Context
  // destruction is safe.
  void unregister_thread(ThreadId id) {
    std::lock_guard<std::mutex> lk(mu_);
    Slot& slot = *slots_[id];
    slot.parker.store(nullptr, std::memory_order_seq_cst);
    while (slot.inflight.load(std::memory_order_seq_cst) != 0) {
      std::this_thread::yield();
    }
    free_.push_back(id);
    live_.fetch_sub(1, std::memory_order_relaxed);
  }

  // Parker pointer plus the in-flight signal count that pins it against
  // the owning thread's unregistration. Padded so wakes of different
  // threads do not false-share.
  struct Slot {
    std::atomic<Parker*> parker{nullptr};
    std::atomic<std::uint32_t> inflight{0};
  };

  std::mutex mu_;
  std::atomic<std::uint32_t> live_{0};
  ThreadId next_fresh_ = 0;
  std::vector<ThreadId> free_;
  std::vector<CachePadded<Slot>> slots_;
};

inline Context::Context(Domain& domain, Priority priority)
    : domain_(&domain), id_(domain.register_thread(parker_)),
      priority_(priority) {}

inline Context::~Context() { domain_->unregister_thread(id_); }

/// One atomic machine word, padded to its own cache line. The (Domain,
/// Placement) constructor shape is shared with the simulator platform so
/// that lock algorithms can construct words generically; the native platform
/// has no NUMA placement and ignores the hint.
struct Word {
  explicit Word(Domain& /*domain*/, std::uint64_t initial = 0,
                Placement /*placement*/ = Placement::any())
      : v(initial) {}
  Word(const Word&) = delete;
  Word& operator=(const Word&) = delete;

  alignas(kCacheLineSize) std::atomic<std::uint64_t> v;
};

/// NativePlatform: the Platform implementation for real host threads.
/// All atomics use seq_cst-free explicit orders: acquire on reads that
/// observe protected state, release on writes that publish it. Read-modify-
/// writes that acquire a lock use acq_rel.
struct NativePlatform {
  using Context = native::Context;
  using Word = native::Word;
  using Domain = native::Domain;

  /// Real hardware concurrency, no calibrated cost model: lock algorithms
  /// may use contention optimisations (see kRealConcurrency in platform.hpp).
  static constexpr bool kRealConcurrency = true;

  static std::uint64_t load(Context&, const Word& w) noexcept {
    return w.v.load(std::memory_order_acquire);
  }
  static std::uint64_t load_relaxed(Context&, const Word& w) noexcept {
    return w.v.load(std::memory_order_relaxed);
  }
  static void store(Context&, Word& w, std::uint64_t v) noexcept {
    w.v.store(v, std::memory_order_release);
  }
  static std::uint64_t fetch_or(Context&, Word& w, std::uint64_t v) noexcept {
    return w.v.fetch_or(v, std::memory_order_acq_rel);
  }
  static std::uint64_t fetch_and(Context&, Word& w, std::uint64_t v) noexcept {
    return w.v.fetch_and(v, std::memory_order_acq_rel);
  }
  static std::uint64_t fetch_add(Context&, Word& w, std::uint64_t v) noexcept {
    return w.v.fetch_add(v, std::memory_order_acq_rel);
  }
  static std::uint64_t exchange(Context&, Word& w, std::uint64_t v) noexcept {
    return w.v.exchange(v, std::memory_order_acq_rel);
  }
  /// Single-shot compare-and-swap; returns true on success. `expected` is
  /// taken by value: callers that need the observed value reload explicitly,
  /// which keeps the simulator's cost model honest (one access per call).
  static bool cas(Context&, Word& w, std::uint64_t expected,
                  std::uint64_t desired) noexcept {
    return w.v.compare_exchange_strong(expected, desired,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire);
  }

  /// Spin-loop hint to the CPU.
  static void pause(Context&) noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
  }

  /// Busy-waits for `ns` (backoff delays).
  static void delay(Context&, Nanos ns) noexcept { spin_for(ns); }

  /// Performs `ns` worth of "useful work" (workload generators).
  static void compute(Context&, Nanos ns) noexcept { spin_for(ns); }

  /// Politely cedes the processor.
  static void yield(Context&) noexcept { std::this_thread::yield(); }

  /// Parks the calling thread until some thread calls unblock(its id).
  static void block(Context& ctx) { ctx.parker().park(); }

  /// Timed park; returns true iff woken (vs. timed out).
  static bool block_for(Context& ctx, Nanos ns) {
    return ctx.parker().park_for(ns);
  }

  /// Wakes thread `tid` of the same domain.
  static void unblock(Context& ctx, ThreadId tid) { ctx.domain().unpark(tid); }

  /// True when more threads are registered with the domain than the host
  /// has processors (spin policies give way sooner). Extra static beyond
  /// the Platform concept; used only under `if constexpr (kRealConcurrency)`.
  static bool oversubscribed(Context& ctx) noexcept {
    return ctx.domain().oversubscribed();
  }

  /// Monotonic nanoseconds.
  static Nanos now(Context&) noexcept { return monotonic_now(); }

  /// NUMA home node of the calling thread. The native platform does not
  /// model placement; distributed locks fall back to Placement::any().
  static int home_node(Context&) noexcept { return Placement::kAnyNode; }
};

}  // namespace relock::native
