// Monotonic wall-clock helpers for the native platform and benchmarks.
#pragma once

#include <chrono>
#include <cstdint>

#include "relock/platform/types.hpp"

namespace relock {

/// Nanoseconds on the steady clock since an arbitrary epoch.
inline Nanos monotonic_now() noexcept {
  return static_cast<Nanos>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Busy-waits until `deadline` (monotonic ns). Used for precise short delays
/// where sleeping would oversleep by a scheduler quantum.
inline void spin_until(Nanos deadline) noexcept {
  while (monotonic_now() < deadline) {
    // Intentionally empty: the clock read itself throttles the loop.
  }
}

/// Busy-waits for `ns` nanoseconds.
inline void spin_for(Nanos ns) noexcept { spin_until(monotonic_now() + ns); }

/// A tiny stopwatch for measurements.
class Stopwatch {
 public:
  Stopwatch() : start_(monotonic_now()) {}
  void reset() noexcept { start_ = monotonic_now(); }
  [[nodiscard]] Nanos elapsed() const noexcept {
    return monotonic_now() - start_;
  }

 private:
  Nanos start_;
};

}  // namespace relock
