// Parker: the native blocking primitive. One Parker per registered thread.
//
// Semantics are those of a binary semaphore with a sticky token:
//   unpark() deposits a token (idempotent);
//   park() consumes a token if present, otherwise blocks until one arrives;
//   park_for(ns) additionally gives up after a timeout.
// The token makes the unblock-before-block race benign, which is exactly
// what lock release paths need (a releaser may select a waiter that has not
// physically gone to sleep yet).
//
// The token lives in an atomic state word so the common release-side case -
// signalling a waiter that is still spinning, or parking with the token
// already present - is mutex-free: one CAS/exchange. The mutex+cv pair is
// entered only when a thread actually sleeps.
//
// Lifetime: unpark() may touch the mutex after the parked thread has
// consumed the token and returned, so callers must pin the Parker for the
// duration of the call. Domain::unpark does exactly that (per-slot in-flight
// count that unregistration waits out); do not signal a Parker whose owning
// thread may concurrently destroy it through any other channel.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "relock/platform/types.hpp"

namespace relock {

class Parker {
 public:
  Parker() = default;
  Parker(const Parker&) = delete;
  Parker& operator=(const Parker&) = delete;

  /// Blocks until a token is available, then consumes it.
  void park() {
    // Fast path: the token is already here - consume it without the mutex.
    std::uint32_t expected = kToken;
    if (state_.compare_exchange_strong(expected, kEmpty,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      return;
    }
    std::unique_lock<std::mutex> lk(mu_);
    expected = kEmpty;
    if (!state_.compare_exchange_strong(expected, kParked,
                                        std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
      // Token arrived between the fast path and the lock: consume.
      (void)state_.exchange(kEmpty, std::memory_order_acquire);
      return;
    }
    cv_.wait(lk, [&] {
      return state_.load(std::memory_order_relaxed) == kToken;
    });
    (void)state_.exchange(kEmpty, std::memory_order_acquire);
  }

  /// Blocks until a token is available or `ns` elapsed.
  /// Returns true iff a token was consumed (i.e. we were unparked).
  bool park_for(Nanos ns) {
    std::uint32_t expected = kToken;
    if (state_.compare_exchange_strong(expected, kEmpty,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      return true;
    }
    std::unique_lock<std::mutex> lk(mu_);
    expected = kEmpty;
    if (!state_.compare_exchange_strong(expected, kParked,
                                        std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
      (void)state_.exchange(kEmpty, std::memory_order_acquire);
      return true;
    }
    const bool got =
        cv_.wait_for(lk, std::chrono::nanoseconds(ns), [&] {
          return state_.load(std::memory_order_relaxed) == kToken;
        });
    if (got) {
      (void)state_.exchange(kEmpty, std::memory_order_acquire);
      return true;
    }
    // Timed out while advertised as parked: retract the advertisement. A
    // failed CAS means a token landed between the wait expiring and now -
    // consume it and report the wakeup rather than losing the signal.
    expected = kParked;
    if (state_.compare_exchange_strong(expected, kEmpty,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      return false;
    }
    (void)state_.exchange(kEmpty, std::memory_order_acquire);
    return true;
  }

  /// Deposits a token; wakes the owning thread iff it is actually parked.
  /// Signalling a spinning (or absent) waiter is a single exchange. The
  /// notify runs under the mutex: a sleeping parker cannot re-acquire it
  /// (and so cannot return) until the signaler has fully left the condition
  /// variable - see the lifetime note in the header comment.
  void unpark() {
    const std::uint32_t prev =
        state_.exchange(kToken, std::memory_order_release);
    if (prev == kParked) {
      std::lock_guard<std::mutex> lk(mu_);
      cv_.notify_one();
    }
  }

 private:
  static constexpr std::uint32_t kEmpty = 0;   ///< no token, nobody asleep
  static constexpr std::uint32_t kToken = 1;   ///< wakeup deposited
  static constexpr std::uint32_t kParked = 2;  ///< owner sleeping on cv_

  std::atomic<std::uint32_t> state_{kEmpty};
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace relock
