// Parker: the native blocking primitive. One Parker per registered thread.
//
// Semantics are those of a binary semaphore with a sticky token:
//   unpark() deposits a token (idempotent);
//   park() consumes a token if present, otherwise blocks until one arrives;
//   park_for(ns) additionally gives up after a timeout.
// The token makes the unblock-before-block race benign, which is exactly
// what lock release paths need (a releaser may select a waiter that has not
// physically gone to sleep yet).
#pragma once

#include <condition_variable>
#include <mutex>

#include "relock/platform/types.hpp"

namespace relock {

class Parker {
 public:
  Parker() = default;
  Parker(const Parker&) = delete;
  Parker& operator=(const Parker&) = delete;

  /// Blocks until a token is available, then consumes it.
  void park() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return token_; });
    token_ = false;
  }

  /// Blocks until a token is available or `ns` elapsed.
  /// Returns true iff a token was consumed (i.e. we were unparked).
  bool park_for(Nanos ns) {
    std::unique_lock<std::mutex> lk(mu_);
    const bool got = cv_.wait_for(lk, std::chrono::nanoseconds(ns),
                                  [&] { return token_; });
    if (got) token_ = false;
    return got;
  }

  /// Deposits a token and wakes the parked thread if any. The notify runs
  /// under the mutex: a woken parker cannot re-acquire it (and so cannot
  /// return and destroy this Parker) until the signaler has fully left the
  /// condition variable - destruction right after park() returns is safe.
  /// Linux wait-morphing makes the held-lock notify free of extra wakeups.
  void unpark() {
    std::lock_guard<std::mutex> lk(mu_);
    token_ = true;
    cv_.notify_one();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool token_ = false;
};

}  // namespace relock
