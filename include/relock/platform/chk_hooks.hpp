// Yield-point instrumentation hooks for the relock-check model checker.
//
// Lock algorithms call chk_point / chk_event / chk_scratch at every shared-
// memory transition that does NOT already go through a platform Word
// operation: the configuration-quiescence epoch counters, the next_grant_
// pre-selection cache, the shared grant scratch, the arrival-link publish
// window, and the seqlock attribute slots all live in host-side atomics, so
// without these hooks a controlled scheduler could not interleave threads
// between them.
//
// On ordinary platforms (native, sim, vthreads) none of the hook statics
// exist and every call compiles to nothing - the `if constexpr (requires
// ...)` test is resolved at template instantiation time, so native builds
// carry zero overhead, not even a branch. The check platform
// (include/relock/check/platform.hpp) defines the statics and turns each
// call into a scheduling point of the controlled scheduler.
#pragma once

#include <cstdint>

#include "relock/platform/lock_event.hpp"

namespace relock {

/// The checker consumes the shared lock-event vocabulary (the tracer is the
/// other consumer; see platform/lock_event.hpp). The historical name is
/// kept: "ChkEvent" at a call site signals the event feeds an oracle.
using ChkEvent = LockEvent;

/// True exactly on the check platform - the only platform defining the
/// hook statics. For the rare cases where instrumentation alone is not
/// enough and behavior must differ (e.g. destructors that would rethrow
/// the checker's schedule-abort exception mid-unwind).
template <typename P>
inline constexpr bool kCheckedPlatform =
    requires(typename P::Context& ctx) { P::chk_point(ctx, ""); };

/// A scheduling point: under the checker the calling model thread may be
/// preempted here. `tag` names the transition in failure traces.
template <typename P>
inline void chk_point(typename P::Context& ctx, const char* tag) {
  if constexpr (requires { P::chk_point(ctx, tag); }) {
    P::chk_point(ctx, tag);
  } else {
    (void)ctx;
    (void)tag;
  }
}

/// An oracle event (see ChkEvent). Not a scheduling point.
template <typename P>
inline void chk_event(typename P::Context& ctx, ChkEvent e,
                      std::uint64_t arg = 0) {
  if constexpr (requires { P::chk_event(ctx, e, arg); }) {
    P::chk_event(ctx, e, arg);
  } else {
    (void)ctx;
    (void)e;
    (void)arg;
  }
}

/// A scheduling point inside context-free shared structures (GrantBatch):
/// the grant scratch is mutated by whichever thread owns the release module,
/// with no Context parameter in scope. The check platform resolves the
/// current model thread through the engine; other platforms compile this
/// out.
///
/// `begin` marks a clear() - the start of a new scratch session owned by
/// the calling thread. Every other mutation must come from the session
/// owner: two releasers interleaving scratch sessions is exactly the shared-
/// scratch race the quiescence epoch exists to prevent, and the checker
/// reports it as an oracle violation.
template <typename P>
inline void chk_scratch(bool begin) {
  if constexpr (requires { P::chk_scratch(begin); }) {
    P::chk_scratch(begin);
  } else {
    (void)begin;
  }
}

}  // namespace relock
