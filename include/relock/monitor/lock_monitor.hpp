// The lock monitor module (paper section 3.2): a lightweight, always-safe
// statistics collector attached to a lock object. The information it gathers
// feeds the internal reconfiguration policy and/or an external agent (the
// adaptation policies in relock/adapt) that decides on new configurations.
//
// Counters use relaxed atomics: they are monotone event counts whose
// cross-thread ordering does not matter, and the collection path must not
// perturb the lock it observes. Counters on the lock's hot edges (acquire,
// release, handoff, spin probe, block, wakeup) are additionally sharded
// into cache-padded per-thread slots: a single shared counter line bouncing
// between a releaser and its spinning successor would re-serialize the very
// transfer edge the direct-handoff release keeps to a single store.
// `snapshot()` merges the shards.
//
// Hot-shard increments are plain load+store pairs on relaxed atomics, not
// read-modify-writes: a lock-prefixed RMW costs a sizable fraction of an
// entire uncontended lock+unlock, and three of them per operation is where
// an "observability tax" turns into a throughput regression. The trade is
// that when more threads than shards use one lock, two threads sharing a
// slot can occasionally overwrite each other's increment. Lost counts are
// rare, bounded by one per interleaving, and harmless to the consumer: the
// adaptation policies act on ratios and trends of monotone counters, never
// on exact totals. Cold counters (timeouts, reconfigurations) stay exact
// RMWs, and everything is exact on the single-host-thread simulator.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>

#include "relock/platform/cacheline.hpp"
#include "relock/platform/types.hpp"

namespace relock {

namespace monitor_detail {
/// Process-wide monitor shard slot of the calling thread, assigned round-
/// robin on first use. Constant-initialized (no per-access TLS init guard:
/// these reads sit on the lock's hottest edges). kUnassigned is the
/// sentinel; LockMonitor resolves it lazily.
inline constexpr std::size_t kUnassignedShard = ~std::size_t{0};
inline thread_local std::size_t tls_shard_index = kUnassignedShard;
}  // namespace monitor_detail

/// Snapshot of a lock's monitored state (plain values, safe to copy around).
struct LockStats {
  std::uint64_t acquisitions = 0;        ///< successful lock/lock_shared
  std::uint64_t contended_acquisitions = 0;  ///< had to enter the wait path
  std::uint64_t releases = 0;
  std::uint64_t handoffs = 0;            ///< grants made directly to a waiter
  std::uint64_t blocks = 0;              ///< times a waiter went to sleep
  std::uint64_t wakeups = 0;             ///< sleeping waiters woken by grants
  std::uint64_t timeouts = 0;            ///< conditional acquisitions expired
  std::uint64_t spin_probes = 0;         ///< individual waiting probes
  std::uint64_t reconfigurations = 0;    ///< configure() calls of any kind
  std::uint64_t scheduler_changes = 0;
  std::uint64_t shared_acquisitions = 0;

  /// Operations that carried a duration measurement. Event counters above
  /// are exact; the duration statistics below are computed over these
  /// samples only (real-concurrency platforms time a 1-in-N sample of
  /// operations because a clock read costs as much as an uncontended
  /// lock+unlock; the simulator times every operation, so there
  /// timed == counted).
  std::uint64_t timed_waits = 0;
  std::uint64_t timed_holds = 0;

  Nanos total_wait_ns = 0;  ///< summed registration -> grant times (sampled)
  Nanos total_hold_ns = 0;  ///< summed acquire -> release times (sampled)
  Nanos max_wait_ns = 0;
  Nanos max_hold_ns = 0;

  /// log2 histograms: bucket i counts durations in [2^i, 2^(i+1)) ns.
  static constexpr std::size_t kBuckets = 32;
  std::array<std::uint64_t, kBuckets> wait_histogram{};
  std::array<std::uint64_t, kBuckets> hold_histogram{};

  /// Number of reset() calls the monitor had absorbed when this snapshot
  /// was taken. Consumers differencing two snapshots (delta_between) use it
  /// to detect an intervening reset: counters in different generations are
  /// not comparable.
  std::uint64_t reset_generation = 0;

  [[nodiscard]] double mean_wait_ns() const {
    return timed_waits == 0 ? 0.0
                            : static_cast<double>(total_wait_ns) /
                                  static_cast<double>(timed_waits);
  }
  [[nodiscard]] double mean_hold_ns() const {
    return timed_holds == 0 ? 0.0
                            : static_cast<double>(total_hold_ns) /
                                  static_cast<double>(timed_holds);
  }
  [[nodiscard]] double contention_ratio() const {
    return acquisitions == 0
               ? 0.0
               : static_cast<double>(contended_acquisitions) /
                     static_cast<double>(acquisitions);
  }
};

/// Live monitor attached to a lock. All mutators are safe to call
/// concurrently; `snapshot()` is approximately consistent (counters may be
/// skewed by in-flight operations, which is acceptable for adaptation).
class LockMonitor {
 public:
  LockMonitor() = default;

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  void on_acquire(bool contended) noexcept {
    if (!enabled()) return;
    HotShard& s = shard();
    inc(s.acquisitions);
    if (contended) inc(s.contended);
  }
  void on_shared_acquire() noexcept {
    if (!enabled()) return;
    shared_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    inc(shard().acquisitions);
  }
  void on_wait_complete(Nanos wait_ns) noexcept {
    if (!enabled()) return;
    HotShard& s = shard();
    inc(s.timed_waits);
    add(s.total_wait, wait_ns);
    update_max(max_wait_, wait_ns);
    bump(s.wait_hist, wait_ns);
  }
  void on_release(Nanos hold_ns) noexcept {
    if (!enabled()) return;
    HotShard& s = shard();
    inc(s.releases);
    inc(s.timed_holds);
    add(s.total_hold, hold_ns);
    update_max(max_hold_, hold_ns);
    bump(s.hold_hist, hold_ns);
  }
  /// Release counted without a hold-time sample (the acquire side elided
  /// its clock read; duration statistics stay per-sample).
  void on_release() noexcept {
    if (enabled()) inc(shard().releases);
  }
  /// True when this operation should carry clock reads: every `kPeriod`th
  /// per thread, the first included. Real-concurrency lock paths consult
  /// this before timestamping - a monotonic clock read costs on the order
  /// of an entire uncontended lock+unlock, so timing every operation would
  /// triple the hot path. Event counters are never sampled.
  [[nodiscard]] static bool timing_sample() noexcept {
    constexpr std::uint32_t kPeriod = 64;  // power of two
    thread_local std::uint32_t n = 0;
    return (n++ & (kPeriod - 1)) == 0;
  }
  void on_handoff() noexcept {
    if (enabled()) inc(shard().handoffs);
  }
  void on_block() noexcept {
    if (enabled()) inc(shard().blocks);
  }
  void on_wakeup() noexcept {
    if (enabled()) inc(shard().wakeups);
  }
  void on_timeout() noexcept { bump_if(timeouts_); }
  void on_spin_probe() noexcept {
    if (enabled()) inc(shard().spin_probes);
  }
  void on_reconfiguration(bool scheduler_change) noexcept {
    bump_if(reconfigurations_);
    if (scheduler_change) bump_if(scheduler_changes_);
  }

  /// Merges the per-thread shards into one consistent-enough view (in-
  /// flight increments may be missed; monotone counters never go back) and
  /// subtracts the reset baseline. Every reported counter covers the window
  /// since the last reset() and can only grow within one reset generation.
  [[nodiscard]] LockStats snapshot() const {
    LockStats s;
    snapshot_into(s);
    return s;
  }

  /// snapshot() into a caller-owned buffer: the shard merge and baseline
  /// subtraction run in place, so a periodic consumer (the adaptation
  /// engine polling hundreds of locks per tick) pays zero allocations and
  /// no LockStats temporaries - just the merge loop over the shards.
  void snapshot_into(LockStats& out) const {
    BaselineGuard g(baseline_mu_);
    raw_snapshot_into(out);
    subtract_in_place(out, baseline_);
    out.reset_generation = reset_generation_;
  }

  /// Starts a new statistics window. The live counters are NEVER written -
  /// concurrent sharded increments are plain load+store pairs, so zeroing a
  /// slot under them would race and could resurrect pre-reset counts or
  /// tear in-flight ones. Instead the current raw totals become the
  /// baseline that snapshot() subtracts: raw counters are monotone, so no
  /// post-reset snapshot can ever report a value below a pre-reset one
  /// going negative (the classic adapt-policy "negative delta" bug).
  /// Serialized against snapshot() by a spinlock no increment path touches.
  void reset() noexcept {
    BaselineGuard g(baseline_mu_);
    baseline_ = raw_snapshot();
    // Maxima are not differences; they restart at zero. An update_max
    // racing this store may land a pre-reset sample in the new window -
    // harmless, it is a real duration observation.
    max_wait_.store(0, std::memory_order_relaxed);
    max_hold_.store(0, std::memory_order_relaxed);
    baseline_.max_wait_ns = 0;
    baseline_.max_hold_ns = 0;
    ++reset_generation_;
  }

  static std::size_t bucket_of(Nanos ns) noexcept {
    if (ns == 0) return 0;
    const int bit = 63 - __builtin_clzll(ns);
    return std::min<std::size_t>(static_cast<std::size_t>(bit),
                                 LockStats::kBuckets - 1);
  }

 private:
  using Counter = std::atomic<std::uint64_t>;

  /// Spinlock guard for the reset baseline. Only snapshot() and reset()
  /// take it - both cold, drain-side paths; no increment ever touches it.
  class BaselineGuard {
   public:
    explicit BaselineGuard(std::atomic_flag& f) : f_(f) {
      while (f_.test_and_set(std::memory_order_acquire)) {
      }
    }
    ~BaselineGuard() { f_.clear(std::memory_order_release); }
    BaselineGuard(const BaselineGuard&) = delete;
    BaselineGuard& operator=(const BaselineGuard&) = delete;

   private:
    std::atomic_flag& f_;
  };

  /// Merged view of the live counters since construction (no baseline).
  [[nodiscard]] LockStats raw_snapshot() const {
    LockStats s;
    raw_snapshot_into(s);
    return s;
  }
  void raw_snapshot_into(LockStats& s) const {
    s = LockStats{};
    s.timeouts = timeouts_.load(std::memory_order_relaxed);
    s.reconfigurations = reconfigurations_.load(std::memory_order_relaxed);
    s.scheduler_changes = scheduler_changes_.load(std::memory_order_relaxed);
    s.shared_acquisitions =
        shared_acquisitions_.load(std::memory_order_relaxed);
    s.max_wait_ns = max_wait_.load(std::memory_order_relaxed);
    s.max_hold_ns = max_hold_.load(std::memory_order_relaxed);
    for (const CachePadded<HotShard>& padded : shards_) {
      const HotShard& h = *padded;
      s.acquisitions += h.acquisitions.load(std::memory_order_relaxed);
      s.contended_acquisitions += h.contended.load(std::memory_order_relaxed);
      s.releases += h.releases.load(std::memory_order_relaxed);
      s.timed_waits += h.timed_waits.load(std::memory_order_relaxed);
      s.timed_holds += h.timed_holds.load(std::memory_order_relaxed);
      s.handoffs += h.handoffs.load(std::memory_order_relaxed);
      s.blocks += h.blocks.load(std::memory_order_relaxed);
      s.wakeups += h.wakeups.load(std::memory_order_relaxed);
      s.spin_probes += h.spin_probes.load(std::memory_order_relaxed);
      s.total_wait_ns += h.total_wait.load(std::memory_order_relaxed);
      s.total_hold_ns += h.total_hold.load(std::memory_order_relaxed);
      for (std::size_t i = 0; i < LockStats::kBuckets; ++i) {
        s.wait_histogram[i] +=
            h.wait_hist[i].load(std::memory_order_relaxed);
        s.hold_histogram[i] +=
            h.hold_hist[i].load(std::memory_order_relaxed);
      }
    }
  }

  /// raw >= base field-wise whenever both were taken under baseline_mu_
  /// (raw counters are monotone); the clamp is belt-and-suspenders against
  /// the sharded lost-increment corner.
  static std::uint64_t sub_clamped(std::uint64_t raw,
                                   std::uint64_t base) noexcept {
    return raw >= base ? raw - base : 0;
  }
  /// `s` holds raw totals on entry, baseline-relative ones on return.
  static void subtract_in_place(LockStats& s, const LockStats& base) {
    s.acquisitions = sub_clamped(s.acquisitions, base.acquisitions);
    s.contended_acquisitions = sub_clamped(s.contended_acquisitions,
                                           base.contended_acquisitions);
    s.releases = sub_clamped(s.releases, base.releases);
    s.handoffs = sub_clamped(s.handoffs, base.handoffs);
    s.blocks = sub_clamped(s.blocks, base.blocks);
    s.wakeups = sub_clamped(s.wakeups, base.wakeups);
    s.timeouts = sub_clamped(s.timeouts, base.timeouts);
    s.spin_probes = sub_clamped(s.spin_probes, base.spin_probes);
    s.reconfigurations =
        sub_clamped(s.reconfigurations, base.reconfigurations);
    s.scheduler_changes =
        sub_clamped(s.scheduler_changes, base.scheduler_changes);
    s.shared_acquisitions =
        sub_clamped(s.shared_acquisitions, base.shared_acquisitions);
    s.timed_waits = sub_clamped(s.timed_waits, base.timed_waits);
    s.timed_holds = sub_clamped(s.timed_holds, base.timed_holds);
    s.total_wait_ns = sub_clamped(s.total_wait_ns, base.total_wait_ns);
    s.total_hold_ns = sub_clamped(s.total_hold_ns, base.total_hold_ns);
    // Maxima restart at reset (see above): the raw values stand.
    for (std::size_t i = 0; i < LockStats::kBuckets; ++i) {
      s.wait_histogram[i] =
          sub_clamped(s.wait_histogram[i], base.wait_histogram[i]);
      s.hold_histogram[i] =
          sub_clamped(s.hold_histogram[i], base.hold_histogram[i]);
    }
  }

  /// Hot-edge counters, one cache-padded copy per shard, bumped with plain
  /// load+store increments (see the header comment for the lost-increment
  /// trade).
  struct HotShard {
    Counter acquisitions{0}, contended{0};
    Counter releases{0}, handoffs{0}, blocks{0}, wakeups{0}, spin_probes{0};
    Counter timed_waits{0}, timed_holds{0};
    Counter total_wait{0}, total_hold{0};
    std::array<Counter, LockStats::kBuckets> wait_hist{};
    std::array<Counter, LockStats::kBuckets> hold_hist{};
  };

  static constexpr std::size_t kShards = 16;

  /// Process-wide round-robin shard assignment, fixed per thread on first
  /// use. Threads outnumbering kShards share slots (still correct - the
  /// slot counters are atomic - just with some line sharing and the rare
  /// lost increment described above).
  [[nodiscard]] static std::size_t shard_index() noexcept {
    std::size_t idx = monitor_detail::tls_shard_index;
    if (idx == monitor_detail::kUnassignedShard) [[unlikely]] {
      static std::atomic<std::size_t> next{0};
      idx = next.fetch_add(1, std::memory_order_relaxed) % kShards;
      monitor_detail::tls_shard_index = idx;
    }
    return idx;
  }
  [[nodiscard]] HotShard& shard() noexcept { return *shards_[shard_index()]; }

  /// Plain increment on a relaxed atomic: data-race free, but two threads
  /// sharing a shard slot can overwrite each other's bump (rare, harmless -
  /// see the header comment). An order of magnitude cheaper than a
  /// lock-prefixed RMW on the hot path.
  static void add(Counter& c, std::uint64_t v) noexcept {
    c.store(c.load(std::memory_order_relaxed) + v,
            std::memory_order_relaxed);
  }
  static void inc(Counter& c) noexcept { add(c, 1); }

  void bump_if(Counter& c) noexcept {
    if (enabled()) c.fetch_add(1, std::memory_order_relaxed);
  }
  static void bump(std::array<Counter, LockStats::kBuckets>& hist,
                   Nanos ns) noexcept {
    inc(hist[bucket_of(ns)]);
  }
  static void update_max(Counter& slot, Nanos v) noexcept {
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v > cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<bool> enabled_{false};
  // Cold counters stay shared and exact (RMW increments).
  Counter timeouts_{0};
  Counter reconfigurations_{0}, scheduler_changes_{0};
  Counter shared_acquisitions_{0};
  Counter max_wait_{0}, max_hold_{0};
  std::array<CachePadded<HotShard>, kShards> shards_{};

  // Reset state: raw totals captured at the last reset(), subtracted by
  // snapshot(). Guarded by baseline_mu_; increments never touch any of it.
  mutable std::atomic_flag baseline_mu_ = ATOMIC_FLAG_INIT;
  LockStats baseline_{};
  std::uint64_t reset_generation_ = 0;
};

}  // namespace relock
