// The lock monitor module (paper section 3.2): a lightweight, always-safe
// statistics collector attached to a lock object. The information it gathers
// feeds the internal reconfiguration policy and/or an external agent (the
// adaptation policies in relock/adapt) that decides on new configurations.
//
// Counters use relaxed atomics: they are monotone event counts whose
// cross-thread ordering does not matter, and the collection path must not
// perturb the lock it observes.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>

#include "relock/platform/types.hpp"

namespace relock {

/// Snapshot of a lock's monitored state (plain values, safe to copy around).
struct LockStats {
  std::uint64_t acquisitions = 0;        ///< successful lock/lock_shared
  std::uint64_t contended_acquisitions = 0;  ///< had to enter the wait path
  std::uint64_t releases = 0;
  std::uint64_t handoffs = 0;            ///< grants made directly to a waiter
  std::uint64_t blocks = 0;              ///< times a waiter went to sleep
  std::uint64_t wakeups = 0;             ///< sleeping waiters woken by grants
  std::uint64_t timeouts = 0;            ///< conditional acquisitions expired
  std::uint64_t spin_probes = 0;         ///< individual waiting probes
  std::uint64_t reconfigurations = 0;    ///< configure() calls of any kind
  std::uint64_t scheduler_changes = 0;
  std::uint64_t shared_acquisitions = 0;

  Nanos total_wait_ns = 0;  ///< summed registration -> grant times
  Nanos total_hold_ns = 0;  ///< summed acquire -> release times
  Nanos max_wait_ns = 0;
  Nanos max_hold_ns = 0;

  /// log2 histograms: bucket i counts durations in [2^i, 2^(i+1)) ns.
  static constexpr std::size_t kBuckets = 32;
  std::array<std::uint64_t, kBuckets> wait_histogram{};
  std::array<std::uint64_t, kBuckets> hold_histogram{};

  [[nodiscard]] double mean_wait_ns() const {
    return contended_acquisitions == 0
               ? 0.0
               : static_cast<double>(total_wait_ns) /
                     static_cast<double>(contended_acquisitions);
  }
  [[nodiscard]] double mean_hold_ns() const {
    return releases == 0 ? 0.0
                         : static_cast<double>(total_hold_ns) /
                               static_cast<double>(releases);
  }
  [[nodiscard]] double contention_ratio() const {
    return acquisitions == 0
               ? 0.0
               : static_cast<double>(contended_acquisitions) /
                     static_cast<double>(acquisitions);
  }
};

/// Live monitor attached to a lock. All mutators are safe to call
/// concurrently; `snapshot()` is approximately consistent (counters may be
/// skewed by in-flight operations, which is acceptable for adaptation).
class LockMonitor {
 public:
  LockMonitor() = default;

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  void on_acquire(bool contended) noexcept {
    if (!enabled()) return;
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
    if (contended) {
      contended_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  void on_shared_acquire() noexcept {
    if (!enabled()) return;
    shared_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_wait_complete(Nanos wait_ns) noexcept {
    if (!enabled()) return;
    total_wait_.fetch_add(wait_ns, std::memory_order_relaxed);
    update_max(max_wait_, wait_ns);
    bump(wait_hist_, wait_ns);
  }
  void on_release(Nanos hold_ns) noexcept {
    if (!enabled()) return;
    releases_.fetch_add(1, std::memory_order_relaxed);
    total_hold_.fetch_add(hold_ns, std::memory_order_relaxed);
    update_max(max_hold_, hold_ns);
    bump(hold_hist_, hold_ns);
  }
  void on_handoff() noexcept { bump_if(handoffs_); }
  void on_block() noexcept { bump_if(blocks_); }
  void on_wakeup() noexcept { bump_if(wakeups_); }
  void on_timeout() noexcept { bump_if(timeouts_); }
  void on_spin_probe() noexcept { bump_if(spin_probes_); }
  void on_reconfiguration(bool scheduler_change) noexcept {
    bump_if(reconfigurations_);
    if (scheduler_change) bump_if(scheduler_changes_);
  }

  [[nodiscard]] LockStats snapshot() const {
    LockStats s;
    s.acquisitions = acquisitions_.load(std::memory_order_relaxed);
    s.contended_acquisitions = contended_.load(std::memory_order_relaxed);
    s.releases = releases_.load(std::memory_order_relaxed);
    s.handoffs = handoffs_.load(std::memory_order_relaxed);
    s.blocks = blocks_.load(std::memory_order_relaxed);
    s.wakeups = wakeups_.load(std::memory_order_relaxed);
    s.timeouts = timeouts_.load(std::memory_order_relaxed);
    s.spin_probes = spin_probes_.load(std::memory_order_relaxed);
    s.reconfigurations = reconfigurations_.load(std::memory_order_relaxed);
    s.scheduler_changes = scheduler_changes_.load(std::memory_order_relaxed);
    s.shared_acquisitions =
        shared_acquisitions_.load(std::memory_order_relaxed);
    s.total_wait_ns = total_wait_.load(std::memory_order_relaxed);
    s.total_hold_ns = total_hold_.load(std::memory_order_relaxed);
    s.max_wait_ns = max_wait_.load(std::memory_order_relaxed);
    s.max_hold_ns = max_hold_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < LockStats::kBuckets; ++i) {
      s.wait_histogram[i] = wait_hist_[i].load(std::memory_order_relaxed);
      s.hold_histogram[i] = hold_hist_[i].load(std::memory_order_relaxed);
    }
    return s;
  }

  void reset() noexcept {
    acquisitions_ = 0; contended_ = 0; releases_ = 0; handoffs_ = 0;
    blocks_ = 0; wakeups_ = 0; timeouts_ = 0; spin_probes_ = 0;
    reconfigurations_ = 0; scheduler_changes_ = 0; shared_acquisitions_ = 0;
    total_wait_ = 0; total_hold_ = 0; max_wait_ = 0; max_hold_ = 0;
    for (auto& b : wait_hist_) b = 0;
    for (auto& b : hold_hist_) b = 0;
  }

  static std::size_t bucket_of(Nanos ns) noexcept {
    if (ns == 0) return 0;
    const int bit = 63 - __builtin_clzll(ns);
    return std::min<std::size_t>(static_cast<std::size_t>(bit),
                                 LockStats::kBuckets - 1);
  }

 private:
  using Counter = std::atomic<std::uint64_t>;

  void bump_if(Counter& c) noexcept {
    if (enabled()) c.fetch_add(1, std::memory_order_relaxed);
  }
  void bump(std::array<Counter, LockStats::kBuckets>& hist,
            Nanos ns) noexcept {
    hist[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
  }
  static void update_max(Counter& slot, Nanos v) noexcept {
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v > cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<bool> enabled_{false};
  Counter acquisitions_{0}, contended_{0}, releases_{0}, handoffs_{0};
  Counter blocks_{0}, wakeups_{0}, timeouts_{0}, spin_probes_{0};
  Counter reconfigurations_{0}, scheduler_changes_{0};
  Counter shared_acquisitions_{0};
  Counter total_wait_{0}, total_hold_{0}, max_wait_{0}, max_hold_{0};
  std::array<Counter, LockStats::kBuckets> wait_hist_{};
  std::array<Counter, LockStats::kBuckets> hold_hist_{};
};

}  // namespace relock
