// Human-readable rendering of LockStats: a summary block plus ASCII
// log2 histograms of wait and hold times, and the file-emission path for
// relock-trace captures (write_chrome_trace). Used by examples and ad-hoc
// diagnostics; benches print paper-formatted tables instead.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>

#include "relock/monitor/lock_monitor.hpp"
#include "relock/trace/chrome_export.hpp"

namespace relock {

/// Renders one log2 histogram (bucket i covers [2^i, 2^(i+1)) ns).
inline std::string format_histogram(
    const std::array<std::uint64_t, LockStats::kBuckets>& hist,
    const char* title, std::size_t bar_width = 40) {
  std::string out;
  out += title;
  out += "\n";
  std::uint64_t max = 0;
  std::size_t lo = LockStats::kBuckets, hi = 0;
  for (std::size_t i = 0; i < LockStats::kBuckets; ++i) {
    if (hist[i] != 0) {
      max = std::max(max, hist[i]);
      lo = std::min(lo, i);
      hi = std::max(hi, i);
    }
  }
  if (max == 0) {
    out += "  (empty)\n";
    return out;
  }
  char line[160];
  for (std::size_t i = lo; i <= hi; ++i) {
    const auto bar = static_cast<std::size_t>(
        hist[i] * bar_width / max);
    std::snprintf(line, sizeof(line), "  2^%02zu ns |%-*s| %llu\n", i,
                  static_cast<int>(bar_width),
                  std::string(bar, '#').c_str(),
                  static_cast<unsigned long long>(hist[i]));
    out += line;
  }
  return out;
}

/// Renders the full statistics block.
inline std::string format_stats(const LockStats& s) {
  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "acquisitions: %llu (%llu contended, %.1f%%; %llu shared)\n"
                "releases: %llu  handoffs: %llu  timeouts: %llu\n"
                "blocks: %llu  wakeups: %llu  spin probes: %llu\n"
                "reconfigurations: %llu (%llu scheduler changes)\n"
                "wait: mean %.0f ns, max %llu ns\n"
                "hold: mean %.0f ns, max %llu ns\n",
                static_cast<unsigned long long>(s.acquisitions),
                static_cast<unsigned long long>(s.contended_acquisitions),
                100.0 * s.contention_ratio(),
                static_cast<unsigned long long>(s.shared_acquisitions),
                static_cast<unsigned long long>(s.releases),
                static_cast<unsigned long long>(s.handoffs),
                static_cast<unsigned long long>(s.timeouts),
                static_cast<unsigned long long>(s.blocks),
                static_cast<unsigned long long>(s.wakeups),
                static_cast<unsigned long long>(s.spin_probes),
                static_cast<unsigned long long>(s.reconfigurations),
                static_cast<unsigned long long>(s.scheduler_changes),
                s.mean_wait_ns(),
                static_cast<unsigned long long>(s.max_wait_ns),
                s.mean_hold_ns(),
                static_cast<unsigned long long>(s.max_hold_ns));
  out += buf;
  out += format_histogram(s.wait_histogram, "wait-time histogram:");
  out += format_histogram(s.hold_histogram, "hold-time histogram:");
  return out;
}

/// Drains every relock-trace ring and writes the capture to `path` as
/// Chrome Trace Event JSON (load in chrome://tracing or ui.perfetto.dev).
/// Returns the number of events written, or -1 on I/O error. Works in any
/// build: without RELOCK_TRACE the rings are empty and the file holds an
/// empty (but valid) trace. `dropped_out`, if given, receives the count of
/// records lost to ring overflow during the capture.
inline long write_chrome_trace(const std::string& path,
                               std::uint64_t* dropped_out = nullptr,
                               const char* process_name = "relock") {
  trace::TraceCollector collector;
  const std::vector<trace::Event> events = collector.collect();
  if (dropped_out != nullptr) *dropped_out = collector.dropped();
  if (!trace::chrome_export(events, path, process_name)) return -1;
  return static_cast<long>(events.size());
}

}  // namespace relock
