// Drop-in native mutex types: ConfigurableLock wrapped to satisfy the
// standard Lockable / SharedLockable named requirements, with automatic
// per-thread context registration. This is the "just give me a better
// mutex" entry point for adopters:
//
//   relock::native::Mutex mu(relock::native::Mutex::combined());
//   {
//     std::scoped_lock guard(mu);
//     ...
//   }
#pragma once

#include <cassert>
#include <optional>

#include "relock/core/configurable_lock.hpp"
#include "relock/platform/native.hpp"

namespace relock::native {

/// Process-wide default Domain. Intentionally leaked so that thread_local
/// contexts created late in a thread's life can still unregister safely.
inline Domain& default_domain() {
  static Domain* domain = new Domain(4096);
  return *domain;
}

/// The calling thread's auto-registered context for the default domain.
/// Created on first use; unregistered at thread exit.
inline Context& this_thread_context() {
  thread_local std::optional<Context> ctx;
  if (!ctx.has_value()) ctx.emplace(default_domain());
  return *ctx;
}

/// A configurable mutex over the default domain. Satisfies Lockable and
/// TimedLockable-ish requirements; every configuration and reconfiguration
/// facility of ConfigurableLock is reachable through underlying().
class Mutex {
 public:
  using Lock = ConfigurableLock<NativePlatform>;

  explicit Mutex(Lock::Options options = spin())
      : lock_(default_domain(), options) {}

  void lock() {
    const bool ok = lock_.lock(this_thread_context());
    assert(ok && "Mutex configured with a timeout: use try_lock_for");
    (void)ok;
  }
  bool try_lock() { return lock_.try_lock(this_thread_context()); }
  bool try_lock_for(Nanos timeout) {
    return lock_.lock_for(this_thread_context(), timeout);
  }
  void unlock() { lock_.unlock(this_thread_context()); }

  [[nodiscard]] Lock& underlying() noexcept { return lock_; }

  // --- Common configurations. ---
  static Lock::Options spin() {
    Lock::Options o;
    o.scheduler = SchedulerKind::kNone;
    o.attributes = LockAttributes::spin();
    return o;
  }
  static Lock::Options combined(std::uint32_t spins = 100) {
    Lock::Options o;
    o.scheduler = SchedulerKind::kFcfs;
    o.attributes = LockAttributes::combined(spins);
    return o;
  }
  static Lock::Options blocking() {
    Lock::Options o;
    o.scheduler = SchedulerKind::kFcfs;
    o.attributes = LockAttributes::blocking();
    return o;
  }
  static Lock::Options recursive() {
    Lock::Options o = combined();
    o.recursive = true;
    return o;
  }

 private:
  Lock lock_;
};

/// A configurable shared mutex (reader-writer). Satisfies SharedLockable.
class SharedMutex {
 public:
  using Lock = ConfigurableLock<NativePlatform>;

  explicit SharedMutex(RwPreference preference = RwPreference::kFifo)
      : lock_(default_domain(), options_for(preference)) {}

  void lock() { (void)lock_.lock(this_thread_context()); }
  bool try_lock() { return lock_.try_lock(this_thread_context()); }
  void unlock() { lock_.unlock(this_thread_context()); }

  void lock_shared() { (void)lock_.lock_shared(this_thread_context()); }
  bool try_lock_shared() {
    return lock_.try_lock_shared(this_thread_context());
  }
  void unlock_shared() { lock_.unlock_shared(this_thread_context()); }

  [[nodiscard]] Lock& underlying() noexcept { return lock_; }

 private:
  static Lock::Options options_for(RwPreference preference) {
    Lock::Options o;
    o.scheduler = SchedulerKind::kReaderWriter;
    o.rw_preference = preference;
    o.attributes = LockAttributes::combined(100);
    return o;
  }

  Lock lock_;
};

}  // namespace relock::native
