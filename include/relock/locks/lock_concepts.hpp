// Concepts and RAII guards shared by all lock types.
#pragma once

#include <concepts>

#include "relock/platform/platform.hpp"

namespace relock {

/// A mutual-exclusion lock usable from a platform context.
template <typename L, typename P>
concept ContextLockable = Platform<P> && requires(L& l, typename P::Context& ctx) {
  { l.lock(ctx) };
  { l.unlock(ctx) };
};

/// Adds polling acquisition.
template <typename L, typename P>
concept ContextTryLockable =
    ContextLockable<L, P> && requires(L& l, typename P::Context& ctx) {
      { l.try_lock(ctx) } -> std::same_as<bool>;
    };

/// RAII guard: locks on construction, unlocks on destruction.
template <typename L, typename Ctx>
class [[nodiscard]] Guard {
 public:
  Guard(L& lock, Ctx& ctx) : lock_(lock), ctx_(ctx) { lock_.lock(ctx_); }
  ~Guard() { lock_.unlock(ctx_); }
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;

 private:
  L& lock_;
  Ctx& ctx_;
};

/// RAII guard for shared (reader) acquisition.
template <typename L, typename Ctx>
class [[nodiscard]] SharedGuard {
 public:
  SharedGuard(L& lock, Ctx& ctx) : lock_(lock), ctx_(ctx) {
    lock_.lock_shared(ctx_);
  }
  ~SharedGuard() { lock_.unlock_shared(ctx_); }
  SharedGuard(const SharedGuard&) = delete;
  SharedGuard& operator=(const SharedGuard&) = delete;

 private:
  L& lock_;
  Ctx& ctx_;
};

}  // namespace relock
