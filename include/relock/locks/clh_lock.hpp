// CLH queue lock (Craig; Landin & Hagersten): implicit queue, each waiter
// spins on its predecessor's node. Like MCS it is a "distributed" lock in
// the paper's taxonomy, though nodes migrate between threads which weakens
// NUMA locality (a known CLH property; MCS is preferred on NUMA).
#pragma once

#include <cassert>
#include <deque>
#include <vector>

#include "relock/platform/platform.hpp"

namespace relock {

template <Platform P>
class ClhLock {
 public:
  using Ctx = typename P::Context;

  explicit ClhLock(typename P::Domain& domain,
                   Placement placement = Placement::any(),
                   std::uint32_t max_threads = 1024)
      : tail_(domain, max_threads, placement),  // initial tail = extra node
        my_node_(max_threads), my_pred_(max_threads, 0) {
    for (std::uint32_t i = 0; i <= max_threads; ++i) {
      // Node value 1 = holder/waiter pending, 0 = released. The initial
      // tail node (index max_threads) starts released.
      nodes_.emplace_back(domain, i == max_threads ? 0 : 1, placement);
      if (i < max_threads) my_node_[i] = i;
    }
  }

  void lock(Ctx& ctx) {
    const ThreadId tid = ctx.self();
    const std::uint32_t mine = my_node_[tid];
    P::store(ctx, nodes_[mine], 1);  // announce: pending
    const auto pred = static_cast<std::uint32_t>(
        P::exchange(ctx, tail_, mine));
    my_pred_[tid] = pred;
    while (P::load(ctx, nodes_[pred]) == 1) {
      P::pause(ctx);
    }
  }

  void unlock(Ctx& ctx) {
    const ThreadId tid = ctx.self();
    const std::uint32_t mine = my_node_[tid];
    P::store(ctx, nodes_[mine], 0);
    // Adopt the predecessor's (now quiescent) node for the next acquisition.
    my_node_[tid] = my_pred_[tid];
  }

 private:
  typename P::Word tail_;  ///< index of the most recent queue node
  std::deque<typename P::Word> nodes_;  // deque: Words are immovable
  std::vector<std::uint32_t> my_node_;  ///< per-thread current node index
  std::vector<std::uint32_t> my_pred_;  ///< per-thread predecessor index
};

}  // namespace relock
