// Ticket lock: FIFO-fair centralized spin lock (two counters).
#pragma once

#include "relock/platform/platform.hpp"

namespace relock {

/// Classic ticket lock. Acquisition order is strictly FIFO, which makes it a
/// useful oracle in fairness tests; all waiters spin on the shared
/// now-serving word, so it remains a *centralized* lock in the paper's
/// taxonomy (contrast McsLock).
template <Platform P>
class TicketLock {
 public:
  using Ctx = typename P::Context;

  explicit TicketLock(typename P::Domain& domain,
                      Placement placement = Placement::any())
      : next_ticket_(domain, 0, placement), now_serving_(domain, 0, placement) {}

  void lock(Ctx& ctx) {
    const std::uint64_t my = P::fetch_add(ctx, next_ticket_, 1);
    while (P::load(ctx, now_serving_) != my) {
      P::pause(ctx);
    }
  }

  bool try_lock(Ctx& ctx) {
    const std::uint64_t serving = P::load(ctx, now_serving_);
    // Succeed only if no one is ahead of us: CAS next_ticket serving->serving+1.
    return P::cas(ctx, next_ticket_, serving, serving + 1);
  }

  void unlock(Ctx& ctx) {
    const std::uint64_t serving = P::load_relaxed(ctx, now_serving_);
    P::store(ctx, now_serving_, serving + 1);
  }

 private:
  typename P::Word next_ticket_;
  typename P::Word now_serving_;
};

}  // namespace relock
