// MCS list-based queue lock [MCS91] - the paper's "distributed" lock
// configuration: each waiter spins on a flag in its *own* (node-local)
// memory, so a waiting processor generates no remote references and the
// lock scales with O(1) remote traffic per acquisition.
#pragma once

#include <atomic>
#include <cassert>
#include <memory>
#include <vector>

#include "relock/platform/platform.hpp"

namespace relock {

/// MCS queue lock. Queue links are expressed as ThreadId+1 values stored in
/// platform words (0 == null), so the identical algorithm runs natively and
/// in the simulator (which has no host pointers into simulated memory).
///
/// Per-thread queue nodes are allocated lazily on first use by the owning
/// thread and placed on that thread's home NUMA node - this is what makes
/// the lock "distributed" in the paper's sense. Node allocation is host
/// bookkeeping and intentionally outside the simulator's timing model.
template <Platform P>
class McsLock {
 public:
  using Ctx = typename P::Context;

  explicit McsLock(typename P::Domain& domain,
                   Placement placement = Placement::any(),
                   std::uint32_t max_threads = 1024)
      : domain_(domain), tail_(domain, 0, placement), nodes_(max_threads) {}

  ~McsLock() {
    for (auto& slot : nodes_) {
      delete slot.load(std::memory_order_acquire);
    }
  }
  McsLock(const McsLock&) = delete;
  McsLock& operator=(const McsLock&) = delete;

  void lock(Ctx& ctx) {
    QNode& me = node_for(ctx);
    P::store(ctx, me.next, 0);
    P::store(ctx, me.granted, 0);
    const std::uint64_t pred = P::exchange(ctx, tail_, encode(ctx.self()));
    if (pred != 0) {
      QNode& p = node_of(decode(pred));
      P::store(ctx, p.next, encode(ctx.self()));
      while (P::load(ctx, me.granted) == 0) {
        P::pause(ctx);
      }
    }
  }

  bool try_lock(Ctx& ctx) {
    QNode& me = node_for(ctx);
    P::store(ctx, me.next, 0);
    P::store(ctx, me.granted, 0);
    return P::cas(ctx, tail_, 0, encode(ctx.self()));
  }

  void unlock(Ctx& ctx) {
    QNode& me = node_for(ctx);
    if (P::load(ctx, me.next) == 0) {
      // No visible successor: try to swing tail back to empty.
      if (P::cas(ctx, tail_, encode(ctx.self()), 0)) return;
      // A successor is in the middle of linking in; wait for the link.
      while (P::load(ctx, me.next) == 0) {
        P::pause(ctx);
      }
    }
    QNode& succ = node_of(decode(P::load(ctx, me.next)));
    P::store(ctx, succ.granted, 1);
  }

 private:
  struct QNode {
    QNode(typename P::Domain& domain, Placement placement)
        : next(domain, 0, placement), granted(domain, 0, placement) {}
    typename P::Word next;     ///< successor ThreadId+1, 0 = none
    typename P::Word granted;  ///< set by predecessor on handoff
  };

  static constexpr std::uint64_t encode(ThreadId tid) noexcept {
    return static_cast<std::uint64_t>(tid) + 1;
  }
  static constexpr ThreadId decode(std::uint64_t v) noexcept {
    return static_cast<ThreadId>(v - 1);
  }

  QNode& node_for(Ctx& ctx) {
    const ThreadId tid = ctx.self();
    assert(tid < nodes_.size());
    QNode* n = nodes_[tid].load(std::memory_order_acquire);
    if (n == nullptr) {
      // Only thread `tid` ever initializes slot `tid` (no CAS needed);
      // publication to other threads happens via the tail word.
      n = new QNode(domain_, Placement::on(P::home_node(ctx)));
      nodes_[tid].store(n, std::memory_order_release);
    }
    return *n;
  }

  QNode& node_of(ThreadId tid) {
    QNode* n = nodes_[tid].load(std::memory_order_acquire);
    assert(n != nullptr && "MCS successor node must exist");
    return *n;
  }

  typename P::Domain& domain_;
  typename P::Word tail_;  ///< ThreadId+1 of last queued thread, 0 = free
  std::vector<std::atomic<QNode*>> nodes_;  ///< slot i owned by thread i
};

}  // namespace relock
