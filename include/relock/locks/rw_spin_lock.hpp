// Baseline reader-writer spin lock (single word: writer bit + reader count).
// Serves as the comparison point for the configurable lock's reader-writer
// scheduler configuration (paper section 4.3.3).
#pragma once

#include "relock/platform/platform.hpp"

namespace relock {

/// Writer-preference-free (i.e. barging) reader-writer spin lock.
/// Word layout: bit 0 = writer held; bits 1..63 = reader count.
template <Platform P>
class RwSpinLock {
 public:
  using Ctx = typename P::Context;

  static constexpr std::uint64_t kWriter = 1;
  static constexpr std::uint64_t kReader = 2;

  explicit RwSpinLock(typename P::Domain& domain,
                      Placement placement = Placement::any())
      : word_(domain, 0, placement) {}

  void lock(Ctx& ctx) {  // writer
    for (;;) {
      if (P::load_relaxed(ctx, word_) == 0 && P::cas(ctx, word_, 0, kWriter)) {
        return;
      }
      P::pause(ctx);
    }
  }

  bool try_lock(Ctx& ctx) { return P::cas(ctx, word_, 0, kWriter); }

  void unlock(Ctx& ctx) { P::fetch_and(ctx, word_, ~kWriter); }

  void lock_shared(Ctx& ctx) {
    for (;;) {
      const std::uint64_t v = P::load_relaxed(ctx, word_);
      if ((v & kWriter) == 0 && P::cas(ctx, word_, v, v + kReader)) {
        return;
      }
      P::pause(ctx);
    }
  }

  bool try_lock_shared(Ctx& ctx) {
    const std::uint64_t v = P::load(ctx, word_);
    return (v & kWriter) == 0 && P::cas(ctx, word_, v, v + kReader);
  }

  void unlock_shared(Ctx& ctx) {
    P::fetch_add(ctx, word_, static_cast<std::uint64_t>(-static_cast<std::int64_t>(kReader)));
  }

 private:
  typename P::Word word_;
};

}  // namespace relock
