// Anderson's array-based queue lock [ALL89]: each waiter spins on its own
// array slot, reducing hot-spot traffic relative to TAS/ticket locks.
#pragma once

#include <cassert>
#include <deque>
#include <vector>

#include "relock/platform/platform.hpp"

namespace relock {

/// Array-queue lock. `capacity` must be at least the maximum number of
/// threads that can contend simultaneously (slot indices wrap).
template <Platform P>
class AndersonArrayLock {
 public:
  using Ctx = typename P::Context;

  explicit AndersonArrayLock(typename P::Domain& domain,
                             std::uint32_t capacity = 64,
                             Placement placement = Placement::any(),
                             std::uint32_t max_threads = 1024)
      : capacity_(capacity), next_slot_(domain, 0, placement),
        my_slot_(max_threads, 0) {
    assert(capacity_ > 0);
    for (std::uint32_t i = 0; i < capacity_; ++i) {
      // Slot 0 starts "has lock"; the rest "must wait".
      flags_.emplace_back(domain, i == 0 ? 1 : 0, placement);
    }
  }

  void lock(Ctx& ctx) {
    const std::uint64_t slot = P::fetch_add(ctx, next_slot_, 1) % capacity_;
    my_slot_[ctx.self()] = static_cast<std::uint32_t>(slot);
    while (P::load(ctx, flags_[slot]) == 0) {
      P::pause(ctx);
    }
    P::store(ctx, flags_[slot], 0);  // consume for the next wrap-around
  }

  void unlock(Ctx& ctx) {
    const std::uint32_t slot = my_slot_[ctx.self()];
    P::store(ctx, flags_[(slot + 1) % capacity_], 1);
  }

 private:
  std::uint32_t capacity_;
  typename P::Word next_slot_;
  std::deque<typename P::Word> flags_;  // deque: Words are immovable
  std::vector<std::uint32_t> my_slot_;  ///< slot i touched only by thread i
};

}  // namespace relock
