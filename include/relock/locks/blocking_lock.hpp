// Blocking lock: waiters are descheduled (parked) instead of spinning.
//
// This is the paper's "blocking-lock" row (Tables 2-4) and the blocking
// baseline of every figure. Lock handoff is *direct*: the releaser selects
// the FIFO head, marks it granted and wakes it without ever publishing the
// lock as free, so there is no barging and wakeup order equals registration
// order.
#pragma once

#include <atomic>
#include <cassert>

#include "relock/platform/platform.hpp"

namespace relock {

template <Platform P>
class BlockingLock {
 public:
  using Ctx = typename P::Context;

  explicit BlockingLock(typename P::Domain& domain,
                        Placement placement = Placement::any())
      : meta_(domain, 0, placement), locked_(domain, 0, placement) {}
  BlockingLock(const BlockingLock&) = delete;
  BlockingLock& operator=(const BlockingLock&) = delete;

  void lock(Ctx& ctx) {
    meta_lock(ctx);
    if (P::load(ctx, locked_) == 0) {
      P::store(ctx, locked_, 1);
      meta_unlock(ctx);
      return;
    }
    WaitNode node{ctx.self()};
    enqueue(&node);
    meta_unlock(ctx);
    while (node.granted.load(std::memory_order_acquire) == 0) {
      P::block(ctx);
    }
  }

  bool try_lock(Ctx& ctx) {
    meta_lock(ctx);
    const bool free = P::load(ctx, locked_) == 0;
    if (free) P::store(ctx, locked_, 1);
    meta_unlock(ctx);
    return free;
  }

  void unlock(Ctx& ctx) {
    meta_lock(ctx);
    WaitNode* next = dequeue();
    if (next == nullptr) {
      P::store(ctx, locked_, 0);
      meta_unlock(ctx);
      return;
    }
    const ThreadId tid = next->tid;
    next->granted.store(1, std::memory_order_release);
    // After `granted` is set the node (on the waiter's stack) may vanish:
    // do not touch `next` again. Waking via the ThreadId is safe.
    meta_unlock(ctx);
    P::unblock(ctx, tid);
  }

 private:
  /// Intrusive FIFO node living on the waiter's stack. The queue structure
  /// itself is host bookkeeping; its cost in the simulator is represented by
  /// the meta-word critical section plus the modelled block/wakeup costs.
  struct WaitNode {
    explicit WaitNode(ThreadId t) : tid(t) {}
    ThreadId tid;
    std::atomic<std::uint32_t> granted{0};
    WaitNode* next = nullptr;
  };

  // TTAS probing keeps contended meta acquisition off the expensive atomic
  // path of the memory module.
  void meta_lock(Ctx& ctx) {
    for (;;) {
      if (P::load_relaxed(ctx, meta_) == 0 &&
          P::fetch_or(ctx, meta_, 1) == 0) {
        return;
      }
      P::pause(ctx);
    }
  }
  void meta_unlock(Ctx& ctx) { P::store(ctx, meta_, 0); }

  void enqueue(WaitNode* n) {
    if (tail_ == nullptr) {
      head_ = tail_ = n;
    } else {
      tail_->next = n;
      tail_ = n;
    }
  }

  WaitNode* dequeue() {
    WaitNode* n = head_;
    if (n != nullptr) {
      head_ = n->next;
      if (head_ == nullptr) tail_ = nullptr;
    }
    return n;
  }

  typename P::Word meta_;    ///< TAS guard for the wait queue + locked_
  typename P::Word locked_;  ///< 1 while some thread owns the lock
  WaitNode* head_ = nullptr; ///< guarded by meta_
  WaitNode* tail_ = nullptr; ///< guarded by meta_
};

}  // namespace relock
