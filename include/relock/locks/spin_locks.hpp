// Centralized spin locks: TAS, TTAS, and Anderson-style backoff spinning.
//
// These are the paper's "spin-lock" and "spin-with-backoff" rows (Tables
// 2-4) and the spin baselines of Figures 1-3 and 7-8. On the Butterfly the
// underlying primitive is `atomior` (atomic fetch-or, akin to test-and-set);
// Platform::fetch_or models exactly that.
#pragma once

#include "relock/platform/backoff.hpp"
#include "relock/platform/platform.hpp"

namespace relock {

/// Test-and-set lock: every probe is an atomic RMW on the (possibly remote)
/// lock word. Minimal latency when uncontended; generates maximal memory /
/// switch traffic when contended.
template <Platform P>
class TasLock {
 public:
  using Ctx = typename P::Context;

  explicit TasLock(typename P::Domain& domain,
                   Placement placement = Placement::any())
      : word_(domain, 0, placement) {}

  void lock(Ctx& ctx) {
    while (P::fetch_or(ctx, word_, 1) != 0) {
      P::pause(ctx);
    }
  }

  bool try_lock(Ctx& ctx) { return P::fetch_or(ctx, word_, 1) == 0; }

  void unlock(Ctx& ctx) { P::store(ctx, word_, 0); }

 private:
  typename P::Word word_;
};

/// Test-and-test-and-set: spins with plain reads (cache/local-copy friendly)
/// and only attempts the RMW when the word looks free.
template <Platform P>
class TtasLock {
 public:
  using Ctx = typename P::Context;

  explicit TtasLock(typename P::Domain& domain,
                    Placement placement = Placement::any())
      : word_(domain, 0, placement) {}

  void lock(Ctx& ctx) {
    for (;;) {
      if (P::load_relaxed(ctx, word_) == 0 &&
          P::fetch_or(ctx, word_, 1) == 0) {
        return;
      }
      P::pause(ctx);
    }
  }

  bool try_lock(Ctx& ctx) {
    return P::load_relaxed(ctx, word_) == 0 && P::fetch_or(ctx, word_, 1) == 0;
  }

  void unlock(Ctx& ctx) { P::store(ctx, word_, 0); }

 private:
  typename P::Word word_;
};

/// Spin lock with Ethernet-style exponential backoff between probes
/// (Anderson et al. [ALL89]). The paper's Butterfly variant backs off
/// proportionally to observed load; the geometric schedule approximates the
/// same contention-throttling behaviour.
template <Platform P>
class BackoffSpinLock {
 public:
  using Ctx = typename P::Context;

  explicit BackoffSpinLock(typename P::Domain& domain,
                           Placement placement = Placement::any(),
                           BackoffSchedule::Params params = {})
      : word_(domain, 0, placement), params_(params) {}

  void lock(Ctx& ctx) {
    if (P::fetch_or(ctx, word_, 1) == 0) return;  // uncontended fast path
    BackoffSchedule schedule(params_);
    for (;;) {
      P::delay(ctx, schedule.next());
      if (P::load_relaxed(ctx, word_) == 0 &&
          P::fetch_or(ctx, word_, 1) == 0) {
        return;
      }
    }
  }

  bool try_lock(Ctx& ctx) { return P::fetch_or(ctx, word_, 1) == 0; }

  void unlock(Ctx& ctx) { P::store(ctx, word_, 0); }

 private:
  typename P::Word word_;
  BackoffSchedule::Params params_;
};

}  // namespace relock
