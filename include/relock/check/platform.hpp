// CheckPlatform: the Platform implementation over the relock-check engine.
//
// Every Word operation, spin primitive, and parker transition is a
// scheduling point of the controlled scheduler, so the engine's strategy
// decides the interleaving of shared-memory accesses exactly. Words are
// plain (non-atomic) integers: only one model thread ever runs at a time,
// and a point suspends the caller *before* the operation's effect, so the
// effect plus everything up to the next point forms one atomic step.
//
// kRealConcurrency is true: the checker's whole purpose is to explore the
// contention machinery (lock-free arrival stack, quiescence epoch,
// next_grant_ cache, oversubscription escalation) that only compiles in on
// real-concurrency platforms.
//
// The parker is an algorithmic port of platform/parker.hpp's token protocol
// onto the engine's sleep/notify primitives (kPkEmpty / kPkToken /
// kPkParked). RELOCK_CHECK_SEEDED_BUG_2 re-introduces PR 2's parker bug -
// the token deposit performed as a plain load + store instead of one atomic
// exchange - which the checker must catch as a lost wakeup (deadlock).
#pragma once

#include <cstdint>

#include "relock/check/engine.hpp"
#include "relock/platform/chk_hooks.hpp"
#include "relock/platform/types.hpp"

namespace relock::chk {

/// One modeled atomic word. Plain storage: the engine serializes access.
struct Word {
  explicit Word(Domain& /*domain*/, std::uint64_t initial = 0,
                Placement /*placement*/ = Placement::any())
      : v(initial) {}
  Word(const Word&) = delete;
  Word& operator=(const Word&) = delete;

  std::uint64_t v;
};

struct CheckPlatform {
  using Context = chk::Context;
  using Word = chk::Word;
  using Domain = chk::Domain;

  /// Enables the contended machinery under test (see header comment).
  static constexpr bool kRealConcurrency = true;

  // ---- atomic word operations: one scheduling point each ----

  static std::uint64_t load(Context& ctx, const Word& w) {
    ctx.engine().point(ctx, "w.load");
    return w.v;
  }
  static std::uint64_t load_relaxed(Context& ctx, const Word& w) {
    ctx.engine().point(ctx, "w.loadr");
    return w.v;
  }
  static void store(Context& ctx, Word& w, std::uint64_t v) {
    ctx.engine().point(ctx, "w.store");
    w.v = v;
    ctx.engine().note_write();
  }
  static std::uint64_t fetch_or(Context& ctx, Word& w, std::uint64_t v) {
    ctx.engine().point(ctx, "w.or");
    const std::uint64_t prev = w.v;
    w.v |= v;
    ctx.engine().note_write();
    return prev;
  }
  static std::uint64_t fetch_and(Context& ctx, Word& w, std::uint64_t v) {
    ctx.engine().point(ctx, "w.and");
    const std::uint64_t prev = w.v;
    w.v &= v;
    ctx.engine().note_write();
    return prev;
  }
  static std::uint64_t fetch_add(Context& ctx, Word& w, std::uint64_t v) {
    ctx.engine().point(ctx, "w.add");
    const std::uint64_t prev = w.v;
    w.v += v;
    ctx.engine().note_write();
    return prev;
  }
  static std::uint64_t exchange(Context& ctx, Word& w, std::uint64_t v) {
    ctx.engine().point(ctx, "w.xchg");
    const std::uint64_t prev = w.v;
    w.v = v;
    ctx.engine().note_write();
    return prev;
  }
  static bool cas(Context& ctx, Word& w, std::uint64_t expected,
                  std::uint64_t desired) {
    ctx.engine().point(ctx, "w.cas");
    if (w.v != expected) return false;
    w.v = desired;
    ctx.engine().note_write();
    return true;
  }

  // ---- delay / progress primitives: gated points (spin bounding) ----

  static void pause(Context& ctx) { ctx.engine().pause_point(ctx, "pause"); }
  static void yield(Context& ctx) { ctx.engine().pause_point(ctx, "yield"); }
  static void delay(Context& ctx, Nanos ns) {
    ctx.engine().delay_point(ctx, ns);
  }
  static void compute(Context& ctx, Nanos ns) {
    ctx.engine().delay_point(ctx, ns);
  }

  // ---- parking: modeled Parker token protocol ----

  static void block(Context& ctx) { (void)parker_park(ctx, kForever); }
  static bool block_for(Context& ctx, Nanos ns) {
    return parker_park(ctx, ns);
  }

  /// Token deposit + conditional wake: the algorithmic core of
  /// Parker::unpark. Correct form: one atomic exchange (a single step reads
  /// the previous state and publishes the token).
  static void unblock(Context& ctx, ThreadId tid) {
    Engine& eng = ctx.engine();
#ifdef RELOCK_CHECK_SEEDED_BUG_2
    // Seeded PR 2 bug: the deposit split into a relaxed load followed by a
    // separate store. The target's kPkEmpty -> kPkParked transition can land
    // between the two; the store then overwrites kPkParked with the token
    // while `prev` still reads kPkEmpty, so no notify is sent - a lost
    // wakeup the checker must report as a deadlock.
    eng.point(ctx, "pk.unpark.load");
    const std::uint64_t prev = eng.parker_word(tid);
    eng.point(ctx, "pk.unpark.store");
    eng.parker_word(tid) = kPkToken;
    eng.note_write();
#else
    eng.point(ctx, "pk.unpark");
    std::uint64_t& w = eng.parker_word(tid);
    const std::uint64_t prev = w;
    w = kPkToken;
    eng.note_write();
#endif
    if (prev == kPkParked) eng.notify(tid);
  }

  // ---- time / topology / census ----

  static Nanos now(Context& ctx) { return ctx.engine().now(); }
  static int home_node(Context&) { return Placement::kAnyNode; }
  static bool oversubscribed(Context& ctx) {
    return ctx.engine().oversubscribed();
  }

  // ---- relock-check hooks (the reason this platform exists) ----

  static void chk_point(Context& ctx, const char* tag) {
    ctx.engine().point(ctx, tag);
  }
  static void chk_event(Context& ctx, ChkEvent e, std::uint64_t arg) {
    ctx.engine().on_event(ctx, e, arg);
  }
  static void chk_scratch(bool begin) {
    if (Engine* e = Engine::current()) e->scratch_point(begin);
  }

 private:
  /// Parker::park / park_for over engine sleep/notify. Returns true iff a
  /// token was consumed (woken or already deposited), false on timeout.
  static bool parker_park(Context& ctx, Nanos ns) {
    Engine& eng = ctx.engine();
    std::uint64_t& w = eng.parker_word(ctx.self());
    // Fast path: consume an already-deposited token without descheduling.
    eng.point(ctx, "pk.cas");
    if (w == kPkToken) {
      w = kPkEmpty;
      return true;
    }
    // Advertise kPkParked and deschedule. The re-check and the parked store
    // + sleep form one step, mirroring the mutex-protected section of the
    // real parker (unpark's deposit cannot be lost in between).
    eng.point(ctx, "pk.adv");
    if (w == kPkToken) {
      w = kPkEmpty;
      return true;
    }
    w = kPkParked;
    if (eng.sleep(ctx, ns)) {
      // Notified: consume the token.
      eng.point(ctx, "pk.consume");
      w = kPkEmpty;
      return true;
    }
    // Timed out: retract kPkParked. If a token landed between the timeout
    // firing and this step, consume it and report a wake (the real parker's
    // failed CAS-retract path).
    eng.point(ctx, "pk.retract");
    if (w == kPkToken) {
      w = kPkEmpty;
      return true;
    }
    w = kPkEmpty;
    return false;
  }
};

}  // namespace relock::chk
