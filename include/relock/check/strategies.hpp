// Scheduling strategies for the relock-check engine: preemption-bounded
// exhaustive DFS (CHESS-style) for small scenarios and PCT-style randomized
// priority schedules (seeded, replayable) for larger ones.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "relock/check/engine.hpp"

namespace relock::chk {

namespace detail {

/// splitmix64: tiny, high-quality seeded generator - keeps the checker free
/// of unseeded randomness so every schedule is reproducible from one word.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4568bull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace detail

/// Exhaustive DFS over schedules with a preemption bound (CHESS): letting
/// the previously running thread continue is free; switching away from it
/// while it could still run costs one preemption. Context switches at a
/// block/pause/finish are free. Most lock bugs need only 1-2 preemptions,
/// so a small bound explores the interesting schedules of a 2-3 thread
/// scenario completely in seconds.
class DfsStrategy final : public Strategy {
 public:
  /// `preemption_bound`: max preemptions per schedule. `max_schedules`
  /// caps the exploration (0 = unlimited); hitting it sets hit_cap().
  explicit DfsStrategy(std::uint32_t preemption_bound,
                       std::uint64_t max_schedules = 0)
      : bound_(preemption_bound), max_schedules_(max_schedules) {}

  std::size_t pick(const Step& step) override {
    if (depth_ < frames_.size()) {
      // Replaying the committed prefix of this schedule.
      Frame& f = frames_[depth_];
      ++depth_;
      preemptions_used_ += cost_of(f, f.order[f.pos]);
      return f.order[f.pos];
    }
    Frame f;
    f.enabled = step.enabled;
    f.last_tid = step.last_tid;
    f.last_runnable = step.last_runnable;
    f.preemptions_before = preemptions_used_;
    // Visit the continuation of the previous thread first: the depth-first
    // spine is then the preemption-free schedule.
    for (std::size_t i = 0; i < f.enabled.size(); ++i) f.order.push_back(i);
    if (step.last_runnable) {
      for (std::size_t i = 0; i < f.order.size(); ++i) {
        if (f.enabled[f.order[i]].tid == step.last_tid &&
            f.enabled[f.order[i]].kind == ActionKind::kRun) {
          std::swap(f.order[0], f.order[i]);
          break;
        }
      }
    }
    f.pos = 0;
    preemptions_used_ += cost_of(f, f.order[0]);
    frames_.push_back(std::move(f));
    ++depth_;
    return frames_.back().order[0];
  }

  bool schedule_done(bool failed) override {
    ++schedules_run_;
    if (failed) return false;
    if (max_schedules_ != 0 && schedules_run_ >= max_schedules_) {
      hit_cap_ = true;
      return false;
    }
    // Backtrack: deepest frame with an untried alternative we can afford.
    while (!frames_.empty()) {
      Frame& f = frames_.back();
      while (f.pos + 1 < f.order.size()) {
        ++f.pos;
        if (f.preemptions_before + cost_of(f, f.order[f.pos]) <= bound_) {
          depth_ = 0;
          preemptions_used_ = 0;
          return true;
        }
      }
      frames_.pop_back();
    }
    exhausted_ = true;
    return false;
  }

  [[nodiscard]] std::string describe() const override {
    return "dfs(bound=" + std::to_string(bound_) + ")";
  }

  /// True once the bounded schedule space was fully explored.
  [[nodiscard]] bool exhausted() const { return exhausted_; }
  /// True if the schedule cap stopped exploration before exhaustion.
  [[nodiscard]] bool hit_cap() const { return hit_cap_; }

 private:
  struct Frame {
    std::vector<Action> enabled;
    std::vector<std::size_t> order;  ///< visit order over `enabled`
    std::size_t pos = 0;             ///< current choice within `order`
    std::uint32_t preemptions_before = 0;
    ThreadId last_tid = kInvalidThread;
    bool last_runnable = false;
  };

  [[nodiscard]] static std::uint32_t cost_of(const Frame& f,
                                             std::size_t choice) {
    // A preemption: the previous thread could continue running but a
    // different thread is scheduled instead. Timeout firings also count
    // when they preempt (they model an asynchronous timer interrupt).
    return f.last_runnable && f.enabled[choice].tid != f.last_tid ? 1u : 0u;
  }

  std::uint32_t bound_;
  std::uint64_t max_schedules_;
  std::vector<Frame> frames_;
  std::size_t depth_ = 0;
  std::uint32_t preemptions_used_ = 0;
  std::uint64_t schedules_run_ = 0;
  bool exhausted_ = false;
  bool hit_cap_ = false;
};

/// PCT-style randomized exploration (Burckhardt et al., ASPLOS'10): each
/// schedule assigns random distinct priorities to threads and picks d-1
/// random change points at which the running thread's priority drops below
/// everyone else's. Finds depth-d bugs with probability >= 1/(n * k^(d-1))
/// per schedule. Fully determined by (seed, schedule index) - the seed is
/// printed by the tests and can be pinned via RELOCK_CHECK_SEED.
class PctStrategy final : public Strategy {
 public:
  PctStrategy(std::uint64_t seed, std::uint64_t schedules,
              std::uint32_t depth = 3)
      : seed_(seed), schedules_(schedules), depth_(depth) {
    reseed();
  }

  std::size_t pick(const Step& step) override {
    ++step_no_;
    // Change point: demote whoever is currently on top.
    if (change_next_ < change_points_.size() &&
        step_no_ >= change_points_[change_next_] &&
        step.last_tid != kInvalidThread) {
      priorities_[step.last_tid] = next_demoted_--;
      ++change_next_;
    }
    std::size_t best = 0;
    for (std::size_t i = 1; i < step.enabled.size(); ++i) {
      if (priorities_[step.enabled[i].tid] >
          priorities_[step.enabled[best].tid]) {
        best = i;
      }
    }
    return best;
  }

  bool schedule_done(bool failed) override {
    est_len_ = std::max<std::uint64_t>(step_no_, 16);
    ++run_;
    if (failed || run_ >= schedules_) return false;
    reseed();
    return true;
  }

  [[nodiscard]] std::string describe() const override {
    return "pct(seed=" + std::to_string(seed_) +
           ", d=" + std::to_string(depth_) + ")";
  }

 private:
  void reseed() {
    std::uint64_t s = seed_ ^ (0xd1b54a32d192ed03ull * (run_ + 1));
    priorities_.assign(Domain::kCapacity, 0);
    // Random distinct base priorities via a seeded shuffle of 1..capacity.
    std::vector<int> base(Domain::kCapacity);
    for (std::size_t i = 0; i < base.size(); ++i) {
      base[i] = static_cast<int>(i) + 1;
    }
    for (std::size_t i = base.size(); i > 1; --i) {
      std::swap(base[i - 1], base[detail::splitmix64(s) % i]);
    }
    for (std::size_t i = 0; i < base.size(); ++i) priorities_[i] = base[i];
    change_points_.clear();
    for (std::uint32_t i = 0; i + 1 < depth_; ++i) {
      change_points_.push_back(1 + detail::splitmix64(s) % est_len_);
    }
    std::sort(change_points_.begin(), change_points_.end());
    change_next_ = 0;
    next_demoted_ = -1;
    step_no_ = 0;
  }

  std::uint64_t seed_;
  std::uint64_t schedules_;
  std::uint32_t depth_;
  std::uint64_t run_ = 0;
  std::uint64_t est_len_ = 64;  ///< change-point range; refined per schedule
  std::vector<int> priorities_;
  std::vector<std::uint64_t> change_points_;
  std::size_t change_next_ = 0;
  int next_demoted_ = -1;
  std::uint64_t step_no_ = 0;
};

}  // namespace relock::chk
