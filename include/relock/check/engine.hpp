// relock-check: a deterministic concurrency model checker for
// ConfigurableLock scenarios.
//
// Every model thread is a sim::Coroutine; the engine (running on the host
// test thread) resumes exactly one coroutine at a time, so a schedule is a
// totally ordered sequence of *steps*. A step runs a thread from one
// scheduling point to the next: platform Word operations, chk_point hooks
// (host-side atomics: epoch counters, next_grant_, grant scratch, arrival
// links, attribute seqlocks), parker transitions, pauses/yields/delays, and
// block/block_for. The strategy (DFS with a preemption bound, PCT-style
// randomized priorities, or trace replay) chooses which enabled action runs
// at each point; oracles validate every schedule.
//
// Determinism: the engine uses a logical clock (each point advances it 1 ns,
// P::delay advances it by its argument, a timeout firing advances it to the
// sleeper's deadline), no wall clock and no unseeded randomness, so a
// recorded action trace replays to the identical event sequence.
//
// Spin-loop bounding: a thread that executed pause/yield/delay is "gated" -
// not selectable until some cross-thread-visible mutation happens (a
// platform word write or a checker event advances a global write stamp), or
// every runnable thread is gated (then all are ungated, so progress that
// depends only on the logical clock still occurs). Re-running an idle spin
// probe when nothing changed would re-read the same values, so pruning
// those schedules loses no behaviour - and without the pruning two spinning
// waiters can ping-pong preemption-free forever, making bounded DFS
// diverge. A genuine livelock hits the per-schedule step budget and is
// reported with its trace.
//
// Oracles (checked on every schedule):
//   - mutual exclusion          cs_enter/cs_exit occupancy
//   - grant conservation        a grant must go to a registered waiter;
//                               no waiter left registered at schedule end
//   - fairness per active Gamma FCFS order / max-priority / threshold
//                               eligibility within a configuration
//                               generation, and the configuration-delay
//                               rule across generations
//   - timeout soundness         a timed-out acquisition is deregistered and
//                               never granted afterwards
//   - epoch safety              no fast release window overlaps a
//                               configuration mutation window
//   - deadlock / livelock       no enabled action with unfinished threads /
//                               step budget exhaustion
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "relock/platform/chk_hooks.hpp"
#include "relock/platform/types.hpp"
#include "relock/sim/coroutine.hpp"

namespace relock::chk {

class Engine;

/// Modeled parker token states - the algorithmic port of Parker's state
/// word (platform/parker.hpp): kPkEmpty = no token, kPkToken = wakeup
/// deposited, kPkParked = owner descheduled waiting for a notify.
inline constexpr std::uint64_t kPkEmpty = 0;
inline constexpr std::uint64_t kPkToken = 1;
inline constexpr std::uint64_t kPkParked = 2;

/// What a scheduled step does: run a runnable thread to its next point, or
/// fire the timeout of a timed sleeper (waking it with "not notified").
enum class ActionKind : std::uint8_t { kRun, kTimeout };

struct Action {
  ActionKind kind;
  ThreadId tid;
};

/// Thrown inside a model thread to unwind its coroutine stack once the
/// schedule has failed or been cancelled; caught by the coroutine entry.
struct ScheduleAborted {};

/// Per-model-thread handle passed to scenario bodies; satisfies the
/// Context requirements of the Platform concept.
class Context {
 public:
  Context(Engine& engine, ThreadId tid, Priority priority)
      : engine_(&engine), tid_(tid), priority_(priority) {}

  [[nodiscard]] ThreadId self() const { return tid_; }
  [[nodiscard]] Priority priority() const { return priority_; }
  void set_priority(Priority p) { priority_ = p; }
  [[nodiscard]] Engine& engine() const { return *engine_; }

  // Scenario-level oracle annotations: bracket the critical section.
  void cs_enter();
  void cs_exit();

  // Scenario-level fault injections, explored like any other step.
  void spurious_unpark(ThreadId tid);  ///< gratuitous parker token + notify
  void flip_oversubscribed();          ///< toggle P::oversubscribed()

 private:
  Engine* engine_;
  ThreadId tid_;
  Priority priority_;
};

/// Which fairness oracle applies to a scenario's grants (the active Gamma).
enum class FairnessMode : std::uint8_t {
  kNone,       ///< only conservation / exclusion / epoch oracles
  kFcfs,       ///< grants in registration order within a generation
  kPriority,   ///< max priority first, FIFO among equals
  kThreshold,  ///< FCFS among waiters at/above the current threshold
};

class ScenarioFrame;

/// A reusable scenario: `build` runs once per schedule, constructs the
/// shared state (typically a ConfigurableLock<CheckPlatform> held by a
/// shared_ptr the thread bodies capture) and registers the thread bodies.
struct Scenario {
  std::string name;
  FairnessMode fairness = FairnessMode::kNone;
  std::uint64_t max_steps = 50'000;
  std::function<void(ScenarioFrame&)> build;
};

/// Outcome of exploring a scenario under one strategy.
struct ExploreResult {
  std::uint64_t schedules = 0;  ///< schedules executed
  std::uint64_t steps = 0;      ///< total scheduling points across them
  bool complete = false;        ///< strategy exhausted its search space
  bool failed = false;
  std::string failure;       ///< first oracle violation, human-readable
  std::string trace;         ///< replayable action trace of the failure
  std::string failure_tag;   ///< tag of the last point before the failure
  /// Compact event log ((tid, event, arg) triples) of the failing schedule,
  /// or - on a clean completion - of the last schedule run; replay equality
  /// and trace-vs-checker equality are asserted on this.
  std::vector<std::uint64_t> events;

  [[nodiscard]] std::string summary() const;
};

/// Scheduling strategy interface. `pick` returns an index into `enabled`;
/// `schedule_done` is told whether that schedule failed and returns whether
/// another schedule should run.
class Strategy {
 public:
  struct Step {
    const std::vector<Action>& enabled;
    ThreadId last_tid;         ///< thread of the previous action
    bool last_runnable;        ///< it could continue (preemption costs)
  };

  virtual ~Strategy() = default;
  virtual std::size_t pick(const Step& step) = 0;
  virtual bool schedule_done(bool failed) = 0;
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// Registry stand-in handed to ConfigurableLock / WaiterRecord.
class Domain {
 public:
  explicit Domain(Engine& engine) : engine_(&engine) {}
  [[nodiscard]] std::uint32_t capacity() const { return kCapacity; }
  [[nodiscard]] Engine& engine() const { return *engine_; }

  static constexpr std::uint32_t kCapacity = 16;

 private:
  Engine* engine_;
};

/// Handed to Scenario::build each schedule.
class ScenarioFrame {
 public:
  explicit ScenarioFrame(Engine& engine) : engine_(&engine) {}

  [[nodiscard]] Engine& engine() const { return *engine_; }
  [[nodiscard]] Domain& domain() const;

  /// Registers a model thread. Threads run in registration order index.
  void add_thread(Priority priority, std::function<void(Context&)> body);

  /// Host-side check run after all threads finish with no failure; call
  /// engine().fail_host(msg) to flag a violation.
  void on_finish(std::function<void()> check);

 private:
  Engine* engine_;
};

/// The controlled scheduler + oracle state machine.
class Engine {
 public:
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Domain& domain() { return domain_; }

  /// Runs schedules of `scenario` under `strategy` until the strategy is
  /// exhausted or an oracle fails (exploration stops at the first failure).
  ExploreResult explore(const Scenario& scenario, Strategy& strategy);

  /// Replays a serialized action trace (ExploreResult::trace) against the
  /// scenario: one schedule, following the recorded choices exactly.
  ExploreResult replay(const Scenario& scenario, const std::string& trace);

  // ---- called from model threads (check platform / hooks) ----

  /// A scheduling point: suspends the calling thread; the driver picks the
  /// next action. Throws ScheduleAborted once the schedule has failed.
  void point(Context& ctx, const char* tag);
  /// Point + gate the caller (voluntary yield: pause / yield).
  void pause_point(Context& ctx, const char* tag);
  /// Point + gate + advance the logical clock by `ns` (busy delay).
  void delay_point(Context& ctx, Nanos ns);
  /// Scheduling point issued by context-free code (GrantBatch), resolved to
  /// the currently running model thread. Also the shared-scratch oracle:
  /// `begin` (a clear) opens a scratch session owned by the caller; any
  /// other mutation by a non-owner is two releasers sharing the scratch -
  /// the race the quiescence epoch must prevent.
  void scratch_point(bool begin);

  /// Deschedules the caller until notify(tid) or - for a finite `ns` - a
  /// strategy-chosen timeout firing. Returns true iff notified.
  bool sleep(Context& ctx, Nanos ns);
  /// Makes a sleeping thread runnable (parker notify). No-op if awake.
  void notify(ThreadId tid);

  /// Modeled parker token word of `tid` (kPk* constants in platform.hpp).
  [[nodiscard]] std::uint64_t& parker_word(ThreadId tid);

  /// Records a cross-thread-visible mutation (platform word write, checker
  /// event, fault injection): gated spinners become selectable again.
  void note_write() { ++write_stamp_; }

  void on_event(Context& ctx, ChkEvent e, std::uint64_t arg);

  [[nodiscard]] Nanos now() const { return clock_; }
  [[nodiscard]] bool oversubscribed() const { return oversubscribed_; }
  void set_oversubscribed(bool v) { oversubscribed_ = v; }

  /// Oracle hooks (Context annotations).
  void cs_enter(Context& ctx);
  void cs_exit(Context& ctx);
  void inject_unpark(Context& ctx, ThreadId target);
  void flip_oversubscribed(Context& ctx);

  /// Flags a violation from a model thread and unwinds it.
  [[noreturn]] void fail_here(Context& ctx, const std::string& msg);
  /// Flags a violation from host-side code (on_finish checks).
  void fail_host(const std::string& msg);

  /// The engine whose schedule is currently executing on this host thread
  /// (for context-free hooks). Null outside explore/replay.
  [[nodiscard]] static Engine* current() { return current_; }

 private:
  friend class ScenarioFrame;

  enum class Status : std::uint8_t {
    kRunnable,
    kParkedUntimed,
    kParkedTimed,
    kFinished,
  };

  struct ThreadState {
    explicit ThreadState(Context c) : ctx(c) {}
    Context ctx;
    std::unique_ptr<sim::Coroutine> coro;
    Status status = Status::kRunnable;
    Nanos wake_deadline = kForever;
    bool gated = false;           ///< paused: wait for a write / all-gated
    std::uint64_t gate_stamp = 0; ///< write_stamp_ when the gate closed
    bool wake_by_timeout = false;
    bool aborting = false;        ///< already thrown ScheduleAborted
    std::uint64_t parker = 0;     ///< modeled parker token word
    const char* last_tag = "";
  };

  /// A waiter registered with the lock, as the oracles see it.
  struct RegInfo {
    ThreadId tid;
    std::uint64_t order;  ///< registration sequence number
    Priority priority;
    std::uint64_t generation;  ///< scheduler-install count at registration
  };

  struct ScheduleOutcome {
    bool failed = false;
    std::uint64_t steps = 0;
  };

  ScheduleOutcome run_schedule(const Scenario& scenario, Strategy& strategy);
  void reset_schedule_state();
  void build_enabled(std::vector<Action>& out);
  void apply(const Action& a);
  void resume(ThreadState& ts);
  void suspend(ThreadState& ts);
  void unwind_all();
  void record_failure(const std::string& msg);
  void finish_checks();
  [[nodiscard]] ThreadState& state_of(Context& ctx);
  [[nodiscard]] std::string describe_threads() const;

  static thread_local Engine* current_;

  Domain domain_;

  // Schedule state.
  std::vector<std::unique_ptr<ThreadState>> threads_;
  std::vector<std::function<void(Context&)>> bodies_;
  std::vector<Priority> body_priorities_;
  std::function<void()> finish_;
  ThreadState* running_ = nullptr;
  ThreadId last_tid_ = kInvalidThread;
  std::vector<Action> trace_;
  std::vector<std::uint64_t> events_;
  Nanos clock_ = 1;
  std::uint64_t steps_ = 0;
  std::uint64_t write_stamp_ = 0;
  std::uint64_t max_steps_ = 50'000;
  bool oversubscribed_ = false;
  bool abort_ = false;
  bool failed_ = false;
  std::string failure_;
  std::string failure_tag_;

  // Oracle state.
  FairnessMode fairness_ = FairnessMode::kNone;
  std::vector<RegInfo> waiting_;
  std::uint64_t reg_counter_ = 0;
  std::uint64_t generation_ = 0;
  Priority threshold_ = 0;
  bool threshold_active_ = false;
  std::uint32_t cs_depth_ = 0;
  ThreadId cs_owner_ = kInvalidThread;
  std::uint32_t fast_release_depth_ = 0;
  std::uint32_t config_mutate_depth_ = 0;
  std::uint32_t breaker_mirror_ = 0;
  ThreadId scratch_owner_ = kInvalidThread;
};

/// Serializes an action sequence ("r0.r1.t1...") / parses it back.
std::string format_trace(const std::vector<Action>& trace);
std::vector<Action> parse_trace(const std::string& s);

inline Domain& ScenarioFrame::domain() const { return engine_->domain(); }

inline void Context::cs_enter() { engine_->cs_enter(*this); }
inline void Context::cs_exit() { engine_->cs_exit(*this); }
inline void Context::spurious_unpark(ThreadId tid) {
  engine_->inject_unpark(*this, tid);
}
inline void Context::flip_oversubscribed() {
  engine_->flip_oversubscribed(*this);
}

}  // namespace relock::chk
