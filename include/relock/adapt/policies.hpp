// Adaptation policies (paper section 6 / [MS93]): "a waiting policy based
// on dynamic feedback (reporting the state of a lock) is essential for
// better application performance... Such an object uses a builtin monitor
// and an adaptation algorithm to implement a feedback loop to configure its
// own attributes."
//
// A policy consumes periodic LockStats deltas from the monitor module and
// emits configuration actions; the Adaptor (adaptor.hpp) applies them to a
// lock via possess/configure.
#pragma once

#include <cstdint>
#include <optional>
#include <variant>

#include "relock/core/attributes.hpp"
#include "relock/monitor/lock_monitor.hpp"

namespace relock::adapt {

struct SetWaitingPolicy {
  LockAttributes attributes;
};
struct SetScheduler {
  SchedulerKind kind;
};
struct SetThreshold {
  Priority threshold;
};

using AdaptAction =
    std::variant<SetWaitingPolicy, SetScheduler, SetThreshold>;

/// Stats observed since the previous policy evaluation.
struct StatsDelta {
  std::uint64_t acquisitions = 0;
  std::uint64_t contended = 0;
  std::uint64_t blocks = 0;
  std::uint64_t timeouts = 0;
  double mean_hold_ns = 0.0;
  double mean_wait_ns = 0.0;

  [[nodiscard]] double contention_ratio() const {
    return acquisitions == 0
               ? 0.0
               : static_cast<double>(contended) /
                     static_cast<double>(acquisitions);
  }
};

/// Computes the delta between two snapshots.
[[nodiscard]] inline StatsDelta delta_between(const LockStats& prev,
                                              const LockStats& cur) {
  // A monitor reset between the two snapshots restarts every counter
  // window, so `prev` is not a comparable floor: subtracting it would
  // underflow the unsigned counters into astronomically large "deltas"
  // (the pre-generation-counter bug). The window since the reset is
  // exactly what `cur` holds, so use it as the delta.
  if (cur.reset_generation != prev.reset_generation) {
    StatsDelta d;
    d.acquisitions = cur.acquisitions;
    d.contended = cur.contended_acquisitions;
    d.blocks = cur.blocks;
    d.timeouts = cur.timeouts;
    d.mean_hold_ns = cur.mean_hold_ns();
    d.mean_wait_ns = cur.mean_wait_ns();
    return d;
  }
  StatsDelta d;
  d.acquisitions = cur.acquisitions - prev.acquisitions;
  d.contended = cur.contended_acquisitions - prev.contended_acquisitions;
  d.blocks = cur.blocks - prev.blocks;
  d.timeouts = cur.timeouts - prev.timeouts;
  // Duration means are per timed sample: real-concurrency platforms time
  // a 1-in-N sample of operations (see LockMonitor::timing_sample), so the
  // sums must be normalized by the sample counts, not the event counts.
  const std::uint64_t held = cur.timed_holds - prev.timed_holds;
  d.mean_hold_ns =
      held == 0 ? 0.0
                : static_cast<double>(cur.total_hold_ns - prev.total_hold_ns) /
                      static_cast<double>(held);
  const std::uint64_t waited = cur.timed_waits - prev.timed_waits;
  d.mean_wait_ns =
      waited == 0
          ? 0.0
          : static_cast<double>(cur.total_wait_ns - prev.total_wait_ns) /
                static_cast<double>(waited);
  return d;
}

/// Abstract adaptation policy.
class AdaptationPolicy {
 public:
  virtual ~AdaptationPolicy() = default;
  /// Evaluates one monitoring interval; returns an action or nothing.
  virtual std::optional<AdaptAction> evaluate(const StatsDelta& d) = 0;
};

/// Spin<->block hysteresis on observed hold times: long critical sections
/// indicate waiters should sleep (spinning wastes their processors); short
/// ones indicate they should spin (blocking costs more than the wait).
/// The thresholds form a hysteresis band to prevent oscillation.
class SpinBlockHysteresisPolicy final : public AdaptationPolicy {
 public:
  struct Params {
    /// Switch to blocking when mean hold exceeds this.
    double block_above_ns = 500'000.0;
    /// Switch back to spinning when mean hold drops below this.
    double spin_below_ns = 150'000.0;
    /// Minimum acquisitions per interval before acting (noise gate).
    std::uint64_t min_samples = 8;
    /// Spin probes to keep in front of the sleep (combined lock).
    std::uint32_t residual_spins = 10;
  };

  SpinBlockHysteresisPolicy() : SpinBlockHysteresisPolicy(Params{}) {}
  explicit SpinBlockHysteresisPolicy(Params p) : params_(p) {}

  std::optional<AdaptAction> evaluate(const StatsDelta& d) override {
    if (d.acquisitions < params_.min_samples) return std::nullopt;
    if (!blocking_ && d.mean_hold_ns > params_.block_above_ns) {
      blocking_ = true;
      return AdaptAction{SetWaitingPolicy{
          LockAttributes::combined(params_.residual_spins, kForever)}};
    }
    if (blocking_ && d.mean_hold_ns < params_.spin_below_ns) {
      blocking_ = false;
      return AdaptAction{SetWaitingPolicy{LockAttributes::spin()}};
    }
    return std::nullopt;
  }

  [[nodiscard]] bool blocking() const noexcept { return blocking_; }

 private:
  Params params_;
  bool blocking_ = false;
};

/// Contention-driven scheduler policy: under heavy contention a queueing
/// scheduler (FCFS handoff) avoids the hot-spot traffic of barging; under
/// light contention the centralized lock's cheaper release path wins.
class ContentionSchedulerPolicy final : public AdaptationPolicy {
 public:
  struct Params {
    double queue_above = 0.5;   ///< contention ratio to adopt FCFS
    double barge_below = 0.1;   ///< contention ratio to drop back to kNone
    std::uint64_t min_samples = 8;
  };

  ContentionSchedulerPolicy() : ContentionSchedulerPolicy(Params{}) {}
  explicit ContentionSchedulerPolicy(Params p) : params_(p) {}

  std::optional<AdaptAction> evaluate(const StatsDelta& d) override {
    if (d.acquisitions < params_.min_samples) return std::nullopt;
    const double ratio = d.contention_ratio();
    if (!queued_ && ratio > params_.queue_above) {
      queued_ = true;
      return AdaptAction{SetScheduler{SchedulerKind::kFcfs}};
    }
    if (queued_ && ratio < params_.barge_below) {
      queued_ = false;
      return AdaptAction{SetScheduler{SchedulerKind::kNone}};
    }
    return std::nullopt;
  }

  [[nodiscard]] bool queued() const noexcept { return queued_; }

 private:
  Params params_;
  bool queued_ = false;
};

/// Phase detector: flags intervals whose mean hold time departs from the
/// running EWMA by more than a factor, signalling a workload phase change
/// that warrants re-evaluation by a surrounding policy.
class PhaseDetector {
 public:
  struct Params {
    double alpha = 0.25;   ///< EWMA smoothing
    double factor = 3.0;   ///< departure factor that defines a new phase
  };

  PhaseDetector() : PhaseDetector(Params{}) {}
  explicit PhaseDetector(Params p) : params_(p) {}

  /// Returns true when the sample signals a phase change.
  bool observe(double mean_hold_ns) {
    if (mean_hold_ns <= 0.0) return false;
    if (ewma_ <= 0.0) {
      ewma_ = mean_hold_ns;
      return false;
    }
    const bool changed = mean_hold_ns > ewma_ * params_.factor ||
                         mean_hold_ns * params_.factor < ewma_;
    ewma_ = params_.alpha * mean_hold_ns + (1.0 - params_.alpha) * ewma_;
    if (changed) ++phases_;
    return changed;
  }

  [[nodiscard]] double ewma() const noexcept { return ewma_; }
  [[nodiscard]] std::uint64_t phases_detected() const noexcept {
    return phases_;
  }

 private:
  Params params_;
  double ewma_ = 0.0;
  std::uint64_t phases_ = 0;
};

}  // namespace relock::adapt
