// Adaptation policies (paper section 6 / [MS93]): "a waiting policy based
// on dynamic feedback (reporting the state of a lock) is essential for
// better application performance... Such an object uses a builtin monitor
// and an adaptation algorithm to implement a feedback loop to configure its
// own attributes."
//
// A policy consumes periodic LockStats deltas from the monitor module and
// emits configuration actions; the Adaptor (adaptor.hpp) applies them to a
// lock via possess/configure.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <variant>
#include <vector>

#include "relock/core/attributes.hpp"
#include "relock/monitor/lock_monitor.hpp"

namespace relock::adapt {

struct SetWaitingPolicy {
  LockAttributes attributes;
};
struct SetScheduler {
  SchedulerKind kind;
};
struct SetThreshold {
  Priority threshold;
};

using AdaptAction =
    std::variant<SetWaitingPolicy, SetScheduler, SetThreshold>;

/// Stats observed since the previous policy evaluation.
struct StatsDelta {
  std::uint64_t acquisitions = 0;
  std::uint64_t contended = 0;
  std::uint64_t blocks = 0;
  std::uint64_t timeouts = 0;
  double mean_hold_ns = 0.0;
  double mean_wait_ns = 0.0;
  /// Domain census at evaluation time: more registered threads than
  /// processors. Filled by the caller (Adaptor / PolicyEngine) on
  /// platforms that expose a census, false elsewhere - it is an input to
  /// the cost-model and scheduler-switch policies, not a monitor counter.
  bool oversubscribed = false;

  [[nodiscard]] double contention_ratio() const {
    return acquisitions == 0
               ? 0.0
               : static_cast<double>(contended) /
                     static_cast<double>(acquisitions);
  }
};

/// Computes the delta between two snapshots.
[[nodiscard]] inline StatsDelta delta_between(const LockStats& prev,
                                              const LockStats& cur) {
  // A monitor reset between the two snapshots restarts every counter
  // window, so `prev` is not a comparable floor: subtracting it would
  // underflow the unsigned counters into astronomically large "deltas"
  // (the pre-generation-counter bug). The window since the reset is
  // exactly what `cur` holds, so use it as the delta.
  if (cur.reset_generation != prev.reset_generation) {
    StatsDelta d;
    d.acquisitions = cur.acquisitions;
    d.contended = cur.contended_acquisitions;
    d.blocks = cur.blocks;
    d.timeouts = cur.timeouts;
    d.mean_hold_ns = cur.mean_hold_ns();
    d.mean_wait_ns = cur.mean_wait_ns();
    return d;
  }
  StatsDelta d;
  d.acquisitions = cur.acquisitions - prev.acquisitions;
  d.contended = cur.contended_acquisitions - prev.contended_acquisitions;
  d.blocks = cur.blocks - prev.blocks;
  d.timeouts = cur.timeouts - prev.timeouts;
  // Duration means are per timed sample: real-concurrency platforms time
  // a 1-in-N sample of operations (see LockMonitor::timing_sample), so the
  // sums must be normalized by the sample counts, not the event counts.
  const std::uint64_t held = cur.timed_holds - prev.timed_holds;
  d.mean_hold_ns =
      held == 0 ? 0.0
                : static_cast<double>(cur.total_hold_ns - prev.total_hold_ns) /
                      static_cast<double>(held);
  const std::uint64_t waited = cur.timed_waits - prev.timed_waits;
  d.mean_wait_ns =
      waited == 0
          ? 0.0
          : static_cast<double>(cur.total_wait_ns - prev.total_wait_ns) /
                static_cast<double>(waited);
  return d;
}

/// Abstract adaptation policy.
class AdaptationPolicy {
 public:
  virtual ~AdaptationPolicy() = default;
  /// Evaluates one monitoring interval; returns an action or nothing.
  virtual std::optional<AdaptAction> evaluate(const StatsDelta& d) = 0;
};

/// Spin<->block hysteresis on observed hold times: long critical sections
/// indicate waiters should sleep (spinning wastes their processors); short
/// ones indicate they should spin (blocking costs more than the wait).
/// The thresholds form a hysteresis band to prevent oscillation.
class SpinBlockHysteresisPolicy final : public AdaptationPolicy {
 public:
  struct Params {
    /// Switch to blocking when mean hold exceeds this.
    double block_above_ns = 500'000.0;
    /// Switch back to spinning when mean hold drops below this.
    double spin_below_ns = 150'000.0;
    /// Minimum acquisitions per interval before acting (noise gate).
    std::uint64_t min_samples = 8;
    /// Spin probes to keep in front of the sleep (combined lock).
    std::uint32_t residual_spins = 10;
  };

  SpinBlockHysteresisPolicy() : SpinBlockHysteresisPolicy(Params{}) {}
  explicit SpinBlockHysteresisPolicy(Params p) : params_(p) {}

  std::optional<AdaptAction> evaluate(const StatsDelta& d) override {
    if (d.acquisitions < params_.min_samples) return std::nullopt;
    if (!blocking_ && d.mean_hold_ns > params_.block_above_ns) {
      blocking_ = true;
      return AdaptAction{SetWaitingPolicy{
          LockAttributes::combined(params_.residual_spins, kForever)}};
    }
    if (blocking_ && d.mean_hold_ns < params_.spin_below_ns) {
      blocking_ = false;
      return AdaptAction{SetWaitingPolicy{LockAttributes::spin()}};
    }
    return std::nullopt;
  }

  [[nodiscard]] bool blocking() const noexcept { return blocking_; }

 private:
  Params params_;
  bool blocking_ = false;
};

/// Contention-driven scheduler policy: under heavy contention a queueing
/// scheduler (FCFS handoff) avoids the hot-spot traffic of barging; under
/// light contention the centralized lock's cheaper release path wins.
class ContentionSchedulerPolicy final : public AdaptationPolicy {
 public:
  struct Params {
    double queue_above = 0.5;   ///< contention ratio to adopt FCFS
    double barge_below = 0.1;   ///< contention ratio to drop back to kNone
    std::uint64_t min_samples = 8;
  };

  ContentionSchedulerPolicy() : ContentionSchedulerPolicy(Params{}) {}
  explicit ContentionSchedulerPolicy(Params p) : params_(p) {}

  std::optional<AdaptAction> evaluate(const StatsDelta& d) override {
    if (d.acquisitions < params_.min_samples) return std::nullopt;
    const double ratio = d.contention_ratio();
    if (!queued_ && ratio > params_.queue_above) {
      queued_ = true;
      return AdaptAction{SetScheduler{SchedulerKind::kFcfs}};
    }
    if (queued_ && ratio < params_.barge_below) {
      queued_ = false;
      return AdaptAction{SetScheduler{SchedulerKind::kNone}};
    }
    return std::nullopt;
  }

  [[nodiscard]] bool queued() const noexcept { return queued_; }

 private:
  Params params_;
  bool queued_ = false;
};

/// Mutable-Locks-style waiting cost model (PAPERS.md, arXiv 1906.00490):
/// spinning is worth it only while the expected wait is cheaper than the
/// pair of context switches a park/unpark round trip costs; past that,
/// every spinning waiter burns a processor the holder could be running on.
/// The decision variable is the observed mean wait per interval against a
/// 2x-context-switch budget with a multiplicative hysteresis band, and a
/// domain oversubscription census forces the sleep side outright (spinning
/// while processors are oversubscribed steals cycles from the very thread
/// being waited on). The sleep side keeps a short spin phase in front of
/// the park (the paper's combined lock; Mutable Locks' "spin-then-block").
class CostModelWaitPolicy final : public AdaptationPolicy {
 public:
  struct Params {
    /// Estimated park+unpark round trip. The Mutable Locks rule spins
    /// while expected wait < 2 * this.
    double context_switch_ns = 5'000.0;
    /// Multiplicative dead band around the 2x budget (no oscillation when
    /// the mean wait hovers at the boundary).
    double hysteresis = 1.5;
    /// Minimum acquisitions per interval before acting (noise gate).
    std::uint64_t min_samples = 8;
    /// Spin probes kept in front of the park on the sleep side.
    std::uint32_t residual_spins = 32;
  };

  CostModelWaitPolicy() : CostModelWaitPolicy(Params{}) {}
  explicit CostModelWaitPolicy(Params p, bool start_sleeping = false)
      : params_(p), sleeping_(start_sleeping) {}

  std::optional<AdaptAction> evaluate(const StatsDelta& d) override {
    if (d.acquisitions < params_.min_samples) return std::nullopt;
    const double budget = 2.0 * params_.context_switch_ns;
    if (!sleeping_ &&
        (d.oversubscribed || d.mean_wait_ns > budget * params_.hysteresis)) {
      sleeping_ = true;
      return AdaptAction{SetWaitingPolicy{
          LockAttributes::combined(params_.residual_spins, kForever)}};
    }
    if (sleeping_ && !d.oversubscribed && d.mean_wait_ns > 0.0 &&
        d.mean_wait_ns < budget / params_.hysteresis) {
      sleeping_ = false;
      return AdaptAction{SetWaitingPolicy{LockAttributes::spin()}};
    }
    return std::nullopt;
  }

  [[nodiscard]] bool sleeping() const noexcept { return sleeping_; }

 private:
  Params params_;
  bool sleeping_ = false;
};

/// Scheduler-kind switch between the centralized FCFS module and the
/// distributed MCS-family queue ("Correctness of Hierarchical MCS Locks
/// with Timeout", PAPERS.md): the queue's local spinning scales under
/// heavy contention on dedicated processors, but FIFO handoff to a
/// preempted waiter stalls the whole chain once the domain oversubscribes
/// - detected oversubscription drops back to kFcfs (whose waiters can
/// park), and sustained contention on a non-oversubscribed domain adopts
/// kQueue.
class OversubscriptionSchedulerPolicy final : public AdaptationPolicy {
 public:
  struct Params {
    double queue_above = 0.25;  ///< contention ratio to adopt the queue
    double fcfs_below = 0.05;   ///< and to drop back to centralized FCFS
    std::uint64_t min_samples = 8;
  };

  OversubscriptionSchedulerPolicy()
      : OversubscriptionSchedulerPolicy(Params{}) {}
  explicit OversubscriptionSchedulerPolicy(Params p, bool start_queued = false)
      : params_(p), queued_(start_queued) {}

  std::optional<AdaptAction> evaluate(const StatsDelta& d) override {
    if (d.acquisitions < params_.min_samples) return std::nullopt;
    if (queued_) {
      if (d.oversubscribed || d.contention_ratio() < params_.fcfs_below) {
        queued_ = false;
        return AdaptAction{SetScheduler{SchedulerKind::kFcfs}};
      }
      return std::nullopt;
    }
    if (!d.oversubscribed && d.contention_ratio() > params_.queue_above) {
      queued_ = true;
      return AdaptAction{SetScheduler{SchedulerKind::kQueue}};
    }
    return std::nullopt;
  }

  [[nodiscard]] bool queued() const noexcept { return queued_; }

 private:
  Params params_;
  bool queued_ = false;
};

/// Threshold resizing under bursty arrivals (kPriorityThreshold locks):
/// when the arrival rate spikes against its running EWMA, raise the
/// threshold so only waiters at or above the burst priority are served
/// while the burst drains; when arrivals subside, drop back so everyone is
/// eligible again. The EWMA is seeded by the first interval and the
/// surge/subside factors form the hysteresis band.
class BurstThresholdPolicy final : public AdaptationPolicy {
 public:
  struct Params {
    Priority calm_threshold = kDefaultPriority;
    Priority burst_threshold = 1;
    double alpha = 0.25;          ///< EWMA smoothing
    double surge_factor = 3.0;    ///< rate > factor * EWMA opens a burst
    double subside_factor = 1.5;  ///< rate * factor < EWMA closes it
    std::uint64_t min_samples = 8;
  };

  BurstThresholdPolicy() : BurstThresholdPolicy(Params{}) {}
  explicit BurstThresholdPolicy(Params p) : params_(p) {}

  std::optional<AdaptAction> evaluate(const StatsDelta& d) override {
    const double rate = static_cast<double>(d.acquisitions);
    if (ewma_ < 0.0) {  // first interval seeds the running mean
      ewma_ = rate;
      return std::nullopt;
    }
    const double prev = ewma_;
    ewma_ = params_.alpha * rate + (1.0 - params_.alpha) * ewma_;
    if (d.acquisitions < params_.min_samples) {
      // Quiet interval: any open burst is over.
      if (surged_) {
        surged_ = false;
        return AdaptAction{SetThreshold{params_.calm_threshold}};
      }
      return std::nullopt;
    }
    if (!surged_ && prev > 0.0 && rate > prev * params_.surge_factor) {
      surged_ = true;
      return AdaptAction{SetThreshold{params_.burst_threshold}};
    }
    if (surged_ && rate * params_.subside_factor < prev) {
      surged_ = false;
      return AdaptAction{SetThreshold{params_.calm_threshold}};
    }
    return std::nullopt;
  }

  [[nodiscard]] bool surged() const noexcept { return surged_; }

 private:
  Params params_;
  double ewma_ = -1.0;
  bool surged_ = false;
};

/// Composable policy stack: members are evaluated in order and the first
/// engaged action wins the interval (one reconfiguration per interval
/// keeps cause and effect attributable - the next delta reflects exactly
/// one change). Members skipped after a hit just miss one interval; their
/// own hysteresis state is untouched, so no member can desynchronize from
/// the lock by having an emitted action silently dropped.
class PolicyStack final : public AdaptationPolicy {
 public:
  PolicyStack() = default;
  explicit PolicyStack(std::vector<std::unique_ptr<AdaptationPolicy>> ps)
      : policies_(std::move(ps)) {}

  void push(std::unique_ptr<AdaptationPolicy> p) {
    policies_.push_back(std::move(p));
  }
  [[nodiscard]] std::size_t size() const noexcept { return policies_.size(); }

  std::optional<AdaptAction> evaluate(const StatsDelta& d) override {
    for (const std::unique_ptr<AdaptationPolicy>& p : policies_) {
      if (std::optional<AdaptAction> a = p->evaluate(d)) return a;
    }
    return std::nullopt;
  }

 private:
  std::vector<std::unique_ptr<AdaptationPolicy>> policies_;
};

/// Phase detector: flags intervals whose mean hold time departs from the
/// running EWMA by more than a factor, signalling a workload phase change
/// that warrants re-evaluation by a surrounding policy.
class PhaseDetector {
 public:
  struct Params {
    double alpha = 0.25;   ///< EWMA smoothing
    double factor = 3.0;   ///< departure factor that defines a new phase
  };

  PhaseDetector() : PhaseDetector(Params{}) {}
  explicit PhaseDetector(Params p) : params_(p) {}

  /// Returns true when the sample signals a phase change.
  bool observe(double mean_hold_ns) {
    if (mean_hold_ns <= 0.0) return false;
    if (ewma_ <= 0.0) {
      ewma_ = mean_hold_ns;
      return false;
    }
    const bool changed = mean_hold_ns > ewma_ * params_.factor ||
                         mean_hold_ns * params_.factor < ewma_;
    ewma_ = params_.alpha * mean_hold_ns + (1.0 - params_.alpha) * ewma_;
    if (changed) ++phases_;
    return changed;
  }

  [[nodiscard]] double ewma() const noexcept { return ewma_; }
  [[nodiscard]] std::uint64_t phases_detected() const noexcept {
    return phases_;
  }

 private:
  Params params_;
  double ewma_ = 0.0;
  std::uint64_t phases_ = 0;
};

}  // namespace relock::adapt
