// The external adaptation agent: "a thread monitoring the state of the lock
// may request ownership of an attribute to reconfigure the lock to a desired
// configuration" (paper section 3.1):
//
//   passive-lock.possess(a-attribute)
//   passive-lock.configure(a-attribute, new-config)
//
// Adaptor wires a LockMonitor-equipped ConfigurableLock to an
// AdaptationPolicy: each step() takes a stats snapshot, computes the delta,
// asks the policy for an action, and applies it under attribute possession.
#pragma once

#include <memory>

#include "relock/adapt/policies.hpp"
#include "relock/core/configurable_lock.hpp"

namespace relock::adapt {

template <Platform P>
class Adaptor {
 public:
  using Ctx = typename P::Context;

  Adaptor(ConfigurableLock<P>& lock, std::unique_ptr<AdaptationPolicy> policy)
      : lock_(lock), policy_(std::move(policy)),
        last_(lock.monitor().snapshot()) {}

  /// One feedback-loop iteration. Returns true if a reconfiguration was
  /// applied.
  bool step(Ctx& ctx) {
    const LockStats cur = lock_.monitor().snapshot();
    const StatsDelta d = delta_between(last_, cur);
    last_ = cur;
    const std::optional<AdaptAction> action = policy_->evaluate(d);
    if (!action.has_value()) return false;
    apply(ctx, *action);
    ++applied_;
    return true;
  }

  [[nodiscard]] std::uint64_t actions_applied() const noexcept {
    return applied_;
  }

 private:
  void apply(Ctx& ctx, const AdaptAction& action) {
    if (const auto* w = std::get_if<SetWaitingPolicy>(&action)) {
      lock_.possess(ctx, AttributeClass::kWaitingPolicy);
      lock_.configure_waiting(ctx, w->attributes);
      lock_.release_possession(ctx, AttributeClass::kWaitingPolicy);
    } else if (const auto* s = std::get_if<SetScheduler>(&action)) {
      lock_.possess(ctx, AttributeClass::kScheduler);
      lock_.configure_scheduler(ctx, s->kind);
      lock_.release_possession(ctx, AttributeClass::kScheduler);
    } else if (const auto* t = std::get_if<SetThreshold>(&action)) {
      lock_.possess(ctx, AttributeClass::kScheduler);
      lock_.set_priority_threshold(ctx, t->threshold);
      lock_.release_possession(ctx, AttributeClass::kScheduler);
    }
  }

  ConfigurableLock<P>& lock_;
  std::unique_ptr<AdaptationPolicy> policy_;
  LockStats last_;
  std::uint64_t applied_ = 0;
};

}  // namespace relock::adapt
