// The external adaptation agent: "a thread monitoring the state of the lock
// may request ownership of an attribute to reconfigure the lock to a desired
// configuration" (paper section 3.1):
//
//   passive-lock.possess(a-attribute)
//   passive-lock.configure(a-attribute, new-config)
//
// Adaptor wires a LockMonitor-equipped ConfigurableLock to an
// AdaptationPolicy: each step() takes a stats snapshot, computes the delta,
// asks the policy for an action, and applies it under attribute possession.
#pragma once

#include <memory>

#include "relock/adapt/policies.hpp"
#include "relock/core/configurable_lock.hpp"

namespace relock::adapt {

/// True when applying `action` would leave `lock` in the configuration it
/// already targets: identical waiting attributes, the kind arrivals already
/// register under, or the installed threshold. Suppressing these skips the
/// whole possess/configure round-trip - and, on real platforms, the
/// quiescence break a possession inflicts on every concurrent releaser.
template <Platform P>
[[nodiscard]] bool action_is_noop(const ConfigurableLock<P>& lock,
                                  const AdaptAction& action) {
  if (const auto* w = std::get_if<SetWaitingPolicy>(&action)) {
    return lock.attributes() == w->attributes;
  }
  if (const auto* s = std::get_if<SetScheduler>(&action)) {
    return lock.target_scheduler_kind() == s->kind;
  }
  const auto* t = std::get_if<SetThreshold>(&action);
  return t != nullptr && lock.priority_threshold() == t->threshold;
}

/// Fills the platform-census field of a delta (a no-op on platforms
/// without an oversubscription census, e.g. the simulator).
template <Platform P>
void fill_census(typename P::Context& ctx, StatsDelta& d) {
  if constexpr (requires { P::oversubscribed(ctx); }) {
    d.oversubscribed = P::oversubscribed(ctx);
  }
}

template <Platform P>
class Adaptor {
 public:
  using Ctx = typename P::Context;

  Adaptor(ConfigurableLock<P>& lock, std::unique_ptr<AdaptationPolicy> policy)
      : lock_(lock), policy_(std::move(policy)) {
    lock.monitor().snapshot_into(last_);
  }

  /// One feedback-loop iteration. Returns true if a reconfiguration was
  /// applied.
  bool step(Ctx& ctx) {
    lock_.monitor().snapshot_into(scratch_);
    StatsDelta d = delta_between(last_, scratch_);
    fill_census<P>(ctx, d);
    last_ = scratch_;
    const std::optional<AdaptAction> action = policy_->evaluate(d);
    if (!action.has_value()) return false;
    if (action_is_noop(lock_, *action)) {
      ++suppressed_;
      return false;
    }
    apply(ctx, *action);
    ++applied_;
    return true;
  }

  [[nodiscard]] std::uint64_t actions_applied() const noexcept {
    return applied_;
  }
  /// Actions the policy emitted whose target equalled the current
  /// configuration (skipped without a possess/configure round-trip).
  [[nodiscard]] std::uint64_t actions_suppressed() const noexcept {
    return suppressed_;
  }

 private:
  void apply(Ctx& ctx, const AdaptAction& action) {
    if (const auto* w = std::get_if<SetWaitingPolicy>(&action)) {
      lock_.possess(ctx, AttributeClass::kWaitingPolicy);
      lock_.configure_waiting(ctx, w->attributes);
      lock_.release_possession(ctx, AttributeClass::kWaitingPolicy);
    } else if (const auto* s = std::get_if<SetScheduler>(&action)) {
      lock_.possess(ctx, AttributeClass::kScheduler);
      lock_.configure_scheduler(ctx, s->kind);
      lock_.release_possession(ctx, AttributeClass::kScheduler);
    } else if (const auto* t = std::get_if<SetThreshold>(&action)) {
      lock_.possess(ctx, AttributeClass::kScheduler);
      lock_.set_priority_threshold(ctx, t->threshold);
      lock_.release_possession(ctx, AttributeClass::kScheduler);
    }
  }

  ConfigurableLock<P>& lock_;
  std::unique_ptr<AdaptationPolicy> policy_;
  LockStats last_;
  LockStats scratch_;
  std::uint64_t applied_ = 0;
  std::uint64_t suppressed_ = 0;
};

}  // namespace relock::adapt
