// The closed-loop adaptation engine: the paper's "thread monitoring the
// state of the lock" (section 3.1) grown into a production governor that
// keeps MANY locks in their fastest configuration at once.
//
// A PolicyEngine owns a registry of locks - explicitly registered
// ConfigurableLocks plus, via LockTable's inflation hooks, whichever table
// entries are currently hot. Each tick() it consumes every registered
// lock's sharded LockMonitor delta through the allocation-free
// snapshot_into() path, feeds it to that lock's policy stack (cost-model
// spin<->sleep, scheduler-kind switch under oversubscription, threshold
// resizing under bursts - see policies.hpp), and applies the resulting
// actions under attribute possession, subject to three dampers:
//
//   no-op suppression   an action whose target equals the current
//                       configuration is dropped before any possession
//   per-lock cooldown   a lock that just reconfigured stays quiet for
//                       `cooldown_ticks` governor passes (engine-level
//                       hysteresis on top of each policy's own band)
//   global rate limit   at most `max_actions_per_tick` reconfigurations
//                       per pass across ALL locks - a storm of flapping
//                       locks cannot monopolize the governor
//
// Dampened actions are DEFERRED, not dropped: a policy that emitted an
// action has already advanced its internal hysteresis state, so silently
// discarding the action would desynchronize it from the lock forever. The
// deferred action retries on subsequent ticks (and evaporates if the lock
// reaches the target configuration some other way). Possession uses
// try_possess - the fast-fail single test-and-set of paper Table 6 - so
// two governors (or a governor and any other external agent) contending on
// the same lock skip instead of serializing.
//
// Threading: registration and unregistration are safe from any thread,
// concurrently with tick(); tick() itself is single-consumer (one governor
// thread - or one model-checker thread - at a time). Per-lock state is
// reclaimed only inside tick(), so an unregister racing a tick never frees
// policy state mid-evaluation. The production shape is one GovernorThread
// per domain; tests and the relock-check scenarios drive tick() directly.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "relock/adapt/adaptor.hpp"
#include "relock/core/configurable_lock.hpp"

namespace relock::adapt {

template <Platform P>
class PolicyEngine {
 public:
  using Ctx = typename P::Context;
  using Lock = ConfigurableLock<P>;
  /// Builds the policy stack for a lock registered without an explicit
  /// policy. Receives the lock so the stack can match its configuration
  /// (scheduler-dependent members, initial hysteresis side).
  using PolicyFactory =
      std::function<std::unique_ptr<AdaptationPolicy>(const Lock&)>;

  struct Options {
    /// Registry slots. Fixed for the engine's lifetime; registration is
    /// best-effort once full (hot table entries simply stay unmanaged).
    std::uint32_t capacity = 256;
    /// Global rate limiter: reconfigurations applied per tick across all
    /// registered locks. Excess actions defer to later ticks.
    std::uint32_t max_actions_per_tick = 4;
    /// Engine-level per-lock hysteresis: ticks a lock stays quiet after an
    /// applied action before the engine reconfigures it again.
    std::uint32_t cooldown_ticks = 2;
    /// Stack builder for default registrations; null = default_stack().
    PolicyFactory policy_factory;
  };

  /// Tick-loop bookkeeping. Mutated only inside tick(); read it from the
  /// ticking thread or after the governor has stopped.
  struct Counters {
    std::uint64_t ticks = 0;
    std::uint64_t evaluated = 0;           ///< policy evaluations run
    std::uint64_t applied = 0;             ///< reconfigurations applied
    std::uint64_t suppressed_noop = 0;     ///< target == current config
    std::uint64_t suppressed_cooldown = 0; ///< deferred by per-lock cooldown
    std::uint64_t rate_limited = 0;        ///< deferred by the global limit
    std::uint64_t possession_busy = 0;     ///< try_possess lost; deferred
  };

  explicit PolicyEngine(Options opts = Options{})
      : opts_(opts),
        slots_(std::make_unique<Slot[]>(opts.capacity)) {}

  PolicyEngine(const PolicyEngine&) = delete;
  PolicyEngine& operator=(const PolicyEngine&) = delete;

  /// Default per-lock stack: the cost-model waiting policy everywhere,
  /// the oversubscription scheduler switch for kinds it can switch
  /// between, burst threshold resizing for threshold schedulers. Initial
  /// hysteresis sides are seeded from the lock's current configuration so
  /// the first interval cannot emit a flip to where the lock already is.
  static std::unique_ptr<AdaptationPolicy> default_stack(const Lock& lk) {
    auto stack = std::make_unique<PolicyStack>();
    const LockAttributes attrs = lk.attributes();
    stack->push(std::make_unique<CostModelWaitPolicy>(
        CostModelWaitPolicy::Params{}, /*start_sleeping=*/attrs.sleep_ns != 0));
    const SchedulerKind kind = lk.target_scheduler_kind();
    if (kind == SchedulerKind::kFcfs || kind == SchedulerKind::kQueue) {
      stack->push(std::make_unique<OversubscriptionSchedulerPolicy>(
          OversubscriptionSchedulerPolicy::Params{},
          /*start_queued=*/kind == SchedulerKind::kQueue));
    }
    if (kind == SchedulerKind::kPriorityThreshold) {
      stack->push(std::make_unique<BurstThresholdPolicy>());
    }
    return stack;
  }

  /// Registers a lock under `policy` (null = the factory / default
  /// stack). Best-effort: returns false when the registry is full. Safe
  /// from any thread, including a table's inflation path racing tick().
  bool register_lock(Lock& lk,
                     std::unique_ptr<AdaptationPolicy> policy = nullptr) {
    for (std::uint32_t i = 0; i < opts_.capacity; ++i) {
      Slot& s = slots_[i];
      std::uint32_t expect = kEmpty;
      if (!s.state.compare_exchange_strong(expect, kBuilding,
                                           std::memory_order_acquire)) {
        continue;
      }
      s.lock = &lk;
      s.policy = policy != nullptr
                     ? std::move(policy)
                     : (opts_.policy_factory ? opts_.policy_factory(lk)
                                             : default_stack(lk));
      lk.monitor().snapshot_into(s.last);
      s.deferred.reset();
      s.cooldown_until = 0;
      s.state.store(kLive, std::memory_order_release);
      registered_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Marks the lock's slot dead; tick() reclaims it (deferred reclamation
  /// keeps an unregister racing a tick from freeing policy state under an
  /// in-flight evaluation). Returns false when the lock was not live.
  bool unregister_lock(Lock& lk) {
    for (std::uint32_t i = 0; i < opts_.capacity; ++i) {
      Slot& s = slots_[i];
      if (s.state.load(std::memory_order_acquire) != kLive) continue;
      if (s.lock != &lk) continue;
      std::uint32_t expect = kLive;
      if (s.state.compare_exchange_strong(expect, kDead,
                                          std::memory_order_acq_rel)) {
        registered_.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  /// Table-hook adapters: wire these into LockTable::Options::on_inflate /
  /// on_deflate so hot inflated entries are governed while they exist.
  [[nodiscard]] std::function<void(Lock&)> inflation_hook() {
    return [this](Lock& lk) { register_lock(lk); };
  }
  [[nodiscard]] std::function<void(Lock&)> deflation_hook() {
    return [this](Lock& lk) { unregister_lock(lk); };
  }

  /// One governor pass over the registry. Single-consumer (see header
  /// comment). Returns the number of reconfigurations applied.
  std::uint32_t tick(Ctx& ctx) {
    const std::uint64_t now = ++counters_.ticks;
    std::uint32_t budget = opts_.max_actions_per_tick;
    std::uint32_t applied = 0;
    for (std::uint32_t i = 0; i < opts_.capacity; ++i) {
      Slot& s = slots_[i];
      const std::uint32_t st = s.state.load(std::memory_order_acquire);
      if (st == kDead) {  // deferred reclamation: only tick() frees
        s.policy.reset();
        s.deferred.reset();
        s.lock = nullptr;
        s.state.store(kEmpty, std::memory_order_release);
        continue;
      }
      if (st != kLive) continue;
      Lock& lk = *s.lock;
      if (s.deferred.has_value()) {
        // A dampened action from an earlier tick: retry before consuming
        // another interval, so the emitting policy's state converges with
        // the lock. The monitoring window keeps accumulating meanwhile.
        if (action_is_noop(lk, *s.deferred)) {
          s.deferred.reset();  // reached the target some other way
          ++counters_.suppressed_noop;
        } else if (now < s.cooldown_until) {
          ++counters_.suppressed_cooldown;
        } else if (budget == 0) {
          ++counters_.rate_limited;
        } else if (apply(ctx, lk, *s.deferred)) {
          s.deferred.reset();
          --budget;
          ++applied;
          ++counters_.applied;
          s.cooldown_until = now + opts_.cooldown_ticks;
        } else {
          ++counters_.possession_busy;
        }
        continue;
      }
      lk.monitor().snapshot_into(s.scratch);
      StatsDelta d = delta_between(s.last, s.scratch);
      fill_census<P>(ctx, d);
      s.last = s.scratch;
      ++counters_.evaluated;
      std::optional<AdaptAction> action = s.policy->evaluate(d);
      if (!action.has_value()) continue;
      if (action_is_noop(lk, *action)) {
        ++counters_.suppressed_noop;
        continue;
      }
      if (now < s.cooldown_until) {
        s.deferred = std::move(action);
        ++counters_.suppressed_cooldown;
        continue;
      }
      if (budget == 0) {
        s.deferred = std::move(action);
        ++counters_.rate_limited;
        continue;
      }
      if (!apply(ctx, lk, *action)) {
        s.deferred = std::move(action);
        ++counters_.possession_busy;
        continue;
      }
      --budget;
      ++applied;
      ++counters_.applied;
      s.cooldown_until = now + opts_.cooldown_ticks;
    }
    return applied;
  }

  [[nodiscard]] std::uint32_t registered_count() const noexcept {
    return registered_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint32_t capacity() const noexcept {
    return opts_.capacity;
  }
  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }

 private:
  // Slot lifecycle: kEmpty -CAS-> kBuilding -> kLive -CAS-> kDead -> kEmpty.
  // The last edge (reclamation) runs only inside tick().
  static constexpr std::uint32_t kEmpty = 0;
  static constexpr std::uint32_t kBuilding = 1;
  static constexpr std::uint32_t kLive = 2;
  static constexpr std::uint32_t kDead = 3;

  struct Slot {
    std::atomic<std::uint32_t> state{kEmpty};
    Lock* lock = nullptr;
    std::unique_ptr<AdaptationPolicy> policy;
    LockStats last;
    LockStats scratch;
    std::optional<AdaptAction> deferred;
    std::uint64_t cooldown_until = 0;  ///< tick number
  };

  /// Applies one action under fast-fail possession: false = another agent
  /// owns the attribute class right now, the caller defers.
  bool apply(Ctx& ctx, Lock& lk, const AdaptAction& action) {
    if (const auto* w = std::get_if<SetWaitingPolicy>(&action)) {
      if (!lk.try_possess(ctx, AttributeClass::kWaitingPolicy)) return false;
      lk.configure_waiting(ctx, w->attributes);
      lk.release_possession(ctx, AttributeClass::kWaitingPolicy);
      return true;
    }
    if (const auto* s = std::get_if<SetScheduler>(&action)) {
      if (!lk.try_possess(ctx, AttributeClass::kScheduler)) return false;
      lk.configure_scheduler(ctx, s->kind);
      lk.release_possession(ctx, AttributeClass::kScheduler);
      return true;
    }
    const auto* t = std::get_if<SetThreshold>(&action);
    if (t == nullptr) return true;  // exhaustive today; future-proof
    if (!lk.try_possess(ctx, AttributeClass::kScheduler)) return false;
    lk.set_priority_threshold(ctx, t->threshold);
    lk.release_possession(ctx, AttributeClass::kScheduler);
    return true;
  }

  Options opts_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint32_t> registered_{0};
  Counters counters_;
};

/// The background governor: one per domain. Owns a platform context
/// registered in the domain and drives engine.tick() at a fixed interval
/// until stopped (destruction stops it). Real-concurrency production
/// shape; the simulator and the model checker drive tick() from their own
/// scheduled threads instead.
template <Platform P>
class GovernorThread {
 public:
  using Domain = typename P::Domain;

  GovernorThread(Domain& domain, PolicyEngine<P>& engine, Nanos interval_ns)
      : domain_(domain), engine_(engine), interval_(interval_ns) {
    thread_ = std::thread([this] { run(); });
  }
  ~GovernorThread() { stop(); }

  GovernorThread(const GovernorThread&) = delete;
  GovernorThread& operator=(const GovernorThread&) = delete;

  /// Idempotent; returns once the governor thread has exited.
  void stop() {
    {
      std::lock_guard<std::mutex> g(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

 private:
  void run() {
    Ctx ctx(domain_);
    for (;;) {
      {
        std::unique_lock<std::mutex> g(mu_);
        cv_.wait_for(g, std::chrono::nanoseconds(interval_),
                     [this] { return stop_; });
        if (stop_) return;
      }
      engine_.tick(ctx);
    }
  }

  using Ctx = typename P::Context;

  Domain& domain_;
  PolicyEngine<P>& engine_;
  Nanos interval_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace relock::adapt
