# Empty compiler generated dependencies file for relock.
# This may be replaced when dependencies are built.
