
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  "ASM"
  )
# The set of files for implicit dependencies of each language:
set(CMAKE_DEPENDS_CHECK_ASM
  "/root/repo/src/sim/context_switch_x86_64.S" "/root/repo/build/src/CMakeFiles/relock.dir/sim/context_switch_x86_64.S.o"
  )
set(CMAKE_ASM_COMPILER_ID "GNU")

# The include file search paths:
set(CMAKE_ASM_TARGET_INCLUDE_PATH
  "/root/repo/include"
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/coroutine.cpp" "src/CMakeFiles/relock.dir/sim/coroutine.cpp.o" "gcc" "src/CMakeFiles/relock.dir/sim/coroutine.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/CMakeFiles/relock.dir/sim/machine.cpp.o" "gcc" "src/CMakeFiles/relock.dir/sim/machine.cpp.o.d"
  "/root/repo/src/sim/stack.cpp" "src/CMakeFiles/relock.dir/sim/stack.cpp.o" "gcc" "src/CMakeFiles/relock.dir/sim/stack.cpp.o.d"
  "/root/repo/src/vthreads/runtime.cpp" "src/CMakeFiles/relock.dir/vthreads/runtime.cpp.o" "gcc" "src/CMakeFiles/relock.dir/vthreads/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
