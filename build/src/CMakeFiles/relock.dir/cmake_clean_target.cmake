file(REMOVE_RECURSE
  "librelock.a"
)
