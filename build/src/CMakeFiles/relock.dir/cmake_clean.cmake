file(REMOVE_RECURSE
  "CMakeFiles/relock.dir/sim/context_switch_x86_64.S.o"
  "CMakeFiles/relock.dir/sim/coroutine.cpp.o"
  "CMakeFiles/relock.dir/sim/coroutine.cpp.o.d"
  "CMakeFiles/relock.dir/sim/machine.cpp.o"
  "CMakeFiles/relock.dir/sim/machine.cpp.o.d"
  "CMakeFiles/relock.dir/sim/stack.cpp.o"
  "CMakeFiles/relock.dir/sim/stack.cpp.o.d"
  "CMakeFiles/relock.dir/vthreads/runtime.cpp.o"
  "CMakeFiles/relock.dir/vthreads/runtime.cpp.o.d"
  "librelock.a"
  "librelock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang ASM CXX)
  include(CMakeFiles/relock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
