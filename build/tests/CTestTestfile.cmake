# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/platform_test[1]_include.cmake")
include("/root/repo/build/tests/sim_machine_test[1]_include.cmake")
include("/root/repo/build/tests/locks_test[1]_include.cmake")
include("/root/repo/build/tests/core_attributes_test[1]_include.cmake")
include("/root/repo/build/tests/core_lock_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/adapt_test[1]_include.cmake")
include("/root/repo/build/tests/vthreads_test[1]_include.cmake")
include("/root/repo/build/tests/native_mutex_test[1]_include.cmake")
include("/root/repo/build/tests/core_lock_extra_test[1]_include.cmake")
include("/root/repo/build/tests/sim_trace_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/monitor_reporter_test[1]_include.cmake")
include("/root/repo/build/tests/sync_test[1]_include.cmake")
include("/root/repo/build/tests/formal_cost_test[1]_include.cmake")
include("/root/repo/build/tests/cross_platform_test[1]_include.cmake")
