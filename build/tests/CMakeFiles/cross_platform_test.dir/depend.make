# Empty dependencies file for cross_platform_test.
# This may be replaced when dependencies are built.
