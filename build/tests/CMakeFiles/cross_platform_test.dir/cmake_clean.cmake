file(REMOVE_RECURSE
  "CMakeFiles/cross_platform_test.dir/cross_platform_test.cpp.o"
  "CMakeFiles/cross_platform_test.dir/cross_platform_test.cpp.o.d"
  "cross_platform_test"
  "cross_platform_test.pdb"
  "cross_platform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_platform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
