file(REMOVE_RECURSE
  "CMakeFiles/monitor_reporter_test.dir/monitor_reporter_test.cpp.o"
  "CMakeFiles/monitor_reporter_test.dir/monitor_reporter_test.cpp.o.d"
  "monitor_reporter_test"
  "monitor_reporter_test.pdb"
  "monitor_reporter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_reporter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
