file(REMOVE_RECURSE
  "CMakeFiles/native_mutex_test.dir/native_mutex_test.cpp.o"
  "CMakeFiles/native_mutex_test.dir/native_mutex_test.cpp.o.d"
  "native_mutex_test"
  "native_mutex_test.pdb"
  "native_mutex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_mutex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
