file(REMOVE_RECURSE
  "CMakeFiles/vthreads_test.dir/vthreads_test.cpp.o"
  "CMakeFiles/vthreads_test.dir/vthreads_test.cpp.o.d"
  "vthreads_test"
  "vthreads_test.pdb"
  "vthreads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vthreads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
