# Empty dependencies file for vthreads_test.
# This may be replaced when dependencies are built.
