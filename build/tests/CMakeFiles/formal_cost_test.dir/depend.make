# Empty dependencies file for formal_cost_test.
# This may be replaced when dependencies are built.
