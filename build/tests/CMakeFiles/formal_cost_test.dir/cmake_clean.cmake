file(REMOVE_RECURSE
  "CMakeFiles/formal_cost_test.dir/formal_cost_test.cpp.o"
  "CMakeFiles/formal_cost_test.dir/formal_cost_test.cpp.o.d"
  "formal_cost_test"
  "formal_cost_test.pdb"
  "formal_cost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/formal_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
