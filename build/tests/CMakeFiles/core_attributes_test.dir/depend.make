# Empty dependencies file for core_attributes_test.
# This may be replaced when dependencies are built.
