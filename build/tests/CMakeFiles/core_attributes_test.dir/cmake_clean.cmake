file(REMOVE_RECURSE
  "CMakeFiles/core_attributes_test.dir/core_attributes_test.cpp.o"
  "CMakeFiles/core_attributes_test.dir/core_attributes_test.cpp.o.d"
  "core_attributes_test"
  "core_attributes_test.pdb"
  "core_attributes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_attributes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
