# Empty compiler generated dependencies file for core_lock_extra_test.
# This may be replaced when dependencies are built.
