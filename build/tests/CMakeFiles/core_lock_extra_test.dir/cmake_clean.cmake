file(REMOVE_RECURSE
  "CMakeFiles/core_lock_extra_test.dir/core_lock_extra_test.cpp.o"
  "CMakeFiles/core_lock_extra_test.dir/core_lock_extra_test.cpp.o.d"
  "core_lock_extra_test"
  "core_lock_extra_test.pdb"
  "core_lock_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_lock_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
