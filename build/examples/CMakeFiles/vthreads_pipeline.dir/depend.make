# Empty dependencies file for vthreads_pipeline.
# This may be replaced when dependencies are built.
