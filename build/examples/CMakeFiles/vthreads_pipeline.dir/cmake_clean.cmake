file(REMOVE_RECURSE
  "CMakeFiles/vthreads_pipeline.dir/vthreads_pipeline.cpp.o"
  "CMakeFiles/vthreads_pipeline.dir/vthreads_pipeline.cpp.o.d"
  "vthreads_pipeline"
  "vthreads_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vthreads_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
