# Empty compiler generated dependencies file for simulate_butterfly.
# This may be replaced when dependencies are built.
