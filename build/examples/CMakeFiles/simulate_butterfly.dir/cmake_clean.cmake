file(REMOVE_RECURSE
  "CMakeFiles/simulate_butterfly.dir/simulate_butterfly.cpp.o"
  "CMakeFiles/simulate_butterfly.dir/simulate_butterfly.cpp.o.d"
  "simulate_butterfly"
  "simulate_butterfly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulate_butterfly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
