file(REMOVE_RECURSE
  "CMakeFiles/advisory_pipeline.dir/advisory_pipeline.cpp.o"
  "CMakeFiles/advisory_pipeline.dir/advisory_pipeline.cpp.o.d"
  "advisory_pipeline"
  "advisory_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advisory_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
