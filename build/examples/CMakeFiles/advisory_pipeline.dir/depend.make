# Empty dependencies file for advisory_pipeline.
# This may be replaced when dependencies are built.
