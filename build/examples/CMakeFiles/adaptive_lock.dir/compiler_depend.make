# Empty compiler generated dependencies file for adaptive_lock.
# This may be replaced when dependencies are built.
