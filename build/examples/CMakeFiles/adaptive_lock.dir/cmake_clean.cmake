file(REMOVE_RECURSE
  "CMakeFiles/adaptive_lock.dir/adaptive_lock.cpp.o"
  "CMakeFiles/adaptive_lock.dir/adaptive_lock.cpp.o.d"
  "adaptive_lock"
  "adaptive_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
