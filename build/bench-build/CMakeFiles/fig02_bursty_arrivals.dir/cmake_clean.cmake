file(REMOVE_RECURSE
  "../bench/fig02_bursty_arrivals"
  "../bench/fig02_bursty_arrivals.pdb"
  "CMakeFiles/fig02_bursty_arrivals.dir/fig02_bursty_arrivals.cpp.o"
  "CMakeFiles/fig02_bursty_arrivals.dir/fig02_bursty_arrivals.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_bursty_arrivals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
