# Empty compiler generated dependencies file for fig02_bursty_arrivals.
# This may be replaced when dependencies are built.
