file(REMOVE_RECURSE
  "../bench/ablation_config_delay"
  "../bench/ablation_config_delay.pdb"
  "CMakeFiles/ablation_config_delay.dir/ablation_config_delay.cpp.o"
  "CMakeFiles/ablation_config_delay.dir/ablation_config_delay.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_config_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
