# Empty dependencies file for ablation_config_delay.
# This may be replaced when dependencies are built.
