# Empty dependencies file for fig09_distributed.
# This may be replaced when dependencies are built.
