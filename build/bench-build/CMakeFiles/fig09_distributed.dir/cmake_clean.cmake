file(REMOVE_RECURSE
  "../bench/fig09_distributed"
  "../bench/fig09_distributed.pdb"
  "CMakeFiles/fig09_distributed.dir/fig09_distributed.cpp.o"
  "CMakeFiles/fig09_distributed.dir/fig09_distributed.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
