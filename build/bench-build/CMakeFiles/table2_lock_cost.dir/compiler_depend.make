# Empty compiler generated dependencies file for table2_lock_cost.
# This may be replaced when dependencies are built.
