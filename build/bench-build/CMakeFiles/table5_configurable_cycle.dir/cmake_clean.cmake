file(REMOVE_RECURSE
  "../bench/table5_configurable_cycle"
  "../bench/table5_configurable_cycle.pdb"
  "CMakeFiles/table5_configurable_cycle.dir/table5_configurable_cycle.cpp.o"
  "CMakeFiles/table5_configurable_cycle.dir/table5_configurable_cycle.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_configurable_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
