# Empty dependencies file for table5_configurable_cycle.
# This may be replaced when dependencies are built.
