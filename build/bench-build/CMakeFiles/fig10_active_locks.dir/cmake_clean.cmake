file(REMOVE_RECURSE
  "../bench/fig10_active_locks"
  "../bench/fig10_active_locks.pdb"
  "CMakeFiles/fig10_active_locks.dir/fig10_active_locks.cpp.o"
  "CMakeFiles/fig10_active_locks.dir/fig10_active_locks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_active_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
