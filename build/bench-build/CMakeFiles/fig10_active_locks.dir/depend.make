# Empty dependencies file for fig10_active_locks.
# This may be replaced when dependencies are built.
