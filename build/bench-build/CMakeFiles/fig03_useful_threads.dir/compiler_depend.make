# Empty compiler generated dependencies file for fig03_useful_threads.
# This may be replaced when dependencies are built.
