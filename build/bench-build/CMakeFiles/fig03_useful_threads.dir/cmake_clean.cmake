file(REMOVE_RECURSE
  "../bench/fig03_useful_threads"
  "../bench/fig03_useful_threads.pdb"
  "CMakeFiles/fig03_useful_threads.dir/fig03_useful_threads.cpp.o"
  "CMakeFiles/fig03_useful_threads.dir/fig03_useful_threads.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_useful_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
