# Empty compiler generated dependencies file for table7_schedulers.
# This may be replaced when dependencies are built.
