file(REMOVE_RECURSE
  "../bench/table7_schedulers"
  "../bench/table7_schedulers.pdb"
  "CMakeFiles/table7_schedulers.dir/table7_schedulers.cpp.o"
  "CMakeFiles/table7_schedulers.dir/table7_schedulers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
