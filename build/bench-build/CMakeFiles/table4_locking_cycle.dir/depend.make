# Empty dependencies file for table4_locking_cycle.
# This may be replaced when dependencies are built.
