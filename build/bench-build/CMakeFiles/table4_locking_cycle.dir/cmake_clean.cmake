file(REMOVE_RECURSE
  "../bench/table4_locking_cycle"
  "../bench/table4_locking_cycle.pdb"
  "CMakeFiles/table4_locking_cycle.dir/table4_locking_cycle.cpp.o"
  "CMakeFiles/table4_locking_cycle.dir/table4_locking_cycle.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_locking_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
