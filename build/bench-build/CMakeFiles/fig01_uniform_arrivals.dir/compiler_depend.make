# Empty compiler generated dependencies file for fig01_uniform_arrivals.
# This may be replaced when dependencies are built.
