file(REMOVE_RECURSE
  "../bench/fig01_uniform_arrivals"
  "../bench/fig01_uniform_arrivals.pdb"
  "CMakeFiles/fig01_uniform_arrivals.dir/fig01_uniform_arrivals.cpp.o"
  "CMakeFiles/fig01_uniform_arrivals.dir/fig01_uniform_arrivals.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_uniform_arrivals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
