file(REMOVE_RECURSE
  "../bench/native_locks_gbench"
  "../bench/native_locks_gbench.pdb"
  "CMakeFiles/native_locks_gbench.dir/native_locks_gbench.cpp.o"
  "CMakeFiles/native_locks_gbench.dir/native_locks_gbench.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_locks_gbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
