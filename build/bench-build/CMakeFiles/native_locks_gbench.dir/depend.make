# Empty dependencies file for native_locks_gbench.
# This may be replaced when dependencies are built.
