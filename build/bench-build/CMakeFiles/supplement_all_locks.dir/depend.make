# Empty dependencies file for supplement_all_locks.
# This may be replaced when dependencies are built.
