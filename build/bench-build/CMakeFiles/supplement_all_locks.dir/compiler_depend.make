# Empty compiler generated dependencies file for supplement_all_locks.
# This may be replaced when dependencies are built.
