file(REMOVE_RECURSE
  "../bench/supplement_all_locks"
  "../bench/supplement_all_locks.pdb"
  "CMakeFiles/supplement_all_locks.dir/supplement_all_locks.cpp.o"
  "CMakeFiles/supplement_all_locks.dir/supplement_all_locks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supplement_all_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
