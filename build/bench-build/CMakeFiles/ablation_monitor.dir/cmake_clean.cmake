file(REMOVE_RECURSE
  "../bench/ablation_monitor"
  "../bench/ablation_monitor.pdb"
  "CMakeFiles/ablation_monitor.dir/ablation_monitor.cpp.o"
  "CMakeFiles/ablation_monitor.dir/ablation_monitor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
