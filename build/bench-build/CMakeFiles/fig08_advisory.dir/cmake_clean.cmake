file(REMOVE_RECURSE
  "../bench/fig08_advisory"
  "../bench/fig08_advisory.pdb"
  "CMakeFiles/fig08_advisory.dir/fig08_advisory.cpp.o"
  "CMakeFiles/fig08_advisory.dir/fig08_advisory.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_advisory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
