# Empty dependencies file for fig08_advisory.
# This may be replaced when dependencies are built.
