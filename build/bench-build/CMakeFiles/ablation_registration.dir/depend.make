# Empty dependencies file for ablation_registration.
# This may be replaced when dependencies are built.
