file(REMOVE_RECURSE
  "../bench/ablation_registration"
  "../bench/ablation_registration.pdb"
  "CMakeFiles/ablation_registration.dir/ablation_registration.cpp.o"
  "CMakeFiles/ablation_registration.dir/ablation_registration.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_registration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
