# Empty dependencies file for table6_config_ops.
# This may be replaced when dependencies are built.
