file(REMOVE_RECURSE
  "../bench/table6_config_ops"
  "../bench/table6_config_ops.pdb"
  "CMakeFiles/table6_config_ops.dir/table6_config_ops.cpp.o"
  "CMakeFiles/table6_config_ops.dir/table6_config_ops.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_config_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
