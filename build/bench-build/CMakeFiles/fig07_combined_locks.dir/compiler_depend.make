# Empty compiler generated dependencies file for fig07_combined_locks.
# This may be replaced when dependencies are built.
