file(REMOVE_RECURSE
  "../bench/fig07_combined_locks"
  "../bench/fig07_combined_locks.pdb"
  "CMakeFiles/fig07_combined_locks.dir/fig07_combined_locks.cpp.o"
  "CMakeFiles/fig07_combined_locks.dir/fig07_combined_locks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_combined_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
