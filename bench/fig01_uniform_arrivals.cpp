// Figure 1: length of critical section vs. application execution time,
// uniformly distributed lock-request arrivals, one thread per processor.
// Paper's finding: execution time grows linearly with CS length, and with
// one thread per processor spin locks consistently outperform blocking
// locks on the NUMA machine (lower critical-section handoff latency).
#include "figures_common.hpp"
#include "relock/locks/blocking_lock.hpp"
#include "relock/locks/spin_locks.hpp"

int main() {
  using namespace relock;
  using namespace relock::bench;
  using sim::Machine;
  using sim::MachineParams;
  using sim::SimPlatform;

  bench::print_header(
      "Figure 1: CS length vs. application time (uniform arrivals)",
      "Figure 1");

  auto config_for = [](Nanos cs) {
    CsWorkloadConfig cfg;
    cfg.locking_threads = 32;  // one per processor
    cfg.iterations = 6 * scale();
    cfg.arrival = ArrivalProcess::smooth(Sampler::uniform(0, 2'000'000));
    cfg.cs_length = Sampler::constant(cs);
    return cfg;
  };

  std::vector<Series> series;
  series.push_back({"spin", [&](Nanos cs) {
    Machine m(MachineParams::butterfly());
    TtasLock<SimPlatform> lock(m, Placement::on(0));
    return workload::run_cs_workload(m, lock, config_for(cs)).elapsed;
  }});
  series.push_back({"blocking", [&](Nanos cs) {
    Machine m(MachineParams::butterfly());
    BlockingLock<SimPlatform> lock(m, Placement::on(0));
    return workload::run_cs_workload(m, lock, config_for(cs)).elapsed;
  }});

  print_figure(default_cs_sweep(), series);
  std::printf("\nexpected shape: both linear in CS length; spin below "
              "blocking (1 thread/proc)\n");
  return 0;
}
