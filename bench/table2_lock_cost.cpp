// Table 2: cost of the Lock operation for different locks (local / remote),
// uncontended. Paper values (us): atomior 30.73/33.86, spin 40.79/41.10,
// spin-with-backoff 40.79/41.15, blocking 88.59/91.73, configurable
// 40.79/41.17.
#include "lock_cost_common.hpp"

int main() {
  using namespace relock;
  using namespace relock::bench;

  bench::print_header("Table 2: Cost of the Lock operation", "Table 2");
  std::printf("%-28s %10s %10s   | %8s %8s\n", "Lock type", "local(us)",
              "remote(us)", "paper-l", "paper-r");

  auto lock_op = [](auto& l, Thread& t) { l.lock(t); };
  auto unlock_op = [](auto& l, Thread& t) { l.unlock(t); };

  print_row3("atomior", measure_atomior_us(0), measure_atomior_us(1), 30.73,
             33.86);

  auto spin = [](Machine& m, Placement p) {
    return std::make_unique<TasLock<SimPlatform>>(m, p);
  };
  print_row3("spin-lock", measure_op_us(0, spin, lock_op, unlock_op),
             measure_op_us(1, spin, lock_op, unlock_op), 40.79, 41.10);

  auto backoff = [](Machine& m, Placement p) {
    return std::make_unique<BackoffSpinLock<SimPlatform>>(m, p);
  };
  print_row3("spin-with-backoff", measure_op_us(0, backoff, lock_op, unlock_op),
             measure_op_us(1, backoff, lock_op, unlock_op), 40.79, 41.15);

  auto blocking = [](Machine& m, Placement p) {
    return std::make_unique<BlockingLock<SimPlatform>>(m, p);
  };
  print_row3("blocking-lock",
             measure_op_us(0, blocking, lock_op, unlock_op),
             measure_op_us(1, blocking, lock_op, unlock_op), 88.59, 91.73);

  auto configurable = [](Machine& m, Placement p) {
    return std::make_unique<ConfigurableLock<SimPlatform>>(
        m, configurable_options(p));
  };
  print_row3("configurable lock",
             measure_op_us(0, configurable, lock_op, unlock_op),
             measure_op_us(1, configurable, lock_op, unlock_op), 40.79, 41.17);

  return 0;
}
