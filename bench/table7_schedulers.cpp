// Table 7: performance of lock schedulers under a client-server workload.
// Paper values (us): FCFS 463937.5; Priority 419879.49 (9.5% gain);
// Handoff 403735.69 (13% gain).
//
// One server thread on a dedicated processor serves flooded clients via a
// shared message buffer protected by the lock; clients poll the buffer for
// replies. The priority lock is the paper's threshold implementation with
// the threshold raised dynamically while the server is flooded.
#include <cstdio>

#include "bench_util.hpp"
#include "relock/workload/client_server.hpp"

int main() {
  using namespace relock;
  using namespace relock::bench;
  using sim::Machine;
  using sim::MachineParams;
  using sim::SimPlatform;

  bench::print_header("Table 7: Performance of Lock Schedulers", "Table 7");

  workload::ClientServerConfig cfg;
  cfg.clients = 8;
  cfg.requests_per_client = 8 * scale();
  cfg.service_time = 30'000;
  cfg.client_think = 500'000;
  cfg.buffer_op = 10'000;
  cfg.reply_check = 5'000;
  cfg.poll_gap = 2'000'000;

  auto run_with = [&](SchedulerKind kind, bool handoff, bool dynamic) {
    Machine m(MachineParams::butterfly());
    ConfigurableLock<SimPlatform>::Options o;
    o.scheduler = kind;
    o.placement = Placement::on(static_cast<int>(m.node_count() - 1));
    ConfigurableLock<SimPlatform> lock(m, o);
    return workload::run_client_server(m, lock, cfg, handoff, dynamic);
  };

  const auto fcfs = run_with(SchedulerKind::kFcfs, false, false);
  const auto prio =
      run_with(SchedulerKind::kPriorityThreshold, false, true);
  const auto hand = run_with(SchedulerKind::kHandoff, true, false);

  auto gain = [&](Nanos t) {
    return 100.0 * (static_cast<double>(fcfs.elapsed) -
                    static_cast<double>(t)) /
           static_cast<double>(fcfs.elapsed);
  };

  std::printf("%-16s %14s %14s   | %s\n", "Scheduler", "elapsed(us)",
              "gain-vs-FCFS", "paper");
  std::printf("%-16s %14.1f %13s%%   | 463937.5us\n", "FCFS",
              to_us(fcfs.elapsed), "-");
  std::printf("%-16s %14.1f %13.1f%%   | 419879.5us (9.5%% gain)\n",
              "Priority", to_us(prio.elapsed), gain(prio.elapsed));
  std::printf("%-16s %14.1f %13.1f%%   | 403735.7us (13%% gain)\n",
              "Handoff", to_us(hand.elapsed), gain(hand.elapsed));
  std::printf("\nserved: fcfs=%llu prio=%llu hand=%llu; threshold raises=%llu\n",
              static_cast<unsigned long long>(fcfs.served),
              static_cast<unsigned long long>(prio.served),
              static_cast<unsigned long long>(hand.served),
              static_cast<unsigned long long>(prio.threshold_raises));
  return 0;
}
