// Shared harness for the figure benches: sweeps critical-section length
// across lock configurations on the Butterfly machine and prints the
// series the paper plots (application execution time vs. CS length).
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "relock/workload/cs_workload.hpp"

namespace relock::bench {

using workload::ArrivalProcess;
using workload::CsWorkloadConfig;
using workload::Sampler;

/// Default CS-length sweep (ns): 25us .. 1.6ms.
inline std::vector<Nanos> default_cs_sweep() {
  return {25'000, 50'000, 100'000, 200'000, 400'000, 800'000, 1'600'000};
}

struct Series {
  const char* name;
  /// Builds a fresh machine + lock and runs the workload for one CS length.
  std::function<Nanos(Nanos cs_len)> run;
};

inline void print_figure(const std::vector<Nanos>& sweep,
                         const std::vector<Series>& series,
                         std::vector<std::vector<double>>* out_ms = nullptr) {
  std::printf("%-14s", "cs-length(us)");
  for (const Series& s : series) std::printf(" %16s", s.name);
  std::printf("\n");
  std::vector<std::vector<double>> table(series.size());
  for (const Nanos cs : sweep) {
    std::printf("%-14.0f", to_us(cs));
    for (std::size_t i = 0; i < series.size(); ++i) {
      const double ms = static_cast<double>(series[i].run(cs)) / 1e6;
      table[i].push_back(ms);
      std::printf(" %14.2fms", ms);
    }
    std::printf("\n");
  }
  if (out_ms != nullptr) *out_ms = std::move(table);
}

}  // namespace relock::bench
