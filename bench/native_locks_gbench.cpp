// google-benchmark microbenchmarks of the native lock implementations on
// the host hardware: uncontended lock+unlock latency for every baseline
// lock and the main configurable-lock configurations.
#include <benchmark/benchmark.h>

#include <memory>

#include "relock/core/configurable_lock.hpp"
#include "relock/locks/anderson_lock.hpp"
#include "relock/locks/blocking_lock.hpp"
#include "relock/locks/clh_lock.hpp"
#include "relock/locks/mcs_lock.hpp"
#include "relock/locks/rw_spin_lock.hpp"
#include "relock/locks/spin_locks.hpp"
#include "relock/locks/ticket_lock.hpp"
#include "relock/platform/native.hpp"

namespace {

using namespace relock;
using NP = native::NativePlatform;

template <typename L, typename Make>
void bench_lock(benchmark::State& state, Make make) {
  native::Domain domain;
  native::Context ctx(domain);
  auto lock = make(domain);
  for (auto _ : state) {
    lock->lock(ctx);
    benchmark::DoNotOptimize(lock.get());
    lock->unlock(ctx);
  }
}

void BM_TasLock(benchmark::State& s) {
  bench_lock<TasLock<NP>>(s, [](native::Domain& d) {
    return std::make_unique<TasLock<NP>>(d);
  });
}
void BM_TtasLock(benchmark::State& s) {
  bench_lock<TtasLock<NP>>(s, [](native::Domain& d) {
    return std::make_unique<TtasLock<NP>>(d);
  });
}
void BM_BackoffSpinLock(benchmark::State& s) {
  bench_lock<BackoffSpinLock<NP>>(s, [](native::Domain& d) {
    return std::make_unique<BackoffSpinLock<NP>>(d);
  });
}
void BM_TicketLock(benchmark::State& s) {
  bench_lock<TicketLock<NP>>(s, [](native::Domain& d) {
    return std::make_unique<TicketLock<NP>>(d);
  });
}
void BM_McsLock(benchmark::State& s) {
  bench_lock<McsLock<NP>>(s, [](native::Domain& d) {
    return std::make_unique<McsLock<NP>>(d, Placement::any(), 64);
  });
}
void BM_ClhLock(benchmark::State& s) {
  bench_lock<ClhLock<NP>>(s, [](native::Domain& d) {
    return std::make_unique<ClhLock<NP>>(d, Placement::any(), 64);
  });
}
void BM_AndersonArrayLock(benchmark::State& s) {
  bench_lock<AndersonArrayLock<NP>>(s, [](native::Domain& d) {
    return std::make_unique<AndersonArrayLock<NP>>(d, 64, Placement::any(),
                                                   64);
  });
}
void BM_BlockingLock(benchmark::State& s) {
  bench_lock<BlockingLock<NP>>(s, [](native::Domain& d) {
    return std::make_unique<BlockingLock<NP>>(d);
  });
}

void BM_ConfigurableSpin(benchmark::State& s) {
  bench_lock<ConfigurableLock<NP>>(s, [](native::Domain& d) {
    ConfigurableLock<NP>::Options o;
    o.scheduler = SchedulerKind::kNone;
    o.attributes = LockAttributes::spin();
    return std::make_unique<ConfigurableLock<NP>>(d, o);
  });
}
void BM_ConfigurableFcfsCombined(benchmark::State& s) {
  bench_lock<ConfigurableLock<NP>>(s, [](native::Domain& d) {
    ConfigurableLock<NP>::Options o;
    o.scheduler = SchedulerKind::kFcfs;
    o.attributes = LockAttributes::combined(100);
    return std::make_unique<ConfigurableLock<NP>>(d, o);
  });
}
void BM_ConfigurableMonitored(benchmark::State& s) {
  bench_lock<ConfigurableLock<NP>>(s, [](native::Domain& d) {
    ConfigurableLock<NP>::Options o;
    o.scheduler = SchedulerKind::kFcfs;
    o.monitor_enabled = true;
    return std::make_unique<ConfigurableLock<NP>>(d, o);
  });
}
void BM_ConfigurableRecursive(benchmark::State& s) {
  bench_lock<ConfigurableLock<NP>>(s, [](native::Domain& d) {
    ConfigurableLock<NP>::Options o;
    o.scheduler = SchedulerKind::kFcfs;
    o.recursive = true;
    return std::make_unique<ConfigurableLock<NP>>(d, o);
  });
}

void BM_RwSpinLockShared(benchmark::State& state) {
  native::Domain domain;
  native::Context ctx(domain);
  RwSpinLock<NP> lock(domain);
  for (auto _ : state) {
    lock.lock_shared(ctx);
    benchmark::DoNotOptimize(&lock);
    lock.unlock_shared(ctx);
  }
}

void BM_ConfigureWaiting(benchmark::State& state) {
  native::Domain domain;
  native::Context ctx(domain);
  ConfigurableLock<NP>::Options o;
  o.scheduler = SchedulerKind::kFcfs;
  ConfigurableLock<NP> lock(domain, o);
  bool spin = false;
  for (auto _ : state) {
    lock.configure_waiting(ctx, spin ? LockAttributes::spin()
                                     : LockAttributes::blocking());
    spin = !spin;
  }
}

BENCHMARK(BM_TasLock);
BENCHMARK(BM_TtasLock);
BENCHMARK(BM_BackoffSpinLock);
BENCHMARK(BM_TicketLock);
BENCHMARK(BM_McsLock);
BENCHMARK(BM_ClhLock);
BENCHMARK(BM_AndersonArrayLock);
BENCHMARK(BM_BlockingLock);
BENCHMARK(BM_ConfigurableSpin);
BENCHMARK(BM_ConfigurableFcfsCombined);
BENCHMARK(BM_ConfigurableMonitored);
BENCHMARK(BM_ConfigurableRecursive);
BENCHMARK(BM_RwSpinLockShared);
BENCHMARK(BM_ConfigureWaiting);

}  // namespace

BENCHMARK_MAIN();
