// Ablation: the cost of registration (paper section 3.2 claims "the
// registration overhead in the configurable lock implementation is the cost
// of one write operation on primary memory").
//
// We compare, on the simulated machine:
//   - raw atomior (the bare acquisition primitive),
//   - the TAS spin lock (atomior + loop),
//   - the configurable lock's uncontended fast path (atomior + the owner
//     registration write),
// and, for the contended path, the additional cost of the registration
// write + policy read relative to queueing alone.
#include "lock_cost_common.hpp"

int main() {
  using namespace relock;
  using namespace relock::bench;

  bench::print_header("Ablation: registration cost", "section 3.2");

  const double atomior = measure_atomior_us(0);
  auto spin = [](Machine& m, Placement p) {
    return std::make_unique<TasLock<SimPlatform>>(m, p);
  };
  auto configurable = [](Machine& m, Placement p) {
    return std::make_unique<ConfigurableLock<SimPlatform>>(
        m, configurable_options(p));
  };
  auto lock_op = [](auto& l, Thread& t) { l.lock(t); };
  auto unlock_op = [](auto& l, Thread& t) { l.unlock(t); };

  const double tas = measure_op_us(0, spin, lock_op, unlock_op);
  const double conf = measure_op_us(0, configurable, lock_op, unlock_op);

  std::printf("raw atomior:                    %7.2f us\n", atomior);
  std::printf("TAS spin lock (lock op):        %7.2f us\n", tas);
  std::printf("configurable lock (lock op):    %7.2f us\n", conf);
  std::printf("=> registration overhead:       %7.2f us "
              "(one local write is %.2f us on this machine)\n",
              conf - tas,
              (3000.0 + 2000.0) / 1000.0);  // write_local + op_overhead
  return 0;
}
