// Async-waiter scalability: how many SUSPENDED COROUTINES one lock can
// carry, against how few threads. A thread waiter costs a stack and a
// kernel-schedulable entity; an async waiter is a heap frame plus a
// WaiterRecord riding the same arrival path - so "waiters >> threads"
// regimes (10,000+ pending acquisitions on <= 4 threads) become
// representable at all. Every cell is oracle-checked: each launched
// waiter must be granted exactly once (a lost grant parks the drain
// forever and fails the cell), the critical-section counter must equal
// the waiter count, FIFO cells must grant in launch order, and the lock
// must still cycle afterwards.
//
// Cells (the JSON `scheduler` column carries the executor, `policy` the
// waiter count):
//   inline         grants chain inside the releasers' unlock calls - one
//                  nested unlock per waiter, so the chain is kept short
//                  (kInlineWaiters) to bound stack depth
//   manager        one thread is launcher AND manager (paper Fig. 10):
//                  grants post to the manager inbox and drain iteratively,
//                  so 10k-50k waiters run on ONE thread
//   manager_timed  same, but every waiter is a timed wait with a deadline
//                  it must win: adds the standing breaker and the manager
//                  timer bookkeeping to every grant
//   pool           3 workers resume frames (launcher makes 4 threads);
//                  the grant chain hops releaser -> queue -> worker
//
// Modes: --smoke  trims the sweep for CI, where the JSON diffs against
//                 bench/baselines/async_waiters_smoke.json.
//
// Single-core caveat: the pool cell's 4 threads oversubscribe a 1-core
// host; its tag records that and the baseline diff skips regime
// mismatches. The single-thread manager cells have no such regime - they
// are the numbers to trust everywhere.
#include "relock/async/config.hpp"

#include <cstdio>

#if !RELOCK_ASYNC_ENABLED

int main() {
  std::printf("async_waiters: built without coroutine support "
              "(RELOCK_ASYNC off); nothing to measure\n");
  return 0;
}

#else

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "relock/async/awaiter.hpp"
#include "relock/async/manager.hpp"
#include "relock/async/task.hpp"
#include "relock/core/configurable_lock.hpp"
#include "relock/platform/clock.hpp"
#include "relock/platform/native.hpp"

namespace {

using namespace relock;
using NP = native::NativePlatform;
using Lock = ConfigurableLock<NP>;
using relock::async::AsyncGrant;
using relock::async::AsyncLock;
using relock::async::InlineExecutor;
using relock::async::ManagerExecutor;
using relock::async::Task;
using relock::async::ThreadPoolExecutor;

constexpr std::uint32_t kInlineWaiters = 512;  // bounds the unlock recursion

struct CellResult {
  std::uint32_t threads = 0;
  const char* executor = nullptr;
  std::uint32_t waiters = 0;
  double ops_per_sec = 0.0;     // grants per second, launch + drain
  double launch_us = 0.0;       // per-waiter enqueue cost
  double drain_us = 0.0;        // per-waiter grant-to-grant cost
  bool oversubscribed = false;
};

Lock::Options fcfs_opts() {
  Lock::Options o;
  o.scheduler = SchedulerKind::kFcfs;
  o.attributes = LockAttributes::spin();
  return o;
}

[[noreturn]] void die(const char* executor, std::uint32_t waiters,
                      const char* what) {
  std::fprintf(stderr, "FATAL: %s/w%u: %s\n", executor, waiters, what);
  std::exit(1);
}

void check_order(const char* executor, const std::vector<std::uint32_t>& order,
                 std::uint32_t waiters) {
  if (order.size() != waiters) die(executor, waiters, "lost grants");
  for (std::uint32_t i = 0; i < waiters; ++i) {
    if (order[i] != i) die(executor, waiters, "FIFO order broken");
  }
}

void check_cycles(Lock& lock, native::Context& ctx, const char* executor,
                  std::uint32_t waiters) {
  if (!lock.try_lock(ctx)) die(executor, waiters, "lock wedged after drain");
  lock.unlock(ctx);
}

CellResult make_result(const char* executor, std::uint32_t threads,
                       std::uint32_t waiters, Nanos launch_ns,
                       Nanos drain_ns, bool oversub) {
  CellResult r;
  r.threads = threads;
  r.executor = executor;
  r.waiters = waiters;
  const Nanos total = launch_ns + drain_ns;
  r.ops_per_sec = total == 0 ? 0.0
                             : static_cast<double>(waiters) * 1e9 /
                                   static_cast<double>(total);
  r.launch_us = static_cast<double>(launch_ns) / 1000.0 /
                static_cast<double>(waiters);
  r.drain_us = static_cast<double>(drain_ns) / 1000.0 /
               static_cast<double>(waiters);
  r.oversubscribed = oversub;
  return r;
}

/// Inline executor: every grant resumes inside the previous holder's
/// unlock, so the whole drain is ONE call chain on the launcher's stack.
CellResult run_inline_cell(std::uint32_t waiters) {
  native::Domain domain;
  native::Context ctx(domain);
  Lock lock(domain, fcfs_opts());
  InlineExecutor<NP> exec;
  AsyncLock<NP> alk(lock, exec);

  std::uint64_t cs_counter = 0;
  std::vector<std::uint32_t> order;
  order.reserve(waiters);
  std::vector<Task> tasks;
  tasks.reserve(waiters);
  auto waiter = [&](std::uint32_t id) -> Task {
    AsyncGrant<NP> g = co_await alk.lock_async(ctx);
    ++cs_counter;
    order.push_back(id);
    g.unlock();
  };

  lock.lock(ctx);
  const Nanos t0 = monotonic_now();
  for (std::uint32_t i = 0; i < waiters; ++i) tasks.push_back(waiter(i));
  const Nanos t1 = monotonic_now();
  lock.unlock(ctx);  // the entire chain drains inside this call
  const Nanos t2 = monotonic_now();

  for (auto& t : tasks) {
    if (!t.done()) die("inline", waiters, "undrained frame");
    t.rethrow();
  }
  check_order("inline", order, waiters);
  if (cs_counter != waiters) die("inline", waiters, "CS count mismatch");
  check_cycles(lock, ctx, "inline", waiters);
  return make_result("inline", 1, waiters, t1 - t0, t2 - t1, false);
}

/// Manager executor, one thread total: grants post to the inbox and the
/// run_until loop resumes them iteratively - constant stack depth no
/// matter how many waiters. `timed` routes every waiter through
/// try_lock_for_async with a deadline it must beat (zero timeouts
/// allowed), exercising breaker arm/disarm and the manager timer per op.
CellResult run_manager_cell(std::uint32_t waiters, bool timed) {
  constexpr Nanos kGenerousTimeout = 3'600'000'000'000;  // 1 hour
  const char* const name = timed ? "manager_timed" : "manager";

  native::Domain domain;
  native::Context ctx(domain);
  Lock lock(domain, fcfs_opts());
  ManagerExecutor<NP> mgr;
  AsyncLock<NP> alk(lock, mgr);

  std::uint64_t cs_counter = 0;
  std::uint32_t timeouts = 0;
  std::vector<std::uint32_t> order;
  order.reserve(waiters);
  std::vector<Task> tasks;
  tasks.reserve(waiters);
  auto waiter = [&](std::uint32_t id) -> Task {
    AsyncGrant<NP> g = timed
        ? co_await alk.try_lock_for_async(ctx, kGenerousTimeout)
        : co_await alk.lock_async(ctx);
    if (!g) {
      ++timeouts;
      co_return;
    }
    ++cs_counter;
    order.push_back(id);
    g.unlock();
  };

  lock.lock(ctx);
  const Nanos t0 = monotonic_now();
  for (std::uint32_t i = 0; i < waiters; ++i) tasks.push_back(waiter(i));
  const Nanos t1 = monotonic_now();
  lock.unlock(ctx);
  mgr.run_until(ctx, [&] {
    return order.size() + timeouts == waiters;
  });
  const Nanos t2 = monotonic_now();

  for (auto& t : tasks) {
    if (!t.done()) die(name, waiters, "undrained frame");
    t.rethrow();
  }
  if (timeouts != 0) die(name, waiters, "spurious timeout");
  check_order(name, order, waiters);
  if (cs_counter != waiters) die(name, waiters, "CS count mismatch");
  check_cycles(lock, ctx, name, waiters);
  return make_result(name, 1, waiters, t1 - t0, t2 - t1, false);
}

/// Thread-pool executor: 3 workers + the launcher. Frames resume on
/// whichever worker dequeues the grant; the lock's FCFS order still holds
/// because each frame appends while it owns the lock.
CellResult run_pool_cell(std::uint32_t waiters) {
  constexpr std::size_t kWorkers = 3;

  native::Domain domain;
  native::Context ctx(domain);
  // Computed from the team size, not Domain::oversubscribed(): the pool
  // workers have not registered their contexts yet at this point.
  const bool oversub =
      1 + kWorkers > std::max(1u, std::thread::hardware_concurrency());
  Lock lock(domain, fcfs_opts());
  ThreadPoolExecutor<NP> exec(domain, kWorkers);
  AsyncLock<NP> alk(lock, exec);

  std::uint64_t cs_counter = 0;
  std::vector<std::uint32_t> order;
  order.reserve(waiters);
  std::atomic<std::uint32_t> granted{0};
  std::vector<Task> tasks;
  tasks.reserve(waiters);
  auto waiter = [&](std::uint32_t id) -> Task {
    AsyncGrant<NP> g = co_await alk.lock_async(ctx);
    ++cs_counter;  // guarded by the lock
    order.push_back(id);
    g.unlock();
    granted.fetch_add(1, std::memory_order_release);
  };

  lock.lock(ctx);
  const Nanos t0 = monotonic_now();
  for (std::uint32_t i = 0; i < waiters; ++i) tasks.push_back(waiter(i));
  const Nanos t1 = monotonic_now();
  lock.unlock(ctx);
  const Nanos deadline = monotonic_now() + 60'000'000'000;  // 60s budget
  while (granted.load(std::memory_order_acquire) != waiters) {
    if (monotonic_now() > deadline) die("pool", waiters, "lost grants");
    std::this_thread::yield();
  }
  const Nanos t2 = monotonic_now();

  for (auto& t : tasks) {
    while (!t.done()) std::this_thread::yield();
    t.rethrow();
  }
  check_order("pool", order, waiters);
  if (cs_counter != waiters) die("pool", waiters, "CS count mismatch");
  check_cycles(lock, ctx, "pool", waiters);
  return make_result("pool", 1 + kWorkers, waiters, t1 - t0, t2 - t1,
                     oversub);
}

void print_row(const CellResult& r) {
  std::printf("%8u %-14s %8u %14.0f %12.3f %12.3f %8s\n", r.threads,
              r.executor, r.waiters, r.ops_per_sec, r.launch_us, r.drain_us,
              r.oversubscribed ? "yes" : "no");
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  const std::uint32_t hw =
      std::max(1u, std::thread::hardware_concurrency());

  std::printf("==============================================================================\n");
  std::printf("Async waiters: suspended-coroutine scalability (waiters >> threads)\n");
  std::printf("hw_concurrency=%u%s\n", hw, smoke ? "  [smoke]" : "");
  std::printf("==============================================================================\n");
  std::printf("%8s %-14s %8s %14s %12s %12s %8s\n", "threads", "executor",
              "waiters", "grants/sec", "launch_us", "drain_us", "oversub");

  std::vector<CellResult> results;
  results.push_back(run_inline_cell(kInlineWaiters));
  print_row(results.back());
  const std::vector<std::uint32_t> manager_sweep =
      smoke ? std::vector<std::uint32_t>{1'000, 10'000}
            : std::vector<std::uint32_t>{1'000, 10'000, 50'000};
  for (const std::uint32_t n : manager_sweep) {
    results.push_back(run_manager_cell(n, /*timed=*/false));
    print_row(results.back());
  }
  results.push_back(run_manager_cell(smoke ? 2'000 : 10'000, /*timed=*/true));
  print_row(results.back());
  results.push_back(run_pool_cell(10'000));
  print_row(results.back());

  const char* json_name = "BENCH_async_waiters.json";
  FILE* f = std::fopen(json_name, "w");
  if (f == nullptr) {
    std::perror(json_name);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"async_waiters\",\n");
  std::fprintf(f, "  \"hw_concurrency\": %u,\n", hw);
  std::fprintf(f, "  \"oversubscribed_sweep\": %s,\n",
               4 > hw ? "true" : "false");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    std::fprintf(f,
                 "    {\"threads\": %u, \"scheduler\": \"%s\", \"policy\": "
                 "\"w%u\", \"ops_per_sec\": %.1f, \"launch_us\": %.3f, "
                 "\"drain_us\": %.3f, \"oversubscribed\": %s}%s\n",
                 r.threads, r.executor, r.waiters, r.ops_per_sec,
                 r.launch_us, r.drain_us,
                 r.oversubscribed ? "true" : "false",
                 i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s (%zu cells, zero lost grants)\n", json_name,
              results.size());
  return 0;
}

#endif  // RELOCK_ASYNC_ENABLED
