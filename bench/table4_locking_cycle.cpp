// Table 4: cost of successive Unlock and Lock operations on an already
// "locked" lock, for the static lock implementations. Paper values (us):
// spin 45.13/47.89, spin-with-backoff 320.36/356.95, blocking
// 510.55/563.79 (local/remote).
#include "cycle_common.hpp"
#include "relock/locks/blocking_lock.hpp"
#include "relock/locks/spin_locks.hpp"

int main() {
  using namespace relock;
  using namespace relock::bench;

  bench::print_header(
      "Table 4: Unlock+Lock cycle on an already locked lock", "Table 4");
  std::printf("%-28s %10s %10s   | %8s %8s\n", "Lock type", "local(us)",
              "remote(us)", "paper-l", "paper-r");

  auto run_spin = [](int node) {
    Machine m(MachineParams::butterfly());
    TasLock<SimPlatform> lock(m, Placement::on(node));
    return measure_cycle_us(m, lock);
  };
  print_row3("Spin", run_spin(0), run_spin(5), 45.13, 47.89);

  auto run_backoff = [](int node) {
    Machine m(MachineParams::butterfly());
    // Butterfly-scale backoff: 50us initial, 300us cap (Anderson-style).
    BackoffSpinLock<SimPlatform> lock(
        m, Placement::on(node),
        BackoffSchedule::Params{50'000, 300'000, 2});
    return measure_cycle_us(m, lock);
  };
  print_row3("Spin-with-backoff", run_backoff(0), run_backoff(5), 320.36,
             356.95);

  auto run_blocking = [](int node) {
    Machine m(MachineParams::butterfly());
    BlockingLock<SimPlatform> lock(m, Placement::on(node));
    return measure_cycle_us(m, lock);
  };
  print_row3("Blocking-lock", run_blocking(0), run_blocking(5), 510.55,
             563.79);

  return 0;
}
