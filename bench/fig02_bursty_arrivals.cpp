// Figure 2: length of critical section vs. application execution time for
// *bursty* arrival of lock requests, one thread per processor. Same
// qualitative result as Figure 1: linear growth, spin below blocking.
#include "figures_common.hpp"
#include "relock/locks/blocking_lock.hpp"
#include "relock/locks/spin_locks.hpp"

int main() {
  using namespace relock;
  using namespace relock::bench;
  using sim::Machine;
  using sim::MachineParams;
  using sim::SimPlatform;

  bench::print_header(
      "Figure 2: CS length vs. application time (bursty arrivals)",
      "Figure 2");

  auto config_for = [](Nanos cs) {
    CsWorkloadConfig cfg;
    cfg.locking_threads = 32;
    cfg.iterations = 6 * scale();
    // Bursts of 3 back-to-back requests, then a long inter-burst gap.
    cfg.arrival = ArrivalProcess::bursty(3, 20'000, 6'000'000);
    cfg.cs_length = Sampler::constant(cs);
    return cfg;
  };

  std::vector<Series> series;
  series.push_back({"spin", [&](Nanos cs) {
    Machine m(MachineParams::butterfly());
    TtasLock<SimPlatform> lock(m, Placement::on(0));
    return workload::run_cs_workload(m, lock, config_for(cs)).elapsed;
  }});
  series.push_back({"blocking", [&](Nanos cs) {
    Machine m(MachineParams::butterfly());
    BlockingLock<SimPlatform> lock(m, Placement::on(0));
    return workload::run_cs_workload(m, lock, config_for(cs)).elapsed;
  }});

  print_figure(default_cs_sweep(), series);
  std::printf("\nexpected shape: linear; spin below blocking, with a larger "
              "gap during bursts\n");
  return 0;
}
