// Table 3: cost of the Unlock operation for different locks (local /
// remote), uncontended. Paper values (us): spin 4.99/7.23, spin-with-
// backoff 5.01/7.25, blocking 62.32/73.45, configurable 50.07/61.69.
#include "lock_cost_common.hpp"

int main() {
  using namespace relock;
  using namespace relock::bench;

  bench::print_header("Table 3: Cost of the Unlock operation", "Table 3");
  std::printf("%-28s %10s %10s   | %8s %8s\n", "Lock type", "local(us)",
              "remote(us)", "paper-l", "paper-r");

  // Measure unlock: acquire outside the timed window, time the release.
  auto measure_unlock = [&](int node, auto make_lock) {
    return measure_op_us(
        node, make_lock,
        // The timed operation is the unlock...
        [](auto& l, Thread& t) { l.unlock(t); },
        // ...and the cleanup step re-acquires for the next iteration.
        [](auto& l, Thread& t) { l.lock(t); }, 200);
  };

  // Pre-acquire once so the first timed unlock is valid: wrap make_lock to
  // lock the lock right after construction.
  auto spin = [](Machine& m, Placement p) {
    auto l = std::make_unique<TasLock<SimPlatform>>(m, p);
    m.spawn(0, [raw = l.get()](Thread& t) { raw->lock(t); });
    m.run();
    return l;
  };
  print_row3("spin-lock", measure_unlock(0, spin), measure_unlock(1, spin),
             4.99, 7.23);

  auto backoff = [](Machine& m, Placement p) {
    auto l = std::make_unique<BackoffSpinLock<SimPlatform>>(m, p);
    m.spawn(0, [raw = l.get()](Thread& t) { raw->lock(t); });
    m.run();
    return l;
  };
  print_row3("spin-with-backoff", measure_unlock(0, backoff),
             measure_unlock(1, backoff), 5.01, 7.25);

  auto blocking = [](Machine& m, Placement p) {
    auto l = std::make_unique<BlockingLock<SimPlatform>>(m, p);
    m.spawn(0, [raw = l.get()](Thread& t) { raw->lock(t); });
    m.run();
    return l;
  };
  print_row3("blocking-lock", measure_unlock(0, blocking),
             measure_unlock(1, blocking), 62.32, 73.45);

  auto configurable = [](Machine& m, Placement p) {
    auto l = std::make_unique<ConfigurableLock<SimPlatform>>(
        m, configurable_options(p));
    m.spawn(0, [raw = l.get()](Thread& t) { raw->lock(t); });
    m.run();
    return l;
  };
  print_row3("configurable lock", measure_unlock(0, configurable),
             measure_unlock(1, configurable), 50.07, 61.69);

  return 0;
}
