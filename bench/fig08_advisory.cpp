// Figure 8: advisory/speculative locks on variable-length critical
// sections. The owner knows which path it is taking and advises waiters:
// sleep while it executes a long path, spin near the end / for short
// paths. Paper's finding: advisory locks outperform both plain spin and
// plain blocking once critical sections vary in length.
#include "figures_common.hpp"
#include "relock/core/configurable_lock.hpp"

namespace {
constexpr relock::Nanos kShortCs = 30'000;
constexpr double kPShort = 0.6;
}  // namespace

int main() {
  using namespace relock;
  using namespace relock::bench;
  using sim::Machine;
  using sim::MachineParams;
  using sim::SimPlatform;
  using sim::Thread;

  bench::print_header("Figure 8: advisory locks on variable-length CS",
                      "Figure 8");

  // Workload regime of Figure 3/7: locking threads share their processors
  // with useful threads under real contention. The owner's timed sleep
  // advice lets waiters sleep through long tenures (instead of stealing the
  // useful threads' cycles, as pure spin does) and spin through short ones
  // (instead of paying the blocking overhead, as pure sleep does).
  auto config_for = [](Nanos /*long_cs*/) {
    CsWorkloadConfig cfg;
    cfg.locking_threads = 8;
    cfg.iterations = 8 * scale();
    cfg.arrival = ArrivalProcess::smooth(Sampler::uniform(0, 4'000'000));
    cfg.useful_threads_per_proc = 1;
    cfg.useful_work_total = 100'000'000;  // 100ms per processor
    cfg.useful_work_chunk = 250'000;
    return cfg;
  };

  // The x-axis sweeps the *long* path's length; short paths stay fixed, so
  // the workload mixes paths of increasingly different lengths.
  auto run_with = [&](LockAttributes attrs, bool advisory, Nanos long_cs) {
    // A finer scheduling quantum than the machine default so grant
    // latencies are not quantized by 10ms slices shared with the useful
    // threads (all three series run under the identical machine).
    MachineParams params = MachineParams::butterfly();
    params.quantum = 2'000'000;
    Machine m(params);
    ConfigurableLock<SimPlatform>::Options o;
    o.scheduler = SchedulerKind::kFcfs;
    o.attributes = attrs;
    o.advisory = advisory;
    o.placement = Placement::on(0);
    ConfigurableLock<SimPlatform> lock(m, o);
    const Sampler path = Sampler::bimodal(kShortCs, long_cs, kPShort);
    const auto result = workload::run_cs_workload_with_body(
        m, lock, config_for(long_cs),
        [&m, &lock, &path, advisory](Thread& t, Xoshiro256& rng,
                                     std::uint32_t) {
          const Nanos len = path.sample(rng);
          if (!advisory) {
            m.compute(t, len);
            return;
          }
          // The owner is the best source of information about its tenure.
          // Advise sleep only when the remaining tenure exceeds the
          // machine's blocking overhead (~0.5ms); shorter tenures are
          // cheaper to spin through.
          if (len > 600'000) {
            lock.advise(t, Advice::kSleep);
            m.compute(t, len - len / 8);
            lock.advise(t, Advice::kSpin);  // nearly done: spin is cheaper
            m.compute(t, len / 8);
          } else {
            lock.advise(t, Advice::kSpin);
            m.compute(t, len);
          }
        });
    return result.elapsed;
  };

  std::vector<Series> series;
  series.push_back({"spin", [&](Nanos cs) {
    return run_with(LockAttributes::spin(), false, cs);
  }});
  series.push_back({"blocking", [&](Nanos cs) {
    return run_with(LockAttributes::blocking(), false, cs);
  }});
  series.push_back({"advisory", [&](Nanos cs) {
    return run_with(LockAttributes::spin(), true, cs);
  }});

  print_figure({400'000, 800'000, 1'600'000, 3'200'000, 6'400'000},
               series);
  std::printf("\nexpected shape: advisory tracks spin for short long-paths "
              "and beats both pure policies as path lengths diverge\n");
  return 0;
}
