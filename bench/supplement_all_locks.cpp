// Supplementary table (beyond the paper): lock-op, unlock-op, and locking-
// cycle costs on the simulated Butterfly for every baseline lock in the
// library, including the queue locks the paper only discusses as related
// work (MCS [MCS91], CLH, Anderson's array lock [ALL89], ticket). Gives a
// complete cost picture for choosing a static configuration.
#include "cycle_common.hpp"
#include "lock_cost_common.hpp"
#include "relock/locks/anderson_lock.hpp"
#include "relock/locks/clh_lock.hpp"
#include "relock/locks/mcs_lock.hpp"
#include "relock/locks/ticket_lock.hpp"

namespace {

using namespace relock;
using namespace relock::bench;

// Unlock is timed on same-thread lock/unlock pairs: queue locks (MCS, CLH)
// require the releasing thread to be the owner.
template <typename MakeLock>
double measure_unlock_us(MakeLock make_lock) {
  Machine m(MachineParams::butterfly());
  auto lock = make_lock(m, Placement::on(0));
  MeanAccumulator acc;
  m.spawn(0, [&](Thread& t) {
    for (int i = 0; i < 200; ++i) {
      lock->lock(t);
      const Nanos t0 = m.now();
      lock->unlock(t);
      acc.add(m.now() - t0);
    }
  });
  m.run();
  return acc.mean_us();
}

template <typename MakeLock>
void row(const char* name, MakeLock make_lock) {
  auto lock_op = [](auto& l, Thread& t) { l.lock(t); };
  auto unlock_op = [](auto& l, Thread& t) { l.unlock(t); };
  const double lock_us = measure_op_us(0, make_lock, lock_op, unlock_op);
  const double unlock_us = measure_unlock_us(make_lock);
  Machine m(MachineParams::butterfly());
  auto cycle_lock = make_lock(m, Placement::on(0));
  const double cycle_us = measure_cycle_us(m, *cycle_lock);
  std::printf("%-22s %12.2f %12.2f %12.2f\n", name, lock_us, unlock_us,
              cycle_us);
}

}  // namespace

int main() {
  bench::print_header(
      "Supplement: full static-lock cost table (beyond the paper)",
      "Tables 2-4, extended");
  std::printf("%-22s %12s %12s %12s\n", "Lock", "lock(us)", "unlock(us)",
              "cycle(us)");

  row("TAS spin", [](Machine& m, Placement p) {
    return std::make_unique<TasLock<SimPlatform>>(m, p);
  });
  row("TTAS spin", [](Machine& m, Placement p) {
    return std::make_unique<TtasLock<SimPlatform>>(m, p);
  });
  row("backoff spin", [](Machine& m, Placement p) {
    return std::make_unique<BackoffSpinLock<SimPlatform>>(
        m, p, BackoffSchedule::Params{50'000, 300'000, 2});
  });
  row("ticket", [](Machine& m, Placement p) {
    return std::make_unique<TicketLock<SimPlatform>>(m, p);
  });
  row("Anderson array", [](Machine& m, Placement p) {
    return std::make_unique<AndersonArrayLock<SimPlatform>>(m, 64, p, 64);
  });
  row("MCS (distributed)", [](Machine& m, Placement p) {
    return std::make_unique<McsLock<SimPlatform>>(m, p, 64);
  });
  row("CLH", [](Machine& m, Placement p) {
    return std::make_unique<ClhLock<SimPlatform>>(m, p, 64);
  });
  row("blocking", [](Machine& m, Placement p) {
    return std::make_unique<BlockingLock<SimPlatform>>(m, p);
  });
  row("configurable (mixed)", [](Machine& m, Placement p) {
    return std::make_unique<ConfigurableLock<SimPlatform>>(
        m, configurable_options(p));
  });

  std::printf("\nlock/unlock: uncontended, lock local to the caller.\n"
              "cycle: unlock->lock handoff to one waiting remote thread.\n");
  return 0;
}
