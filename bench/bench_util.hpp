// Shared helpers for the paper-reproduction benches: the calibrated
// Butterfly machine, microsecond formatting, and paper-style table output.
//
// Every bench prints the rows/series of one table or figure from
// Mukherjee & Schwan, "Experiments with Configurable Locks for
// Multiprocessors" (GIT-CC-93/05). Where the paper reports absolute values
// we print them alongside as "paper" columns; EXPERIMENTS.md records the
// comparison.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "relock/platform/types.hpp"
#include "relock/sim/machine.hpp"

namespace relock::bench {

inline double to_us(Nanos ns) { return static_cast<double>(ns) / 1000.0; }

/// Benchmark scale factor (RELOCK_BENCH_SCALE env var): multiplies
/// iteration counts; 1 = quick defaults suitable for CI.
inline std::uint32_t scale() {
  static const std::uint32_t s = [] {
    const char* e = std::getenv("RELOCK_BENCH_SCALE");
    const long v = e != nullptr ? std::strtol(e, nullptr, 10) : 1;
    return static_cast<std::uint32_t>(v > 0 ? v : 1);
  }();
  return s;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", title);
  std::printf("(reproduces %s of Mukherjee & Schwan, GIT-CC-93/05, ICPP 1993)\n",
              paper_ref);
  std::printf("machine: simulated 32-node BBN Butterfly GP1000 (virtual time)\n");
  std::printf("==============================================================================\n");
}

inline void print_row3(const char* name, double local_us, double remote_us,
                       double paper_local, double paper_remote) {
  std::printf("%-28s %10.2f %10.2f   | %8.2f %8.2f\n", name, local_us,
              remote_us, paper_local, paper_remote);
}

/// Mean of per-operation samples collected inside the simulator.
class MeanAccumulator {
 public:
  void add(Nanos v) {
    sum_ += v;
    ++n_;
  }
  [[nodiscard]] double mean_ns() const {
    return n_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(n_);
  }
  [[nodiscard]] double mean_us() const { return mean_ns() / 1000.0; }
  [[nodiscard]] std::uint64_t count() const { return n_; }

 private:
  std::uint64_t sum_ = 0;
  std::uint64_t n_ = 0;
};

}  // namespace relock::bench
