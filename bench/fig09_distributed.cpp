// Figure 9: centralized vs. distributed spin locks, three processors.
// A distributed lock replicates the waiters' polling targets into their own
// node memories (per-waiter grant flags), eliminating remote polling
// traffic. Paper's finding: a small but consistent advantage for the
// distributed implementation, expected to grow with processor count; we
// print the 3-processor series the paper shows plus a 16-processor series
// supporting its hypothesis.
#include "figures_common.hpp"
#include "relock/core/configurable_lock.hpp"

int main() {
  using namespace relock;
  using namespace relock::bench;
  using sim::Machine;
  using sim::MachineParams;
  using sim::SimPlatform;

  bench::print_header("Figure 9: centralized vs. distributed locks",
                      "Figure 9");

  auto run_with = [&](std::uint32_t procs, bool distributed, Nanos cs) {
    MachineParams params = MachineParams::butterfly();
    params.processors = procs;
    Machine m(params);
    ConfigurableLock<SimPlatform>::Options o;
    if (distributed) {
      o.scheduler = SchedulerKind::kFcfs;  // queue; poll node-local flags
      o.wait_placement = WaitPlacement::kWaiterLocal;
    } else {
      o.scheduler = SchedulerKind::kNone;  // poll the central lock word
      o.wait_placement = WaitPlacement::kLockHome;
    }
    o.attributes = LockAttributes::spin();
    o.placement = Placement::on(0);
    ConfigurableLock<SimPlatform> lock(m, o);
    CsWorkloadConfig cfg;
    cfg.locking_threads = procs;
    cfg.iterations = 10 * scale();
    cfg.arrival = ArrivalProcess::smooth(Sampler::uniform(0, 100'000));
    cfg.cs_length = Sampler::constant(cs);
    return workload::run_cs_workload(m, lock, cfg).elapsed;
  };

  std::printf("--- 3 processors (the paper's configuration) ---\n");
  std::vector<Series> series3;
  series3.push_back({"centralized", [&](Nanos cs) {
    return run_with(3, false, cs);
  }});
  series3.push_back({"distributed", [&](Nanos cs) {
    return run_with(3, true, cs);
  }});
  print_figure(default_cs_sweep(), series3);

  std::printf("\n--- 16 processors (paper's hypothesis: larger advantage) ---\n");
  std::vector<Series> series16;
  series16.push_back({"centralized", [&](Nanos cs) {
    return run_with(16, false, cs);
  }});
  series16.push_back({"distributed", [&](Nanos cs) {
    return run_with(16, true, cs);
  }});
  print_figure({25'000, 100'000, 400'000}, series16);

  std::printf("\nexpected shape: small distributed advantage at 3 procs, "
              "larger at 16\n");
  return 0;
}
