// Native contended-throughput suite: real host threads hammering one
// ConfigurableLock<NativePlatform> across scheduler kinds and waiting
// policies, sweeping thread counts from 1 to max(16, 2 x hw_concurrency).
//
// This is the repo's perf trajectory anchor (ISSUE 1): it emits
// BENCH_native_throughput.json (ops/sec plus p50/p99 acquire-wait latency
// per cell) so successive PRs can be compared quantitatively. The paper's
// tables measure *uncontended* cost on the simulator; this suite measures
// what the paper could not: how the slow path scales when many real threads
// collide on one lock.
//
// Knobs: RELOCK_NT_MS (measure window per cell, default 200),
//        RELOCK_NT_MAX_THREADS (sweep ceiling, default max(16, 2*hw)).
// Modes: --smoke   reduced sweep (1/2/4 threads, fewer cells, 100 ms
//                  windows unless RELOCK_NT_MS overrides) for CI, where the
//                  JSON is diffed against bench/baselines/.
//        --trace F write the capture of the traced cells to F as Chrome
//                  Trace JSON (meaningful in the RELOCK_TRACE build; other
//                  builds write an empty, valid trace).
//
// The native_throughput_trace binary is this same source compiled with
// RELOCK_TRACE=1: it runs the identical sweep (the JSON diff against the
// plain binary is the compiled-in-but-idle tracer cost) and then re-runs
// the smoke cells with recording enabled ("*_traced" policy rows, written
// to BENCH_native_throughput_trace.json) - the three columns of the
// tracer-overhead table in EXPERIMENTS.md.
//
// Every cell records the concurrency it actually ran at: `hw_concurrency`
// is the host's processor count and each result carries `oversubscribed`,
// true when the cell's team outnumbered the processors (the domain's own
// census, the same one spin policies consult). Contended numbers from an
// oversubscribed cell measure scheduler rotation as much as the lock, and
// must only be compared against baselines with the same flag.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "cycle_common.hpp"
#include "relock/core/configurable_lock.hpp"
#include "relock/monitor/reporter.hpp"
#include "relock/platform/clock.hpp"
#include "relock/platform/native.hpp"
#include "relock/trace/trace.hpp"

namespace {

using namespace relock;
using NP = native::NativePlatform;
using Lock = ConfigurableLock<NP>;

struct PolicySpec {
  const char* name;
  LockAttributes attrs;
};

struct SchedSpec {
  const char* name;
  SchedulerKind kind;
};

struct CellResult {
  std::uint32_t threads = 0;
  const char* scheduler = nullptr;
  const char* policy = nullptr;
  double ops_per_sec = 0.0;
  std::uint64_t total_ops = 0;
  std::uint64_t p50_wait_ns = 0;
  std::uint64_t p99_wait_ns = 0;
  bool oversubscribed = false;  ///< team outnumbered the host's processors
};

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* e = std::getenv(name);
  if (e == nullptr) return fallback;
  const long long v = std::strtoll(e, nullptr, 10);
  return v > 0 ? static_cast<std::uint64_t>(v) : fallback;
}

std::uint64_t percentile(std::vector<std::uint64_t>& sorted, unsigned pct) {
  if (sorted.empty()) return 0;
  const std::size_t idx =
      std::min(sorted.size() - 1, sorted.size() * pct / 100);
  return sorted[idx];
}

/// One cell: `threads` threads loop {lock; tiny CS; unlock} for `window_ns`.
/// The acquire-wait latency of every operation is sampled (capped per
/// thread); preallocation keeps the measurement loop allocation-free.
CellResult run_cell(std::uint32_t threads, const SchedSpec& sched,
                    const PolicySpec& policy, Nanos window_ns) {
  constexpr std::size_t kMaxSamplesPerThread = 1 << 16;

  native::Domain domain;
  Lock::Options opts;
  opts.scheduler = sched.kind;
  opts.attributes = policy.attrs;
  Lock lock(domain, opts);

  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<std::uint32_t> ready{0};
  std::uint64_t shared_counter = 0;  // the protected datum

  std::vector<std::uint64_t> ops(threads, 0);
  std::vector<std::vector<std::uint64_t>> samples(threads);
  for (auto& s : samples) s.reserve(kMaxSamplesPerThread);

  std::vector<std::thread> team;
  team.reserve(threads);
  for (std::uint32_t i = 0; i < threads; ++i) {
    team.emplace_back([&, i] {
      native::Context ctx(domain);
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::uint64_t local_ops = 0;
      auto& my_samples = samples[i];
      while (!stop.load(std::memory_order_relaxed)) {
        const Nanos t0 = monotonic_now();
        lock.lock(ctx);
        const Nanos t1 = monotonic_now();
        ++shared_counter;  // critical section: one cache line touch
        lock.unlock(ctx);
        ++local_ops;
        if (my_samples.size() < kMaxSamplesPerThread) {
          my_samples.push_back(t1 - t0);
        }
      }
      ops[i] = local_ops;
    });
  }

  while (ready.load(std::memory_order_acquire) != threads) {
    std::this_thread::yield();
  }
  // The whole team is registered: sample the domain's own oversubscription
  // census (what the lock's spin policies consult) for this cell's tag.
  const bool oversubscribed = domain.oversubscribed();
  const Nanos start = monotonic_now();
  go.store(true, std::memory_order_release);
  while (monotonic_now() - start < window_ns) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : team) t.join();
  const Nanos elapsed = monotonic_now() - start;

  CellResult r;
  r.threads = threads;
  r.scheduler = sched.name;
  r.policy = policy.name;
  r.oversubscribed = oversubscribed;
  std::vector<std::uint64_t> all;
  for (std::uint32_t i = 0; i < threads; ++i) {
    r.total_ops += ops[i];
    all.insert(all.end(), samples[i].begin(), samples[i].end());
  }
  std::sort(all.begin(), all.end());
  r.p50_wait_ns = percentile(all, 50);
  r.p99_wait_ns = percentile(all, 99);
  r.ops_per_sec = elapsed == 0 ? 0.0
                               : static_cast<double>(r.total_ops) * 1e9 /
                                     static_cast<double>(elapsed);
  // Consistency check: every operation incremented the protected counter
  // exactly once, or mutual exclusion is broken and the numbers are lies.
  if (shared_counter != r.total_ops) {
    std::fprintf(stderr,
                 "FATAL: lost updates (%llu ops vs %llu increments) in "
                 "%u/%s/%s\n",
                 static_cast<unsigned long long>(r.total_ops),
                 static_cast<unsigned long long>(shared_counter), threads,
                 sched.name, policy.name);
    std::exit(1);
  }
  return r;
}

/// The `uncontended_cycle` cell family: cycle-granularity acquire+release
/// cost on one thread via the batch harness in cycle_common.hpp. The
/// p50/p99 columns carry the *per-operation cycle* cost in ns (the
/// contended cells' per-op clock sampling floors their wait columns at the
/// vDSO clock cost and their ops/sec at ~2 clock reads per op; this family
/// reads the clock once per 4096 ops).
CellResult run_uncontended_cell(const SchedSpec& sched, Nanos window_ns) {
  native::Domain domain;
  Lock::Options opts;
  opts.scheduler = sched.kind;
  opts.attributes = LockAttributes::spin();
  Lock lock(domain, opts);
  native::Context ctx(domain);
  std::uint64_t shared_counter = 0;
  const bench::UncontendedCycles c = bench::measure_uncontended_cycles(
      ctx, lock, window_ns, [&shared_counter] { ++shared_counter; });

  CellResult r;
  r.threads = 1;
  r.scheduler = sched.name;
  r.policy = "uncontended_cycle";
  r.oversubscribed = false;
  r.total_ops = c.total_ops;
  r.p50_wait_ns = c.p50_cycle_ns;
  r.p99_wait_ns = c.p99_cycle_ns;
  r.ops_per_sec = c.elapsed_ns == 0 ? 0.0
                                    : static_cast<double>(c.total_ops) * 1e9 /
                                          static_cast<double>(c.elapsed_ns);
  if (shared_counter != r.total_ops) {
    std::fprintf(stderr,
                 "FATAL: lost updates (%llu ops vs %llu increments) in "
                 "1/%s/uncontended_cycle\n",
                 static_cast<unsigned long long>(r.total_ops),
                 static_cast<unsigned long long>(shared_counter), sched.name);
    std::exit(1);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    if (arg == "--trace" && i + 1 < argc) trace_path = argv[++i];
  }
  const std::uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  const std::uint32_t max_threads = static_cast<std::uint32_t>(env_u64(
      "RELOCK_NT_MAX_THREADS", smoke ? 4u : std::max(16u, 2 * hw)));
  const Nanos window_ns =
      env_u64("RELOCK_NT_MS", smoke ? 100 : 200) * 1'000'000;

  const std::vector<SchedSpec> scheds =
      smoke ? std::vector<SchedSpec>{{"none", SchedulerKind::kNone},
                                     {"fcfs", SchedulerKind::kFcfs},
                                     {"handoff", SchedulerKind::kHandoff},
                                     {"queue", SchedulerKind::kQueue}}
            : std::vector<SchedSpec>{
                  {"none", SchedulerKind::kNone},
                  {"fcfs", SchedulerKind::kFcfs},
                  {"priority_queue", SchedulerKind::kPriorityQueue},
                  {"handoff", SchedulerKind::kHandoff},
                  {"queue", SchedulerKind::kQueue}};
  const std::vector<PolicySpec> policies =
      smoke ? std::vector<PolicySpec>{{"spin", LockAttributes::spin()},
                                      {"blocking", LockAttributes::blocking()}}
            : std::vector<PolicySpec>{
                  {"spin", LockAttributes::spin()},
                  {"combined_100", LockAttributes::combined(100)},
                  {"blocking", LockAttributes::blocking()}};

  std::vector<std::uint32_t> sweep;
  for (std::uint32_t n = 1; n < max_threads; n *= 2) sweep.push_back(n);
  sweep.push_back(max_threads);

  std::printf("==============================================================================\n");
  std::printf("Native throughput: contended lock/unlock on real host threads\n");
  std::printf("hw_concurrency=%u  window=%llu ms/cell  sweep up to %u threads%s\n",
              hw, static_cast<unsigned long long>(window_ns / 1'000'000),
              max_threads, smoke ? "  [smoke]" : "");
  std::printf("==============================================================================\n");
  std::printf("%8s %-16s %-14s %14s %12s %12s %8s\n", "threads", "scheduler",
              "policy", "ops/sec", "p50_wait_us", "p99_wait_us", "oversub");

  std::vector<CellResult> results;
  // Cycle-granularity uncontended cells first: these are the fast-path
  // trajectory anchor and the cells bench-smoke hard-gates with --fail-drop.
  for (const SchedSpec& sc : scheds) {
    const CellResult r = run_uncontended_cell(sc, window_ns);
    std::printf("%8u %-16s %-14s %14.0f %12.1f %12.1f %8s\n", r.threads,
                r.scheduler, r.policy, r.ops_per_sec,
                static_cast<double>(r.p50_wait_ns) / 1000.0,
                static_cast<double>(r.p99_wait_ns) / 1000.0,
                r.oversubscribed ? "yes" : "no");
    std::fflush(stdout);
    results.push_back(r);
  }
  for (const std::uint32_t n : sweep) {
    for (const SchedSpec& sc : scheds) {
      for (const PolicySpec& po : policies) {
        const CellResult r = run_cell(n, sc, po, window_ns);
        std::printf("%8u %-16s %-14s %14.0f %12.1f %12.1f %8s\n", r.threads,
                    r.scheduler, r.policy, r.ops_per_sec,
                    static_cast<double>(r.p50_wait_ns) / 1000.0,
                    static_cast<double>(r.p99_wait_ns) / 1000.0,
                    r.oversubscribed ? "yes" : "no");
        std::fflush(stdout);
        results.push_back(r);
      }
    }
  }

#ifdef RELOCK_TRACE
  // Recording-enabled overhead cells: the smoke sweep's fcfs/spin and
  // handoff/spin cells again, with the registry live. The rings are sized
  // generously and preattached so the measured cost is the steady-state
  // one (clock fetch_add + SPSC push), not attach-time allocation. Ring
  // overflow during a long window is expected and by design costs LESS
  // than a successful push, so drop-newest never flatters the numbers.
  {
    auto& reg = trace::Registry::instance();
    reg.set_ring_capacity(1u << 15);
    reg.preattach(static_cast<ThreadId>(std::min(64u, max_threads * 2)));
    const PolicySpec traced{"spin_traced", LockAttributes::spin()};
    for (const SchedSpec& sc :
         {SchedSpec{"fcfs", SchedulerKind::kFcfs},
          SchedSpec{"handoff", SchedulerKind::kHandoff}}) {
      for (const std::uint32_t n : {1u, 2u, 4u}) {
        if (n > max_threads) break;
        reg.set_enabled(true);
        const CellResult r = run_cell(n, sc, traced, window_ns);
        reg.set_enabled(false);
        std::printf("%8u %-16s %-14s %14.0f %12.1f %12.1f %8s\n", r.threads,
                    r.scheduler, r.policy, r.ops_per_sec,
                    static_cast<double>(r.p50_wait_ns) / 1000.0,
                    static_cast<double>(r.p99_wait_ns) / 1000.0,
                    r.oversubscribed ? "yes" : "no");
        std::fflush(stdout);
        results.push_back(r);
      }
    }
  }
  const char* json_name = "BENCH_native_throughput_trace.json";
  const char* bench_name = "native_throughput_trace";
#else
  const char* json_name = "BENCH_native_throughput.json";
  const char* bench_name = "native_throughput";
#endif

  if (!trace_path.empty()) {
    // Drains whatever the traced cells buffered; an OFF build writes an
    // empty (but valid and loadable) trace.
    std::uint64_t dropped = 0;
    const long n = write_chrome_trace(trace_path, &dropped);
    if (n < 0) {
      std::perror(trace_path.c_str());
      return 1;
    }
    std::printf("wrote %s (%ld events, %llu dropped)\n", trace_path.c_str(),
                n, static_cast<unsigned long long>(dropped));
  }

  FILE* f = std::fopen(json_name, "w");
  if (f == nullptr) {
    std::perror(json_name);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n", bench_name);
  std::fprintf(f, "  \"hw_concurrency\": %u,\n", hw);
  // Sweep-level oversubscription verdict: whether ANY contended cell ran
  // with more threads than processors. diff_baseline.py uses this plus
  // hw_concurrency to refuse silent comparisons across unlike hosts -
  // oversubscribed cells measure scheduler rotation as much as the lock.
  std::fprintf(f, "  \"oversubscribed_sweep\": %s,\n",
               max_threads > hw ? "true" : "false");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"window_ms_per_cell\": %llu,\n",
               static_cast<unsigned long long>(window_ns / 1'000'000));
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    std::fprintf(f,
                 "    {\"threads\": %u, \"scheduler\": \"%s\", \"policy\": "
                 "\"%s\", \"ops_per_sec\": %.1f, \"total_ops\": %llu, "
                 "\"p50_wait_ns\": %llu, \"p99_wait_ns\": %llu, "
                 "\"oversubscribed\": %s}%s\n",
                 r.threads, r.scheduler, r.policy, r.ops_per_sec,
                 static_cast<unsigned long long>(r.total_ops),
                 static_cast<unsigned long long>(r.p50_wait_ns),
                 static_cast<unsigned long long>(r.p99_wait_ns),
                 r.oversubscribed ? "true" : "false",
                 i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s (%zu cells)\n", json_name, results.size());
  return 0;
}
