// Policy tournament: the closed-loop adaptation engine vs every static
// configuration, across workload shapes chosen to have DIFFERENT static
// winners - the paper's section-6 claim ("dynamic feedback ... is
// essential for better application performance") made quantitative. A
// governor that works never loses badly to the best static choice on any
// shape, and beats the worst static choice (the one a programmer who
// guessed wrong would have shipped) by a wide margin on several.
//
// Workloads (the `scheduler` JSON column carries the workload name so the
// cells diff with the standard baseline tooling):
//   uniform         steady short critical sections, moderate team
//   bursty          alternating short-CS / long-CS phases (fig 2 shape)
//   oversubscribed  2 x hw_concurrency + 2 threads: spinning is poison,
//                   parking policies and FCFS (not FIFO-to-preempted
//                   queue handoff) win
//   zipf            LockTable under a Zipfian key stream: hot entries
//                   inflate and - in the adaptive cell - are governed
//                   through the table's inflation hooks
//
// Configs (the `policy` JSON column): static spin / sleep / queue /
// threshold, plus `adaptive` = the spin-start default stack under a
// 1 ms GovernorThread. The adaptive cell pays its full freight: monitor
// enabled, governor thread scheduled on the same host.
//
// Knobs: RELOCK_PT_MS (measure window per cell, default 300; smoke 100),
//        RELOCK_PT_THREADS (uniform/bursty team, default min(hw, 8)).
// Modes: --smoke  shorter windows for CI, where the JSON is diffed
//                 against bench/baselines/policy_tournament_smoke.json.
//
// Single-core caveat: on a 1-core host every multi-thread cell runs
// oversubscribed and contended numbers measure scheduler rotation as much
// as the lock; the per-cell `oversubscribed` tag records this and the
// baseline diff skips cells whose regimes differ.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "relock/adapt/policy_engine.hpp"
#include "relock/core/configurable_lock.hpp"
#include "relock/platform/clock.hpp"
#include "relock/platform/native.hpp"
#include "relock/platform/rng.hpp"
#include "relock/table/lock_table.hpp"
#include "relock/workload/zipf.hpp"

namespace {

using namespace relock;
using NP = native::NativePlatform;
using Lock = ConfigurableLock<NP>;
using Table = table::LockTable<NP>;
using Engine = adapt::PolicyEngine<NP>;

struct ConfigSpec {
  const char* name;
  SchedulerKind kind;
  LockAttributes attrs;
  bool adaptive;
};

struct CellResult {
  std::uint32_t threads = 0;
  const char* workload = nullptr;
  const char* config = nullptr;
  double ops_per_sec = 0.0;
  std::uint64_t total_ops = 0;
  std::uint64_t p50_wait_ns = 0;
  std::uint64_t p99_wait_ns = 0;
  bool oversubscribed = false;
};

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* e = std::getenv(name);
  if (e == nullptr) return fallback;
  const long long v = std::strtoll(e, nullptr, 10);
  return v > 0 ? static_cast<std::uint64_t>(v) : fallback;
}

std::uint64_t percentile(std::vector<std::uint64_t>& sorted, unsigned pct) {
  if (sorted.empty()) return 0;
  const std::size_t idx =
      std::min(sorted.size() - 1, sorted.size() * pct / 100);
  return sorted[idx];
}

/// Busy CS of roughly `ns` (virtual work guarded by the lock).
inline void burn(Nanos ns) {
  const Nanos t0 = monotonic_now();
  while (monotonic_now() - t0 < ns) {
  }
}

/// Single-lock cell: `threads` threads cycle {lock; CS; unlock}. When
/// `bursty`, the main thread toggles the CS length between short and long
/// phases across the window. The adaptive config attaches the default
/// policy stack under a 1 ms governor.
CellResult run_lock_cell(const char* workload, std::uint32_t threads,
                         bool bursty, const ConfigSpec& cfg,
                         Nanos window_ns) {
  constexpr std::size_t kMaxSamplesPerThread = 1 << 15;
  constexpr Nanos kLongCsNs = 30'000;

  native::Domain domain;
  Lock::Options opts;
  opts.scheduler = cfg.kind;
  opts.attributes = cfg.attrs;
  opts.monitor_enabled = cfg.adaptive;  // the governor's input, its cost too
  Lock lock(domain, opts);

  Engine engine;
  std::unique_ptr<adapt::GovernorThread<NP>> governor;
  if (cfg.adaptive) {
    engine.register_lock(lock);  // default stack, seeded from the config
    governor = std::make_unique<adapt::GovernorThread<NP>>(
        domain, engine, /*interval_ns=*/1'000'000);
  }

  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<bool> long_phase{false};
  std::atomic<std::uint32_t> ready{0};
  std::uint64_t shared_counter = 0;

  std::vector<std::uint64_t> ops(threads, 0);
  std::vector<std::vector<std::uint64_t>> samples(threads);
  for (auto& s : samples) s.reserve(kMaxSamplesPerThread);

  std::vector<std::thread> team;
  team.reserve(threads);
  for (std::uint32_t i = 0; i < threads; ++i) {
    team.emplace_back([&, i] {
      native::Context ctx(domain);
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::uint64_t local_ops = 0;
      auto& my_samples = samples[i];
      while (!stop.load(std::memory_order_relaxed)) {
        const Nanos t0 = monotonic_now();
        lock.lock(ctx);
        const Nanos t1 = monotonic_now();
        ++shared_counter;
        if (long_phase.load(std::memory_order_relaxed)) burn(kLongCsNs);
        lock.unlock(ctx);
        ++local_ops;
        if (my_samples.size() < kMaxSamplesPerThread) {
          my_samples.push_back(t1 - t0);
        }
      }
      ops[i] = local_ops;
    });
  }

  while (ready.load(std::memory_order_acquire) != threads) {
    std::this_thread::yield();
  }
  const bool oversubscribed = domain.oversubscribed();
  const Nanos start = monotonic_now();
  go.store(true, std::memory_order_release);
  if (bursty) {
    // Six phases across the window: short, long, short, long, ...
    const Nanos phase_ns = window_ns / 6;
    for (int ph = 0; ph < 6; ++ph) {
      long_phase.store(ph % 2 == 1, std::memory_order_relaxed);
      const Nanos phase_end = start + phase_ns * static_cast<Nanos>(ph + 1);
      while (monotonic_now() < phase_end) std::this_thread::yield();
    }
  } else {
    while (monotonic_now() - start < window_ns) std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : team) t.join();
  const Nanos elapsed = monotonic_now() - start;
  if (governor) governor->stop();

  CellResult r;
  r.threads = threads;
  r.workload = workload;
  r.config = cfg.name;
  r.oversubscribed = oversubscribed;
  std::vector<std::uint64_t> all;
  for (std::uint32_t i = 0; i < threads; ++i) {
    r.total_ops += ops[i];
    all.insert(all.end(), samples[i].begin(), samples[i].end());
  }
  std::sort(all.begin(), all.end());
  r.p50_wait_ns = percentile(all, 50);
  r.p99_wait_ns = percentile(all, 99);
  r.ops_per_sec = elapsed == 0 ? 0.0
                               : static_cast<double>(r.total_ops) * 1e9 /
                                     static_cast<double>(elapsed);
  if (shared_counter != r.total_ops) {
    std::fprintf(stderr, "FATAL: lost updates in %s/%s\n", workload,
                 cfg.name);
    std::exit(1);
  }
  return r;
}

/// LockTable cell: a Zipfian key stream over a small hot set, so the table
/// inflates its hot entries. The adaptive config governs those entries
/// through the inflation hooks - the engine registers whatever the
/// workload makes hot, without anyone naming the locks up front.
CellResult run_table_cell(std::uint32_t threads, const ConfigSpec& cfg,
                          Nanos window_ns) {
  constexpr std::size_t kMaxSamplesPerThread = 1 << 15;
  constexpr std::uint64_t kKeys = 64;

  native::Domain domain;
  Engine engine;
  Table::Options topts;
  topts.capacity = 256;
  topts.partitions = 4;
  topts.lock_options.scheduler = cfg.kind;
  topts.lock_options.attributes = cfg.attrs;
  topts.lock_options.monitor_enabled = cfg.adaptive;
  if (cfg.adaptive) {
    topts.on_inflate = engine.inflation_hook();
    topts.on_deflate = engine.deflation_hook();
  }
  Table tbl(domain, topts);
  std::unique_ptr<adapt::GovernorThread<NP>> governor;
  if (cfg.adaptive) {
    governor = std::make_unique<adapt::GovernorThread<NP>>(
        domain, engine, /*interval_ns=*/1'000'000);
  }

  const workload::ZipfianSampler zipf(kKeys, 0.9);
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<std::uint32_t> ready{0};
  std::vector<std::uint64_t> ops(threads, 0);
  std::vector<std::vector<std::uint64_t>> samples(threads);
  for (auto& s : samples) s.reserve(kMaxSamplesPerThread);

  std::vector<std::thread> team;
  team.reserve(threads);
  for (std::uint32_t i = 0; i < threads; ++i) {
    team.emplace_back([&, i] {
      native::Context ctx(domain);
      Xoshiro256 rng(0x9e3779b97f4a7c15ull ^ (i * 0x2545f4914f6cdd1dull));
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::uint64_t local_ops = 0;
      auto& my_samples = samples[i];
      while (!stop.load(std::memory_order_relaxed)) {
        const Table::Key k = zipf.sample(rng);
        const Nanos t0 = monotonic_now();
        if (!tbl.lock(ctx, k)) continue;
        const Nanos t1 = monotonic_now();
        tbl.unlock(ctx, k);
        ++local_ops;
        if (my_samples.size() < kMaxSamplesPerThread) {
          my_samples.push_back(t1 - t0);
        }
      }
      ops[i] = local_ops;
    });
  }

  while (ready.load(std::memory_order_acquire) != threads) {
    std::this_thread::yield();
  }
  const bool oversubscribed = domain.oversubscribed();
  const Nanos start = monotonic_now();
  go.store(true, std::memory_order_release);
  while (monotonic_now() - start < window_ns) std::this_thread::yield();
  stop.store(true, std::memory_order_release);
  for (auto& t : team) t.join();
  const Nanos elapsed = monotonic_now() - start;
  if (governor) governor->stop();

  CellResult r;
  r.threads = threads;
  r.workload = "zipf";
  r.config = cfg.name;
  r.oversubscribed = oversubscribed;
  std::vector<std::uint64_t> all;
  for (std::uint32_t i = 0; i < threads; ++i) {
    r.total_ops += ops[i];
    all.insert(all.end(), samples[i].begin(), samples[i].end());
  }
  std::sort(all.begin(), all.end());
  r.p50_wait_ns = percentile(all, 50);
  r.p99_wait_ns = percentile(all, 99);
  r.ops_per_sec = elapsed == 0 ? 0.0
                               : static_cast<double>(r.total_ops) * 1e9 /
                                     static_cast<double>(elapsed);
  return r;
}

void print_row(const CellResult& r) {
  std::printf("%8u %-16s %-12s %14.0f %12.1f %12.1f %8s\n", r.threads,
              r.workload, r.config, r.ops_per_sec,
              static_cast<double>(r.p50_wait_ns) / 1000.0,
              static_cast<double>(r.p99_wait_ns) / 1000.0,
              r.oversubscribed ? "yes" : "no");
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  const std::uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  const std::uint32_t base_threads = static_cast<std::uint32_t>(
      env_u64("RELOCK_PT_THREADS", std::max(2u, std::min(hw, 8u))));
  const Nanos window_ns =
      env_u64("RELOCK_PT_MS", smoke ? 100 : 300) * 1'000'000;

  const std::vector<ConfigSpec> configs = {
      {"spin", SchedulerKind::kFcfs, LockAttributes::spin(), false},
      {"sleep", SchedulerKind::kFcfs, LockAttributes::blocking(), false},
      {"queue", SchedulerKind::kQueue, LockAttributes::spin(), false},
      {"threshold", SchedulerKind::kPriorityThreshold,
       LockAttributes::combined(100), false},
      {"adaptive", SchedulerKind::kFcfs, LockAttributes::spin(), true},
  };

  std::printf("==============================================================================\n");
  std::printf("Policy tournament: adaptive governor vs every static configuration\n");
  std::printf("hw_concurrency=%u  window=%llu ms/cell  base team=%u%s\n", hw,
              static_cast<unsigned long long>(window_ns / 1'000'000),
              base_threads, smoke ? "  [smoke]" : "");
  std::printf("==============================================================================\n");
  std::printf("%8s %-16s %-12s %14s %12s %12s %8s\n", "threads", "workload",
              "config", "ops/sec", "p50_wait_us", "p99_wait_us", "oversub");

  std::vector<CellResult> results;
  for (const ConfigSpec& cfg : configs) {
    const CellResult r = run_lock_cell("uniform", base_threads,
                                       /*bursty=*/false, cfg, window_ns);
    print_row(r);
    results.push_back(r);
  }
  for (const ConfigSpec& cfg : configs) {
    const CellResult r = run_lock_cell("bursty", base_threads,
                                       /*bursty=*/true, cfg, window_ns);
    print_row(r);
    results.push_back(r);
  }
  const std::uint32_t over_threads = 2 * hw + 2;
  for (const ConfigSpec& cfg : configs) {
    const CellResult r = run_lock_cell("oversubscribed", over_threads,
                                       /*bursty=*/false, cfg, window_ns);
    print_row(r);
    results.push_back(r);
  }
  for (const ConfigSpec& cfg : configs) {
    const CellResult r =
        run_table_cell(std::max(2u, std::min(hw, 4u)), cfg, window_ns);
    print_row(r);
    results.push_back(r);
  }

  // Tournament verdicts: adaptive against the best and worst static
  // config of each workload. "Within 10% of best everywhere, well clear
  // of worst on several" is the win condition for a governor - it never
  // needed the programmer to guess, and it rescued the bad guesses.
  std::printf("\n%-16s %10s %12s %18s %18s\n", "workload", "adaptive",
              "best-static", "vs best", "vs worst");
  std::map<std::string, std::vector<const CellResult*>> by_workload;
  for (const CellResult& r : results) by_workload[r.workload].push_back(&r);
  for (const auto& [wl, cells] : by_workload) {
    const CellResult* adaptive = nullptr;
    const CellResult* best = nullptr;
    const CellResult* worst = nullptr;
    for (const CellResult* c : cells) {
      if (std::string(c->config) == "adaptive") {
        adaptive = c;
        continue;
      }
      if (best == nullptr || c->ops_per_sec > best->ops_per_sec) best = c;
      if (worst == nullptr || c->ops_per_sec < worst->ops_per_sec) worst = c;
    }
    if (adaptive == nullptr || best == nullptr || worst == nullptr) continue;
    std::printf("%-16s %10.0f %12.0f %10.2fx (%s) %10.2fx (%s)\n", wl.c_str(),
                adaptive->ops_per_sec, best->ops_per_sec,
                best->ops_per_sec > 0
                    ? adaptive->ops_per_sec / best->ops_per_sec
                    : 0.0,
                best->config,
                worst->ops_per_sec > 0
                    ? adaptive->ops_per_sec / worst->ops_per_sec
                    : 0.0,
                worst->config);
  }

  const char* json_name = "BENCH_policy_tournament.json";
  FILE* f = std::fopen(json_name, "w");
  if (f == nullptr) {
    std::perror(json_name);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"policy_tournament\",\n");
  std::fprintf(f, "  \"hw_concurrency\": %u,\n", hw);
  std::fprintf(f, "  \"oversubscribed_sweep\": %s,\n",
               over_threads > hw ? "true" : "false");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"window_ms_per_cell\": %llu,\n",
               static_cast<unsigned long long>(window_ns / 1'000'000));
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    std::fprintf(f,
                 "    {\"threads\": %u, \"scheduler\": \"%s\", \"policy\": "
                 "\"%s\", \"ops_per_sec\": %.1f, \"total_ops\": %llu, "
                 "\"p50_wait_ns\": %llu, \"p99_wait_ns\": %llu, "
                 "\"oversubscribed\": %s}%s\n",
                 r.threads, r.workload, r.config, r.ops_per_sec,
                 static_cast<unsigned long long>(r.total_ops),
                 static_cast<unsigned long long>(r.p50_wait_ns),
                 static_cast<unsigned long long>(r.p99_wait_ns),
                 r.oversubscribed ? "true" : "false",
                 i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s (%zu cells)\n", json_name, results.size());
  return 0;
}
