// Table 6: cost of the dynamic lock configuration operations. Paper values
// (us): possess 30.75/33.92, configure(waiting policy) 9.87/14.45,
// configure(scheduler) 12.51/20.83 (local/remote).
//
// Note: our configure(scheduler) additionally acquires the lock's meta
// guard (one atomior) to swap the scheduler module safely, so it lands one
// RMW above the paper's bare 1R5W cost; see EXPERIMENTS.md.
#include <memory>

#include "bench_util.hpp"
#include "relock/core/configurable_lock.hpp"
#include "relock/sim/machine.hpp"

int main() {
  using namespace relock;
  using namespace relock::bench;
  using sim::Machine;
  using sim::MachineParams;
  using sim::SimPlatform;
  using sim::Thread;

  bench::print_header("Table 6: Cost of Lock Configuration Operations",
                      "Table 6");
  std::printf("%-28s %10s %10s   | %8s %8s\n", "Operation", "local(us)",
              "remote(us)", "paper-l", "paper-r");

  auto with_lock = [](int node, auto body) {
    Machine m(MachineParams::butterfly());
    ConfigurableLock<SimPlatform>::Options o;
    o.scheduler = SchedulerKind::kFcfs;
    o.placement = Placement::on(node);
    ConfigurableLock<SimPlatform> lock(m, o);
    MeanAccumulator acc;
    m.spawn(0, [&](Thread& t) {
      for (int i = 0; i < 100; ++i) body(lock, t, acc);
    });
    m.run();
    return acc.mean_us();
  };

  auto possess_cost = [&](int node) {
    return with_lock(node, [](auto& lock, Thread& t, MeanAccumulator& acc) {
      const Nanos t0 = t.machine().now();
      lock.possess(t, AttributeClass::kWaitingPolicy);
      acc.add(t.machine().now() - t0);
      lock.release_possession(t, AttributeClass::kWaitingPolicy);
    });
  };
  print_row3("possess", possess_cost(0), possess_cost(1), 30.75, 33.92);

  auto waiting_cost = [&](int node) {
    return with_lock(node, [](auto& lock, Thread& t, MeanAccumulator& acc) {
      const Nanos t0 = t.machine().now();
      lock.configure_waiting(t, LockAttributes::blocking());
      acc.add(t.machine().now() - t0);
      lock.configure_waiting(t, LockAttributes::spin());
    });
  };
  print_row3("configure(waiting policy)", waiting_cost(0), waiting_cost(1),
             9.87, 14.45);

  auto scheduler_cost = [&](int node) {
    return with_lock(node, [](auto& lock, Thread& t, MeanAccumulator& acc) {
      const Nanos t0 = t.machine().now();
      lock.configure_scheduler(t, SchedulerKind::kHandoff);
      acc.add(t.machine().now() - t0);
      lock.configure_scheduler(t, SchedulerKind::kFcfs);
    });
  };
  print_row3("configure(scheduler)", scheduler_cost(0), scheduler_cost(1),
             12.51, 20.83);

  return 0;
}
