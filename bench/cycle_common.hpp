// Shared harness for Tables 4 and 5: the cost of a "locking cycle" - an
// unlock followed by a lock on an already locked lock. Thread A holds the
// lock, thread B waits for it under the waiting policy being measured; the
// cycle is the virtual time from A starting its unlock to B completing its
// lock. This is the paper's "idle state" duration of the lock.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "relock/platform/clock.hpp"
#include "relock/sim/machine.hpp"

namespace relock::bench {

using sim::Machine;
using sim::MachineParams;
using sim::SimPlatform;
using sim::Thread;

/// `lock_fn(l, t)` / `unlock_fn(l, t)` drive the lock under test.
template <typename L>
double measure_cycle_us(Machine& m, L& lock, std::uint32_t rounds = 40,
                        Nanos settle = 400'000) {
  struct Handshake {
    std::uint32_t a_round = 0;    ///< A holds the lock for round N
    std::uint32_t b_ready = 0;    ///< B is about to wait for round N
    std::uint32_t b_finished = 0; ///< B completed round N
    Nanos release_start = 0;
  } hs;
  MeanAccumulator acc;

  m.spawn(0, [&](Thread& t) {  // A: the holder/releaser
    for (std::uint32_t r = 1; r <= rounds; ++r) {
      lock.lock(t);
      hs.a_round = r;
      while (hs.b_ready != r) m.compute(t, 2000);
      m.compute(t, settle);  // let B descend fully into its waiting mode
      hs.release_start = m.now();
      lock.unlock(t);
      while (hs.b_finished != r) m.compute(t, 2000);
    }
  });
  m.spawn(1, [&](Thread& t) {  // B: the waiter
    for (std::uint32_t r = 1; r <= rounds; ++r) {
      while (hs.a_round != r) m.compute(t, 2000);
      hs.b_ready = r;
      lock.lock(t);
      acc.add(m.now() - hs.release_start);
      lock.unlock(t);
      hs.b_finished = r;
    }
  });
  m.run();
  return acc.mean_us();
}

/// Result of a cycle-granularity uncontended sweep: per-operation
/// acquire+release cost distribution, measured batch-wise.
struct UncontendedCycles {
  std::uint64_t total_ops = 0;
  Nanos elapsed_ns = 0;
  std::uint64_t p50_cycle_ns = 0;  ///< median per-op acquire+release cost
  std::uint64_t p99_cycle_ns = 0;
};

/// The uncontended counterpart of measure_cycle_us for real platforms: one
/// thread runs acquire+release pairs in batches with the clock read once
/// per batch, so the per-op figure is the lock's own cycle cost, not the
/// timer's. The contended suite samples the clock around every acquire and
/// is therefore blind below ~2x the vDSO clock cost; this harness is the
/// cycle-granularity view the fast-path work is judged against.
template <typename Ctx, typename L, typename Cs>
UncontendedCycles measure_uncontended_cycles(Ctx& ctx, L& lock,
                                             Nanos window_ns,
                                             Cs&& critical_section) {
  constexpr std::uint64_t kBatch = 4096;
  constexpr std::size_t kMaxBatchSamples = 1 << 14;
  UncontendedCycles out;
  std::vector<std::uint64_t> batch_ns;
  batch_ns.reserve(kMaxBatchSamples);
  const Nanos start = monotonic_now();
  Nanos now = start;
  while (now - start < window_ns) {
    const Nanos b0 = now;
    for (std::uint64_t i = 0; i < kBatch; ++i) {
      lock.lock(ctx);
      critical_section();
      lock.unlock(ctx);
    }
    now = monotonic_now();
    out.total_ops += kBatch;
    if (batch_ns.size() < kMaxBatchSamples) {
      batch_ns.push_back(static_cast<std::uint64_t>(now - b0) / kBatch);
    }
  }
  out.elapsed_ns = now - start;
  std::sort(batch_ns.begin(), batch_ns.end());
  if (!batch_ns.empty()) {
    const std::size_t last = batch_ns.size() - 1;
    out.p50_cycle_ns = batch_ns[std::min(last, batch_ns.size() * 50 / 100)];
    out.p99_cycle_ns = batch_ns[std::min(last, batch_ns.size() * 99 / 100)];
  }
  return out;
}

}  // namespace relock::bench
