// Shared harness for Tables 4 and 5: the cost of a "locking cycle" - an
// unlock followed by a lock on an already locked lock. Thread A holds the
// lock, thread B waits for it under the waiting policy being measured; the
// cycle is the virtual time from A starting its unlock to B completing its
// lock. This is the paper's "idle state" duration of the lock.
#pragma once

#include <memory>

#include "bench_util.hpp"
#include "relock/sim/machine.hpp"

namespace relock::bench {

using sim::Machine;
using sim::MachineParams;
using sim::SimPlatform;
using sim::Thread;

/// `lock_fn(l, t)` / `unlock_fn(l, t)` drive the lock under test.
template <typename L>
double measure_cycle_us(Machine& m, L& lock, std::uint32_t rounds = 40,
                        Nanos settle = 400'000) {
  struct Handshake {
    std::uint32_t a_round = 0;    ///< A holds the lock for round N
    std::uint32_t b_ready = 0;    ///< B is about to wait for round N
    std::uint32_t b_finished = 0; ///< B completed round N
    Nanos release_start = 0;
  } hs;
  MeanAccumulator acc;

  m.spawn(0, [&](Thread& t) {  // A: the holder/releaser
    for (std::uint32_t r = 1; r <= rounds; ++r) {
      lock.lock(t);
      hs.a_round = r;
      while (hs.b_ready != r) m.compute(t, 2000);
      m.compute(t, settle);  // let B descend fully into its waiting mode
      hs.release_start = m.now();
      lock.unlock(t);
      while (hs.b_finished != r) m.compute(t, 2000);
    }
  });
  m.spawn(1, [&](Thread& t) {  // B: the waiter
    for (std::uint32_t r = 1; r <= rounds; ++r) {
      while (hs.a_round != r) m.compute(t, 2000);
      hs.b_ready = r;
      lock.lock(t);
      acc.add(m.now() - hs.release_start);
      lock.unlock(t);
      hs.b_finished = r;
    }
  });
  m.run();
  return acc.mean_us();
}

}  // namespace relock::bench
