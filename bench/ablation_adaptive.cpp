// Ablation: self-adaptive locks ([MS93] / the paper's future work). A
// workload alternates phases of short and long critical sections; we
// compare static spin, static blocking, and a lock whose waiting policy is
// reconfigured by the monitor-driven hysteresis policy.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "relock/adapt/adaptor.hpp"
#include "relock/core/configurable_lock.hpp"
#include "relock/sim/machine.hpp"
#include "relock/workload/samplers.hpp"

int main() {
  using namespace relock;
  using namespace relock::bench;
  using sim::Machine;
  using sim::MachineParams;
  using sim::ProcId;
  using sim::SimPlatform;
  using sim::Thread;

  bench::print_header(
      "Ablation: adaptive waiting policy on a phase-changing workload",
      "section 6 / [MS93]");

  constexpr std::uint32_t kLockers = 8;
  constexpr std::uint32_t kPhases = 6;
  constexpr std::uint32_t kItersPerPhase = 10;
  constexpr Nanos kShortCs = 20'000;
  constexpr Nanos kLongCs = 1'500'000;
  constexpr Nanos kUsefulPerProc = 300'000'000;

  auto run = [&](LockAttributes attrs, bool adaptive) {
    MachineParams params = MachineParams::butterfly();
    params.quantum = 2'000'000;
    Machine m(params);
    ConfigurableLock<SimPlatform>::Options o;
    o.scheduler = SchedulerKind::kFcfs;
    o.attributes = attrs;
    o.placement = Placement::on(0);
    o.monitor_enabled = true;
    ConfigurableLock<SimPlatform> lock(m, o);

    adapt::SpinBlockHysteresisPolicy::Params pp;
    pp.block_above_ns = 400'000.0;
    pp.spin_below_ns = 100'000.0;
    pp.min_samples = 4;
    adapt::Adaptor<SimPlatform> adaptor(
        lock, std::make_unique<adapt::SpinBlockHysteresisPolicy>(pp));

    std::uint32_t lockers_done = 0;
    for (std::uint32_t i = 0; i < kLockers; ++i) {
      m.spawn(static_cast<ProcId>(i), [&, i](Thread& t) {
        Xoshiro256 rng(11 + i);
        for (std::uint32_t phase = 0; phase < kPhases; ++phase) {
          const Nanos cs = phase % 2 == 0 ? kShortCs : kLongCs;
          for (std::uint32_t j = 0; j < kItersPerPhase; ++j) {
            m.compute(t, rng.next_below(1'000'000));
            lock.lock(t);
            m.compute(t, cs);
            lock.unlock(t);
          }
        }
        ++lockers_done;
      });
      m.spawn(static_cast<ProcId>(i), [&](Thread& t) {
        for (Nanos r = kUsefulPerProc; r > 0; r -= 250'000) {
          m.compute(t, 250'000);
        }
      });
    }
    if (adaptive) {
      // The external monitoring agent on its own processor.
      m.spawn(static_cast<ProcId>(kLockers), [&](Thread& t) {
        while (lockers_done < kLockers) {
          m.compute(t, 4'000'000);
          adaptor.step(t);
        }
      });
    }
    m.run();
    std::printf("  reconfigurations applied: %llu\n",
                static_cast<unsigned long long>(adaptor.actions_applied()));
    return m.now();
  };

  std::printf("static spin:\n");
  const Nanos spin = run(LockAttributes::spin(), false);
  std::printf("  elapsed %.2f ms\n", static_cast<double>(spin) / 1e6);

  std::printf("static blocking:\n");
  const Nanos block = run(LockAttributes::blocking(), false);
  std::printf("  elapsed %.2f ms\n", static_cast<double>(block) / 1e6);

  std::printf("adaptive (starts as spin):\n");
  const Nanos adaptive = run(LockAttributes::spin(), true);
  std::printf("  elapsed %.2f ms\n", static_cast<double>(adaptive) / 1e6);

  std::printf("\nexpected: adaptive tracks the better static policy in each "
              "phase,\napproaching the better static policy without advance knowledge of phases\n");
  return 0;
}
