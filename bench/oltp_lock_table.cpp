// OLTP lock-table suite: transaction-shaped workloads (2PL acquire/release
// sets) over relock::LockTable - the "millions of locks, few hot" regime
// the single-lock benches cannot reach. Each cell runs `threads` workers
// executing fixed-shape transactions against one striped table:
//
//   workload (JSON "scheduler" column)   key-choice + read/write shape
//     uniform      uniformly random keys, all writes
//     zipf_0.9     Zipfian theta=0.9 hotspot (scrambled), all writes
//     zipf_0.99    YCSB-grade theta=0.99 hotspot, all writes
//     rw_mix       theta=0.9 hotspot, 80% reads (reader-writer table)
//   policy (JSON "policy" column)        deadlock handling
//     ordered      sorted acquisition, unbounded waits (no aborts)
//     nowait       try-lock everywhere, abort + retry on any failure
//     waitdie      timestamp wait-die, victims retry with their old stamp
//
// Transactions are 90% short (4 ops) / 10% long (16 ops). ops_per_sec
// counts COMMITTED transactions; p50/p99 are commit latencies (including
// a victim's abort-retry loop). Every committed write increments its
// key's plain (non-atomic) counter while write-locked - the sum must
// equal the committed write count or mutual exclusion is broken and the
// run aborts, mirroring native_throughput's lost-update check.
//
// Knobs: RELOCK_OLTP_MS (window per cell, default 200),
//        RELOCK_OLTP_MAX_THREADS (sweep ceiling, default 8).
// Modes: --smoke  reduced matrix (1/2/4 threads, uniform+zipf_0.9,
//                 100 ms windows) for CI, diffed against
//                 bench/baselines/oltp_lock_table_smoke.json.
#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "relock/platform/clock.hpp"
#include "relock/platform/native.hpp"
#include "relock/platform/rng.hpp"
#include "relock/table/lock_table.hpp"
#include "relock/table/twopl.hpp"
#include "relock/workload/zipf.hpp"

namespace {

using namespace relock;
using NP = native::NativePlatform;
using Table = table::LockTable<NP>;
using Txn = table::TxnLockSet<NP>;
using table::AccessMode;
using table::DeadlockPolicy;

constexpr std::uint64_t kKeySpace = 8192;
constexpr std::uint32_t kTableCapacity = 1u << 14;
constexpr std::uint32_t kPartitions = 16;
constexpr std::size_t kShortOps = 4;
constexpr std::size_t kLongOps = 16;

struct WorkloadSpec {
  const char* name;
  double theta;        ///< <= 0: uniform
  double read_ratio;   ///< > 0 needs a reader-writer table
};

struct PolicySpec {
  const char* name;
  DeadlockPolicy policy;
};

struct CellResult {
  std::uint32_t threads = 0;
  const char* scheduler = nullptr;  ///< workload name (baseline cell key)
  const char* policy = nullptr;
  double ops_per_sec = 0.0;         ///< committed txns/sec
  std::uint64_t total_ops = 0;      ///< committed txns
  std::uint64_t p50_wait_ns = 0;    ///< commit latency percentiles
  std::uint64_t p99_wait_ns = 0;
  std::uint64_t aborts = 0;
  bool oversubscribed = false;
};

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* e = std::getenv(name);
  if (e == nullptr) return fallback;
  const long long v = std::strtoll(e, nullptr, 10);
  return v > 0 ? static_cast<std::uint64_t>(v) : fallback;
}

std::uint64_t percentile(std::vector<std::uint64_t>& sorted, unsigned pct) {
  if (sorted.empty()) return 0;
  const std::size_t idx =
      std::min(sorted.size() - 1, sorted.size() * pct / 100);
  return sorted[idx];
}

/// One transaction's access set: sampled keys with duplicate keys merged
/// (a write subsumes a read - the 2PL driver's upgrade rule demands the
/// strongest mode up front) and, under kOrdered, sorted ascending.
struct OpSet {
  std::array<table::TxnOp, kLongOps> ops;
  std::size_t count = 0;

  void add(std::uint64_t key, AccessMode mode) {
    for (std::size_t i = 0; i < count; ++i) {
      if (ops[i].key == key) {
        if (mode == AccessMode::kWrite) ops[i].mode = AccessMode::kWrite;
        return;
      }
    }
    ops[count++] = {key, mode};
  }
};

CellResult run_cell(std::uint32_t threads, const WorkloadSpec& wl,
                    const PolicySpec& po, Nanos window_ns) {
  constexpr std::size_t kMaxSamplesPerThread = 1 << 15;

  native::Domain domain;
  Table::Options topts;
  topts.capacity = kTableCapacity;
  topts.partitions = kPartitions;
  topts.lock_options.scheduler = wl.read_ratio > 0.0
                                     ? SchedulerKind::kReaderWriter
                                     : SchedulerKind::kFcfs;
  topts.lock_options.attributes = LockAttributes::combined(100);
  Table tbl(domain, topts);
  table::WaitDieStamps stamps(kKeySpace);
  const workload::ZipfianSampler zipf(kKeySpace,
                                      wl.theta > 0.0 ? wl.theta : 0.0);

  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<std::uint32_t> ready{0};
  std::atomic<std::uint64_t> next_ts{1};
  // Per-key datum, touched only under that key's write lock: the sum of
  // all cells must equal the committed write-op count at the end.
  std::vector<std::uint64_t> datum(kKeySpace, 0);

  std::vector<std::uint64_t> committed(threads, 0);
  std::vector<std::uint64_t> aborted(threads, 0);
  std::vector<std::uint64_t> writes_done(threads, 0);
  std::vector<std::vector<std::uint64_t>> samples(threads);
  for (auto& s : samples) s.reserve(kMaxSamplesPerThread);

  std::vector<std::thread> team;
  team.reserve(threads);
  for (std::uint32_t i = 0; i < threads; ++i) {
    team.emplace_back([&, i] {
      native::Context ctx(domain);
      Xoshiro256 rng(0x0017a8feull * (i + 1) + 0x9e37ull);
      Txn txn(tbl, {.policy = po.policy,
                    .wait_timeout = 500'000,  // 500 us slices
                    .stamps = po.policy == DeadlockPolicy::kWaitDie
                                  ? &stamps
                                  : nullptr});
      std::uint64_t my_commits = 0, my_aborts = 0, my_writes = 0;
      auto& my_samples = samples[i];
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      while (!stop.load(std::memory_order_relaxed)) {
        // Shape the transaction: 90% short, 10% long; per-op read/write.
        OpSet set;
        const std::size_t want =
            rng.next_below(10) == 0 ? kLongOps : kShortOps;
        for (std::size_t k = 0; k < want; ++k) {
          const std::uint64_t key = wl.theta > 0.0
                                        ? zipf.sample_scrambled(rng)
                                        : rng.next_below(kKeySpace);
          const AccessMode mode =
              rng.next_double() < wl.read_ratio ? AccessMode::kRead
                                                : AccessMode::kWrite;
          set.add(key, mode);
        }
        if (po.policy == DeadlockPolicy::kOrdered) {
          std::sort(set.ops.begin(), set.ops.begin() +
                        static_cast<std::ptrdiff_t>(set.count),
                    [](const table::TxnOp& a, const table::TxnOp& b) {
                      return a.key < b.key;
                    });
        }
        const std::uint64_t ts =
            next_ts.fetch_add(1, std::memory_order_relaxed);
        const Nanos t0 = monotonic_now();
        for (;;) {  // abort-retry loop, same timestamp throughout
          txn.begin(ts);
          bool ok = true;
          for (std::size_t k = 0; ok && k < set.count; ++k) {
            ok = txn.acquire(ctx, set.ops[k].key, set.ops[k].mode);
          }
          if (!ok) {
            ++my_aborts;
            txn.release_all(ctx);
            if (stop.load(std::memory_order_relaxed)) break;
            std::this_thread::yield();
            continue;
          }
          for (std::size_t k = 0; k < set.count; ++k) {
            if (set.ops[k].mode == AccessMode::kWrite) {
              ++datum[set.ops[k].key];  // the protected update
              ++my_writes;
            }
          }
          txn.release_all(ctx);
          ++my_commits;
          if (my_samples.size() < kMaxSamplesPerThread) {
            my_samples.push_back(monotonic_now() - t0);
          }
          break;
        }
      }
      committed[i] = my_commits;
      aborted[i] = my_aborts;
      writes_done[i] = my_writes;
    });
  }

  while (ready.load(std::memory_order_acquire) != threads) {
    std::this_thread::yield();
  }
  const bool oversubscribed = domain.oversubscribed();
  const Nanos start = monotonic_now();
  go.store(true, std::memory_order_release);
  while (monotonic_now() - start < window_ns) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : team) t.join();
  const Nanos elapsed = monotonic_now() - start;

  CellResult r;
  r.threads = threads;
  r.scheduler = wl.name;
  r.policy = po.name;
  r.oversubscribed = oversubscribed;
  std::uint64_t writes = 0;
  std::vector<std::uint64_t> all;
  for (std::uint32_t i = 0; i < threads; ++i) {
    r.total_ops += committed[i];
    r.aborts += aborted[i];
    writes += writes_done[i];
    all.insert(all.end(), samples[i].begin(), samples[i].end());
  }
  std::sort(all.begin(), all.end());
  r.p50_wait_ns = percentile(all, 50);
  r.p99_wait_ns = percentile(all, 99);
  r.ops_per_sec = elapsed == 0 ? 0.0
                               : static_cast<double>(r.total_ops) * 1e9 /
                                     static_cast<double>(elapsed);
  std::uint64_t datum_sum = 0;
  for (const std::uint64_t d : datum) datum_sum += d;
  if (datum_sum != writes) {
    std::fprintf(stderr,
                 "FATAL: lost updates (%llu write ops vs %llu increments) "
                 "in %u/%s/%s\n",
                 static_cast<unsigned long long>(writes),
                 static_cast<unsigned long long>(datum_sum), threads,
                 wl.name, po.name);
    std::exit(1);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  const std::uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  const std::uint32_t max_threads = static_cast<std::uint32_t>(
      env_u64("RELOCK_OLTP_MAX_THREADS", smoke ? 4u : 8u));
  const Nanos window_ns =
      env_u64("RELOCK_OLTP_MS", smoke ? 100 : 200) * 1'000'000;

  const std::vector<WorkloadSpec> workloads =
      smoke ? std::vector<WorkloadSpec>{{"uniform", 0.0, 0.0},
                                        {"zipf_0.9", 0.9, 0.0}}
            : std::vector<WorkloadSpec>{{"uniform", 0.0, 0.0},
                                        {"zipf_0.7", 0.7, 0.0},
                                        {"zipf_0.9", 0.9, 0.0},
                                        {"zipf_0.99", 0.99, 0.0},
                                        {"rw_mix", 0.9, 0.8}};
  const std::vector<PolicySpec> policies =
      smoke ? std::vector<PolicySpec>{{"ordered", DeadlockPolicy::kOrdered},
                                      {"nowait", DeadlockPolicy::kNoWait},
                                      {"waitdie", DeadlockPolicy::kWaitDie}}
            : std::vector<PolicySpec>{{"ordered", DeadlockPolicy::kOrdered},
                                      {"nowait", DeadlockPolicy::kNoWait},
                                      {"waitdie", DeadlockPolicy::kWaitDie},
                                      {"timeout", DeadlockPolicy::kTimeout}};

  std::vector<std::uint32_t> sweep;
  for (std::uint32_t n = 1; n < max_threads; n *= 2) sweep.push_back(n);
  sweep.push_back(max_threads);

  std::printf("==============================================================================\n");
  std::printf("OLTP lock table: 2PL transactions over a striped %u-slot table\n",
              kTableCapacity);
  std::printf("hw_concurrency=%u  window=%llu ms/cell  key space %llu  "
              "sweep up to %u threads%s\n",
              hw, static_cast<unsigned long long>(window_ns / 1'000'000),
              static_cast<unsigned long long>(kKeySpace), max_threads,
              smoke ? "  [smoke]" : "");
  std::printf("==============================================================================\n");
  std::printf("%8s %-12s %-10s %14s %12s %12s %10s %8s\n", "threads",
              "workload", "policy", "txns/sec", "p50_us", "p99_us", "aborts",
              "oversub");

  std::vector<CellResult> results;
  for (const std::uint32_t n : sweep) {
    for (const WorkloadSpec& wl : workloads) {
      for (const PolicySpec& po : policies) {
        const CellResult r = run_cell(n, wl, po, window_ns);
        std::printf("%8u %-12s %-10s %14.0f %12.1f %12.1f %10llu %8s\n",
                    r.threads, r.scheduler, r.policy, r.ops_per_sec,
                    static_cast<double>(r.p50_wait_ns) / 1000.0,
                    static_cast<double>(r.p99_wait_ns) / 1000.0,
                    static_cast<unsigned long long>(r.aborts),
                    r.oversubscribed ? "yes" : "no");
        std::fflush(stdout);
        results.push_back(r);
      }
    }
  }

  const char* json_name = "BENCH_oltp_lock_table.json";
  FILE* f = std::fopen(json_name, "w");
  if (f == nullptr) {
    std::perror(json_name);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"oltp_lock_table\",\n");
  std::fprintf(f, "  \"hw_concurrency\": %u,\n", hw);
  std::fprintf(f, "  \"oversubscribed_sweep\": %s,\n",
               max_threads > hw ? "true" : "false");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"window_ms_per_cell\": %llu,\n",
               static_cast<unsigned long long>(window_ns / 1'000'000));
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    std::fprintf(f,
                 "    {\"threads\": %u, \"scheduler\": \"%s\", \"policy\": "
                 "\"%s\", \"ops_per_sec\": %.1f, \"total_ops\": %llu, "
                 "\"p50_wait_ns\": %llu, \"p99_wait_ns\": %llu, "
                 "\"aborts\": %llu, \"oversubscribed\": %s}%s\n",
                 r.threads, r.scheduler, r.policy, r.ops_per_sec,
                 static_cast<unsigned long long>(r.total_ops),
                 static_cast<unsigned long long>(r.p50_wait_ns),
                 static_cast<unsigned long long>(r.p99_wait_ns),
                 static_cast<unsigned long long>(r.aborts),
                 r.oversubscribed ? "true" : "false",
                 i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s (%zu cells)\n", json_name, results.size());
  return 0;
}
