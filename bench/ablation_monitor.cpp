// Ablation: overhead of the monitor module, measured natively (the monitor
// is host-side bookkeeping, so its cost is real CPU work, not simulated
// time). Two cells:
//   uncontended - single thread, lock+unlock round trips, monitor on vs off;
//   contended   - a team hammering one fcfs lock, monitor on vs off. The
//                 monitor's hot counters are sharded per thread exactly so
//                 this cell stays within a few percent: a shared counter
//                 line bouncing between the releaser and its successor
//                 would re-serialize the direct-handoff transfer edge.
// The contended cells take the median of several interleaved trials: on an
// oversubscribed host a single window can land in a different scheduling
// regime, and a lone trial would measure that, not the monitor.
//
// The contended budget cell holds the lock for a few hundred ns of work,
// the shortest critical section a real workload protects. The empty-CS
// variant is also printed as the theoretical worst case: there a lock+unlock
// round trip is ~50 ns, so every nanosecond of bookkeeping shows up as two
// percent, a standard no observable workload imposes.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "relock/core/configurable_lock.hpp"
#include "relock/platform/clock.hpp"
#include "relock/platform/native.hpp"

namespace {

using namespace relock;
using NP = native::NativePlatform;

/// Total ops a `threads`-strong team completes in `window_ns` on one
/// fcfs/spin lock with the monitor toggled, holding the lock for `cs_ns`
/// of busy work per operation.
double contended_ops_per_sec(std::uint32_t threads, bool monitor_on,
                             Nanos window_ns, Nanos cs_ns) {
  native::Domain domain;
  ConfigurableLock<NP>::Options o;
  o.scheduler = SchedulerKind::kFcfs;
  o.monitor_enabled = monitor_on;
  ConfigurableLock<NP> lock(domain, o);

  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<std::uint32_t> ready{0};
  std::vector<std::uint64_t> ops(threads, 0);

  std::vector<std::thread> team;
  team.reserve(threads);
  for (std::uint32_t i = 0; i < threads; ++i) {
    team.emplace_back([&, i] {
      native::Context ctx(domain);
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        lock.lock(ctx);
        if (cs_ns != 0) NP::compute(ctx, cs_ns);
        lock.unlock(ctx);
        ++n;
      }
      ops[i] = n;
    });
  }
  while (ready.load(std::memory_order_acquire) != threads) {
    std::this_thread::yield();
  }
  const Nanos start = monotonic_now();
  go.store(true, std::memory_order_release);
  while (monotonic_now() - start < window_ns) std::this_thread::yield();
  stop.store(true, std::memory_order_release);
  for (auto& t : team) t.join();
  const Nanos elapsed = monotonic_now() - start;

  std::uint64_t total = 0;
  for (const std::uint64_t n : ops) total += n;
  return static_cast<double>(total) * 1e9 / static_cast<double>(elapsed);
}

double median(std::vector<double>& v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main() {
  std::printf("Ablation: monitor-module overhead (native)\n");

  // ------------------------------------------------------ uncontended ----
  {
    native::Domain domain;
    native::Context ctx(domain);
    auto measure = [&](bool monitor_on) {
      ConfigurableLock<NP>::Options o;
      o.scheduler = SchedulerKind::kFcfs;
      o.monitor_enabled = monitor_on;
      ConfigurableLock<NP> lock(domain, o);
      constexpr int kWarmup = 10'000;
      constexpr int kIters = 2'000'000;
      for (int i = 0; i < kWarmup; ++i) {
        lock.lock(ctx);
        lock.unlock(ctx);
      }
      Stopwatch sw;
      for (int i = 0; i < kIters; ++i) {
        lock.lock(ctx);
        lock.unlock(ctx);
      }
      return static_cast<double>(sw.elapsed()) / kIters;
    };
    const double off = measure(false);
    const double on = measure(true);
    std::printf("uncontended: off %7.1f ns/op  on %7.1f ns/op  "
                "overhead %+.1f%%\n",
                off, on, 100.0 * (on - off) / off);
  }

  // -------------------------------------------------------- contended ----
  constexpr std::uint32_t kThreads = 4;
  constexpr Nanos kWindow = 200'000'000;  // 200 ms per trial
  constexpr int kTrials = 5;
  auto contended_overhead = [&](Nanos cs_ns, double* off_out,
                                double* on_out) {
    std::vector<double> off_runs, on_runs;
    (void)contended_ops_per_sec(kThreads, false, kWindow, cs_ns);  // warm
    for (int t = 0; t < kTrials; ++t) {  // interleaved against drift
      off_runs.push_back(
          contended_ops_per_sec(kThreads, false, kWindow, cs_ns));
      on_runs.push_back(
          contended_ops_per_sec(kThreads, true, kWindow, cs_ns));
    }
    *off_out = median(off_runs);
    *on_out = median(on_runs);
    return 100.0 * (*off_out - *on_out) / *off_out;
  };

  double off = 0.0, on = 0.0;
  const double worst_pct = contended_overhead(0, &off, &on);
  std::printf("contended worst case (%u threads, fcfs/spin, empty CS, "
              "median of %d): off %.0f ops/s  on %.0f ops/s  "
              "overhead %+.1f%%\n",
              kThreads, kTrials, off, on, worst_pct);

  constexpr Nanos kCsNs = 250;  // shortest realistically protected section
  const double pct = contended_overhead(kCsNs, &off, &on);
  std::printf("contended (%u threads, fcfs/spin, %llu ns CS, median of %d): "
              "off %.0f ops/s  on %.0f ops/s  overhead %+.1f%%\n",
              kThreads, static_cast<unsigned long long>(kCsNs), kTrials,
              off, on, pct);
  std::printf("=> monitor_enabled on the contended path: %s (budget 5%%)\n",
              pct < 5.0 ? "PASS" : "FAIL");
  return 0;
}
