// Ablation: overhead of the monitor module, measured natively (the monitor
// is host-side bookkeeping, so its cost is real CPU work, not simulated
// time). Compares uncontended lock+unlock throughput with the monitor
// enabled vs. disabled.
#include <cstdio>

#include "relock/core/configurable_lock.hpp"
#include "relock/platform/clock.hpp"
#include "relock/platform/native.hpp"

int main() {
  using namespace relock;
  using NP = native::NativePlatform;

  std::printf("Ablation: monitor-module overhead (native, uncontended)\n");

  native::Domain domain;
  native::Context ctx(domain);

  auto measure = [&](bool monitor_on) {
    ConfigurableLock<NP>::Options o;
    o.scheduler = SchedulerKind::kFcfs;
    o.monitor_enabled = monitor_on;
    ConfigurableLock<NP> lock(domain, o);
    constexpr int kWarmup = 10'000;
    constexpr int kIters = 2'000'000;
    for (int i = 0; i < kWarmup; ++i) {
      lock.lock(ctx);
      lock.unlock(ctx);
    }
    Stopwatch sw;
    for (int i = 0; i < kIters; ++i) {
      lock.lock(ctx);
      lock.unlock(ctx);
    }
    return static_cast<double>(sw.elapsed()) / kIters;
  };

  const double off = measure(false);
  const double on = measure(true);
  std::printf("monitor off: %7.1f ns per lock+unlock\n", off);
  std::printf("monitor on:  %7.1f ns per lock+unlock\n", on);
  std::printf("=> overhead: %7.1f ns (%.1f%%)\n", on - off,
              100.0 * (on - off) / off);
  return 0;
}
