#!/usr/bin/env python3
"""Diff a native_throughput JSON against a committed baseline.

Usage:
    diff_baseline.py CURRENT.json BASELINE.json [--tolerance 0.25]

Compares ops/sec cell by cell (matched on threads/scheduler/policy; cells
present in only one file are reported and skipped). A cell regresses when

    current_ops < baseline_ops * tolerance

The default tolerance is deliberately generous (0.25: flag only a 4x drop):
contended cells on a shared CI box measure scheduler rotation as much as
the lock, and run-to-run variance of 2-3x is normal there. The job exists
to catch order-of-magnitude collapses (a convoy, a lost-wakeup spin storm),
not single-digit percentages. Cells whose `oversubscribed` tags differ
between the two files are skipped: the regimes are not comparable.

Exit status: 0 = no regression, 1 = at least one regression, 2 = usage.
"""

import argparse
import json
import sys


def cell_key(cell):
    return (cell["threads"], cell["scheduler"], cell["policy"])


def load_cells(path):
    with open(path) as f:
        doc = json.load(f)
    return {cell_key(c): c for c in doc["results"]}, doc


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="fail when current < baseline * TOLERANCE")
    args = ap.parse_args()

    current, cur_doc = load_cells(args.current)
    baseline, base_doc = load_cells(args.baseline)

    if cur_doc.get("hw_concurrency") != base_doc.get("hw_concurrency"):
        print(f"note: hw_concurrency differs "
              f"(current={cur_doc.get('hw_concurrency')} "
              f"baseline={base_doc.get('hw_concurrency')}); "
              f"comparison is indicative only")

    regressions = []
    compared = 0
    for key in sorted(baseline.keys() & current.keys()):
        cur, base = current[key], baseline[key]
        if ("oversubscribed" in cur and "oversubscribed" in base
                and cur["oversubscribed"] != base["oversubscribed"]):
            print(f"skip {key}: oversubscription regime differs")
            continue
        compared += 1
        ratio = (cur["ops_per_sec"] / base["ops_per_sec"]
                 if base["ops_per_sec"] > 0 else float("inf"))
        status = "OK"
        if cur["ops_per_sec"] < base["ops_per_sec"] * args.tolerance:
            status = "REGRESSION"
            regressions.append(key)
        threads, sched, policy = key
        print(f"{status:>10}  {threads:>3} {sched:<16} {policy:<14} "
              f"{base['ops_per_sec']:>14.0f} -> {cur['ops_per_sec']:>14.0f} "
              f"({ratio:5.2f}x)")

    for key in sorted(baseline.keys() - current.keys()):
        print(f"      MISS  {key} present only in baseline")
    for key in sorted(current.keys() - baseline.keys()):
        print(f"       NEW  {key} present only in current")

    print(f"\n{compared} cells compared, {len(regressions)} regression(s), "
          f"tolerance {args.tolerance}")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
