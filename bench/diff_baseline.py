#!/usr/bin/env python3
"""Diff bench JSONs against committed baselines.

Usage:
    diff_baseline.py CURRENT.json BASELINE.json [--tolerance 0.25]
                     [--warn-drop 0.05] [--fail-drop 0.15]
                     [--min-improve 0.05]
    diff_baseline.py --manifest bench/baselines/manifest.json

Compares ops/sec cell by cell (matched on threads/scheduler/policy; cells
present in only one file are reported and skipped). Improvements are
reported symmetrically with drops: a cell whose ops/sec rose more than
--min-improve (default 5%) above baseline prints IMPROVED, and the summary
counts them - a perf PR's win should be as visible in CI as a regression.

Two gates are available and compose:

  --tolerance T   hard floor: a cell regresses when
                      current_ops < baseline_ops * T
                  The default (0.25: flag only a 4x drop) is deliberately
                  generous: contended cells on a shared CI box measure
                  scheduler rotation as much as the lock, and run-to-run
                  variance of 2-3x is normal there. This gate exists to
                  catch order-of-magnitude collapses (a convoy, a
                  lost-wakeup spin storm), not single-digit percentages.

  --warn-drop W / --fail-drop F
                  soft gate on the fractional drop 1 - current/baseline:
                  a drop above W prints a WARN (exit stays 0), a drop
                  above F is a REGRESSION (exit 1). Off by default; meant
                  for quiet dedicated runners where a 5-15% drift is
                  signal, not noise.

Cells whose `oversubscribed` tags differ between the two files are skipped:
the regimes are not comparable.

Manifest mode runs every comparison the repo gates in one invocation, so
CI carries ONE diff step instead of one hand-edited step per bench. The
manifest is a JSON list of entries:

    {"entries": [
      {"name": "native_throughput",
       "current": "BENCH_native_throughput.json",
       "baseline": "bench/baselines/native_throughput_post_queue.json",
       "tolerance": 0.25, "warn_drop": 0.05, "fail_drop": 0.15}, ...]}

Per-entry gate fields are optional and default to the CLI defaults
(warn_drop/fail_drop default to off). Paths are resolved relative to the
manifest's own directory when not found relative to the working directory,
so `python3 bench/diff_baseline.py --manifest bench/baselines/manifest.json`
works from the repo root. The exit code aggregates: 1 if ANY entry
regressed. A malformed entry or a baseline file that does not exist is a
counted WARNING (the entry is skipped, the rest still run), and a cell
present in the baseline but absent from the current run is a counted
WARNING too - neither can silently pass. A missing *current* file stays a
load error (exit 2): it means the bench never ran.

Exit status: 0 = no regression (warnings allowed), 1 = at least one
regression, 2 = usage/load error.
"""

import argparse
import json
import os
import sys


def cell_key(cell):
    return (cell["threads"], cell["scheduler"], cell["policy"])


def load_cells(path):
    with open(path) as f:
        doc = json.load(f)
    return {cell_key(c): c for c in doc["results"]}, doc


def diff(current_path, baseline_path, tolerance, warn_drop, fail_drop,
         min_improve):
    """One comparison; returns (regressed cell count, warning count)."""
    current, cur_doc = load_cells(current_path)
    baseline, base_doc = load_cells(baseline_path)

    regressions = []
    warnings = 0
    # Hosts with different core counts produce different contention regimes
    # (a 2-thread cell that spins locally on an 8-core box parks and rotates
    # on a 1-core box): a drop across such a diff says nothing about the
    # code. Counted as a warning so CI summaries surface it, but never a
    # regression - cross-host diffs stay indicative, not gating.
    if cur_doc.get("hw_concurrency") != base_doc.get("hw_concurrency"):
        print(f"WARNING: hw_concurrency differs "
              f"(current={cur_doc.get('hw_concurrency')} "
              f"baseline={base_doc.get('hw_concurrency')}); "
              f"comparison is indicative only")
        warnings += 1
    if cur_doc.get("oversubscribed_sweep") != base_doc.get(
            "oversubscribed_sweep"):
        print(f"WARNING: sweep oversubscription regime differs "
              f"(current={cur_doc.get('oversubscribed_sweep')} "
              f"baseline={base_doc.get('oversubscribed_sweep')})")
        warnings += 1
    improvements = 0
    compared = 0
    best_improvement = None  # (ratio, key)
    for key in sorted(baseline.keys() & current.keys()):
        cur, base = current[key], baseline[key]
        if ("oversubscribed" in cur and "oversubscribed" in base
                and cur["oversubscribed"] != base["oversubscribed"]):
            print(f"skip {key}: oversubscription regime differs")
            continue
        compared += 1
        ratio = (cur["ops_per_sec"] / base["ops_per_sec"]
                 if base["ops_per_sec"] > 0 else float("inf"))
        drop = 1.0 - ratio
        status = "OK"
        if -drop > min_improve:
            status = "IMPROVED"
            improvements += 1
            if best_improvement is None or ratio > best_improvement[0]:
                best_improvement = (ratio, key)
        if warn_drop is not None and drop > warn_drop:
            status = "WARN"
            warnings += 1
        if fail_drop is not None and drop > fail_drop:
            status = "REGRESSION"
            regressions.append(key)
        if cur["ops_per_sec"] < base["ops_per_sec"] * tolerance:
            if status != "REGRESSION":
                regressions.append(key)
            status = "REGRESSION"
        threads, sched, policy = key
        print(f"{status:>10}  {threads:>3} {sched:<16} {policy:<14} "
              f"{base['ops_per_sec']:>14.0f} -> {cur['ops_per_sec']:>14.0f} "
              f"({ratio:5.2f}x)")

    # A cell the baseline gates but the current run never produced is a
    # coverage hole (a sweep that silently shrank, a bench that bailed out
    # early): counted as a warning, never silently passed over.
    for key in sorted(baseline.keys() - current.keys()):
        print(f"WARNING: MISS {key} present only in baseline "
              f"(current run produced no such cell)")
        warnings += 1
    for key in sorted(current.keys() - baseline.keys()):
        print(f"       NEW  {key} present only in current")

    print(f"\n{compared} cells compared, {improvements} improved, "
          f"{warnings} warning(s), "
          f"{len(regressions)} regression(s), tolerance {tolerance}"
          + (f", warn-drop {warn_drop}" if warn_drop is not None else "")
          + (f", fail-drop {fail_drop}" if fail_drop is not None else ""))
    if best_improvement is not None:
        ratio, (threads, sched, policy) = best_improvement
        print(f"best improvement: {threads} {sched} {policy} "
              f"at {ratio:.2f}x baseline")
    return len(regressions), warnings


def resolve(path, manifest_dir):
    """A manifest path is tried against the CWD first (bench outputs land
    there), then against the manifest's own directory (baselines live next
    to it)."""
    if os.path.exists(path):
        return path
    candidate = os.path.join(manifest_dir, path)
    return candidate if os.path.exists(candidate) else path


def run_manifest(manifest_path, args):
    try:
        with open(manifest_path) as f:
            manifest = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"cannot load manifest {manifest_path}: {e}")
        return 2
    manifest_dir = os.path.dirname(os.path.abspath(manifest_path))
    total_regressions = 0
    total_warnings = 0
    failed_entries = []
    for entry in manifest.get("entries", []):
        name = entry.get("name", entry.get("current", "?"))
        print(f"\n=== {name} ===")
        # A malformed entry or a missing *baseline* file is a manifest bug,
        # not a perf result: count a warning and keep diffing the other
        # entries instead of dying with a KeyError / FileNotFoundError.
        if "current" not in entry or "baseline" not in entry:
            print(f"WARNING: manifest entry '{name}' is malformed "
                  f"(missing 'current' or 'baseline' field); skipped")
            total_warnings += 1
            continue
        current = resolve(entry["current"], manifest_dir)
        baseline = resolve(entry["baseline"], manifest_dir)
        if not os.path.exists(current):
            print(f"cannot load current {current}: missing "
                  f"(was the bench run before the diff step?)")
            return 2
        if not os.path.exists(baseline):
            print(f"WARNING: baseline {entry['baseline']} not found "
                  f"(looked at {baseline}); entry '{name}' skipped")
            total_warnings += 1
            continue
        n, w = diff(current, baseline,
                    entry.get("tolerance", args.tolerance),
                    entry.get("warn_drop", args.warn_drop),
                    entry.get("fail_drop", args.fail_drop),
                    entry.get("min_improve", args.min_improve))
        total_regressions += n
        total_warnings += w
        if n:
            failed_entries.append(name)
    print(f"\n=== manifest summary: {total_regressions} regression(s), "
          f"{total_warnings} warning(s)"
          + (f" in {', '.join(failed_entries)}" if failed_entries else "")
          + " ===")
    return 1 if total_regressions else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", nargs="?")
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("--manifest",
                    help="run every comparison listed in this manifest "
                         "instead of a single current/baseline pair")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="fail when current < baseline * TOLERANCE")
    ap.add_argument("--warn-drop", type=float, default=None,
                    help="warn when current drops more than this fraction "
                         "below baseline (e.g. 0.05 = warn past a 5%% drop)")
    ap.add_argument("--fail-drop", type=float, default=None,
                    help="fail when current drops more than this fraction "
                         "below baseline (e.g. 0.15 = fail past a 15%% drop)")
    ap.add_argument("--min-improve", type=float, default=0.05,
                    help="report IMPROVED when current rises more than this "
                         "fraction above baseline (default 0.05)")
    args = ap.parse_args()

    if args.manifest:
        return run_manifest(args.manifest, args)
    if args.current is None or args.baseline is None:
        print("usage: diff_baseline.py CURRENT BASELINE | --manifest FILE")
        return 2
    regressions, _ = diff(args.current, args.baseline, args.tolerance,
                          args.warn_drop, args.fail_drop, args.min_improve)
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
