// Ablation: the configuration delay (paper section 4.2: "The configuration
// action does not take effect immediately... The effect of such delay on
// reconfiguration operations is part of our future work").
//
// We measure it: with N threads pre-registered on the old (FCFS) scheduler,
// how long after configure_scheduler() does the new scheduler actually take
// effect? The delay is the time to drain the pre-registered queue, so it
// grows with queue depth and with critical-section length.
#include <cstdio>

#include "bench_util.hpp"
#include "relock/core/configurable_lock.hpp"
#include "relock/sim/machine.hpp"

int main() {
  using namespace relock;
  using namespace relock::bench;
  using sim::Machine;
  using sim::MachineParams;
  using sim::ProcId;
  using sim::SimPlatform;
  using sim::Thread;

  bench::print_header("Ablation: configuration delay vs. queue depth",
                      "section 4.2 (future work)");
  std::printf("%-14s %-14s %18s\n", "queued", "cs-length(us)",
              "config delay (us)");

  for (const std::uint32_t waiters : {1u, 2u, 4u, 8u, 16u}) {
    for (const Nanos cs : {50'000u, 200'000u}) {
      Machine m(MachineParams::butterfly());
      ConfigurableLock<SimPlatform>::Options o;
      o.scheduler = SchedulerKind::kFcfs;
      o.placement = Placement::on(0);
      ConfigurableLock<SimPlatform> lock(m, o);

      Nanos configured_at = 0;
      Nanos installed_at = 0;

      // Holder: waits for everyone to queue, reconfigures, releases.
      m.spawn(0, [&](Thread& t) {
        lock.lock(t);
        while (lock.waiter_count() < waiters) m.compute(t, 2000);
        lock.configure_scheduler(t, SchedulerKind::kPriorityQueue);
        configured_at = m.now();
        lock.unlock(t);
      });
      for (std::uint32_t i = 0; i < waiters; ++i) {
        m.spawn(static_cast<ProcId>(1 + i), [&, i](Thread& t) {
          m.compute(t, 1000 * (i + 1));
          lock.lock(t);
          m.compute(t, cs);
          lock.unlock(t);
          if (!lock.reconfiguration_pending() && installed_at == 0) {
            installed_at = m.now();
          }
        });
      }
      m.run();
      std::printf("%-14u %-14.0f %18.1f\n", waiters, to_us(cs),
                  to_us(installed_at - configured_at));
    }
  }
  std::printf("\nThe delay is the drain time of the pre-registered queue:\n"
              "it scales with queue depth x critical-section length.\n");
  return 0;
}
