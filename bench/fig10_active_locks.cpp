// Figure 10: passive vs. active locks. An active lock has a permanent
// manager thread (bound at creation, on its own processor) that executes
// the release module, freeing the releasing processor to run application
// code sooner. Paper's finding: active locks are slightly cheaper, at the
// price of an extra processor.
#include "figures_common.hpp"
#include "relock/core/configurable_lock.hpp"

int main() {
  using namespace relock;
  using namespace relock::bench;
  using sim::Machine;
  using sim::MachineParams;
  using sim::SimPlatform;
  using sim::Thread;

  bench::print_header("Figure 10: passive vs. active locks", "Figure 10");

  constexpr std::uint32_t kWorkers = 8;

  auto run_with = [&](Execution exec, Nanos cs) {
    MachineParams params = MachineParams::butterfly();
    params.processors = kWorkers + 1;  // +1: the active manager's processor
    Machine m(params);
    ConfigurableLock<SimPlatform>::Options o;
    o.scheduler = SchedulerKind::kFcfs;
    o.attributes = LockAttributes::blocking();
    o.placement = Placement::on(static_cast<int>(kWorkers));  // manager node
    o.execution = exec;
    o.active_poll_interval = 5'000;
    ConfigurableLock<SimPlatform> lock(m, o);

    std::vector<ThreadId> workers;
    if (exec == Execution::kActive) {
      m.spawn(kWorkers, [&lock](Thread& t) { lock.serve(t); });
    }
    CsWorkloadConfig cfg;
    cfg.locking_threads = kWorkers;
    cfg.iterations = 15 * scale();
    cfg.arrival = ArrivalProcess::smooth(Sampler::uniform(0, 1'000'000));
    cfg.cs_length = Sampler::constant(cs);

    // Inline the workload so we can stop the manager afterwards. Each
    // worker processor also runs a useful thread: the active lock's win is
    // precisely that the releasing processor gets back the release-module
    // cycles for such application work.
    const Nanos start = m.now();
    std::uint32_t done = 0;
    const std::uint32_t parties = cfg.locking_threads * 2;
    for (std::uint32_t i = 0; i < cfg.locking_threads; ++i) {
      m.spawn(static_cast<sim::ProcId>(i), [&m, &lock, &cfg, &done, i,
                                            parties, exec](Thread& t) {
        Xoshiro256 rng(cfg.seed + i);
        auto arrival = cfg.arrival;
        for (std::uint32_t j = 0; j < cfg.iterations; ++j) {
          m.compute(t, arrival.next(rng));
          lock.lock(t);
          m.compute(t, cfg.cs_length.sample(rng));
          lock.unlock(t);
        }
        if (++done == parties && exec == Execution::kActive) {
          lock.stop_serving(t);
        }
      });
      m.spawn(static_cast<sim::ProcId>(i), [&m, &lock, &done, parties,
                                            exec](Thread& t) {
        for (Nanos remaining = 30'000'000; remaining > 0;
             remaining -= 250'000) {
          m.compute(t, 250'000);
        }
        if (++done == parties && exec == Execution::kActive) {
          lock.stop_serving(t);
        }
      });
    }
    m.run();
    return m.now() - start;
  };

  std::vector<Series> series;
  series.push_back({"passive", [&](Nanos cs) {
    return run_with(Execution::kPassive, cs);
  }});
  series.push_back({"active", [&](Nanos cs) {
    return run_with(Execution::kActive, cs);
  }});

  print_figure(default_cs_sweep(), series);
  std::printf("\nexpected shape: active slightly below passive (release "
              "module offloaded to the manager processor)\n");
  return 0;
}
