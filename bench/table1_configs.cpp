// Table 1: lock parameters -> resulting lock. Prints the attribute mapping
// implemented by relock::classify (also property-tested in
// tests/core_attributes_test.cpp).
#include <cstdio>

#include "bench_util.hpp"
#include "relock/core/attributes.hpp"

int main() {
  using namespace relock;
  bench::print_header("Table 1: Lock Parameters", "Table 1");
  std::printf("%-12s %-12s %-12s %-10s %s\n", "spin-time", "delay-time",
              "sleep-time", "timeout", "resulting lock");

  struct Row {
    LockAttributes a;
    const char* spin;
    const char* delay;
    const char* sleep;
    const char* timeout;
  };
  const Row rows[] = {
      {LockAttributes::spin(), "n", "0", "0", "0"},
      {LockAttributes::backoff_spin(), "n", "n", "0", "0"},
      {LockAttributes::blocking(), "0", "0", "n", "0"},
      {LockAttributes::conditional(1'000'000), "x", "x", "x", "n"},
      {LockAttributes::combined(10, kForever), "n", "n", "n", "x"},
  };
  for (const Row& r : rows) {
    std::printf("%-12s %-12s %-12s %-10s %s\n", r.spin, r.delay, r.sleep,
                r.timeout, to_string(classify(r.a)));
  }
  return 0;
}
