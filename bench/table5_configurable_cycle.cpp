// Table 5: cost of the Unlock+Lock cycle on an already locked
// *configurable* lock, configured as spin and as blocking. Paper values
// (us): spin 90.21/101.38, blocking 565.16/625.63 (local/remote).
//
// The same lock object is used for both rows: it is dynamically
// reconfigured from a spin to a blocking waiting policy between the
// measurements (a 1R1W configure operation).
#include "cycle_common.hpp"
#include "relock/core/configurable_lock.hpp"

int main() {
  using namespace relock;
  using namespace relock::bench;

  bench::print_header(
      "Table 5: Unlock+Lock cycle on a locked configurable lock", "Table 5");
  std::printf("%-28s %10s %10s   | %8s %8s\n", "Configured as", "local(us)",
              "remote(us)", "paper-l", "paper-r");

  auto run = [](int node, LockAttributes attrs) {
    Machine m(MachineParams::butterfly());
    ConfigurableLock<SimPlatform>::Options o;
    o.scheduler = SchedulerKind::kNone;  // centralized, like the primitives
    o.attributes = LockAttributes::spin();
    o.placement = Placement::on(node);
    ConfigurableLock<SimPlatform> lock(m, o);
    // Dynamic reconfiguration to the measured waiting policy.
    m.spawn(0, [&](sim::Thread& t) { lock.configure_waiting(t, attrs); });
    m.run();
    return measure_cycle_us(m, lock);
  };

  print_row3("Spin", run(0, LockAttributes::spin()),
             run(5, LockAttributes::spin()), 90.21, 101.38);
  print_row3("Blocking", run(0, LockAttributes::blocking()),
             run(5, LockAttributes::blocking()), 565.16, 625.63);

  return 0;
}
