// Figure 7: CS length vs. application execution time comparing spin,
// blocking, and *combined* configurations of the configurable lock (spin a
// few probes, then block), with useful threads present. Paper's finding:
// spin wins for small critical sections; combined locks win for larger
// ones, with spin-10-then-block ahead of spin-1-then-block.
#include "figures_common.hpp"
#include "relock/core/configurable_lock.hpp"

int main() {
  using namespace relock;
  using namespace relock::bench;
  using sim::Machine;
  using sim::MachineParams;
  using sim::SimPlatform;

  bench::print_header(
      "Figure 7: spin vs. blocking vs. combined configurable locks",
      "Figure 7");

  auto config_for = [](Nanos cs) {
    CsWorkloadConfig cfg;
    cfg.locking_threads = 8;
    cfg.iterations = 8 * scale();
    cfg.arrival = ArrivalProcess::smooth(Sampler::uniform(0, 4'000'000));
    cfg.cs_length = Sampler::constant(cs);
    cfg.useful_threads_per_proc = 1;
    cfg.useful_work_total = 100'000'000;
    cfg.useful_work_chunk = 250'000;
    return cfg;
  };

  auto run_with = [&](LockAttributes attrs, Nanos cs) {
    Machine m(MachineParams::butterfly());
    ConfigurableLock<SimPlatform>::Options o;
    o.scheduler = SchedulerKind::kFcfs;  // queued handoff (single wakeup)
    o.attributes = attrs;
    o.placement = Placement::on(0);
    ConfigurableLock<SimPlatform> lock(m, o);
    return workload::run_cs_workload(m, lock, config_for(cs)).elapsed;
  };

  std::vector<Series> series;
  series.push_back({"spin", [&](Nanos cs) {
    return run_with(LockAttributes::spin(), cs);
  }});
  series.push_back({"blocking", [&](Nanos cs) {
    return run_with(LockAttributes::blocking(), cs);
  }});
  // Combined locks probe every 25us ("spin N times before blocking" on a
  // machine whose probe loop costs tens of microseconds).
  series.push_back({"combined(1)", [&](Nanos cs) {
    return run_with(LockAttributes{1, 25'000, kForever, 0}, cs);
  }});
  series.push_back({"combined(10)", [&](Nanos cs) {
    return run_with(LockAttributes{10, 25'000, kForever, 0}, cs);
  }});

  print_figure(default_cs_sweep(), series);
  std::printf("\nexpected shape: spin best at small CS; combined locks best "
              "at large CS, combined(10) ahead of combined(1)\n");
  return 0;
}
