// Figure 3: CS length vs. execution time when each processor also runs a
// "useful" thread capable of making progress. Spinning steals the useful
// threads' cycles, so blocking wins beyond a cross-over point that
// corresponds to the blocking overhead of the machine.
#include "figures_common.hpp"
#include "relock/locks/blocking_lock.hpp"
#include "relock/locks/spin_locks.hpp"

int main() {
  using namespace relock;
  using namespace relock::bench;
  using sim::Machine;
  using sim::MachineParams;
  using sim::SimPlatform;

  bench::print_header(
      "Figure 3: CS length vs. application time with useful threads",
      "Figure 3");

  auto config_for = [](Nanos cs) {
    CsWorkloadConfig cfg;
    cfg.locking_threads = 8;  // 8 processors locking...
    cfg.iterations = 8 * scale();
    cfg.arrival = ArrivalProcess::smooth(Sampler::uniform(0, 4'000'000));
    cfg.cs_length = Sampler::constant(cs);
    cfg.useful_threads_per_proc = 1;  // ...each shared with a useful thread
    cfg.useful_work_total = 100'000'000;  // 100ms of real work per processor
    cfg.useful_work_chunk = 250'000;
    return cfg;
  };

  std::vector<Series> series;
  series.push_back({"spin", [&](Nanos cs) {
    Machine m(MachineParams::butterfly());
    TtasLock<SimPlatform> lock(m, Placement::on(0));
    return workload::run_cs_workload(m, lock, config_for(cs)).elapsed;
  }});
  series.push_back({"blocking", [&](Nanos cs) {
    Machine m(MachineParams::butterfly());
    BlockingLock<SimPlatform> lock(m, Placement::on(0));
    return workload::run_cs_workload(m, lock, config_for(cs)).elapsed;
  }});

  std::vector<std::vector<double>> table;
  print_figure(default_cs_sweep(), series, &table);

  // Locate the cross-over.
  const auto& sweep = default_cs_sweep();
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    if (table[1][i] < table[0][i]) {
      std::printf("\ncross-over: blocking overtakes spin at cs-length ~%.0fus"
                  " (paper: at the additional overhead of blocking)\n",
                  to_us(sweep[i]));
      return 0;
    }
  }
  std::printf("\nno cross-over within the sweep (expected one; see "
              "EXPERIMENTS.md)\n");
  return 0;
}
