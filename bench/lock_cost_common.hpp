// Shared measurement harness for Tables 2 and 3: uncontended lock/unlock
// operation latency for every lock implementation, with the lock word in
// local vs. remote memory.
#pragma once

#include <functional>
#include <memory>

#include "bench_util.hpp"
#include "relock/core/configurable_lock.hpp"
#include "relock/locks/blocking_lock.hpp"
#include "relock/locks/spin_locks.hpp"
#include "relock/sim/machine.hpp"

namespace relock::bench {

using sim::Machine;
using sim::MachineParams;
using sim::SimPlatform;
using sim::Thread;

inline ConfigurableLock<SimPlatform>::Options configurable_options(
    Placement where) {
  ConfigurableLock<SimPlatform>::Options o;
  o.scheduler = SchedulerKind::kFcfs;
  // "a lock operation for configurable locks initially spins for the lock
  // before deciding to block the requesting thread".
  o.attributes = LockAttributes::combined(10, kForever);
  o.placement = where;
  return o;
}

/// Measures the mean cost of `op(lock, thread)` over `iters` uncontended
/// iterations, running on processor 0 with the lock on `node`.
template <typename MakeLock, typename Op, typename Cleanup>
double measure_op_us(int node, MakeLock make_lock, Op op, Cleanup cleanup,
                     std::uint32_t iters = 200) {
  Machine m(MachineParams::butterfly());
  auto lock = make_lock(m, Placement::on(node));
  MeanAccumulator acc;
  m.spawn(0, [&](Thread& t) {
    for (std::uint32_t i = 0; i < iters; ++i) {
      const Nanos t0 = m.now();
      op(*lock, t);
      acc.add(m.now() - t0);
      cleanup(*lock, t);
    }
  });
  m.run();
  return acc.mean_us();
}

/// Raw atomior: the hardware primitive all the locks build on.
inline double measure_atomior_us(int node) {
  Machine m(MachineParams::butterfly());
  sim::SimWord w(m, 0, Placement::on(node));
  MeanAccumulator acc;
  m.spawn(0, [&](Thread& t) {
    for (int i = 0; i < 200; ++i) {
      const Nanos t0 = m.now();
      SimPlatform::fetch_or(t, w, 1);
      acc.add(m.now() - t0);
      SimPlatform::store(t, w, 0);
    }
  });
  m.run();
  return acc.mean_us();
}

}  // namespace relock::bench
