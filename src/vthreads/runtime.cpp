#include "relock/vthreads/runtime.hpp"

#include <cassert>
#include <thread>
#include <utility>

#include "relock/platform/clock.hpp"

namespace relock::vthreads {

Runtime::Runtime(unsigned vprocs) {
  assert(vprocs > 0);
  workers_.reserve(vprocs);
  for (unsigned i = 0; i < vprocs; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Runtime::~Runtime() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    assert(live_ == 0 && "destroying Runtime with live vthreads");
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

ThreadId Runtime::spawn(std::function<void(VThread&)> body,
                        Priority priority) {
  auto owned = std::make_unique<VThread>();
  VThread* t = owned.get();
  t->runtime_ = this;
  t->priority_ = priority;
  t->coro_ = std::make_unique<sim::Coroutine>([this, t,
                                               fn = std::move(body)] {
    try {
      fn(*t);
    } catch (...) {
      // Unwinding across the coroutine boundary would terminate; capture
      // the error and surface it from wait_all().
      std::lock_guard<std::mutex> lk(mu_);
      if (!pending_error_) pending_error_ = std::current_exception();
    }
  });
  {
    std::lock_guard<std::mutex> lk(mu_);
    t->id_ = static_cast<ThreadId>(threads_.size());
    threads_.push_back(std::move(owned));
    ++live_;
    make_runnable_locked(*t);
  }
  work_cv_.notify_one();
  return t->id_;
}

void Runtime::wait_all() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [&] { return live_ == 0; });
  if (pending_error_) {
    std::exception_ptr err = std::exchange(pending_error_, nullptr);
    lk.unlock();
    std::rethrow_exception(err);
  }
}

std::size_t Runtime::live_threads() const {
  std::lock_guard<std::mutex> lk(mu_);
  return live_;
}

void Runtime::yield(VThread& t) {
  t.pending_ = VThread::Pending::kYield;
  t.coro_->suspend();
}

void Runtime::park(VThread& t) {
  t.pending_ = VThread::Pending::kPark;
  t.coro_->suspend();
}

bool Runtime::park_for(VThread& t, Nanos ns) {
  t.pending_ = VThread::Pending::kParkTimed;
  t.pending_deadline_ = monotonic_now() + ns;
  t.coro_->suspend();
  return t.woke_by_unpark_;
}

void Runtime::join(VThread& t, ThreadId target) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    VThread& other = *threads_.at(target);
    if (other.state_ == VThread::State::kFinished) return;
    other.joiners_.push_back(t.self());
  }
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (threads_[target]->state_ == VThread::State::kFinished) return;
    }
    park(t);
  }
}

void Runtime::unpark(ThreadId tid) {
  bool notify = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    VThread& t = *threads_.at(tid);
    if (t.state_ == VThread::State::kFinished) return;
    if (t.state_ == VThread::State::kParked) {
      ++t.park_gen_;  // cancel any pending timer
      t.woke_by_unpark_ = true;
      make_runnable_locked(t);
      notify = true;
    } else {
      t.token_ = true;  // consumed by the next park
    }
  }
  if (notify) work_cv_.notify_one();
}

void Runtime::make_runnable_locked(VThread& t) {
  t.state_ = VThread::State::kRunnable;
  runnable_.push_back(&t);
}

void Runtime::expire_timers_locked(Nanos now) {
  while (!timers_.empty() && timers_.top().deadline <= now) {
    const Timer timer = timers_.top();
    timers_.pop();
    VThread& t = *threads_[timer.tid];
    if (t.state_ == VThread::State::kParked && t.park_gen_ == timer.gen) {
      t.woke_by_unpark_ = false;
      make_runnable_locked(t);
    }
  }
}

void Runtime::handle_suspension_locked(VThread& t) {
  if (t.coro_->finished()) {
    t.state_ = VThread::State::kFinished;
    ++t.park_gen_;
    for (const ThreadId joiner : t.joiners_) {
      VThread& j = *threads_[joiner];
      if (j.state_ == VThread::State::kParked) {
        ++j.park_gen_;
        j.woke_by_unpark_ = true;
        make_runnable_locked(j);
      } else {
        j.token_ = true;
      }
    }
    t.joiners_.clear();
    --live_;
    if (live_ == 0) idle_cv_.notify_all();
    return;
  }
  switch (t.pending_) {
    case VThread::Pending::kYield:
      make_runnable_locked(t);
      break;
    case VThread::Pending::kPark:
    case VThread::Pending::kParkTimed: {
      if (t.token_) {  // wakeup arrived before we finished descheduling
        t.token_ = false;
        t.woke_by_unpark_ = true;
        make_runnable_locked(t);
        break;
      }
      t.state_ = VThread::State::kParked;
      if (t.pending_ == VThread::Pending::kParkTimed) {
        timers_.push(Timer{t.pending_deadline_, t.id_, ++t.park_gen_});
      }
      break;
    }
    case VThread::Pending::kNone:
      assert(false && "vthread suspended without a pending operation");
      break;
  }
  t.pending_ = VThread::Pending::kNone;
}

void Runtime::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    expire_timers_locked(monotonic_now());
    if (stop_) return;
    if (runnable_.empty()) {
      if (timers_.empty()) {
        work_cv_.wait(lk);
      } else {
        const Nanos deadline = timers_.top().deadline;
        work_cv_.wait_for(
            lk, std::chrono::nanoseconds(
                    deadline > monotonic_now() ? deadline - monotonic_now()
                                               : 1));
      }
      continue;
    }
    VThread* t = runnable_.front();
    runnable_.pop_front();
    t->state_ = VThread::State::kRunning;
    lk.unlock();
    t->coro_->resume();
    lk.lock();
    handle_suspension_locked(*t);
  }
}

}  // namespace relock::vthreads
