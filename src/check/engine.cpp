// relock-check engine: the controlled scheduler, oracle state machine and
// trace (de)serialization. Strategy implementations live in
// include/relock/check/strategies.hpp; the modeled parker and platform word
// semantics live in include/relock/check/platform.hpp (header-only so the
// seeded-bug macros compile per test target, not per library build).
#include "relock/check/engine.hpp"

#include <cassert>
#include <sstream>
#include <stdexcept>

namespace relock::chk {

thread_local Engine* Engine::current_ = nullptr;

namespace {

/// Stack size for model-thread coroutines: scenario bodies run the full
/// lock slow path plus gtest assertion machinery.
constexpr std::size_t kModelStackSize = 256 * 1024;

const char* event_name(ChkEvent e) { return lock_event_name(e); }

}  // namespace

Engine::Engine() : domain_(*this) {}
Engine::~Engine() = default;

// ---------------------------------------------------------------- frame ----

void ScenarioFrame::add_thread(Priority priority,
                               std::function<void(Context&)> body) {
  engine_->bodies_.push_back(std::move(body));
  engine_->body_priorities_.push_back(priority);
}

void ScenarioFrame::on_finish(std::function<void()> check) {
  engine_->finish_ = std::move(check);
}

// ------------------------------------------------------------- explore ----

ExploreResult Engine::explore(const Scenario& scenario, Strategy& strategy) {
  ExploreResult res;
  for (;;) {
    const ScheduleOutcome o = run_schedule(scenario, strategy);
    ++res.schedules;
    res.steps += o.steps;
    const bool more = strategy.schedule_done(o.failed);
    if (o.failed) {
      res.failed = true;
      res.failure = failure_;
      res.failure_tag = failure_tag_;
      res.trace = format_trace(trace_);
      res.events = events_;
      break;
    }
    if (!more) {
      res.complete = true;
      // Expose the LAST schedule's event log and action trace on a clean
      // completion too: single-schedule strategies (PCT with schedules=1,
      // replay) use this to compare the engine's event stream against an
      // external observer of the same run (relock-trace).
      res.trace = format_trace(trace_);
      res.events = events_;
      break;
    }
  }
  return res;
}

namespace {

/// Follows a recorded action list exactly; flags divergence.
class ReplayStrategy final : public Strategy {
 public:
  explicit ReplayStrategy(std::vector<Action> trace)
      : trace_(std::move(trace)) {}

  std::size_t pick(const Step& step) override {
    if (pos_ >= trace_.size()) {
      diverged_ = true;
      return 0;
    }
    const Action want = trace_[pos_++];
    for (std::size_t i = 0; i < step.enabled.size(); ++i) {
      if (step.enabled[i].kind == want.kind &&
          step.enabled[i].tid == want.tid) {
        return i;
      }
    }
    diverged_ = true;
    return 0;
  }

  bool schedule_done(bool) override { return false; }
  [[nodiscard]] std::string describe() const override { return "replay"; }
  [[nodiscard]] bool diverged() const { return diverged_; }

 private:
  std::vector<Action> trace_;
  std::size_t pos_ = 0;
  bool diverged_ = false;
};

}  // namespace

ExploreResult Engine::replay(const Scenario& scenario,
                             const std::string& trace) {
  ReplayStrategy st(parse_trace(trace));
  ExploreResult res = explore(scenario, st);
  if (st.diverged()) {
    res.failed = true;
    res.complete = false;
    res.failure = "replay diverged from the recorded schedule (the scenario "
                  "is not deterministic): " + res.failure;
  }
  return res;
}

std::string ExploreResult::summary() const {
  std::ostringstream os;
  os << schedules << " schedules, " << steps << " points, "
     << (complete ? "complete" : "incomplete");
  if (failed) {
    os << "\nFAILURE: " << failure << "\n  at point: " << failure_tag
       << "\n  trace: " << trace << "\n  events:";
    for (std::size_t i = 0; i + 2 < events.size(); i += 3) {
      os << "\n    t" << events[i] << " "
         << event_name(static_cast<ChkEvent>(events[i + 1])) << "("
         << static_cast<std::int64_t>(events[i + 2]) << ")";
    }
  }
  return os.str();
}

// ------------------------------------------------------------ schedule ----

void Engine::reset_schedule_state() {
  threads_.clear();
  bodies_.clear();
  body_priorities_.clear();
  finish_ = nullptr;
  running_ = nullptr;
  last_tid_ = kInvalidThread;
  trace_.clear();
  events_.clear();
  clock_ = 1;
  steps_ = 0;
  write_stamp_ = 0;
  oversubscribed_ = false;
  abort_ = false;
  failed_ = false;
  failure_.clear();
  failure_tag_.clear();
  waiting_.clear();
  reg_counter_ = 0;
  generation_ = 0;
  threshold_ = 0;
  threshold_active_ = false;
  cs_depth_ = 0;
  cs_owner_ = kInvalidThread;
  fast_release_depth_ = 0;
  config_mutate_depth_ = 0;
  breaker_mirror_ = 0;
  scratch_owner_ = kInvalidThread;
}

Engine::ScheduleOutcome Engine::run_schedule(const Scenario& scenario,
                                             Strategy& strategy) {
  reset_schedule_state();
  fairness_ = scenario.fairness;
  max_steps_ = scenario.max_steps;
  current_ = this;

  ScenarioFrame frame(*this);
  scenario.build(frame);
  assert(!bodies_.empty() && "scenario registered no threads");
  assert(bodies_.size() <= Domain::kCapacity);

  for (std::size_t i = 0; i < bodies_.size(); ++i) {
    threads_.push_back(std::make_unique<ThreadState>(
        Context(*this, static_cast<ThreadId>(i), body_priorities_[i])));
  }
  for (std::size_t i = 0; i < bodies_.size(); ++i) {
    ThreadState* ts = threads_[i].get();
    std::function<void(Context&)> body = bodies_[i];
    ts->coro = std::make_unique<sim::Coroutine>(
        [ts, body = std::move(body)] {
          try {
            body(ts->ctx);
          } catch (const ScheduleAborted&) {
          }
        },
        kModelStackSize);
  }

  std::vector<Action> enabled;
  for (;;) {
    build_enabled(enabled);
    if (enabled.empty()) {
      bool all_finished = true;
      for (const auto& t : threads_) {
        if (t->status != Status::kFinished) {
          all_finished = false;
          break;
        }
      }
      if (all_finished) break;
      record_failure("deadlock: no enabled thread (" + describe_threads() +
                     ")");
      break;
    }
    bool last_runnable = false;
    if (last_tid_ != kInvalidThread) {
      for (const Action& a : enabled) {
        if (a.tid == last_tid_ && a.kind == ActionKind::kRun) {
          last_runnable = true;
          break;
        }
      }
    }
    const std::size_t idx =
        strategy.pick(Strategy::Step{enabled, last_tid_, last_runnable});
    assert(idx < enabled.size());
    trace_.push_back(enabled[idx]);
    apply(enabled[idx]);
    if (failed_) break;
  }

  if (failed_) {
    unwind_all();
  } else {
    finish_checks();
  }

  // Teardown order matters: coroutine lambdas hold shared-state references;
  // the scenario's shared objects (the lock) die with the last body copy.
  threads_.clear();
  bodies_.clear();
  body_priorities_.clear();
  finish_ = nullptr;
  current_ = nullptr;
  return ScheduleOutcome{failed_, steps_};
}

void Engine::build_enabled(std::vector<Action>& out) {
  out.clear();
  bool any_ungated_runnable = false;
  for (const auto& t : threads_) {
    // A gate opens once anything cross-thread-visible changed after it
    // closed: re-probing sooner would re-read identical state.
    if (t->gated && t->gate_stamp != write_stamp_) t->gated = false;
    if (t->status == Status::kRunnable && !t->gated) {
      any_ungated_runnable = true;
    }
  }
  if (!any_ungated_runnable) {
    // Every runnable thread is gated (all are spinning): ungate the lot -
    // one of them must run for anything to change. A genuine livelock then
    // hits the step budget.
    for (const auto& t : threads_) t->gated = false;
  }
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    const ThreadState& t = *threads_[i];
    const auto tid = static_cast<ThreadId>(i);
    switch (t.status) {
      case Status::kRunnable:
        if (!t.gated) out.push_back(Action{ActionKind::kRun, tid});
        break;
      case Status::kParkedTimed:
        out.push_back(Action{ActionKind::kTimeout, tid});
        break;
      case Status::kParkedUntimed:
      case Status::kFinished:
        break;
    }
  }
}

void Engine::apply(const Action& a) {
  ThreadState& ts = *threads_[a.tid];
  if (a.kind == ActionKind::kTimeout) {
    assert(ts.status == Status::kParkedTimed);
    // Deterministic time: firing a timeout advances the logical clock to
    // the sleeper's deadline so its own now() check sees it expired.
    if (ts.wake_deadline != kForever && ts.wake_deadline > clock_) {
      clock_ = ts.wake_deadline;
    }
    ts.status = Status::kRunnable;
    ts.wake_by_timeout = true;
  }
  resume(ts);
  last_tid_ = a.tid;
}

void Engine::resume(ThreadState& ts) {
  assert(running_ == nullptr);
  running_ = &ts;
  ts.coro->resume();
  running_ = nullptr;
  if (ts.coro->finished()) ts.status = Status::kFinished;
}

void Engine::suspend(ThreadState& ts) {
  ts.coro->suspend();
  if (abort_ && !ts.aborting) {
    ts.aborting = true;
    throw ScheduleAborted{};
  }
}

void Engine::unwind_all() {
  abort_ = true;
  for (const auto& t : threads_) {
    while (!t->coro->finished()) {
      t->status = Status::kRunnable;
      resume(*t);
    }
  }
}

void Engine::record_failure(const std::string& msg) {
  if (failed_) return;
  failed_ = true;
  abort_ = true;
  failure_ = msg;
  failure_tag_ = running_ != nullptr ? running_->last_tag : "";
}

void Engine::finish_checks() {
  if (!waiting_.empty()) {
    std::string who;
    for (const RegInfo& r : waiting_) {
      who += (who.empty() ? "t" : ", t") + std::to_string(r.tid);
    }
    record_failure("waiters still registered after every thread finished "
                   "(lost grant): " + who);
    return;
  }
  if (cs_depth_ != 0) {
    record_failure("critical section still occupied at schedule end");
    return;
  }
  if (finish_) finish_();
}

Engine::ThreadState& Engine::state_of(Context& ctx) {
  return *threads_[ctx.self()];
}

std::string Engine::describe_threads() const {
  std::string s;
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    const ThreadState& t = *threads_[i];
    if (!s.empty()) s += ", ";
    s += "t";
    s += std::to_string(i);
    s += "=";
    switch (t.status) {
      case Status::kRunnable: s += t.gated ? "gated" : "runnable"; break;
      case Status::kParkedUntimed: s += "parked"; break;
      case Status::kParkedTimed: s += "parked-timed"; break;
      case Status::kFinished: s += "finished"; break;
    }
    if (t.status != Status::kFinished) {
      s += std::string("@") + t.last_tag;
    }
  }
  return s;
}

// ---------------------------------------------------- model-thread API ----

void Engine::point(Context& ctx, const char* tag) {
  ThreadState& ts = state_of(ctx);
  if (abort_) {
    if (!ts.aborting) {
      ts.aborting = true;
      throw ScheduleAborted{};
    }
    return;  // unwinding: never re-suspend
  }
  ts.last_tag = tag;
  ++steps_;
  ++clock_;
  if (steps_ > max_steps_) {
    fail_here(ctx, "step budget exceeded (livelock or unbounded spin) at " +
                       std::string(tag));
  }
  suspend(ts);
}

void Engine::pause_point(Context& ctx, const char* tag) {
  ThreadState& ts = state_of(ctx);
  ts.gated = true;
  ts.gate_stamp = write_stamp_;
  point(ctx, tag);
}

void Engine::delay_point(Context& ctx, Nanos ns) {
  clock_ += ns;
  ThreadState& ts = state_of(ctx);
  ts.gated = true;
  ts.gate_stamp = write_stamp_;
  point(ctx, "delay");
}

void Engine::scratch_point(bool begin) {
  // Context-free hook (GrantBatch): only meaningful while a model thread
  // is executing; host-side teardown touches batches too.
  if (running_ == nullptr) return;
  Context& ctx = running_->ctx;
  point(ctx, begin ? "scratch.clear" : "scratch.push");
  if (abort_) return;
  // Shared-scratch oracle: a clear starts a new session owned by the
  // caller; a push by anyone else means two releasers are using the
  // scratch concurrently (the PR 2 grant-before-clear race).
  if (begin) {
    scratch_owner_ = ctx.self();
  } else if (scratch_owner_ != kInvalidThread &&
             scratch_owner_ != ctx.self()) {
    fail_here(ctx, "grant scratch shared: thread " +
                       std::to_string(ctx.self()) +
                       " mutated the scratch during thread " +
                       std::to_string(scratch_owner_) + "'s session");
  }
}

bool Engine::sleep(Context& ctx, Nanos ns) {
  ThreadState& ts = state_of(ctx);
  if (abort_) {
    if (!ts.aborting) {
      ts.aborting = true;
      throw ScheduleAborted{};
    }
    return false;
  }
  if (ns == kForever) {
    ts.status = Status::kParkedUntimed;
    ts.wake_deadline = kForever;
  } else {
    ts.status = Status::kParkedTimed;
    ts.wake_deadline = clock_ + ns;
  }
  ts.wake_by_timeout = false;
  ts.last_tag = "sleep";
  suspend(ts);
  return !ts.wake_by_timeout;
}

void Engine::notify(ThreadId tid) {
  ThreadState& ts = *threads_[tid];
  if (ts.status == Status::kParkedUntimed ||
      ts.status == Status::kParkedTimed) {
    ts.status = Status::kRunnable;
    ts.wake_by_timeout = false;
    ts.gated = false;
  }
}

std::uint64_t& Engine::parker_word(ThreadId tid) {
  return threads_[tid]->parker;
}

void Engine::cs_enter(Context& ctx) {
  if (abort_) return;
  if (cs_depth_ != 0) {
    fail_here(ctx, "mutual exclusion violated: thread " +
                       std::to_string(ctx.self()) +
                       " entered the critical section held by thread " +
                       std::to_string(cs_owner_));
  }
  cs_depth_ = 1;
  cs_owner_ = ctx.self();
}

void Engine::cs_exit(Context& ctx) {
  if (abort_) return;
  if (cs_depth_ == 0 || cs_owner_ != ctx.self()) {
    fail_here(ctx, "cs_exit by thread " + std::to_string(ctx.self()) +
                       " which does not hold the critical section");
  }
  cs_depth_ = 0;
  cs_owner_ = kInvalidThread;
}

void Engine::inject_unpark(Context& ctx, ThreadId target) {
  point(ctx, "inject.unpark");
  note_write();
  std::uint64_t& w = parker_word(target);
  const std::uint64_t prev = w;
  w = kPkToken;
  if (prev == kPkParked) notify(target);
}

void Engine::flip_oversubscribed(Context& ctx) {
  point(ctx, "inject.oversub");
  note_write();
  oversubscribed_ = !oversubscribed_;
}

void Engine::fail_here(Context& ctx, const std::string& msg) {
  record_failure(msg);
  ThreadState& ts = state_of(ctx);
  ts.aborting = true;
  throw ScheduleAborted{};
}

void Engine::fail_host(const std::string& msg) { record_failure(msg); }

// -------------------------------------------------------------- oracle ----

void Engine::on_event(Context& ctx, ChkEvent e, std::uint64_t arg) {
  if (abort_) return;
  // Every event marks a host-side state transition other threads can
  // observe (grant flags, epoch counters, registrations): open spin gates.
  note_write();
  events_.push_back(static_cast<std::uint64_t>(ctx.self()));
  events_.push_back(static_cast<std::uint64_t>(e));
  events_.push_back(arg);

  const auto find_waiting = [&](ThreadId tid) -> std::size_t {
    for (std::size_t i = 0; i < waiting_.size(); ++i) {
      if (waiting_[i].tid == tid) return i;
    }
    return waiting_.size();
  };

  switch (e) {
    case ChkEvent::kRegistered: {
      const auto tid = static_cast<ThreadId>(arg);
      if (find_waiting(tid) != waiting_.size()) {
        fail_here(ctx, "thread " + std::to_string(tid) +
                           " registered while already registered");
      }
      waiting_.push_back(
          RegInfo{tid, reg_counter_++, ctx.priority(), generation_});
      break;
    }
    case ChkEvent::kGranted: {
      const auto tid = static_cast<ThreadId>(arg);
      const std::size_t at = find_waiting(tid);
      if (at == waiting_.size()) {
        fail_here(ctx, "grant to thread " + std::to_string(tid) +
                           " which is not a registered waiter (duplicated or "
                           "stale grant)");
      }
      const RegInfo g = waiting_[at];
      for (const RegInfo& r : waiting_) {
        if (r.generation < g.generation) {
          fail_here(ctx,
                    "configuration delay violated: thread " +
                        std::to_string(tid) + " (generation " +
                        std::to_string(g.generation) +
                        ") granted while thread " + std::to_string(r.tid) +
                        " of generation " + std::to_string(r.generation) +
                        " still waits");
        }
      }
      switch (fairness_) {
        case FairnessMode::kFcfs:
          for (const RegInfo& r : waiting_) {
            if (r.generation == g.generation && r.order < g.order) {
              fail_here(ctx, "FCFS violated: thread " + std::to_string(tid) +
                                 " granted before older waiter t" +
                                 std::to_string(r.tid));
            }
          }
          break;
        case FairnessMode::kPriority:
          for (const RegInfo& r : waiting_) {
            if (r.generation != g.generation) continue;
            if (r.priority > g.priority ||
                (r.priority == g.priority && r.order < g.order)) {
              fail_here(ctx, "priority order violated: thread " +
                                 std::to_string(tid) + " (prio " +
                                 std::to_string(g.priority) +
                                 ") granted over t" + std::to_string(r.tid) +
                                 " (prio " + std::to_string(r.priority) +
                                 ")");
            }
          }
          break;
        case FairnessMode::kThreshold:
          if (threshold_active_ && g.priority < threshold_) {
            fail_here(ctx, "thread " + std::to_string(tid) +
                               " granted below the active priority "
                               "threshold " + std::to_string(threshold_));
          }
          for (const RegInfo& r : waiting_) {
            if (r.generation == g.generation && r.order < g.order &&
                (!threshold_active_ || r.priority >= threshold_)) {
              fail_here(ctx, "threshold-FCFS violated: thread " +
                                 std::to_string(tid) +
                                 " granted before older eligible waiter t" +
                                 std::to_string(r.tid));
            }
          }
          break;
        case FairnessMode::kNone:
          break;
      }
      waiting_.erase(waiting_.begin() +
                     static_cast<std::ptrdiff_t>(at));
      break;
    }
    case ChkEvent::kTimeoutReturn: {
      const auto tid = static_cast<ThreadId>(arg);
      const std::size_t at = find_waiting(tid);
      if (at == waiting_.size()) {
        fail_here(ctx, "timeout return by thread " + std::to_string(tid) +
                           " which is not registered (withdrawal unsound)");
      }
      waiting_.erase(waiting_.begin() +
                     static_cast<std::ptrdiff_t>(at));
      break;
    }
    case ChkEvent::kFastReleaseBegin:
      if (config_mutate_depth_ != 0) {
        fail_here(ctx, "epoch safety violated: fast release passed the gate "
                       "during a configuration mutation");
      }
      ++fast_release_depth_;
      break;
    case ChkEvent::kFastReleaseEnd:
      if (fast_release_depth_ == 0) {
        fail_here(ctx, "unmatched fast-release end");
      }
      --fast_release_depth_;
      break;
    case ChkEvent::kConfigMutateBegin:
      if (fast_release_depth_ != 0) {
        fail_here(ctx, "epoch safety violated: configuration mutation began "
                       "with a fast release in flight");
      }
      ++config_mutate_depth_;
      break;
    case ChkEvent::kConfigMutateEnd:
      if (config_mutate_depth_ == 0) {
        fail_here(ctx, "unmatched configuration-mutation end");
      }
      --config_mutate_depth_;
      break;
    case ChkEvent::kSchedulerInstalled:
      ++generation_;
      break;
    case ChkEvent::kThresholdSet:
      threshold_ = static_cast<Priority>(static_cast<std::int64_t>(arg));
      threshold_active_ = true;
      break;
    case ChkEvent::kReleaseFree:
      break;
    case ChkEvent::kBreakerArm:
      ++breaker_mirror_;
      break;
    case ChkEvent::kBreakerDisarm:
      if (breaker_mirror_ == 0) {
        fail_here(ctx, "breaker count underflow");
      }
      --breaker_mirror_;
      break;
    case ChkEvent::kAcquireFast:
    case ChkEvent::kAcquireSlow:
    case ChkEvent::kAcquireShared:
    case ChkEvent::kRelease:
    case ChkEvent::kPark:
    case ChkEvent::kUnpark:
    case ChkEvent::kPossess:
    case ChkEvent::kUnpossess:
      // Trace-only vocabulary (thread-local progress markers): no oracle
      // state. The lock routes these to the tracer, not chk_event, so they
      // normally never arrive here.
      break;
  }
}

// --------------------------------------------------------------- trace ----

std::string format_trace(const std::vector<Action>& trace) {
  std::string s;
  s.reserve(trace.size() * 3);
  for (const Action& a : trace) {
    if (!s.empty()) s += '.';
    s += a.kind == ActionKind::kRun ? 'r' : 't';
    s += std::to_string(a.tid);
  }
  return s;
}

std::vector<Action> parse_trace(const std::string& s) {
  std::vector<Action> out;
  std::size_t i = 0;
  while (i < s.size()) {
    const char k = s[i++];
    if (k != 'r' && k != 't') {
      throw std::invalid_argument("relock-check: bad trace token");
    }
    std::uint64_t tid = 0;
    bool any = false;
    while (i < s.size() && s[i] != '.') {
      if (s[i] < '0' || s[i] > '9') {
        throw std::invalid_argument("relock-check: bad trace tid");
      }
      tid = tid * 10 + static_cast<std::uint64_t>(s[i] - '0');
      any = true;
      ++i;
    }
    if (!any) throw std::invalid_argument("relock-check: empty trace tid");
    if (i < s.size()) ++i;  // skip '.'
    out.push_back(Action{k == 'r' ? ActionKind::kRun : ActionKind::kTimeout,
                         static_cast<ThreadId>(tid)});
  }
  return out;
}

}  // namespace relock::chk
