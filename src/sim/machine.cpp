#include "relock/sim/machine.hpp"

#include <algorithm>
#include <cassert>
#include <exception>
#include <sstream>
#include <utility>

namespace relock::sim {

Machine::Machine(MachineParams params)
    : params_(params), procs_(params.processors), modules_(params.processors) {
  assert(params_.processors > 0);
}

Machine::~Machine() = default;

// ---------------------------------------------------------------------
// Spawning and the driver loop.
// ---------------------------------------------------------------------

ThreadId Machine::spawn(ProcId proc, std::function<void(Thread&)> body,
                        Priority priority) {
  if (proc == kAnyProc) {
    proc = next_proc_rr_++ % params_.processors;
  }
  assert(proc < params_.processors);

  auto owned = std::make_unique<Thread>();
  Thread* t = owned.get();
  t->machine_ = this;
  t->id_ = static_cast<ThreadId>(threads_.size());
  t->proc_ = proc;
  t->priority_ = priority;
  t->state_ = Thread::State::kEmbryo;
  t->coro_ = std::make_unique<Coroutine>(
      [this, t, fn = std::move(body)]() {
        try {
          fn(*t);
        } catch (...) {
          pending_error_ = std::current_exception();
        }
      });
  threads_.push_back(std::move(owned));
  events_.push(now_, EventKind::kReady, t->id_);
  return t->id_;
}

void Machine::run(Nanos until) {
  assert(!running_ && "Machine::run is not reentrant");
  running_ = true;
  while (!events_.empty()) {
    Event e = events_.pop();
    if (e.time > until) {
      // Out of budget: put the event back and stop; run() may be resumed.
      events_.push(e.time, e.kind, e.subject, e.aux);
      running_ = false;
      return;
    }
    assert(e.time >= now_ && "event queue went backwards");
    now_ = e.time;
    handle_event(e);
    if (pending_error_) {
      running_ = false;
      std::exception_ptr err = std::exchange(pending_error_, nullptr);
      std::rethrow_exception(err);
    }
  }
  running_ = false;

  // Queue drained: everything should have finished, otherwise the simulated
  // program deadlocked (threads blocked with no wakeup in flight).
  std::ostringstream stuck;
  bool deadlock = false;
  for (const auto& t : threads_) {
    if (t->state_ != Thread::State::kFinished) {
      deadlock = true;
      stuck << " thread " << t->id_ << " on proc " << t->proc_ << " state "
            << static_cast<int>(t->state_) << ";";
    }
  }
  if (deadlock) {
    throw SimDeadlockError("simulated deadlock at t=" + std::to_string(now_) +
                           ":" + stuck.str());
  }
}

void Machine::handle_event(const Event& e) {
  if (trace_enabled_ && trace_.size() < trace_cap_) {
    trace_.push_back(TraceRecord{e.time, e.kind, e.subject});
  }
  switch (e.kind) {
    case EventKind::kResume: {
      Thread& t = *threads_[e.subject];
      assert(procs_[t.proc_].current == t.id_);
      switch_to(t);
      break;
    }
    case EventKind::kDispatch:
      procs_[e.subject].dispatch_pending = false;
      dispatch(e.subject);
      break;
    case EventKind::kReady: {
      Thread& t = *threads_[e.subject];
      make_ready(t);
      break;
    }
    case EventKind::kSleepExpire: {
      Thread& t = *threads_[e.subject];
      if (t.state_ == Thread::State::kSleeping && t.sleep_gen_ == e.aux) {
        t.woke_by_unblock_ = false;
        make_ready(t);
      }
      break;
    }
  }
}

void Machine::switch_to(Thread& t) {
  t.coro_->resume();
  if (t.coro_->finished()) {
    finish_thread(t);
  }
}

void Machine::dispatch(ProcId proc) {
  Processor& p = procs_[proc];
  if (p.current != kInvalidThread) return;  // someone already running
  if (p.ready.empty()) return;              // idle until next kReady
  const ThreadId tid = p.ready.front();
  p.ready.pop_front();
  Thread& t = *threads_[tid];
  p.current = tid;
  t.state_ = Thread::State::kRunning;
  t.slice_start_ = now_;
  ++stats_.context_switches;
  switch_to(t);
}

void Machine::make_ready(Thread& t) {
  t.state_ = Thread::State::kReady;
  Processor& p = procs_[t.proc_];
  p.ready.push_back(t.id_);
  if (p.current == kInvalidThread) {
    schedule_dispatch(t.proc_, now_ + params_.context_switch);
  }
}

void Machine::schedule_dispatch(ProcId proc, Nanos at) {
  Processor& p = procs_[proc];
  if (p.dispatch_pending) return;
  p.dispatch_pending = true;
  events_.push(at, EventKind::kDispatch, proc);
}

void Machine::finish_thread(Thread& t) {
  t.state_ = Thread::State::kFinished;
  Processor& p = procs_[t.proc_];
  assert(p.current == t.id_);
  p.current = kInvalidThread;
  for (const ThreadId joiner : t.joiners_) {
    deliver_wake(*threads_[joiner], /*by_unblock=*/true);
  }
  t.joiners_.clear();
  schedule_dispatch(t.proc_, now_ + params_.context_switch);
}

// ---------------------------------------------------------------------
// Time accounting inside a running thread.
// ---------------------------------------------------------------------

void Machine::suspend_until(Thread& t, Nanos when) {
  events_.push(when, EventKind::kResume, t.id_);
  t.coro_->suspend();
}

void Machine::advance(Thread& t, Nanos dt) {
  for (;;) {
    Processor& p = procs_[t.proc_];
    Nanos chunk = dt;
    bool will_preempt = false;
    if (params_.quantum != kForever && !p.ready.empty()) {
      const Nanos used = now_ - t.slice_start_;
      const Nanos left = used >= params_.quantum ? 0 : params_.quantum - used;
      if (left <= dt) {
        chunk = left;
        will_preempt = true;
      }
    }
    if (chunk > 0) suspend_until(t, now_ + chunk);
    dt -= chunk;
    if (will_preempt) preempt(t);
    if (dt == 0) return;
  }
}

void Machine::preempt(Thread& t) {
  ++stats_.preemptions;
  Processor& p = procs_[t.proc_];
  assert(p.current == t.id_);
  p.current = kInvalidThread;
  p.ready.push_back(t.id_);
  t.state_ = Thread::State::kReady;
  schedule_dispatch(t.proc_, now_ + params_.context_switch);
  t.coro_->suspend();
  // Resumed: dispatch() has already made us kRunning with a fresh slice.
}

void Machine::maybe_preempt(Thread& t) {
  Processor& p = procs_[t.proc_];
  if (params_.quantum != kForever && !p.ready.empty() &&
      now_ - t.slice_start_ >= params_.quantum) {
    preempt(t);
  }
}

void Machine::deschedule(Thread& t) {
  Processor& p = procs_[t.proc_];
  assert(p.current == t.id_);
  p.current = kInvalidThread;
  schedule_dispatch(t.proc_, now_ + params_.context_switch);
  t.coro_->suspend();
}

// ---------------------------------------------------------------------
// Memory.
// ---------------------------------------------------------------------

CellId Machine::alloc_cell(std::uint64_t initial, Placement placement) {
  std::uint32_t node;
  if (placement.node >= 0) {
    assert(static_cast<std::uint32_t>(placement.node) < params_.processors);
    node = static_cast<std::uint32_t>(placement.node);
  } else {
    node = next_node_rr_++ % params_.processors;
  }
  CellId id;
  if (!free_cells_.empty()) {
    id = free_cells_.back();
    free_cells_.pop_back();
  } else {
    id = static_cast<CellId>(cells_.size());
    cells_.emplace_back();
  }
  cells_[id] = Cell{initial, node, /*in_use=*/true};
  return id;
}

void Machine::free_cell(CellId cell) noexcept {
  assert(cell < cells_.size() && cells_[cell].in_use);
  cells_[cell].in_use = false;
  free_cells_.push_back(cell);
}

std::uint32_t Machine::cell_node(CellId cell) const {
  return cells_.at(cell).node;
}

std::uint64_t Machine::peek_cell(CellId cell) const {
  return cells_.at(cell).value;
}

void Machine::access(Thread& t, CellId cell, MemOp op) {
  Cell& c = cells_[cell];
  Module& m = modules_[c.node];
  const bool local = c.node == t.proc_;

  Nanos latency = 0;
  Nanos occupancy = 0;
  switch (op) {
    case MemOp::kRead:
      latency = local ? params_.read_local : params_.read_remote;
      occupancy = params_.occupancy_read;
      if (local) ++stats_.reads_local; else ++stats_.reads_remote;
      break;
    case MemOp::kWrite:
      latency = local ? params_.write_local : params_.write_remote;
      occupancy = params_.occupancy_write;
      if (local) ++stats_.writes_local; else ++stats_.writes_remote;
      break;
    case MemOp::kRmw:
      latency = local ? params_.rmw_local : params_.rmw_remote;
      occupancy = params_.occupancy_rmw;
      if (local) ++stats_.rmws_local; else ++stats_.rmws_remote;
      break;
  }

  // The module is a FIFO server: the access begins when the module is free
  // and holds it for `occupancy` (hot-spot contention under load).
  const Nanos start = std::max(now_, m.free_at);
  m.free_at = start + occupancy;
  ++m.accesses;

  const Nanos done = start + latency + params_.op_overhead;
  suspend_until(t, done);
  maybe_preempt(t);
}

std::uint64_t Machine::mem_read(Thread& t, CellId cell) {
  // Value semantics: reads/writes take effect in issue order, which equals
  // module serialization order because the module is FIFO.
  const std::uint64_t v = cells_[cell].value;
  access(t, cell, MemOp::kRead);
  return v;
}

void Machine::mem_write(Thread& t, CellId cell, std::uint64_t value) {
  cells_[cell].value = value;
  access(t, cell, MemOp::kWrite);
}

std::uint64_t Machine::mem_rmw(
    Thread& t, CellId cell,
    const std::function<std::uint64_t(std::uint64_t)>& f) {
  const std::uint64_t old = cells_[cell].value;
  cells_[cell].value = f(old);
  access(t, cell, MemOp::kRmw);
  return old;
}

bool Machine::mem_cas(Thread& t, CellId cell, std::uint64_t expected,
                      std::uint64_t desired) {
  const bool ok = cells_[cell].value == expected;
  if (ok) cells_[cell].value = desired;
  // A failed CAS still performs the locked module transaction.
  access(t, cell, MemOp::kRmw);
  return ok;
}

// ---------------------------------------------------------------------
// Delay / progress primitives.
// ---------------------------------------------------------------------

void Machine::pause(Thread& t) { advance(t, params_.pause_cost); }

void Machine::compute(Thread& t, Nanos ns) {
  if (ns > 0) advance(t, ns);
}

void Machine::delay(Thread& t, Nanos ns) {
  if (ns > 0) advance(t, ns);
}

void Machine::yield(Thread& t) {
  ++stats_.yields;
  Processor& p = procs_[t.proc_];
  if (p.ready.empty()) {
    advance(t, params_.op_overhead);  // nothing to yield to
    return;
  }
  assert(p.current == t.id_);
  p.current = kInvalidThread;
  p.ready.push_back(t.id_);
  t.state_ = Thread::State::kReady;
  schedule_dispatch(t.proc_, now_ + params_.yield_cost);
  t.coro_->suspend();
}

// ---------------------------------------------------------------------
// Blocking.
// ---------------------------------------------------------------------

void Machine::block(Thread& t) {
  if (t.wake_token_) {  // fast path: wake already delivered
    t.wake_token_ = false;
    advance(t, params_.op_overhead);
    return;
  }
  advance(t, params_.block_overhead);
  if (t.wake_token_) {  // wake raced in while we were descheduling
    t.wake_token_ = false;
    return;
  }
  ++stats_.blocks;
  t.state_ = Thread::State::kBlocked;
  deschedule(t);
}

bool Machine::block_for(Thread& t, Nanos ns) {
  if (t.wake_token_) {
    t.wake_token_ = false;
    advance(t, params_.op_overhead);
    return true;
  }
  advance(t, params_.block_overhead);
  if (t.wake_token_) {
    t.wake_token_ = false;
    return true;
  }
  ++stats_.blocks;
  t.state_ = Thread::State::kSleeping;
  const std::uint64_t gen = ++t.sleep_gen_;
  events_.push(now_ + ns, EventKind::kSleepExpire, t.id_, gen);
  deschedule(t);
  return t.woke_by_unblock_;
}

void Machine::deliver_wake(Thread& target, bool by_unblock) {
  if (target.state_ == Thread::State::kBlocked ||
      target.state_ == Thread::State::kSleeping) {
    ++target.sleep_gen_;  // cancel any pending sleep expiry
    target.woke_by_unblock_ = by_unblock;
    // In transit: the kReady event performs the actual enqueue.
    events_.push(now_ + params_.wakeup_latency, EventKind::kReady,
                 target.id_);
    target.state_ = Thread::State::kReady;
  } else if (target.state_ != Thread::State::kFinished) {
    target.wake_token_ = true;
  }
}

void Machine::unblock(Thread& t, ThreadId target) {
  advance(t, params_.wakeup_cost);
  ++stats_.wakeups;
  deliver_wake(*threads_.at(target), /*by_unblock=*/true);
}

void Machine::join(Thread& t, ThreadId target) {
  Thread& other = *threads_.at(target);
  if (other.state_ == Thread::State::kFinished) return;
  other.joiners_.push_back(t.id_);
  while (other.state_ != Thread::State::kFinished) {
    block(t);
  }
}

}  // namespace relock::sim
