#include "relock/sim/coroutine.hpp"

#include <cassert>
#include <cstring>
#include <utility>

#if defined(__x86_64__)

extern "C" {
// Defined in context_switch_x86_64.S.
void relock_ctx_swap(void** save_sp, void* target_sp);
void relock_ctx_trampoline();
}

namespace relock::sim {

namespace {
// Fake initial frame layout, matching relock_ctx_swap's restore sequence
// (low address first): [fcw:2][pad:2][mxcsr:4] r15 r14 r13 r12 rbx rbp ret.
struct InitialFrame {
  std::uint16_t fcw;
  std::uint16_t pad;
  std::uint32_t mxcsr;
  void* r15;
  void* r14;
  void* r13;
  void* r12;  // entry argument -> rdi in trampoline
  void* rbx;  // entry function pointer, called by trampoline
  void* rbp;
  void* ret;  // relock_ctx_trampoline
};
static_assert(sizeof(InitialFrame) == 8 + 6 * 8 + 8);
}  // namespace

Coroutine::Coroutine(std::function<void()> entry, std::size_t stack_size)
    : entry_(std::move(entry)), stack_(stack_size) {
  auto* top = static_cast<char*>(stack_.top());
  auto* frame = reinterpret_cast<InitialFrame*>(top - sizeof(InitialFrame));
  std::memset(frame, 0, sizeof(InitialFrame));
  frame->fcw = 0x037F;    // default x87 control word
  frame->mxcsr = 0x1F80;  // default MXCSR (all exceptions masked)
  frame->r12 = this;
  frame->rbx = reinterpret_cast<void*>(&entry_thunk);
  frame->ret = reinterpret_cast<void*>(&relock_ctx_trampoline);
  coro_sp_ = frame;
}

Coroutine::~Coroutine() {
  // A coroutine abandoned mid-flight simply has its stack unmapped; entry
  // functions in this codebase hold no resources across suspension points
  // that the simulator does not also own.
}

void Coroutine::resume() {
  assert(!finished_ && "resume of finished coroutine");
  started_ = true;
  relock_ctx_swap(&caller_sp_, coro_sp_);
}

void Coroutine::suspend() {
  relock_ctx_swap(&coro_sp_, caller_sp_);
}

void Coroutine::entry_thunk(void* self) {
  static_cast<Coroutine*>(self)->run_entry();
}

void Coroutine::run_entry() {
  entry_();
  finished_ = true;
  // Final transfer back to the resumer; never returns.
  relock_ctx_swap(&coro_sp_, caller_sp_);
  assert(false && "finished coroutine was resumed");
  __builtin_unreachable();
}

}  // namespace relock::sim

#else  // ucontext fallback for non-x86-64 hosts

namespace relock::sim {

Coroutine::Coroutine(std::function<void()> entry, std::size_t stack_size)
    : entry_(std::move(entry)), stack_(stack_size) {
  getcontext(&coro_ctx_);
  coro_ctx_.uc_stack.ss_sp =
      static_cast<char*>(stack_.top()) - stack_.usable_size();
  coro_ctx_.uc_stack.ss_size = stack_.usable_size();
  coro_ctx_.uc_link = nullptr;
  makecontext(&coro_ctx_,
              reinterpret_cast<void (*)()>(&Coroutine::entry_thunk), 1, this);
}

Coroutine::~Coroutine() = default;

void Coroutine::resume() {
  assert(!finished_ && "resume of finished coroutine");
  started_ = true;
  swapcontext(&caller_ctx_, &coro_ctx_);
}

void Coroutine::suspend() { swapcontext(&coro_ctx_, &caller_ctx_); }

void Coroutine::entry_thunk(void* self) {
  static_cast<Coroutine*>(self)->run_entry();
}

void Coroutine::run_entry() {
  entry_();
  finished_ = true;
  swapcontext(&coro_ctx_, &caller_ctx_);
  assert(false && "finished coroutine was resumed");
  __builtin_unreachable();
}

}  // namespace relock::sim

#endif
