#include "relock/sim/stack.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <new>
#include <stdexcept>
#include <utility>

namespace relock::sim {

namespace {
std::size_t page_size() {
  static const auto ps = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return ps;
}
}  // namespace

Stack::Stack(std::size_t size) {
  const std::size_t ps = page_size();
  usable_ = ((size + ps - 1) / ps) * ps;
  mapped_ = usable_ + ps;  // one guard page at the low end
  void* mem = ::mmap(nullptr, mapped_, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  if (mem == MAP_FAILED) throw std::bad_alloc();
  if (::mprotect(mem, ps, PROT_NONE) != 0) {
    ::munmap(mem, mapped_);
    throw std::runtime_error("Stack: mprotect guard page failed");
  }
  base_ = mem;
}

Stack::~Stack() { release(); }

Stack::Stack(Stack&& other) noexcept
    : base_(std::exchange(other.base_, nullptr)),
      mapped_(std::exchange(other.mapped_, 0)),
      usable_(std::exchange(other.usable_, 0)) {}

Stack& Stack::operator=(Stack&& other) noexcept {
  if (this != &other) {
    release();
    base_ = std::exchange(other.base_, nullptr);
    mapped_ = std::exchange(other.mapped_, 0);
    usable_ = std::exchange(other.usable_, 0);
  }
  return *this;
}

void Stack::release() noexcept {
  if (base_ != nullptr) {
    ::munmap(base_, mapped_);
    base_ = nullptr;
  }
}

void* Stack::top() const noexcept {
  auto addr = reinterpret_cast<std::uintptr_t>(base_) + mapped_;
  addr &= ~static_cast<std::uintptr_t>(15);  // 16-byte align
  return reinterpret_cast<void*>(addr);
}

}  // namespace relock::sim
