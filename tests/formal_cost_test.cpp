// The paper's formal characterization (section 4.1) prices each operation
// in memory reads and writes: t = n1 R n2 W. The simulator counts every
// simulated reference, so these tests assert the operation costs *exactly*:
//
//   - registration:          1 W   ("the cost of one write operation")
//   - possess:               one test-and-set (1 RMW)
//   - configure(waiting):    1R 1W
//   - configure(scheduler):  1R 5W (3 submodules + flag set + deferred
//                            flag reset) plus the guarded module swap
//   - lock fast path:        1 RMW + the owner-registration write
#include <gtest/gtest.h>

#include "relock/core/configurable_lock.hpp"
#include "relock/sim/machine.hpp"

namespace relock {
namespace {

using sim::Machine;
using sim::MachineParams;
using sim::MachineStats;
using sim::SimPlatform;
using sim::Thread;

using Lock = ConfigurableLock<SimPlatform>;

struct OpCost {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t rmws = 0;
};

/// Runs `op` on a fresh machine/lock and counts the simulated references it
/// performs (after optional setup which is excluded from the count).
template <typename Setup, typename Op>
OpCost measure(SchedulerKind sched, Setup setup, Op op) {
  Machine m(MachineParams::test_machine(2));
  Lock::Options o;
  o.scheduler = sched;
  o.placement = Placement::on(0);
  Lock lock(m, o);
  OpCost cost;
  m.spawn(0, [&](Thread& t) {
    setup(lock, t);
    const MachineStats before = m.stats();
    op(lock, t);
    const MachineStats after = m.stats();
    cost.reads = (after.reads_local + after.reads_remote) -
                 (before.reads_local + before.reads_remote);
    cost.writes = (after.writes_local + after.writes_remote) -
                  (before.writes_local + before.writes_remote);
    cost.rmws = (after.rmws_local + after.rmws_remote) -
                (before.rmws_local + before.rmws_remote);
  });
  m.run();
  return cost;
}

TEST(FormalCosts, PossessIsOneTestAndSet) {
  const OpCost c = measure(
      SchedulerKind::kFcfs, [](Lock&, Thread&) {},
      [](Lock& l, Thread& t) {
        ASSERT_TRUE(l.try_possess(t, AttributeClass::kWaitingPolicy));
      });
  EXPECT_EQ(c.rmws, 1u);
  EXPECT_EQ(c.reads, 0u);
  EXPECT_EQ(c.writes, 0u);
}

TEST(FormalCosts, ReleasePossessionIsOneRmw) {
  const OpCost c = measure(
      SchedulerKind::kFcfs,
      [](Lock& l, Thread& t) {
        l.possess(t, AttributeClass::kWaitingPolicy);
      },
      [](Lock& l, Thread& t) {
        l.release_possession(t, AttributeClass::kWaitingPolicy);
      });
  EXPECT_EQ(c.rmws, 1u);
}

TEST(FormalCosts, ConfigureWaitingIs1R1W) {
  // "A simple dynamic alteration of waiting mechanism of a lock needs only
  // one memory read and one memory write."
  const OpCost c = measure(
      SchedulerKind::kFcfs, [](Lock&, Thread&) {},
      [](Lock& l, Thread& t) {
        l.configure_waiting(t, LockAttributes::blocking());
      });
  EXPECT_EQ(c.reads, 1u);
  EXPECT_EQ(c.writes, 1u);
  EXPECT_EQ(c.rmws, 0u);
}

TEST(FormalCosts, ConfigureSchedulerIs1R5WPlusGuard) {
  // "Alteration of scheduler ... requires three memory writes for three
  // submodules, one memory write to set a flag, and another memory write
  // to reset the flag" - 1R5W. Our implementation additionally guards the
  // module swap with the meta word: +1 R (TTAS probe) +1 RMW (acquire)
  // +1 W (release).
  const OpCost c = measure(
      SchedulerKind::kFcfs, [](Lock&, Thread&) {},
      [](Lock& l, Thread& t) {
        l.configure_scheduler(t, SchedulerKind::kPriorityQueue);
      });
  EXPECT_EQ(c.reads, 1u + 1u);     // 1R (paper: the delay flag) + meta probe
  EXPECT_EQ(c.writes, 5u + 1u);    // 5W (paper) + meta release
  EXPECT_EQ(c.rmws, 1u);           // meta acquire
}

TEST(FormalCosts, UncontendedLockIsOneRmwPlusRegistrationWrite) {
  const OpCost c = measure(
      SchedulerKind::kFcfs, [](Lock&, Thread&) {},
      [](Lock& l, Thread& t) { ASSERT_TRUE(l.lock(t)); });
  EXPECT_EQ(c.rmws, 1u);    // the atomior fast path
  EXPECT_EQ(c.writes, 1u);  // owner registration ("one write operation")
  EXPECT_EQ(c.reads, 0u);
}

TEST(FormalCosts, UncontendedUnlockReleaseModule) {
  // Unlock runs the release module under the meta guard: meta RMW, owner
  // clear, state publish, meta release = 1 RMW + 3 W (matches the paper's
  // "extra work required to check for currently blocked threads").
  const OpCost c = measure(
      SchedulerKind::kFcfs,
      [](Lock& l, Thread& t) { ASSERT_TRUE(l.lock(t)); },
      [](Lock& l, Thread& t) { l.unlock(t); });
  EXPECT_EQ(c.rmws, 1u);
  EXPECT_EQ(c.writes, 3u);
  EXPECT_EQ(c.reads, 1u);  // TTAS probe of the meta word
}

TEST(FormalCosts, AdviseIsOneWrite) {
  const OpCost c = measure(
      SchedulerKind::kFcfs,
      [](Lock& l, Thread& t) { ASSERT_TRUE(l.lock(t)); },
      [](Lock& l, Thread& t) { l.advise(t, Advice::kSleep, 1'000'000); });
  EXPECT_EQ(c.writes, 1u);
  EXPECT_EQ(c.reads, 0u);
  EXPECT_EQ(c.rmws, 0u);
}

TEST(FormalCosts, TryLockFailureIsOneRmw) {
  Machine m(MachineParams::test_machine(2));
  Lock::Options o;
  o.scheduler = SchedulerKind::kFcfs;
  o.placement = Placement::on(0);
  Lock lock(m, o);
  OpCost cost;
  m.spawn(0, [&](Thread& t) {
    ASSERT_TRUE(lock.lock(t));
    const MachineStats before = m.stats();
    EXPECT_FALSE(lock.try_lock(t));
    const MachineStats after = m.stats();
    cost.rmws = (after.rmws_local + after.rmws_remote) -
                (before.rmws_local + before.rmws_remote);
    cost.writes = (after.writes_local + after.writes_remote) -
                  (before.writes_local + before.writes_remote);
    lock.unlock(t);
  });
  m.run();
  EXPECT_EQ(cost.rmws, 1u);
  EXPECT_EQ(cost.writes, 0u);
}

TEST(FormalCosts, HotspotTrafficLandsOnTheLockModule) {
  // All of the configurable lock's words are placed on node 0; an
  // uncontended lock/unlock cycle must touch only that module.
  Machine m(MachineParams::test_machine(4));
  Lock::Options o;
  o.scheduler = SchedulerKind::kFcfs;
  o.placement = Placement::on(0);
  Lock lock(m, o);
  m.spawn(1, [&](Thread& t) {  // a remote processor
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(lock.lock(t));
      lock.unlock(t);
    }
  });
  m.run();
  EXPECT_GT(m.module_accesses(0), 0u);
  EXPECT_EQ(m.module_accesses(1), 0u);
  EXPECT_EQ(m.module_accesses(2), 0u);
}

}  // namespace
}  // namespace relock
