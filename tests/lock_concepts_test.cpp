// Conformance of the standalone reference locks (locks/mcs_lock.hpp,
// locks/clh_lock.hpp) to the lock_concepts interface, on both platforms.
// These are the didactic counterparts of SchedulerKind::kQueue: the same
// tail-swap / local-spin / single-store-handoff shape, minus the
// configurable waiting component and reconfiguration machinery (see
// DESIGN.md on the distributed queue scheduler).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "relock/core/configurable_lock.hpp"
#include "relock/locks/clh_lock.hpp"
#include "relock/locks/lock_concepts.hpp"
#include "relock/locks/mcs_lock.hpp"
#include "relock/platform/native.hpp"
#include "relock/sim/machine.hpp"

namespace relock {
namespace {

using native::NativePlatform;
using sim::SimPlatform;

// ---- Compile-time conformance: the concepts are the contract. ----

static_assert(ContextLockable<McsLock<NativePlatform>, NativePlatform>);
static_assert(ContextLockable<McsLock<SimPlatform>, SimPlatform>);
static_assert(ContextTryLockable<McsLock<NativePlatform>, NativePlatform>);
static_assert(ContextTryLockable<McsLock<SimPlatform>, SimPlatform>);

static_assert(ContextLockable<ClhLock<NativePlatform>, NativePlatform>);
static_assert(ContextLockable<ClhLock<SimPlatform>, SimPlatform>);
// CLH has no try_lock: a swapped-in node cannot be taken back (the
// predecessor link is already published). The concept split exists for
// exactly this distinction.
static_assert(!ContextTryLockable<ClhLock<NativePlatform>, NativePlatform>);
static_assert(!ContextTryLockable<ClhLock<SimPlatform>, SimPlatform>);

static_assert(
    ContextLockable<ConfigurableLock<NativePlatform>, NativePlatform>);
static_assert(
    ContextTryLockable<ConfigurableLock<NativePlatform>, NativePlatform>);

// ---- Runtime smoke through the generic Guard, native platform. ----

template <typename L>
void guarded_cycles(L& lock, native::Domain& dom, unsigned threads,
                    int iters) {
  std::atomic<int> inside{0};
  long counter = 0;  // guarded by `lock`
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      native::Context ctx(dom);
      for (int i = 0; i < iters; ++i) {
        Guard<L, native::Context> g(lock, ctx);
        ASSERT_EQ(inside.fetch_add(1, std::memory_order_relaxed), 0);
        ++counter;
        inside.fetch_sub(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter, static_cast<long>(threads) * iters);
}

TEST(LockConcepts, McsLockGuardedCycles) {
  native::Domain dom;
  McsLock<NativePlatform> lock(dom, Placement::any(), 64);
  guarded_cycles(lock, dom, 4, 2'000);
}

TEST(LockConcepts, ClhLockGuardedCycles) {
  native::Domain dom;
  ClhLock<NativePlatform> lock(dom, Placement::any(), 64);
  guarded_cycles(lock, dom, 4, 2'000);
}

TEST(LockConcepts, QueueSchedulerLockThroughSameGuard) {
  // The configurable lock under kQueue drives the same generic Guard as
  // its standalone MCS/CLH counterparts - interchangeable by concept.
  native::Domain dom;
  ConfigurableLock<NativePlatform>::Options o;
  o.scheduler = SchedulerKind::kQueue;
  ConfigurableLock<NativePlatform> lock(dom, o);
  guarded_cycles(lock, dom, 4, 2'000);
}

TEST(LockConcepts, McsTryLockSingleAttempt) {
  native::Domain dom;
  McsLock<NativePlatform> lock(dom, Placement::any(), 8);
  native::Context a(dom);
  EXPECT_TRUE(lock.try_lock(a));
  std::thread other([&] {
    native::Context b(dom);
    EXPECT_FALSE(lock.try_lock(b));  // held: single attempt fails cleanly
  });
  other.join();
  lock.unlock(a);
  std::thread again([&] {
    native::Context b(dom);
    EXPECT_TRUE(lock.try_lock(b));
    lock.unlock(b);
  });
  again.join();
}

}  // namespace
}  // namespace relock
