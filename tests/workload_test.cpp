// Workload generator: sampler statistics, arrival processes, the closed-
// loop CS workload driver, and the client-server harness.
#include <gtest/gtest.h>

#include "relock/core/configurable_lock.hpp"
#include "relock/locks/spin_locks.hpp"
#include "relock/sim/machine.hpp"
#include "relock/workload/client_server.hpp"
#include "relock/workload/cs_workload.hpp"
#include "relock/workload/samplers.hpp"

namespace relock::workload {
namespace {

using sim::Machine;
using sim::MachineParams;
using sim::SimPlatform;

// ------------------------------------------------------------ Sampler ----

TEST(Sampler, ConstantAlwaysReturnsValue) {
  Xoshiro256 rng(1);
  Sampler s = Sampler::constant(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s.sample(rng), 1234u);
  EXPECT_DOUBLE_EQ(s.mean(), 1234.0);
}

TEST(Sampler, UniformStaysInRangeWithCorrectMean) {
  Xoshiro256 rng(2);
  Sampler s = Sampler::uniform(100, 300);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const Nanos v = s.sample(rng);
    EXPECT_GE(v, 100u);
    EXPECT_LE(v, 300u);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / kN, 200.0, 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 200.0);
}

TEST(Sampler, ExponentialMeanConverges) {
  Xoshiro256 rng(3);
  Sampler s = Sampler::exponential(1000);
  double sum = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(s.sample(rng));
  // The 20x-mean tail clamp trims < 1% of mass.
  EXPECT_NEAR(sum / kN, 1000.0, 50.0);
}

TEST(Sampler, BimodalMixesBothModes) {
  Xoshiro256 rng(4);
  Sampler s = Sampler::bimodal(10, 1000, 0.75);
  int shorts = 0, longs = 0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    const Nanos v = s.sample(rng);
    if (v == 10) {
      ++shorts;
    } else {
      EXPECT_EQ(v, 1000u);
      ++longs;
    }
  }
  EXPECT_NEAR(static_cast<double>(shorts) / kN, 0.75, 0.03);
  EXPECT_GT(longs, 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.75 * 10 + 0.25 * 1000);
}

TEST(Sampler, DeterministicGivenSeed) {
  Sampler s = Sampler::uniform(0, 1'000'000);
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s.sample(a), s.sample(b));
}

// ------------------------------------------------------------ Arrival ----

TEST(Arrival, SmoothFollowsSampler) {
  Xoshiro256 rng(5);
  auto a = ArrivalProcess::smooth(Sampler::constant(777));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(rng), 777u);
}

TEST(Arrival, BurstyAlternatesGaps) {
  Xoshiro256 rng(6);
  auto a = ArrivalProcess::bursty(/*burst_size=*/3, /*intra=*/10,
                                  /*inter=*/100000);
  // Requests 1,2 of each burst use the intra gap; every 3rd the inter gap.
  std::vector<Nanos> gaps;
  for (int i = 0; i < 9; ++i) gaps.push_back(a.next(rng));
  EXPECT_EQ(gaps, (std::vector<Nanos>{10, 10, 100000, 10, 10, 100000, 10, 10,
                                      100000}));
}

// -------------------------------------------------------- CS workload ----

TEST(CsWorkload, CompletesAllIterations) {
  Machine m(MachineParams::test_machine(4));
  TasLock<SimPlatform> lock(m, Placement::on(0));
  CsWorkloadConfig cfg;
  cfg.locking_threads = 4;
  cfg.iterations = 20;
  cfg.cs_length = Sampler::constant(500);
  cfg.arrival = ArrivalProcess::smooth(Sampler::constant(200));
  const auto r = run_cs_workload(m, lock, cfg);
  EXPECT_EQ(r.acquisitions, 80u);
  EXPECT_GT(r.elapsed, 0u);
}

TEST(CsWorkload, LongerCriticalSectionsTakeLonger) {
  auto elapsed_for = [](Nanos cs) {
    Machine m(MachineParams::test_machine(4));
    TasLock<SimPlatform> lock(m, Placement::on(0));
    CsWorkloadConfig cfg;
    cfg.locking_threads = 4;
    cfg.iterations = 25;
    cfg.cs_length = Sampler::constant(cs);
    return run_cs_workload(m, lock, cfg).elapsed;
  };
  // Paper section 2: execution time increases linearly with CS length.
  const Nanos e1 = elapsed_for(1000);
  const Nanos e2 = elapsed_for(4000);
  const Nanos e3 = elapsed_for(16000);
  EXPECT_LT(e1, e2);
  EXPECT_LT(e2, e3);
}

TEST(CsWorkload, UsefulThreadsRunToCompletion) {
  Machine m(MachineParams::test_machine(2));
  TasLock<SimPlatform> lock(m, Placement::on(0));
  CsWorkloadConfig cfg;
  cfg.locking_threads = 2;
  cfg.iterations = 10;
  cfg.cs_length = Sampler::constant(1000);
  cfg.useful_threads_per_proc = 1;
  cfg.useful_work_total = 200'000;
  cfg.useful_work_chunk = 10'000;
  const auto r = run_cs_workload(m, lock, cfg);
  // Elapsed covers at least the useful work per processor.
  EXPECT_GE(r.elapsed, 200'000u);
  EXPECT_EQ(r.acquisitions, 20u);
}

TEST(CsWorkload, DeterministicAcrossRuns) {
  auto run_once = [] {
    Machine m(MachineParams::test_machine(4));
    TasLock<SimPlatform> lock(m, Placement::on(0));
    CsWorkloadConfig cfg;
    cfg.locking_threads = 4;
    cfg.iterations = 30;
    cfg.cs_length = Sampler::uniform(100, 2000);
    cfg.arrival = ArrivalProcess::smooth(Sampler::exponential(500));
    cfg.seed = 99;
    return run_cs_workload(m, lock, cfg).elapsed;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(CsWorkload, CustomBodyReceivesIterations) {
  Machine m(MachineParams::test_machine(2));
  TasLock<SimPlatform> lock(m, Placement::on(0));
  CsWorkloadConfig cfg;
  cfg.locking_threads = 1;
  cfg.iterations = 5;
  std::vector<std::uint32_t> seen;
  const auto r = run_cs_workload_with_body(
      m, lock, cfg,
      [&](sim::Thread& t, Xoshiro256&, std::uint32_t iter) {
        seen.push_back(iter);
        m.compute(t, 100);
      });
  EXPECT_EQ(r.acquisitions, 5u);
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

// ------------------------------------------------------ Client-server ----

ConfigurableLock<SimPlatform>::Options cs_lock_options(SchedulerKind k) {
  ConfigurableLock<SimPlatform>::Options o;
  o.scheduler = k;
  o.placement = Placement::on(0);
  o.monitor_enabled = true;
  return o;
}

TEST(ClientServer, ServesEveryRequestFcfs) {
  Machine m(MachineParams::test_machine(6));
  ConfigurableLock<SimPlatform> lock(m,
                                     cs_lock_options(SchedulerKind::kFcfs));
  ClientServerConfig cfg;
  cfg.clients = 4;
  cfg.requests_per_client = 5;
  const auto r = run_client_server(m, lock, cfg, /*handoff=*/false,
                                   /*dynamic_threshold=*/false);
  EXPECT_EQ(r.served, 20u);
  EXPECT_GT(r.elapsed, 0u);
}

TEST(ClientServer, ServesEveryRequestWithDynamicThreshold) {
  Machine m(MachineParams::test_machine(6));
  ConfigurableLock<SimPlatform> lock(
      m, cs_lock_options(SchedulerKind::kPriorityThreshold));
  ClientServerConfig cfg;
  cfg.clients = 4;
  cfg.requests_per_client = 5;
  const auto r = run_client_server(m, lock, cfg, /*handoff=*/false,
                                   /*dynamic_threshold=*/true);
  EXPECT_EQ(r.served, 20u);
}

TEST(ClientServer, ServesEveryRequestWithHandoff) {
  Machine m(MachineParams::test_machine(6));
  ConfigurableLock<SimPlatform> lock(
      m, cs_lock_options(SchedulerKind::kHandoff));
  ClientServerConfig cfg;
  cfg.clients = 4;
  cfg.requests_per_client = 5;
  const auto r = run_client_server(m, lock, cfg, /*handoff=*/true,
                                   /*dynamic_threshold=*/false);
  EXPECT_EQ(r.served, 20u);
}

TEST(ClientServer, FloodedServerBenefitsFromPriorityThreshold) {
  // Table 7's shape: with many flooded clients, priority-threshold and
  // handoff schedulers serve the workload faster than FCFS.
  auto run_with = [](SchedulerKind k, bool handoff, bool dyn) {
    Machine m(MachineParams::test_machine(10));
    ConfigurableLock<SimPlatform> lock(m, cs_lock_options(k));
    ClientServerConfig cfg;
    cfg.clients = 8;
    cfg.requests_per_client = 8;
    cfg.client_think = 1000;   // flood: clients re-request immediately
    cfg.service_time = 4000;
    cfg.buffer_op = 2000;
    return run_client_server(m, lock, cfg, handoff, dyn).elapsed;
  };
  const Nanos fcfs = run_with(SchedulerKind::kFcfs, false, false);
  const Nanos prio = run_with(SchedulerKind::kPriorityThreshold, false, true);
  const Nanos hand = run_with(SchedulerKind::kHandoff, true, false);
  EXPECT_LT(prio, fcfs);
  EXPECT_LT(hand, fcfs);
}

}  // namespace
}  // namespace relock::workload
