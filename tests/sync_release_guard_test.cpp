// sync/ API-misuse guards in a RELEASE build (same pattern as
// core_release_guard_test.cpp): this TU re-defines NDEBUG, so assert() is
// compiled out and only the primitives' LockUsageError throws stand. Before
// PR 10 these guards were assert-only - in release builds a zero timeout
// waited forever, a zero-party barrier divided the generation among nobody,
// and an out-of-range barrier thread id wrote its sense flag out of bounds.
#ifndef NDEBUG
#error "sync_release_guard_test must be compiled with NDEBUG (release mode)"
#endif

#include <gtest/gtest.h>

#include "relock/core/configurable_lock.hpp"
#include "relock/platform/native.hpp"
#include "relock/sync/barrier.hpp"
#include "relock/sync/condition_variable.hpp"
#include "relock/sync/semaphore.hpp"

namespace {

using namespace relock;
using NP = native::NativePlatform;
using Lock = ConfigurableLock<NP>;

Lock::Options fcfs_opts() {
  Lock::Options o;
  o.scheduler = SchedulerKind::kFcfs;
  o.attributes = LockAttributes::spin();
  return o;
}

TEST(SyncReleaseGuard, ConditionVariableNonPositiveTimeoutThrows) {
  native::Domain domain;
  native::Context ctx(domain);
  Lock lock(domain, fcfs_opts());
  ConditionVariable<NP> cv(domain);

  lock.lock(ctx);
  // Nanos is unsigned, so zero is the only representable non-positive value.
  EXPECT_THROW((void)cv.wait_for(ctx, lock, 0), LockUsageError);
  // The guard fired before the unlock: we still hold the lock, and the CV
  // queue holds no ghost node - a notify must find nobody.
  cv.notify_all(ctx);
  lock.unlock(ctx);

  // A real timed wait still works after the misuse.
  lock.lock(ctx);
  EXPECT_FALSE(cv.wait_for(ctx, lock, 1'000'000));
  lock.unlock(ctx);
}

TEST(SyncReleaseGuard, SemaphoreNonPositiveTimeoutThrows) {
  native::Domain domain;
  native::Context ctx(domain);
  Semaphore<NP> sem(domain, /*initial=*/0);

  EXPECT_THROW((void)sem.acquire_for(ctx, 0), LockUsageError);
  // Still usable: a permit releases and a timed acquire consumes it.
  sem.release(ctx);
  EXPECT_TRUE(sem.acquire_for(ctx, 1'000'000));
  EXPECT_FALSE(sem.try_acquire(ctx));
}

TEST(SyncReleaseGuard, BarrierZeroPartiesThrows) {
  native::Domain domain;
  EXPECT_THROW(Barrier<NP>(domain, /*parties=*/0), LockUsageError);
}

TEST(SyncReleaseGuard, BarrierThreadIdBeyondMaxThreadsThrows) {
  native::Domain domain;
  native::Context ctx(domain);
  // max_threads below this thread's id: without the guard the NDEBUG build
  // wrote local_sense_[tid] out of bounds.
  Barrier<NP> tiny(domain, /*parties=*/1, Placement::any(),
                   LockAttributes::spin(), /*max_threads=*/0);
  EXPECT_THROW(tiny.arrive_and_wait(ctx), LockUsageError);

  // A properly sized barrier still cycles after the misuse (single party:
  // each arrival releases its own generation).
  Barrier<NP> barrier(domain, /*parties=*/1);
  barrier.arrive_and_wait(ctx);
  barrier.arrive_and_wait(ctx);
}

}  // namespace
