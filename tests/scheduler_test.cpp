// Direct unit tests of the scheduler modules (Gamma) and the WaiterQueue
// they are built on, plus dynamic installation of a user-supplied scheduler
// (EdfScheduler) through the lock's configure_scheduler extension point.
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <vector>

#include "relock/core/configurable_lock.hpp"
#include "relock/core/edf_scheduler.hpp"
#include "relock/core/scheduler.hpp"
#include "relock/sim/machine.hpp"

namespace relock {
namespace {

using sim::Machine;
using sim::MachineParams;
using sim::ProcId;
using sim::SimPlatform;
using sim::Thread;

using Rec = WaiterRecord<SimPlatform>;

/// Test fixture owning a machine so records can allocate grant words.
class SchedulerUnit : public ::testing::Test {
 protected:
  SchedulerUnit() : machine_(MachineParams::test_machine(2)) {}

  Rec& make(ThreadId tid, Priority prio = 0, bool shared = false) {
    recs_.emplace_back(machine_, tid, prio, Placement::on(0), shared,
                       /*may_sleep=*/false);
    return recs_.back();
  }

  static std::vector<ThreadId> select_all(Scheduler<SimPlatform>& s,
                                          ThreadId hint = kInvalidThread) {
    std::vector<ThreadId> order;
    GrantBatch<SimPlatform> batch;
    while (!s.empty()) {
      batch.clear();
      s.select(batch, hint);
      if (batch.empty()) break;  // e.g. all below threshold
      for (Rec* r : batch) order.push_back(r->tid);
    }
    return order;
  }

  Machine machine_;
  std::deque<Rec> recs_;  // deque: records are immovable
};

// ------------------------------------------------------- WaiterQueue -----

TEST_F(SchedulerUnit, WaiterQueueFifoAndRemove) {
  WaiterQueue<SimPlatform> q;
  Rec& a = make(1);
  Rec& b = make(2);
  Rec& c = make(3);
  q.push_back(a);
  q.push_back(b);
  q.push_back(c);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.front(), &a);
  q.remove(b);  // middle removal
  EXPECT_EQ(q.size(), 2u);
  q.remove(b);  // idempotent
  EXPECT_EQ(q.size(), 2u);
  q.remove(a);  // head removal
  EXPECT_EQ(q.front(), &c);
  q.remove(c);  // tail removal
  EXPECT_TRUE(q.empty());
}

TEST_F(SchedulerUnit, WaiterQueueForEachEarlyStop) {
  WaiterQueue<SimPlatform> q;
  Rec& a = make(1);
  Rec& b = make(2);
  q.push_back(a);
  q.push_back(b);
  int visited = 0;
  q.for_each([&](Rec&) {
    ++visited;
    return false;  // stop after the first
  });
  EXPECT_EQ(visited, 1);
}

// --------------------------------------------------------- FCFS ----------

TEST_F(SchedulerUnit, FcfsSelectsInArrivalOrder) {
  FcfsScheduler<SimPlatform> s;
  s.enqueue(make(5));
  s.enqueue(make(3));
  s.enqueue(make(9));
  EXPECT_EQ(select_all(s), (std::vector<ThreadId>{5, 3, 9}));
}

TEST_F(SchedulerUnit, FcfsRemoveWithdrawsWaiter) {
  FcfsScheduler<SimPlatform> s;
  Rec& a = make(1);
  Rec& b = make(2);
  s.enqueue(a);
  s.enqueue(b);
  s.remove(a);
  EXPECT_EQ(select_all(s), (std::vector<ThreadId>{2}));
}

// ----------------------------------------------------- PriorityQueue -----

TEST_F(SchedulerUnit, PriorityQueueSelectsHighestFirst) {
  PriorityQueueScheduler<SimPlatform> s;
  s.enqueue(make(1, 1));
  s.enqueue(make(2, 9));
  s.enqueue(make(3, 5));
  EXPECT_EQ(select_all(s), (std::vector<ThreadId>{2, 3, 1}));
}

TEST_F(SchedulerUnit, PriorityQueueFifoAmongEquals) {
  PriorityQueueScheduler<SimPlatform> s;
  s.enqueue(make(1, 7));
  s.enqueue(make(2, 7));
  s.enqueue(make(3, 7));
  EXPECT_EQ(select_all(s), (std::vector<ThreadId>{1, 2, 3}));
}

// -------------------------------------------------- PriorityThreshold ----

TEST_F(SchedulerUnit, ThresholdSelectsNobodyWhenAllIneligible) {
  PriorityThresholdScheduler<SimPlatform> s;
  s.set_threshold(10);
  s.enqueue(make(1, 3));
  s.enqueue(make(2, 7));
  GrantBatch<SimPlatform> batch;
  s.select(batch, kInvalidThread);
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(s.size(), 2u) << "ineligible waiters stay registered";
}

TEST_F(SchedulerUnit, ThresholdFcfsAmongEligible) {
  PriorityThresholdScheduler<SimPlatform> s;
  s.set_threshold(5);
  s.enqueue(make(1, 3));   // ineligible
  s.enqueue(make(2, 8));   // eligible, first
  s.enqueue(make(3, 20));  // eligible but later (no priority order!)
  GrantBatch<SimPlatform> batch;
  s.select(batch, kInvalidThread);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.front()->tid, 2u);
  EXPECT_EQ(s.threshold(), 5);
}

TEST_F(SchedulerUnit, ThresholdDropMakesWaitersEligible) {
  PriorityThresholdScheduler<SimPlatform> s;
  s.set_threshold(10);
  s.enqueue(make(1, 3));
  GrantBatch<SimPlatform> batch;
  s.select(batch, kInvalidThread);
  EXPECT_TRUE(batch.empty());
  s.set_threshold(0);
  s.select(batch, kInvalidThread);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.front()->tid, 1u);
}

// ----------------------------------------------------------- Handoff -----

TEST_F(SchedulerUnit, HandoffHonorsHint) {
  HandoffScheduler<SimPlatform> s;
  s.enqueue(make(1));
  s.enqueue(make(2));
  s.enqueue(make(3));
  GrantBatch<SimPlatform> batch;
  s.select(batch, /*hint=*/3);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.front()->tid, 3u);
  EXPECT_EQ(select_all(s), (std::vector<ThreadId>{1, 2}));
}

TEST_F(SchedulerUnit, HandoffFallsBackToFcfsOnMissingHint) {
  HandoffScheduler<SimPlatform> s;
  s.enqueue(make(1));
  s.enqueue(make(2));
  GrantBatch<SimPlatform> batch;
  s.select(batch, /*hint=*/77);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.front()->tid, 1u);
}

// ------------------------------------------------------ ReaderWriter -----

TEST_F(SchedulerUnit, RwFifoBatchesLeadingReaders) {
  ReaderWriterScheduler<SimPlatform> s(RwPreference::kFifo);
  s.enqueue(make(1, 0, /*shared=*/true));
  s.enqueue(make(2, 0, /*shared=*/true));
  s.enqueue(make(3, 0, /*shared=*/false));
  s.enqueue(make(4, 0, /*shared=*/true));
  GrantBatch<SimPlatform> batch;
  s.select(batch, kInvalidThread);
  ASSERT_EQ(batch.size(), 2u);  // readers 1 and 2 batch together
  EXPECT_EQ(batch[0]->tid, 1u);
  EXPECT_EQ(batch[1]->tid, 2u);
  batch.clear();
  s.select(batch, kInvalidThread);
  ASSERT_EQ(batch.size(), 1u);  // then the writer alone
  EXPECT_EQ(batch.front()->tid, 3u);
}

TEST_F(SchedulerUnit, RwReaderPrefTakesAllReaders) {
  ReaderWriterScheduler<SimPlatform> s(RwPreference::kReaderPref);
  s.enqueue(make(1, 0, true));
  s.enqueue(make(2, 0, false));
  s.enqueue(make(3, 0, true));
  GrantBatch<SimPlatform> batch;
  s.select(batch, kInvalidThread);
  ASSERT_EQ(batch.size(), 2u);  // both readers, past the queued writer
  EXPECT_EQ(batch[0]->tid, 1u);
  EXPECT_EQ(batch[1]->tid, 3u);
}

TEST_F(SchedulerUnit, RwWriterPrefTakesWriterFirst) {
  ReaderWriterScheduler<SimPlatform> s(RwPreference::kWriterPref);
  s.enqueue(make(1, 0, true));
  s.enqueue(make(2, 0, true));
  s.enqueue(make(3, 0, false));
  GrantBatch<SimPlatform> batch;
  s.select(batch, kInvalidThread);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.front()->tid, 3u);
}

// ------------------------------------------------------------- EDF -------

TEST_F(SchedulerUnit, EdfSelectsEarliestDeadline) {
  EdfScheduler<SimPlatform> s;
  s.enqueue(make(1, 300));  // deadline 300
  s.enqueue(make(2, 100));  // deadline 100: most urgent
  s.enqueue(make(3, 200));
  EXPECT_EQ(select_all(s), (std::vector<ThreadId>{2, 3, 1}));
  EXPECT_EQ(s.kind(), SchedulerKind::kCustom);
}

// --------------------------------------------------- factory / kinds -----

TEST_F(SchedulerUnit, FactoryProducesMatchingKinds) {
  for (const SchedulerKind k :
       {SchedulerKind::kFcfs, SchedulerKind::kPriorityQueue,
        SchedulerKind::kPriorityThreshold, SchedulerKind::kHandoff,
        SchedulerKind::kReaderWriter}) {
    const auto s = make_scheduler<SimPlatform>(k);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->kind(), k);
    EXPECT_TRUE(s->empty());
    EXPECT_EQ(s->size(), 0u);
  }
  EXPECT_EQ(make_scheduler<SimPlatform>(SchedulerKind::kNone), nullptr);
}

// ----------------------------------- custom scheduler through the lock ---

TEST(CustomScheduler, EdfInstalledDynamicallyOrdersGrantsByDeadline) {
  Machine m(MachineParams::test_machine(5));
  ConfigurableLock<SimPlatform>::Options o;
  o.scheduler = SchedulerKind::kFcfs;
  o.placement = Placement::on(0);
  ConfigurableLock<SimPlatform> lock(m, o);
  std::vector<int> order;
  m.spawn(0, [&](Thread& t) {
    // Install the user-supplied EDF module while the lock is idle.
    lock.configure_scheduler(t,
                             std::make_unique<EdfScheduler<SimPlatform>>());
    EXPECT_EQ(lock.scheduler_kind(), SchedulerKind::kCustom);
    ASSERT_TRUE(lock.lock(t));
    m.compute(t, 200'000);  // waiters with deadlines 30, 10, 20 queue
    lock.unlock(t);
  });
  const int deadlines[] = {30, 10, 20};
  for (int i = 0; i < 3; ++i) {
    m.spawn(static_cast<ProcId>(i + 1), [&, i](Thread& t) {
      t.set_priority(deadlines[i]);
      m.compute(t, static_cast<Nanos>(3000 * (i + 1)));
      ASSERT_TRUE(lock.lock(t));
      order.push_back(deadlines[i]);
      lock.unlock(t);
    });
  }
  m.run();
  EXPECT_EQ(order, (std::vector<int>{10, 20, 30}));
}

}  // namespace
}  // namespace relock
