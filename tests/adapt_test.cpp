// Adaptation module: policy decision logic and the full monitor ->
// policy -> possess/configure feedback loop on the simulator.
#include <gtest/gtest.h>

#include <memory>

#include "relock/adapt/adaptor.hpp"
#include "relock/adapt/policies.hpp"
#include "relock/platform/rng.hpp"
#include "relock/sim/machine.hpp"

namespace relock::adapt {
namespace {

using sim::Machine;
using sim::MachineParams;
using sim::ProcId;
using sim::SimPlatform;
using sim::Thread;

StatsDelta delta_with(std::uint64_t acq, double hold_ns,
                      std::uint64_t contended = 0) {
  StatsDelta d;
  d.acquisitions = acq;
  d.contended = contended;
  d.mean_hold_ns = hold_ns;
  return d;
}

// ----------------------------------------------------------- Policies ----

TEST(SpinBlockHysteresis, SwitchesToBlockingOnLongHolds) {
  SpinBlockHysteresisPolicy p;
  const auto action = p.evaluate(delta_with(100, 1'000'000.0));
  ASSERT_TRUE(action.has_value());
  const auto* w = std::get_if<SetWaitingPolicy>(&*action);
  ASSERT_NE(w, nullptr);
  EXPECT_GT(w->attributes.sleep_ns, 0u);
  EXPECT_TRUE(p.blocking());
}

TEST(SpinBlockHysteresis, SwitchesBackToSpinOnShortHolds) {
  SpinBlockHysteresisPolicy p;
  ASSERT_TRUE(p.evaluate(delta_with(100, 1'000'000.0)).has_value());
  const auto action = p.evaluate(delta_with(100, 50'000.0));
  ASSERT_TRUE(action.has_value());
  const auto* w = std::get_if<SetWaitingPolicy>(&*action);
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->attributes.sleep_ns, 0u);
  EXPECT_FALSE(p.blocking());
}

TEST(SpinBlockHysteresis, HysteresisBandPreventsOscillation) {
  SpinBlockHysteresisPolicy p(
      SpinBlockHysteresisPolicy::Params{500'000.0, 150'000.0, 1, 10});
  ASSERT_TRUE(p.evaluate(delta_with(10, 600'000.0)).has_value());
  // In-band values (between 150us and 500us) must not flip the policy.
  EXPECT_FALSE(p.evaluate(delta_with(10, 300'000.0)).has_value());
  EXPECT_FALSE(p.evaluate(delta_with(10, 450'000.0)).has_value());
  EXPECT_TRUE(p.blocking());
}

TEST(SpinBlockHysteresis, NoiseGateIgnoresSparseIntervals) {
  SpinBlockHysteresisPolicy p;  // min_samples = 8
  EXPECT_FALSE(p.evaluate(delta_with(3, 5'000'000.0)).has_value());
}

TEST(ContentionScheduler, AdoptsQueueUnderContention) {
  ContentionSchedulerPolicy p;
  StatsDelta d = delta_with(100, 0.0, 80);
  const auto action = p.evaluate(d);
  ASSERT_TRUE(action.has_value());
  const auto* s = std::get_if<SetScheduler>(&*action);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->kind, SchedulerKind::kFcfs);
  EXPECT_TRUE(p.queued());
}

TEST(ContentionScheduler, RevertsWhenContentionSubsides) {
  ContentionSchedulerPolicy p;
  ASSERT_TRUE(p.evaluate(delta_with(100, 0.0, 80)).has_value());
  const auto action = p.evaluate(delta_with(100, 0.0, 2));
  ASSERT_TRUE(action.has_value());
  EXPECT_EQ(std::get<SetScheduler>(*action).kind, SchedulerKind::kNone);
}

TEST(PhaseDetector, DetectsAbruptHoldTimeChange) {
  PhaseDetector pd;
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(pd.observe(100'000.0));
  EXPECT_TRUE(pd.observe(1'000'000.0));  // 10x jump: new phase
  EXPECT_EQ(pd.phases_detected(), 1u);
}

TEST(PhaseDetector, StableWorkloadDetectsNothing) {
  PhaseDetector pd;
  Xoshiro256 rng(7);
  for (int i = 0; i < 100; ++i) {
    const double jitter = 0.9 + 0.2 * rng.next_double();
    EXPECT_FALSE(pd.observe(200'000.0 * jitter));
  }
  EXPECT_EQ(pd.phases_detected(), 0u);
}

TEST(DeltaBetween, ComputesInterval) {
  LockStats a, b;
  a.acquisitions = 10;
  a.contended_acquisitions = 2;
  a.releases = 10;
  a.timed_holds = 10;
  a.total_hold_ns = 1000;
  b.acquisitions = 30;
  b.contended_acquisitions = 12;
  b.releases = 30;
  b.timed_holds = 30;
  b.total_hold_ns = 5000;
  const StatsDelta d = delta_between(a, b);
  EXPECT_EQ(d.acquisitions, 20u);
  EXPECT_EQ(d.contended, 10u);
  EXPECT_DOUBLE_EQ(d.mean_hold_ns, 200.0);
  EXPECT_DOUBLE_EQ(d.contention_ratio(), 0.5);
}

// --------------------------------------------------- Full feedback loop ---

TEST(Adaptor, AdaptsSpinLockToBlockingOnLongCsPhase) {
  Machine m(MachineParams::test_machine(4));
  ConfigurableLock<SimPlatform>::Options opts;
  opts.scheduler = SchedulerKind::kFcfs;
  opts.attributes = LockAttributes::spin();
  opts.placement = Placement::on(0);
  opts.monitor_enabled = true;
  ConfigurableLock<SimPlatform> lock(m, opts);

  Adaptor<SimPlatform> adaptor(
      lock, std::make_unique<SpinBlockHysteresisPolicy>(
                SpinBlockHysteresisPolicy::Params{50'000.0, 10'000.0, 4, 5}));

  // Workers hold the lock for long critical sections.
  for (int i = 0; i < 2; ++i) {
    m.spawn(static_cast<ProcId>(i), [&](Thread& t) {
      for (int j = 0; j < 20; ++j) {
        ASSERT_TRUE(lock.lock(t));
        m.compute(t, 100'000);  // well above block_above
        lock.unlock(t);
        m.compute(t, 5000);
      }
    });
  }
  // The external monitoring agent periodically evaluates.
  bool adapted = false;
  m.spawn(2, [&](Thread& t) {
    // The interval must span enough acquisitions (~105us each) to pass the
    // policy's noise gate of 4 samples.
    for (int k = 0; k < 8 && !adapted; ++k) {
      m.compute(t, 600'000);
      adapted |= adaptor.step(t);
    }
  });
  m.run();
  EXPECT_TRUE(adapted);
  EXPECT_GT(lock.attributes().sleep_ns, 0u)
      << "lock should have been reconfigured to a sleeping policy";
  EXPECT_GE(lock.monitor().snapshot().reconfigurations, 1u);
  EXPECT_EQ(adaptor.actions_applied(), 1u);
}

TEST(Adaptor, SchedulerPolicyInstallsQueueUnderContention) {
  Machine m(MachineParams::test_machine(6));
  ConfigurableLock<SimPlatform>::Options opts;
  opts.scheduler = SchedulerKind::kNone;  // centralized barging
  opts.placement = Placement::on(0);
  opts.monitor_enabled = true;
  ConfigurableLock<SimPlatform> lock(m, opts);

  Adaptor<SimPlatform> adaptor(
      lock, std::make_unique<ContentionSchedulerPolicy>(
                ContentionSchedulerPolicy::Params{0.3, 0.01, 4}));

  for (int i = 0; i < 5; ++i) {
    m.spawn(static_cast<ProcId>(i), [&](Thread& t) {
      for (int j = 0; j < 25; ++j) {
        ASSERT_TRUE(lock.lock(t));
        m.compute(t, 20'000);
        lock.unlock(t);
      }
    });
  }
  m.spawn(5, [&](Thread& t) {
    for (int k = 0; k < 40; ++k) {
      m.compute(t, 100'000);
      adaptor.step(t);
    }
  });
  m.run();
  EXPECT_EQ(lock.scheduler_kind(), SchedulerKind::kFcfs);
}

}  // namespace
}  // namespace relock::adapt
