// Adaptation module: policy decision logic and the full monitor ->
// policy -> possess/configure feedback loop on the simulator.
#include <gtest/gtest.h>

#include <memory>

#include "relock/adapt/adaptor.hpp"
#include "relock/adapt/policies.hpp"
#include "relock/platform/rng.hpp"
#include "relock/sim/machine.hpp"

namespace relock::adapt {
namespace {

using sim::Machine;
using sim::MachineParams;
using sim::ProcId;
using sim::SimPlatform;
using sim::Thread;

StatsDelta delta_with(std::uint64_t acq, double hold_ns,
                      std::uint64_t contended = 0) {
  StatsDelta d;
  d.acquisitions = acq;
  d.contended = contended;
  d.mean_hold_ns = hold_ns;
  return d;
}

// ----------------------------------------------------------- Policies ----

TEST(SpinBlockHysteresis, SwitchesToBlockingOnLongHolds) {
  SpinBlockHysteresisPolicy p;
  const auto action = p.evaluate(delta_with(100, 1'000'000.0));
  ASSERT_TRUE(action.has_value());
  const auto* w = std::get_if<SetWaitingPolicy>(&*action);
  ASSERT_NE(w, nullptr);
  EXPECT_GT(w->attributes.sleep_ns, 0u);
  EXPECT_TRUE(p.blocking());
}

TEST(SpinBlockHysteresis, SwitchesBackToSpinOnShortHolds) {
  SpinBlockHysteresisPolicy p;
  ASSERT_TRUE(p.evaluate(delta_with(100, 1'000'000.0)).has_value());
  const auto action = p.evaluate(delta_with(100, 50'000.0));
  ASSERT_TRUE(action.has_value());
  const auto* w = std::get_if<SetWaitingPolicy>(&*action);
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->attributes.sleep_ns, 0u);
  EXPECT_FALSE(p.blocking());
}

TEST(SpinBlockHysteresis, HysteresisBandPreventsOscillation) {
  SpinBlockHysteresisPolicy p(
      SpinBlockHysteresisPolicy::Params{500'000.0, 150'000.0, 1, 10});
  ASSERT_TRUE(p.evaluate(delta_with(10, 600'000.0)).has_value());
  // In-band values (between 150us and 500us) must not flip the policy.
  EXPECT_FALSE(p.evaluate(delta_with(10, 300'000.0)).has_value());
  EXPECT_FALSE(p.evaluate(delta_with(10, 450'000.0)).has_value());
  EXPECT_TRUE(p.blocking());
}

TEST(SpinBlockHysteresis, NoiseGateIgnoresSparseIntervals) {
  SpinBlockHysteresisPolicy p;  // min_samples = 8
  EXPECT_FALSE(p.evaluate(delta_with(3, 5'000'000.0)).has_value());
}

TEST(ContentionScheduler, AdoptsQueueUnderContention) {
  ContentionSchedulerPolicy p;
  StatsDelta d = delta_with(100, 0.0, 80);
  const auto action = p.evaluate(d);
  ASSERT_TRUE(action.has_value());
  const auto* s = std::get_if<SetScheduler>(&*action);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->kind, SchedulerKind::kFcfs);
  EXPECT_TRUE(p.queued());
}

TEST(ContentionScheduler, RevertsWhenContentionSubsides) {
  ContentionSchedulerPolicy p;
  ASSERT_TRUE(p.evaluate(delta_with(100, 0.0, 80)).has_value());
  const auto action = p.evaluate(delta_with(100, 0.0, 2));
  ASSERT_TRUE(action.has_value());
  EXPECT_EQ(std::get<SetScheduler>(*action).kind, SchedulerKind::kNone);
}

TEST(SpinBlockHysteresis, BoundaryValuedDeltaNeverOscillates) {
  // Thresholds are strict inequalities: a delta pinned exactly on the
  // switch boundary engages nothing, on either hysteresis side.
  const SpinBlockHysteresisPolicy::Params p{500'000.0, 150'000.0, 1, 10};
  SpinBlockHysteresisPolicy spin_side(p);
  EXPECT_FALSE(spin_side.evaluate(delta_with(10, 500'000.0)).has_value());
  EXPECT_FALSE(spin_side.blocking());
  SpinBlockHysteresisPolicy block_side(p);
  ASSERT_TRUE(block_side.evaluate(delta_with(10, 600'000.0)).has_value());
  EXPECT_FALSE(block_side.evaluate(delta_with(10, 150'000.0)).has_value());
  EXPECT_TRUE(block_side.blocking());
}

TEST(CostModelWait, ParksWhenWaitExceedsContextSwitchBudget) {
  CostModelWaitPolicy p;  // budget = 2 * 5000ns, hysteresis 1.5
  StatsDelta d = delta_with(100, 0.0);
  d.mean_wait_ns = 100'000.0;
  const auto action = p.evaluate(d);
  ASSERT_TRUE(action.has_value());
  const auto* w = std::get_if<SetWaitingPolicy>(&*action);
  ASSERT_NE(w, nullptr);
  EXPECT_GT(w->attributes.sleep_ns, 0u);
  EXPECT_GT(w->attributes.spin_count, 0u) << "sleep side keeps a spin phase";
  EXPECT_TRUE(p.sleeping());
}

TEST(CostModelWait, OversubscriptionForcesSleepRegardlessOfWait) {
  CostModelWaitPolicy p;
  StatsDelta d = delta_with(100, 0.0);
  d.mean_wait_ns = 10.0;  // trivially cheap waits...
  d.oversubscribed = true;  // ...but spinning steals the holder's processor
  ASSERT_TRUE(p.evaluate(d).has_value());
  EXPECT_TRUE(p.sleeping());
  // And it pins the sleep side: short waits cannot flip back while the
  // domain stays oversubscribed.
  EXPECT_FALSE(p.evaluate(d).has_value());
  EXPECT_TRUE(p.sleeping());
}

TEST(CostModelWait, ReturnsToSpinInsideTheBand) {
  CostModelWaitPolicy p(CostModelWaitPolicy::Params{}, /*start_sleeping=*/true);
  StatsDelta d = delta_with(100, 0.0);
  d.mean_wait_ns = 1'000.0;  // < 10'000 / 1.5
  const auto action = p.evaluate(d);
  ASSERT_TRUE(action.has_value());
  EXPECT_EQ(std::get<SetWaitingPolicy>(*action).attributes,
            LockAttributes::spin());
  EXPECT_FALSE(p.sleeping());
}

TEST(CostModelWait, BoundaryAndZeroWaitsHoldPosition) {
  CostModelWaitPolicy p;
  // Exactly budget * hysteresis: strict comparison, no flip.
  StatsDelta d = delta_with(100, 0.0);
  d.mean_wait_ns = 15'000.0;
  EXPECT_FALSE(p.evaluate(d).has_value());
  // Zero observed wait on the sleep side means no timed samples landed in
  // the window - not evidence of cheap waits; hold position.
  CostModelWaitPolicy sleeper(CostModelWaitPolicy::Params{},
                              /*start_sleeping=*/true);
  EXPECT_FALSE(sleeper.evaluate(delta_with(100, 0.0)).has_value());
  EXPECT_TRUE(sleeper.sleeping());
}

TEST(OversubscriptionScheduler, AdoptsQueueUnderSustainedContention) {
  OversubscriptionSchedulerPolicy p;
  StatsDelta d = delta_with(100, 0.0, 80);
  const auto action = p.evaluate(d);
  ASSERT_TRUE(action.has_value());
  EXPECT_EQ(std::get<SetScheduler>(*action).kind, SchedulerKind::kQueue);
  EXPECT_TRUE(p.queued());
}

TEST(OversubscriptionScheduler, OversubscriptionDropsQueueToFcfs) {
  OversubscriptionSchedulerPolicy p(OversubscriptionSchedulerPolicy::Params{},
                                    /*start_queued=*/true);
  StatsDelta d = delta_with(100, 0.0, 80);  // still heavily contended...
  d.oversubscribed = true;  // ...but FIFO handoff now stalls on preemption
  const auto action = p.evaluate(d);
  ASSERT_TRUE(action.has_value());
  EXPECT_EQ(std::get<SetScheduler>(*action).kind, SchedulerKind::kFcfs);
  EXPECT_FALSE(p.queued());
  // And it blocks re-adoption while it lasts.
  EXPECT_FALSE(p.evaluate(d).has_value());
}

TEST(BurstThreshold, SurgeRaisesAndSubsideRestoresThreshold) {
  BurstThresholdPolicy p;
  EXPECT_FALSE(p.evaluate(delta_with(100, 0.0)).has_value())
      << "first interval only seeds the EWMA";
  const auto surge = p.evaluate(delta_with(1000, 0.0));
  ASSERT_TRUE(surge.has_value());
  EXPECT_EQ(std::get<SetThreshold>(*surge).threshold, Priority{1});
  EXPECT_TRUE(p.surged());
  const auto subside = p.evaluate(delta_with(20, 0.0));
  ASSERT_TRUE(subside.has_value());
  EXPECT_EQ(std::get<SetThreshold>(*subside).threshold, kDefaultPriority);
  EXPECT_FALSE(p.surged());
}

TEST(BurstThreshold, QuietIntervalClosesAnOpenBurst) {
  BurstThresholdPolicy p;
  p.evaluate(delta_with(100, 0.0));                    // seed
  ASSERT_TRUE(p.evaluate(delta_with(1000, 0.0)));      // surge
  const auto action = p.evaluate(delta_with(0, 0.0));  // arrivals vanish
  ASSERT_TRUE(action.has_value());
  EXPECT_EQ(std::get<SetThreshold>(*action).threshold, kDefaultPriority);
  EXPECT_FALSE(p.surged());
}

TEST(PolicyStack, FirstEngagedActionWinsTheInterval) {
  PolicyStack stack;
  stack.push(std::make_unique<CostModelWaitPolicy>());
  stack.push(std::make_unique<OversubscriptionSchedulerPolicy>());
  ASSERT_EQ(stack.size(), 2u);
  // Both members would engage on this delta; the stack returns the wait
  // policy's action and the scheduler member keeps its interval untouched.
  StatsDelta d = delta_with(100, 0.0, 80);
  d.mean_wait_ns = 100'000.0;
  const auto first = stack.evaluate(d);
  ASSERT_TRUE(first.has_value());
  EXPECT_NE(std::get_if<SetWaitingPolicy>(&*first), nullptr);
  // Next interval: the wait member is converged (sleeping, long waits stay
  // long), so the scheduler member gets its turn.
  const auto second = stack.evaluate(d);
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(std::get_if<SetScheduler>(&*second), nullptr);
}

TEST(Policies, ZeroAcquisitionWindowsAreIgnoredEverywhere) {
  const StatsDelta quiet;  // all-zero interval
  SpinBlockHysteresisPolicy a;
  CostModelWaitPolicy b;
  ContentionSchedulerPolicy c;
  OversubscriptionSchedulerPolicy d;
  EXPECT_FALSE(a.evaluate(quiet).has_value());
  EXPECT_FALSE(b.evaluate(quiet).has_value());
  EXPECT_FALSE(c.evaluate(quiet).has_value());
  EXPECT_FALSE(d.evaluate(quiet).has_value());
  EXPECT_DOUBLE_EQ(quiet.contention_ratio(), 0.0) << "no NaN on 0/0";
}

TEST(PhaseDetector, DetectsAbruptHoldTimeChange) {
  PhaseDetector pd;
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(pd.observe(100'000.0));
  EXPECT_TRUE(pd.observe(1'000'000.0));  // 10x jump: new phase
  EXPECT_EQ(pd.phases_detected(), 1u);
}

TEST(PhaseDetector, StableWorkloadDetectsNothing) {
  PhaseDetector pd;
  Xoshiro256 rng(7);
  for (int i = 0; i < 100; ++i) {
    const double jitter = 0.9 + 0.2 * rng.next_double();
    EXPECT_FALSE(pd.observe(200'000.0 * jitter));
  }
  EXPECT_EQ(pd.phases_detected(), 0u);
}

TEST(DeltaBetween, ComputesInterval) {
  LockStats a, b;
  a.acquisitions = 10;
  a.contended_acquisitions = 2;
  a.releases = 10;
  a.timed_holds = 10;
  a.total_hold_ns = 1000;
  b.acquisitions = 30;
  b.contended_acquisitions = 12;
  b.releases = 30;
  b.timed_holds = 30;
  b.total_hold_ns = 5000;
  const StatsDelta d = delta_between(a, b);
  EXPECT_EQ(d.acquisitions, 20u);
  EXPECT_EQ(d.contended, 10u);
  EXPECT_DOUBLE_EQ(d.mean_hold_ns, 200.0);
  EXPECT_DOUBLE_EQ(d.contention_ratio(), 0.5);
}

TEST(DeltaBetween, ResetGenerationWrapUsesCurrentWindow) {
  // A monitor reset between the snapshots makes `prev` incomparable:
  // subtracting it would underflow. The delta must be exactly what the
  // current (post-reset) snapshot accumulated.
  LockStats prev, cur;
  prev.acquisitions = 1'000;
  prev.contended_acquisitions = 900;
  prev.timed_holds = 1'000;
  prev.total_hold_ns = 5'000'000;
  prev.reset_generation = 3;
  cur.acquisitions = 40;  // fewer than prev: naive subtraction wraps
  cur.contended_acquisitions = 10;
  cur.timed_holds = 40;
  cur.total_hold_ns = 8'000;
  cur.reset_generation = 4;
  const StatsDelta d = delta_between(prev, cur);
  EXPECT_EQ(d.acquisitions, 40u);
  EXPECT_EQ(d.contended, 10u);
  EXPECT_DOUBLE_EQ(d.mean_hold_ns, 200.0);
}

TEST(DeltaBetween, MonitorOffLockYieldsZeroRatioNotNaN) {
  Machine m(MachineParams::test_machine(2));
  ConfigurableLock<SimPlatform>::Options opts;
  opts.scheduler = SchedulerKind::kFcfs;
  opts.placement = Placement::on(0);
  opts.monitor_enabled = false;  // counters never move
  ConfigurableLock<SimPlatform> lock(m, opts);
  m.spawn(0, [&](Thread& t) {
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(lock.lock(t));
      lock.unlock(t);
    }
  });
  m.run();
  const LockStats s = lock.monitor().snapshot();
  EXPECT_EQ(s.acquisitions, 0u);
  EXPECT_DOUBLE_EQ(s.contention_ratio(), 0.0);
  const StatsDelta d = delta_between(LockStats{}, s);
  EXPECT_DOUBLE_EQ(d.contention_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(d.mean_hold_ns, 0.0);
}

TEST(Monitor, SnapshotIntoMatchesSnapshot) {
  Machine m(MachineParams::test_machine(2));
  ConfigurableLock<SimPlatform>::Options opts;
  opts.scheduler = SchedulerKind::kFcfs;
  opts.placement = Placement::on(0);
  opts.monitor_enabled = true;
  ConfigurableLock<SimPlatform> lock(m, opts);
  for (int i = 0; i < 2; ++i) {
    m.spawn(static_cast<ProcId>(i), [&](Thread& t) {
      for (int j = 0; j < 10; ++j) {
        ASSERT_TRUE(lock.lock(t));
        m.compute(t, 1'000);
        lock.unlock(t);
      }
    });
  }
  m.run();
  const LockStats by_value = lock.monitor().snapshot();
  LockStats in_place;
  lock.monitor().snapshot_into(in_place);
  EXPECT_EQ(in_place.acquisitions, by_value.acquisitions);
  EXPECT_EQ(in_place.contended_acquisitions, by_value.contended_acquisitions);
  EXPECT_EQ(in_place.releases, by_value.releases);
  EXPECT_EQ(in_place.total_hold_ns, by_value.total_hold_ns);
  EXPECT_EQ(in_place.timed_holds, by_value.timed_holds);
  EXPECT_EQ(in_place.reset_generation, by_value.reset_generation);
  // Reuse must fully overwrite stale contents, not accumulate into them.
  lock.monitor().snapshot_into(in_place);
  EXPECT_EQ(in_place.acquisitions, by_value.acquisitions);
}

// --------------------------------------------------- Full feedback loop ---

TEST(Adaptor, AdaptsSpinLockToBlockingOnLongCsPhase) {
  Machine m(MachineParams::test_machine(4));
  ConfigurableLock<SimPlatform>::Options opts;
  opts.scheduler = SchedulerKind::kFcfs;
  opts.attributes = LockAttributes::spin();
  opts.placement = Placement::on(0);
  opts.monitor_enabled = true;
  ConfigurableLock<SimPlatform> lock(m, opts);

  Adaptor<SimPlatform> adaptor(
      lock, std::make_unique<SpinBlockHysteresisPolicy>(
                SpinBlockHysteresisPolicy::Params{50'000.0, 10'000.0, 4, 5}));

  // Workers hold the lock for long critical sections.
  for (int i = 0; i < 2; ++i) {
    m.spawn(static_cast<ProcId>(i), [&](Thread& t) {
      for (int j = 0; j < 20; ++j) {
        ASSERT_TRUE(lock.lock(t));
        m.compute(t, 100'000);  // well above block_above
        lock.unlock(t);
        m.compute(t, 5000);
      }
    });
  }
  // The external monitoring agent periodically evaluates.
  bool adapted = false;
  m.spawn(2, [&](Thread& t) {
    // The interval must span enough acquisitions (~105us each) to pass the
    // policy's noise gate of 4 samples.
    for (int k = 0; k < 8 && !adapted; ++k) {
      m.compute(t, 600'000);
      adapted |= adaptor.step(t);
    }
  });
  m.run();
  EXPECT_TRUE(adapted);
  EXPECT_GT(lock.attributes().sleep_ns, 0u)
      << "lock should have been reconfigured to a sleeping policy";
  EXPECT_GE(lock.monitor().snapshot().reconfigurations, 1u);
  EXPECT_EQ(adaptor.actions_applied(), 1u);
}

TEST(Adaptor, SchedulerPolicyInstallsQueueUnderContention) {
  Machine m(MachineParams::test_machine(6));
  ConfigurableLock<SimPlatform>::Options opts;
  opts.scheduler = SchedulerKind::kNone;  // centralized barging
  opts.placement = Placement::on(0);
  opts.monitor_enabled = true;
  ConfigurableLock<SimPlatform> lock(m, opts);

  Adaptor<SimPlatform> adaptor(
      lock, std::make_unique<ContentionSchedulerPolicy>(
                ContentionSchedulerPolicy::Params{0.3, 0.01, 4}));

  for (int i = 0; i < 5; ++i) {
    m.spawn(static_cast<ProcId>(i), [&](Thread& t) {
      for (int j = 0; j < 25; ++j) {
        ASSERT_TRUE(lock.lock(t));
        m.compute(t, 20'000);
        lock.unlock(t);
      }
    });
  }
  m.spawn(5, [&](Thread& t) {
    for (int k = 0; k < 40; ++k) {
      m.compute(t, 100'000);
      adaptor.step(t);
    }
  });
  m.run();
  EXPECT_EQ(lock.scheduler_kind(), SchedulerKind::kFcfs);
}

/// Emits the same waiting-policy target every interval, regardless of the
/// delta - exercises the Adaptor's no-op suppression.
class AlwaysEmitPolicy final : public AdaptationPolicy {
 public:
  explicit AlwaysEmitPolicy(LockAttributes target) : target_(target) {}
  std::optional<AdaptAction> evaluate(const StatsDelta&) override {
    return AdaptAction{SetWaitingPolicy{target_}};
  }

 private:
  LockAttributes target_;
};

TEST(Adaptor, SuppressesRedundantReconfigurations) {
  Machine m(MachineParams::test_machine(2));
  ConfigurableLock<SimPlatform>::Options opts;
  opts.scheduler = SchedulerKind::kFcfs;
  opts.attributes = LockAttributes::spin();
  opts.placement = Placement::on(0);
  opts.monitor_enabled = true;
  ConfigurableLock<SimPlatform> lock(m, opts);

  // The policy keeps demanding the configuration the lock already has:
  // nothing may reach possess/configure.
  Adaptor<SimPlatform> adaptor(
      lock, std::make_unique<AlwaysEmitPolicy>(LockAttributes::spin()));
  // A genuinely different target goes through once, then suppresses again.
  Adaptor<SimPlatform> flip(
      lock, std::make_unique<AlwaysEmitPolicy>(LockAttributes::combined(5)));
  m.spawn(0, [&](Thread& t) {
    for (int k = 0; k < 3; ++k) {
      m.compute(t, 10'000);
      EXPECT_FALSE(adaptor.step(t));
    }
    EXPECT_TRUE(flip.step(t));
    EXPECT_FALSE(flip.step(t));
  });
  m.run();
  EXPECT_EQ(adaptor.actions_applied(), 0u);
  EXPECT_EQ(adaptor.actions_suppressed(), 3u);
  EXPECT_EQ(flip.actions_applied(), 1u);
  EXPECT_EQ(flip.actions_suppressed(), 1u);
  EXPECT_EQ(lock.monitor().snapshot().reconfigurations, 1u)
      << "only the flip adaptor's single reconfiguration may land";
}

}  // namespace
}  // namespace relock::adapt
