// Fissile fast-path entry/exit invariants on NativePlatform. The fast path
// has no mode word of its own - eligibility is fixed at construction and
// "fast mode" is just the contended bit of the state word being clear - so
// what these tests pin down is the lifecycle: which configurations are
// eligible at all, that uncontended cycles stay in fast mode, that the
// first contender demotes the lock to full mode, and that the lock comes
// back to fast mode on its own once waiters drain or a reconfiguration
// completes (no re-arming step exists to forget).
#include <gtest/gtest.h>

#include <thread>

#include "relock/core/configurable_lock.hpp"
#include "relock/platform/native.hpp"

namespace relock {
namespace {

using native::NativePlatform;
using Lock = ConfigurableLock<NativePlatform>;

Lock::Options opts(SchedulerKind kind = SchedulerKind::kFcfs) {
  Lock::Options o;
  o.scheduler = kind;
  o.attributes = LockAttributes::spin();
  return o;
}

/// Polls a probe until it reports `want` (bounded): the transitions under
/// test are driven by another thread's store, not by this thread's calls.
template <typename F>
void await(F&& probe, bool want) {
  const Nanos deadline = monotonic_now() + 10'000'000'000;  // 10 s
  while (probe() != want) {
    ASSERT_LT(monotonic_now(), deadline) << "probe never reached state";
    std::this_thread::yield();
  }
}

TEST(FastPath, EligibilityIsFixedByConfiguration) {
  native::Domain dom;
  // Every exclusive passive scheduler kind is fissile-eligible.
  for (SchedulerKind k :
       {SchedulerKind::kNone, SchedulerKind::kFcfs,
        SchedulerKind::kPriorityQueue, SchedulerKind::kHandoff,
        SchedulerKind::kPriorityThreshold, SchedulerKind::kQueue}) {
    Lock lk(dom, opts(k));
    EXPECT_TRUE(lk.fast_path_eligible()) << to_string(k);
  }
  // Recursion, advisory mode, active execution, and reader-writer
  // scheduling all need per-acquire bookkeeping the fast path skips.
  Lock::Options recursive = opts();
  recursive.recursive = true;
  EXPECT_FALSE(Lock(dom, recursive).fast_path_eligible());
  Lock::Options advisory = opts();
  advisory.advisory = true;
  EXPECT_FALSE(Lock(dom, advisory).fast_path_eligible());
  Lock::Options active = opts();
  active.execution = Execution::kActive;
  EXPECT_FALSE(Lock(dom, active).fast_path_eligible());
  EXPECT_FALSE(Lock(dom, opts(SchedulerKind::kReaderWriter))
                   .fast_path_eligible());
}

TEST(FastPath, UncontendedCyclesStayInFastMode) {
  native::Domain dom;
  Lock lk(dom, opts());
  native::Context ctx(dom);
  EXPECT_TRUE(lk.in_fast_mode(ctx));
  for (int i = 0; i < 100; ++i) {
    lk.lock(ctx);
    // Fast mode is a property of the contended bit, not of being free:
    // a fast hold is still fast mode, and state() still reports it held.
    EXPECT_TRUE(lk.in_fast_mode(ctx));
    EXPECT_EQ(lk.state(ctx), LockState::kLocked);
    lk.unlock(ctx);
    EXPECT_TRUE(lk.in_fast_mode(ctx));
    EXPECT_EQ(lk.state(ctx), LockState::kUnlocked);
  }
  // The conditional entry points share the fast acquire.
  EXPECT_TRUE(lk.try_lock(ctx));
  EXPECT_FALSE(lk.try_lock(ctx));  // held: single attempt fails cleanly
  lk.unlock(ctx);
  EXPECT_TRUE(lk.lock_for(ctx, 1'000'000));
  lk.unlock(ctx);
  EXPECT_TRUE(lk.in_fast_mode(ctx));
}

TEST(FastPath, ReentersFastModeAfterWaitersDrain) {
  native::Domain dom;
  Lock lk(dom, opts());
  native::Context ctx(dom);
  lk.lock(ctx);
  std::thread contender([&] {
    native::Context tctx(dom);
    lk.lock(tctx);
    lk.unlock(tctx);
  });
  // The contender's arrival mark demotes the lock to full mode while we
  // still hold it.
  await([&] { return lk.in_fast_mode(ctx); }, false);
  lk.unlock(ctx);  // contended bit set: routed through the full release
  contender.join();
  // The contender was granted by handoff (full mode is sticky across the
  // chain); its own release found nobody waiting and published the word
  // free - which is the one transition that clears the contended bit.
  EXPECT_TRUE(lk.in_fast_mode(ctx));
  lk.lock(ctx);
  EXPECT_TRUE(lk.in_fast_mode(ctx));
  lk.unlock(ctx);
}

TEST(FastPath, ReentersFastModeAfterReconfiguration) {
  native::Domain dom;
  Lock lk(dom, opts());
  native::Context ctx(dom);
  lk.lock(ctx);
  lk.unlock(ctx);
  // A scheduler swap quiesces the fast release path for its duration but
  // must hand the fast mode straight back: eligibility is construction-
  // fixed and the contended bit was never set.
  lk.configure_scheduler(ctx, SchedulerKind::kPriorityQueue);
  EXPECT_TRUE(lk.fast_path_eligible());
  EXPECT_TRUE(lk.in_fast_mode(ctx));
  lk.lock(ctx);
  lk.unlock(ctx);
  lk.configure_waiting(ctx, LockAttributes::blocking());
  EXPECT_TRUE(lk.in_fast_mode(ctx));
  // Same through a possession window (breaker armed, released unchanged).
  ASSERT_TRUE(lk.try_possess(ctx, AttributeClass::kWaitingPolicy));
  lk.lock(ctx);
  lk.unlock(ctx);  // guarded while the breaker is armed
  lk.release_possession(ctx, AttributeClass::kWaitingPolicy);
  EXPECT_TRUE(lk.in_fast_mode(ctx));
  lk.lock(ctx);
  lk.unlock(ctx);
}

TEST(FastPath, ContendedConfigureDrainsAndComesBackFast) {
  // Demote to full mode, reconfigure while a waiter exists, and verify the
  // drain still converges to fast mode afterwards.
  native::Domain dom;
  Lock lk(dom, opts());
  native::Context ctx(dom);
  lk.lock(ctx);
  std::thread contender([&] {
    native::Context tctx(dom);
    lk.lock(tctx);
    lk.unlock(tctx);
  });
  await([&] { return lk.in_fast_mode(ctx); }, false);
  lk.configure_waiting(ctx, LockAttributes::blocking());
  lk.unlock(ctx);
  contender.join();
  EXPECT_TRUE(lk.in_fast_mode(ctx));
}

}  // namespace
}  // namespace relock
