// LockTable / TxnLockSet misuse guards in a RELEASE build. Compiled with
// NDEBUG (see tests/CMakeLists.txt) like core_release_guard_test: assert()
// is out, so the table's and the 2PL driver's own LockUsageError throws
// are the only guard rails - and every guard must leave the table usable
// (a throw that wedges a slot at kSlotDeflating or leaks a pin would turn
// a caller bug into a stall for every other transaction on that key).
#ifndef NDEBUG
#error "table_release_guard_test must be compiled with NDEBUG (release mode)"
#endif

#include <gtest/gtest.h>

#include "relock/platform/native.hpp"
#include "relock/table/lock_table.hpp"
#include "relock/table/twopl.hpp"

namespace relock::table {
namespace {

using native::NativePlatform;
using Table = LockTable<NativePlatform>;
using Txn = TxnLockSet<NativePlatform>;

Table::Options opts(bool rw = false) {
  Table::Options o;
  o.capacity = 256;
  o.partitions = 4;
  o.lock_options.scheduler =
      rw ? SchedulerKind::kReaderWriter : SchedulerKind::kFcfs;
  o.lock_options.attributes = LockAttributes::spin();
  return o;
}

/// The table must survive the guard: a full cycle on the key still works.
void expect_usable(Table& t, native::Context& ctx, Table::Key k) {
  EXPECT_TRUE(t.lock(ctx, k));
  t.unlock(ctx, k);
}

TEST(TableReleaseGuard, UnlockOfUnheldKeyThrows) {
  native::Domain dom(8);
  Table t(dom, opts());
  native::Context ctx(dom);
  EXPECT_THROW(t.unlock(ctx, 1), LockUsageError);
  EXPECT_TRUE(t.lock(ctx, 1));
  t.unlock(ctx, 1);
  EXPECT_THROW(t.unlock(ctx, 1), LockUsageError);
  expect_usable(t, ctx, 1);
}

TEST(TableReleaseGuard, SharedOpsOnExclusiveTableThrow) {
  native::Domain dom(8);
  Table t(dom, opts());
  native::Context ctx(dom);
  EXPECT_THROW((void)t.lock_shared(ctx, 2), LockUsageError);
  EXPECT_THROW((void)t.try_lock_shared(ctx, 2), LockUsageError);
  EXPECT_THROW((void)t.lock_shared_for(ctx, 2, 1000), LockUsageError);
  expect_usable(t, ctx, 2);
}

TEST(TableReleaseGuard, WrongModeReleaseThrowsAndRestores) {
  native::Domain dom(8);
  Table t(dom, opts(/*rw=*/true));
  native::Context ctx(dom);
  // Inline exclusive hold, shared release: detected off the word encoding.
  EXPECT_TRUE(t.lock(ctx, 3));
  EXPECT_THROW(t.unlock_shared(ctx, 3), LockUsageError);
  t.unlock(ctx, 3);
  // Delegated shared hold, exclusive release: detected off the entry's
  // mode tally - and the guard fires BEFORE the deflation window opens,
  // so the hold (and its pin) survives and the correct release works.
  EXPECT_TRUE(t.lock_shared(ctx, 3));
  EXPECT_THROW(t.unlock(ctx, 3), LockUsageError);
  t.unlock_shared(ctx, 3);
  expect_usable(t, ctx, 3);
}

TEST(TableReleaseGuard, TwoPlUpgradeThrowsInReleaseBuild) {
  native::Domain dom(8);
  Table t(dom, opts(/*rw=*/true));
  native::Context ctx(dom);
  Txn txn(t, {.policy = DeadlockPolicy::kOrdered});
  txn.begin(1);
  EXPECT_TRUE(txn.acquire(ctx, 5, AccessMode::kRead));
  EXPECT_THROW((void)txn.acquire(ctx, 5, AccessMode::kWrite),
               LockUsageError);
  // The guard aborted nothing: the read hold is intact.
  EXPECT_EQ(txn.held_count(), 1u);
  txn.release_all(ctx);
  expect_usable(t, ctx, 5);
}

TEST(TableReleaseGuard, TwoPlPhaseViolationsThrowInReleaseBuild) {
  native::Domain dom(8);
  Table t(dom, opts());
  native::Context ctx(dom);
  Txn txn(t, {.policy = DeadlockPolicy::kOrdered});
  txn.begin(1);
  EXPECT_TRUE(txn.acquire(ctx, 6, AccessMode::kWrite));
  EXPECT_THROW((void)txn.acquire(ctx, 2, AccessMode::kWrite),
               LockUsageError);  // ordering discipline
  txn.release_all(ctx);
  EXPECT_THROW((void)txn.acquire(ctx, 7, AccessMode::kWrite),
               LockUsageError);  // acquire after shrink
  txn.begin(2);
  EXPECT_TRUE(txn.acquire(ctx, 7, AccessMode::kWrite));
  txn.release_all(ctx);
  expect_usable(t, ctx, 7);
}

TEST(TableReleaseGuard, ReservedKeyThrows) {
  native::Domain dom(8);
  Table t(dom, opts());
  native::Context ctx(dom);
  EXPECT_THROW((void)t.lock(ctx, ~std::uint64_t{0}), LockUsageError);
  expect_usable(t, ctx, 8);
}

}  // namespace
}  // namespace relock::table
