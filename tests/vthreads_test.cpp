// vthreads: the Cthreads-like user-level threads runtime, and lock
// behaviour on top of it (blocking a vthread frees its virtual processor).
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "relock/core/configurable_lock.hpp"
#include "relock/locks/spin_locks.hpp"
#include "relock/locks/blocking_lock.hpp"
#include "relock/platform/platform.hpp"
#include "relock/vthreads/platform.hpp"
#include "relock/vthreads/runtime.hpp"

namespace relock::vthreads {
namespace {

static_assert(Platform<VthreadPlatform>,
              "VthreadPlatform must satisfy the Platform concept");

TEST(VthreadRuntime, SpawnAndWaitAll) {
  Runtime rt(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    rt.spawn([&](VThread&) { ran.fetch_add(1); });
  }
  rt.wait_all();
  EXPECT_EQ(ran.load(), 10);
}

TEST(VthreadRuntime, ManyMoreThreadsThanVprocs) {
  Runtime rt(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 200; ++i) {
    rt.spawn([&](VThread& t) {
      rt.yield(t);
      ran.fetch_add(1);
    });
  }
  rt.wait_all();
  EXPECT_EQ(ran.load(), 200);
}

TEST(VthreadRuntime, YieldInterleavesThreads) {
  Runtime rt(1);  // single vproc: interleaving must come from yields
  std::vector<int> order;
  std::mutex order_mu;
  auto log = [&](int v) {
    std::lock_guard<std::mutex> lk(order_mu);
    order.push_back(v);
  };
  // Spawn both from a parent vthread so they are enqueued back-to-back
  // before either runs (spawning from the host would race the worker).
  rt.spawn([&](VThread&) {
    rt.spawn([&](VThread& t) {
      log(1);
      rt.yield(t);
      log(3);
    });
    rt.spawn([&](VThread& t) {
      log(2);
      rt.yield(t);
      log(4);
    });
  });
  rt.wait_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(VthreadRuntime, ParkUnparkRoundTrip) {
  Runtime rt(2);
  std::atomic<bool> woke{false};
  const ThreadId sleeper = rt.spawn([&](VThread& t) {
    rt.park(t);
    woke.store(true);
  });
  rt.spawn([&](VThread& t) {
    spin_for(2'000'000);  // let the sleeper park first
    (void)t;
    rt.unpark(sleeper);
  });
  rt.wait_all();
  EXPECT_TRUE(woke.load());
}

TEST(VthreadRuntime, UnparkBeforeParkLeavesToken) {
  Runtime rt(2);
  std::atomic<bool> done{false};
  const ThreadId target = rt.spawn([&](VThread& t) {
    spin_for(3'000'000);  // unpark arrives during this
    rt.park(t);           // must consume the token
    done.store(true);
  });
  rt.spawn([&](VThread&) { rt.unpark(target); });
  rt.wait_all();
  EXPECT_TRUE(done.load());
}

TEST(VthreadRuntime, ParkForTimesOut) {
  Runtime rt(1);
  bool woke = true;
  rt.spawn([&](VThread& t) { woke = rt.park_for(t, 2'000'000); });
  rt.wait_all();
  EXPECT_FALSE(woke);
}

TEST(VthreadRuntime, ParkForWokenEarly) {
  Runtime rt(2);
  std::atomic<bool> woke{false};
  const ThreadId sleeper = rt.spawn([&](VThread& t) {
    woke.store(rt.park_for(t, 5'000'000'000ULL));
  });
  rt.spawn([&](VThread&) {
    spin_for(2'000'000);
    rt.unpark(sleeper);
  });
  rt.wait_all();
  EXPECT_TRUE(woke.load());
}

TEST(VthreadRuntime, JoinWaitsForTarget) {
  Runtime rt(2);
  std::atomic<int> stage{0};
  const ThreadId worker = rt.spawn([&](VThread&) {
    spin_for(3'000'000);
    stage.store(1);
  });
  rt.spawn([&](VThread& t) {
    rt.join(t, worker);
    EXPECT_EQ(stage.load(), 1);
    stage.store(2);
  });
  rt.wait_all();
  EXPECT_EQ(stage.load(), 2);
}

TEST(VthreadRuntime, SpawnFromInsideVthread) {
  Runtime rt(2);
  std::atomic<int> ran{0};
  rt.spawn([&](VThread&) {
    for (int i = 0; i < 5; ++i) {
      rt.spawn([&](VThread&) { ran.fetch_add(1); });
    }
  });
  rt.wait_all();
  EXPECT_EQ(ran.load(), 5);
}

// ------------------------------------------------------------------------
// Locks over vthreads.
// ------------------------------------------------------------------------

TEST(VthreadLocks, SpinLockMutualExclusion) {
  Runtime rt(2);
  TtasLock<VthreadPlatform> lock(rt);
  std::uint64_t counter = 0;
  std::atomic<int> in_cs{0};
  std::atomic<bool> violation{false};
  for (int i = 0; i < 4; ++i) {
    rt.spawn([&](VThread& t) {
      for (int j = 0; j < 500; ++j) {
        lock.lock(t);
        if (in_cs.fetch_add(1) != 0) violation.store(true);
        ++counter;
        in_cs.fetch_sub(1);
        lock.unlock(t);
      }
    });
  }
  rt.wait_all();
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(counter, 2000u);
}

TEST(VthreadLocks, BlockingLockFreesVproc) {
  // One vproc, two vthreads: with a blocking lock the waiter's park lets
  // the holder run - this would deadlock with a pure spin wait on 1 vproc
  // were it not for pause()'s yield escape.
  Runtime rt(1);
  BlockingLock<VthreadPlatform> lock(rt);
  std::vector<int> order;
  rt.spawn([&](VThread& t) {
    lock.lock(t);
    rt.yield(t);  // let the second vthread attempt the lock and park
    order.push_back(1);
    lock.unlock(t);
  });
  rt.spawn([&](VThread& t) {
    lock.lock(t);  // parks; vproc returns to the holder
    order.push_back(2);
    lock.unlock(t);
  });
  rt.wait_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(VthreadLocks, ConfigurableLockAllPolicies) {
  for (const LockAttributes attrs :
       {LockAttributes::spin(), LockAttributes::blocking(),
        LockAttributes::combined(32)}) {
    Runtime rt(2);
    ConfigurableLock<VthreadPlatform>::Options o;
    o.scheduler = SchedulerKind::kFcfs;
    o.attributes = attrs;
    ConfigurableLock<VthreadPlatform> lock(rt, o);
    std::uint64_t counter = 0;
    for (int i = 0; i < 4; ++i) {
      rt.spawn([&](VThread& t) {
        for (int j = 0; j < 200; ++j) {
          ASSERT_TRUE(lock.lock(t));
          ++counter;
          lock.unlock(t);
        }
      });
    }
    rt.wait_all();
    EXPECT_EQ(counter, 800u);
  }
}

TEST(VthreadLocks, ConfigurableLockOversubscribed) {
  // 12 vthreads on 2 vprocs with a blocking policy: waiters park, so the
  // vprocs always run threads that can make progress.
  Runtime rt(2);
  ConfigurableLock<VthreadPlatform>::Options o;
  o.scheduler = SchedulerKind::kFcfs;
  o.attributes = LockAttributes::blocking();
  o.monitor_enabled = true;
  ConfigurableLock<VthreadPlatform> lock(rt, o);
  std::uint64_t counter = 0;
  for (int i = 0; i < 12; ++i) {
    rt.spawn([&](VThread& t) {
      for (int j = 0; j < 100; ++j) {
        ASSERT_TRUE(lock.lock(t));
        ++counter;
        lock.unlock(t);
      }
    });
  }
  rt.wait_all();
  EXPECT_EQ(counter, 1200u);
  EXPECT_EQ(lock.monitor().snapshot().acquisitions, 1200u);
}

}  // namespace
}  // namespace relock::vthreads
