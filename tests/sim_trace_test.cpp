// The simulator's event trace: capture, capping, digests.
#include <gtest/gtest.h>

#include "relock/sim/machine.hpp"

namespace relock::sim {
namespace {

TEST(Trace, DisabledByDefault) {
  Machine m(MachineParams::test_machine());
  m.spawn(0, [&](Thread& t) { m.compute(t, 1000); });
  m.run();
  EXPECT_TRUE(m.trace().empty());
}

TEST(Trace, CapturesEventsInOrder) {
  Machine m(MachineParams::test_machine());
  m.enable_trace();
  m.spawn(0, [&](Thread& t) {
    m.compute(t, 100);
    m.compute(t, 100);
  });
  m.run();
  ASSERT_FALSE(m.trace().empty());
  Nanos prev = 0;
  for (const TraceRecord& r : m.trace()) {
    EXPECT_GE(r.time, prev);
    prev = r.time;
  }
}

TEST(Trace, RespectsCap) {
  Machine m(MachineParams::test_machine());
  m.enable_trace(/*cap=*/3);
  m.spawn(0, [&](Thread& t) {
    for (int i = 0; i < 50; ++i) m.compute(t, 10);
  });
  m.run();
  EXPECT_EQ(m.trace().size(), 3u);
}

TEST(Trace, IdenticalProgramsIdenticalDigests) {
  auto digest = [](std::uint64_t work) {
    Machine m(MachineParams::test_machine(2));
    m.enable_trace();
    for (int i = 0; i < 2; ++i) {
      m.spawn(static_cast<ProcId>(i), [&m, work](Thread& t) {
        SimWord w(m, 0, Placement::on(0));
        for (std::uint64_t j = 0; j < work; ++j) {
          m.mem_rmw(t, w.cell(), [](std::uint64_t v) { return v + 1; });
        }
      });
    }
    m.run();
    return m.trace_digest();
  };
  EXPECT_EQ(digest(20), digest(20));
  EXPECT_NE(digest(20), digest(21));
}

TEST(Trace, ReenablingClearsOldTrace) {
  Machine m(MachineParams::test_machine());
  m.enable_trace();
  m.spawn(0, [&](Thread& t) { m.compute(t, 100); });
  m.run();
  const std::size_t first = m.trace().size();
  ASSERT_GT(first, 0u);
  m.enable_trace();
  EXPECT_TRUE(m.trace().empty());
}

}  // namespace
}  // namespace relock::sim
