// Cross-platform coverage: the sync primitives and configurable lock on the
// vthreads platform, and remaining simulator API surface (round-robin
// spawning, priorities, stats reset).
#include <gtest/gtest.h>

#include <atomic>
#include <deque>

#include "relock/core/configurable_lock.hpp"
#include "relock/locks/spin_locks.hpp"
#include "relock/sim/machine.hpp"
#include "relock/sync/barrier.hpp"
#include "relock/sync/condition_variable.hpp"
#include "relock/sync/semaphore.hpp"
#include "relock/vthreads/platform.hpp"

namespace relock {
namespace {

using vthreads::Runtime;
using vthreads::VThread;
using VP = vthreads::VthreadPlatform;

// ----------------------------------------------- sync over vthreads ------

TEST(VthreadSync, ConditionVariableProducerConsumer) {
  Runtime rt(2);
  TtasLock<VP> lock(rt);
  ConditionVariable<VP> cv(rt);
  std::deque<int> queue;
  std::vector<int> consumed;
  rt.spawn([&](VThread& t) {  // consumer
    for (int i = 0; i < 500; ++i) {
      lock.lock(t);
      cv.wait(t, lock, [&] { return !queue.empty(); });
      consumed.push_back(queue.front());
      queue.pop_front();
      lock.unlock(t);
    }
  });
  rt.spawn([&](VThread& t) {  // producer
    for (int i = 0; i < 500; ++i) {
      lock.lock(t);
      queue.push_back(i);
      lock.unlock(t);
      cv.notify_one(t);
    }
  });
  rt.wait_all();
  ASSERT_EQ(consumed.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(consumed[static_cast<std::size_t>(i)], i);
  }
}

TEST(VthreadSync, SemaphoreBoundsConcurrency) {
  Runtime rt(3);
  Semaphore<VP> sem(rt, 2, Placement::any(), LockAttributes::blocking());
  std::atomic<int> in_use{0};
  std::atomic<bool> violated{false};
  for (int i = 0; i < 9; ++i) {
    rt.spawn([&](VThread& t) {
      for (int j = 0; j < 100; ++j) {
        ASSERT_TRUE(sem.acquire(t));
        if (in_use.fetch_add(1) + 1 > 2) violated.store(true);
        in_use.fetch_sub(1);
        sem.release(t);
      }
    });
  }
  rt.wait_all();
  EXPECT_FALSE(violated.load());
}

TEST(VthreadSync, BarrierAcrossOversubscribedVprocs) {
  Runtime rt(2);
  constexpr std::uint32_t kParties = 6;  // more parties than vprocs:
  // a spinning barrier would deadlock here; the sleeping policy must not.
  Barrier<VP> barrier(rt, kParties, Placement::any(),
                      LockAttributes::combined(32, kForever));
  std::atomic<int> round_count{0};
  std::atomic<bool> torn{false};
  for (std::uint32_t i = 0; i < kParties; ++i) {
    rt.spawn([&](VThread& t) {
      for (int r = 0; r < 20; ++r) {
        round_count.fetch_add(1);
        barrier.arrive_and_wait(t);
        if (round_count.load() < (r + 1) * static_cast<int>(kParties)) {
          torn.store(true);
        }
      }
    });
  }
  rt.wait_all();
  EXPECT_FALSE(torn.load());
}

TEST(VthreadSync, ConfigurableLockConditionalTimeout) {
  Runtime rt(2);
  ConfigurableLock<VP>::Options o;
  o.scheduler = SchedulerKind::kFcfs;
  o.attributes = LockAttributes::blocking();
  ConfigurableLock<VP> lock(rt, o);
  std::atomic<bool> holder_ready{false};
  std::atomic<bool> timed_out{false};
  rt.spawn([&](VThread& t) {
    ASSERT_TRUE(lock.lock(t));
    holder_ready.store(true);
    spin_for(30'000'000);  // 30 ms
    lock.unlock(t);
  });
  rt.spawn([&](VThread& t) {
    while (!holder_ready.load()) rt.yield(t);
    timed_out.store(!lock.lock_for(t, 3'000'000));  // 3 ms << 30 ms
  });
  rt.wait_all();
  EXPECT_TRUE(timed_out.load());
}

// --------------------------------------------------- simulator extras ----

TEST(MachineExtras, AnyProcSpawnsRoundRobin) {
  sim::Machine m(sim::MachineParams::test_machine(3));
  std::vector<sim::ProcId> procs;
  for (int i = 0; i < 6; ++i) {
    const ThreadId tid =
        m.spawn(sim::kAnyProc, [](sim::Thread&) {});
    procs.push_back(m.thread(tid).processor());
  }
  m.run();
  EXPECT_EQ(procs, (std::vector<sim::ProcId>{0, 1, 2, 0, 1, 2}));
}

TEST(MachineExtras, ThreadPriorityIsVisible) {
  sim::Machine m(sim::MachineParams::test_machine(1));
  Priority seen = 0;
  const ThreadId tid = m.spawn(0, [&](sim::Thread& t) {
    seen = t.priority();
    t.set_priority(-4);
  }, /*priority=*/7);
  m.run();
  EXPECT_EQ(seen, 7);
  EXPECT_EQ(m.thread(tid).priority(), -4);
}

TEST(MachineExtras, ResetStatsClearsCounters) {
  sim::Machine m(sim::MachineParams::test_machine(2));
  m.spawn(0, [&](sim::Thread& t) {
    sim::SimWord w(m, 0, Placement::on(1));
    m.mem_write(t, w.cell(), 1);
  });
  m.run();
  EXPECT_GT(m.stats().writes_remote, 0u);
  m.reset_stats();
  EXPECT_EQ(m.stats().writes_remote, 0u);
  EXPECT_EQ(m.stats().total_references(), 0u);
}

TEST(MachineExtras, ThreadCountGrowsWithSpawns) {
  sim::Machine m(sim::MachineParams::test_machine(2));
  EXPECT_EQ(m.thread_count(), 0u);
  m.spawn(0, [](sim::Thread&) {});
  m.spawn(1, [](sim::Thread&) {});
  EXPECT_EQ(m.thread_count(), 2u);
  m.run();
  EXPECT_EQ(m.thread_count(), 2u);  // finished threads remain inspectable
}

TEST(MachineExtras, SimWordPeekDoesNotAdvanceTime) {
  sim::Machine m(sim::MachineParams::test_machine(1));
  sim::SimWord w(m, 17, Placement::on(0));
  EXPECT_EQ(w.peek(), 17u);
  EXPECT_EQ(m.now(), 0u);
}

}  // namespace
}  // namespace relock
