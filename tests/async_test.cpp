// Awaitable front-end (relock/async/) on the native platform: coroutine
// waiters ride the lock's ordinary arrival path and resume on the
// configured executor. Covers the three executors, grant-vs-timeout
// resolution, reader-writer sharing, the awaitable semaphore, and a
// many-waiters drain (waiters >> threads).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

#include "relock/async/awaiter.hpp"
#include "relock/async/manager.hpp"
#include "relock/async/semaphore.hpp"
#include "relock/async/task.hpp"
#include "relock/core/configurable_lock.hpp"
#include "relock/platform/native.hpp"

namespace {

using namespace relock;
using NP = native::NativePlatform;
using Lock = ConfigurableLock<NP>;
using relock::async::AsyncGrant;
using relock::async::AsyncLock;
using relock::async::AsyncSemaphore;
using relock::async::InlineExecutor;
using relock::async::ManagerExecutor;
using relock::async::Task;
using relock::async::ThreadPoolExecutor;

Lock::Options fcfs_opts() {
  Lock::Options o;
  o.scheduler = SchedulerKind::kFcfs;
  o.attributes = LockAttributes::spin();
  return o;
}

TEST(Async, UncontendedAcquireIsImmediate) {
  native::Domain domain;
  native::Context ctx(domain);
  Lock lock(domain, fcfs_opts());
  InlineExecutor<NP> exec;
  AsyncLock<NP> alk(lock, exec);

  bool ran = false;
  // Coroutine lambdas throughout this file are named locals, never
  // immediately-invoked temporaries: a lambda coroutine reads its captures
  // through the closure object, which the frame does NOT copy - the
  // closure must outlive every resumption.
  auto body = [&]() -> Task {
    AsyncGrant<NP> g = co_await alk.lock_async(ctx);
    EXPECT_TRUE(g.acquired());
    // Barged on the launch context: no suspension happened.
    EXPECT_EQ(&g.ctx(), &ctx);
    ran = true;
    g.unlock();
  };
  Task t = body();
  EXPECT_TRUE(t.done());
  t.rethrow();
  EXPECT_TRUE(ran);
  // The grant released: a plain cycle works.
  EXPECT_TRUE(lock.try_lock(ctx));
  lock.unlock(ctx);
}

TEST(Async, InlineExecutorResumesInsideTheRelease) {
  native::Domain domain;
  native::Context ctx(domain);
  Lock lock(domain, fcfs_opts());
  InlineExecutor<NP> exec;
  AsyncLock<NP> alk(lock, exec);

  lock.lock(ctx);
  bool entered = false;
  auto body = [&]() -> Task {
    AsyncGrant<NP> g = co_await alk.lock_async(ctx);
    EXPECT_TRUE(g.acquired());
    // Inline executor: resumed on the releasing thread's context.
    EXPECT_EQ(&g.ctx(), &ctx);
    entered = true;
    g.unlock();
  };
  Task t = body();
  EXPECT_FALSE(t.done());  // suspended behind the held lock
  EXPECT_FALSE(entered);
  lock.unlock(ctx);  // handoff resumes the frame inside this call
  EXPECT_TRUE(t.done());
  t.rethrow();
  EXPECT_TRUE(entered);
}

TEST(Async, ThreadPoolExecutorResumesOnAWorker) {
  native::Domain domain;
  native::Context ctx(domain);
  Lock lock(domain, fcfs_opts());
  ThreadPoolExecutor<NP> exec(domain, /*threads=*/2);
  AsyncLock<NP> alk(lock, exec);

  lock.lock(ctx);
  std::atomic<bool> entered{false};
  const auto main_tid = std::this_thread::get_id();
  auto body = [&]() -> Task {
    AsyncGrant<NP> g = co_await alk.lock_async(ctx);
    EXPECT_TRUE(g.acquired());
    EXPECT_NE(std::this_thread::get_id(), main_tid);
    EXPECT_NE(&g.ctx(), &ctx);
    g.unlock();
    entered.store(true, std::memory_order_release);
  };
  Task t = body();
  EXPECT_FALSE(entered.load());
  lock.unlock(ctx);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!entered.load(std::memory_order_acquire)) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "grant lost";
    std::this_thread::yield();
  }
  while (!t.done()) std::this_thread::yield();
  t.rethrow();
}

TEST(Async, ManagerExecutorTimedWaitWinsTheGrant) {
  native::Domain domain;
  native::Context ctx(domain);
  Lock lock(domain, fcfs_opts());
  ManagerExecutor<NP> mgr;
  AsyncLock<NP> alk(lock, mgr);

  // A holder releases after ~20ms; the 5s budget must comfortably win.
  std::atomic<bool> held{false};
  std::thread holder([&] {
    native::Context hctx(domain);
    lock.lock(hctx);
    held.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    lock.unlock(hctx);
  });
  while (!held.load(std::memory_order_acquire)) std::this_thread::yield();

  bool acquired = false;
  auto body = [&]() -> Task {
    AsyncGrant<NP> g = co_await alk.try_lock_for_async(ctx, 5'000'000'000);
    acquired = g.acquired();
    if (g) g.unlock();
  };
  Task t = body();
  mgr.run_until(ctx, [&] { return t.done(); });
  holder.join();
  t.rethrow();
  EXPECT_TRUE(acquired);
}

TEST(Async, ManagerExecutorTimedWaitTimesOut) {
  native::Domain domain;
  native::Context ctx(domain);
  Lock lock(domain, fcfs_opts());
  ManagerExecutor<NP> mgr;
  AsyncLock<NP> alk(lock, mgr);

  std::atomic<bool> held{false};
  std::atomic<bool> release{false};
  std::thread holder([&] {
    native::Context hctx(domain);
    lock.lock(hctx);
    held.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    lock.unlock(hctx);
  });
  while (!held.load(std::memory_order_acquire)) std::this_thread::yield();

  bool acquired = true;
  auto body = [&]() -> Task {
    AsyncGrant<NP> g = co_await alk.try_lock_for_async(ctx, 50'000'000);
    acquired = g.acquired();
  };
  Task t = body();
  mgr.run_until(ctx, [&] { return t.done(); });
  t.rethrow();
  EXPECT_FALSE(acquired);

  // The withdrawal left the queue clean: the holder's release finds nobody
  // to strand, and a plain cycle works afterwards.
  release.store(true, std::memory_order_release);
  holder.join();
  lock.lock(ctx);
  lock.unlock(ctx);
}

TEST(Async, SharedAwaitersBatchGrant) {
  native::Domain domain;
  native::Context ctx(domain);
  Lock::Options o;
  o.scheduler = SchedulerKind::kReaderWriter;
  o.attributes = LockAttributes::spin();
  Lock lock(domain, o);
  InlineExecutor<NP> exec;
  AsyncLock<NP> alk(lock, exec);

  lock.lock(ctx);  // writer holds; shared awaiters must queue
  int entered = 0;
  auto reader = [&]() -> Task {
    AsyncGrant<NP> g = co_await alk.lock_shared_async(ctx);
    EXPECT_TRUE(g.acquired());
    ++entered;
    g.unlock();
  };
  Task r1 = reader();
  Task r2 = reader();
  EXPECT_EQ(entered, 0);
  lock.unlock(ctx);  // batch grant resumes both readers inline
  EXPECT_TRUE(r1.done());
  EXPECT_TRUE(r2.done());
  r1.rethrow();
  r2.rethrow();
  EXPECT_EQ(entered, 2);
  // Both shared holds released: a writer can enter again.
  EXPECT_TRUE(lock.try_lock(ctx));
  lock.unlock(ctx);
}

TEST(Async, TimedWaitNeedsATimerExecutor) {
  native::Domain domain;
  native::Context ctx(domain);
  Lock lock(domain, fcfs_opts());
  InlineExecutor<NP> exec;
  AsyncLock<NP> alk(lock, exec);

  EXPECT_THROW((void)alk.try_lock_for_async(ctx, 0), LockUsageError);

  // A positive timeout on an executor without timers fails at suspension
  // (the lock must be held, or the barge satisfies the wait instead).
  lock.lock(ctx);
  auto body = [&]() -> Task {
    (void)co_await alk.try_lock_for_async(ctx, 1'000'000);
  };
  Task t = body();
  EXPECT_TRUE(t.done());
  EXPECT_THROW(t.rethrow(), LockUsageError);
  lock.unlock(ctx);
  // The failed submission never published a record: the lock still cycles.
  lock.lock(ctx);
  lock.unlock(ctx);
}

TEST(Async, SemaphoreGrantsFifo) {
  native::Domain domain;
  native::Context ctx(domain);
  AsyncSemaphore<NP> sem(domain, /*initial=*/0);

  std::vector<int> order;
  auto waiter = [&](int id) -> Task {
    (void)co_await sem.acquire_async(ctx);
    order.push_back(id);
  };
  Task a = waiter(1);
  Task b = waiter(2);
  EXPECT_TRUE(order.empty());
  sem.release(ctx);
  EXPECT_EQ(order, (std::vector<int>{1}));
  sem.release(ctx, 2);  // grants waiter 2, banks the second permit
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sem.count_hint(ctx), 1u);
  a.rethrow();
  b.rethrow();

  bool immediate = false;
  auto third = [&]() -> Task {
    native::Context& rctx = co_await sem.acquire_async(ctx);
    // Regression: the banked-permit path (await_ready true, no suspension)
    // must still publish the resume context - it is the launch context.
    EXPECT_EQ(&rctx, &ctx);
    immediate = true;
  };
  Task c = third();
  EXPECT_TRUE(c.done());  // banked permit: no suspension
  c.rethrow();
  EXPECT_TRUE(immediate);
  EXPECT_EQ(sem.count_hint(ctx), 0u);
}

TEST(Async, GrantReleasesDuringExceptionUnwind) {
  // Regression: a user exception thrown through a held AsyncGrant must
  // unlock on the way out (native RAII), not abandon the lock. The
  // abandon-on-unwind behavior is reserved for the checker's
  // schedule-abort (see kCheckedPlatform in the destructor).
  native::Domain domain;
  native::Context ctx(domain);
  Lock lock(domain, fcfs_opts());
  InlineExecutor<NP> exec;
  AsyncLock<NP> alk(lock, exec);

  auto body = [&]() -> Task {
    AsyncGrant<NP> g = co_await alk.lock_async(ctx);
    EXPECT_TRUE(g.acquired());
    throw std::runtime_error("boom");
  };
  Task t = body();
  EXPECT_TRUE(t.done());
  EXPECT_THROW(t.rethrow(), std::runtime_error);
  // The unwind released the lock: a plain cycle works and no waiter hangs.
  EXPECT_TRUE(lock.try_lock(ctx));
  lock.unlock(ctx);
}

TEST(Async, GrantReleasesWhenDestroyedDuringUnrelatedUnwind) {
  // A grant destroyed by ordinary code while some other exception is in
  // flight (a container of grants cleared in a destructor, say) is NOT
  // being unwound itself and must release.
  native::Domain domain;
  native::Context ctx(domain);
  Lock lock(domain, fcfs_opts());
  InlineExecutor<NP> exec;
  AsyncLock<NP> alk(lock, exec);

  struct Holder {
    std::vector<AsyncGrant<NP>> grants;
    ~Holder() { grants.clear(); }
  };
  auto body = [&]() -> Task {
    Holder h;
    h.grants.push_back(co_await alk.lock_async(ctx));
    EXPECT_TRUE(h.grants.back().acquired());
    throw std::runtime_error("boom");  // ~Holder runs mid-unwind
  };
  Task t = body();
  EXPECT_TRUE(t.done());
  EXPECT_THROW(t.rethrow(), std::runtime_error);
  EXPECT_TRUE(lock.try_lock(ctx));
  lock.unlock(ctx);
}

TEST(Async, ManyWaitersDrainInArrivalOrder) {
  // Waiters >> threads: thousands of suspended frames against one held
  // lock, drained through the manager in FIFO (FCFS) order with every
  // grant accounted for.
  constexpr int kWaiters = 2000;
  native::Domain domain;
  native::Context ctx(domain);
  Lock lock(domain, fcfs_opts());
  ManagerExecutor<NP> mgr;
  AsyncLock<NP> alk(lock, mgr);

  lock.lock(ctx);
  std::vector<int> order;
  order.reserve(kWaiters);
  std::vector<Task> tasks;
  tasks.reserve(kWaiters);
  auto waiter = [&](int id) -> Task {
    AsyncGrant<NP> g = co_await alk.lock_async(ctx);
    EXPECT_TRUE(g.acquired());
    order.push_back(id);
    g.unlock();
  };
  for (int i = 0; i < kWaiters; ++i) tasks.push_back(waiter(i));
  EXPECT_TRUE(order.empty());
  lock.unlock(ctx);  // first grant posts to the manager
  mgr.run_until(ctx, [&] {
    return order.size() == static_cast<std::size_t>(kWaiters);
  });
  for (auto& t : tasks) {
    EXPECT_TRUE(t.done());
    t.rethrow();
  }
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kWaiters));
  for (int i = 0; i < kWaiters; ++i) {
    ASSERT_EQ(order[static_cast<std::size_t>(i)], i) << "FIFO order broken";
  }
  EXPECT_TRUE(lock.try_lock(ctx));
  lock.unlock(ctx);
}

}  // namespace
