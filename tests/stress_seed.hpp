// Seeded randomness for the native stress suites. OS thread scheduling
// still varies run to run, but every test-side random choice (which policy
// to flip to, which threshold to sweep, which victim to retarget) derives
// from one seed that is printed on start and can be pinned with
// RELOCK_TEST_SEED, so a failing configuration sequence is reproducible.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace relock::testing {

/// Process-wide stress seed: RELOCK_TEST_SEED if set, otherwise derived
/// from the monotonic clock. Printed exactly once.
inline std::uint64_t stress_seed() {
  static const std::uint64_t seed = [] {
    std::uint64_t s;
    const char* env = std::getenv("RELOCK_TEST_SEED");
    if (env != nullptr && *env != '\0') {
      s = std::strtoull(env, nullptr, 0);
    } else {
      s = static_cast<std::uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count());
    }
    std::printf("[stress] RELOCK_TEST_SEED=%llu (set to reproduce)\n",
                static_cast<unsigned long long>(s));
    std::fflush(stdout);
    return s;
  }();
  return seed;
}

/// splitmix64: small, fast, and statistically fine for schedule jitter.
/// Give each thread its own stream (`SplitMix64(stress_seed() ^ salt)`).
struct SplitMix64 {
  explicit SplitMix64(std::uint64_t seed) : x(seed) {}

  std::uint64_t next() {
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }

  std::uint64_t x;
};

}  // namespace relock::testing
