// Direct-handoff release path vs. the configuration-quiescence epoch, on
// NativePlatform with real threads. The fast release publishes ownership
// with a single store to a pre-selected successor; configuration operations
// break that epoch (Dekker handshake in QuiesceGuard) and fold the cached
// pre-selection back into its queue. These tests pin down the two
// properties that folding must preserve:
//   - FCFS grant order survives epoch flips (a reconfiguration mid-storm
//     must not reorder the queue or lose the cached successor);
//   - priority-threshold semantics survive threshold raises/lowers and a
//     scheduler swap while ineligible waiters sit stranded in the
//     outgoing module.
// Runs under TSan in CI alongside the contention stress suite.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "relock/core/configurable_lock.hpp"
#include "relock/platform/native.hpp"
#include "stress_seed.hpp"

namespace relock {
namespace {

using native::NativePlatform;
using testing::SplitMix64;
using testing::stress_seed;
using Lock = ConfigurableLock<NativePlatform>;

Nanos stress_window_ns() {
  if (const char* env = std::getenv("RELOCK_STRESS_MS")) {
    return static_cast<Nanos>(std::strtoull(env, nullptr, 10)) * 1'000'000;
  }
  return 1'000'000'000;  // 1 s for the storm scenario
}

/// Waits (bounded) until the lock has registered `n` waiters.
void await_waiters(const Lock& lock, std::uint32_t n) {
  const Nanos deadline = monotonic_now() + 10'000'000'000;  // 10 s
  while (lock.waiter_count() != n) {
    ASSERT_LT(monotonic_now(), deadline)
        << "expected " << n << " waiters, have " << lock.waiter_count();
    std::this_thread::yield();
  }
}

// Waiters arrive one at a time (serialized on waiter_count) while the lock
// is held, so the FIFO arrival order is known exactly. Waiting-policy
// reconfigurations are applied while they queue - each one quiesces the
// fast path and reclaims the pre-selected successor - and again while the
// grant chain is running. Grants must still come out in arrival order.
TEST(HandoffEpoch, FcfsOrderSurvivesWaitingPolicyFlips) {
  native::Domain dom(64);
  Lock lock(dom, {.scheduler = SchedulerKind::kFcfs});
  constexpr std::uint32_t kWaiters = 6;
  constexpr int kRounds = 4;

  static const LockAttributes kPolicies[] = {
      LockAttributes::spin(), LockAttributes::blocking(),
      LockAttributes::combined(100)};

  native::Context main_ctx(dom);
  SplitMix64 rng(stress_seed());
  for (int round = 0; round < kRounds; ++round) {
    lock.lock(main_ctx);

    std::atomic<std::uint32_t> next_slot{0};
    std::uint32_t grant_order[kWaiters] = {};
    std::vector<std::thread> team;
    team.reserve(kWaiters);
    for (std::uint32_t i = 0; i < kWaiters; ++i) {
      team.emplace_back([&, i] {
        native::Context ctx(dom);
        lock.lock(ctx);
        grant_order[next_slot.fetch_add(1, std::memory_order_relaxed)] = i;
        lock.unlock(ctx);
      });
      // Serialize arrivals: thread i is queued before i+1 starts.
      await_waiters(lock, i + 1);
      // Break the epoch mid-arrival: the reconfiguration must reclaim any
      // pre-selected successor without dropping or reordering it.
      lock.configure_waiting(main_ctx,
                             kPolicies[rng.below(std::size(kPolicies))]);
    }

    lock.unlock(main_ctx);  // start the handoff chain
    // More epoch flips while grants are in flight.
    for (std::size_t f = 0; f < 8; ++f) {
      lock.configure_waiting(main_ctx,
                             kPolicies[rng.below(std::size(kPolicies))]);
      std::this_thread::yield();
    }
    for (auto& t : team) t.join();

    for (std::uint32_t i = 0; i < kWaiters; ++i) {
      EXPECT_EQ(grant_order[i], i) << "FCFS order broken at position " << i
                                   << " in round " << round;
    }
    EXPECT_EQ(lock.waiter_count(), 0u);
  }
}

// Priority-threshold semantics across a raise/lower cycle: waiters below
// the threshold stay stranded while eligible waiters are served; lowering
// the threshold on a free lock re-runs grant selection and rescues them.
TEST(HandoffEpoch, ThresholdRaiseStrandsLowerRescues) {
  native::Domain dom(64);
  Lock lock(dom, {.scheduler = SchedulerKind::kPriorityThreshold});
  constexpr std::uint32_t kLow = 3;
  constexpr std::uint32_t kHigh = 3;

  native::Context main_ctx(dom);
  lock.lock(main_ctx);
  lock.set_priority_threshold(main_ctx, 5);  // strand priorities < 5

  std::atomic<std::uint32_t> grants{0};
  std::atomic<std::uint32_t> low_grants{0};
  std::uint32_t high_seen_lows[kHigh] = {};  // lows granted before high i

  std::vector<std::thread> low_team;
  low_team.reserve(kLow);
  for (std::uint32_t i = 0; i < kLow; ++i) {
    low_team.emplace_back([&] {
      native::Context ctx(dom, /*priority=*/1);
      lock.lock(ctx);
      grants.fetch_add(1, std::memory_order_relaxed);
      low_grants.fetch_add(1, std::memory_order_relaxed);
      lock.unlock(ctx);
    });
  }
  await_waiters(lock, kLow);

  std::vector<std::thread> high_team;
  high_team.reserve(kHigh);
  for (std::uint32_t i = 0; i < kHigh; ++i) {
    high_team.emplace_back([&, i] {
      native::Context ctx(dom, /*priority=*/10);
      lock.lock(ctx);
      grants.fetch_add(1, std::memory_order_relaxed);
      high_seen_lows[i] = low_grants.load(std::memory_order_relaxed);
      lock.unlock(ctx);
    });
  }
  await_waiters(lock, kLow + kHigh);

  lock.unlock(main_ctx);
  for (auto& t : high_team) t.join();  // only the highs are eligible

  // All highs served, every one of them before any low was granted.
  EXPECT_EQ(grants.load(), kHigh);
  for (std::uint32_t i = 0; i < kHigh; ++i) {
    EXPECT_EQ(high_seen_lows[i], 0u)
        << "a sub-threshold waiter was granted while stranded";
  }
  EXPECT_EQ(lock.waiter_count(), kLow);

  // Lowering the threshold on the free lock must re-run grant selection.
  lock.set_priority_threshold(main_ctx, 0);
  for (auto& t : low_team) t.join();
  EXPECT_EQ(grants.load(), kLow + kHigh);
  EXPECT_EQ(lock.waiter_count(), 0u);
}

// Scheduler swap while ineligible waiters sit stranded in the outgoing
// module. Configuration-delay rule: the outgoing priority-threshold module
// keeps its pre-registered waiters and serves them first once they become
// eligible; arrivals after the swap register with the incoming FCFS module
// and are served - in arrival order - only after the outgoing module
// drains.
TEST(HandoffEpoch, SchedulerSwapWithStrandedWaiters) {
  native::Domain dom(64);
  Lock lock(dom, {.scheduler = SchedulerKind::kPriorityThreshold});
  constexpr std::uint32_t kStranded = 3;
  constexpr std::uint32_t kArrivals = 3;

  native::Context main_ctx(dom);
  lock.lock(main_ctx);
  lock.set_priority_threshold(main_ctx, 5);

  std::atomic<std::uint32_t> next_slot{0};
  std::uint32_t grant_order[kStranded + kArrivals] = {};

  std::vector<std::thread> team;
  team.reserve(kStranded + kArrivals);
  for (std::uint32_t i = 0; i < kStranded; ++i) {
    team.emplace_back([&] {
      native::Context ctx(dom, /*priority=*/1);  // below threshold
      lock.lock(ctx);
      // Slots [0, kStranded): pre-swap registrants must be served first.
      grant_order[next_slot.fetch_add(1, std::memory_order_relaxed)] = 0;
      lock.unlock(ctx);
    });
    await_waiters(lock, i + 1);
  }

  // Swap the scheduler out from under the stranded waiters. They stay in
  // the outgoing module under the configuration-delay rule.
  lock.configure_scheduler(main_ctx, SchedulerKind::kFcfs);
  EXPECT_TRUE(lock.reconfiguration_pending());

  for (std::uint32_t i = 0; i < kArrivals; ++i) {
    team.emplace_back([&, i] {
      native::Context ctx(dom, /*priority=*/10);
      lock.lock(ctx);
      grant_order[next_slot.fetch_add(1, std::memory_order_relaxed)] =
          kStranded + i;
      lock.unlock(ctx);
    });
    await_waiters(lock, kStranded + i + 1);
  }

  // Make the stranded waiters eligible, then release: the outgoing module
  // must drain (all stranded waiters) before the incoming FCFS module
  // serves the post-swap arrivals in their arrival order.
  lock.set_priority_threshold(main_ctx, 0);
  lock.unlock(main_ctx);
  for (auto& t : team) t.join();

  for (std::uint32_t i = 0; i < kStranded; ++i) {
    EXPECT_EQ(grant_order[i], 0u)
        << "post-swap arrival served before the outgoing module drained";
  }
  for (std::uint32_t i = 0; i < kArrivals; ++i) {
    EXPECT_EQ(grant_order[kStranded + i], kStranded + i)
        << "incoming FCFS module broke arrival order at " << i;
  }
  EXPECT_EQ(lock.waiter_count(), 0u);
  EXPECT_FALSE(lock.reconfiguration_pending());
  EXPECT_EQ(lock.scheduler_kind(), SchedulerKind::kFcfs);
}

// Storm: workers of mixed priority hammer the lock through conditional
// acquisitions while a reconfigurator raises and lowers the threshold and
// flips the waiting policy - every flip is an epoch break racing live fast
// handoffs. Oracle: mutual exclusion, ops conservation, and no waiter or
// pre-selection leaked once the storm drains.
TEST(HandoffEpoch, ThresholdChurnStormKeepsExclusionAndConservation) {
  native::Domain dom(64);
  Lock lock(dom, {.scheduler = SchedulerKind::kPriorityThreshold});

  std::atomic<bool> stop{false};
  std::atomic<std::uint32_t> in_cs{0};
  std::atomic<std::uint64_t> ops{0};
  std::atomic<std::uint64_t> violations{0};
  std::uint64_t shared_counter = 0;  // guarded by the lock under test

  const unsigned workers = 6;
  std::vector<std::thread> team;
  team.reserve(workers + 1);
  for (unsigned t = 0; t < workers; ++t) {
    team.emplace_back([&, t] {
      // Priorities 0..5: the reconfigurator's threshold sweep strands a
      // changing subset; conditional acquisition keeps them live.
      native::Context ctx(dom, static_cast<Priority>(t));
      while (!stop.load(std::memory_order_relaxed)) {
        if (!lock.lock_for(ctx, 200'000)) continue;  // 200 us, may strand
        if (in_cs.fetch_add(1, std::memory_order_acq_rel) != 0) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
        ++shared_counter;
        in_cs.fetch_sub(1, std::memory_order_acq_rel);
        ops.fetch_add(1, std::memory_order_relaxed);
        lock.unlock(ctx);
      }
    });
  }
  team.emplace_back([&] {
    native::Context ctx(dom);
    static const LockAttributes kPolicies[] = {
        LockAttributes::spin(), LockAttributes::combined(100),
        LockAttributes::blocking()};
    SplitMix64 rng(stress_seed() ^ 0x5707u);
    const Nanos deadline = monotonic_now() + stress_window_ns();
    while (monotonic_now() < deadline) {
      lock.set_priority_threshold(
          ctx, static_cast<Priority>(rng.below(workers + 1)));  // 0..6
      lock.configure_waiting(ctx, kPolicies[rng.below(std::size(kPolicies))]);
      std::this_thread::yield();
    }
    lock.set_priority_threshold(ctx, 0);  // let the storm drain
    stop.store(true, std::memory_order_relaxed);
  });
  for (auto& th : team) th.join();

  native::Context main_ctx(dom);
  lock.lock(main_ctx);
  const std::uint64_t counted = shared_counter;
  lock.unlock(main_ctx);

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(counted, ops.load());
  EXPECT_GT(ops.load(), 0u);
  EXPECT_EQ(lock.waiter_count(), 0u);
}

}  // namespace
}  // namespace relock
