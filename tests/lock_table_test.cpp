// LockTable unit + concurrency coverage: partition routing, inline-word
// acquire/release/try/timeout semantics, the inflate-on-contention /
// deflate-on-idle lifecycle (including configure-while-inline forcing a
// sticky inflation), a multi-thread hammer with per-key ownership oracles,
// and the footprint bounds the design is sold on (16 bytes per idle lock
// at one million entries).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "relock/platform/native.hpp"
#include "relock/table/lock_table.hpp"
#include "stress_seed.hpp"

namespace relock::table {
namespace {

using native::NativePlatform;
using Table = LockTable<NativePlatform>;

// The native table word must not inherit native::Word's cache-line
// padding: two of them are the whole per-lock budget.
static_assert(sizeof(TableOps<NativePlatform>::Word) == 8);

Table::Options small_options(std::uint32_t capacity = 1024,
                             std::uint32_t partitions = 8) {
  Table::Options o;
  o.capacity = capacity;
  o.partitions = partitions;
  o.lock_options.scheduler = SchedulerKind::kFcfs;
  o.lock_options.attributes = LockAttributes::spin();
  return o;
}

TEST(LockTableLayout, GeometryIsPowerOfTwoAndClamped) {
  native::Domain dom(16);
  {
    Table t(dom, small_options(1000, 7));
    EXPECT_EQ(t.capacity(), 1024u);
    EXPECT_EQ(t.partition_count(), 8u);
    EXPECT_EQ(t.slots_per_partition() * t.partition_count(), t.capacity());
  }
  {
    // More partitions than slots: clamped so each stripe keeps >= 1 slot.
    Table t(dom, small_options(8, 512));
    EXPECT_EQ(t.capacity(), 8u);
    EXPECT_LE(t.partition_count(), 8u);
    EXPECT_GE(t.slots_per_partition(), 1u);
  }
}

TEST(LockTableLayout, PartitionRoutingIsStableAndSpreads) {
  native::Domain dom(16);
  Table t(dom, small_options(1 << 12, 16));
  std::set<std::uint32_t> seen;
  for (std::uint64_t k = 0; k < 4096; ++k) {
    const std::uint32_t p = t.partition_of(k);
    EXPECT_LT(p, t.partition_count());
    EXPECT_EQ(p, t.partition_of(k));  // pure function of the key
    seen.insert(p);
  }
  // splitmix-mixed high bits: 4096 keys must not collapse onto a stripe.
  EXPECT_EQ(seen.size(), t.partition_count());
}

TEST(LockTableLayout, IdleMillionEntryTableCosts16BytesPerLock) {
  native::Domain dom(16);
  Table t(dom, small_options(1u << 20, 64));
  ASSERT_EQ(t.capacity(), 1u << 20);
  // The acceptance bound: <= 16 bytes/lock idle. The slot array is the
  // entire per-lock cost, and it is exactly two unpadded words.
  EXPECT_EQ(t.footprint_bytes(), std::uint64_t{16} * t.capacity());
  EXPECT_LE(t.footprint_bytes() / t.capacity(), 16u);
  // Stripe headers are O(partitions), not per-lock: under 1% of the array.
  EXPECT_LE(t.overhead_bytes() * 100, t.footprint_bytes());
}

TEST(LockTableInline, AcquireReleaseTryTimeoutSemantics) {
  native::Domain dom(16);
  Table t(dom, small_options());
  native::Context ctx(dom);
  const Table::Key k = 42;

  EXPECT_TRUE(t.lock(ctx, k));
  EXPECT_FALSE(t.inflated(ctx, k));  // uncontended stays inline
  // The inline word tracks no owner and no recursion: a second attempt
  // from anyone - including the holder - is simply "held".
  EXPECT_FALSE(t.try_lock(ctx, k));
  EXPECT_FALSE(t.inflated(ctx, k));  // try against inline never inflates
  t.unlock(ctx, k);

  EXPECT_TRUE(t.try_lock(ctx, k));
  // A timed acquire against a held key inflates, waits, expires.
  EXPECT_FALSE(t.lock_for(ctx, k, 2'000'000));
  t.unlock(ctx, k);
  EXPECT_TRUE(t.lock(ctx, k));
  t.unlock(ctx, k);
}

TEST(LockTableInline, DistinctKeysAreIndependent) {
  native::Domain dom(16);
  Table t(dom, small_options());
  native::Context ctx(dom);
  for (std::uint64_t k = 100; k < 132; ++k) EXPECT_TRUE(t.lock(ctx, k));
  EXPECT_EQ(t.size(), 32u);
  for (std::uint64_t k = 100; k < 132; ++k) EXPECT_FALSE(t.try_lock(ctx, k));
  for (std::uint64_t k = 100; k < 132; ++k) t.unlock(ctx, k);
  for (std::uint64_t k = 100; k < 132; ++k) {
    EXPECT_TRUE(t.try_lock(ctx, k));
    t.unlock(ctx, k);
  }
}

TEST(LockTableInline, MisuseThrowsInAllBuildTypes) {
  native::Domain dom(16);
  Table t(dom, small_options());
  native::Context ctx(dom);
  EXPECT_THROW(t.unlock(ctx, 7), LockUsageError);  // never locked
  EXPECT_TRUE(t.lock(ctx, 7));
  t.unlock(ctx, 7);
  EXPECT_THROW(t.unlock(ctx, 7), LockUsageError);  // not held
  EXPECT_THROW(t.lock_shared(ctx, 7), LockUsageError);     // not rw-capable
  EXPECT_THROW(t.try_lock_shared(ctx, 7), LockUsageError);
  EXPECT_THROW((void)t.lock(ctx, ~std::uint64_t{0}), LockUsageError);
}

TEST(LockTableInline, FullPartitionThrowsLengthError) {
  native::Domain dom(16);
  Table t(dom, small_options(4, 1));
  native::Context ctx(dom);
  std::uint64_t inserted = 0, k = 0;
  try {
    for (; k < 64; ++k) {
      EXPECT_TRUE(t.lock(ctx, k));
      ++inserted;
    }
    FAIL() << "a 4-slot table accepted 64 keys";
  } catch (const std::length_error&) {
    EXPECT_EQ(inserted, 4u);
  }
  for (std::uint64_t i = 0; i < inserted; ++i) t.unlock(ctx, i);
}

TEST(LockTableLifecycle, ContentionInflatesIdleDeflates) {
  native::Domain dom(16);
  Table t(dom, small_options());
  const Table::Key k = 9;
  std::atomic<bool> held{false};
  std::atomic<bool> release{false};

  std::thread holder([&] {
    native::Context ctx(dom);
    ASSERT_TRUE(t.lock(ctx, k));
    held.store(true);
    while (!release.load()) std::this_thread::yield();
    t.unlock(ctx, k);
  });
  while (!held.load()) std::this_thread::yield();

  std::thread contender([&] {
    native::Context ctx(dom);
    ASSERT_TRUE(t.lock(ctx, k));  // arrives second: forces inflation
    t.unlock(ctx, k);
  });
  {
    // The contender inflates before waiting; observe it from outside.
    native::Context ctx(dom);
    while (!t.inflated(ctx, k)) std::this_thread::yield();
  }
  release.store(true);
  holder.join();
  contender.join();

  // Idle again: the last delegated release deflated all the way back.
  EXPECT_EQ(t.quiescent_word(k), kSlotFree);
  EXPECT_EQ(t.inflated_count(), 0u);
  EXPECT_GE(t.entries_allocated(), 1u);  // pooled, not freed

  // The pooled entry is reused by the next inflation cycle.
  const std::uint64_t allocated = t.entries_allocated();
  {
    native::Context ctx(dom);
    t.inflate(ctx, k);
    EXPECT_TRUE(t.lock(ctx, k));
    t.unlock(ctx, k);
  }
  EXPECT_EQ(t.entries_allocated(), allocated);
  EXPECT_EQ(t.quiescent_word(k), kSlotFree);
}

TEST(LockTableLifecycle, ConfigureWhileInlineForcesStickyInflation) {
  native::Domain dom(16);
  Table t(dom, small_options());
  native::Context ctx(dom);
  const Table::Key k = 13;

  EXPECT_TRUE(t.lock(ctx, k));  // inline hold
  t.configure_waiting(ctx, k, LockAttributes::backoff_spin(8));
  EXPECT_TRUE(t.inflated(ctx, k));  // configuration cannot live inline
  // The pre-configuration inline hold is still the exclusive hold.
  EXPECT_FALSE(t.try_lock(ctx, k));
  t.unlock(ctx, k);

  // Sticky: cycles come and go, the configured entry never deflates.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(t.lock(ctx, k));
    t.unlock(ctx, k);
  }
  EXPECT_TRUE(t.inflated(ctx, k));
  EXPECT_EQ(t.inflated_count(), 1u);
  EXPECT_NE(t.quiescent_word(k), kSlotFree);
}

TEST(LockTableRw, SharedAcquisitionDelegatesAndCoexists) {
  Table::Options o = small_options();
  o.lock_options.scheduler = SchedulerKind::kReaderWriter;
  native::Domain rwdom(16);
  Table t(rwdom, o);
  ASSERT_TRUE(t.rw_capable());
  native::Context r1(rwdom), r2(rwdom);
  const Table::Key k = 3;

  EXPECT_TRUE(t.lock_shared(r1, k));
  EXPECT_TRUE(t.inflated(r1, k));  // shared never lives in the inline word
  EXPECT_TRUE(t.try_lock_shared(r2, k));  // readers coexist
  EXPECT_FALSE(t.try_lock(r2, k));        // writer excluded
  t.unlock_shared(r2, k);
  EXPECT_THROW(t.unlock(r1, k), LockUsageError);  // wrong-mode release
  t.unlock_shared(r1, k);

  // Writers drain readers; last release deflates like the exclusive path.
  EXPECT_EQ(t.quiescent_word(k), kSlotFree);
  EXPECT_TRUE(t.lock(r1, k));
  EXPECT_FALSE(t.try_lock_shared(r2, k));
  t.unlock(r1, k);
  EXPECT_EQ(t.inflated_count(), 0u);
}

// Multi-thread hammer: every key carries an ownership oracle (an atomic
// the exclusive holder increments on entry and decrements on exit; any
// overlap trips the EXPECT inside the critical section).
TEST(LockTableStress, HammerExclusiveOwnershipOracle) {
  native::Domain dom(32);
  Table t(dom, small_options(256, 4));
  constexpr int kThreads = 4;
  constexpr int kKeys = 16;
  constexpr int kIters = 4000;
  std::atomic<int> owners[kKeys] = {};
  std::atomic<std::uint64_t> acquired{0};

  std::vector<std::thread> team;
  team.reserve(kThreads);
  for (int ti = 0; ti < kThreads; ++ti) {
    team.emplace_back([&, ti] {
      native::Context ctx(dom);
      testing::SplitMix64 rng(testing::stress_seed() ^
                              (0x1234u + static_cast<unsigned>(ti)));
      std::uint64_t got = 0;
      for (int i = 0; i < kIters; ++i) {
        const auto k = static_cast<Table::Key>(rng.below(kKeys));
        const std::uint64_t die = rng.below(3);
        bool own = false;
        if (die == 0) {
          own = t.try_lock(ctx, k);
        } else {
          own = t.lock(ctx, k);
        }
        if (!own) continue;
        const int inside = owners[k].fetch_add(1, std::memory_order_acq_rel);
        EXPECT_EQ(inside, 0) << "two exclusive holders on key " << k;
        ++got;
        owners[k].fetch_sub(1, std::memory_order_acq_rel);
        t.unlock(ctx, k);
      }
      acquired.fetch_add(got, std::memory_order_relaxed);
    });
  }
  for (auto& th : team) th.join();

  EXPECT_GT(acquired.load(), 0u);
  // Quiescence: every slot fully deflated (no timeouts in this mix, so
  // the last releaser of each key always runs the deflation protocol).
  for (int k = 0; k < kKeys; ++k) {
    EXPECT_EQ(t.quiescent_word(static_cast<Table::Key>(k)), kSlotFree);
  }
  EXPECT_EQ(t.inflated_count(), 0u);
}

// Same oracle with timed acquisitions in the mix: expired waiters back
// out through the delegated-abandon path. That path may leave an entry
// attached with no users (deflated lazily by the next cycle), so the
// end-state oracle checks ownership and held-bits, not full deflation.
TEST(LockTableStress, HammerWithTimeoutsBacksOutCleanly) {
  native::Domain dom(32);
  Table t(dom, small_options(256, 4));
  constexpr int kThreads = 4;
  constexpr int kKeys = 8;
  constexpr int kIters = 2000;
  std::atomic<int> owners[kKeys] = {};

  std::vector<std::thread> team;
  team.reserve(kThreads);
  for (int ti = 0; ti < kThreads; ++ti) {
    team.emplace_back([&, ti] {
      native::Context ctx(dom);
      testing::SplitMix64 rng(testing::stress_seed() ^
                              (0x9999u + static_cast<unsigned>(ti)));
      for (int i = 0; i < kIters; ++i) {
        const auto k = static_cast<Table::Key>(rng.below(kKeys));
        const bool timed = rng.below(2) == 0;
        const bool own = timed ? t.lock_for(ctx, k, 50'000)  // 50 us
                               : t.lock(ctx, k);
        if (!own) continue;
        const int inside = owners[k].fetch_add(1, std::memory_order_acq_rel);
        EXPECT_EQ(inside, 0) << "two exclusive holders on key " << k;
        owners[k].fetch_sub(1, std::memory_order_acq_rel);
        t.unlock(ctx, k);
      }
    });
  }
  for (auto& th : team) th.join();

  for (int k = 0; k < kKeys; ++k) {
    const std::uint64_t w = t.quiescent_word(static_cast<Table::Key>(k));
    EXPECT_EQ(w & kSlotHeld, 0u) << "key " << k << " still marked held";
    EXPECT_NE(w, kSlotDeflating) << "key " << k << " stuck deflating";
    EXPECT_EQ(owners[k].load(), 0);
  }
}

}  // namespace
}  // namespace relock::table
