// The sync module: condition variables, semaphores, barriers - exercised on
// the simulator (deterministic) and natively (real concurrency).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "relock/locks/spin_locks.hpp"
#include "relock/platform/native.hpp"
#include "relock/sim/machine.hpp"
#include "relock/sync/barrier.hpp"
#include "relock/sync/condition_variable.hpp"
#include "relock/sync/semaphore.hpp"

namespace relock {
namespace {

using sim::Machine;
using sim::MachineParams;
using sim::ProcId;
using sim::SimPlatform;
using sim::Thread;
using NP = native::NativePlatform;

// ------------------------------------------------- ConditionVariable -----

TEST(CondVarSim, WaitNotifyOne) {
  Machine m(MachineParams::test_machine(3));
  TtasLock<SimPlatform> lock(m, Placement::on(0));
  ConditionVariable<SimPlatform> cv(m, Placement::on(0));
  bool ready = false;
  std::vector<int> order;
  m.spawn(0, [&](Thread& t) {
    lock.lock(t);
    cv.wait(t, lock, [&] { return ready; });
    order.push_back(2);
    lock.unlock(t);
  });
  m.spawn(1, [&](Thread& t) {
    m.compute(t, 50'000);  // let the waiter park
    lock.lock(t);
    ready = true;
    order.push_back(1);
    lock.unlock(t);
    cv.notify_one(t);
  });
  m.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(CondVarSim, NotifyAllWakesEveryWaiter) {
  Machine m(MachineParams::test_machine(6));
  TtasLock<SimPlatform> lock(m, Placement::on(0));
  ConditionVariable<SimPlatform> cv(m, Placement::on(0));
  bool go = false;
  int released = 0;
  for (int i = 0; i < 5; ++i) {
    m.spawn(static_cast<ProcId>(i), [&](Thread& t) {
      lock.lock(t);
      cv.wait(t, lock, [&] { return go; });
      ++released;
      lock.unlock(t);
    });
  }
  m.spawn(5, [&](Thread& t) {
    m.compute(t, 100'000);
    lock.lock(t);
    go = true;
    lock.unlock(t);
    cv.notify_all(t);
  });
  m.run();
  EXPECT_EQ(released, 5);
}

TEST(CondVarSim, WaitForTimesOutAndReacquiresLock) {
  Machine m(MachineParams::test_machine(2));
  TtasLock<SimPlatform> lock(m, Placement::on(0));
  ConditionVariable<SimPlatform> cv(m, Placement::on(0));
  bool timed_out = false;
  m.spawn(0, [&](Thread& t) {
    lock.lock(t);
    timed_out = !cv.wait_for(t, lock, 50'000);
    // The lock must be held again here.
    EXPECT_FALSE(lock.try_lock(t));
    lock.unlock(t);
  });
  m.run();
  EXPECT_TRUE(timed_out);
}

TEST(CondVarSim, WaitForReturnsTrueWhenNotified) {
  Machine m(MachineParams::test_machine(3));
  TtasLock<SimPlatform> lock(m, Placement::on(0));
  ConditionVariable<SimPlatform> cv(m, Placement::on(0));
  bool got = false;
  m.spawn(0, [&](Thread& t) {
    lock.lock(t);
    got = cv.wait_for(t, lock, 10'000'000);
    lock.unlock(t);
  });
  m.spawn(1, [&](Thread& t) {
    m.compute(t, 50'000);
    cv.notify_one(t);
  });
  m.run();
  EXPECT_TRUE(got);
}

TEST(CondVarSim, NotifyWithoutWaitersIsANoop) {
  Machine m(MachineParams::test_machine(2));
  ConditionVariable<SimPlatform> cv(m, Placement::on(0));
  bool done = false;
  m.spawn(0, [&](Thread& t) {
    cv.notify_one(t);
    cv.notify_all(t);
    done = true;
  });
  m.run();
  EXPECT_TRUE(done);
}

TEST(CondVarNative, ProducerConsumerQueue) {
  native::Domain dom;
  TtasLock<NP> lock(dom);
  ConditionVariable<NP> cv(dom);
  std::deque<int> queue;
  constexpr int kItems = 2000;
  std::vector<int> consumed;
  std::thread consumer([&] {
    native::Context ctx(dom);
    for (int i = 0; i < kItems; ++i) {
      lock.lock(ctx);
      cv.wait(ctx, lock, [&] { return !queue.empty(); });
      consumed.push_back(queue.front());
      queue.pop_front();
      lock.unlock(ctx);
    }
  });
  std::thread producer([&] {
    native::Context ctx(dom);
    for (int i = 0; i < kItems; ++i) {
      lock.lock(ctx);
      queue.push_back(i);
      lock.unlock(ctx);
      cv.notify_one(ctx);
    }
  });
  producer.join();
  consumer.join();
  ASSERT_EQ(consumed.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(consumed[static_cast<std::size_t>(i)], i);
}

// ---------------------------------------------------------- Semaphore ----

TEST(SemaphoreSim, InitialPermitsAreConsumable) {
  Machine m(MachineParams::test_machine(2));
  Semaphore<SimPlatform> sem(m, 2, Placement::on(0));
  int acquired = 0;
  m.spawn(0, [&](Thread& t) {
    if (sem.try_acquire(t)) ++acquired;
    if (sem.try_acquire(t)) ++acquired;
    if (sem.try_acquire(t)) ++acquired;  // exhausted
  });
  m.run();
  EXPECT_EQ(acquired, 2);
}

TEST(SemaphoreSim, ReleaseWakesBlockedAcquirer) {
  Machine m(MachineParams::test_machine(3));
  Semaphore<SimPlatform> sem(m, 0, Placement::on(0),
                             LockAttributes::blocking());
  std::vector<int> order;
  m.spawn(0, [&](Thread& t) {
    ASSERT_TRUE(sem.acquire(t));  // blocks until released
    order.push_back(2);
  });
  m.spawn(1, [&](Thread& t) {
    m.compute(t, 50'000);
    order.push_back(1);
    sem.release(t);
  });
  m.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SemaphoreSim, BatchReleaseGrantsFifo) {
  Machine m(MachineParams::test_machine(5));
  Semaphore<SimPlatform> sem(m, 0, Placement::on(0),
                             LockAttributes::blocking());
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    m.spawn(static_cast<ProcId>(i), [&, i](Thread& t) {
      m.compute(t, static_cast<Nanos>(1000 * (i + 1)));  // staggered
      ASSERT_TRUE(sem.acquire(t));
      order.push_back(i);
    });
  }
  m.spawn(3, [&](Thread& t) {
    m.compute(t, 100'000);
    sem.release(t, 3);
  });
  m.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SemaphoreSim, AcquireForTimesOut) {
  Machine m(MachineParams::test_machine(2));
  Semaphore<SimPlatform> sem(m, 0, Placement::on(0),
                             LockAttributes::combined(3, 10'000));
  bool got = true;
  m.spawn(0, [&](Thread& t) { got = sem.acquire_for(t, 80'000); });
  m.run();
  EXPECT_FALSE(got);
}

TEST(SemaphoreSim, TimedOutWaiterDoesNotConsumeLaterPermit) {
  Machine m(MachineParams::test_machine(3));
  Semaphore<SimPlatform> sem(m, 0, Placement::on(0),
                             LockAttributes::blocking());
  bool first_got = true, second_got = false;
  m.spawn(0, [&](Thread& t) {
    first_got = sem.acquire_for(t, 30'000);  // times out at t=30us
  });
  m.spawn(1, [&](Thread& t) {
    m.compute(t, 200'000);
    sem.release(t);               // after the timeout
    second_got = sem.try_acquire(t);  // the permit must still be there
  });
  m.run();
  EXPECT_FALSE(first_got);
  EXPECT_TRUE(second_got);
}

TEST(SemaphoreNative, BoundedResourcePool) {
  native::Domain dom;
  Semaphore<NP> sem(dom, 3, Placement::any(), LockAttributes::blocking());
  std::atomic<int> in_use{0};
  std::atomic<int> max_in_use{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      native::Context ctx(dom);
      for (int j = 0; j < 300; ++j) {
        ASSERT_TRUE(sem.acquire(ctx));
        const int now = in_use.fetch_add(1) + 1;
        int prev = max_in_use.load();
        while (now > prev && !max_in_use.compare_exchange_weak(prev, now)) {
        }
        in_use.fetch_sub(1);
        sem.release(ctx);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(max_in_use.load(), 3) << "semaphore bound violated";
  EXPECT_GE(max_in_use.load(), 1);
}

// ------------------------------------------------------------ Barrier ----

TEST(BarrierSim, ReleasesAllPartiesTogether) {
  Machine m(MachineParams::test_machine(4));
  Barrier<SimPlatform> barrier(m, 4, Placement::on(0));
  int arrived = 0;
  bool early_exit = false;
  for (int i = 0; i < 4; ++i) {
    m.spawn(static_cast<ProcId>(i), [&, i](Thread& t) {
      m.compute(t, static_cast<Nanos>(5000 * (i + 1)));
      ++arrived;
      barrier.arrive_and_wait(t);
      if (arrived != 4) early_exit = true;
    });
  }
  m.run();
  EXPECT_FALSE(early_exit) << "a thread passed the barrier early";
}

TEST(BarrierSim, ReusableAcrossGenerations) {
  Machine m(MachineParams::test_machine(3));
  Barrier<SimPlatform> barrier(m, 3, Placement::on(0));
  constexpr int kRounds = 10;
  int phase_counts[kRounds] = {};
  bool torn = false;
  for (int i = 0; i < 3; ++i) {
    m.spawn(static_cast<ProcId>(i), [&, i](Thread& t) {
      for (int r = 0; r < kRounds; ++r) {
        m.compute(t, static_cast<Nanos>(1000 * (i + 1)));
        ++phase_counts[r];
        barrier.arrive_and_wait(t);
        if (phase_counts[r] != 3) torn = true;  // all must arrive first
      }
    });
  }
  m.run();
  EXPECT_FALSE(torn);
}

TEST(BarrierSim, SleepingBarrierWakesSleepers) {
  Machine m(MachineParams::test_machine(3));
  Barrier<SimPlatform> barrier(m, 3, Placement::on(0),
                               LockAttributes::combined(4, kForever));
  int passed = 0;
  for (int i = 0; i < 3; ++i) {
    m.spawn(static_cast<ProcId>(i), [&, i](Thread& t) {
      m.compute(t, static_cast<Nanos>(50'000 * (i + 1)));  // long stagger
      barrier.arrive_and_wait(t);
      ++passed;
    });
  }
  m.run();
  EXPECT_EQ(passed, 3);
  EXPECT_GE(m.stats().blocks, 1u) << "staggered arrivals should sleep";
}

TEST(BarrierSim, TimedSleepBarrierCompletes) {
  // Finite sleep slices: sleepers wake periodically, re-check, complete.
  Machine m(MachineParams::test_machine(3));
  Barrier<SimPlatform> barrier(m, 3, Placement::on(0),
                               LockAttributes::combined(2, 20'000));
  int passed = 0;
  for (int i = 0; i < 3; ++i) {
    m.spawn(static_cast<ProcId>(i), [&, i](Thread& t) {
      m.compute(t, static_cast<Nanos>(40'000 * (i + 1)));
      barrier.arrive_and_wait(t);
      ++passed;
    });
  }
  m.run();
  EXPECT_EQ(passed, 3);
}

TEST(BarrierNative, PhasedComputation) {
  native::Domain dom;
  constexpr int kThreads = 4, kRounds = 50;
  Barrier<NP> barrier(dom, kThreads, Placement::any(),
                      LockAttributes::combined(256, kForever));
  std::atomic<int> counts[kRounds];
  for (auto& c : counts) c.store(0);
  std::atomic<bool> torn{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      native::Context ctx(dom);
      for (int r = 0; r < kRounds; ++r) {
        counts[r].fetch_add(1);
        barrier.arrive_and_wait(ctx);
        if (counts[r].load() != kThreads) torn.store(true);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(torn.load());
}

}  // namespace
}  // namespace relock
