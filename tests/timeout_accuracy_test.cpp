// Timed-acquire deadline accuracy. The deadline for lock_for must be
// anchored at the moment the acquire STARTS, not lazily at the first time
// the wait loop happens to read the clock. The distinction only matters
// when the monitor's clock elision sets t0 = 0 (monitor disabled or the
// timing sampler skipping this operation) - so the same scenario runs with
// the monitor both off and on, and over both wait structures (the
// centralized barging word and a queued FCFS scheduler).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "relock/core/configurable_lock.hpp"
#include "relock/platform/native.hpp"
#include "relock/sync/barrier.hpp"
#include "relock/sync/condition_variable.hpp"
#include "relock/sync/semaphore.hpp"

namespace {

using namespace relock;
using NP = native::NativePlatform;
using Lock = ConfigurableLock<NP>;
using Clock = std::chrono::steady_clock;

constexpr auto kTimeout = std::chrono::milliseconds(60);
constexpr Nanos kTimeoutNs =
    std::chrono::duration_cast<std::chrono::nanoseconds>(kTimeout).count();
// CI containers stall threads for long stretches; only gross re-anchoring
// (or a lost deadline) should trip the upper bound.
constexpr auto kSlack = std::chrono::milliseconds(900);

void expect_timeout_accurate(SchedulerKind kind, bool monitor_on) {
  native::Domain domain;
  Lock::Options opts;
  opts.scheduler = kind;
  opts.attributes = LockAttributes::blocking();
  opts.monitor_enabled = monitor_on;
  Lock lock(domain, opts);

  std::atomic<bool> held{false};
  std::atomic<bool> done{false};
  // The holder keeps the lock until the waiter has finished timing out, so
  // the waiter's only way out is its deadline.
  std::thread holder([&] {
    native::Context ctx(domain);
    lock.lock(ctx);
    held.store(true, std::memory_order_release);
    while (!done.load(std::memory_order_acquire)) std::this_thread::yield();
    lock.unlock(ctx);
  });
  while (!held.load(std::memory_order_acquire)) std::this_thread::yield();

  native::Context ctx(domain);
  const auto start = Clock::now();
  const bool acquired = lock.lock_for(ctx, kTimeoutNs);
  const auto elapsed = Clock::now() - start;
  done.store(true, std::memory_order_release);
  holder.join();

  EXPECT_FALSE(acquired) << to_string(kind)
                         << " monitor=" << monitor_on;
  // Lower bound: lock_for may not give up early. The wait began no later
  // than `start`, so the full timeout fits inside `elapsed`.
  EXPECT_GE(elapsed, kTimeout - std::chrono::milliseconds(2))
      << to_string(kind) << " monitor=" << monitor_on;
  EXPECT_LE(elapsed, kTimeout + kSlack)
      << to_string(kind) << " monitor=" << monitor_on;

  // And the lock is untouched by the withdrawal: a plain cycle succeeds.
  lock.lock(ctx);
  lock.unlock(ctx);
}

TEST(TimeoutAccuracy, CentralizedMonitorOff) {
  expect_timeout_accurate(SchedulerKind::kNone, /*monitor_on=*/false);
}

TEST(TimeoutAccuracy, CentralizedMonitorOn) {
  expect_timeout_accurate(SchedulerKind::kNone, /*monitor_on=*/true);
}

TEST(TimeoutAccuracy, QueuedMonitorOff) {
  // The regression this file exists for: monitor off elides t0, and the
  // queued slow path must still anchor the deadline at arrival.
  expect_timeout_accurate(SchedulerKind::kFcfs, /*monitor_on=*/false);
}

TEST(TimeoutAccuracy, QueuedMonitorOn) {
  expect_timeout_accurate(SchedulerKind::kFcfs, /*monitor_on=*/true);
}

// sync/ primitives carry the same contract: the deadline anchors when the
// timed call ENTERS, before any internal unlock/enqueue work. The CV case
// is the PR 10 regression - wait_for used to compute its deadline after
// releasing the caller's lock, so a release that ran a full handoff module
// silently extended the timeout.
TEST(TimeoutAccuracy, ConditionVariableAnchorsDeadlineAtEntry) {
  native::Domain domain;
  Lock::Options opts;
  opts.scheduler = SchedulerKind::kFcfs;
  opts.attributes = LockAttributes::blocking();
  Lock lock(domain, opts);
  ConditionVariable<NP> cv(domain);

  native::Context ctx(domain);
  lock.lock(ctx);
  const auto start = Clock::now();
  const bool signaled = cv.wait_for(ctx, lock, kTimeoutNs);
  const auto elapsed = Clock::now() - start;
  lock.unlock(ctx);

  EXPECT_FALSE(signaled);
  EXPECT_GE(elapsed, kTimeout - std::chrono::milliseconds(2));
  EXPECT_LE(elapsed, kTimeout + kSlack);
}

TEST(TimeoutAccuracy, SemaphoreAnchorsDeadlineAtEntry) {
  native::Domain domain;
  Semaphore<NP> sem(domain, /*initial=*/0,
                    Placement::any(), LockAttributes::blocking());

  native::Context ctx(domain);
  const auto start = Clock::now();
  const bool acquired = sem.acquire_for(ctx, kTimeoutNs);
  const auto elapsed = Clock::now() - start;

  EXPECT_FALSE(acquired);
  EXPECT_GE(elapsed, kTimeout - std::chrono::milliseconds(2));
  EXPECT_LE(elapsed, kTimeout + kSlack);
  // The withdrawal left the queue clean: a release hands the permit to the
  // counter, not a ghost node, and a fresh acquire consumes it.
  sem.release(ctx);
  EXPECT_TRUE(sem.acquire_for(ctx, kTimeoutNs));
}

TEST(TimeoutAccuracy, BarrierSleepersWakePromptly) {
  // The barrier has no timed user API; its deadline discipline is the
  // sleep-phase bound (attrs.sleep_ns) re-checked against the sense word.
  // A last arriver must release a sleeping waiter well inside one sleep
  // quantum, not strand it until timer expiry.
  native::Domain domain;
  Barrier<NP> barrier(domain, /*parties=*/2, Placement::any(),
                      LockAttributes::blocking());

  std::thread other([&] {
    native::Context ctx(domain);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    barrier.arrive_and_wait(ctx);
  });

  native::Context ctx(domain);
  const auto start = Clock::now();
  barrier.arrive_and_wait(ctx);
  const auto elapsed = Clock::now() - start;
  other.join();

  // ~30ms of genuine waiting plus wake latency; anything near a blocking
  // policy's full sleep quantum (kForever) would hang the test instead.
  EXPECT_LE(elapsed, std::chrono::milliseconds(30) + kSlack);
}

TEST(TimeoutAccuracy, TimeoutIsCountedByTheMonitor) {
  native::Domain domain;
  Lock::Options opts;
  opts.scheduler = SchedulerKind::kFcfs;
  opts.attributes = LockAttributes::blocking();
  opts.monitor_enabled = true;
  Lock lock(domain, opts);

  std::atomic<bool> held{false};
  std::atomic<bool> done{false};
  std::thread holder([&] {
    native::Context ctx(domain);
    lock.lock(ctx);
    held.store(true, std::memory_order_release);
    while (!done.load(std::memory_order_acquire)) std::this_thread::yield();
    lock.unlock(ctx);
  });
  while (!held.load(std::memory_order_acquire)) std::this_thread::yield();

  native::Context ctx(domain);
  EXPECT_FALSE(lock.lock_for(ctx, kTimeoutNs));
  done.store(true, std::memory_order_release);
  holder.join();
  EXPECT_GE(lock.monitor().snapshot().timeouts, 1u);
}

}  // namespace
