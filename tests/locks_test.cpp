// Baseline lock algorithms: mutual exclusion, fairness and traffic
// properties, exercised on the deterministic simulator (typed across all
// lock kinds) and natively (stress).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "relock/locks/anderson_lock.hpp"
#include "relock/locks/blocking_lock.hpp"
#include "relock/locks/clh_lock.hpp"
#include "relock/locks/lock_concepts.hpp"
#include "relock/locks/mcs_lock.hpp"
#include "relock/locks/rw_spin_lock.hpp"
#include "relock/locks/spin_locks.hpp"
#include "relock/locks/ticket_lock.hpp"
#include "relock/platform/native.hpp"
#include "relock/sim/machine.hpp"

namespace relock {
namespace {

using sim::Machine;
using sim::MachineParams;
using sim::SimPlatform;
using sim::Thread;

// ------------------------------------------------------------------------
// Typed mutual-exclusion tests on the simulator.
// ------------------------------------------------------------------------

template <typename L>
struct LockFactory;

template <>
struct LockFactory<TasLock<SimPlatform>> {
  static auto make(Machine& m) {
    return std::make_unique<TasLock<SimPlatform>>(m, Placement::on(0));
  }
};
template <>
struct LockFactory<TtasLock<SimPlatform>> {
  static auto make(Machine& m) {
    return std::make_unique<TtasLock<SimPlatform>>(m, Placement::on(0));
  }
};
template <>
struct LockFactory<BackoffSpinLock<SimPlatform>> {
  static auto make(Machine& m) {
    return std::make_unique<BackoffSpinLock<SimPlatform>>(m, Placement::on(0));
  }
};
template <>
struct LockFactory<TicketLock<SimPlatform>> {
  static auto make(Machine& m) {
    return std::make_unique<TicketLock<SimPlatform>>(m, Placement::on(0));
  }
};
template <>
struct LockFactory<McsLock<SimPlatform>> {
  static auto make(Machine& m) {
    return std::make_unique<McsLock<SimPlatform>>(m, Placement::on(0), 64);
  }
};
template <>
struct LockFactory<ClhLock<SimPlatform>> {
  static auto make(Machine& m) {
    return std::make_unique<ClhLock<SimPlatform>>(m, Placement::on(0), 64);
  }
};
template <>
struct LockFactory<AndersonArrayLock<SimPlatform>> {
  static auto make(Machine& m) {
    return std::make_unique<AndersonArrayLock<SimPlatform>>(
        m, 64, Placement::on(0), 64);
  }
};
template <>
struct LockFactory<BlockingLock<SimPlatform>> {
  static auto make(Machine& m) {
    return std::make_unique<BlockingLock<SimPlatform>>(m, Placement::on(0));
  }
};

template <typename L>
class SimLockTest : public ::testing::Test {};

using SimLockTypes =
    ::testing::Types<TasLock<SimPlatform>, TtasLock<SimPlatform>,
                     BackoffSpinLock<SimPlatform>, TicketLock<SimPlatform>,
                     McsLock<SimPlatform>, ClhLock<SimPlatform>,
                     AndersonArrayLock<SimPlatform>,
                     BlockingLock<SimPlatform>>;
TYPED_TEST_SUITE(SimLockTest, SimLockTypes);

TYPED_TEST(SimLockTest, MutualExclusionUnderContention) {
  Machine m(MachineParams::test_machine(8));
  auto lock = LockFactory<TypeParam>::make(m);
  int in_cs = 0;
  int max_in_cs = 0;
  std::uint64_t total = 0;
  constexpr int kThreads = 8, kIters = 25;
  for (int i = 0; i < kThreads; ++i) {
    m.spawn(static_cast<sim::ProcId>(i), [&](Thread& t) {
      for (int j = 0; j < kIters; ++j) {
        lock->lock(t);
        max_in_cs = std::max(max_in_cs, ++in_cs);
        m.compute(t, 50);
        ++total;
        --in_cs;
        lock->unlock(t);
        m.compute(t, 20);
      }
    });
  }
  m.run();
  EXPECT_EQ(max_in_cs, 1) << "two threads were inside the critical section";
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads * kIters));
}

TYPED_TEST(SimLockTest, UncontendedAcquireRelease) {
  Machine m(MachineParams::test_machine(2));
  auto lock = LockFactory<TypeParam>::make(m);
  bool ok = false;
  m.spawn(0, [&](Thread& t) {
    for (int i = 0; i < 10; ++i) {
      lock->lock(t);
      lock->unlock(t);
    }
    ok = true;
  });
  m.run();
  EXPECT_TRUE(ok);
}

// ------------------------------------------------------------------------
// Lock-specific behaviour.
// ------------------------------------------------------------------------

TEST(TicketLockSim, GrantsInFifoOrder) {
  MachineParams p = MachineParams::test_machine(8);
  Machine m(p);
  TicketLock<SimPlatform> lock(m, Placement::on(0));
  std::vector<int> order;
  // Thread 0 holds the lock while the others queue up in a known sequence.
  m.spawn(0, [&](Thread& t) {
    lock.lock(t);
    m.compute(t, 100'000);  // everyone queues during this
    lock.unlock(t);
  });
  for (int i = 1; i < 8; ++i) {
    m.spawn(static_cast<sim::ProcId>(i), [&, i](Thread& t) {
      m.compute(t, static_cast<Nanos>(1000 * i));  // staggered arrival
      lock.lock(t);
      order.push_back(i);
      lock.unlock(t);
    });
  }
  m.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6, 7}));
}

TEST(McsLockSim, GrantsInFifoOrder) {
  Machine m(MachineParams::test_machine(8));
  McsLock<SimPlatform> lock(m, Placement::on(0), 16);
  std::vector<int> order;
  m.spawn(0, [&](Thread& t) {
    lock.lock(t);
    m.compute(t, 100'000);
    lock.unlock(t);
  });
  for (int i = 1; i < 8; ++i) {
    m.spawn(static_cast<sim::ProcId>(i), [&, i](Thread& t) {
      m.compute(t, static_cast<Nanos>(1000 * i));
      lock.lock(t);
      order.push_back(i);
      lock.unlock(t);
    });
  }
  m.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6, 7}));
}

TEST(McsLockSim, WaitersSpinLocally) {
  // The MCS claim [MCS91]: remote references per acquisition are O(1),
  // independent of the number of waiting processors. Compare the remote
  // traffic generated while waiting against a TAS lock on the same workload.
  auto waiting_remote_refs = [](auto make_lock) -> std::uint64_t {
    Machine m(MachineParams::test_machine(8));
    auto lock = make_lock(m);
    for (int i = 0; i < 8; ++i) {
      m.spawn(static_cast<sim::ProcId>(i), [&, i](Thread& t) {
        m.compute(t, static_cast<Nanos>(100 * i));
        lock->lock(t);
        m.compute(t, 20'000);  // long CS so everyone piles up
        lock->unlock(t);
      });
    }
    m.run();
    return m.stats().remote_references();
  };
  const std::uint64_t mcs = waiting_remote_refs([](Machine& m) {
    return std::make_unique<McsLock<SimPlatform>>(m, Placement::on(0), 16);
  });
  const std::uint64_t tas = waiting_remote_refs([](Machine& m) {
    return std::make_unique<TasLock<SimPlatform>>(m, Placement::on(0));
  });
  EXPECT_LT(mcs * 5, tas) << "MCS should generate far less remote traffic";
}

TEST(TasLockSim, TryLockSemantics) {
  Machine m(MachineParams::test_machine(2));
  TasLock<SimPlatform> lock(m, Placement::on(0));
  bool first = false, second = true, after = false;
  m.spawn(0, [&](Thread& t) {
    first = lock.try_lock(t);
    second = lock.try_lock(t);
    lock.unlock(t);
    after = lock.try_lock(t);
    lock.unlock(t);
  });
  m.run();
  EXPECT_TRUE(first);
  EXPECT_FALSE(second);
  EXPECT_TRUE(after);
}

TEST(BlockingLockSim, WaitersBlockInsteadOfSpinning) {
  Machine m(MachineParams::test_machine(4));
  BlockingLock<SimPlatform> lock(m, Placement::on(0));
  for (int i = 0; i < 4; ++i) {
    m.spawn(static_cast<sim::ProcId>(i), [&, i](Thread& t) {
      m.compute(t, static_cast<Nanos>(100 * i));
      lock.lock(t);
      m.compute(t, 10'000);
      lock.unlock(t);
    });
  }
  m.run();
  EXPECT_GE(m.stats().blocks, 3u);   // three waiters slept
  EXPECT_GE(m.stats().wakeups, 3u);  // and were woken by handoffs
}

TEST(BlockingLockSim, FifoHandoffOrder) {
  Machine m(MachineParams::test_machine(8));
  BlockingLock<SimPlatform> lock(m, Placement::on(0));
  std::vector<int> order;
  m.spawn(0, [&](Thread& t) {
    lock.lock(t);
    m.compute(t, 200'000);
    lock.unlock(t);
  });
  for (int i = 1; i < 8; ++i) {
    m.spawn(static_cast<sim::ProcId>(i), [&, i](Thread& t) {
      m.compute(t, static_cast<Nanos>(2000 * i));
      lock.lock(t);
      order.push_back(i);
      lock.unlock(t);
    });
  }
  m.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6, 7}));
}

TEST(RwSpinLockSim, ReadersOverlapWritersExclude) {
  Machine m(MachineParams::test_machine(6));
  RwSpinLock<SimPlatform> lock(m, Placement::on(0));
  int readers_in = 0, max_readers = 0;
  bool writer_in = false;
  bool writer_overlap = false;
  for (int i = 0; i < 4; ++i) {
    m.spawn(static_cast<sim::ProcId>(i), [&](Thread& t) {
      lock.lock_shared(t);
      max_readers = std::max(max_readers, ++readers_in);
      if (writer_in) writer_overlap = true;
      m.compute(t, 20'000);
      --readers_in;
      lock.unlock_shared(t);
    });
  }
  m.spawn(4, [&](Thread& t) {
    m.compute(t, 5000);
    lock.lock(t);
    writer_in = true;
    if (readers_in > 0) writer_overlap = true;
    m.compute(t, 5000);
    writer_in = false;
    lock.unlock(t);
  });
  m.run();
  EXPECT_GE(max_readers, 2) << "readers should overlap";
  EXPECT_FALSE(writer_overlap) << "writer must be exclusive";
}

// ------------------------------------------------------------------------
// Native stress: real threads, real atomics.
// ------------------------------------------------------------------------

template <typename L, typename MakeLock>
void native_stress(MakeLock make_lock, int threads = 4, int iters = 2000) {
  native::Domain dom;
  auto lock = make_lock(dom);
  std::atomic<int> in_cs{0};
  std::atomic<bool> violation{false};
  std::uint64_t counter = 0;  // protected by the lock
  std::vector<std::thread> ts;
  ts.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    ts.emplace_back([&] {
      native::Context ctx(dom);
      for (int j = 0; j < iters; ++j) {
        lock->lock(ctx);
        if (in_cs.fetch_add(1) != 0) violation.store(true);
        ++counter;
        in_cs.fetch_sub(1);
        lock->unlock(ctx);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(counter, static_cast<std::uint64_t>(threads) *
                         static_cast<std::uint64_t>(iters));
}

using NP = native::NativePlatform;

TEST(NativeStress, TasLock) {
  native_stress<TasLock<NP>>(
      [](native::Domain& d) { return std::make_unique<TasLock<NP>>(d); });
}
TEST(NativeStress, TtasLock) {
  native_stress<TtasLock<NP>>(
      [](native::Domain& d) { return std::make_unique<TtasLock<NP>>(d); });
}
TEST(NativeStress, BackoffSpinLock) {
  native_stress<BackoffSpinLock<NP>>([](native::Domain& d) {
    return std::make_unique<BackoffSpinLock<NP>>(d);
  });
}
TEST(NativeStress, TicketLock) {
  native_stress<TicketLock<NP>>(
      [](native::Domain& d) { return std::make_unique<TicketLock<NP>>(d); });
}
TEST(NativeStress, McsLock) {
  native_stress<McsLock<NP>>([](native::Domain& d) {
    return std::make_unique<McsLock<NP>>(d, Placement::any(), 64);
  });
}
TEST(NativeStress, ClhLock) {
  // Fewer iterations: CLH handoff chains require the exact successor to be
  // scheduled, which on an oversubscribed (single-core) host costs a full
  // OS quantum per handoff in the worst case.
  native_stress<ClhLock<NP>>(
      [](native::Domain& d) {
        return std::make_unique<ClhLock<NP>>(d, Placement::any(), 64);
      },
      4, 200);
}
TEST(NativeStress, AndersonArrayLock) {
  native_stress<AndersonArrayLock<NP>>([](native::Domain& d) {
    return std::make_unique<AndersonArrayLock<NP>>(d, 64, Placement::any(),
                                                   64);
  });
}
TEST(NativeStress, BlockingLock) {
  native_stress<BlockingLock<NP>>([](native::Domain& d) {
    return std::make_unique<BlockingLock<NP>>(d);
  });
}

TEST(NativeRwSpinLock, SharedStress) {
  native::Domain dom;
  RwSpinLock<NP> lock(dom);
  std::uint64_t value = 0;
  std::atomic<bool> torn{false};
  std::vector<std::thread> ts;
  for (int w = 0; w < 2; ++w) {
    ts.emplace_back([&] {
      native::Context ctx(dom);
      for (int j = 0; j < 1000; ++j) {
        lock.lock(ctx);
        ++value;
        lock.unlock(ctx);
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    ts.emplace_back([&] {
      native::Context ctx(dom);
      for (int j = 0; j < 1000; ++j) {
        lock.lock_shared(ctx);
        const std::uint64_t v1 = value;
        const std::uint64_t v2 = value;
        if (v1 != v2) torn.store(true);  // writers must not run under readers
        lock.unlock_shared(ctx);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_FALSE(torn.load());
  EXPECT_EQ(value, 2000u);
}

TEST(LockGuard, RaiiLocksAndUnlocks) {
  native::Domain dom;
  native::Context ctx(dom);
  TasLock<NP> lock(dom);
  {
    Guard<TasLock<NP>, native::Context> g(lock, ctx);
    EXPECT_FALSE(lock.try_lock(ctx));
  }
  EXPECT_TRUE(lock.try_lock(ctx));
  lock.unlock(ctx);
}

}  // namespace
}  // namespace relock
