// NativeDomain registration and per-lock memory audit for the lock-table
// use-case: N locks sharing one domain must not multiply per-thread cost,
// and a single lock's footprint must not scale with the domain's thread
// capacity. Global operator new/delete are replaced with counting
// versions (count + bytes), which is why this suite lives in its own
// binary.
//
// The concrete regression pinned here: per-thread attribute overrides
// used to allocate an AttrSlot array sized by Domain::capacity() on every
// lock's FIRST override - O(locks x capacity) bytes across a table that
// configures thread attributes on a big shared domain. The array is now
// sized by the highest overridden ThreadId (power-of-two growth, floor 8).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "relock/core/configurable_lock.hpp"
#include "relock/platform/native.hpp"
#include "relock/table/lock_table.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace relock {
namespace {

using native::NativePlatform;
using Lock = ConfigurableLock<NativePlatform>;
using Table = table::LockTable<NativePlatform>;

std::uint64_t bytes_now() {
  return g_alloc_bytes.load(std::memory_order_acquire);
}
std::uint64_t allocs_now() {
  return g_allocations.load(std::memory_order_acquire);
}

Lock::Options fcfs_opts() {
  Lock::Options o;
  o.scheduler = SchedulerKind::kFcfs;
  o.attributes = LockAttributes::spin();
  return o;
}

// Registration is O(threads), not O(locks x threads): with the domain
// constructed (its slot table is sized up front), registering and
// unregistering a thread allocates NOTHING - however many locks exist.
TEST(NativeDomainAudit, ThreadRegistrationIsAllocationFree) {
  native::Domain dom(256);
  std::vector<std::unique_ptr<Lock>> locks;
  for (int i = 0; i < 64; ++i) {
    locks.push_back(std::make_unique<Lock>(dom, fcfs_opts()));
  }
  const std::uint64_t before = allocs_now();
  for (int round = 0; round < 8; ++round) {
    native::Context ctx(dom);
    EXPECT_EQ(ctx.domain().capacity(), 256u);
  }
  EXPECT_EQ(allocs_now() - before, 0u)
      << "Context register/unregister must not allocate";
}

// The domain's own cost is paid once, by the domain: per-lock
// construction bytes must be identical whether the shared domain admits
// 16 threads or 4096.
TEST(NativeDomainAudit, LockCostIsIndependentOfDomainCapacity) {
  native::Domain small(16);
  native::Domain big(4096);
  const std::uint64_t b0 = bytes_now();
  { Lock lk(small, fcfs_opts()); }
  const std::uint64_t small_cost = bytes_now() - b0;
  const std::uint64_t b1 = bytes_now();
  { Lock lk(big, fcfs_opts()); }
  const std::uint64_t big_cost = bytes_now() - b1;
  EXPECT_EQ(small_cost, big_cost);
}

// The regression proper: a per-thread attribute override on a lock in a
// big domain must size its slot array by the overridden tid (pow2, floor
// 8), not by Domain::capacity(). With capacity 4096 the old sizing was
// ~40 bytes x 4096 per lock; the bound here leaves room for one small
// array plus bookkeeping while failing the capacity-sized allocation by
// two orders of magnitude.
TEST(NativeDomainAudit, ThreadAttributeSlotsSizeByTidNotCapacity) {
  native::Domain dom(4096);
  Lock lk(dom, fcfs_opts());
  native::Context ctx(dom);
  const std::uint64_t before = bytes_now();
  lk.set_thread_attributes(ctx, ctx.self(), LockAttributes::backoff_spin(4));
  const std::uint64_t first_override = bytes_now() - before;
  EXPECT_LT(first_override, 4096u)
      << "first override must not allocate a capacity-sized slot array";

  // Growth is demand-driven and geometric: overriding a higher tid grows
  // to the next power of two, and the retired arrays stay bounded by the
  // final size (< 2x), not by capacity.
  const std::uint64_t b1 = bytes_now();
  lk.set_thread_attributes(ctx, 100, LockAttributes::backoff_spin(8));
  const std::uint64_t growth = bytes_now() - b1;
  EXPECT_LT(growth, 32'768u);
  lk.clear_thread_attributes(ctx, 100);
  lk.clear_thread_attributes(ctx, ctx.self());
}

// The table use-case end to end: constructing a LockTable registers no
// threads with the domain and adds no per-capacity cost - its footprint
// is the slot array, independent of the domain's thread capacity.
TEST(NativeDomainAudit, LockTableDoesNotTouchRegistration) {
  native::Domain dom(2048);
  const std::uint32_t live_before = dom.registered_count();
  Table::Options to;
  to.capacity = 1u << 14;
  to.partitions = 16;
  to.lock_options = fcfs_opts();
  const std::uint64_t b0 = bytes_now();
  Table t(dom, to);
  const std::uint64_t table_cost = bytes_now() - b0;
  EXPECT_EQ(dom.registered_count(), live_before);
  // Slot array + stripe headers + small bookkeeping; nothing resembling
  // capacity x per-thread state.
  EXPECT_LT(table_cost, std::uint64_t{16} * t.capacity() +
                            t.overhead_bytes() + 65'536u);
  native::Context ctx(dom);
  EXPECT_TRUE(t.lock(ctx, 1));
  t.unlock(ctx, 1);
}

}  // namespace
}  // namespace relock
