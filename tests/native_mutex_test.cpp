// The native convenience wrappers: relock::native::Mutex / SharedMutex
// interoperating with standard <mutex> utilities.
#include <gtest/gtest.h>

#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "relock/native/mutex.hpp"

namespace relock::native {
namespace {

TEST(NativeMutex, BasicLockableWithScopedLock) {
  Mutex mu;
  int value = 0;
  {
    std::scoped_lock guard(mu);
    value = 42;
  }
  EXPECT_EQ(value, 42);
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(NativeMutex, TryLockFailsWhenHeld) {
  Mutex mu;
  mu.lock();
  std::thread other([&] { EXPECT_FALSE(mu.try_lock()); });
  other.join();
  mu.unlock();
}

TEST(NativeMutex, TryLockForTimesOut) {
  Mutex mu(Mutex::blocking());
  mu.lock();
  std::thread other([&] {
    EXPECT_FALSE(mu.try_lock_for(5'000'000));  // 5 ms
  });
  other.join();
  mu.unlock();
}

TEST(NativeMutex, TryLockForSucceedsWhenReleased) {
  Mutex mu(Mutex::blocking());
  mu.lock();
  std::thread other([&] {
    EXPECT_TRUE(mu.try_lock_for(5'000'000'000ULL));
    mu.unlock();
  });
  spin_for(2'000'000);
  mu.unlock();
  other.join();
}

TEST(NativeMutex, RecursiveConfiguration) {
  Mutex mu(Mutex::recursive());
  mu.lock();
  mu.lock();  // re-entry must not deadlock
  mu.unlock();
  std::thread other([&] { EXPECT_FALSE(mu.try_lock()); });
  other.join();
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(NativeMutex, StressAllConfigurations) {
  for (const auto& options :
       {Mutex::spin(), Mutex::combined(), Mutex::blocking()}) {
    Mutex mu(options);
    std::uint64_t counter = 0;
    std::vector<std::thread> threads;
    for (int i = 0; i < 4; ++i) {
      threads.emplace_back([&] {
        for (int j = 0; j < 2000; ++j) {
          std::scoped_lock guard(mu);
          ++counter;
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(counter, 8000u);
  }
}

TEST(NativeMutex, UnderlyingExposesReconfiguration) {
  Mutex mu;
  auto& ctx = this_thread_context();
  mu.underlying().configure_waiting(ctx, LockAttributes::blocking());
  EXPECT_EQ(classify(mu.underlying().attributes()), WaitingKind::kPureSleep);
}

TEST(NativeSharedMutex, SharedLockInterop) {
  SharedMutex mu;
  std::uint64_t value = 0;
  {
    std::unique_lock guard(mu);
    value = 7;
  }
  {
    std::shared_lock guard(mu);
    EXPECT_EQ(value, 7u);
  }
}

TEST(NativeSharedMutex, ReadersOverlapWriterExcludes) {
  SharedMutex mu;
  std::atomic<int> readers{0};
  std::atomic<int> max_readers{0};
  std::atomic<bool> writer_overlap{false};
  std::atomic<bool> writer_in{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < 300; ++j) {
        std::shared_lock guard(mu);
        const int now = readers.fetch_add(1) + 1;
        int prev = max_readers.load();
        while (now > prev && !max_readers.compare_exchange_weak(prev, now)) {
        }
        if (writer_in.load()) writer_overlap.store(true);
        readers.fetch_sub(1);
      }
    });
  }
  threads.emplace_back([&] {
    for (int j = 0; j < 200; ++j) {
      std::unique_lock guard(mu);
      writer_in.store(true);
      if (readers.load() != 0) writer_overlap.store(true);
      writer_in.store(false);
    }
  });
  for (auto& t : threads) t.join();
  EXPECT_FALSE(writer_overlap.load());
}

TEST(NativeSharedMutex, TryLockSharedRespectsWriter) {
  SharedMutex mu;
  mu.lock();
  std::thread other([&] { EXPECT_FALSE(mu.try_lock_shared()); });
  other.join();
  mu.unlock();
  EXPECT_TRUE(mu.try_lock_shared());
  mu.unlock_shared();
}

TEST(DefaultDomain, ContextsAreDistinctPerThread) {
  const ThreadId main_id = this_thread_context().self();
  ThreadId other_id = kInvalidThread;
  std::thread other([&] { other_id = this_thread_context().self(); });
  other.join();
  EXPECT_NE(main_id, other_id);
  // Repeated use on the same thread returns the same context.
  EXPECT_EQ(this_thread_context().self(), main_id);
}

TEST(NativeConfigurableStress, SchedulerSweep) {
  for (const SchedulerKind kind :
       {SchedulerKind::kNone, SchedulerKind::kFcfs,
        SchedulerKind::kPriorityQueue, SchedulerKind::kHandoff}) {
    Domain domain;
    ConfigurableLock<NativePlatform>::Options o;
    o.scheduler = kind;
    o.attributes = LockAttributes::combined(200);
    ConfigurableLock<NativePlatform> lock(domain, o);
    std::uint64_t counter = 0;
    std::atomic<int> in_cs{0};
    std::atomic<bool> violation{false};
    std::vector<std::thread> threads;
    for (int i = 0; i < 4; ++i) {
      threads.emplace_back([&] {
        Context ctx(domain);
        for (int j = 0; j < 1500; ++j) {
          ASSERT_TRUE(lock.lock(ctx));
          if (in_cs.fetch_add(1) != 0) violation.store(true);
          ++counter;
          in_cs.fetch_sub(1);
          lock.unlock(ctx);
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_FALSE(violation.load()) << to_string(kind);
    EXPECT_EQ(counter, 6000u) << to_string(kind);
  }
}

TEST(NativeConfigurableStress, ReconfigurationUnderLoad) {
  Domain domain;
  ConfigurableLock<NativePlatform>::Options o;
  o.scheduler = SchedulerKind::kFcfs;
  ConfigurableLock<NativePlatform> lock(domain, o);
  std::atomic<bool> stop{false};
  std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&] {
      Context ctx(domain);
      while (!stop.load(std::memory_order_acquire)) {
        ASSERT_TRUE(lock.lock(ctx));
        ++counter;
        lock.unlock(ctx);
      }
    });
  }
  // The reconfiguring agent: flips schedulers and waiting policies live.
  {
    Context ctx(domain);
    for (int round = 0; round < 20; ++round) {
      lock.configure_scheduler(ctx, round % 2 == 0
                                        ? SchedulerKind::kPriorityQueue
                                        : SchedulerKind::kFcfs);
      lock.configure_waiting(ctx, round % 3 == 0
                                      ? LockAttributes::blocking()
                                      : LockAttributes::combined(64));
      spin_for(2'000'000);
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  EXPECT_GT(counter, 0u);
  EXPECT_EQ(lock.monitor().snapshot().acquisitions, 0u);  // monitor off
}

}  // namespace
}  // namespace relock::native
