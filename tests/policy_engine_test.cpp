// PolicyEngine + GovernorThread on the native platform: registry
// lifecycle, the tick loop's damper semantics (no-op suppression, per-lock
// cooldown, global rate limit, possession fast-fail - each DEFERRING, not
// dropping, so policies never desynchronize from their locks), the
// LockTable inflation-hook wiring, and the background governor thread
// closing the loop end to end. Monitor intervals are synthesized directly
// through the LockMonitor recording API so each test controls exactly what
// the policies observe.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "relock/adapt/policy_engine.hpp"
#include "relock/platform/native.hpp"
#include "relock/table/lock_table.hpp"

namespace relock::adapt {
namespace {

using native::NativePlatform;
using Lock = ConfigurableLock<NativePlatform>;
using Engine = PolicyEngine<NativePlatform>;
using Table = table::LockTable<NativePlatform>;

Lock::Options monitored_spin_lock() {
  Lock::Options o;
  o.scheduler = SchedulerKind::kFcfs;
  o.attributes = LockAttributes::spin();
  o.monitor_enabled = true;
  return o;
}

Engine::Options engine_options(std::uint32_t capacity = 8,
                               std::uint32_t max_actions = 4,
                               std::uint32_t cooldown = 0) {
  Engine::Options o;
  o.capacity = capacity;
  o.max_actions_per_tick = max_actions;
  o.cooldown_ticks = cooldown;
  return o;
}

/// One synthesized monitoring interval: `n` contended acquisitions, each
/// carrying a timed wait of `wait_ns`. Enough samples to clear every
/// policy's default noise gate (min_samples = 8).
void feed_interval(Lock& lock, Nanos wait_ns, int n = 16) {
  LockMonitor& m = lock.monitor();
  for (int i = 0; i < n; ++i) {
    m.on_acquire(/*contended=*/true);
    m.on_wait_complete(wait_ns);
  }
}

/// Always engages with a fixed waiting-policy target; the engine's no-op
/// suppression is what keeps it from reconfiguring forever.
class ForceWaitPolicy final : public AdaptationPolicy {
 public:
  explicit ForceWaitPolicy(LockAttributes target) : target_(target) {}
  std::optional<AdaptAction> evaluate(const StatsDelta&) override {
    return AdaptAction{SetWaitingPolicy{target_}};
  }

 private:
  LockAttributes target_;
};

/// Alternates between two waiting policies every evaluation.
class FlipFlopPolicy final : public AdaptationPolicy {
 public:
  std::optional<AdaptAction> evaluate(const StatsDelta&) override {
    flip_ = !flip_;
    return AdaptAction{SetWaitingPolicy{
        flip_ ? LockAttributes::combined(1, kForever)
              : LockAttributes::spin()}};
  }

 private:
  bool flip_ = false;
};

// ---------------------------------------------------------- Registry ----

TEST(PolicyEngineRegistry, RegisterTickUnregisterReclaim) {
  native::Domain dom(16);
  native::Context ctx(dom);
  Lock lock(dom, monitored_spin_lock());
  Engine eng(engine_options(/*capacity=*/2));

  EXPECT_TRUE(eng.register_lock(lock));
  EXPECT_EQ(eng.registered_count(), 1u);
  EXPECT_TRUE(eng.unregister_lock(lock));
  EXPECT_FALSE(eng.unregister_lock(lock))
      << "second unregister of the same lock must report not-live";
  EXPECT_EQ(eng.registered_count(), 0u);

  // The dead slot is reclaimed only inside tick(); afterwards the registry
  // is fully reusable.
  eng.tick(ctx);
  EXPECT_TRUE(eng.register_lock(lock));
  EXPECT_EQ(eng.registered_count(), 1u);
}

TEST(PolicyEngineRegistry, RegistrationIsBestEffortWhenFull) {
  native::Domain dom(16);
  Lock a(dom, monitored_spin_lock());
  Lock b(dom, monitored_spin_lock());
  Lock c(dom, monitored_spin_lock());
  Engine eng(engine_options(/*capacity=*/2));

  EXPECT_TRUE(eng.register_lock(a));
  EXPECT_TRUE(eng.register_lock(b));
  EXPECT_FALSE(eng.register_lock(c)) << "registry full: best-effort refusal";
  EXPECT_EQ(eng.registered_count(), 2u);
}

// --------------------------------------------------- Tick + policies ----

TEST(PolicyEngineTick, CostModelFlipsToSleepAndBack) {
  native::Domain dom(16);
  native::Context ctx(dom);
  Lock lock(dom, monitored_spin_lock());
  Engine eng(engine_options());
  ASSERT_TRUE(eng.register_lock(
      lock, std::make_unique<CostModelWaitPolicy>(CostModelWaitPolicy::Params{},
                                                  /*start_sleeping=*/false)));

  // Interval 1: waits far beyond the 2x-context-switch budget -> the
  // cost model parks waiters (combined spin-then-sleep).
  feed_interval(lock, /*wait_ns=*/200'000);
  EXPECT_EQ(eng.tick(ctx), 1u);
  EXPECT_EQ(lock.attributes(),
            LockAttributes::combined(CostModelWaitPolicy::Params{}.residual_spins,
                                     kForever));

  // Interval 2: waits well inside the budget -> back to pure spinning.
  feed_interval(lock, /*wait_ns=*/500);
  EXPECT_EQ(eng.tick(ctx), 1u);
  EXPECT_EQ(lock.attributes(), LockAttributes::spin());

  const Engine::Counters& c = eng.counters();
  EXPECT_EQ(c.applied, 2u);
  EXPECT_EQ(c.evaluated, 2u);
  EXPECT_GE(lock.monitor().snapshot().reconfigurations, 2u);
}

TEST(PolicyEngineTick, NoopActionsAreSuppressedBeforePossession) {
  native::Domain dom(16);
  native::Context ctx(dom);
  Lock lock(dom, monitored_spin_lock());
  Engine eng(engine_options());
  // Forces the configuration the lock already has: every tick must be
  // swallowed by the no-op damper without touching the lock.
  ASSERT_TRUE(eng.register_lock(
      lock, std::make_unique<ForceWaitPolicy>(LockAttributes::spin())));

  for (int i = 0; i < 3; ++i) eng.tick(ctx);
  const Engine::Counters& c = eng.counters();
  EXPECT_EQ(c.applied, 0u);
  EXPECT_EQ(c.suppressed_noop, 3u);
  EXPECT_EQ(lock.monitor().snapshot().reconfigurations, 0u);
}

TEST(PolicyEngineTick, RateLimiterDefersExcessActionsToNextTick) {
  native::Domain dom(16);
  native::Context ctx(dom);
  Lock a(dom, monitored_spin_lock());
  Lock b(dom, monitored_spin_lock());
  Engine eng(engine_options(/*capacity=*/4, /*max_actions=*/1));
  const LockAttributes target = LockAttributes::combined(7, kForever);
  ASSERT_TRUE(eng.register_lock(a, std::make_unique<ForceWaitPolicy>(target)));
  ASSERT_TRUE(eng.register_lock(b, std::make_unique<ForceWaitPolicy>(target)));

  // Tick 1: one action fits the budget; the other defers.
  EXPECT_EQ(eng.tick(ctx), 1u);
  EXPECT_EQ(eng.counters().rate_limited, 1u);
  EXPECT_NE(a.attributes() == target, b.attributes() == target)
      << "exactly one of the two locks reconfigures under a budget of 1";

  // Tick 2: the deferred action drains; the already-converged lock's fresh
  // evaluation is a no-op.
  EXPECT_EQ(eng.tick(ctx), 1u);
  EXPECT_EQ(a.attributes(), target);
  EXPECT_EQ(b.attributes(), target);
  EXPECT_EQ(eng.counters().applied, 2u);
}

TEST(PolicyEngineTick, PossessionFastFailDefersInsteadOfSpinning) {
  native::Domain dom(16);
  native::Context ctx(dom);
  Lock lock(dom, monitored_spin_lock());
  Engine eng(engine_options());
  ASSERT_TRUE(eng.register_lock(
      lock,
      std::make_unique<ForceWaitPolicy>(LockAttributes::combined(3, kForever))));

  // Another agent owns the waiting-policy attribute class: the engine's
  // try_possess must fast-fail and defer, leaving the lock untouched.
  ASSERT_TRUE(lock.try_possess(ctx, AttributeClass::kWaitingPolicy));
  EXPECT_EQ(eng.tick(ctx), 0u);
  EXPECT_EQ(eng.counters().possession_busy, 1u);
  EXPECT_EQ(lock.attributes(), LockAttributes::spin());

  // Possession released: the deferred action applies on the next tick.
  lock.release_possession(ctx, AttributeClass::kWaitingPolicy);
  EXPECT_EQ(eng.tick(ctx), 1u);
  EXPECT_EQ(lock.attributes(), LockAttributes::combined(3, kForever));
}

TEST(PolicyEngineTick, CooldownDefersBackToBackReconfigurations) {
  native::Domain dom(16);
  native::Context ctx(dom);
  Lock lock(dom, monitored_spin_lock());
  Engine eng(engine_options(/*capacity=*/4, /*max_actions=*/4,
                            /*cooldown=*/2));
  ASSERT_TRUE(eng.register_lock(lock, std::make_unique<FlipFlopPolicy>()));

  // Tick 1 applies the first flip and opens the cooldown window.
  EXPECT_EQ(eng.tick(ctx), 1u);
  EXPECT_EQ(lock.attributes(), LockAttributes::combined(1, kForever));
  // Tick 2 is inside the window: the second flip defers.
  EXPECT_EQ(eng.tick(ctx), 0u);
  EXPECT_EQ(eng.counters().suppressed_cooldown, 1u);
  EXPECT_EQ(lock.attributes(), LockAttributes::combined(1, kForever));
  // Tick 3: window over, the deferred flip drains.
  EXPECT_EQ(eng.tick(ctx), 1u);
  EXPECT_EQ(lock.attributes(), LockAttributes::spin());
}

TEST(PolicyEngineTick, DefaultStackSeedsFromCurrentConfiguration) {
  native::Domain dom(16);
  native::Context ctx(dom);
  Lock lock(dom, monitored_spin_lock());
  Engine eng(engine_options());
  ASSERT_TRUE(eng.register_lock(lock));  // null policy -> default_stack

  // A quiet interval (below every noise gate) must produce no action, and
  // in particular the seeded hysteresis sides must not emit a flip to
  // where the lock already is.
  eng.tick(ctx);
  EXPECT_EQ(eng.counters().applied, 0u);
  EXPECT_EQ(lock.attributes(), LockAttributes::spin());
}

// ------------------------------------------------------- Table hooks ----

TEST(PolicyEngineTable, InflationHooksGovernHotEntries) {
  native::Domain dom(16);
  native::Context ctx(dom);
  Engine eng(engine_options());
  Table::Options topts;
  topts.capacity = 64;
  topts.partitions = 1;
  topts.lock_options.scheduler = SchedulerKind::kFcfs;
  topts.lock_options.monitor_enabled = true;
  topts.on_inflate = eng.inflation_hook();
  topts.on_deflate = eng.deflation_hook();
  Table table(dom, topts);

  constexpr Table::Key kKey = 42;
  table.inflate(ctx, kKey);
  EXPECT_EQ(table.inflated_count(), 1u);
  EXPECT_EQ(eng.registered_count(), 1u)
      << "inflation must register the hot entry with the governor";

  // Pre-inflation is non-sticky: the last release deflates the entry and
  // the deflation hook deregisters it inside the closed window.
  ASSERT_TRUE(table.lock(ctx, kKey));
  table.unlock(ctx, kKey);
  EXPECT_EQ(table.inflated_count(), 0u);
  EXPECT_EQ(eng.registered_count(), 0u);

  // The dead slot recycles through a tick and the key can go hot again.
  eng.tick(ctx);
  table.inflate(ctx, kKey);
  EXPECT_EQ(eng.registered_count(), 1u);
  ASSERT_TRUE(table.lock(ctx, kKey));
  table.unlock(ctx, kKey);
  EXPECT_EQ(eng.registered_count(), 0u);
}

// -------------------------------------------------- Governor thread ----

TEST(GovernorThreadTest, BackgroundTicksCloseTheLoop) {
  native::Domain dom(16);
  Lock lock(dom, monitored_spin_lock());
  Engine eng(engine_options());
  ASSERT_TRUE(eng.register_lock(
      lock, std::make_unique<CostModelWaitPolicy>(CostModelWaitPolicy::Params{},
                                                  /*start_sleeping=*/false)));

  GovernorThread<NativePlatform> governor(dom, eng,
                                          /*interval_ns=*/1'000'000);
  // Keep feeding long-wait intervals until a background tick consumes one
  // and reconfigures the lock to the sleeping side.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (lock.attributes() == LockAttributes::spin() &&
         std::chrono::steady_clock::now() < deadline) {
    feed_interval(lock, /*wait_ns=*/500'000);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  governor.stop();  // idempotent; destructor stops again harmlessly

  EXPECT_NE(lock.attributes(), LockAttributes::spin())
      << "governor thread never applied the cost-model flip";
  EXPECT_GE(eng.counters().applied, 1u);
  EXPECT_GE(eng.counters().ticks, 1u);
}

}  // namespace
}  // namespace relock::adapt
