// Seeded-bug regression 2: this binary is compiled with
// -DRELOCK_CHECK_SEEDED_BUG_2, which re-introduces the PR 2 parker bug -
// the unpark token deposit split into a relaxed load + separate store
// instead of one atomic exchange. If the target's kPkEmpty -> kPkParked
// transition lands between the two halves, the store overwrites kPkParked
// while the stale load still reads kPkEmpty, so no notify is sent: a lost
// wakeup. relock-check must report it as a deadlock (parked thread, no
// enabled action), and the trace must replay.
//
// Unlike bug 1 this window needs only 2 preemptions in the parked-handoff
// scenario, so exhaustive DFS at bound 2 finds it deterministically.
#include <gtest/gtest.h>

#include <cstdio>

#include "check_scenarios.hpp"
#include "relock/check/strategies.hpp"

#ifndef RELOCK_CHECK_SEEDED_BUG_2
#error "this regression must be compiled with -DRELOCK_CHECK_SEEDED_BUG_2"
#endif

namespace {

using namespace relock::chk;

TEST(RelockCheckSeededBug2, DfsFindsLostWakeupAndReplays) {
  const Scenario s = scenarios::parked_handoff2();
  Engine eng;
  DfsStrategy st(/*preemption_bound=*/2);
  const ExploreResult r = eng.explore(s, st);

  ASSERT_TRUE(r.failed)
      << "seeded lost-wakeup not detected by exhaustive DFS(2): "
      << r.summary();
  EXPECT_NE(r.failure.find("deadlock"), std::string::npos) << r.summary();
  // Detection is deterministic: schedule 25 in the current enumeration
  // order. Assert only a generous bound so engine-order tweaks don't churn
  // this test.
  EXPECT_LE(r.schedules, 500u) << r.summary();
  EXPECT_FALSE(r.trace.empty());
  std::printf("[relock-check] detected at schedule %llu\n%s\n",
              static_cast<unsigned long long>(r.schedules),
              r.summary().c_str());

  Engine replay_eng;
  const ExploreResult rep = replay_eng.replay(s, r.trace);
  ASSERT_TRUE(rep.failed) << "replay did not reproduce the failure";
  EXPECT_EQ(rep.failure, r.failure);
  EXPECT_EQ(rep.failure_tag, r.failure_tag);
  EXPECT_EQ(rep.events, r.events) << "replay event log diverged";
}

// The bug only bites the parker path: the pure-spin handoff still passes
// every oracle exhaustively, pinning the defect to the park/unpark
// handshake rather than the lock algorithm.
TEST(RelockCheckSeededBug2, SpinHandoffStillClean) {
  Engine eng;
  DfsStrategy st(/*preemption_bound=*/2);
  const ExploreResult r = eng.explore(scenarios::handoff2(), st);
  EXPECT_FALSE(r.failed) << r.summary();
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(st.exhausted());
}

}  // namespace
