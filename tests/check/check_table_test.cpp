// LockTable inflate/deflate scenarios under exhaustive DFS(2). Unlike the
// main relock-check suites this binary also builds in sanitized
// configurations: the table scenarios are small enough that TSan's
// slowdown stays affordable, and running them there exercises the
// *native-compiled* atomics of the shared engine runner alongside the
// model exploration (the CI TSan leg runs exactly this binary).
//
// Deep DFS(3) passes ride the `stress` label via check_deep_test.
#include <gtest/gtest.h>

#include <cstdio>

#include "check_table_scenarios.hpp"
#include "relock/check/strategies.hpp"

namespace {

using namespace relock::chk;

void expect_exhaustive(const Scenario& s, std::uint32_t bound) {
  Engine eng;
  DfsStrategy st(bound, /*max_schedules=*/0);
  const ExploreResult r = eng.explore(s, st);
  EXPECT_FALSE(r.failed) << r.summary();
  EXPECT_TRUE(r.complete) << r.summary();
  EXPECT_TRUE(st.exhausted()) << "bounded space not exhausted: "
                              << r.summary();
  std::printf("[relock-check] %-16s %-12s %8llu schedules %10llu points\n",
              s.name.c_str(), st.describe().c_str(),
              static_cast<unsigned long long>(r.schedules),
              static_cast<unsigned long long>(r.steps));
}

TEST(RelockCheckTable, TableInflate2Exhaustive) {
  // First-contention inflation: try_install's pre-pinned pointer CAS
  // (preserving the inline owner's kSlotHeld bit) against the owner's
  // release, on every interleaving; the on_finish oracle insists the slot
  // deflated back to a free inline word.
  expect_exhaustive(scenarios::table_inflate2(), 2);
}

TEST(RelockCheckTable, TableDeflate2Exhaustive) {
  // Last-release deflation: the kSlotDeflating window (CAS-then-recheck)
  // against a late pinner's increment-then-validate, re-inflation of the
  // emptied slot, and dueling deflation attempts.
  expect_exhaustive(scenarios::table_deflate2(), 2);
}

}  // namespace
