// LockTable scenarios for relock-check: the inline-word <-> full-lock
// transitions are this subsystem's novel race surface, and every table
// word is an engine-instrumented chk::Word, so first-contention inflation
// (try_install's pre-pinned CAS racing the inline owner's release) and
// last-release deflation (the kSlotDeflating window racing a late pinner)
// are explored exhaustively like any lock-internal protocol.
//
// Kept separate from check_scenarios.hpp so the seeded-bug regression TUs
// (which recompile the lock model with a historical bug re-introduced)
// keep compiling exactly the library they always did.
#pragma once

#include <cassert>
#include <memory>

#include "relock/check/engine.hpp"
#include "relock/check/platform.hpp"
#include "relock/table/lock_table.hpp"

namespace relock::chk::scenarios {

using Table = relock::table::LockTable<CheckPlatform>;

inline std::shared_ptr<Table> make_table(ScenarioFrame& f) {
  Table::Options o;
  o.capacity = 8;    // one partition, tiny probe space
  o.partitions = 1;
  o.lock_options.scheduler = SchedulerKind::kFcfs;
  o.lock_options.attributes = LockAttributes::spin();
  return std::make_shared<Table>(f.domain(), o);
}

/// End-state oracle: with every transaction finished and no sticky
/// configuration, the slot must have deflated all the way back to a free
/// inline word and returned its Entry to the pool.
inline void expect_quiescent_free(ScenarioFrame& f,
                                  const std::shared_ptr<Table>& t,
                                  Table::Key k) {
  Engine* eng = &f.engine();
  f.on_finish([t, k, eng] {
    const std::uint64_t w = t->quiescent_word(k);
    if (w != relock::table::kSlotFree) {
      eng->fail_host((w & relock::table::kSlotInflated) != 0
                         ? ((w & relock::table::kSlotHeld) != 0
                                ? "table: slot wedged deflating at quiescence"
                                : "table: slot still inflated at quiescence")
                         : "table: slot still inline-held at quiescence");
    }
    if (t->inflated_count() != 0) {
      eng->fail_host("table: entry still attached at quiescence");
    }
  });
}

/// Two threads race one key from a cold slot: the loser of the inline
/// free->held CAS performs first-contention inflation (try_install
/// preserving the owner's kSlotHeld bit) while the winner's release may
/// take the inline CAS-to-free, the fetch_and bit-clear (if inflation won)
/// or the full deflation path - and the second cycle replays acquisition
/// against whatever state the first left. The holder yields between its
/// critical section and the release so the contender's install interleaves
/// with the release without spending DFS preemptions.
inline Scenario table_inflate2() {
  Scenario s;
  s.name = "table_inflate2";
  s.fairness = FairnessMode::kNone;
  s.build = [](ScenarioFrame& f) {
    auto t = make_table(f);
    const Table::Key k = 5;
    f.add_thread(1, [t, k](Context& ctx) {
      t->lock(ctx, k);
      ctx.cs_enter();
      ctx.cs_exit();
      CheckPlatform::yield(ctx);
      t->unlock(ctx, k);
    });
    f.add_thread(1, [t, k](Context& ctx) {
      t->lock(ctx, k);
      ctx.cs_enter();
      ctx.cs_exit();
      t->unlock(ctx, k);
    });
    expect_quiescent_free(f, t, k);
  };
  return s;
}

/// Both threads start on an already-inflated slot (warmed via the
/// non-sticky inflate() API) and run full cycles: every release is a
/// deflation candidate, so the kSlotDeflating window races the other
/// thread's pin (increment-then-validate vs CAS-then-recheck), its
/// re-inflation of the emptied slot, and its own deflation attempt.
inline Scenario table_deflate2() {
  Scenario s;
  s.name = "table_deflate2";
  s.fairness = FairnessMode::kNone;
  s.build = [](ScenarioFrame& f) {
    auto t = make_table(f);
    const Table::Key k = 5;
    for (int i = 0; i < 2; ++i) {
      f.add_thread(1, [t, k](Context& ctx) {
        t->inflate(ctx, k);
        t->lock(ctx, k);
        ctx.cs_enter();
        ctx.cs_exit();
        t->unlock(ctx, k);
      });
    }
    expect_quiescent_free(f, t, k);
  };
  return s;
}

}  // namespace relock::chk::scenarios
