// relock-check smoke suite: exhaustive preemption-bounded DFS over the
// 2-thread scenarios (and bounded-depth passes over the 3-thread one),
// asserting every schedule satisfies every oracle and that the bounded
// schedule space was explored *completely*. Schedule counts are printed so
// EXPERIMENTS.md can cite real exploration sizes.
#include <gtest/gtest.h>

#include <cstdio>

#include "check_async_scenarios.hpp"
#include "check_engine_scenarios.hpp"
#include "check_scenarios.hpp"
#include "relock/check/strategies.hpp"

namespace {

using namespace relock::chk;

void expect_exhaustive(const Scenario& s, std::uint32_t bound) {
  Engine eng;
  DfsStrategy st(bound, /*max_schedules=*/0);
  const ExploreResult r = eng.explore(s, st);
  EXPECT_FALSE(r.failed) << r.summary();
  EXPECT_TRUE(r.complete) << r.summary();
  EXPECT_TRUE(st.exhausted()) << "bounded space not exhausted: "
                              << r.summary();
  std::printf("[relock-check] %-16s %-12s %8llu schedules %10llu points\n",
              s.name.c_str(), st.describe().c_str(),
              static_cast<unsigned long long>(r.schedules),
              static_cast<unsigned long long>(r.steps));
}

TEST(RelockCheckSmoke, Handoff2Exhaustive) {
  expect_exhaustive(scenarios::handoff2(), 2);
}

TEST(RelockCheckSmoke, ParkedHandoff2Exhaustive) {
  expect_exhaustive(scenarios::parked_handoff2(), 2);
}

TEST(RelockCheckSmoke, Epoch2Exhaustive) {
  expect_exhaustive(scenarios::epoch2(), 2);
}

TEST(RelockCheckSmoke, Possess2Exhaustive) {
  expect_exhaustive(scenarios::possess2(), 2);
}

TEST(RelockCheckSmoke, Timeout2Exhaustive) {
  expect_exhaustive(scenarios::timeout2(), 2);
}

TEST(RelockCheckSmoke, Swap2Exhaustive) {
  expect_exhaustive(scenarios::swap2(), 2);
}

TEST(RelockCheckSmoke, FissileArrival2Exhaustive) {
  // fu.cas vs arr.mark: the held->free CAS of a fissile release against
  // the first waiter's push + contended-bit mark, every ordering.
  expect_exhaustive(scenarios::fissile_arrival2(), 2);
}

TEST(RelockCheckSmoke, FissileConfig2Exhaustive) {
  // Fissile cycles against a scheduler swap's quiescence epoch, including
  // fast-mode re-entry after the install.
  expect_exhaustive(scenarios::fissile_config2(), 2);
}

TEST(RelockCheckSmoke, QueueArrival2Exhaustive) {
  // qa.swap/qa.first vs fu.cas vs qc.first: the MCS enqueue against the
  // fissile release and the queued fast release's cell pop.
  expect_exhaustive(scenarios::queue_arrival2(), 2);
}

TEST(RelockCheckSmoke, QueueTimeout2Exhaustive) {
  // MCS-with-timeout node self-removal racing the holder's release.
  expect_exhaustive(scenarios::queue_timeout2(), 2);
}

TEST(RelockCheckSmoke, QueueConfig2Exhaustive) {
  // kQueue -> kFcfs -> kQueue reconfiguration with linked waiters:
  // configuration delay, stray sweep, and FIFO across the generations.
  expect_exhaustive(scenarios::queue_config2(), 2);
}

TEST(RelockCheckSmoke, EngineTick2Exhaustive) {
  // PolicyEngine::tick() flipping the waiting policy (flip-flop forcer)
  // against a worker's timed acquire and plain cycle: the governor's
  // possess/configure footprint racing the lock paths, with an end-state
  // oracle on the applied count and final configuration.
  expect_exhaustive(scenarios::engine_tick2(), 2);
}

TEST(RelockCheckSmoke, EngineStorm2Exhaustive) {
  // Two engines force opposing scheduler kinds on one lock: possession
  // fast-fail contention, back-to-back scheduler swaps with the
  // configuration delay, and lock cycles threading through whichever
  // module is installed or pending.
  expect_exhaustive(scenarios::engine_storm2(), 2);
}

#if RELOCK_ASYNC_ENABLED
TEST(RelockCheckSmoke, AsyncGrant2Exhaustive) {
  // A coroutine's timed wait (manager executor: inbox post, timer
  // withdrawal, resume) races the holder's grant and a scheduler swap.
  expect_exhaustive(scenarios::async_grant2(), 2);
}

TEST(RelockCheckSmoke, AsyncInline2Exhaustive) {
  // Regression: an inline-resumed frame's unlock vs a timed waiter
  // draining the fast-release epoch under meta - deadlocks if the grant
  // hook fires before the in-flight count retires.
  expect_exhaustive(scenarios::async_inline2(), 2);
}
#endif

TEST(RelockCheckSmoke, MonitorReset2Exhaustive) {
  // Snapshot-coherent monitor reset racing a lock/unlock stream: the
  // scenario body asserts that no explored schedule sees a counter window
  // wrapped below zero.
  expect_exhaustive(scenarios::monitor_reset2(), 2);
}

// 3 threads: bound 2 is ~57k schedules (~2s); bound 3 (~2.1M schedules,
// ~1 min) runs under the `stress` ctest label, see check_deep_test.
TEST(RelockCheckSmoke, Fanout3Bound2Exhaustive) {
  expect_exhaustive(scenarios::fanout3(), 2);
}

TEST(RelockCheckSmoke, Guarded3Bound2Exhaustive) {
  // Possession window forcing a fissile releaser onto the guarded handoff
  // path - the fast->full->fast round trip with a waiter in flight.
  expect_exhaustive(scenarios::guarded3(), 2);
}

// The engine is deterministic: the same strategy explores the identical
// schedule space, point for point.
TEST(RelockCheckSmoke, ExplorationIsDeterministic) {
  ExploreResult runs[2];
  for (auto& r : runs) {
    Engine eng;
    DfsStrategy st(2);
    r = eng.explore(scenarios::handoff2(), st);
  }
  EXPECT_EQ(runs[0].schedules, runs[1].schedules);
  EXPECT_EQ(runs[0].steps, runs[1].steps);
  EXPECT_FALSE(runs[0].failed);
}

// Replaying a trace that does not belong to the scenario is flagged as
// divergence instead of silently exploring something else.
TEST(RelockCheckSmoke, ReplayFlagsDivergence) {
  Engine eng;
  const ExploreResult r = eng.replay(scenarios::handoff2(), "r0.r0");
  EXPECT_TRUE(r.failed);
  EXPECT_NE(r.failure.find("diverged"), std::string::npos) << r.failure;
}

}  // namespace
