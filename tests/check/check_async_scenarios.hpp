// Checker scenarios for the async front-end (relock/async/): coroutine
// suspension and resumption become engine points ("co.suspend",
// "co.resume", "mgr.post", "mgr.park"), so the DFS explores grant
// delivery, timeout withdrawal, and manager parking against the lock's
// ordinary paths. Compiles to nothing when the build has no coroutine
// support (RELOCK_ASYNC_ENABLED == 0), same pattern as the headers it
// tests.
#pragma once

#include "relock/async/config.hpp"

#if RELOCK_ASYNC_ENABLED

#include "check_scenarios.hpp"
#include "relock/async/awaiter.hpp"
#include "relock/async/manager.hpp"
#include "relock/async/task.hpp"

namespace relock::chk::scenarios {

/// A coroutine's timed acquisition races the holder's release AND a
/// scheduler reconfiguration: the grant hook may fire from the holder's
/// fast release or the FCFS module, the manager's timer may withdraw the
/// record first (the async analogue of MCS-with-timeout self-removal,
/// with the standing breaker pinning the lock out of fissile mode), and
/// the kFcfs -> kPriorityQueue swap's quiescence epoch overlaps both.
/// kNone fairness: the reconfiguration splits generations and a timed
/// waiter may withdraw, so only conservation / exclusion / epoch oracles
/// apply.
inline Scenario async_grant2() {
  Scenario s;
  s.name = "async_grant2";
  s.fairness = FairnessMode::kNone;
  s.build = [](ScenarioFrame& f) {
    auto lk = make_lock(f, SchedulerKind::kFcfs, LockAttributes::blocking());
    f.add_thread(1, [lk](Context& ctx) {
      lk->lock(ctx);
      ctx.cs_enter();
      ctx.cs_exit();
      CheckPlatform::yield(ctx);
      lk->unlock(ctx);
      lk->configure_scheduler(ctx, SchedulerKind::kPriorityQueue);
    });
    f.add_thread(1, [lk](Context& ctx) {
      async::ManagerExecutor<CheckPlatform> mgr;
      async::AsyncLock<CheckPlatform> alk(*lk, mgr);
      async::Task t = [](async::AsyncLock<CheckPlatform>& alk_,
                         Context& launch) -> async::Task {
        async::AsyncGrant<CheckPlatform> g =
            co_await alk_.try_lock_for_async(launch, 300);
        if (g) {
          g.ctx().cs_enter();
          g.ctx().cs_exit();
          g.unlock();
        }
      }(alk, ctx);
      mgr.run_until(ctx, [&t] { return t.done(); });
      // A ScheduleAborted thrown inside the resumed frame lands in the
      // task's promise (coroutines trap escaping exceptions); re-raise it
      // so the engine sees the abort unwind this thread like any other.
      t.rethrow();
    });
  };
  return s;
}

/// Regression (review finding, PR 10): the fissile fast release must fire
/// the coroutine grant hook only AFTER retiring from the in-flight epoch.
/// An inline-executed frame unlocks through the meta-guarded path (its
/// arrival set the contended bit), so with the hook still inside the
/// epoch that unlock blocks on meta while a timed waiter holds meta
/// spinning in wait_fast_releases on the never-retiring count - a
/// deadlock schedule that blows the step budget under the old ordering.
/// Holder + untimed inline-executor coroutine + sync lock_for on one
/// FCFS blocking lock (blocking so the timed waiter parks and the DFS can
/// fire its timeout as an action mid-release - a spinning waiter would
/// need hundreds of literal clock steps); kNone fairness (the timed
/// waiter may withdraw).
inline Scenario async_inline2() {
  Scenario s;
  s.name = "async_inline2";
  s.fairness = FairnessMode::kNone;
  s.build = [](ScenarioFrame& f) {
    auto lk = make_lock(f, SchedulerKind::kFcfs, LockAttributes::blocking());
    f.add_thread(1, [lk](Context& ctx) {
      // Hold first, then launch: the coroutine always finds the lock
      // taken, suspends, and is resumed inline from inside an unlock.
      // The launcher's own registration closed when lock() granted, so
      // the frame's record may reuse this thread's tid.
      lk->lock(ctx);
      async::InlineExecutor<CheckPlatform> inl;
      async::AsyncLock<CheckPlatform> alk(*lk, inl);
      async::Task t = [](async::AsyncLock<CheckPlatform>& alk_,
                         Context& launch) -> async::Task {
        async::AsyncGrant<CheckPlatform> g = co_await alk_.lock_async(launch);
        g.ctx().cs_enter();
        g.ctx().cs_exit();
        g.unlock();
      }(alk, ctx);
      ctx.cs_enter();
      ctx.cs_exit();
      CheckPlatform::yield(ctx);
      lk->unlock(ctx);
      // The frame resumes inside whichever unlock grants it (ours, or the
      // timed waiter's); wait it out so every oracle settles.
      while (!t.done()) CheckPlatform::yield(ctx);
      t.rethrow();
    });
    f.add_thread(1, [lk](Context& ctx) {
      // The sync timed wait whose withdrawal drains the in-flight epoch
      // under meta - the other half of the old deadlock.
      if (lk->lock_for(ctx, 300)) {
        ctx.cs_enter();
        ctx.cs_exit();
        lk->unlock(ctx);
      }
    });
  };
  return s;
}

}  // namespace relock::chk::scenarios

#endif  // RELOCK_ASYNC_ENABLED
