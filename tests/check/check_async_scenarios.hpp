// Checker scenarios for the async front-end (relock/async/): coroutine
// suspension and resumption become engine points ("co.suspend",
// "co.resume", "mgr.post", "mgr.park"), so the DFS explores grant
// delivery, timeout withdrawal, and manager parking against the lock's
// ordinary paths. Compiles to nothing when the build has no coroutine
// support (RELOCK_ASYNC_ENABLED == 0), same pattern as the headers it
// tests.
#pragma once

#include "relock/async/config.hpp"

#if RELOCK_ASYNC_ENABLED

#include "check_scenarios.hpp"
#include "relock/async/awaiter.hpp"
#include "relock/async/manager.hpp"
#include "relock/async/task.hpp"

namespace relock::chk::scenarios {

/// A coroutine's timed acquisition races the holder's release AND a
/// scheduler reconfiguration: the grant hook may fire from the holder's
/// fast release or the FCFS module, the manager's timer may withdraw the
/// record first (the async analogue of MCS-with-timeout self-removal,
/// with the standing breaker pinning the lock out of fissile mode), and
/// the kFcfs -> kPriorityQueue swap's quiescence epoch overlaps both.
/// kNone fairness: the reconfiguration splits generations and a timed
/// waiter may withdraw, so only conservation / exclusion / epoch oracles
/// apply.
inline Scenario async_grant2() {
  Scenario s;
  s.name = "async_grant2";
  s.fairness = FairnessMode::kNone;
  s.build = [](ScenarioFrame& f) {
    auto lk = make_lock(f, SchedulerKind::kFcfs, LockAttributes::blocking());
    f.add_thread(1, [lk](Context& ctx) {
      lk->lock(ctx);
      ctx.cs_enter();
      ctx.cs_exit();
      CheckPlatform::yield(ctx);
      lk->unlock(ctx);
      lk->configure_scheduler(ctx, SchedulerKind::kPriorityQueue);
    });
    f.add_thread(1, [lk](Context& ctx) {
      async::ManagerExecutor<CheckPlatform> mgr;
      async::AsyncLock<CheckPlatform> alk(*lk, mgr);
      async::Task t = [](async::AsyncLock<CheckPlatform>& alk_,
                         Context& launch) -> async::Task {
        async::AsyncGrant<CheckPlatform> g =
            co_await alk_.try_lock_for_async(launch, 300);
        if (g) {
          g.ctx().cs_enter();
          g.ctx().cs_exit();
          g.unlock();
        }
      }(alk, ctx);
      mgr.run_until(ctx, [&t] { return t.done(); });
      // A ScheduleAborted thrown inside the resumed frame lands in the
      // task's promise (coroutines trap escaping exceptions); re-raise it
      // so the engine sees the abort unwind this thread like any other.
      t.rethrow();
    });
  };
  return s;
}

}  // namespace relock::chk::scenarios

#endif  // RELOCK_ASYNC_ENABLED
