// relock-trace vs relock-check cross-validation (this binary is compiled
// with RELOCK_TRACE=1): the lock emits its checker events and its trace
// records from the SAME call sites (ConfigurableLock::note), so for any
// single explored schedule the trace's checker-kind records must equal the
// engine's event log record for record - same threads, same kinds, same
// arguments, same order. A divergence means one of the two observers is
// lying about what the lock did, which is exactly what this test exists to
// catch.
//
// The engine runs every model thread on one host test thread, and the
// trace registry keys rings by platform ThreadId, so the capture is
// deterministic: same schedule, byte-identical record stream.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "check_scenarios.hpp"
#include "relock/check/strategies.hpp"
#include "relock/platform/lock_event.hpp"
#include "relock/trace/chrome_export.hpp"
#include "relock/trace/trace.hpp"

#ifndef RELOCK_TRACE
#error "check_trace_test must be compiled with RELOCK_TRACE=1"
#endif

namespace {

using namespace relock;
using namespace relock::chk;

/// (tid, event, arg) triples - the engine's event-log encoding.
using Triples = std::vector<std::uint64_t>;

/// Drains the registry and returns the checker-kind records as engine-
/// encoded triples, dropping the trace-only vocabulary (acquire flavors,
/// parks, possession markers) the engine deliberately never sees.
Triples drain_checker_triples() {
  Triples out;
  trace::TraceCollector collector;
  for (const trace::Event& e : collector.collect()) {
    if (!is_checker_event(e.kind)) continue;
    out.push_back(e.tid);
    out.push_back(static_cast<std::uint64_t>(e.kind));
    out.push_back(e.arg);
  }
  return out;
}

void expect_trace_matches_engine(const Scenario& scenario,
                                 std::uint64_t seed) {
  auto& reg = trace::Registry::instance();
  reg.set_enabled(false);
  reg.clear();
  reg.set_ring_capacity(1u << 14);
  reg.set_enabled(true);

  // One PCT schedule: explore() then reports the events of exactly the
  // schedule that ran, and the rings hold exactly its records.
  Engine eng;
  PctStrategy st(seed, /*schedules=*/1);
  const ExploreResult r = eng.explore(scenario, st);
  reg.set_enabled(false);
  ASSERT_FALSE(r.failed) << r.summary();
  ASSERT_TRUE(r.complete) << r.summary();
  ASSERT_FALSE(r.events.empty())
      << "clean completion must report the last schedule's event log";

  const Triples traced = drain_checker_triples();
  ASSERT_EQ(traced, r.events)
      << scenario.name << ": native trace diverges from the checker log";

  // Replaying the recorded action trace must reproduce the identical
  // record stream - determinism end to end, through both observers.
  reg.clear();
  reg.set_enabled(true);
  const ExploreResult replayed = eng.replay(scenario, r.trace);
  reg.set_enabled(false);
  ASSERT_FALSE(replayed.failed) << replayed.summary();
  EXPECT_EQ(replayed.events, r.events);
  EXPECT_EQ(drain_checker_triples(), traced);
}

TEST(RelockCheckTrace, Handoff2TraceEqualsEngineLog) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    expect_trace_matches_engine(scenarios::handoff2(), seed);
  }
}

TEST(RelockCheckTrace, ParkedHandoff2TraceEqualsEngineLog) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    expect_trace_matches_engine(scenarios::parked_handoff2(), seed);
  }
}

TEST(RelockCheckTrace, Timeout2TraceEqualsEngineLog) {
  // Timeout withdrawal emits kTimeoutReturn through the same shared site.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    expect_trace_matches_engine(scenarios::timeout2(), seed);
  }
}

TEST(RelockCheckTrace, Swap2TraceEqualsEngineLog) {
  // Scheduler swap: the full configuration vocabulary (mutate begin/end,
  // scheduler installed, breaker arm/disarm) crosses both observers.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    expect_trace_matches_engine(scenarios::swap2(), seed);
  }
}

TEST(RelockCheckTrace, Fanout3TraceEqualsEngineLog) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    expect_trace_matches_engine(scenarios::fanout3(), seed);
  }
}

TEST(RelockCheckTrace, FissileTraceEnable2Exhaustive) {
  // A model thread flips the trace gate on mid-schedule while the other
  // runs fissile cycles: the fast path's single enabled() load may observe
  // the toggle at any point. Exhaustive DFS(2): every ordering completes
  // with silent oracles; the rings legitimately hold partial streams, so
  // no record-for-record comparison applies here.
  auto& reg = trace::Registry::instance();
  reg.set_ring_capacity(1u << 14);
  Engine eng;
  DfsStrategy st(2, /*max_schedules=*/0);
  const ExploreResult r = eng.explore(scenarios::fissile_trace2(), st);
  reg.set_enabled(false);
  reg.clear();
  EXPECT_FALSE(r.failed) << r.summary();
  EXPECT_TRUE(r.complete) << r.summary();
  EXPECT_TRUE(st.exhausted()) << "bounded space not exhausted: "
                              << r.summary();
  std::printf("[relock-check] %-16s %-12s %8llu schedules\n",
              "fissile_trace2", st.describe().c_str(),
              static_cast<unsigned long long>(r.schedules));
}

}  // namespace
