// relock-check randomized suite: PCT-style priority schedules over the
// larger fault-injection scenarios. Fully reproducible: the seed is printed
// on start and can be pinned with RELOCK_CHECK_SEED; the per-scenario
// schedule budget can be scaled with RELOCK_CHECK_SCHEDULES.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "check_scenarios.hpp"
#include "relock/check/strategies.hpp"

namespace {

using namespace relock::chk;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::strtoull(v, nullptr, 0)
                                    : fallback;
}

class RelockCheckRandom : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    seed_ = env_u64("RELOCK_CHECK_SEED", 0xC0FFEEull);
    schedules_ = env_u64("RELOCK_CHECK_SCHEDULES", 2000);
    std::printf("[relock-check] RELOCK_CHECK_SEED=%llu "
                "RELOCK_CHECK_SCHEDULES=%llu (env-overridable)\n",
                static_cast<unsigned long long>(seed_),
                static_cast<unsigned long long>(schedules_));
  }

  static void explore_clean(const Scenario& s) {
    Engine eng;
    PctStrategy st(seed_, schedules_, /*depth=*/3);
    const ExploreResult r = eng.explore(s, st);
    EXPECT_FALSE(r.failed) << s.name << " under " << st.describe() << ":\n"
                           << r.summary();
    std::printf("[relock-check] %-16s %-24s %8llu schedules %10llu points\n",
                s.name.c_str(), st.describe().c_str(),
                static_cast<unsigned long long>(r.schedules),
                static_cast<unsigned long long>(r.steps));
  }

  static std::uint64_t seed_;
  static std::uint64_t schedules_;
};

std::uint64_t RelockCheckRandom::seed_ = 0;
std::uint64_t RelockCheckRandom::schedules_ = 0;

TEST_F(RelockCheckRandom, Fanout3) { explore_clean(scenarios::fanout3()); }

TEST_F(RelockCheckRandom, Churn3WithInjections) {
  explore_clean(scenarios::churn3());
}

TEST_F(RelockCheckRandom, AdvisoryFanout3) {
  explore_clean(scenarios::advisory3());
}

TEST_F(RelockCheckRandom, GuardedHandoff3) {
  explore_clean(scenarios::guarded3());
}

TEST_F(RelockCheckRandom, PriorityFairness4) {
  explore_clean(scenarios::prio4());
}

TEST_F(RelockCheckRandom, ThresholdFairness3) {
  explore_clean(scenarios::threshold3());
}

}  // namespace
