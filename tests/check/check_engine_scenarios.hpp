// Scenarios for the closed-loop adaptation engine (relock/adapt/
// policy_engine.hpp): PolicyEngine::tick() driven from model threads so
// exhaustive DFS explores reconfiguration storms - an engine flip racing
// a worker's acquire/release/timeout, and two engines contending on
// attribute possession while issuing back-to-back scheduler flips.
//
// Kept separate from check_scenarios.hpp for the same reason the table
// scenarios are: the seeded-bug regression TUs keep compiling exactly the
// library they always did.
//
// The test policies below are deterministic forcers, not cost models: a
// policy's evaluate() consumes host-side monitor state (no scheduling
// points), so what DFS explores is precisely the engine's possession/
// configure footprint against the lock paths - the surface under test.
#pragma once

#include <memory>

#include "check_scenarios.hpp"
#include "relock/adapt/policy_engine.hpp"

namespace relock::chk::scenarios {

using Engine2 = relock::adapt::PolicyEngine<CheckPlatform>;

/// Alternates the waiting policy every evaluation: combined (spin-then-
/// sleep) first, pure spin next. Always engages, so every tick carries a
/// real reconfiguration.
class FlipFlopWaitPolicy final : public adapt::AdaptationPolicy {
 public:
  std::optional<adapt::AdaptAction> evaluate(
      const adapt::StatsDelta&) override {
    flip_ = !flip_;
    return adapt::AdaptAction{adapt::SetWaitingPolicy{
        flip_ ? LockAttributes::combined(1, kForever)
              : LockAttributes::spin()}};
  }

 private:
  bool flip_ = false;
};

/// Forces one scheduler kind unconditionally; the engine's no-op
/// suppression drops it once the lock is already there.
class ForceSchedulerPolicy final : public adapt::AdaptationPolicy {
 public:
  explicit ForceSchedulerPolicy(SchedulerKind k) : kind_(k) {}
  std::optional<adapt::AdaptAction> evaluate(
      const adapt::StatsDelta&) override {
    return adapt::AdaptAction{adapt::SetScheduler{kind_}};
  }

 private:
  SchedulerKind kind_;
};

/// One governor ticking a flip-flopping waiting policy against a worker
/// whose acquisitions cross the reconfigurations: a timed (timeout-path)
/// acquire under a blocking-capable configuration, then a plain cycle.
/// Oracles: mutual exclusion, liveness, epoch safety across the
/// configure_waiting quiescence windows.
inline Scenario engine_tick2() {
  Scenario s;
  s.name = "engine_tick2";
  s.fairness = FairnessMode::kFcfs;
  s.build = [](ScenarioFrame& f) {
    auto lk = make_lock(f, SchedulerKind::kFcfs);
    auto eng = std::make_shared<Engine2>(Engine2::Options{
        /*capacity=*/4, /*max_actions_per_tick=*/1, /*cooldown_ticks=*/0,
        /*policy_factory=*/nullptr});
    eng->register_lock(*lk, std::make_unique<FlipFlopWaitPolicy>());
    f.add_thread(1, [lk](Context& ctx) {
      if (lk->lock_for(ctx, 300)) {
        ctx.cs_enter();
        ctx.cs_exit();
        lk->unlock(ctx);
      }
      lock_cycle(lk, ctx);
    });
    f.add_thread(1, [lk, eng](Context& ctx) {
      eng->tick(ctx);  // -> combined(1, forever)
      eng->tick(ctx);  // -> back to spin
    });
    Engine* chk = &f.engine();
    f.on_finish([eng, lk, chk] {
      const Engine2::Counters& c = eng->counters();
      if (c.applied != 2) {
        chk->fail_host("engine_tick2: both flips must apply "
                       "(nothing contends on possession here)");
      }
      if (lk->attributes() != LockAttributes::spin()) {
        chk->fail_host("engine_tick2: final configuration must be "
                       "the second flip's pure spin");
      }
    });
  };
  return s;
}

/// Reconfiguration storm: two engines govern the same lock with opposing
/// scheduler forcers (kQueue vs kPriorityThreshold from a kFcfs start),
/// each ticking then running a lock cycle. DFS drives every interleaving
/// of the two try_possess fast-fails, the back-to-back scheduler swaps
/// (configuration delay, stray sweep) and the cycles threading through
/// whichever module is installed or pending. The rate limiter's
/// possession fast-fail is the surface: a lost possession defers, never
/// spins, so the storm stays live.
inline Scenario engine_storm2() {
  Scenario s;
  s.name = "engine_storm2";
  s.fairness = FairnessMode::kFcfs;
  s.build = [](ScenarioFrame& f) {
    auto lk = make_lock(f, SchedulerKind::kFcfs);
    const Engine2::Options opts{/*capacity=*/4, /*max_actions_per_tick=*/1,
                                /*cooldown_ticks=*/0,
                                /*policy_factory=*/nullptr};
    auto e1 = std::make_shared<Engine2>(opts);
    auto e2 = std::make_shared<Engine2>(opts);
    e1->register_lock(
        *lk, std::make_unique<ForceSchedulerPolicy>(SchedulerKind::kQueue));
    e2->register_lock(*lk, std::make_unique<ForceSchedulerPolicy>(
                               SchedulerKind::kPriorityThreshold));
    f.add_thread(1, [lk, e1](Context& ctx) {
      e1->tick(ctx);
      lock_cycle(lk, ctx);
    });
    f.add_thread(1, [lk, e2](Context& ctx) {
      e2->tick(ctx);
      lock_cycle(lk, ctx);
    });
    Engine* chk = &f.engine();
    f.on_finish([e1, e2, lk, chk] {
      // Each engine either applied its flip or lost possession and
      // deferred - but the two must never BOTH lose (fetch_or decides a
      // winner) and every emitted action is accounted for.
      const Engine2::Counters& c1 = e1->counters();
      const Engine2::Counters& c2 = e2->counters();
      if (c1.possession_busy != 0 && c2.possession_busy != 0) {
        chk->fail_host("engine_storm2: possession fast-fail lost on "
                       "both sides of one race");
      }
      if (c1.applied + c1.possession_busy != 1 ||
          c2.applied + c2.possession_busy != 1) {
        chk->fail_host("engine_storm2: every tick must apply or "
                       "defer exactly its one forced action");
      }
      const SchedulerKind k = lk->target_scheduler_kind();
      if (c1.applied == 1 && c2.applied == 0 &&
          k != SchedulerKind::kQueue) {
        chk->fail_host("engine_storm2: lone e1 flip must leave "
                       "arrivals targeting kQueue");
      }
      if (c2.applied == 1 && c1.applied == 0 &&
          k != SchedulerKind::kPriorityThreshold) {
        chk->fail_host("engine_storm2: lone e2 flip must leave "
                       "arrivals targeting kPriorityThreshold");
      }
    });
  };
  return s;
}

}  // namespace relock::chk::scenarios
