// Deep exploration pass, run under the `stress` ctest label (nightly /
// ctest -L stress with RELOCK_CHECK_DEEP=1): raises the DFS preemption
// bound to 3 across the scenario library. fanout3 at bound 3 alone is
// ~2.1M schedules (~1 min); the 2-thread scenarios add a long tail of
// higher-preemption interleavings the per-PR smoke bound cannot afford.
// Without RELOCK_CHECK_DEEP the tests skip, keeping the default (tier-1)
// ctest run fast.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "check_async_scenarios.hpp"
#include "check_engine_scenarios.hpp"
#include "check_scenarios.hpp"
#include "check_table_scenarios.hpp"
#include "relock/check/strategies.hpp"

namespace {

using namespace relock::chk;

void expect_exhaustive(const Scenario& s, std::uint32_t bound) {
  if (std::getenv("RELOCK_CHECK_DEEP") == nullptr) {
    GTEST_SKIP() << "set RELOCK_CHECK_DEEP=1 for the deep pass "
                    "(the stress CI job does)";
  }
  Engine eng;
  DfsStrategy st(bound);
  const ExploreResult r = eng.explore(s, st);
  EXPECT_FALSE(r.failed) << r.summary();
  EXPECT_TRUE(r.complete) << r.summary();
  EXPECT_TRUE(st.exhausted()) << r.summary();
  std::printf("[relock-check] %-16s %-12s %8llu schedules %10llu points\n",
              s.name.c_str(), st.describe().c_str(),
              static_cast<unsigned long long>(r.schedules),
              static_cast<unsigned long long>(r.steps));
}

TEST(RelockCheckDeep, Handoff2Bound3) {
  expect_exhaustive(scenarios::handoff2(), 3);
}

TEST(RelockCheckDeep, ParkedHandoff2Bound3) {
  expect_exhaustive(scenarios::parked_handoff2(), 3);
}

TEST(RelockCheckDeep, Epoch2Bound3) {
  expect_exhaustive(scenarios::epoch2(), 3);
}

TEST(RelockCheckDeep, Possess2Bound3) {
  expect_exhaustive(scenarios::possess2(), 3);
}

TEST(RelockCheckDeep, Timeout2Bound3) {
  expect_exhaustive(scenarios::timeout2(), 3);
}

TEST(RelockCheckDeep, Swap2Bound3) {
  expect_exhaustive(scenarios::swap2(), 3);
}

TEST(RelockCheckDeep, QueueArrival2Bound3) {
  expect_exhaustive(scenarios::queue_arrival2(), 3);
}

TEST(RelockCheckDeep, QueueTimeout2Bound3) {
  expect_exhaustive(scenarios::queue_timeout2(), 3);
}

TEST(RelockCheckDeep, QueueConfig2Bound3) {
  expect_exhaustive(scenarios::queue_config2(), 3);
}

#if RELOCK_ASYNC_ENABLED
TEST(RelockCheckDeep, AsyncGrant2Bound3) {
  expect_exhaustive(scenarios::async_grant2(), 3);
}

TEST(RelockCheckDeep, AsyncInline2Bound3) {
  expect_exhaustive(scenarios::async_inline2(), 3);
}
#endif

TEST(RelockCheckDeep, Fanout3Bound3) {
  expect_exhaustive(scenarios::fanout3(), 3);
}

TEST(RelockCheckDeep, TableInflate2Bound3) {
  expect_exhaustive(scenarios::table_inflate2(), 3);
}

TEST(RelockCheckDeep, TableDeflate2Bound3) {
  expect_exhaustive(scenarios::table_deflate2(), 3);
}

TEST(RelockCheckDeep, EngineTick2Bound3) {
  expect_exhaustive(scenarios::engine_tick2(), 3);
}

TEST(RelockCheckDeep, EngineStorm2Bound3) {
  expect_exhaustive(scenarios::engine_storm2(), 3);
}

}  // namespace
