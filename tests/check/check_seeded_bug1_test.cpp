// Seeded-bug regression 1: this binary is compiled with
// -DRELOCK_CHECK_SEEDED_BUG_1, which re-introduces the PR 2 data race where
// grant_or_free's exclusive handoff published the grant flag *before*
// clearing the shared grant scratch (the clear happens after the new owner
// may already be running its own fast release). relock-check must find it:
// the shared-scratch session oracle reports the new owner's scratch
// mutation landing inside the old releaser's still-open session.
//
// The window needs ~4 preemptions in the 3-thread advisory fanout - beyond
// the affordable exhaustive DFS bound - so this is the PCT showcase:
// a randomized priority-schedule search with a pinned, printed seed finds
// it within a small schedule budget, and the recorded trace replays to the
// byte-identical event log.
//
// advisory3 (not fanout3) because the fissile fast path closed fanout3's
// route into the window: with no quiescence breaker armed, the releaser
// that used to take the select-empty guarded detour now frees the lock
// with one CAS and never reaches grant_or_free. Advisory locks are not
// fissile-eligible, so they still walk the detour on every such release.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "check_scenarios.hpp"
#include "relock/check/strategies.hpp"

#ifndef RELOCK_CHECK_SEEDED_BUG_1
#error "this regression must be compiled with -DRELOCK_CHECK_SEEDED_BUG_1"
#endif

namespace {

using namespace relock::chk;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::strtoull(v, nullptr, 0)
                                    : fallback;
}

TEST(RelockCheckSeededBug1, PctFindsSharedScratchAndReplays) {
  // Seed 1 finds the race at schedule 654; seeds 2-5 all find it within
  // 550 schedules, so the 5000-schedule budget has ample margin for
  // env-overridden seeds.
  const std::uint64_t seed = env_u64("RELOCK_CHECK_SEED", 1);
  const std::uint64_t budget = env_u64("RELOCK_CHECK_SCHEDULES", 5000);
  std::printf("[relock-check] RELOCK_CHECK_SEED=%llu (env-overridable)\n",
              static_cast<unsigned long long>(seed));

  const Scenario s = scenarios::advisory3();
  Engine eng;
  PctStrategy st(seed, budget, /*depth=*/3);
  const ExploreResult r = eng.explore(s, st);

  ASSERT_TRUE(r.failed)
      << "seeded scratch race not detected within "
      << budget << " PCT schedules (seed " << seed << ")";
  EXPECT_NE(r.failure.find("grant scratch shared"), std::string::npos)
      << r.summary();
  EXPECT_FALSE(r.trace.empty());
  std::printf("[relock-check] detected at schedule %llu\n%s\n",
              static_cast<unsigned long long>(r.schedules),
              r.summary().c_str());

  // The printed trace is the whole reproducer: replaying it on a fresh
  // engine must hit the same oracle with the identical event log.
  Engine replay_eng;
  const ExploreResult rep = replay_eng.replay(s, r.trace);
  ASSERT_TRUE(rep.failed) << "replay did not reproduce the failure";
  EXPECT_EQ(rep.failure, r.failure);
  EXPECT_EQ(rep.failure_tag, r.failure_tag);
  EXPECT_EQ(rep.events, r.events) << "replay event log diverged";
}

}  // namespace
