// Scenario library for the relock-check tests: each function returns a
// reusable chk::Scenario whose build hook constructs a fresh
// ConfigurableLock<CheckPlatform> per schedule (held by shared_ptr so the
// lock outlives the last model thread) and registers the thread bodies.
//
// Scenario sizing is deliberate: the 2-thread scenarios are small enough
// for *exhaustive* preemption-bounded DFS (check_smoke_test), the 3-4
// thread ones are for randomized PCT exploration (check_random_test) and
// the seeded-bug regressions.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>

#include "relock/check/engine.hpp"
#include "relock/check/platform.hpp"
#include "relock/core/configurable_lock.hpp"
#ifdef RELOCK_TRACE
#include "relock/trace/trace.hpp"
#endif

namespace relock::chk::scenarios {

using Lock = relock::ConfigurableLock<CheckPlatform>;

inline std::shared_ptr<Lock> make_lock(
    ScenarioFrame& f, SchedulerKind kind,
    LockAttributes attrs = LockAttributes::spin(), bool advisory = false) {
  Lock::Options o;
  o.scheduler = kind;
  o.attributes = attrs;
  o.advisory = advisory;
  return std::make_shared<Lock>(f.domain(), o);
}

/// lock; critical section; unlock - the basic oracle-annotated cycle.
inline void lock_cycle(const std::shared_ptr<Lock>& lk, Context& ctx) {
  lk->lock(ctx);
  ctx.cs_enter();
  ctx.cs_exit();
  lk->unlock(ctx);
}

/// Two spinning threads race one FCFS lock: registration, lock-free
/// arrival, direct handoff, lost-release guard, next_grant_ pre-selection.
inline Scenario handoff2() {
  Scenario s;
  s.name = "handoff2";
  s.fairness = FairnessMode::kFcfs;
  s.build = [](ScenarioFrame& f) {
    auto lk = make_lock(f, SchedulerKind::kFcfs);
    for (int i = 0; i < 2; ++i) {
      f.add_thread(1, [lk](Context& ctx) { lock_cycle(lk, ctx); });
    }
  };
  return s;
}

/// Same race with a blocking waiting policy: waiters park on the modeled
/// parker and releases must wake them - the grant/park handshake whose
/// split-deposit variant is seeded bug 2. The holder yields between its
/// critical section and the release so the contender's registration and
/// park can interleave with the handoff without spending DFS preemptions.
inline Scenario parked_handoff2() {
  Scenario s;
  s.name = "parked_handoff2";
  s.fairness = FairnessMode::kFcfs;
  s.build = [](ScenarioFrame& f) {
    auto lk = make_lock(f, SchedulerKind::kFcfs, LockAttributes::blocking());
    f.add_thread(1, [lk](Context& ctx) {
      lk->lock(ctx);
      ctx.cs_enter();
      ctx.cs_exit();
      CheckPlatform::yield(ctx);
      lk->unlock(ctx);
    });
    f.add_thread(1, [lk](Context& ctx) { lock_cycle(lk, ctx); });
  };
  return s;
}

/// A waiting-policy reconfiguration (QuiesceGuard: breaker arm, epoch
/// drain) races a lock/unlock stream: epoch-safety oracle territory.
inline Scenario epoch2() {
  Scenario s;
  s.name = "epoch2";
  s.fairness = FairnessMode::kFcfs;
  s.build = [](ScenarioFrame& f) {
    auto lk = make_lock(f, SchedulerKind::kFcfs);
    f.add_thread(1, [lk](Context& ctx) {
      lock_cycle(lk, ctx);
      lk->configure_waiting(ctx, LockAttributes::backoff_spin(4));
      lock_cycle(lk, ctx);
    });
    f.add_thread(1, [lk](Context& ctx) { lock_cycle(lk, ctx); });
  };
  return s;
}

/// Possession protocol around a reconfiguration vs. a contended cycle:
/// try_possess arms the quiescence breaker for the whole window.
inline Scenario possess2() {
  Scenario s;
  s.name = "possess2";
  s.fairness = FairnessMode::kFcfs;
  s.build = [](ScenarioFrame& f) {
    auto lk = make_lock(f, SchedulerKind::kFcfs);
    f.add_thread(1, [lk](Context& ctx) { lock_cycle(lk, ctx); });
    f.add_thread(1, [lk](Context& ctx) {
      lk->possess(ctx, AttributeClass::kWaitingPolicy);
      lk->configure_waiting(ctx, LockAttributes::spin());
      lk->release_possession(ctx, AttributeClass::kWaitingPolicy);
      lock_cycle(lk, ctx);
    });
  };
  return s;
}

/// A conditional (timed) acquisition races the holder's release: the
/// timeout may fire before, during, or after the grant; withdrawal
/// soundness and the timed waiter's standing breaker are the targets.
inline Scenario timeout2() {
  Scenario s;
  s.name = "timeout2";
  s.fairness = FairnessMode::kFcfs;
  s.build = [](ScenarioFrame& f) {
    auto lk = make_lock(f, SchedulerKind::kFcfs, LockAttributes::blocking());
    f.add_thread(1, [lk](Context& ctx) {
      lk->lock(ctx);
      ctx.cs_enter();
      ctx.cs_exit();
      CheckPlatform::yield(ctx);
      lk->unlock(ctx);
    });
    f.add_thread(1, [lk](Context& ctx) {
      if (lk->lock_for(ctx, 300)) {
        ctx.cs_enter();
        ctx.cs_exit();
        lk->unlock(ctx);
      }
    });
  };
  return s;
}

/// A scheduler swap (FCFS -> priority queue) races a contended cycle:
/// configuration delay, pending-module registration, generation rule.
inline Scenario swap2() {
  Scenario s;
  s.name = "swap2";
  s.fairness = FairnessMode::kNone;  // two Gammas: only the generation rule
  s.build = [](ScenarioFrame& f) {
    auto lk = make_lock(f, SchedulerKind::kFcfs);
    f.add_thread(1, [lk](Context& ctx) {
      lock_cycle(lk, ctx);
      lk->configure_scheduler(ctx, SchedulerKind::kPriorityQueue);
      lock_cycle(lk, ctx);
    });
    f.add_thread(2, [lk](Context& ctx) { lock_cycle(lk, ctx); });
  };
  return s;
}

/// Three spinning threads on one FCFS lock. Deep enough that a guarded
/// grant (select-empty fast-release abort with a late-arriving waiter) can
/// overlap the new owner's own fast release - the window of seeded bug 1.
inline Scenario fanout3() {
  Scenario s;
  s.name = "fanout3";
  s.fairness = FairnessMode::kFcfs;
  s.build = [](ScenarioFrame& f) {
    auto lk = make_lock(f, SchedulerKind::kFcfs);
    for (int i = 0; i < 3; ++i) {
      f.add_thread(1, [lk](Context& ctx) { lock_cycle(lk, ctx); });
    }
  };
  return s;
}

/// Fissile fast release racing the first waiter's enqueue. The holder
/// yields between its critical section and the release so the contender's
/// record push and contended-bit mark (arr.mark) interleave with the
/// held->free CAS (fu.cas) without spending DFS preemptions. Every
/// ordering must be sound: CAS first and the arrival claims the free word
/// or registers against a free lock; mark first and the CAS fails, routing
/// the release through the full path to drain the record. The lost-grant
/// strand (fast CAS succeeding with a pushed-but-unmarked record left
/// behind) is exactly what the liveness oracle would flag.
inline Scenario fissile_arrival2() {
  Scenario s;
  s.name = "fissile_arrival2";
  s.fairness = FairnessMode::kFcfs;
  s.build = [](ScenarioFrame& f) {
    auto lk = make_lock(f, SchedulerKind::kFcfs);
    f.add_thread(1, [lk](Context& ctx) {
      lk->lock(ctx);
      ctx.cs_enter();
      ctx.cs_exit();
      CheckPlatform::yield(ctx);
      lk->unlock(ctx);
    });
    f.add_thread(1, [lk](Context& ctx) { lock_cycle(lk, ctx); });
  };
  return s;
}

/// Fissile cycles racing a scheduler swap: the configure's QuiesceGuard
/// (breaker arm, epoch drain) must exclude the one-CAS release - a fast
/// release that began before the breaker armed must be drained, one that
/// starts after must observe the full path - and the lock must come back
/// fissile after the install (the fast path keys off the state word only,
/// so no re-arming step exists to forget).
inline Scenario fissile_config2() {
  Scenario s;
  s.name = "fissile_config2";
  s.fairness = FairnessMode::kNone;  // two Gammas: only the generation rule
  s.build = [](ScenarioFrame& f) {
    auto lk = make_lock(f, SchedulerKind::kFcfs);
    f.add_thread(1, [lk](Context& ctx) {
      lk->lock(ctx);
      ctx.cs_enter();
      ctx.cs_exit();
      CheckPlatform::yield(ctx);
      lk->unlock(ctx);
      lock_cycle(lk, ctx);
    });
    f.add_thread(1, [lk](Context& ctx) {
      lk->configure_scheduler(ctx, SchedulerKind::kPriorityQueue);
      lock_cycle(lk, ctx);
    });
  };
  return s;
}

/// Distributed-queue handoff racing the holder's release: the contender's
/// MCS enqueue (qa.swap tail-exchange, qa.first publication, arr.mark)
/// interleaves with the holder's fissile held->free CAS and, when that
/// fails, with the queued fast release's cell pop (qc.first adoption, the
/// tail-retraction CAS). Every ordering must either grant the contender
/// by a single store to its own node or let it claim the free word; the
/// lost-grant strand (fast CAS succeeding with a linked-but-unmarked
/// node left in the cell) is what the liveness oracle would flag.
inline Scenario queue_arrival2() {
  Scenario s;
  s.name = "queue_arrival2";
  s.fairness = FairnessMode::kFcfs;
  s.build = [](ScenarioFrame& f) {
    auto lk = make_lock(f, SchedulerKind::kQueue);
    f.add_thread(1, [lk](Context& ctx) {
      lk->lock(ctx);
      ctx.cs_enter();
      ctx.cs_exit();
      CheckPlatform::yield(ctx);
      lk->unlock(ctx);
    });
    f.add_thread(1, [lk](Context& ctx) { lock_cycle(lk, ctx); });
  };
  return s;
}

/// A timed distributed-queue acquisition races the holder's release:
/// MCS-with-timeout node self-removal (tail retraction against an
/// in-flight producer, cache-hit resolution at to.cache) against a grant
/// that may land before, during, or after the deadline.
inline Scenario queue_timeout2() {
  Scenario s;
  s.name = "queue_timeout2";
  s.fairness = FairnessMode::kFcfs;
  s.build = [](ScenarioFrame& f) {
    auto lk = make_lock(f, SchedulerKind::kQueue, LockAttributes::blocking());
    f.add_thread(1, [lk](Context& ctx) {
      lk->lock(ctx);
      ctx.cs_enter();
      ctx.cs_exit();
      CheckPlatform::yield(ctx);
      lk->unlock(ctx);
    });
    f.add_thread(1, [lk](Context& ctx) {
      if (lk->lock_for(ctx, 300)) {
        ctx.cs_enter();
        ctx.cs_exit();
        lk->unlock(ctx);
      }
    });
  };
  return s;
}

/// Reconfiguration to and from the distributed queue racing contended
/// cycles: a waiter linked in the cell when the configuration moves to
/// kFcfs must be served by the queue façade under the configuration-delay
/// rule (or swept by the stray drain if its tail-swap raced the install),
/// and the return to kQueue must serve FCFS leftovers before cell
/// arrivals.
inline Scenario queue_config2() {
  Scenario s;
  s.name = "queue_config2";
  s.fairness = FairnessMode::kNone;  // two Gammas: only the generation rule
  s.build = [](ScenarioFrame& f) {
    auto lk = make_lock(f, SchedulerKind::kQueue);
    f.add_thread(1, [lk](Context& ctx) {
      lk->lock(ctx);
      ctx.cs_enter();
      ctx.cs_exit();
      CheckPlatform::yield(ctx);
      lk->unlock(ctx);
      lock_cycle(lk, ctx);
    });
    f.add_thread(1, [lk](Context& ctx) {
      lk->configure_scheduler(ctx, SchedulerKind::kFcfs);
      lock_cycle(lk, ctx);
      lk->configure_scheduler(ctx, SchedulerKind::kQueue);
    });
  };
  return s;
}

#ifdef RELOCK_TRACE
/// Fissile fast acquire racing a trace enable: the fast path reads the
/// trace gate once per operation, so the toggle may land before or after
/// any given acquire/release - partial rings are expected and every
/// ordering must leave the oracles silent. The build hook resets the
/// registry so each explored schedule starts from trace-off.
inline Scenario fissile_trace2() {
  Scenario s;
  s.name = "fissile_trace2";
  s.fairness = FairnessMode::kFcfs;
  s.build = [](ScenarioFrame& f) {
    auto& reg = trace::Registry::instance();
    reg.set_enabled(false);
    reg.clear();
    auto lk = make_lock(f, SchedulerKind::kFcfs);
    f.add_thread(1, [lk](Context& ctx) { lock_cycle(lk, ctx); });
    f.add_thread(1, [lk](Context& ctx) {
      trace::Registry::instance().set_enabled(true);
      lock_cycle(lk, ctx);
    });
  };
  return s;
}
#endif

/// fanout3 on an advisory lock. Advisory locks are not fissile-eligible,
/// so a releaser with no visible waiter still walks release_fast into the
/// select-empty guarded detour - the route into seeded bug 1's window
/// (grant_or_free's exclusive handoff overlapping the new owner's own
/// fast release). On a fissile lock that release is now a single CAS and
/// the detour is unreachable without a breaker armed.
inline Scenario advisory3() {
  Scenario s;
  s.name = "advisory3";
  s.fairness = FairnessMode::kFcfs;
  s.build = [](ScenarioFrame& f) {
    auto lk = make_lock(f, SchedulerKind::kFcfs, LockAttributes::spin(),
                        /*advisory=*/true);
    for (int i = 0; i < 3; ++i) {
      f.add_thread(1, [lk](Context& ctx) { lock_cycle(lk, ctx); });
    }
  };
  return s;
}

/// Guarded-handoff window: a bare possession window (breaker armed, no
/// configuration) straddling the holder's release forces it off the
/// fissile release onto the guarded path while a waiter is queued, so
/// grant_or_free's exclusive handoff can overlap the new owner's own fast
/// release once the breaker disarms - the window of seeded bug 1. (The
/// plain fanout3 can no longer reach that overlap: with no breaker armed,
/// a releaser that would have taken the select-empty guarded detour now
/// short-circuits at the fissile held->free CAS.)
inline Scenario guarded3() {
  Scenario s;
  s.name = "guarded3";
  s.fairness = FairnessMode::kFcfs;
  s.build = [](ScenarioFrame& f) {
    auto lk = make_lock(f, SchedulerKind::kFcfs);
    for (int i = 0; i < 2; ++i) {
      f.add_thread(1, [lk](Context& ctx) { lock_cycle(lk, ctx); });
    }
    f.add_thread(1, [lk](Context& ctx) {
      if (lk->try_possess(ctx, AttributeClass::kWaitingPolicy)) {
        lk->release_possession(ctx, AttributeClass::kWaitingPolicy);
      }
    });
  };
  return s;
}

/// Mixed-policy churn with fault injection: possession-window
/// reconfiguration, spurious parker tokens, and an oversubscription flip
/// mid-stream. PCT fodder.
inline Scenario churn3() {
  Scenario s;
  s.name = "churn3";
  s.fairness = FairnessMode::kFcfs;
  s.build = [](ScenarioFrame& f) {
    auto lk = make_lock(f, SchedulerKind::kFcfs,
                        LockAttributes{/*spin=*/2, /*delay=*/0,
                                       /*sleep=*/400, /*timeout=*/0});
    f.add_thread(1, [lk](Context& ctx) {
      lock_cycle(lk, ctx);
      lock_cycle(lk, ctx);
    });
    f.add_thread(1, [lk](Context& ctx) {
      lock_cycle(lk, ctx);
      if (lk->try_possess(ctx, AttributeClass::kWaitingPolicy)) {
        lk->configure_waiting(ctx, LockAttributes::blocking());
        lk->release_possession(ctx, AttributeClass::kWaitingPolicy);
      }
    });
    f.add_thread(1, [lk](Context& ctx) {
      ctx.spurious_unpark(0);
      lock_cycle(lk, ctx);
      ctx.flip_oversubscribed();
      ctx.spurious_unpark(1);
      lock_cycle(lk, ctx);
    });
  };
  return s;
}

/// Four distinct-priority threads on a priority-queue lock: the priority
/// fairness oracle (max first, FIFO among equals) on every schedule.
inline Scenario prio4() {
  Scenario s;
  s.name = "prio4";
  s.fairness = FairnessMode::kPriority;
  s.build = [](ScenarioFrame& f) {
    auto lk = make_lock(f, SchedulerKind::kPriorityQueue,
                        LockAttributes::blocking());
    for (int i = 0; i < 4; ++i) {
      f.add_thread(static_cast<Priority>(i + 1),
                   [lk](Context& ctx) { lock_cycle(lk, ctx); });
    }
  };
  return s;
}

/// Threshold scheduler with a mid-stream threshold raise and reset: the
/// threshold oracle (no grant below the active threshold; FCFS among the
/// eligible) plus the reset's rescue grant of parked ineligible waiters.
inline Scenario threshold3() {
  Scenario s;
  s.name = "threshold3";
  s.fairness = FairnessMode::kThreshold;
  s.build = [](ScenarioFrame& f) {
    auto lk = make_lock(f, SchedulerKind::kPriorityThreshold,
                        LockAttributes::blocking());
    f.add_thread(5, [lk](Context& ctx) {
      lock_cycle(lk, ctx);
      lk->set_priority_threshold(ctx, 3);
      lock_cycle(lk, ctx);
      lk->set_priority_threshold(ctx, 0);
    });
    f.add_thread(2, [lk](Context& ctx) { lock_cycle(lk, ctx); });
    f.add_thread(4, [lk](Context& ctx) { lock_cycle(lk, ctx); });
  };
  return s;
}

/// A monitor reset races a lock/unlock stream. LockMonitor::reset is
/// snapshot-coherent (baseline subtraction, never writes to the live
/// shards), so no schedule may observe a window where a counter appears to
/// run backwards - the failure mode is a raw-below-baseline clamp bug
/// showing up as an astronomically large unsigned "count".
inline Scenario monitor_reset2() {
  Scenario s;
  s.name = "monitor_reset2";
  s.fairness = FairnessMode::kNone;
  s.build = [](ScenarioFrame& f) {
    Lock::Options o;
    o.scheduler = SchedulerKind::kFcfs;
    o.attributes = LockAttributes::spin();
    o.monitor_enabled = true;
    auto lk = std::make_shared<Lock>(f.domain(), o);
    f.add_thread(1, [lk](Context& ctx) {
      lock_cycle(lk, ctx);
      lock_cycle(lk, ctx);
    });
    f.add_thread(1, [lk](Context& ctx) {
      lk->monitor().reset();
      const LockStats mid = lk->monitor().snapshot();
      constexpr std::uint64_t kSane = std::uint64_t{1} << 60;
      assert(mid.acquisitions < kSane);
      assert(mid.releases < kSane);
      assert(mid.total_hold_ns < kSane);
      (void)mid;
      lock_cycle(lk, ctx);
      lk->monitor().reset();
      const LockStats end = lk->monitor().snapshot();
      assert(end.acquisitions < kSane);
      assert(end.releases < kSane);
      (void)end;
    });
  };
  return s;
}

}  // namespace relock::chk::scenarios
