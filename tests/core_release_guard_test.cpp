// API-misuse guards in a RELEASE build. This translation unit is compiled
// with NDEBUG defined (see tests/CMakeLists.txt) precisely because the rest
// of the suite strips it: assert() is compiled out here, so the only thing
// standing between a misuse and silent corruption is the lock's own
// LockUsageError throws. Every guard is also checked to leave the lock
// usable - a throw that wedges the meta word or the quiescence epoch would
// turn a caller bug into a deadlock for every other thread.
#ifndef NDEBUG
#error "core_release_guard_test must be compiled with NDEBUG (release mode)"
#endif

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "relock/core/configurable_lock.hpp"
#include "relock/platform/native.hpp"

namespace {

using namespace relock;
using NP = native::NativePlatform;
using Lock = ConfigurableLock<NP>;

Lock::Options exclusive_opts(SchedulerKind kind = SchedulerKind::kFcfs) {
  Lock::Options o;
  o.scheduler = kind;
  o.attributes = LockAttributes::spin();
  return o;
}

Lock::Options rw_opts() {
  Lock::Options o;
  o.scheduler = SchedulerKind::kReaderWriter;
  o.attributes = LockAttributes::spin();
  return o;
}

/// The lock must survive the guard: a full exclusive cycle still works.
void expect_still_usable(Lock& lock, native::Context& ctx) {
  lock.lock(ctx);
  lock.unlock(ctx);
}

TEST(ReleaseGuard, SharedAcquireOnExclusiveLockThrows) {
  native::Domain domain;
  Lock lock(domain, exclusive_opts());
  native::Context ctx(domain);
  EXPECT_THROW(lock.lock_shared(ctx), LockUsageError);
  EXPECT_THROW((void)lock.try_lock_shared(ctx), LockUsageError);
  expect_still_usable(lock, ctx);
}

TEST(ReleaseGuard, SharedReleaseOnExclusiveLockThrows) {
  native::Domain domain;
  Lock lock(domain, exclusive_opts(SchedulerKind::kNone));
  native::Context ctx(domain);
  EXPECT_THROW(lock.unlock_shared(ctx), LockUsageError);
  expect_still_usable(lock, ctx);
}

TEST(ReleaseGuard, UnmatchedSharedReleaseThrows) {
  native::Domain domain;
  Lock lock(domain, rw_opts());
  native::Context ctx(domain);
  // No shared hold exists: the release path must refuse instead of driving
  // the reader count negative.
  EXPECT_THROW(lock.unlock_shared(ctx), LockUsageError);
  // The guard released the meta word on the way out: both modes still work.
  EXPECT_TRUE(lock.lock_shared(ctx));
  lock.unlock_shared(ctx);
  expect_still_usable(lock, ctx);
}

TEST(ReleaseGuard, ConfigureCustomByKindThrows) {
  native::Domain domain;
  Lock lock(domain, exclusive_opts());
  native::Context ctx(domain);
  // kCustom carries no instance; it is only installable via the unique_ptr
  // overload.
  EXPECT_THROW(lock.configure_scheduler(ctx, SchedulerKind::kCustom),
               LockUsageError);
  EXPECT_THROW(
      lock.configure_scheduler(ctx, std::unique_ptr<Scheduler<NP>>{}),
      LockUsageError);
  expect_still_usable(lock, ctx);
}

TEST(ReleaseGuard, ReaderWriterFlipIsRejectedBothWays) {
  native::Domain domain;
  native::Context ctx(domain);

  Lock exclusive(domain, exclusive_opts());
  EXPECT_THROW(exclusive.configure_scheduler(ctx, SchedulerKind::kReaderWriter),
               LockUsageError);
  expect_still_usable(exclusive, ctx);

  Lock rw(domain, rw_opts());
  EXPECT_THROW(rw.configure_scheduler(ctx, SchedulerKind::kFcfs),
               LockUsageError);
  EXPECT_TRUE(rw.lock_shared(ctx));
  rw.unlock_shared(ctx);
}

TEST(ReleaseGuard, ThreadAttributesOutsideDomainThrows) {
  native::Domain domain(/*max_threads=*/8);
  Lock lock(domain, exclusive_opts());
  native::Context ctx(domain);
  EXPECT_THROW(
      lock.set_thread_attributes(ctx, /*tid=*/8, LockAttributes::spin()),
      LockUsageError);
  EXPECT_THROW(lock.set_thread_attributes(ctx, /*tid=*/1000,
                                          LockAttributes::blocking()),
               LockUsageError);
  // In-range overrides still install, and the lock still cycles.
  lock.set_thread_attributes(ctx, /*tid=*/3, LockAttributes::blocking());
  expect_still_usable(lock, ctx);
}

TEST(ReleaseGuard, GuardsFireFromTheFissileFastPath) {
  // A plain FCFS passive lock takes the fissile fast paths, which skip the
  // per-acquire bookkeeping - but the shared-mode guards sit in front of
  // them, so misuse must still throw in a release build, both while the
  // lock is free in fast mode and while it is fast-held.
  native::Domain domain;
  Lock lock(domain, exclusive_opts());
  native::Context ctx(domain);
  ASSERT_TRUE(lock.fast_path_eligible());
  EXPECT_THROW(lock.lock_shared(ctx), LockUsageError);
  EXPECT_THROW((void)lock.try_lock_shared(ctx), LockUsageError);
  EXPECT_THROW(lock.unlock_shared(ctx), LockUsageError);
  EXPECT_TRUE(lock.in_fast_mode(ctx));

  // Fast-held: the guards fire without disturbing the hold or demoting the
  // lock out of fast mode, and the single-attempt entry stays honest.
  ASSERT_TRUE(lock.try_lock(ctx));
  EXPECT_THROW(lock.lock_shared(ctx), LockUsageError);
  EXPECT_THROW((void)lock.try_lock_shared(ctx), LockUsageError);
  EXPECT_THROW(lock.unlock_shared(ctx), LockUsageError);
  EXPECT_FALSE(lock.try_lock(ctx));
  EXPECT_TRUE(lock.in_fast_mode(ctx));
  // A timed wait on the self-held lock falls back to the slow path; its
  // arrival mark demotes the lock to full mode (sticky by design), and the
  // release that finds nobody waiting publishes the word free, which is
  // what restores fast mode.
  EXPECT_FALSE(lock.lock_for(ctx, 1'000'000));
  EXPECT_FALSE(lock.in_fast_mode(ctx));
  lock.unlock(ctx);
  EXPECT_TRUE(lock.in_fast_mode(ctx));
  expect_still_usable(lock, ctx);
}

TEST(ReleaseGuard, GuardsFireWhileLockIsHeld) {
  // The misuse guards run before any state mutation, so throwing while the
  // lock is HELD must not disturb the hold.
  native::Domain domain;
  Lock lock(domain, exclusive_opts());
  native::Context ctx(domain);
  lock.lock(ctx);
  EXPECT_THROW((void)lock.try_lock_shared(ctx), LockUsageError);
  EXPECT_THROW(lock.configure_scheduler(ctx, SchedulerKind::kCustom),
               LockUsageError);
  lock.unlock(ctx);
  expect_still_usable(lock, ctx);
}

}  // namespace
