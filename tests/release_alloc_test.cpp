// Asserts the release module is allocation-free in steady state: after a
// short warm-up (lazy scratch growth, thread spawning), a measurement
// window of contended lock/unlock cycles must execute ZERO heap
// allocations. Global operator new/delete are replaced with counting
// versions, which is why this suite lives in its own test binary.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <new>
#include <optional>
#include <thread>
#include <vector>

#include "relock/adapt/policy_engine.hpp"
#include "relock/core/configurable_lock.hpp"
#include "relock/platform/native.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace relock {
namespace {

using native::NativePlatform;
using Lock = ConfigurableLock<NativePlatform>;

// Phases: 0 = warm-up, 1 = measuring, 2 = done.
void run_zero_alloc_window(Lock& lock, native::Domain& dom,
                           const LockAttributes& attrs) {
  std::atomic<int> phase{0};
  std::atomic<std::uint64_t> window_ops{0};
  constexpr unsigned kWorkers = 4;

  {
    native::Context ctx(dom);
    lock.configure_waiting(ctx, attrs);
  }

  std::vector<std::thread> threads;
  threads.reserve(kWorkers);
  for (unsigned t = 0; t < kWorkers; ++t) {
    threads.emplace_back([&] {
      native::Context ctx(dom);
      std::uint64_t in_window = 0;
      for (;;) {
        const int ph = phase.load(std::memory_order_acquire);
        if (ph == 2) break;
        lock.lock(ctx);
        lock.unlock(ctx);
        if (ph == 1) ++in_window;
      }
      window_ops.fetch_add(in_window, std::memory_order_relaxed);
    });
  }

  // Warm-up: grow any lazily-sized scratch (GrantBatch spill capacity,
  // parker init) before counting.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const std::uint64_t before = g_allocations.load(std::memory_order_acquire);
  phase.store(1, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const std::uint64_t after = g_allocations.load(std::memory_order_acquire);
  phase.store(2, std::memory_order_release);
  for (auto& th : threads) th.join();

  EXPECT_EQ(after - before, 0u)
      << "heap allocations during steady-state lock/unlock window";
  EXPECT_GT(window_ops.load(), 0u);
}

TEST(ReleaseAllocation, FcfsSpinSteadyStateIsAllocationFree) {
  native::Domain dom(16);
  Lock lock(dom, {.scheduler = SchedulerKind::kFcfs});
  run_zero_alloc_window(lock, dom, LockAttributes::spin());
}

TEST(ReleaseAllocation, FcfsBlockingSteadyStateIsAllocationFree) {
  native::Domain dom(16);
  Lock lock(dom, {.scheduler = SchedulerKind::kFcfs});
  run_zero_alloc_window(lock, dom, LockAttributes::blocking());
}

TEST(ReleaseAllocation, CentralizedSteadyStateIsAllocationFree) {
  native::Domain dom(16);
  Lock lock(dom, {.scheduler = SchedulerKind::kNone});
  run_zero_alloc_window(lock, dom, LockAttributes::combined(200));
}

// Alternates two waiting policies so every tick carries a real
// reconfiguration - the engine's full snapshot/evaluate/possess/configure
// path runs each pass. Waiting-policy flips only: a scheduler-kind change
// legitimately allocates the new module, so it has no place in a
// steady-state window.
class AllocFreeFlipPolicy final : public adapt::AdaptationPolicy {
 public:
  std::optional<adapt::AdaptAction> evaluate(
      const adapt::StatsDelta&) override {
    flip_ = !flip_;
    return adapt::AdaptAction{adapt::SetWaitingPolicy{
        flip_ ? LockAttributes::combined(8, kForever)
              : LockAttributes::spin()}};
  }

 private:
  bool flip_ = false;
};

// The governor's tick loop in steady state - snapshot_into() consuming the
// sharded monitor, policy evaluation, and applied waiting-policy
// reconfigurations - must execute ZERO heap allocations: a per-tick
// allocation would turn a large registry into an allocator hot spot.
TEST(ReleaseAllocation, PolicyEngineTickSteadyStateIsAllocationFree) {
  native::Domain dom(16);
  native::Context ctx(dom);
  Lock lock(dom, {.scheduler = SchedulerKind::kFcfs, .monitor_enabled = true});
  adapt::PolicyEngine<native::NativePlatform>::Options eopts;
  eopts.cooldown_ticks = 0;  // every tick applies: maximum per-tick work
  adapt::PolicyEngine<native::NativePlatform> engine(eopts);
  ASSERT_TRUE(
      engine.register_lock(lock, std::make_unique<AllocFreeFlipPolicy>()));

  auto feed = [&] {
    for (int i = 0; i < 16; ++i) {
      lock.monitor().on_acquire(/*contended=*/true);
      lock.monitor().on_wait_complete(10'000);
    }
  };
  // Warm-up: one flip in each direction grows anything lazily sized.
  feed();
  engine.tick(ctx);
  feed();
  engine.tick(ctx);

  const std::uint64_t before = g_allocations.load(std::memory_order_acquire);
  for (int t = 0; t < 64; ++t) {
    feed();
    engine.tick(ctx);
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_acquire);
  EXPECT_EQ(after - before, 0u)
      << "heap allocations during steady-state governor ticks";
  EXPECT_GE(engine.counters().applied, 64u);
}

}  // namespace
}  // namespace relock
