// LockMonitor details and the human-readable reporter.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "relock/adapt/policies.hpp"
#include "relock/monitor/lock_monitor.hpp"
#include "relock/monitor/reporter.hpp"

namespace relock {
namespace {

TEST(LockMonitorUnit, SnapshotReflectsEvents) {
  LockMonitor mon;
  mon.set_enabled(true);
  mon.on_acquire(false);
  mon.on_acquire(true);
  mon.on_wait_complete(1000);
  mon.on_release(500);
  mon.on_release(2000);
  mon.on_handoff();
  mon.on_block();
  mon.on_wakeup();
  mon.on_timeout();
  mon.on_spin_probe();
  mon.on_reconfiguration(true);
  mon.on_shared_acquire();
  const LockStats s = mon.snapshot();
  EXPECT_EQ(s.acquisitions, 3u);  // 2 exclusive + 1 shared
  EXPECT_EQ(s.contended_acquisitions, 1u);
  EXPECT_EQ(s.releases, 2u);
  EXPECT_EQ(s.handoffs, 1u);
  EXPECT_EQ(s.blocks, 1u);
  EXPECT_EQ(s.wakeups, 1u);
  EXPECT_EQ(s.timeouts, 1u);
  EXPECT_EQ(s.spin_probes, 1u);
  EXPECT_EQ(s.reconfigurations, 1u);
  EXPECT_EQ(s.scheduler_changes, 1u);
  EXPECT_EQ(s.shared_acquisitions, 1u);
  EXPECT_EQ(s.total_wait_ns, 1000u);
  EXPECT_EQ(s.total_hold_ns, 2500u);
  EXPECT_EQ(s.max_hold_ns, 2000u);
  EXPECT_DOUBLE_EQ(s.mean_hold_ns(), 1250.0);
  EXPECT_DOUBLE_EQ(s.mean_wait_ns(), 1000.0);
}

TEST(LockMonitorUnit, ResetClearsEverything) {
  LockMonitor mon;
  mon.set_enabled(true);
  mon.on_acquire(true);
  mon.on_release(100);
  mon.reset();
  const LockStats s = mon.snapshot();
  EXPECT_EQ(s.acquisitions, 0u);
  EXPECT_EQ(s.releases, 0u);
  EXPECT_EQ(s.total_hold_ns, 0u);
  for (const auto b : s.hold_histogram) EXPECT_EQ(b, 0u);
}

TEST(LockMonitorUnit, ResetStartsAFreshWindowAndBumpsGeneration) {
  LockMonitor mon;
  mon.set_enabled(true);
  mon.on_acquire(true);
  mon.on_acquire(false);
  mon.on_release(700);
  const std::uint64_t gen0 = mon.snapshot().reset_generation;
  mon.reset();
  const LockStats after = mon.snapshot();
  EXPECT_EQ(after.reset_generation, gen0 + 1);
  EXPECT_EQ(after.acquisitions, 0u);
  EXPECT_EQ(after.releases, 0u);
  EXPECT_EQ(after.max_hold_ns, 0u);  // maxima restart, not subtract
  // Post-reset events count from zero.
  mon.on_acquire(false);
  mon.on_release(300);
  const LockStats s = mon.snapshot();
  EXPECT_EQ(s.acquisitions, 1u);
  EXPECT_EQ(s.releases, 1u);
  EXPECT_EQ(s.max_hold_ns, 300u);
}

TEST(LockMonitorUnit, DeltaAcrossResetNeverUnderflows) {
  LockMonitor mon;
  mon.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    mon.on_acquire(true);
    mon.on_release(100);
  }
  const LockStats prev = mon.snapshot();
  mon.reset();
  // A smaller post-reset window than the pre-reset one: naive subtraction
  // would wrap to ~2^64.
  mon.on_acquire(true);
  mon.on_release(100);
  const LockStats cur = mon.snapshot();
  ASSERT_NE(cur.reset_generation, prev.reset_generation);
  const adapt::StatsDelta d = adapt::delta_between(prev, cur);
  EXPECT_EQ(d.acquisitions, 1u);
  EXPECT_EQ(d.contended, 1u);
  EXPECT_LT(d.acquisitions, 1u << 20);  // no wraparound
}

TEST(LockMonitorUnit, ConcurrentResetNeverShowsNegativeWindows) {
  // Writers hammer the sharded counters while the main thread repeatedly
  // resets and snapshots. Every snapshot must be a sane small window -
  // before snapshot-coherent reset, a racing reset could zero some shards
  // after they were merged, and later snapshots saw raw < baseline wrap
  // to astronomically large values.
  LockMonitor mon;
  mon.set_enabled(true);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int i = 0; i < 2; ++i) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        mon.on_acquire(true);
        mon.on_release(100);
        mon.on_block();
        mon.on_wakeup();
      }
    });
  }
  constexpr std::uint64_t kSane = std::uint64_t{1} << 60;
  for (int i = 0; i < 2'000; ++i) {
    mon.reset();
    const LockStats s = mon.snapshot();
    EXPECT_LT(s.acquisitions, kSane) << "iteration " << i;
    EXPECT_LT(s.releases, kSane) << "iteration " << i;
    EXPECT_LT(s.blocks, kSane) << "iteration " << i;
    EXPECT_LT(s.total_hold_ns, kSane) << "iteration " << i;
    for (const auto b : s.hold_histogram) EXPECT_LT(b, kSane);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : writers) t.join();
}

TEST(LockMonitorUnit, HistogramBucketsPopulate) {
  LockMonitor mon;
  mon.set_enabled(true);
  mon.on_release(1);        // bucket 0
  mon.on_release(1024);     // bucket 10
  mon.on_release(1500);     // bucket 10
  const LockStats s = mon.snapshot();
  EXPECT_EQ(s.hold_histogram[0], 1u);
  EXPECT_EQ(s.hold_histogram[10], 2u);
}

TEST(LockMonitorUnit, ConcurrentUpdatesDoNotLoseCounts) {
  LockMonitor mon;
  mon.set_enabled(true);
  std::vector<std::thread> threads;
  constexpr int kThreads = 4, kEvents = 10'000;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < kEvents; ++j) {
        mon.on_acquire(true);
        mon.on_release(100);
      }
    });
  }
  for (auto& t : threads) t.join();
  const LockStats s = mon.snapshot();
  EXPECT_EQ(s.acquisitions, static_cast<std::uint64_t>(kThreads) * kEvents);
  EXPECT_EQ(s.releases, static_cast<std::uint64_t>(kThreads) * kEvents);
}

TEST(LockMonitorUnit, MaxTrackerIsMonotone) {
  LockMonitor mon;
  mon.set_enabled(true);
  mon.on_release(500);
  mon.on_release(100);  // smaller: max unchanged
  mon.on_release(900);
  EXPECT_EQ(mon.snapshot().max_hold_ns, 900u);
}

TEST(Reporter, FormatsNonEmptyStats) {
  LockMonitor mon;
  mon.set_enabled(true);
  mon.on_acquire(true);
  mon.on_wait_complete(5000);
  mon.on_release(123'456);
  const std::string out = format_stats(mon.snapshot());
  EXPECT_NE(out.find("acquisitions: 1"), std::string::npos);
  EXPECT_NE(out.find("wait-time histogram:"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos) << "histogram bars expected";
}

TEST(Reporter, EmptyHistogramRendersPlaceholder) {
  LockStats s;
  const std::string out = format_histogram(s.wait_histogram, "empty:");
  EXPECT_NE(out.find("(empty)"), std::string::npos);
}

TEST(Reporter, HistogramRangeCoversOnlyPopulatedBuckets) {
  LockStats s;
  s.wait_histogram[4] = 10;
  s.wait_histogram[6] = 5;
  const std::string out = format_histogram(s.wait_histogram, "t:");
  EXPECT_NE(out.find("2^04"), std::string::npos);
  EXPECT_NE(out.find("2^05"), std::string::npos);  // in-range zero bucket
  EXPECT_NE(out.find("2^06"), std::string::npos);
  EXPECT_EQ(out.find("2^03"), std::string::npos);
  EXPECT_EQ(out.find("2^07"), std::string::npos);
}

}  // namespace
}  // namespace relock
