// Unit tests for the platform layer: RNG, backoff, parker, native domain.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "relock/platform/backoff.hpp"
#include "relock/platform/clock.hpp"
#include "relock/platform/native.hpp"
#include "relock/platform/platform.hpp"
#include "relock/platform/rng.hpp"

namespace relock {
namespace {

static_assert(Platform<native::NativePlatform>,
              "NativePlatform must satisfy the Platform concept");

// ---------------------------------------------------------------- RNG ----

TEST(Rng, SplitMixIsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DistinctSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, DoubleIsInUnitInterval) {
  Xoshiro256 r(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DoubleMeanIsNearHalf) {
  Xoshiro256 r(11);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
  Xoshiro256 r(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(r.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextInIsInclusive) {
  Xoshiro256 r(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.next_in(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

// ------------------------------------------------------------ Backoff ----

TEST(Backoff, GrowsGeometricallyToCap) {
  BackoffSchedule b(BackoffSchedule::Params{100, 800, 2});
  EXPECT_EQ(b.next(), 100u);
  EXPECT_EQ(b.next(), 200u);
  EXPECT_EQ(b.next(), 400u);
  EXPECT_EQ(b.next(), 800u);
  EXPECT_EQ(b.next(), 800u);  // capped
}

TEST(Backoff, ResetRestartsSchedule) {
  BackoffSchedule b(BackoffSchedule::Params{100, 800, 2});
  b.next();
  b.next();
  b.reset();
  EXPECT_EQ(b.next(), 100u);
}

// ------------------------------------------------------------- Parker ----

TEST(Parker, TokenBeforeParkDoesNotBlock) {
  Parker p;
  p.unpark();
  p.park();  // must return immediately; otherwise the test times out
  SUCCEED();
}

TEST(Parker, ParkForTimesOutWithoutToken) {
  Parker p;
  EXPECT_FALSE(p.park_for(1'000'000));  // 1 ms
}

TEST(Parker, ParkForReturnsTrueWhenUnparked) {
  Parker p;
  std::thread waker([&] { p.unpark(); });
  EXPECT_TRUE(p.park_for(5'000'000'000ull));
  waker.join();
}

TEST(Parker, CrossThreadWakeup) {
  Parker p;
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    p.park();
    woke.store(true);
  });
  p.unpark();
  sleeper.join();
  EXPECT_TRUE(woke.load());
}

TEST(Parker, TokenIsConsumedByPark) {
  Parker p;
  p.unpark();
  p.park();
  EXPECT_FALSE(p.park_for(1'000'000));  // second park finds no token
}

// ------------------------------------------------------------- Domain ----

TEST(NativeDomain, RegistersAndUnregisters) {
  native::Domain dom(8);
  EXPECT_EQ(dom.registered_count(), 0u);
  {
    native::Context a(dom), b(dom);
    EXPECT_EQ(dom.registered_count(), 2u);
    EXPECT_NE(a.self(), b.self());
  }
  EXPECT_EQ(dom.registered_count(), 0u);
}

TEST(NativeDomain, IdsAreRecycled) {
  native::Domain dom(4);
  ThreadId first;
  {
    native::Context a(dom);
    first = a.self();
  }
  native::Context b(dom);
  EXPECT_EQ(b.self(), first);
}

TEST(NativeDomain, RegistrationBeyondCapacityThrows) {
  native::Domain dom(2);
  native::Context a(dom), b(dom);
  EXPECT_EQ(dom.registered_count(), 2u);
  EXPECT_THROW(native::Context c(dom), std::length_error);
  // The failed registration must not consume a slot.
  EXPECT_EQ(dom.registered_count(), 2u);
}

// A slot freed by a *thread exiting* (not just a scope ending on the same
// thread) is reusable: the unregister handshake must fully release it.
TEST(NativeDomain, SlotReusableAfterThreadExit) {
  native::Domain dom(2);
  native::Context keeper(dom);
  ThreadId freed = kInvalidThread;
  std::thread worker([&] {
    native::Context ctx(dom);
    freed = ctx.self();
  });
  worker.join();
  EXPECT_EQ(dom.registered_count(), 1u);

  // At capacity 2 the only free slot is the exited thread's.
  native::Context reused(dom);
  EXPECT_EQ(reused.self(), freed);
  EXPECT_EQ(dom.registered_count(), 2u);

  // The recycled slot is fully functional: its parker receives tokens.
  native::NativePlatform::unblock(keeper, reused.self());
  native::NativePlatform::block(reused);  // token present: returns at once
}

TEST(NativeDomain, UnparkByIdWakesThread) {
  native::Domain dom;
  native::Context main_ctx(dom);
  std::atomic<ThreadId> sleeper_id{kInvalidThread};
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    native::Context ctx(dom);
    sleeper_id.store(ctx.self());
    native::NativePlatform::block(ctx);
    woke.store(true);
  });
  while (sleeper_id.load() == kInvalidThread) std::this_thread::yield();
  native::NativePlatform::unblock(main_ctx, sleeper_id.load());
  sleeper.join();
  EXPECT_TRUE(woke.load());
}

TEST(NativeDomain, PriorityIsMutable) {
  native::Domain dom;
  native::Context ctx(dom, 5);
  EXPECT_EQ(ctx.priority(), 5);
  ctx.set_priority(-3);
  EXPECT_EQ(ctx.priority(), -3);
}

// -------------------------------------------------------------- Clock ----

TEST(Clock, MonotonicAdvances) {
  const Nanos a = monotonic_now();
  spin_for(100'000);  // 100 us
  const Nanos b = monotonic_now();
  EXPECT_GE(b - a, 100'000u);
}

TEST(Clock, StopwatchMeasures) {
  Stopwatch sw;
  spin_for(200'000);
  EXPECT_GE(sw.elapsed(), 200'000u);
}

// --------------------------------------------------- Native atomics ------

TEST(NativePlatform, FetchOrActsAsTestAndSet) {
  native::Domain dom;
  native::Context ctx(dom);
  native::Word w(dom);
  using P = native::NativePlatform;
  EXPECT_EQ(P::fetch_or(ctx, w, 1), 0u);
  EXPECT_EQ(P::fetch_or(ctx, w, 1), 1u);
  P::store(ctx, w, 0);
  EXPECT_EQ(P::fetch_or(ctx, w, 1), 0u);
}

TEST(NativePlatform, CasSemantics) {
  native::Domain dom;
  native::Context ctx(dom);
  native::Word w(dom, 5);
  using P = native::NativePlatform;
  EXPECT_FALSE(P::cas(ctx, w, 4, 9));
  EXPECT_EQ(P::load(ctx, w), 5u);
  EXPECT_TRUE(P::cas(ctx, w, 5, 9));
  EXPECT_EQ(P::load(ctx, w), 9u);
}

TEST(NativePlatform, FetchAddWrapsLikeTwosComplement) {
  native::Domain dom;
  native::Context ctx(dom);
  native::Word w(dom, 10);
  using P = native::NativePlatform;
  P::fetch_add(ctx, w, static_cast<std::uint64_t>(-4));
  EXPECT_EQ(P::load(ctx, w), 6u);
}

}  // namespace
}  // namespace relock
